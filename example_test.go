package fpsa_test

import (
	"context"
	"fmt"

	"fpsa"
)

// Compiling a benchmark model reports the function-block inventory the
// mapper allocated for it. Compile is ctx-first and option-based: the
// zero-option call is a 1× deployment on the default fabric.
func ExampleCompile() {
	m, err := fpsa.LoadBenchmark("MLP-500-100")
	if err != nil {
		panic(err)
	}
	d, err := fpsa.Compile(context.Background(), m)
	if err != nil {
		panic(err)
	}
	pes, smbs, clbs := d.Blocks()
	fmt.Printf("%d PEs, %d SMBs, %d CLBs\n", pes, smbs, clbs)
	// Output: 11 PEs, 0 SMBs, 2 CLBs
}

// Custom models are assembled with the chainable builder; weight and op
// counts follow the paper's accounting.
func ExampleNewModelBuilder() {
	m, err := fpsa.NewModelBuilder("tiny", 1, 8, 8).
		Conv2D(4, 3, 1, 1).ReLU().
		GlobalAvgPool().
		FC(2).ReLU().
		Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("weights=%d ops=%d layers=%v\n", m.Weights(), m.Ops(), m.WeightLayers())
	// Output: weights=44 ops=4624 layers=[conv2d1 fc4]
}

// A deployment compiled with weights derives a runnable spiking network
// that classifies feature vectors by running actual spiking core-ops.
func ExampleDeployment_NewNet() {
	m, err := fpsa.NewModelBuilder("gate", 1, 1, 1).
		FC(2).ReLU().
		Build()
	if err != nil {
		panic(err)
	}
	// One input feature drives two outputs with opposite weights: class
	// 0 fires on bright inputs, class 1 stays silent (ReLU clips it).
	d, err := fpsa.Compile(context.Background(), m, fpsa.WithWeights(map[string][][]float64{
		m.WeightLayers()[0]: {{1.0, -1.0}},
	}))
	if err != nil {
		panic(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		panic(err)
	}
	label, err := sn.Classify([]float64{0.9}, fpsa.ModeReference)
	if err != nil {
		panic(err)
	}
	fmt.Println("class", label)
	// Output: class 0
}

// Experiment drivers regenerate the paper's artifacts as text.
func ExampleRunExperiment() {
	out, err := fpsa.RunExperiment(context.Background(), "table2")
	if err != nil {
		panic(err)
	}
	fmt.Println(out[:38])
	// Output: Table 2: PE comparison (256x256 VMM, 8
}

// A model that exceeds one chip's capacity compiles as a sharded
// deployment: the core-op graph is cut across chips (min-cut on the
// inter-chip traffic), each chip gets its own netlist, and the perf
// model charges the inter-chip links.
func ExampleCompile_sharded() {
	m, err := fpsa.LoadBenchmark("MLP-500-100")
	if err != nil {
		panic(err)
	}
	d, err := fpsa.Compile(context.Background(), m, fpsa.WithChips(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("chips=%d\n", d.Chips())
	for _, sh := range d.Shards() {
		fmt.Printf("chip %d: %d PEs, %d signals in\n", sh.Chip, sh.PEs, sh.InSignals)
	}
	// Output:
	// chips=2
	// chip 0: 10 PEs, 0 signals in
	// chip 1: 1 PEs, 200 signals in
}

// A deployment compiled across chips serves through the same handle:
// the engine derived from it inherits the chip partition and pipelines
// the stages, with classifications bit-identical to a single-chip
// engine.
func ExampleDeployment_NewEngine() {
	ctx := context.Background()
	m, err := fpsa.NewModelBuilder("two-stage", 4, 1, 1).
		FC(3).ReLU().
		FC(2).ReLU().
		Build()
	if err != nil {
		panic(err)
	}
	layers := m.WeightLayers()
	d, err := fpsa.Compile(ctx, m,
		fpsa.WithChips(2),
		fpsa.WithWeights(map[string][][]float64{
			layers[0]: {{1, 0, -1}, {0, 1, 0}, {-1, 0, 1}, {0, -1, 0}},
			layers[1]: {{1, -1}, {-1, 1}, {0, 0}},
		}))
	if err != nil {
		panic(err)
	}
	eng, err := d.NewEngine(ctx,
		fpsa.WithWorkers(2), fpsa.WithMaxBatch(4), fpsa.WithMode(fpsa.ModeReference))
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	label, err := eng.Classify(ctx, []float64{0.9, 0.1, 0.0, 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("chips=%d class=%d\n", eng.Chips(), label)
	// Output: chips=2 class=0
}
