package fpsa

import "fpsa/internal/compilecache"

// CompileCache is the content-addressed deployment cache: placement,
// routing and bitstream artifacts keyed by the SHA-256 of the model's
// structure and the compile Config, bounded by LRU eviction. Pass one via
// Config.Cache so every Compile of the same (model, Config) pays for
// placement and routing exactly once per process — concurrent deploys of
// one key block on a single computation, distinct keys compute in
// parallel, and because the annealing portfolio and the router are
// deterministic, a cached artifact is byte-identical to a recompute. All
// methods are safe for concurrent use. The zero value is not usable;
// call NewCompileCache.
type CompileCache struct {
	c *compilecache.Cache
}

// NewCompileCache returns an empty cache bounded to maxEntries
// deployments (<= 0 selects the default, 128).
func NewCompileCache(maxEntries int) *CompileCache {
	return &CompileCache{c: compilecache.New(maxEntries)}
}

// Len reports the number of cached deployments.
func (c *CompileCache) Len() int { return c.c.Len() }

// Counters reports cache hits and misses since construction.
func (c *CompileCache) Counters() (hits, misses int64) { return c.c.Counters() }
