package fpsa

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fpsa/internal/device"
	"fpsa/internal/experiments"
)

// ExperimentIDs lists the reproducible paper artifacts plus the ablation
// studies grounded in the paper's §7 discussion, the measured serving
// artifacts ("serving", "sharding" and "sparsity", tunable via
// fpsa-bench -batch), the compilation-autotuner sweep ("autotune"), the
// fault-injection reliability study ("faults"), and the multi-model
// fleet serving load test ("fleet").
func ExperimentIDs() []string {
	ids := []string{
		"table1", "table2", "table3",
		"figure2", "figure6", "figure7", "figure8", "figure9",
		"ablation-transmission", "ablation-channels", "ablation-heteropes",
		"serving", "sharding", "sparsity", "autotune", "faults", "fleet",
	}
	sort.Strings(ids)
	return ids
}

// RunExperiment regenerates one paper table or figure and returns its text
// rendering. "all" runs everything. ctx bounds the long-running
// experiments (place-and-route sweeps, the serving benchmarks).
func RunExperiment(ctx context.Context, id string) (string, error) {
	switch strings.ToLower(id) {
	case "table1":
		return experiments.RenderTable1(experiments.Table1(device.Params45nm)), nil
	case "table2":
		return experiments.RenderTable2(experiments.Table2(device.Params45nm)), nil
	case "table3":
		rows, err := experiments.Table3(64)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable3(rows, 64), nil
	case "figure2":
		r, err := experiments.Figure2(nil)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure2(r), nil
	case "figure6":
		r, err := experiments.Figure6(nil)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure6(r), nil
	case "figure7":
		rows, err := experiments.Figure7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure7(rows), nil
	case "figure8":
		rows, err := experiments.Figure8(nil)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure8(rows, experiments.Figure8Dups), nil
	case "figure9":
		r, err := experiments.Figure9(experiments.Figure9Options{})
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure9(r), nil
	case "ablation-transmission":
		r, err := experiments.AblationTransmission()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationTransmission(r), nil
	case "ablation-channels":
		r, err := experiments.AblationChannelWidth(ctx, nil)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationChannelWidth(r), nil
	case "serving":
		return RunServingExperiment(ctx, 0)
	case "sharding":
		return RunShardingExperiment(ctx, 0)
	case "sparsity":
		return RunSparsityExperiment(ctx, 0)
	case "autotune":
		return RunAutotuneExperiment(ctx)
	case "faults":
		return RunFaultsExperiment(ctx)
	case "fleet":
		return RunFleetExperiment(ctx)
	case "ablation-heteropes":
		rows, err := experiments.AblationHeteroPEs(64)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationHeteroPEs(rows, 64), nil
	case "all":
		var b strings.Builder
		for _, one := range ExperimentIDs() {
			out, err := RunExperiment(ctx, one)
			if err != nil {
				return "", fmt.Errorf("fpsa: %s: %w", one, err)
			}
			b.WriteString(out)
			b.WriteString("\n")
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("%w: unknown experiment %q (known: %v, all)", ErrInvalidArgument, id, ExperimentIDs())
	}
}
