package fpsa

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"fpsa/internal/device"
	"fpsa/internal/synth"
	"fpsa/internal/trainer"
	"fpsa/internal/xbar"
)

// Dataset is a labeled feature set with features in [0, 1].
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// SyntheticDataset generates the clustered classification data the
// functional examples and the variation study train on.
func SyntheticDataset(seed int64, n, dim, classes int, noise float64) Dataset {
	ds := trainer.SyntheticClusters(rand.New(rand.NewSource(seed)), n, dim, classes, noise)
	return Dataset{X: ds.X, Y: ds.Y, Classes: ds.Classes}
}

// Split partitions a dataset front/back.
func (d Dataset) Split(frac float64) (train, test Dataset) {
	t1, t2 := d.internal().Split(frac)
	return Dataset{X: t1.X, Y: t1.Y, Classes: t1.Classes}, Dataset{X: t2.X, Y: t2.Y, Classes: t2.Classes}
}

func (d Dataset) internal() trainer.Dataset {
	return trainer.Dataset{X: d.X, Y: d.Y, Classes: d.Classes}
}

// DeployModel synthesizes a custom model functionally and returns a
// runnable spiking network. Weights are supplied per MAC layer (see
// Model.WeightLayers for the names): FC layers take [in][out] matrices;
// ungrouped convolutions take [K²·Cin][OutC] matrices with rows ordered
// (channel, ky, kx). Pooling, residual adds, flatten and ReLU need no
// weights; grouped convolutions and LRN are not supported functionally.
// Tensors flatten CHW: signal (c, y, x) is input index (c·H + y)·W + x.
//
// Deprecated: compile the model and derive the net from the one
// deployment handle instead — Compile(ctx, m, WithWeights(weights))
// followed by Deployment.NewNet(nil) — so the execution configuration
// flows from the compile.
func DeployModel(m Model, weights map[string][][]float64) (*SpikingNet, error) {
	d, err := Compile(context.Background(), m, WithWeights(weights))
	if err != nil {
		return nil, err
	}
	return d.NewNet(nil)
}

// TrainedMLP is a trained bias-free ReLU network, deployable onto FPSA.
type TrainedMLP struct {
	net *trainer.MLP
}

// TrainMLP trains an MLP with the given layer dims ([input, hidden...,
// classes]) for the given epochs.
func TrainMLP(seed int64, dims []int, train Dataset, epochs int) (*TrainedMLP, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := trainer.NewMLP(rng, dims)
	if err != nil {
		return nil, err
	}
	net.Train(rng, train.internal(), trainer.TrainOptions{Epochs: epochs})
	return &TrainedMLP{net: net}, nil
}

// Accuracy evaluates float-model classification accuracy.
func (t *TrainedMLP) Accuracy(ds Dataset) float64 { return t.net.Accuracy(ds.internal()) }

// Predict returns the float model's class for one sample.
func (t *TrainedMLP) Predict(x []float64) int { return t.net.Predict(x) }

// Model returns the trained network's computational graph as a Model,
// ready for Compile alongside WeightSource.
func (t *TrainedMLP) Model() Model { return Model{graph: t.net.Graph("deployed-mlp")} }

// WeightSource adapts the trained weights for WithWeightSource, keyed by
// the layer names of Model().WeightLayers.
func (t *TrainedMLP) WeightSource() WeightSource { return WeightSource(t.net.WeightSource()) }

// Deploy synthesizes the trained network onto FPSA PEs and returns a
// runnable spiking network.
//
// Deprecated: compile the trained model and derive the net from the one
// deployment handle instead — Compile(ctx, t.Model(),
// WithWeightSource(t.WeightSource())) followed by Deployment.NewNet(nil).
func (t *TrainedMLP) Deploy() (*SpikingNet, error) {
	d, err := Compile(context.Background(), t.Model(), WithWeightSource(t.WeightSource()))
	if err != nil {
		return nil, err
	}
	return d.NewNet(nil)
}

// ExecMode selects how a SpikingNet evaluates.
type ExecMode int

// Execution modes.
const (
	// ModeReference uses the integer reference semantics of the PE.
	ModeReference ExecMode = iota
	// ModeSpiking runs the full cycle-level spiking simulation.
	ModeSpiking
	// ModeSpikingNoisy additionally programs the ReRAM cells with
	// device variation (deterministic per SpikingNet seed).
	ModeSpikingNoisy
)

// String names the mode the way the CLIs spell it.
func (m ExecMode) String() string {
	switch m {
	case ModeReference:
		return "reference"
	case ModeSpiking:
		return "spiking"
	case ModeSpikingNoisy:
		return "noisy"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SpikePath selects which spiking kernel evaluates each crossbar's
// micro-batches. The dense kernel walks every cycle of every column; the
// sparse kernel works on bit-packed spike trains and skips dead cycles
// (and, with ideal programming, collapses equal-count rows). The two are
// bit-identical in every execution mode — the choice changes wall-clock,
// never outputs — so SpikeAuto, which probes each micro-batch's spike
// density and picks per batch, is the right default. The FPSA_SPIKE_PATH
// and FPSA_SPIKE_DENSITY environment variables override the configured
// path and auto threshold at deploy time.
type SpikePath int

// Spiking-kernel paths.
const (
	// SpikeAuto probes each micro-batch's input spike density and takes
	// the sparse kernel at or below the configured threshold (and always
	// on ideally programmed crossbars, where it measures faster at every
	// density).
	SpikeAuto SpikePath = iota
	// SpikeDense forces the dense cycle-walk kernel.
	SpikeDense
	// SpikeSparse forces the bit-packed sparse kernel.
	SpikeSparse
)

// String names the path the way the CLIs spell it.
func (p SpikePath) String() string {
	switch p {
	case SpikeAuto:
		return "auto"
	case SpikeDense:
		return "dense"
	case SpikeSparse:
		return "sparse"
	}
	return fmt.Sprintf("spikepath(%d)", int(p))
}

// ParseSpikePath parses a CLI spelling of a SpikePath.
func ParseSpikePath(name string) (SpikePath, error) {
	switch name {
	case "auto", "":
		return SpikeAuto, nil
	case "dense":
		return SpikeDense, nil
	case "sparse":
		return SpikeSparse, nil
	}
	return 0, fmt.Errorf("%w: unknown spike path %q (want auto, dense, or sparse)", ErrInvalidArgument, name)
}

// xbarPath maps the public path onto the kernel layer's.
func (p SpikePath) xbarPath() (xbar.Path, error) {
	switch p {
	case SpikeAuto:
		return xbar.PathAuto, nil
	case SpikeDense:
		return xbar.PathDense, nil
	case SpikeSparse:
		return xbar.PathSparse, nil
	}
	return 0, fmt.Errorf("%w: unknown spike path %d", ErrInvalidArgument, p)
}

// SpikingNet is a network deployed onto simulated FPSA processing
// elements.
type SpikingNet struct {
	prog *synth.Program
	// faults is the compiled fault scenario (WithFaultModel/WithFaultMap),
	// applied deterministically whenever the net programs its crossbars —
	// identical in every execution mode and at every replica count. nil
	// for ideal devices.
	faults *device.FaultModel
	mu     sync.Mutex
	seed   int64
	// rng is the persistent programming-variation stream for
	// ModeSpikingNoisy: seeded from seed, advanced one draw per noisy
	// run, so consecutive runs see fresh variation while SetSeed
	// reproduces the whole sequence.
	rng *rand.Rand
}

// SetSeed fixes the programming-variation RNG for ModeSpikingNoisy and
// restarts its sequence: after SetSeed(s) the net replays the same
// series of noisy trials it produced the last time it was seeded with s.
func (s *SpikingNet) SetSeed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seed = seed
	s.rng = rand.New(rand.NewSource(seed + 7))
}

// currentSeed reads the variation seed under the lock.
func (s *SpikingNet) currentSeed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seed
}

// noisyRng returns a fresh variation RNG for one noisy run, deriving its
// seed from the persistent stream so every call draws different
// variation (a Monte-Carlo loop measures distinct trials) yet the
// sequence is a deterministic function of SetSeed.
func (s *SpikingNet) noisyRng() *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.seed + 7))
	}
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// Classify quantizes features in [0,1] into the sampling window and runs
// the deployed network, returning the argmax class.
func (s *SpikingNet) Classify(features []float64, mode ExecMode) (int, error) {
	out, err := s.Outputs(features, mode)
	if err != nil {
		return 0, err
	}
	return synth.Argmax(out), nil
}

// synthMode maps the public mode onto the executor's.
func (m ExecMode) synthMode() (synth.ExecMode, error) {
	switch m {
	case ModeReference:
		return synth.ModeReference, nil
	case ModeSpiking:
		return synth.ModeSpiking, nil
	case ModeSpikingNoisy:
		return synth.ModeSpikingNoisy, nil
	}
	return 0, fmt.Errorf("%w: unknown exec mode %d", ErrInvalidArgument, m)
}

// Outputs returns the raw output spike counts.
func (s *SpikingNet) Outputs(features []float64, mode ExecMode) ([]int, error) {
	window := s.prog.Params.SamplingWindow()
	in := synth.QuantizeInput(features, window)
	m, err := mode.synthMode()
	if err != nil {
		return nil, err
	}
	opts := synth.RunOptions{Mode: m, Faults: s.faults}
	if mode == ModeSpikingNoisy {
		opts.Rng = s.noisyRng()
	}
	return s.prog.Run(in, opts)
}

// ClassifyBatch quantizes a micro-batch of feature vectors and runs the
// deployed network once over the whole batch, returning the positional
// argmax classes. The network's crossbars are programmed once for the
// batch and every stage evaluates all samples together (the batched
// kernel path), so this is substantially faster than looping Classify.
// In ModeSpikingNoisy the batch shares a single programming-variation
// draw — one physical chip serving the batch — advancing the SetSeed
// stream by one draw per batch rather than one per sample.
func (s *SpikingNet) ClassifyBatch(features [][]float64, mode ExecMode) ([]int, error) {
	outs, err := s.OutputsBatch(features, mode)
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(outs))
	for i, out := range outs {
		labels[i] = synth.Argmax(out)
	}
	return labels, nil
}

// OutputsBatch returns the raw output spike counts for a micro-batch of
// feature vectors, positionally. See ClassifyBatch for the batching and
// noisy-mode semantics.
func (s *SpikingNet) OutputsBatch(features [][]float64, mode ExecMode) ([][]int, error) {
	if len(features) == 0 {
		return nil, nil
	}
	window := s.prog.Params.SamplingWindow()
	ins := make([][]int, len(features))
	for i, f := range features {
		ins[i] = synth.QuantizeInput(f, window)
	}
	m, err := mode.synthMode()
	if err != nil {
		return nil, err
	}
	opts := synth.RunOptions{Mode: m, Faults: s.faults}
	if mode == ModeSpikingNoisy {
		opts.Rng = s.noisyRng()
	}
	return s.prog.RunBatch(ins, opts)
}

// Window returns the deployment's sampling window Γ.
func (s *SpikingNet) Window() int { return s.prog.Params.SamplingWindow() }

// Stages returns the number of core-op stages the network executes.
func (s *SpikingNet) Stages() int { return len(s.prog.Stages) }

// VariationAccuracy runs the Figure 9 Monte-Carlo study on this trained
// network: normalized accuracy of a weight representation under
// programming variation. Method is "splice" or "add".
func (t *TrainedMLP) VariationAccuracy(ds Dataset, method string, cells, trials int, seed int64) (float64, error) {
	spec := device.Cell4BitMeasured
	var rep device.Representation
	switch method {
	case "splice":
		rep = device.NewSplice(spec, cells)
	case "add":
		rep = device.NewAdd(spec, cells)
	default:
		return 0, fmt.Errorf("%w: unknown representation %q (want splice or add)", ErrInvalidArgument, method)
	}
	rng := rand.New(rand.NewSource(seed))
	res := trainer.VariationStudy(t.net, ds.internal(), rep, spec, rng, trials)
	return res.NormalizedAccuracy, nil
}
