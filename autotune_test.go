package fpsa

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestParseObjectiveRoundTrip: every objective parses from its String
// spelling and its short form; junk is ErrInvalidArgument.
func TestParseObjectiveRoundTrip(t *testing.T) {
	for _, obj := range []Objective{MinLatency, MinEnergy, MaxThroughputPerChip} {
		got, err := ParseObjective(obj.String())
		if err != nil || got != obj {
			t.Errorf("ParseObjective(%q) = %v, %v", obj.String(), got, err)
		}
	}
	shorts := map[string]Objective{"latency": MinLatency, "energy": MinEnergy, "throughput": MaxThroughputPerChip}
	for s, want := range shorts {
		if got, err := ParseObjective(s); err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseObjective("bogus"); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("ParseObjective(bogus): %v, want ErrInvalidArgument", err)
	}
}

// TestAutotuneMeetsTargetGain pins the headline result: on LeNet the
// tuned assignment beats the best uniform duplication inside the same
// envelope by well over 15% — for energy at 480 PEs (saturating cheap
// layers removes their SMB charge) and for latency at 700 PEs (the
// saturated layers leave the critical fill path). Oracle-only (refine 0)
// keeps the test fast; the values are deterministic.
func TestAutotuneMeetsTargetGain(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		objective Objective
		budget    int
	}{
		{MinEnergy, 480},
		{MinLatency, 700},
	}
	for _, tc := range cases {
		d, rep, err := Autotune(context.Background(), m, tc.objective,
			WithPEBudget(tc.budget), WithAutotuneRefine(0))
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.objective, tc.budget, err)
		}
		if rep.Improvement < 0.15 {
			t.Errorf("%v/%d: improvement %.1f%%, want ≥ 15%%\n%s",
				tc.objective, tc.budget, 100*rep.Improvement, rep)
		}
		if len(rep.LayerDup) == 0 {
			t.Errorf("%v/%d: winner is uniform; a >15%% gain needs a per-layer assignment", tc.objective, tc.budget)
		}
		if rep.TunedPEs > tc.budget {
			t.Errorf("%v/%d: tuned spend %d exceeds budget", tc.objective, tc.budget, rep.TunedPEs)
		}
		if rep.BaselineDup < 1 || rep.BaselinePEs > tc.budget {
			t.Errorf("%v/%d: baseline dup %d / %d PEs out of envelope", tc.objective, tc.budget, rep.BaselineDup, rep.BaselinePEs)
		}
		// The returned deployment realizes the reported assignment.
		if got := d.alloc.TotalPEs; got != rep.TunedPEs {
			t.Errorf("%v/%d: deployment spends %d PEs, report says %d", tc.objective, tc.budget, got, rep.TunedPEs)
		}
	}
}

// TestAutotuneNeverWorseThanUniform: across objectives and budgets the
// tuned oracle value is at least the best uniform value (the uniform
// family is inside the search space, so Improvement cannot go negative).
func TestAutotuneNeverWorseThanUniform(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{54, 120, 480} {
		for _, obj := range []Objective{MinLatency, MinEnergy, MaxThroughputPerChip} {
			_, rep, err := Autotune(context.Background(), m, obj,
				WithPEBudget(budget), WithAutotuneRefine(0))
			if err != nil {
				t.Fatalf("%v/%d: %v", obj, budget, err)
			}
			if rep.Improvement < 0 {
				t.Errorf("%v/%d: tuned is worse than uniform (%.2f%%)", obj, budget, 100*rep.Improvement)
			}
		}
	}
}

// TestAutotuneDeterministicAcrossWorkers: the whole report — winner,
// baseline, pruning counts — is identical at any WithParallelism level.
func TestAutotuneDeterministicAcrossWorkers(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	var reports []AutotuneReport
	for _, workers := range []int{1, 4, 13} {
		_, rep, err := Autotune(context.Background(), m, MinEnergy,
			WithPEBudget(480), WithAutotuneRefine(0), WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Errorf("report differs across worker counts:\n1 worker:  %+v\nvariant %d: %+v", reports[0], i, reports[i])
		}
	}
}

// TestAutotuneValidation: the search rejects nonsense with the taxonomy.
func TestAutotuneValidation(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name      string
		objective Objective
		opts      []Option
		want      error
	}{
		{"unknown objective", Objective(9), nil, ErrInvalidArgument},
		{"negative budget", MinLatency, []Option{WithPEBudget(-1)}, ErrInvalidArgument},
		{"negative refine", MinLatency, []Option{WithAutotuneRefine(-1)}, ErrInvalidArgument},
		{"pinned layer dup", MinLatency, []Option{WithLayerDuplication(map[string]int{"conv1": 2})}, ErrInvalidArgument},
		{"pinned cuts", MinLatency, []Option{WithShardCuts(3)}, ErrInvalidArgument},
		{"infeasible budget", MinLatency, []Option{WithPEBudget(5)}, ErrCapacity},
	}
	for _, tc := range cases {
		if _, _, err := Autotune(ctx, m, tc.objective, tc.opts...); !errors.Is(err, tc.want) {
			t.Errorf("%s: %v, want %v", tc.name, err, tc.want)
		}
	}
	// Cancellation aborts the search with ctx.Err().
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Autotune(cancelled, m, MinLatency, WithPEBudget(54)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Autotune: %v, want context.Canceled", err)
	}
}

// TestAutotuneRefineSharesCache: with a caller-supplied cache, a repeat
// search place & routes nothing — every finalist sub-compile is a hit.
func TestAutotuneRefineSharesCache(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCompileCache(0)
	run := func() AutotuneReport {
		t.Helper()
		_, rep, err := Autotune(context.Background(), m, MinEnergy,
			WithPEBudget(54), WithAutotuneRefine(1), WithCache(cache), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run()
	if first.Refined != 1 || first.CacheMisses == 0 {
		t.Fatalf("first search: refined %d, cache %d hit/%d miss — expected a cold miss",
			first.Refined, first.CacheHits, first.CacheMisses)
	}
	if first.RoutedValue == 0 {
		t.Fatalf("refined search reported no routed value: %+v", first)
	}
	second := run()
	if second.CacheMisses != 0 || second.CacheHits == 0 {
		t.Errorf("repeat search: cache %d hit/%d miss — expected hits only",
			second.CacheHits, second.CacheMisses)
	}
	if second.TunedValue != first.TunedValue || second.RoutedValue != first.RoutedValue {
		t.Errorf("repeat search changed the answer: %+v vs %+v", first, second)
	}
}

// TestLayerDupUniformEquivalence: a WithLayerDuplication map that spells
// out exactly what the global WithDuplication knob would allocate is
// bit-exact with it — same allocation, netlist, perf model, placement
// cost, and classification outputs in all three execution modes.
func TestLayerDupUniformEquivalence(t *testing.T) {
	m, weights := stripesCNN(t)
	for _, dup := range []int{2, 5} {
		d1, err := Compile(context.Background(), m, WithDuplication(dup), WithWeights(weights), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		// Spell the global knob's realized allocation as a per-layer map.
		layerDup := map[string]int{}
		for gi, grp := range d1.coreop.Groups {
			if have, ok := layerDup[grp.Layer]; ok && have != d1.alloc.Dup[gi] {
				t.Fatalf("layer %q groups disagree on dup (%d vs %d); fixture unusable", grp.Layer, have, d1.alloc.Dup[gi])
			}
			layerDup[grp.Layer] = d1.alloc.Dup[gi]
		}
		d2, err := Compile(context.Background(), m, WithLayerDuplication(layerDup), WithWeights(weights), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d1.alloc.Dup, d2.alloc.Dup) || !reflect.DeepEqual(d1.alloc.Iterations, d2.alloc.Iterations) {
			t.Fatalf("dup %d: allocations differ: %v vs %v", dup, d1.alloc, d2.alloc)
		}
		if !reflect.DeepEqual(d1.nl, d2.nl) {
			t.Fatalf("dup %d: netlists differ", dup)
		}
		p1, err := d1.Performance()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := d2.Performance()
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Errorf("dup %d: perf summaries differ:\nglobal    %+v\nper-layer %+v", dup, p1, p2)
		}
		s1, err := d1.PlaceAndRoute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		s2, err := d2.PlaceAndRoute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s1.WirelengthCost != s2.WirelengthCost || s1.MeanHops != s2.MeanHops {
			t.Errorf("dup %d: place & route differs: %+v vs %+v", dup, s1, s2)
		}
		classifyAll(t, d1, d2, dup)
	}
}

// classifyAll asserts bit-identical outputs from both deployments across
// every execution mode.
func classifyAll(t *testing.T, d1, d2 *Deployment, dup int) {
	t.Helper()
	sn1, err := d1.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := d2.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	sn1.SetSeed(11)
	sn2.SetSeed(11)
	input := make([]float64, 64)
	for i := range input {
		input[i] = float64((i*7)%9) / 9
	}
	for _, mode := range []ExecMode{ModeReference, ModeSpiking, ModeSpikingNoisy} {
		o1, err := sn1.Outputs(input, mode)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := sn2.Outputs(input, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(o1, o2) {
			t.Errorf("dup %d mode %v: outputs differ: %v vs %v", dup, mode, o1, o2)
		}
	}
}

// stripesCNN builds the small two-layer CNN fixture (conv + FC with
// hand-set stripe-detector weights) used by the equivalence property:
// its conv groups have reuse > 1, so duplication assignments actually
// vary across layers.
func stripesCNN(t *testing.T) (Model, map[string][][]float64) {
	t.Helper()
	m, err := NewModelBuilder("stripes", 1, 8, 8).
		Conv2D(2, 3, 1, 1).ReLU().
		MaxPool(2, 2).
		GlobalAvgPool().
		FC(2).ReLU().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	layers := m.WeightLayers()
	horiz := []float64{1, 1, 1, 0, 0, 0, -1, -1, -1}
	vert := []float64{1, 0, -1, 1, 0, -1, 1, 0, -1}
	conv := make([][]float64, 9)
	for r := range conv {
		conv[r] = []float64{horiz[r], vert[r]}
	}
	return m, map[string][][]float64{
		layers[0]: conv,
		layers[1]: {{1, 0}, {0, 1}},
	}
}
