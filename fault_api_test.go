package fpsa

import (
	"context"
	"testing"
)

// faultedOutputs classifies the test split through an engine with the
// given worker count and returns the labels plus the engine stats.
func faultedOutputs(t *testing.T, d *Deployment, workers int, test Dataset) ([]int, EngineStats) {
	t.Helper()
	eng, err := d.NewEngine(context.Background(), WithWorkers(workers), WithMode(ModeReference))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	labels := make([]int, len(test.X))
	for i, x := range test.X {
		labels[i], err = eng.Classify(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
	}
	return labels, eng.Stats()
}

// TestFaultModelWorkerCountInvariant: fault maps derive from (seed,
// group), never from the serving replica, so a faulted engine classifies
// identically at any worker count and every replica reports the same
// per-deployment residual stuck-cell count.
func TestFaultModelWorkerCountInvariant(t *testing.T) {
	d, _, test := trainedDeployment(t, WithFaultMap(FaultMap{Rate: 0.03, Seed: 17, NoRemap: true}))
	test.X = test.X[:40]
	want, stats1 := faultedOutputs(t, d, 1, test)
	if stats1.FaultedCells == 0 {
		t.Fatal("unremapped 3% fault rate reports no faulted cells")
	}
	for _, workers := range []int{2, 4} {
		got, stats := faultedOutputs(t, d, workers, test)
		if stats.FaultedCells != stats1.FaultedCells {
			t.Fatalf("%d workers report %d faulted cells, 1 worker %d",
				workers, stats.FaultedCells, stats1.FaultedCells)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d workers: sample %d classified %d, 1 worker said %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestFaultModelEndToEnd: the compiled fault scenario flows Compile →
// NewNet → NewEngine. An unremapped scenario must surface residual
// faults in the engine stats and the stats string; the same scenario
// with remapping carries strictly fewer.
func TestFaultModelEndToEnd(t *testing.T) {
	noRemap, _, _ := trainedDeployment(t, WithFaultMap(FaultMap{Rate: 0.05, Seed: 3, NoRemap: true}))
	remap, _, test := trainedDeployment(t, WithFaultMap(FaultMap{Rate: 0.05, Seed: 3}))
	_, statsN := faultedOutputs(t, noRemap, 1, Dataset{X: test.X[:4], Y: test.Y[:4], Classes: test.Classes})
	_, statsR := faultedOutputs(t, remap, 1, Dataset{X: test.X[:4], Y: test.Y[:4], Classes: test.Classes})
	if statsN.FaultedCells == 0 {
		t.Fatal("unremapped 5% fault rate reports no faulted cells")
	}
	if statsR.FaultedCells >= statsN.FaultedCells {
		t.Fatalf("remapping left %d faulted cells, no-remap deployment has %d",
			statsR.FaultedCells, statsN.FaultedCells)
	}
	if s := statsN.String(); !containsFaultCount(s) {
		t.Fatalf("stats string %q does not surface the faulted-cell count", s)
	}
}

// containsFaultCount reports whether a stats rendering mentions faults.
func containsFaultCount(s string) bool {
	for i := 0; i+12 <= len(s); i++ {
		if s[i:i+12] == "faulted cell" {
			return true
		}
	}
	return false
}

// TestFaultModelZeroRateNetIdentical: the public zero-rate equivalence —
// a deployment compiled with a zero-rate model classifies bit-identically
// to one compiled with no model, in every execution mode.
func TestFaultModelZeroRateNetIdentical(t *testing.T) {
	plain, _, test := trainedDeployment(t)
	zero, _, _ := trainedDeployment(t, WithFaultModel(0, 99))
	a, err := plain.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := zero.NewNet(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{ModeReference, ModeSpiking, ModeSpikingNoisy} {
		a.SetSeed(4)
		b.SetSeed(4)
		for i := 0; i < 8; i++ {
			wa, err := a.Outputs(test.X[i], mode)
			if err != nil {
				t.Fatal(err)
			}
			wb, err := b.Outputs(test.X[i], mode)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wa {
				if wa[j] != wb[j] {
					t.Fatalf("%v: sample %d out[%d]: plain %d, zero-rate %d", mode, i, j, wa[j], wb[j])
				}
			}
		}
	}
}

// TestFaultModelCacheKeySeparation: a faulted deployment must never hit
// the ideal-device cache entry (placement penalties differ), while an
// inactive model shares it — bit-identical hardware, same artifacts.
func TestFaultModelCacheKeySeparation(t *testing.T) {
	d, _, _ := trainedDeployment(t)
	ideal := d.cacheKey(-1)
	zero, _, _ := trainedDeployment(t, WithFaultModel(0, 5))
	if zero.cacheKey(-1) != ideal {
		t.Fatal("inactive fault model changed the cache key")
	}
	faulted, _, _ := trainedDeployment(t, WithFaultModel(0.02, 5))
	if faulted.cacheKey(-1) == ideal {
		t.Fatal("active fault model kept the ideal-device cache key")
	}
	reseed, _, _ := trainedDeployment(t, WithFaultModel(0.02, 6))
	if reseed.cacheKey(-1) == faulted.cacheKey(-1) {
		t.Fatal("different fault seeds share a cache key")
	}
	norm, _, _ := trainedDeployment(t, WithFaultMap(FaultMap{Rate: 0.02, Seed: 5, NoRemap: true}))
	if norm.cacheKey(-1) == faulted.cacheKey(-1) {
		t.Fatal("remap and no-remap deployments share a cache key")
	}
}
