package fpsa

import (
	"context"
	"strings"
	"testing"
)

func TestLoadBenchmark(t *testing.T) {
	names := BenchmarkModels()
	if len(names) != 7 {
		t.Fatalf("BenchmarkModels = %v", names)
	}
	m, err := LoadBenchmark("VGG16")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "VGG16" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Weights() < 138e6 || m.Weights() > 139e6 {
		t.Errorf("Weights = %d", m.Weights())
	}
	if _, err := LoadBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCompileZeroModelRejected(t *testing.T) {
	if _, err := CompileConfig(Model{}, DefaultConfig()); err == nil {
		t.Error("zero Model compiled")
	}
}

func TestCompileAndPerformance(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompileConfig(m, Config{Duplication: 4})
	if err != nil {
		t.Fatal(err)
	}
	pes, _, clbs := d.Blocks()
	if pes == 0 || clbs == 0 {
		t.Fatalf("blocks: pes=%d clbs=%d", pes, clbs)
	}
	if d.AreaMM2() <= 0 {
		t.Error("non-positive area")
	}
	groups, coreOps := d.CoreOps()
	if groups == 0 || coreOps == 0 {
		t.Error("no core-ops")
	}
	p, err := d.Performance()
	if err != nil {
		t.Fatal(err)
	}
	if p.ThroughputSPS <= 0 || p.PerfOPS <= 0 {
		t.Errorf("performance: %+v", p)
	}
	for _, field := range []string{"throughput", "uJ/sample", "mW"} {
		if !strings.Contains(p.String(), field) {
			t.Errorf("summary String() missing %q: %s", field, p.String())
		}
	}
}

func TestModelBuilderChain(t *testing.T) {
	m, err := NewModelBuilder("custom", 3, 8, 8).
		Conv2D(8, 3, 1, 1).ReLU().
		MaxPool(2, 2).
		Mark("trunk").
		Conv2D(8, 3, 1, 1).BatchNorm().ReLU().
		Residual("trunk").
		GlobalAvgPool().
		FC(4).Softmax().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights() == 0 || m.Ops() == 0 {
		t.Error("custom model has no weights/ops")
	}
	d, err := CompileConfig(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Performance(); err != nil {
		t.Fatal(err)
	}
}

func TestModelBuilderErrorsStick(t *testing.T) {
	_, err := NewModelBuilder("bad", 3, 8, 8).
		FC(10). // FC on non-flat input
		ReLU().
		Build()
	if err == nil {
		t.Error("invalid chain built")
	}
	_, err = NewModelBuilder("bad2", 3, 8, 8).Residual("missing").Build()
	if err == nil {
		t.Error("missing mark accepted")
	}
	_, err = NewModelBuilder("bad3", 3, 8, 8).Concat("missing").Build()
	if err == nil {
		t.Error("missing concat mark accepted")
	}
}

func TestPlaceAndRouteSmallModel(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompileConfig(m, Config{Duplication: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("routing did not converge: %+v", stats)
	}
	if stats.MeanHops <= 0 || stats.MeanHops > 12 {
		t.Errorf("mean hops = %.1f, want small (annealed locality)", stats.MeanHops)
	}
	// Feed the measured hops back into the perf model.
	p, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if p.ThroughputSPS <= 0 {
		t.Error("routed-hops performance not positive")
	}
	// The final Figure 5 artifact: a verified chip configuration.
	info, err := d.Bitstream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.ProgrammedCells == 0 || info.SBCells == 0 || info.CBCells == 0 {
		t.Errorf("bitstream empty: %+v", info)
	}
	if info.TrackOccupancy > 2048 {
		t.Errorf("occupancy %d beyond channel width", info.TrackOccupancy)
	}
}

func TestBitstreamRequiresPlaceAndRoute(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompileConfig(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bitstream(context.Background()); err == nil {
		t.Error("Bitstream without PlaceAndRoute accepted")
	}
}

func TestTrainDeployClassify(t *testing.T) {
	ds := SyntheticDataset(11, 600, 12, 3, 0.08)
	train, test := ds.Split(0.7)
	net, err := TrainMLP(11, []int{12, 16, 3}, train, 40)
	if err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(test); acc < 0.9 {
		t.Fatalf("float accuracy = %.3f", acc)
	}
	sn, err := net.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Window() != 64 {
		t.Errorf("window = %d", sn.Window())
	}
	agree := 0
	const n = 40
	for i := 0; i < n; i++ {
		label, err := sn.Classify(test.X[i], ModeReference)
		if err != nil {
			t.Fatal(err)
		}
		if label == net.Predict(test.X[i]) {
			agree++
		}
	}
	if frac := float64(agree) / n; frac < 0.8 {
		t.Errorf("reference/float agreement = %.2f", frac)
	}
	// Spiking and noisy modes run end to end.
	if _, err := sn.Classify(test.X[0], ModeSpiking); err != nil {
		t.Fatal(err)
	}
	sn.SetSeed(5)
	if _, err := sn.Classify(test.X[0], ModeSpikingNoisy); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Classify(test.X[0], ExecMode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestVariationAccuracyAPI(t *testing.T) {
	ds := SyntheticDataset(13, 400, 10, 3, 0.06)
	train, test := ds.Split(0.7)
	net, err := TrainMLP(13, []int{10, 12, 3}, train, 30)
	if err != nil {
		t.Fatal(err)
	}
	add, err := net.VariationAccuracy(test, "add", 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if add <= 0 || add > 1.2 {
		t.Errorf("add accuracy = %v", add)
	}
	if _, err := net.VariationAccuracy(test, "bogus", 2, 1, 1); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestDeployCustomCNN(t *testing.T) {
	m, err := NewModelBuilder("stripes", 1, 8, 8).
		Conv2D(2, 3, 1, 1).ReLU().
		MaxPool(2, 2).
		GlobalAvgPool().
		FC(2).ReLU().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	layers := m.WeightLayers()
	if len(layers) != 2 {
		t.Fatalf("WeightLayers = %v", layers)
	}
	horiz := []float64{1, 1, 1, 0, 0, 0, -1, -1, -1}
	vert := []float64{1, 0, -1, 1, 0, -1, 1, 0, -1}
	conv := make([][]float64, 9)
	for r := range conv {
		conv[r] = []float64{horiz[r], vert[r]}
	}
	sn, err := DeployModel(m, map[string][][]float64{
		layers[0]: conv,
		layers[1]: {{1, 0}, {0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	stripes := func(dir int) []float64 {
		img := make([]float64, 64)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				k := y
				if dir == 1 {
					k = x
				}
				if k%2 == 0 {
					img[y*8+x] = 0.9
				} else {
					img[y*8+x] = 0.1
				}
			}
		}
		return img
	}
	for dir := 0; dir < 2; dir++ {
		label, err := sn.Classify(stripes(dir), ModeReference)
		if err != nil {
			t.Fatal(err)
		}
		if label != dir {
			t.Errorf("stripes dir %d classified as %d", dir, label)
		}
	}
	// Missing weights must be rejected.
	if _, err := DeployModel(m, nil); err == nil {
		t.Error("DeployModel without weights accepted")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	out, err := RunExperiment(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("table1 output: %s", out)
	}
	out, err = RunExperiment(context.Background(), "table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "30.9") {
		t.Errorf("table2 output: %s", out)
	}
	if _, err := RunExperiment(context.Background(), "figure99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if got := len(ExperimentIDs()); got != 17 {
		t.Errorf("ExperimentIDs = %d entries", got)
	}
	// The cheaper figure/ablation dispatch paths.
	out, err = RunExperiment(context.Background(), "figure7")
	if err != nil || !strings.Contains(out, "FP-PRIME") {
		t.Errorf("figure7: %v / %q", err, out)
	}
	out, err = RunExperiment(context.Background(), "ablation-transmission")
	if err != nil || !strings.Contains(out, "NBD fill") {
		t.Errorf("ablation-transmission: %v", err)
	}
	out, err = RunExperiment(context.Background(), "figure2")
	if err != nil || !strings.Contains(out, "communication gap") {
		t.Errorf("figure2: %v", err)
	}
}

// TestClassifyBatchMatchesSerial: the public batched classification path
// returns the same labels as per-sample Classify in the deterministic
// modes, and OutputsBatch replays deterministically per SetSeed in the
// noisy mode (a batch shares one programming draw, so it is its own
// sequence, distinct from per-sample draws).
func TestClassifyBatchMatchesSerial(t *testing.T) {
	ds := SyntheticDataset(21, 300, 10, 3, 0.08)
	train, _ := ds.Split(0.8)
	net, err := TrainMLP(21, []int{10, 12, 3}, train, 20)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := net.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	batch := train.X[:9]
	for _, mode := range []ExecMode{ModeReference, ModeSpiking} {
		labels, err := sn.ClassifyBatch(batch, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) != len(batch) {
			t.Fatalf("mode %v: %d labels for %d samples", mode, len(labels), len(batch))
		}
		for i, x := range batch {
			want, err := sn.Classify(x, mode)
			if err != nil {
				t.Fatal(err)
			}
			if labels[i] != want {
				t.Errorf("mode %v sample %d: batch %d, serial %d", mode, i, labels[i], want)
			}
		}
	}
	sn.SetSeed(3)
	a, err := sn.OutputsBatch(batch, ModeSpikingNoisy)
	if err != nil {
		t.Fatal(err)
	}
	sn.SetSeed(3)
	b, err := sn.OutputsBatch(batch, ModeSpikingNoisy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("noisy batch not deterministic per seed: item %d col %d: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
	if out, err := sn.ClassifyBatch(nil, ModeReference); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	if _, err := sn.ClassifyBatch(batch, ExecMode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestServingBenchRuns pins the serving-throughput artifact end to end
// (small sample count to keep the suite fast).
func TestServingBenchRuns(t *testing.T) {
	r, err := ServingBench(context.Background(), ServingBenchOptions{Batch: 8, Workers: 2, Samples: 48, Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	if r.SerialSPS <= 0 || r.BatchedSPS <= 0 || r.EngineSPS <= 0 {
		t.Errorf("non-positive throughput: %+v", r)
	}
	if r.EngineStats.Requests != 48 {
		t.Errorf("engine served %d, want 48", r.EngineStats.Requests)
	}
	if r.EngineStats.MaxExecBatch < 1 || r.EngineStats.MaxExecBatch > 8 {
		t.Errorf("MaxExecBatch = %d, want in [1,8]", r.EngineStats.MaxExecBatch)
	}
	for _, want := range []string{"serial", "batched", "engine", "samples/s"} {
		if !strings.Contains(r.String(), want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}
