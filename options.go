package fpsa

import (
	"time"

	"fpsa/internal/device"
)

// WeightSource supplies trained float weights per MAC layer name (see
// Model.WeightLayers): FC layers are [in][out] matrices, ungrouped
// convolutions [K²·Cin][OutC] with rows ordered (channel, ky, kx). A nil
// return for a layer means no weights for it.
type WeightSource func(layer string) [][]float64

// compileSettings is what the compile Options assemble: the classic
// Config plus everything that flows from compile to execution but never
// entered the old struct (the functional weights).
type compileSettings struct {
	cfg     Config
	weights WeightSource

	// Autotune-only knobs (ignored by a plain Compile): the PE envelope
	// the search may spend, and how many finalists it places & routes.
	peBudget  int
	refine    int
	refineSet bool

	// faultModelSet/faultMapSet record which fault option populated
	// cfg.Faults, so Compile can reject the conflicting combination of
	// WithFaultModel and WithFaultMap instead of silently letting the
	// later option win.
	faultModelSet bool
	faultMapSet   bool
}

// Option configures Compile. Options are applied in order, so a later
// option overrides an earlier one; a nil Option is ignored.
type Option func(*compileSettings)

// WithDuplication sets the model duplication degree (§5.2 of the paper);
// the default is 1×.
func WithDuplication(n int) Option {
	return func(s *compileSettings) { s.cfg.Duplication = n }
}

// WithTracks overrides the routing channel width (default 2048).
func WithTracks(n int) Option {
	return func(s *compileSettings) { s.cfg.Tracks = n }
}

// WithLayerDuplication assigns per-layer duplication degrees, keyed by
// model layer name (see Model.WeightLayers): every weight group of an
// assigned layer receives that many PE copies (clamped to its reuse
// degree), while unassigned layers follow WithDuplication. This is the
// knob behind Autotune's output — a uniform map is bit-exact with the
// equivalent global WithDuplication. Degrees must be ≥ 1 and name layers
// the model has; Compile rejects anything else with ErrInvalidArgument.
func WithLayerDuplication(layerDup map[string]int) Option {
	return func(s *compileSettings) { s.cfg.LayerDup = copyIntMap(layerDup) }
}

// WithLayerTracks assigns per-layer routing channel requirements, keyed
// by model layer name. Each chip's channel width becomes the maximum
// requirement among the layers it hosts (a chip hosting any unassigned
// layer also honors the global WithTracks or its default), which lets the
// autotuner narrow channels below the generous 2048 default where routing
// demand allows. Widths must be ≥ 1 and name layers the model has;
// Compile rejects anything else with ErrInvalidArgument.
func WithLayerTracks(layerTracks map[string]int) Option {
	return func(s *compileSettings) { s.cfg.LayerTracks = copyIntMap(layerTracks) }
}

// WithShardCuts pins the multi-chip partition at exactly these group-chain
// cut positions (strictly increasing, each inside the group chain),
// bypassing the partition search; len(cuts)+1 chips result and WithChips
// need not be repeated. This is how Autotune replays a searched cut; most
// callers want WithChips/WithChipCapacity instead. Compile rejects
// non-increasing or out-of-range cuts with ErrInvalidArgument.
func WithShardCuts(cuts ...int) Option {
	return func(s *compileSettings) { s.cfg.ShardCuts = append([]int(nil), cuts...) }
}

// WithPEBudget sets the PE envelope Autotune may spend across the whole
// deployment (all chips together). 0 — the default — derives the
// envelope: WithChipCapacity × WithChips when a capacity is set,
// otherwise the uniform WithDuplication spend, so an un-budgeted search
// answers "same spend, better assignment". Plain Compile ignores it.
func WithPEBudget(n int) Option {
	return func(s *compileSettings) { s.peBudget = n }
}

// WithAutotuneRefine sets how many of Autotune's oracle-ranked finalists
// are actually placed & routed (through the compile cache) to rescore
// them with measured hop counts before the winner is chosen. 0 trusts
// the oracle ranking and skips place & route entirely; the default is 2.
// Plain Compile ignores it.
func WithAutotuneRefine(k int) Option {
	return func(s *compileSettings) { s.refine = k; s.refineSet = true }
}

// copyIntMap defensively copies an option's map so later caller mutation
// cannot alias into the compiled deployment. nil and empty stay nil.
func copyIntMap(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// FaultMap describes a deployment's non-ideal device scenario: a
// deterministic population of stuck ReRAM cells plus optional analog
// degradations, all derived from the seed so the same FaultMap always
// yields the same faulted hardware (any worker count, any chip count).
type FaultMap struct {
	// Rate is the stuck-cell probability per crossbar cell, in [0, 1].
	Rate float64
	// Seed drives the per-crossbar fault draws. Two deployments with the
	// same FaultMap see bit-identical fault populations.
	Seed int64
	// StuckHighFrac is the fraction of stuck cells pinned at maximum
	// conductance rather than zero (0 = the default, an even 0.5 split).
	StuckHighFrac float64
	// Drift scales every programmed conductance by (1 − Drift), modeling
	// time-dependent conductance decay; must be in [0, 1).
	Drift float64
	// ReadSigma adds a static Gaussian read-variation offset (stddev in
	// conductance units) to each programmed conductance; must be ≥ 0.
	ReadSigma float64
	// LayerSeeds overrides Seed for named model layers, letting an
	// experiment re-roll one layer's faults while the rest stay fixed.
	// Seeds must be ≥ 0 and name layers the model has.
	LayerSeeds map[string]int64
	// NoRemap disables the compiler's spare-row/column remapping, so
	// stuck cells land on live weights — the "without remapping" arm of
	// the reliability experiment.
	NoRemap bool
}

// active reports whether the map perturbs anything at all. An inactive
// (or nil) FaultMap compiles and executes bit-identically to no map.
func (f *FaultMap) active() bool {
	return f != nil && (f.Rate > 0 || f.Drift > 0 || f.ReadSigma > 0)
}

// deviceModel lowers the public FaultMap to the internal fault model the
// mapper and executors share. Inactive maps lower to nil.
func (f *FaultMap) deviceModel() *device.FaultModel {
	if !f.active() {
		return nil
	}
	return &device.FaultModel{
		Rate:      f.Rate,
		Seed:      f.Seed,
		HighFrac:  f.StuckHighFrac,
		Drift:     f.Drift,
		ReadSigma: f.ReadSigma,
		Seeds:     copyInt64Map(f.LayerSeeds),
		Remap:     !f.NoRemap,
	}
}

// clone deep-copies the map so later caller mutation cannot alias into
// the compiled deployment.
func (f *FaultMap) clone() *FaultMap {
	if f == nil {
		return nil
	}
	c := *f
	c.LayerSeeds = copyInt64Map(f.LayerSeeds)
	return &c
}

// WithFaultModel injects stuck-at cell faults at the given per-cell rate,
// drawn deterministically from seed, with spare-row/column remapping
// enabled — the simple form of WithFaultMap. Rate 0 is bit-identical to
// no fault model. Conflicts with WithFaultMap (ErrInvalidArgument).
func WithFaultModel(rate float64, seed int64) Option {
	return func(s *compileSettings) {
		s.cfg.Faults = &FaultMap{Rate: rate, Seed: seed}
		s.faultModelSet = true
	}
}

// WithFaultMap injects the full non-ideal device scenario — stuck cells,
// drift, read variation, per-layer seeds, optional remap opt-out. The
// compiler steers known-bad rows/columns around spare ones (unless
// m.NoRemap), penalizes placement of heavily-faulted PEs, and keys the
// compile cache on the scenario so faulted and ideal artifacts never
// collide. Conflicts with WithFaultModel (ErrInvalidArgument).
func WithFaultMap(m FaultMap) Option {
	return func(s *compileSettings) {
		s.cfg.Faults = m.clone()
		s.faultMapSet = true
	}
}

// copyInt64Map is copyIntMap for int64-valued maps (layer seed overrides).
func copyInt64Map(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WithSeed fixes the deployment's seed: it drives placement annealing
// and seeds the programming-variation stream of nets derived with
// Deployment.NewNet.
func WithSeed(seed int64) Option {
	return func(s *compileSettings) { s.cfg.Seed = seed }
}

// WithPlacementSeeds sets the multi-seed annealing portfolio size
// PlaceAndRoute runs (≤ 1 = a single run). See Config.PlacementSeeds.
func WithPlacementSeeds(n int) Option {
	return func(s *compileSettings) { s.cfg.PlacementSeeds = n }
}

// WithParallelism bounds the worker goroutines PlaceAndRoute uses for
// both the annealing portfolio and per-iteration net routing
// (0 = GOMAXPROCS). It changes wall-clock only, never results.
func WithParallelism(n int) Option {
	return func(s *compileSettings) { s.cfg.Parallelism = n }
}

// WithCache memoizes placement/routing/bitstream artifacts in the given
// content-addressed cache: a cache-hit PlaceAndRoute skips both phases
// entirely. Share one cache across every Compile in the process (see
// NewCompileCache and DeployCache.Artifacts).
func WithCache(c *CompileCache) Option {
	return func(s *compileSettings) { s.cfg.Cache = c }
}

// WithChips allows the deployment to span up to n chips (≤ 1 = the
// classic single-chip compile). A model whose PE demand exceeds
// WithChipCapacity is an error on one chip; with n ≥ 2 the core-op graph
// is partitioned across chips instead and each chip is placed, routed
// and configured independently. Engines derived with Deployment.NewEngine
// inherit the realized chip count, so the served pipeline always matches
// the compiled partition.
func WithChips(n int) Option {
	return func(s *compileSettings) { s.cfg.MaxChips = n }
}

// WithChipCapacity bounds one chip's PE count (0 = unbounded); with
// WithChips the model shards onto the fewest chips that fit.
func WithChipCapacity(n int) Option {
	return func(s *compileSettings) { s.cfg.ChipCapacity = n }
}

// WithShardPolicy selects the multi-chip partitioning objective, on
// both sides of the stack: the compiled chip partition and the stage
// cut of engines derived with Deployment.NewEngine. ShardAuto (the
// default) picks each side's natural objective — minimal inter-chip
// traffic for compilation, balanced per-chip load for the serving
// pipeline; an explicit ShardMinCut or ShardBalanced governs both.
func WithShardPolicy(p ShardPolicy) Option {
	return func(s *compileSettings) { s.cfg.ShardPolicy = p }
}

// WithWeights registers trained weights with the deployment, keyed by
// MAC layer name, so Deployment.NewNet and Deployment.NewEngine can
// derive a runnable SpikingNet without re-supplying them.
func WithWeights(weights map[string][][]float64) Option {
	if weights == nil {
		return func(*compileSettings) {}
	}
	return WithWeightSource(func(layer string) [][]float64 { return weights[layer] })
}

// WithWeightSource registers a weight source with the deployment — the
// functional-closure form of WithWeights (see TrainedMLP.WeightSource).
func WithWeightSource(src WeightSource) Option {
	return func(s *compileSettings) { s.weights = src }
}

// WithConfig applies a whole legacy Config at once. It exists so the
// deprecated Config-struct entry points stay thin; new code should use
// the individual options.
func WithConfig(cfg Config) Option {
	return func(s *compileSettings) { s.cfg = cfg }
}

// engineSettings is what the EngineOptions assemble. chipsSet records an
// explicit chip override so Deployment.NewEngine can distinguish "serve
// the compiled partition" (the default) from a conflicting request.
type engineSettings struct {
	cfg      EngineConfig
	chipsSet bool
}

// EngineOption configures Deployment.NewEngine. Options are applied in
// order; a nil EngineOption is ignored.
type EngineOption func(*engineSettings)

// WithWorkers sets the number of parallel execution replicas, each
// holding its own programmed simulation state (default 4).
func WithWorkers(n int) EngineOption {
	return func(s *engineSettings) { s.cfg.Workers = n }
}

// WithMaxBatch sets the micro-batch flush size (default 8).
func WithMaxBatch(n int) EngineOption {
	return func(s *engineSettings) { s.cfg.MaxBatch = n }
}

// WithFlushInterval sets the micro-batch flush deadline (default 500µs).
func WithFlushInterval(d time.Duration) EngineOption {
	return func(s *engineSettings) { s.cfg.FlushInterval = d }
}

// WithQueueDepth bounds the request queue (default 1024).
func WithQueueDepth(n int) EngineOption {
	return func(s *engineSettings) { s.cfg.QueueDepth = n }
}

// WithMode selects the execution semantics (default ModeSpiking, the
// serving default).
func WithMode(m ExecMode) EngineOption {
	return func(s *engineSettings) { s.cfg.Mode = m }
}

// WithSpikePath selects the spiking kernel the engine's crossbars run
// (default SpikeAuto: dense or bit-packed sparse per micro-batch, by
// observed spike density). The kernels are bit-identical in every mode,
// so this is purely a performance knob; the FPSA_SPIKE_PATH environment
// variable overrides it at deploy time.
func WithSpikePath(p SpikePath) EngineOption {
	return func(s *engineSettings) { s.cfg.Spike = p }
}

// WithSparseThreshold sets the SpikeAuto density cutoff in (0, 1] below
// which a micro-batch takes the sparse kernel (0 = the built-in default,
// 0.30). FPSA_SPIKE_DENSITY overrides it at deploy time.
func WithSparseThreshold(d float64) EngineOption {
	return func(s *engineSettings) { s.cfg.SparseThreshold = d }
}

// WithEngineChips explicitly overrides the engine's chip count. An
// engine derived from a sharded Deployment inherits the compiled chip
// count by default; an override that disagrees with a multi-chip
// deployment returns ErrChipConflict rather than silently serving a
// different partition. On a single-chip deployment, n ≥ 2 pipelines the
// program's stages across n simulated chips (a serving-side experiment;
// outputs stay bit-identical).
func WithEngineChips(n int) EngineOption {
	return func(s *engineSettings) { s.cfg.Chips = n; s.chipsSet = true }
}

// WithEngineConfig applies a whole legacy EngineConfig at once, keeping
// the deprecated struct entry points thin; new code should use the
// individual options. The Chips field counts as an explicit override
// only when non-zero.
func WithEngineConfig(cfg EngineConfig) EngineOption {
	return func(s *engineSettings) {
		s.cfg = cfg
		s.chipsSet = cfg.Chips != 0
	}
}
