package fpsa

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// deployTestNet trains and deploys the small MLP workload shared by the
// engine tests.
func deployTestNet(t testing.TB) (*SpikingNet, Dataset) {
	t.Helper()
	ds := SyntheticDataset(21, 400, 12, 3, 0.08)
	train, test := ds.Split(0.8)
	net, err := TrainMLP(21, []int{12, 16, 3}, train, 25)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := net.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return sn, test
}

// TestEngineMatchesSerialClassify races N goroutines through one Engine
// and requires every result to equal the serial Classify path.
func TestEngineMatchesSerialClassify(t *testing.T) {
	sn, test := deployTestNet(t)
	const samples = 16
	want := make([]int, samples)
	for i := range want {
		label, err := sn.Classify(test.X[i], ModeSpiking)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = label
	}
	eng, err := NewEngine(sn, EngineConfig{Workers: 4, MaxBatch: 4, Mode: ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < samples; i++ {
				label, err := eng.Classify(context.Background(), test.X[i])
				if err != nil {
					errs <- err
					return
				}
				if label != want[i] {
					errs <- fmt.Errorf("sample %d: engine %d, serial %d", i, label, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := eng.Stats()
	if s.Requests != goroutines*samples {
		t.Errorf("Requests = %d, want %d", s.Requests, goroutines*samples)
	}
	if s.Workers != 4 || s.Errors != 0 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "throughput") {
		t.Errorf("EngineStats.String() = %q", s.String())
	}
}

func TestEngineClassifyBatch(t *testing.T) {
	sn, test := deployTestNet(t)
	eng, err := NewEngine(sn, EngineConfig{Workers: 2, MaxBatch: 4, Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	batch := test.X[:10]
	labels, err := eng.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range batch {
		want, err := sn.Classify(x, ModeReference)
		if err != nil {
			t.Fatal(err)
		}
		if labels[i] != want {
			t.Errorf("batch[%d] = %d, want %d", i, labels[i], want)
		}
	}
}

func TestEngineFlushDeadline(t *testing.T) {
	sn, test := deployTestNet(t)
	eng, err := NewEngine(sn, EngineConfig{
		Workers:       1,
		MaxBatch:      128, // a lone request can only leave via the deadline
		FlushInterval: 2 * time.Millisecond,
		Mode:          ModeReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := eng.ClassifyCtx(ctx, test.X[0]); err != nil {
		t.Fatalf("deadline flush never released the request: %v", err)
	}
}

func TestNewEngineRejectsBadMode(t *testing.T) {
	sn, _ := deployTestNet(t)
	if _, err := NewEngine(sn, EngineConfig{Mode: ExecMode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDeployCache(t *testing.T) {
	cache := NewDeployCache()
	deploys := 0
	key := DeployKey{Model: "mlp-test", Dup: 1, Seed: 5}
	deploy := func() (*SpikingNet, error) {
		deploys++
		sn, _ := deployTestNet(t)
		return sn, nil
	}
	a, err := cache.GetOrDeploy(key, deploy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.GetOrDeploy(key, deploy)
	if err != nil {
		t.Fatal(err)
	}
	if deploys != 1 {
		t.Errorf("deploy ran %d times, want 1", deploys)
	}
	if hits, misses := cache.Counters(); hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if cache.Len() != 1 {
		t.Errorf("Len = %d", cache.Len())
	}
	// Both handles run the shared program and agree.
	ds := SyntheticDataset(22, 4, 12, 3, 0.08)
	for _, x := range ds.X {
		la, err := a.Classify(x, ModeReference)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.Classify(x, ModeReference)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Errorf("cached deployments disagree: %d vs %d", la, lb)
		}
	}
}

// TestNoisySequenceAdvances is the regression test for the fixed-RNG
// bug: consecutive ModeSpikingNoisy runs must be able to draw different
// variation (a Monte-Carlo loop measures distinct trials), while
// re-seeding replays the exact sequence.
func TestNoisySequenceAdvances(t *testing.T) {
	sn, test := deployTestNet(t)
	x := test.X[0]
	const trials = 6
	sn.SetSeed(5)
	first := make([][]int, trials)
	for i := range first {
		out, err := sn.Outputs(x, ModeSpikingNoisy)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = out
	}
	differ := false
	for i := 1; i < trials && !differ; i++ {
		for j := range first[i] {
			if first[i][j] != first[0][j] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Errorf("%d noisy trials produced identical outputs %v; RNG is not advancing", trials, first[0])
	}
	// Re-seeding reproduces the whole sequence.
	sn.SetSeed(5)
	for i := 0; i < trials; i++ {
		out, err := sn.Outputs(x, ModeSpikingNoisy)
		if err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != first[i][j] {
				t.Fatalf("trial %d after re-seed: %v, want %v", i, out, first[i])
			}
		}
	}
}
