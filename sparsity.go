package fpsa

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"fpsa/internal/synth"
	"fpsa/internal/xbar"
)

// SparsityBenchOptions shapes the sparse-kernel experiment: the standard
// MLP serving workload streamed at several input spike densities, with
// the spiking kernel forced dense, forced sparse, and left on auto.
type SparsityBenchOptions struct {
	// Batch is the micro-batch size every configuration streams. 0 means
	// 16.
	Batch int
	// Samples is how many classifications each (density, path)
	// configuration performs. 0 means 512.
	Samples int
	// Densities lists the target input spike densities to sweep, each in
	// (0, 1]. nil means 0.02, 0.05, 0.10, 0.30, 1.0.
	Densities []float64
	// Seed fixes the dataset/training/input seed. 0 means 7.
	Seed int64
}

func (o SparsityBenchOptions) withDefaults() SparsityBenchOptions {
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Samples <= 0 {
		o.Samples = 512
	}
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.02, 0.05, 0.10, 0.30, 1.0}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// SparsityBenchRow is one density's measured serving numbers across the
// three kernel paths.
type SparsityBenchRow struct {
	// TargetDensity is the density the input generator aimed for;
	// MeasuredDensity is what the kernels actually observed at the first
	// layer (clamping and the silent/active input mix shift it).
	TargetDensity   float64
	MeasuredDensity float64
	// DenseSPS, SparseSPS and AutoSPS are end-to-end samples/s of the
	// same sample stream with the kernel forced dense, forced sparse,
	// and on auto selection.
	DenseSPS  float64
	SparseSPS float64
	AutoSPS   float64
	// Speedup is SparseSPS / DenseSPS; AutoSpeedup is AutoSPS /
	// DenseSPS. Auto should track the better of the two kernels.
	Speedup     float64
	AutoSpeedup float64
}

// SparsityBenchResult reports the sweep.
type SparsityBenchResult struct {
	Options SparsityBenchOptions
	Rows    []SparsityBenchRow
}

// String renders the result as a fpsa-bench artifact.
func (r SparsityBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sparse-kernel serving (MLP 16-24-4, %d samples per cell, mode spiking, batch %d)\n",
		r.Options.Samples, r.Options.Batch)
	fmt.Fprintf(&b, "  %-8s %-9s %-12s %-12s %-12s %-9s %s\n",
		"density", "measured", "dense sps", "sparse sps", "auto sps", "speedup", "auto")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8.2f %-9.3f %-12.1f %-12.1f %-12.1f %-9.2f %.2fx\n",
			row.TargetDensity, row.MeasuredDensity, row.DenseSPS, row.SparseSPS,
			row.AutoSPS, row.Speedup, row.AutoSpeedup)
	}
	b.WriteString("  (identical outputs on every path — the sparse/dense choice is perf-only, see docs/INVARIANTS.md)\n")
	return b.String()
}

// densityFeatures draws one feature vector in [0,1] whose quantized spike
// counts average roughly d·window: about half the inputs are silent and
// the active ones spread uniformly below 4d, the mix thresholded
// activations produce.
func densityFeatures(rng *rand.Rand, n int, d float64) []float64 {
	x := make([]float64, n)
	if d >= 1 {
		for i := range x {
			x[i] = 1
		}
		return x
	}
	if d <= 0 {
		return x
	}
	for i := range x {
		if rng.Float64() < 0.5 {
			continue
		}
		v := 4 * d * rng.Float64()
		if v > 1 {
			v = 1
		}
		x[i] = v
	}
	return x
}

// SparsityBench trains and deploys the standard MLP serving workload and
// streams it at each target input spike density three times: spiking
// kernel forced dense, forced sparse (bit-packed), and on auto selection.
// All three paths produce bit-identical outputs (property-tested in
// internal/synth and internal/xbar); the sweep measures where the
// bit-packed path's dead-cycle skipping and count grouping pay. ctx
// bounds the compile.
func SparsityBench(ctx context.Context, opts SparsityBenchOptions) (SparsityBenchResult, error) {
	opts = opts.withDefaults()
	res := SparsityBenchResult{Options: opts}
	ds := SyntheticDataset(opts.Seed, 900, 16, 4, 0.08)
	train, _ := ds.Split(2.0 / 3)
	net, err := TrainMLP(opts.Seed, []int{16, 24, 4}, train, 30)
	if err != nil {
		return res, err
	}
	d, err := Compile(ctx, net.Model(), WithWeightSource(net.WeightSource()))
	if err != nil {
		return res, err
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		return res, err
	}
	window := sn.Window()
	rng := rand.New(rand.NewSource(opts.Seed + 31))

	for _, density := range opts.Densities {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		batches := make([][][]int, (opts.Samples+opts.Batch-1)/opts.Batch)
		left := opts.Samples
		for i := range batches {
			n := opts.Batch
			if n > left {
				n = left
			}
			batch := make([][]int, n)
			for j := range batch {
				batch[j] = synth.QuantizeInput(densityFeatures(rng, 16, density), window)
			}
			batches[i] = batch
			left -= n
		}
		row := SparsityBenchRow{TargetDensity: density}
		measure := func(path xbar.Path) (float64, xbar.KernelStats, error) {
			ex, err := synth.NewExecutor(sn.prog, synth.RunOptions{Mode: synth.ModeSpiking, Spike: path})
			if err != nil {
				return 0, xbar.KernelStats{}, err
			}
			start := time.Now()
			for _, batch := range batches {
				if _, err := ex.RunBatch(batch); err != nil {
					return 0, xbar.KernelStats{}, err
				}
			}
			return rate(opts.Samples, time.Since(start)), ex.KernelStats(), nil
		}
		var st xbar.KernelStats
		if row.DenseSPS, _, err = measure(xbar.PathDense); err != nil {
			return res, err
		}
		if row.SparseSPS, st, err = measure(xbar.PathSparse); err != nil {
			return res, err
		}
		row.MeasuredDensity = st.Density()
		if row.AutoSPS, _, err = measure(xbar.PathAuto); err != nil {
			return res, err
		}
		if row.DenseSPS > 0 {
			row.Speedup = row.SparseSPS / row.DenseSPS
			row.AutoSpeedup = row.AutoSPS / row.DenseSPS
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunSparsityExperiment renders the sparse-kernel artifact; batch ≤ 0
// uses the default micro-batch size. It backs fpsa-bench's "sparsity"
// experiment and its -batch flag.
func RunSparsityExperiment(ctx context.Context, batch int) (string, error) {
	r, err := SparsityBench(ctx, SparsityBenchOptions{Batch: batch})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
