package fpsa

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpsa/internal/serve"
)

// FleetBenchOptions shapes the fleet serving experiment: a synthetic
// load generator driving mixed-tenant traffic at several models served
// by one Fleet, with mid-run bitstream hot-swaps.
type FleetBenchOptions struct {
	// Requests is the total offered request count across all loaders.
	// 0 means 200000 — the default artifact drives hundreds of thousands
	// of requests so the p999 tail is populated.
	Requests int
	// Loaders is the closed-loop load-generator goroutine count. 0 means
	// 16.
	Loaders int
	// Models is how many distinct MLP deployments the fleet serves.
	// 0 means 3.
	Models int
	// Replicas is each model's initial replica pool. 0 means 2.
	Replicas int
	// QueueDepth is the per-replica queue/admission depth. The default
	// (0 means 4) is deliberately shallow so the closed-loop load
	// exercises class-weighted shedding, not just the happy path.
	QueueDepth int
	// Swaps is how many mid-run hot-swaps the bench performs, spread
	// evenly through the run (each recompiles a model through the
	// fleet's compile cache and swaps it under load). 0 means 2.
	Swaps int
	// Mode selects the execution semantics (default ModeSpiking, the
	// serving default).
	Mode ExecMode
	// Seed fixes the dataset/training seed. 0 means 7.
	Seed int64
}

func (o FleetBenchOptions) withDefaults() FleetBenchOptions {
	if o.Requests <= 0 {
		o.Requests = 200000
	}
	if o.Loaders <= 0 {
		o.Loaders = 16
	}
	if o.Models <= 0 {
		o.Models = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.Swaps <= 0 {
		o.Swaps = 2
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// FleetBenchResult reports the measured fleet serving run. The
// accounting identity Offered = Completed + Shed + Errors is the bench's
// zero-loss check: Lost is the difference and must be 0 — a nonzero
// value means the fleet dropped a request on the floor, which the
// hot-swap property tests forbid.
type FleetBenchResult struct {
	Options FleetBenchOptions
	// Offered counts requests the loaders submitted; Completed the ones
	// that returned outputs; Shed the typed admission sheds
	// (ErrOverloaded + ErrTenantQuota); Errors everything else (must be
	// 0); Lost = Offered − Completed − Shed − Errors.
	Offered   uint64
	Completed uint64
	Shed      uint64
	Errors    uint64
	Lost      uint64
	// ShedRate is Shed / Offered.
	ShedRate float64
	// QPS is completed requests per second of wall clock, summed over
	// every model.
	QPS    float64
	WallMS float64
	// P50LatencyUS, P99LatencyUS and P999LatencyUS are client-side
	// queue-to-completion percentiles over the run's sliding window —
	// the same percentile implementation engine and fleet stats use.
	P50LatencyUS  float64
	P99LatencyUS  float64
	P999LatencyUS float64
	// Swaps records the mid-run hot-swaps (duration is the window where
	// both replica pools were live).
	Swaps []FleetSwapEvent
	// Stats is the fleet's final snapshot (per-model QPS, replica
	// counts, shed breakdown, scale moves).
	Stats FleetStats
}

// String renders the result as a fpsa-bench artifact.
func (r FleetBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet serving (%d models × %d replicas, %d loaders, mode %v, queue %d, %d requests)\n",
		r.Options.Models, r.Options.Replicas, r.Options.Loaders, r.Options.Mode, r.Options.QueueDepth, r.Options.Requests)
	fmt.Fprintf(&b, "  offered %d: completed %d, shed %d (%.2f%%), errors %d, lost %d\n",
		r.Offered, r.Completed, r.Shed, 100*r.ShedRate, r.Errors, r.Lost)
	fmt.Fprintf(&b, "  throughput %.1f req/s over %.0f ms\n", r.QPS, r.WallMS)
	fmt.Fprintf(&b, "  latency p50 %.4g us / p99 %.4g us / p999 %.4g us\n",
		r.P50LatencyUS, r.P99LatencyUS, r.P999LatencyUS)
	for _, ev := range r.Swaps {
		fmt.Fprintf(&b, "  swap %s v%d->v%d (%d replicas) in %.1f ms under load\n",
			ev.Model, ev.FromVersion, ev.ToVersion, ev.Replicas, ev.DurationMS)
	}
	for name, m := range r.Stats.Models {
		fmt.Fprintf(&b, "  model %s: v%d, %d replicas, %.1f qps, shed %d overload / %d quota, scale +%d/-%d\n",
			name, m.Version, m.Replicas, m.QPS, m.ShedOverload, m.ShedQuota, m.ScaleUps, m.ScaleDowns)
	}
	return b.String()
}

// FleetBench trains and compiles Options.Models same-shape MLPs (through
// one shared compile cache), serves them on one Fleet, and drives the
// offered load from closed-loop mixed-tenant loaders — a gold
// interactive tenant, a silver standard tenant and an unregistered batch
// tenant in rotation — while hot-swapping models mid-run. It is the
// measured counterpart of the fleet subsystem's story: reconfiguration
// is fast enough to swap bitstreams under live traffic. ctx bounds the
// compiles and the serving run.
func FleetBench(ctx context.Context, opts FleetBenchOptions) (FleetBenchResult, error) {
	opts = opts.withDefaults()
	res := FleetBenchResult{Options: opts}
	ds := SyntheticDataset(opts.Seed, 900, 16, 4, 0.08)
	train, _ := ds.Split(2.0 / 3)

	cache := NewCompileCache(0)
	f, err := NewFleet(
		WithFleetChips(4*opts.Models*opts.Replicas),
		WithFleetCache(cache),
		WithTenant("interactive", QoSGold, 0),
		WithTenant("standard", QoSSilver, 0),
	)
	if err != nil {
		return res, err
	}
	defer f.Close()

	// One trained net per model slot; the hot-swap recompiles the same
	// slot's structure with fresh weights, so place & route rides the
	// shared cache.
	nets := make([]*TrainedMLP, opts.Models)
	names := make([]string, opts.Models)
	for i := range nets {
		net, err := TrainMLP(opts.Seed+int64(i), []int{16, 24, 4}, train, 30)
		if err != nil {
			return res, err
		}
		nets[i] = net
		names[i] = fmt.Sprintf("mlp-%d", i)
		d, err := Compile(ctx, net.Model(), WithWeightSource(net.WeightSource()), WithCache(cache))
		if err != nil {
			return res, err
		}
		if err := f.AddModel(ctx, names[i], d,
			WithModelReplicas(opts.Replicas),
			WithModelReplicaRange(1, 2*opts.Replicas),
			WithModelQueueDepth(opts.QueueDepth),
			WithModelEngine(WithMode(opts.Mode))); err != nil {
			return res, err
		}
	}

	tenants := []string{"interactive", "standard", "batch"}
	var (
		offered   atomic.Uint64
		completed atomic.Uint64
		shed      atomic.Uint64
		errored   atomic.Uint64
		lat       serve.LatencyRing
		loadErr   atomic.Value
	)
	start := time.Now()
	var wg sync.WaitGroup
	perLoader := opts.Requests / opts.Loaders
	for l := 0; l < opts.Loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < perLoader; i++ {
				if ctx != nil && ctx.Err() != nil {
					loadErr.CompareAndSwap(nil, ctx.Err())
					return
				}
				n := l*perLoader + i
				model := names[n%len(names)]
				tenant := tenants[(n/len(names))%len(tenants)]
				x := train.X[n%len(train.X)]
				offered.Add(1)
				t0 := time.Now()
				_, _, err := f.Outputs(ctx, model, tenant, x)
				switch {
				case err == nil:
					completed.Add(1)
					lat.Record(time.Since(t0))
				case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrTenantQuota):
					shed.Add(1)
				default:
					errored.Add(1)
					loadErr.CompareAndSwap(nil, err)
				}
			}
		}(l)
	}

	// Hot-swaps, spread through the run: recompile one model slot's
	// structure with freshly trained weights through the shared cache and
	// swap it under the live load.
	total := uint64(perLoader * opts.Loaders)
	for s := 0; s < opts.Swaps; s++ {
		target := total * uint64(s+1) / uint64(opts.Swaps+1)
		for offered.Load() < target {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		slot := s % opts.Models
		net, err := TrainMLP(opts.Seed+100+int64(s), []int{16, 24, 4}, train, 30)
		if err != nil {
			wg.Wait()
			return res, err
		}
		_, ev, err := f.CompileAndSwap(ctx, names[slot], net.Model(), WithWeightSource(net.WeightSource()))
		if err != nil {
			wg.Wait()
			return res, err
		}
		res.Swaps = append(res.Swaps, ev)
	}
	wg.Wait()
	wall := time.Since(start)
	if e := loadErr.Load(); e != nil {
		return res, e.(error)
	}

	res.Offered = offered.Load()
	res.Completed = completed.Load()
	res.Shed = shed.Load()
	res.Errors = errored.Load()
	res.Lost = res.Offered - res.Completed - res.Shed - res.Errors
	if res.Offered > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Offered)
	}
	res.QPS = rate(int(res.Completed), wall)
	res.WallMS = float64(wall) / float64(time.Millisecond)
	res.P50LatencyUS, res.P99LatencyUS, res.P999LatencyUS = lat.Percentiles()
	res.Stats = f.Stats()
	if res.Lost != 0 {
		return res, fmt.Errorf("%w: fleet bench lost %d of %d requests (completed %d, shed %d, errors %d)",
			ErrInvalidArgument, res.Lost, res.Offered, res.Completed, res.Shed, res.Errors)
	}
	return res, nil
}

// RunFleetExperiment renders the fleet serving artifact. It backs
// fpsa-bench's "fleet" experiment.
func RunFleetExperiment(ctx context.Context) (string, error) {
	r, err := FleetBench(ctx, FleetBenchOptions{Mode: ModeSpiking})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
