package fpsa

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fpsa/internal/compilecache"
)

// TestCompileCancelled: an already-cancelled context aborts Compile
// before any phase runs.
func TestCompileCancelled(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compile(ctx, m); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Compile: %v, want context.Canceled", err)
	}
}

// TestPlaceAndRouteCancelled: a context cancelled mid-run aborts the
// multi-seed annealing portfolio at a checkpoint and returns ctx.Err(),
// leaking no goroutines.
func TestPlaceAndRouteCancelled(t *testing.T) {
	m, err := LoadBenchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(context.Background(), m,
		WithDuplication(4), WithSeed(3), WithPlacementSeeds(4), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	// LeNet dup 4 anneals for seconds; a 1 ms deadline always expires
	// mid-portfolio, well before the first segment completes.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = d.PlaceAndRoute(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bounded PlaceAndRoute: %v, want context.DeadlineExceeded", err)
	}
	waitForGoroutines(t, before)
}

// TestShardedPlaceAndRouteCancelled: cancellation propagates into every
// concurrent per-chip place & route of a sharded compile.
func TestShardedPlaceAndRouteCancelled(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(context.Background(), m, WithChips(2), WithPlacementSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Chips() != 2 {
		t.Fatalf("deployment chips = %d, want 2", d.Chips())
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.PlaceAndRoute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sharded PlaceAndRoute: %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
	// A cancelled run cached nothing and left no state behind: the same
	// deployment completes normally afterwards.
	stats, err := d.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("post-cancellation rerun did not converge: %+v", stats)
	}
}

// TestBitstreamCancelled: the configuration generator honors ctx.
func TestBitstreamCancelled(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PlaceAndRoute(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Bitstream(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Bitstream: %v, want context.Canceled", err)
	}
}

// TestUncancelledContextBitIdentical: running under a live (never
// cancelled) context changes nothing — placement, routing and the
// generated configuration are bit-identical to a Background run.
func TestUncancelledContextBitIdentical(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	compileOnce := func(ctx context.Context) (PRStats, BitstreamInfo) {
		t.Helper()
		d, err := Compile(ctx, m, WithSeed(3), WithPlacementSeeds(2), WithParallelism(2))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := d.PlaceAndRoute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		info, err := d.Bitstream(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return stats, info
	}
	baseStats, baseInfo := compileOnce(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	liveStats, liveInfo := compileOnce(ctx)
	if !reflect.DeepEqual(baseStats, liveStats) {
		t.Fatalf("stats differ under live context:\nbackground %+v\nlive       %+v", baseStats, liveStats)
	}
	if baseInfo != liveInfo {
		t.Fatalf("bitstream differs under live context: background %+v, live %+v", baseInfo, liveInfo)
	}
}

// TestCacheJoinerRetriesOthersCancellation: under the compile cache's
// singleflight, a caller that joined a computation cancelled by *its
// owner's* context must not inherit that failure — with its own context
// live it retries and computes. (Simulated directly: the first compute
// fails with a foreign context error, the retry succeeds.)
func TestCacheJoinerRetriesOthersCancellation(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCompileCache(0)
	d, err := Compile(context.Background(), m, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	art, _, err := getOrComputeCtx(context.Background(), cache, d.cacheKey(-1), func() (*compilecache.Artifacts, error) {
		calls++
		if calls == 1 {
			return nil, context.DeadlineExceeded // another caller's expiry
		}
		return d.placeAndRoute(context.Background(), d.nl, d.cfg.Tracks)
	})
	if err != nil || art == nil {
		t.Fatalf("joiner inherited a foreign cancellation: %v", err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want a retry (2)", calls)
	}
	// Our own cancellation is still ours to keep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache2 := NewCompileCache(0)
	d2, err := Compile(context.Background(), m, WithCache(cache2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.PlaceAndRoute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("own cancellation: %v, want context.Canceled", err)
	}
}

// waitForGoroutines retries until the goroutine count returns to the
// pre-run level (small slack for runtime background goroutines) —
// cancellation must not strand portfolio or router workers.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
