// Package serve implements a concurrent, micro-batched inference engine
// over deployed spiking-network programs (synth.Program). The engine owns
// a request queue, a batcher that flushes on batch size or deadline, and
// a pool of workers each holding its own programmed synth.Executor —
// cycle-level simulation state is never shared across goroutines, exactly
// as each replica chip carries its own programmed crossbars. Workers
// execute each flushed micro-batch as ONE Executor.RunBatch call, so
// MaxBatch is a throughput knob (every stage's crossbar evaluates the
// whole batch through the shared internal/xbar kernel), not just a
// latency/queueing knob. It is the serving substrate behind the public
// fpsa.Engine API and cmd/fpsa-serve.
//
// With Options.Chips ≥ 2 the engine serves a sharded deployment instead:
// one synth.PipelineExecutor whose program is partitioned across that
// many simulated chips, shared by every worker. Workers then act as
// concurrent feeders keeping the chip pipeline full — micro-batch N+1
// enters chip 0 while micro-batch N is still on a later chip — which is
// where a model too big for one fabric gets its throughput back.
package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fpsa/internal/device"
	"fpsa/internal/shard"
	"fpsa/internal/synth"
	"fpsa/internal/xbar"
)

// runner is the execution surface a worker drives: a private single-chip
// synth.Executor, or the engine's shared multi-chip pipeline. KernelStats
// exposes the spiking-kernel selection counters for Stats aggregation.
type runner interface {
	Validate(input []int) error
	RunBatch(inputs [][]int) ([][]int, error)
	KernelStats() xbar.KernelStats
	FaultedCells() int
}

// Options configures an Engine.
type Options struct {
	// Workers is the worker-pool size; each worker programs its own
	// Executor. 0 means 1.
	Workers int
	// MaxBatch flushes the accumulating micro-batch when it reaches this
	// many requests; a flushed batch is executed in one batched kernel
	// pass, so larger values trade queueing latency for per-stage
	// throughput. 0 means 8.
	MaxBatch int
	// FlushInterval flushes a non-empty micro-batch this long after its
	// first request arrived, bounding queueing latency under light load.
	// 0 means 500µs.
	FlushInterval time.Duration
	// QueueDepth bounds the request queue; Infer blocks (or honors its
	// context) when the queue is full. 0 means 1024.
	QueueDepth int
	// Mode selects the execution semantics for every worker.
	Mode synth.ExecMode
	// Seed derives each worker's programming-variation RNG in
	// ModeSpikingNoisy; each worker draws an independent sub-seed from
	// one stream seeded here. A sharded engine (Chips ≥ 2) is one
	// physical set of chips and draws a single variation stream.
	Seed int64
	// Chips, when ≥ 2, serves the program as a sharded deployment: the
	// stage list is partitioned across that many pipelined chips
	// (per Policy, clamped to what the program supports) and every
	// worker feeds the one shared pipeline. 0 or 1 keeps the classic
	// per-worker single-chip executors.
	Chips int
	// Policy selects the stage-partitioning objective of a sharded
	// engine (default StageBalanced).
	Policy StagePolicy
	// Spike selects the spiking kernel every worker's crossbars run:
	// xbar.PathAuto (zero value) picks dense or bit-packed sparse per
	// micro-batch from its observed spike density, PathDense/PathSparse
	// force one kernel. Purely a performance knob — the kernels are
	// bit-identical.
	Spike xbar.Path
	// SparseThreshold is the auto-path density cutoff (0 means
	// xbar.DefaultSparseThreshold).
	SparseThreshold float64
	// Faults, when active, injects the deployment's device fault
	// scenario into every worker's executor (and the shared pipeline of
	// a sharded engine). Fault maps are a deterministic function of the
	// model and each weight group's global ID, so every replica sees
	// identical faults at any worker count.
	Faults *device.FaultModel
}

// StagePolicy selects how a sharded engine (Chips ≥ 2) cuts the
// program's stage list across chips. The zero value is the serving
// default: balanced per-chip load, since pipeline throughput is set by
// the slowest chip. Outputs are bit-identical under every policy — the
// cut changes where wall-clock goes, never results.
type StagePolicy int

// Stage-partitioning policies.
const (
	// StageBalanced minimizes the heaviest chip's load (the serving
	// default).
	StageBalanced StagePolicy = iota
	// StageMinCut minimizes the signal traffic crossing the inter-chip
	// links — for callers whose deployment was compiled min-cut and
	// whose links are the scarce resource.
	StageMinCut
)

// shardPolicy maps the serving policy onto the partitioner's.
func (p StagePolicy) shardPolicy() shard.Policy {
	if p == StageMinCut {
		return shard.PolicyMinCut
	}
	return shard.PolicyBalanced
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// ErrClosed is returned by Infer after Close.
var ErrClosed = fmt.Errorf("serve: engine closed")

// request is one queued classification. ctx lets workers shed requests
// whose callers have already given up.
type request struct {
	ctx   context.Context
	input []int
	enq   time.Time
	out   []int
	err   error
	done  chan struct{}
}

// Engine is a concurrent, micro-batched inference engine. Construct with
// New, submit with Infer/InferBatch, and Close when done.
type Engine struct {
	opts    Options
	reqs    chan *request
	batches chan []*request
	wg      sync.WaitGroup
	stats   tracker
	// pipe is the shared multi-chip pipeline of a sharded engine (nil
	// for the per-worker single-chip layout); chips is the realized
	// pipeline depth (1 when unsharded). runners keeps every execution
	// surface so Stats can aggregate kernel-selection counters (their
	// counters are atomic, so reads race nothing).
	pipe    *synth.PipelineExecutor
	chips   int
	runners []runner

	mu     sync.RWMutex
	closed bool
}

// New builds the engine: it programs the execution state over prog
// (surfacing programming errors synchronously) and starts the batcher and
// worker goroutines. With opts.Chips ≤ 1 each worker programs a private
// single-chip executor; with opts.Chips ≥ 2 one pipelined multi-chip
// executor is programmed and shared by every worker.
func New(prog *synth.Program, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	e := &Engine{
		opts:  opts,
		chips: 1,
	}
	runners := make([]runner, opts.Workers)
	// Worker seeds come from one stream rather than Seed+w so engines
	// with adjacent seeds never share replica programming variation.
	seeds := rand.New(rand.NewSource(opts.Seed))
	if opts.Chips >= 2 {
		plan, err := prog.PartitionStages(opts.Chips, opts.Policy.shardPolicy())
		if err != nil {
			return nil, fmt.Errorf("serve: partitioning across %d chips: %w", opts.Chips, err)
		}
		ropts := synth.RunOptions{Mode: opts.Mode, Spike: opts.Spike, SparseThreshold: opts.SparseThreshold, Faults: opts.Faults}
		if opts.Mode == synth.ModeSpikingNoisy {
			ropts.Rng = rand.New(rand.NewSource(seeds.Int63()))
		}
		pipe, err := synth.NewPipelineExecutor(prog, plan, ropts)
		if err != nil {
			return nil, fmt.Errorf("serve: sharded executor: %w", err)
		}
		e.pipe = pipe
		e.chips = pipe.Chips()
		for w := range runners {
			runners[w] = pipe
		}
	} else {
		for w := range runners {
			ropts := synth.RunOptions{Mode: opts.Mode, Spike: opts.Spike, SparseThreshold: opts.SparseThreshold, Faults: opts.Faults}
			if opts.Mode == synth.ModeSpikingNoisy {
				ropts.Rng = rand.New(rand.NewSource(seeds.Int63()))
			}
			ex, err := synth.NewExecutor(prog, ropts)
			if err != nil {
				return nil, fmt.Errorf("serve: worker %d: %w", w, err)
			}
			runners[w] = ex
		}
	}
	e.runners = runners
	e.reqs = make(chan *request, opts.QueueDepth)
	e.batches = make(chan []*request, opts.Workers)
	e.stats.start = time.Now()
	e.wg.Add(1 + opts.Workers)
	go e.batcher()
	for _, r := range runners {
		go e.worker(r)
	}
	return e, nil
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Chips returns the realized pipeline depth: 1 for the per-worker
// single-chip layout, the sharded chip count otherwise.
func (e *Engine) Chips() int { return e.chips }

// Infer queues one input vector of spike counts and blocks until a worker
// classifies it or ctx is done. The returned slice is the program's raw
// output counts.
func (e *Engine) Infer(ctx context.Context, input []int) ([]int, error) {
	r := &request{ctx: ctx, input: input, enq: time.Now(), done: make(chan struct{})}
	if err := e.submit(ctx, r); err != nil {
		return nil, err
	}
	select {
	case <-r.done:
		return r.out, r.err
	case <-ctx.Done():
		// The request is already queued; a worker will still run it, but
		// the caller has moved on.
		return nil, ctx.Err()
	}
}

// InferBatch queues every input and waits for all results, so one call
// naturally fills micro-batches. Results are positional; the first
// request error (if any) is returned after all requests settle.
func (e *Engine) InferBatch(ctx context.Context, inputs [][]int) ([][]int, error) {
	rs := make([]*request, len(inputs))
	for i, in := range inputs {
		r := &request{ctx: ctx, input: in, enq: time.Now(), done: make(chan struct{})}
		if err := e.submit(ctx, r); err != nil {
			// Already-queued requests still run to completion; the
			// caller has moved on, as in Infer's cancellation path.
			return nil, err
		}
		rs[i] = r
	}
	outs := make([][]int, len(rs))
	var firstErr error
	for i, r := range rs {
		select {
		case <-r.done:
			outs[i] = r.out
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// submit enqueues r, blocking while the queue is full. The RLock pairs
// with Close's exclusive lock so no send can race the channel close.
func (e *Engine) submit(ctx context.Context, r *request) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.reqs <- r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue, stops the workers (and, on a sharded engine,
// the chip pipeline), and releases the engine. Queued requests still
// complete; subsequent Infer calls return ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.reqs)
	e.mu.Unlock()
	e.wg.Wait()
	if e.pipe != nil {
		return e.pipe.Close()
	}
	return nil
}

// batcher accumulates requests into micro-batches and flushes on size or
// deadline. The deadline timer starts at each batch's first request, so a
// lone request under light load waits at most FlushInterval.
func (e *Engine) batcher() {
	defer e.wg.Done()
	defer close(e.batches)
	timer := time.NewTimer(e.opts.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var batch []*request
	flush := func() {
		if len(batch) == 0 {
			return
		}
		e.stats.recordBatch()
		e.batches <- batch
		batch = nil
	}
	for {
		if len(batch) == 0 {
			r, ok := <-e.reqs
			if !ok {
				return
			}
			batch = append(batch, r)
			timer.Reset(e.opts.FlushInterval)
			if len(batch) >= e.opts.MaxBatch {
				stopTimer(timer)
				flush()
			}
			continue
		}
		select {
		case r, ok := <-e.reqs:
			if !ok {
				stopTimer(timer)
				flush()
				return
			}
			batch = append(batch, r)
			if len(batch) >= e.opts.MaxBatch {
				stopTimer(timer)
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// stopTimer stops t and drains a pending fire so the next Reset arms
// cleanly.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// worker runs whole micro-batches on its runner until the batch channel
// closes: each flushed batch becomes one RunBatch call — on a private
// single-chip executor, or on the shared chip pipeline, where concurrent
// workers are exactly what keeps every chip busy. Requests whose callers
// already gave up (context done while queued) are shed without
// simulating, so client timeouts actually relieve load, and malformed
// requests fail individually in pre-flight validation so they cannot
// poison the rest of the batch.
func (e *Engine) worker(ex runner) {
	defer e.wg.Done()
	var live []*request
	var inputs [][]int
	for batch := range e.batches {
		live, inputs = live[:0], inputs[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				r.err = err
				e.stats.shed.Add(1)
				close(r.done)
				continue
			}
			if err := ex.Validate(r.input); err != nil {
				r.err = err
				e.stats.errors.Add(1)
				e.stats.recordDone(time.Since(r.enq))
				close(r.done)
				continue
			}
			live = append(live, r)
			inputs = append(inputs, r.input)
		}
		if len(live) == 0 {
			continue
		}
		outs, err := ex.RunBatch(inputs)
		e.stats.recordExecBatch(len(live))
		for i, r := range live {
			if err != nil {
				r.err = err
				e.stats.errors.Add(1)
			} else {
				r.out = outs[i]
			}
			e.stats.recordDone(time.Since(r.enq))
			close(r.done)
		}
	}
}

// QueueDepth reports how many requests are waiting in the queue right
// now.
func (e *Engine) QueueDepth() int { return len(e.reqs) }

// Stats snapshots the engine's counters and latency percentiles,
// including the spiking-kernel selection counters aggregated across every
// execution replica (or the one shared pipeline of a sharded engine).
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.Workers = e.opts.Workers
	s.MaxBatch = e.opts.MaxBatch
	s.Chips = e.chips
	s.QueueDepth = len(e.reqs)
	ks := e.kernelStats()
	s.SparseKernels = ks.SparseBatches
	s.DenseKernels = ks.DenseBatches
	s.SpikeDensity = ks.Density()
	s.FaultedCells = e.faultedCells()
	return s
}

// faultedCells reports the deployment's residual stuck-cell count. Every
// replica programs identical fault maps (they key on the model and the
// global group IDs, not the replica), so one executor's count IS the
// deployment's — summing replicas would overcount chip state that exists
// once.
func (e *Engine) faultedCells() int {
	if e.pipe != nil {
		return e.pipe.FaultedCells()
	}
	if len(e.runners) > 0 {
		return e.runners[0].FaultedCells()
	}
	return 0
}

// kernelStats aggregates kernel-selection counters. A sharded engine's
// workers all share the one pipeline, so it is counted once, not per
// worker.
func (e *Engine) kernelStats() xbar.KernelStats {
	if e.pipe != nil {
		return e.pipe.KernelStats()
	}
	var st xbar.KernelStats
	for _, r := range e.runners {
		st = st.Add(r.KernelStats())
	}
	return st
}
