package serve

import (
	"sync"
	"sync/atomic"

	"fpsa/internal/synth"
)

// Cache memoizes compiled programs by deployment key so engines serving
// the same (model, config, seed) share one synthesis. Concurrent callers
// of the same key block on a single build; distinct keys build in
// parallel.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	prog *synth.Program
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*cacheEntry)}
}

// GetOrCompile returns the cached program for key, invoking build at most
// once per key. A failed build is not cached, so a later call may retry.
func (c *Cache) GetOrCompile(key string, build func() (*synth.Program, error)) (*synth.Program, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.prog, e.err = build()
		if e.err != nil {
			c.mu.Lock()
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
		}
	})
	return e.prog, e.err
}

// Len reports the number of cached deployments.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters reports cache hits and misses since construction.
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
