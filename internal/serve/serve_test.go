package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"fpsa/internal/synth"
	"fpsa/internal/trainer"
	"fpsa/internal/xbar"
)

// buildProgram trains a small MLP and compiles it to an executable
// program — the same path fpsa.TrainMLP + Deploy takes.
func buildProgram(t testing.TB, seed int64, dims []int) *synth.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := trainer.NewMLP(rng, dims)
	if err != nil {
		t.Fatal(err)
	}
	ds := trainer.SyntheticClusters(rng, 200, dims[0], dims[len(dims)-1], 0.08)
	net.Train(rng, ds, trainer.TrainOptions{Epochs: 10})
	opts := synth.DefaultOptions()
	opts.Weights = net.WeightSource()
	_, prog, err := synth.Compile(net.Graph("serve-test"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func randomInputs(prog *synth.Program, seed int64, n int) [][]int {
	rng := rand.New(rand.NewSource(seed))
	window := prog.Params.SamplingWindow()
	ins := make([][]int, n)
	for i := range ins {
		in := make([]int, prog.InputSize)
		for j := range in {
			in[j] = rng.Intn(window + 1)
		}
		ins[i] = in
	}
	return ins
}

// TestEngineMatchesSerial is the -race integration test: N goroutines ×
// M classifications against one Engine must reproduce the serial
// executor bit for bit.
func TestEngineMatchesSerial(t *testing.T) {
	prog := buildProgram(t, 1, []int{12, 10, 3})
	inputs := randomInputs(prog, 2, 16)

	ex, err := synth.NewExecutor(prog, synth.RunOptions{Mode: synth.ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(inputs))
	for i, in := range inputs {
		if want[i], err = ex.Run(in); err != nil {
			t.Fatal(err)
		}
	}

	eng, err := New(prog, Options{Workers: 4, MaxBatch: 4, Mode: synth.ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, in := range inputs {
				out, err := eng.Infer(context.Background(), in)
				if err != nil {
					errs <- err
					return
				}
				for j := range out {
					if out[j] != want[i][j] {
						errs <- fmt.Errorf("goroutine %d input %d: out[%d] = %d, want %d", g, i, j, out[j], want[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := eng.Stats()
	if s.Requests != goroutines*uint64(len(inputs)) {
		t.Errorf("stats.Requests = %d, want %d", s.Requests, goroutines*len(inputs))
	}
	if s.Errors != 0 {
		t.Errorf("stats.Errors = %d", s.Errors)
	}
	if s.Batches == 0 || s.MeanBatch <= 0 {
		t.Errorf("batch stats empty: %+v", s)
	}
	if s.P99LatencyUS < s.P50LatencyUS {
		t.Errorf("p99 %.1f < p50 %.1f", s.P99LatencyUS, s.P50LatencyUS)
	}
}

// TestFlushDeadline proves a lone request under light load is released by
// the deadline, not held hostage for a full batch.
func TestFlushDeadline(t *testing.T) {
	prog := buildProgram(t, 3, []int{8, 6, 2})
	eng, err := New(prog, Options{
		Workers:       1,
		MaxBatch:      64, // never reached by one request
		FlushInterval: 2 * time.Millisecond,
		Mode:          synth.ModeReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := randomInputs(prog, 4, 1)[0]
	start := time.Now()
	if _, err := eng.Infer(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("lone request took %v; deadline flush broken", d)
	}
	s := eng.Stats()
	if s.Batches != 1 || s.Requests != 1 {
		t.Errorf("stats = %+v, want 1 batch / 1 request", s)
	}
}

// TestFlushOnBatchSize proves a full micro-batch flushes without waiting
// for the deadline.
func TestFlushOnBatchSize(t *testing.T) {
	prog := buildProgram(t, 5, []int{8, 6, 2})
	eng, err := New(prog, Options{
		Workers:       2,
		MaxBatch:      4,
		FlushInterval: time.Minute, // deadline effectively disabled
		Mode:          synth.ModeReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inputs := randomInputs(prog, 6, 8)
	done := make(chan error, 1)
	go func() {
		_, err := eng.InferBatch(context.Background(), inputs)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("size-based flush never fired; requests stuck behind the deadline")
	}
	if s := eng.Stats(); s.Batches < 2 {
		t.Errorf("Batches = %d, want ≥ 2 for 8 requests at MaxBatch 4", s.Batches)
	}
}

func TestInferBatchMatchesSerial(t *testing.T) {
	prog := buildProgram(t, 7, []int{10, 8, 3})
	inputs := randomInputs(prog, 8, 12)
	ex, err := synth.NewExecutor(prog, synth.RunOptions{Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(prog, Options{Workers: 3, MaxBatch: 4, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	outs, err := eng.InferBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		want, err := ex.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("batch[%d][%d] = %d, want %d", i, j, outs[i][j], want[j])
			}
		}
	}
}

func TestBadInputSurfacesError(t *testing.T) {
	prog := buildProgram(t, 9, []int{8, 6, 2})
	eng, err := New(prog, Options{Workers: 1, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Infer(context.Background(), make([]int, prog.InputSize+1)); err == nil {
		t.Error("wrong-length input accepted")
	}
	if s := eng.Stats(); s.Errors != 1 {
		t.Errorf("stats.Errors = %d, want 1", s.Errors)
	}
}

func TestCloseSemantics(t *testing.T) {
	prog := buildProgram(t, 11, []int{8, 6, 2})
	eng, err := New(prog, Options{Workers: 2, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := eng.Infer(context.Background(), make([]int, prog.InputSize)); err != ErrClosed {
		t.Errorf("Infer after Close = %v, want ErrClosed", err)
	}
}

// TestAbandonedRequestShed: a request whose caller gave up while it sat
// in the batcher is dropped by the worker without simulating.
func TestAbandonedRequestShed(t *testing.T) {
	prog := buildProgram(t, 14, []int{8, 6, 2})
	eng, err := New(prog, Options{
		Workers:       1,
		MaxBatch:      64,
		FlushInterval: time.Minute, // parks the request until Close flushes
		Mode:          synth.ModeReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &request{ctx: ctx, input: make([]int, prog.InputSize), enq: time.Now(), done: make(chan struct{})}
	if err := eng.submit(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	cancel() // abandon it while parked behind the one-minute deadline
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-r.done
	if r.err != context.Canceled {
		t.Fatalf("request err = %v, want context.Canceled", r.err)
	}
	s := eng.Stats()
	if s.Shed != 1 || s.Requests != 0 {
		t.Errorf("shed/requests = %d/%d, want 1/0: %s", s.Shed, s.Requests, s)
	}
}

func TestInferHonorsContext(t *testing.T) {
	prog := buildProgram(t, 13, []int{8, 6, 2})
	eng, err := New(prog, Options{Workers: 1, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Infer(ctx, make([]int, prog.InputSize)); err != context.Canceled {
		t.Errorf("Infer with canceled ctx = %v, want context.Canceled", err)
	}
}

// TestNoisyWorkersDeterministic: the engine programs each worker's
// variation from Seed + worker index, so a one-worker noisy engine is a
// deterministic function of its seed.
func TestNoisyWorkersDeterministic(t *testing.T) {
	prog := buildProgram(t, 15, []int{8, 6, 2})
	in := randomInputs(prog, 16, 1)[0]
	run := func(seed int64) []int {
		eng, err := New(prog, Options{Workers: 1, Mode: synth.ModeSpikingNoisy, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		out, err := eng.Infer(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestCacheGetOrCompile(t *testing.T) {
	prog := buildProgram(t, 17, []int{8, 6, 2})
	c := NewCache()
	builds := 0
	build := func() (*synth.Program, error) {
		builds++
		return prog, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.GetOrCompile("mlp|dup=1|seed=1", build)
			if err != nil || got != prog {
				t.Errorf("GetOrCompile = %v, %v", got, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses := c.Counters()
	if misses != 1 || hits != 7 {
		t.Errorf("hits/misses = %d/%d, want 7/1", hits, misses)
	}
	// A failed build is retried, not cached.
	fails := 0
	_, err := c.GetOrCompile("bad", func() (*synth.Program, error) {
		fails++
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("failed build returned nil error")
	}
	if _, err := c.GetOrCompile("bad", build); err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if fails != 1 || builds != 2 {
		t.Errorf("fails=%d builds=%d, want 1/2", fails, builds)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Requests: 10, Batches: 2, MeanBatch: 5, Workers: 4}
	for _, want := range []string{"served 10 requests", "2 batches", "4 workers"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("Stats.String() = %q missing %q", s.String(), want)
		}
	}
}

// TestExecBatchStats: workers execute flushed micro-batches as single
// RunBatch calls, and the Stats surface reports the executed batch
// sizes.
func TestExecBatchStats(t *testing.T) {
	prog := buildProgram(t, 13, []int{10, 8, 3})
	inputs := randomInputs(prog, 14, 12)
	eng, err := New(prog, Options{Workers: 1, MaxBatch: 4, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.InferBatch(context.Background(), inputs); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Requests != 12 {
		t.Errorf("Requests = %d, want 12", s.Requests)
	}
	if s.ExecBatches == 0 || s.ExecBatches > 12 {
		t.Errorf("ExecBatches = %d, want in [1,12]", s.ExecBatches)
	}
	if s.MeanExecBatch < 1 || s.MeanExecBatch > 4 {
		t.Errorf("MeanExecBatch = %g, want in [1,4]", s.MeanExecBatch)
	}
	if s.MaxExecBatch < 1 || s.MaxExecBatch > 4 {
		t.Errorf("MaxExecBatch = %d, want in [1,4]", s.MaxExecBatch)
	}
	for _, want := range []string{"exec mean", "max"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("Stats.String() = %q missing %q", s.String(), want)
		}
	}
}

// TestSpikePathEquivalenceAndStats: engines forced onto the dense and
// the bit-packed sparse kernel return identical outputs (single-chip and
// sharded), and Stats reports the kernel selections and observed spike
// density.
func TestSpikePathEquivalenceAndStats(t *testing.T) {
	prog := buildProgram(t, 23, []int{10, 8, 6, 3})
	inputs := randomInputs(prog, 24, 10)
	run := func(path xbar.Path, chips int) ([][]int, Stats) {
		t.Helper()
		eng, err := New(prog, Options{
			Workers: 2, MaxBatch: 4, Mode: synth.ModeSpiking,
			Spike: path, Chips: chips,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		outs, err := eng.InferBatch(context.Background(), inputs)
		if err != nil {
			t.Fatal(err)
		}
		return outs, eng.Stats()
	}
	want, denseStats := run(xbar.PathDense, 1)
	if denseStats.SparseKernels != 0 || denseStats.DenseKernels == 0 {
		t.Errorf("forced-dense stats: %d sparse / %d dense kernels",
			denseStats.SparseKernels, denseStats.DenseKernels)
	}
	for _, chips := range []int{1, 2} {
		got, sparseStats := run(xbar.PathSparse, chips)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("chips=%d: item %d out[%d]: sparse %d, dense %d",
						chips, i, j, got[i][j], want[i][j])
				}
			}
		}
		if sparseStats.DenseKernels != 0 || sparseStats.SparseKernels == 0 {
			t.Errorf("chips=%d forced-sparse stats: %d sparse / %d dense kernels",
				chips, sparseStats.SparseKernels, sparseStats.DenseKernels)
		}
		if sparseStats.SpikeDensity <= 0 || sparseStats.SpikeDensity > 1 {
			t.Errorf("chips=%d SpikeDensity = %g, want in (0,1]", chips, sparseStats.SpikeDensity)
		}
		if !strings.Contains(sparseStats.String(), "kernels") {
			t.Errorf("Stats.String() = %q missing kernel counters", sparseStats.String())
		}
	}
}

// TestInvalidItemDoesNotPoisonBatch: a malformed request sharing a
// micro-batch with healthy ones fails alone; the rest of the batch still
// executes and matches the serial path.
func TestInvalidItemDoesNotPoisonBatch(t *testing.T) {
	prog := buildProgram(t, 15, []int{10, 8, 3})
	good := randomInputs(prog, 16, 3)
	ex, err := synth.NewExecutor(prog, synth.RunOptions{Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	// One worker and a batch size covering all four requests, with a
	// generous flush deadline so they land in one micro-batch.
	eng, err := New(prog, Options{Workers: 1, MaxBatch: 4, FlushInterval: 50 * time.Millisecond, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var wg sync.WaitGroup
	outs := make([][]int, 3)
	errs := make([]error, 4)
	for i, in := range good {
		wg.Add(1)
		go func(i int, in []int) {
			defer wg.Done()
			outs[i], errs[i] = eng.Infer(context.Background(), in)
		}(i, in)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[3] = eng.Infer(context.Background(), make([]int, prog.InputSize+2))
	}()
	wg.Wait()
	if errs[3] == nil {
		t.Error("malformed request accepted")
	}
	for i, in := range good {
		if errs[i] != nil {
			t.Fatalf("good request %d: %v", i, errs[i])
		}
		want, err := ex.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("good[%d][%d] = %d, want %d", i, j, outs[i][j], want[j])
			}
		}
	}
	if s := eng.Stats(); s.Errors != 1 {
		t.Errorf("stats.Errors = %d, want 1", s.Errors)
	}
}

// TestShardedEngineMatchesSingleChip: an engine serving a sharded
// deployment (Chips ≥ 2) must reproduce the single-chip engine bit for
// bit under concurrent load, in spiking and noisy modes. Run under -race
// in CI: all workers share one chip pipeline.
func TestShardedEngineMatchesSingleChip(t *testing.T) {
	prog := buildProgram(t, 21, []int{14, 12, 8, 3})
	inputs := randomInputs(prog, 22, 12)
	for _, mode := range []synth.ExecMode{synth.ModeSpiking, synth.ModeSpikingNoisy} {
		single, err := New(prog, Options{Workers: 1, MaxBatch: 4, Mode: mode, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]int, len(inputs))
		for i, in := range inputs {
			if want[i], err = single.Infer(context.Background(), in); err != nil {
				t.Fatal(err)
			}
		}
		single.Close()

		sharded, err := New(prog, Options{Workers: 3, MaxBatch: 4, Mode: mode, Seed: 33, Chips: 2})
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Chips() != 2 {
			t.Fatalf("mode %v: Chips() = %d, want 2", mode, sharded.Chips())
		}
		const goroutines = 6
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, in := range inputs {
					out, err := sharded.Infer(context.Background(), in)
					if err != nil {
						errs <- err
						return
					}
					for j := range out {
						if out[j] != want[i][j] {
							errs <- fmt.Errorf("mode %v goroutine %d input %d: out[%d] = %d, want %d",
								mode, g, i, j, out[j], want[i][j])
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		s := sharded.Stats()
		if s.Chips != 2 {
			t.Errorf("stats.Chips = %d, want 2", s.Chips)
		}
		if !strings.Contains(s.String(), "2 pipelined chips") {
			t.Errorf("Stats.String() missing chip count: %q", s.String())
		}
		if err := sharded.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// TestShardedEngineClampsChips: asking for more chips than the program
// has stages degrades to the feasible depth instead of failing, and the
// engine still serves.
func TestShardedEngineClampsChips(t *testing.T) {
	prog := buildProgram(t, 23, []int{6, 3})
	eng, err := New(prog, Options{Workers: 2, MaxBatch: 2, Chips: 16, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Chips() > len(prog.Stages) {
		t.Fatalf("Chips() = %d for a %d-stage program", eng.Chips(), len(prog.Stages))
	}
	if _, err := eng.Infer(context.Background(), randomInputs(prog, 24, 1)[0]); err != nil {
		t.Fatalf("Infer: %v", err)
	}
}

// TestShardedEngineBadInput: pre-flight validation still isolates a bad
// request on the shared pipeline.
func TestShardedEngineBadInput(t *testing.T) {
	prog := buildProgram(t, 25, []int{8, 5, 2})
	eng, err := New(prog, Options{Workers: 2, MaxBatch: 4, Chips: 2, Mode: synth.ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	good := randomInputs(prog, 26, 1)[0]
	if _, err := eng.Infer(context.Background(), make([]int, 3)); err == nil {
		t.Error("mis-sized input accepted")
	}
	if _, err := eng.Infer(context.Background(), good); err != nil {
		t.Errorf("good input after bad: %v", err)
	}
}
