package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of an Engine's serving counters,
// mirroring PerfSummary's role for the modeled hardware: what the engine
// actually sustained rather than what the perf model predicts.
type Stats struct {
	// Requests is the number of completed classifications; Errors counts
	// those that returned an error; Shed counts requests dropped without
	// simulating because their caller's context was already done.
	Requests uint64
	Errors   uint64
	Shed     uint64
	// Batches is the number of flushed micro-batches; MeanBatch is
	// Requests/Batches.
	Batches   uint64
	MeanBatch float64
	// ExecBatches counts executor-level batched kernel invocations (one
	// RunBatch per flushed batch that still had live requests);
	// MeanExecBatch and MaxExecBatch describe the executed batch sizes
	// after context shedding and validation — the degree of kernel-level
	// batching actually achieved.
	ExecBatches   uint64
	MeanExecBatch float64
	MaxExecBatch  int
	// SparseKernels and DenseKernels count per-crossbar spiking-kernel
	// invocations that took the bit-packed sparse path versus the dense
	// cycle walk, summed over every execution replica; SpikeDensity is
	// the aggregate observed input spike density across those calls.
	// All zero under ModeReference, which runs neither kernel.
	SparseKernels uint64
	DenseKernels  uint64
	SpikeDensity  float64
	// FaultedCells is the deployment's residual stuck-cell count: stuck
	// logical weight cells the fault model pinned across the program's
	// crossbars, after any spare-row/column remapping. Every replica
	// programs identical faults, so this is per-deployment, not
	// per-worker; 0 without a fault model.
	FaultedCells int
	// ThroughputSPS is completed requests per second of engine uptime.
	ThroughputSPS float64
	// P50LatencyUS, P99LatencyUS and P999LatencyUS are queue-to-completion
	// latency percentiles over a sliding window of recent requests (see
	// LatencyRing — the one percentile implementation the fleet layer
	// shares).
	P50LatencyUS  float64
	P99LatencyUS  float64
	P999LatencyUS float64
	// QueueDepth, Workers, MaxBatch and Chips describe the engine's
	// current shape. Chips is the realized pipeline depth of a sharded
	// engine (1 when the model runs whole on per-worker executors).
	QueueDepth int
	Workers    int
	MaxBatch   int
	Chips      int
	UptimeS    float64
}

// String renders the snapshot.
func (s Stats) String() string {
	out := fmt.Sprintf("served %d requests (%d errors, %d shed) in %d batches (mean %.1f, exec mean %.1f / max %d), throughput %.4g samples/s, latency p50 %.4g us / p99 %.4g us / p999 %.4g us, queue %d, %d workers",
		s.Requests, s.Errors, s.Shed, s.Batches, s.MeanBatch,
		s.MeanExecBatch, s.MaxExecBatch,
		s.ThroughputSPS, s.P50LatencyUS, s.P99LatencyUS, s.P999LatencyUS, s.QueueDepth, s.Workers)
	if s.Chips > 1 {
		out += fmt.Sprintf(", %d pipelined chips", s.Chips)
	}
	if s.SparseKernels+s.DenseKernels > 0 {
		out += fmt.Sprintf(", kernels %d sparse / %d dense (density %.3f)",
			s.SparseKernels, s.DenseKernels, s.SpikeDensity)
	}
	if s.FaultedCells > 0 {
		out += fmt.Sprintf(", %d faulted cells", s.FaultedCells)
	}
	return out
}

// latencyWindow is the sliding sample window the percentiles are computed
// over.
const latencyWindow = 4096

// LatencyRing is the sliding-window latency recorder behind every
// percentile the serving stack reports: the engine's Stats, the fleet's
// per-model stats and the load-generator benches all record into one of
// these and read percentiles back through Percentile, so "p999" means
// the same computation everywhere. The zero value is ready to use; all
// methods are safe for concurrent use.
type LatencyRing struct {
	mu   sync.Mutex
	ring [latencyWindow]float64 // microseconds
	n    uint64                 // total recorded; ring index is n % latencyWindow
}

// Record adds one request latency to the window.
func (r *LatencyRing) Record(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	r.mu.Lock()
	r.ring[r.n%latencyWindow] = us
	r.n++
	r.mu.Unlock()
}

// Count returns the total number of recorded latencies (not capped by
// the window).
func (r *LatencyRing) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Sorted returns the window's samples sorted ascending, ready for
// Percentile. Empty when nothing has been recorded.
func (r *LatencyRing) Sorted() []float64 {
	r.mu.Lock()
	n := r.n
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := append([]float64(nil), r.ring[:n]...)
	r.mu.Unlock()
	sort.Float64s(lat)
	return lat
}

// Percentiles reads the three serving percentiles (p50/p99/p999) the
// stats surfaces report, in microseconds. All zero when nothing has been
// recorded.
func (r *LatencyRing) Percentiles() (p50, p99, p999 float64) {
	lat := r.Sorted()
	if len(lat) == 0 {
		return 0, 0, 0
	}
	return Percentile(lat, 0.50), Percentile(lat, 0.99), Percentile(lat, 0.999)
}

// tracker accumulates engine statistics. Counters are atomic; the latency
// window is the shared LatencyRing.
type tracker struct {
	start       time.Time
	done        atomic.Uint64
	errors      atomic.Uint64
	shed        atomic.Uint64
	batches     atomic.Uint64
	execBatches atomic.Uint64
	execItems   atomic.Uint64
	execMax     atomic.Int64

	lat LatencyRing
}

func (t *tracker) recordBatch() {
	t.batches.Add(1)
}

// recordExecBatch records one executed micro-batch of n live requests.
func (t *tracker) recordExecBatch(n int) {
	t.execBatches.Add(1)
	t.execItems.Add(uint64(n))
	for {
		cur := t.execMax.Load()
		if int64(n) <= cur || t.execMax.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (t *tracker) recordDone(d time.Duration) {
	t.done.Add(1)
	t.lat.Record(d)
}

func (t *tracker) snapshot() Stats {
	s := Stats{
		Requests: t.done.Load(),
		Errors:   t.errors.Load(),
		Shed:     t.shed.Load(),
		Batches:  t.batches.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Requests) / float64(s.Batches)
	}
	s.ExecBatches = t.execBatches.Load()
	if s.ExecBatches > 0 {
		s.MeanExecBatch = float64(t.execItems.Load()) / float64(s.ExecBatches)
	}
	s.MaxExecBatch = int(t.execMax.Load())
	uptime := time.Since(t.start).Seconds()
	s.UptimeS = uptime
	if uptime > 0 {
		s.ThroughputSPS = float64(s.Requests) / uptime
	}
	s.P50LatencyUS, s.P99LatencyUS, s.P999LatencyUS = t.lat.Percentiles()
	return s
}

// Percentile reads the p-quantile from an ascending-sorted sample
// (nearest-rank). It is the one quantile implementation behind every
// latency percentile the serving stack reports — engine stats, fleet
// stats and the benches all call it, so their numbers are comparable.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
