package clb

import (
	"fmt"
	"sort"
)

// Controller is a schedule controller synthesized from LUT/FF primitives:
// a mod-Period cycle counter whose state feeds equality comparators, one
// per scheduled event. Each Step() advances one pipeline cycle and returns
// the events asserted in that cycle. The mapper instantiates one controller
// per pipeline stage to sequence weight reuse iterations, buffer strobes,
// and neuron resets.
type Controller struct {
	period    int
	stateBits int
	luts      []lutNode
	nextState []int          // node index computing the next value of each state bit
	outputs   map[string]int // event name → node producing it
	state     []bool         // FF values (counter bits)
	cycle     int
}

// lutNode is one LUT instance in the controller's structural netlist; its
// inputs reference either counter state bits (src < stateBits) or earlier
// LUT outputs (src ≥ stateBits indexes luts[src−stateBits]).
type lutNode struct {
	lut  *LUT
	srcs []int
}

// Event is a named control signal asserted at specific cycles of the
// period.
type Event struct {
	Name   string
	Cycles []int
}

// NewController synthesizes a controller for the given period and events
// using LUTs of the given fan-in (6 in the evaluated fabric).
func NewController(period, lutInputs int, events []Event) (*Controller, error) {
	if period <= 0 {
		return nil, fmt.Errorf("clb: controller period %d must be positive", period)
	}
	if lutInputs < 2 {
		return nil, fmt.Errorf("clb: controller needs LUTs of fan-in ≥2, got %d", lutInputs)
	}
	bits := 1
	for 1<<uint(bits) < period {
		bits++
	}
	c := &Controller{
		period:    period,
		stateBits: bits,
		outputs:   make(map[string]int),
		state:     make([]bool, bits),
	}
	if err := c.buildCounter(lutInputs); err != nil {
		return nil, err
	}
	for _, ev := range events {
		for _, cy := range ev.Cycles {
			if cy < 0 || cy >= period {
				return nil, fmt.Errorf("clb: event %q cycle %d outside period %d", ev.Name, cy, period)
			}
		}
		if _, dup := c.outputs[ev.Name]; dup {
			return nil, fmt.Errorf("clb: duplicate event %q", ev.Name)
		}
		node, err := c.buildEventDetector(ev.Cycles, lutInputs)
		if err != nil {
			return nil, err
		}
		c.outputs[ev.Name] = node
	}
	return c, nil
}

// addLUT appends a node and returns its value index in the evaluation
// namespace (state bits first, then LUT outputs).
func (c *Controller) addLUT(lut *LUT, srcs ...int) int {
	c.luts = append(c.luts, lutNode{lut: lut, srcs: srcs})
	return c.stateBits + len(c.luts) - 1
}

// buildCounter emits next-state logic for a mod-period counter: an
// incrementer carry chain plus a wrap comparator that resets the state to
// zero after period−1.
func (c *Controller) buildCounter(lutInputs int) error {
	wrap, err := c.buildComparator(c.period-1, lutInputs)
	if err != nil {
		return err
	}
	c.nextState = make([]int, c.stateBits)
	carry := -1 // -1 encodes the constant-true carry into bit 0
	for i := 0; i < c.stateBits; i++ {
		if carry < 0 {
			lut, err := LUTFromFunc(2, func(in []bool) bool {
				bit, w := in[0], in[1]
				if w {
					return false
				}
				return !bit // XOR with constant-true carry
			})
			if err != nil {
				return err
			}
			c.nextState[i] = c.addLUT(lut, i, wrap)
		} else {
			lut, err := LUTFromFunc(3, func(in []bool) bool {
				bit, cy, w := in[0], in[1], in[2]
				if w {
					return false
				}
				return bit != cy
			})
			if err != nil {
				return err
			}
			c.nextState[i] = c.addLUT(lut, i, carry, wrap)
		}
		if i == c.stateBits-1 {
			break
		}
		if carry < 0 {
			idlut, err := LUTFromFunc(1, func(in []bool) bool { return in[0] })
			if err != nil {
				return err
			}
			carry = c.addLUT(idlut, i)
		} else {
			andlut, err := LUTFromFunc(2, func(in []bool) bool { return in[0] && in[1] })
			if err != nil {
				return err
			}
			carry = c.addLUT(andlut, i, carry)
		}
	}
	return nil
}

// buildComparator emits a LUT tree asserting state == value and returns the
// root node index.
func (c *Controller) buildComparator(value, lutInputs int) (int, error) {
	var partials []int
	for lo := 0; lo < c.stateBits; lo += lutInputs {
		hi := lo + lutInputs
		if hi > c.stateBits {
			hi = c.stateBits
		}
		lo, hi := lo, hi
		lut, err := LUTFromFunc(hi-lo, func(in []bool) bool {
			for b := lo; b < hi; b++ {
				want := value&(1<<uint(b)) != 0
				if in[b-lo] != want {
					return false
				}
			}
			return true
		})
		if err != nil {
			return 0, err
		}
		srcs := make([]int, hi-lo)
		for b := lo; b < hi; b++ {
			srcs[b-lo] = b
		}
		partials = append(partials, c.addLUT(lut, srcs...))
	}
	return c.reduceTree(partials, lutInputs, true)
}

// reduceTree reduces node outputs with AND (and=true) or OR LUTs and
// returns the root node index.
func (c *Controller) reduceTree(nodes []int, lutInputs int, and bool) (int, error) {
	for len(nodes) > 1 {
		var next []int
		for lo := 0; lo < len(nodes); lo += lutInputs {
			hi := lo + lutInputs
			if hi > len(nodes) {
				hi = len(nodes)
			}
			if hi-lo == 1 {
				next = append(next, nodes[lo])
				continue
			}
			lut, err := LUTFromFunc(hi-lo, func(in []bool) bool {
				for _, v := range in {
					if v != and {
						return !and
					}
				}
				return and
			})
			if err != nil {
				return 0, err
			}
			next = append(next, c.addLUT(lut, append([]int(nil), nodes[lo:hi]...)...))
		}
		nodes = next
	}
	return nodes[0], nil
}

// buildEventDetector emits comparator+OR logic asserting at the given
// cycles.
func (c *Controller) buildEventDetector(cycles []int, lutInputs int) (int, error) {
	if len(cycles) == 0 {
		lut, err := LUTFromFunc(1, func([]bool) bool { return false })
		if err != nil {
			return 0, err
		}
		return c.addLUT(lut, 0), nil
	}
	sorted := append([]int(nil), cycles...)
	sort.Ints(sorted)
	var comps []int
	for _, cy := range sorted {
		node, err := c.buildComparator(cy, lutInputs)
		if err != nil {
			return 0, err
		}
		comps = append(comps, node)
	}
	return c.reduceTree(comps, lutInputs, false)
}

// Step advances one cycle: it evaluates the netlist on the current counter
// state, returns the set of asserted events, then clocks the counter FFs.
func (c *Controller) Step() (map[string]bool, error) {
	values := make([]bool, c.stateBits+len(c.luts))
	copy(values, c.state)
	for i, node := range c.luts {
		in := make([]bool, len(node.srcs))
		for k, s := range node.srcs {
			in[k] = values[s]
		}
		v, err := node.lut.Eval(in)
		if err != nil {
			return nil, err
		}
		values[c.stateBits+i] = v
	}
	asserted := make(map[string]bool, len(c.outputs))
	for name, node := range c.outputs {
		asserted[name] = values[node]
	}
	for i := range c.state {
		c.state[i] = values[c.nextState[i]]
	}
	c.cycle = (c.cycle + 1) % c.period
	return asserted, nil
}

// Cycle returns the controller's current cycle within the period (the value
// the counter FFs encode before the next Step).
func (c *Controller) Cycle() int { return c.cycle }

// Period returns the schedule period P.
func (c *Controller) Period() int { return c.period }

// LUTCount returns how many LUT primitives the synthesized controller
// consumes — the number the mapper charges against CLB budgets.
func (c *Controller) LUTCount() int { return len(c.luts) }

// StateBits returns the number of counter flip-flops.
func (c *Controller) StateBits() int { return c.stateBits }
