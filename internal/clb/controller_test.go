package clb

import (
	"testing"

	"fpsa/internal/device"
)

func stepN(t *testing.T, c *Controller, n int) []map[string]bool {
	t.Helper()
	out := make([]map[string]bool, n)
	for i := range out {
		m, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func TestControllerCountsModPeriod(t *testing.T) {
	for _, period := range []int{1, 2, 3, 7, 8, 64, 100} {
		c, err := NewController(period, 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3*period; i++ {
			if got := c.Cycle(); got != i%period {
				t.Fatalf("period %d: cycle %d reported as %d", period, i, got)
			}
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestControllerEventFiresAtScheduledCycles(t *testing.T) {
	const period = 37
	events := []Event{
		{Name: "reset", Cycles: []int{0}},
		{Name: "strobe", Cycles: []int{5, 11, 36}},
		{Name: "never", Cycles: nil},
	}
	c, err := NewController(period, 6, events)
	if err != nil {
		t.Fatal(err)
	}
	steps := stepN(t, c, 2*period)
	for i, m := range steps {
		cy := i % period
		if got := m["reset"]; got != (cy == 0) {
			t.Errorf("cycle %d: reset = %v", cy, got)
		}
		wantStrobe := cy == 5 || cy == 11 || cy == 36
		if got := m["strobe"]; got != wantStrobe {
			t.Errorf("cycle %d: strobe = %v, want %v", cy, got, wantStrobe)
		}
		if m["never"] {
			t.Errorf("cycle %d: never asserted", cy)
		}
	}
}

func TestControllerPeriodOne(t *testing.T) {
	c, err := NewController(1, 6, []Event{{Name: "tick", Cycles: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !m["tick"] {
			t.Fatalf("step %d: tick not asserted", i)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0, 6, nil); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := NewController(8, 1, nil); err == nil {
		t.Error("fan-in 1 accepted")
	}
	if _, err := NewController(8, 6, []Event{{Name: "x", Cycles: []int{8}}}); err == nil {
		t.Error("out-of-period cycle accepted")
	}
	if _, err := NewController(8, 6, []Event{{Name: "x"}, {Name: "x"}}); err == nil {
		t.Error("duplicate event accepted")
	}
}

func TestControllerLUTCountScales(t *testing.T) {
	small, err := NewController(8, 6, []Event{{Name: "a", Cycles: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewController(50000, 6, []Event{{Name: "a", Cycles: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if small.LUTCount() <= 0 {
		t.Fatal("small controller consumes no LUTs")
	}
	if big.LUTCount() <= small.LUTCount() {
		t.Errorf("big controller LUTs %d not > small %d", big.LUTCount(), small.LUTCount())
	}
	if big.StateBits() != 16 {
		t.Errorf("50000-cycle counter has %d state bits, want 16", big.StateBits())
	}
	// A realistic per-stage controller must fit in a handful of CLBs.
	if blocks := BlocksNeeded(device.Params45nm, big.LUTCount()); blocks > 2 {
		t.Errorf("big controller needs %d CLBs, want ≤2", blocks)
	}
}
