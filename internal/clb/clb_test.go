package clb

import (
	"testing"
	"testing/quick"

	"fpsa/internal/device"
)

func TestNewLUTValidation(t *testing.T) {
	if _, err := NewLUT(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewLUT(make([]bool, 3)); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	l, err := NewLUT(make([]bool, 64))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Inputs(); got != 6 {
		t.Errorf("Inputs = %d, want 6", got)
	}
}

func TestLUTEvalXor(t *testing.T) {
	l, err := LUTFromFunc(2, func(in []bool) bool { return in[0] != in[1] })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, want bool
	}{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	}
	for _, tc := range cases {
		got, err := l.Eval([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("xor(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestLUTEvalArityMismatch(t *testing.T) {
	l, _ := LUTFromFunc(3, func(in []bool) bool { return in[0] })
	if _, err := l.Eval([]bool{true}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestQuickLUTFromFuncFaithful(t *testing.T) {
	// LUTFromFunc must agree with the sampled function on every input.
	f := func(in []bool) bool { return (in[0] && in[1]) || (!in[2] && in[3]) }
	l, err := LUTFromFunc(4, f)
	if err != nil {
		t.Fatal(err)
	}
	check := func(idx uint8) bool {
		in := make([]bool, 4)
		for b := range in {
			in[b] = idx&(1<<uint(b)) != 0
		}
		got, err := l.Eval(in)
		return err == nil && got == f(in)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBlocksNeeded(t *testing.T) {
	p := device.Params45nm
	cases := []struct{ luts, want int }{
		{0, 0}, {1, 1}, {128, 1}, {129, 2}, {1024, 8},
	}
	for _, tc := range cases {
		if got := BlocksNeeded(p, tc.luts); got != tc.want {
			t.Errorf("BlocksNeeded(%d) = %d, want %d", tc.luts, got, tc.want)
		}
	}
}

func TestCLBBudget(t *testing.T) {
	c := New(device.Params45nm)
	if got := c.LUTBudget(); got != 128 {
		t.Errorf("LUTBudget = %d, want 128", got)
	}
	if got := c.Cost().AreaUM2; got != 5998.272 {
		t.Errorf("Cost area = %v, want 5998.272", got)
	}
}
