// Package clb models FPSA's configurable logic block (paper §4.4): a
// bundle of SRAM-based k-input LUTs, flip-flops, and multiplexers that
// implements the control logic the spatial-to-temporal mapper generates
// (reset signals at window boundaries, buffer read/write strobes, weight
// time-multiplexing selects).
//
// Besides the LUT/FF primitives, the package includes a small structural
// synthesizer that builds a schedule controller — a mod-P cycle counter
// plus comparator-driven event outputs — out of those primitives, so the
// mapper's CLB budgets are grounded in actual logic-synthesis LUT counts
// rather than guesses.
package clb

import (
	"fmt"

	"fpsa/internal/device"
)

// LUT is a k-input look-up table: any boolean function of up to k inputs.
type LUT struct {
	inputs int
	table  []bool // 2^inputs entries
}

// NewLUT builds a LUT from an explicit truth table; len(table) must be a
// power of two not exceeding 2^k for the fabric's k.
func NewLUT(table []bool) (*LUT, error) {
	n := len(table)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("clb: truth table length %d is not a power of two", n)
	}
	inputs := 0
	for v := n; v > 1; v >>= 1 {
		inputs++
	}
	return &LUT{inputs: inputs, table: append([]bool(nil), table...)}, nil
}

// LUTFromFunc samples a boolean function of `inputs` variables into a LUT.
func LUTFromFunc(inputs int, f func(in []bool) bool) (*LUT, error) {
	if inputs < 0 || inputs > 16 {
		return nil, fmt.Errorf("clb: %d LUT inputs unsupported", inputs)
	}
	table := make([]bool, 1<<uint(inputs))
	in := make([]bool, inputs)
	for idx := range table {
		for b := 0; b < inputs; b++ {
			in[b] = idx&(1<<uint(b)) != 0
		}
		table[idx] = f(in)
	}
	return NewLUT(table)
}

// Inputs returns the LUT fan-in.
func (l *LUT) Inputs() int { return l.inputs }

// Eval evaluates the LUT; in[b] is input bit b (LSB-first indexing).
func (l *LUT) Eval(in []bool) (bool, error) {
	if len(in) != l.inputs {
		return false, fmt.Errorf("clb: %d inputs to %d-input LUT", len(in), l.inputs)
	}
	idx := 0
	for b, v := range in {
		if v {
			idx |= 1 << uint(b)
		}
	}
	return l.table[idx], nil
}

// CLB is one configurable logic block: a fixed budget of LUTs and FFs.
type CLB struct {
	params device.Params
}

// New returns a CLB with the published 45 nm parameters (128 six-input
// LUTs, sized so one CLB matches one PE in area and pin count).
func New(params device.Params) *CLB { return &CLB{params: params} }

// LUTBudget returns how many LUTs the block provides.
func (c *CLB) LUTBudget() int { return c.params.CLBLUTs }

// Cost returns the published CLB cost triple.
func (c *CLB) Cost() device.BlockCost { return c.params.CLB }

// BlocksNeeded returns how many CLBs a controller consuming the given
// number of LUTs occupies.
func BlocksNeeded(params device.Params, luts int) int {
	if luts <= 0 {
		return 0
	}
	return (luts + params.CLBLUTs - 1) / params.CLBLUTs
}
