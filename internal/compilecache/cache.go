// Package compilecache is the content-addressed deployment cache behind
// fpsa.CompileCache: place-and-route and bitstream artifacts keyed by the
// SHA-256 of (model structure, compile configuration), bounded by LRU
// eviction. Placement and routing dominate cold-start compile latency, so
// a serving fleet that redeploys the same model under the same Config
// must never repeat them — concurrent requests for one key block on a
// single computation (singleflight), distinct keys compute in parallel,
// and because both the annealing portfolio and the parallel router are
// deterministic, a cached artifact is byte-identical to a recompute.
package compilecache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"fpsa/internal/bitstream"
	"fpsa/internal/fabric"
	"fpsa/internal/place"
	"fpsa/internal/route"
)

// Key is a content address: the digest of a model fingerprint and the
// canonical configuration string.
type Key [sha256.Size]byte

// String renders the address in hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFrom derives the content address for one (model, config) pair. The
// config string must canonically encode every Config field that changes
// compile output (duplication, tracks, seed, portfolio size) and nothing
// that does not (parallelism).
func KeyFrom(model [sha256.Size]byte, config string) Key {
	h := sha256.New()
	h.Write(model[:])
	h.Write([]byte{0})
	h.Write([]byte(config))
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Artifacts is one deployment's cached place-and-route output plus its
// lazily generated bitstream. Artifacts are shared across deployments and
// treated as immutable once computed.
type Artifacts struct {
	Chip      fabric.Chip
	Placement *place.Placement
	Route     *route.Result

	// Annealing summary for stats reporting.
	PlacementMoves int
	WirelengthCost float64
	Restarts       int

	bitsOnce sync.Once
	bits     *bitstream.Config
	bitsErr  error
}

// Bitstream memoizes gen: the first caller generates (and verifies) the
// configuration, every later caller for the same artifacts shares it.
// Generation is deterministic, so a failure is cached as final.
func (a *Artifacts) Bitstream(gen func() (*bitstream.Config, error)) (*bitstream.Config, error) {
	a.bitsOnce.Do(func() { a.bits, a.bitsErr = gen() })
	return a.bits, a.bitsErr
}

// DefaultMaxEntries bounds a Cache built with maxEntries <= 0.
const DefaultMaxEntries = 128

// Cache is the LRU-bounded artifact store. The zero value is not usable;
// call New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*entry
	lru     *list.List // front = most recently used; element values are *entry

	hits, misses atomic.Int64
}

type entry struct {
	key  Key
	elem *list.Element
	done chan struct{}
	art  *Artifacts
	err  error
}

// New returns an empty cache holding at most maxEntries artifacts
// (<= 0 selects DefaultMaxEntries).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{max: maxEntries, entries: make(map[Key]*entry), lru: list.New()}
}

// GetOrComputeCtx returns the artifacts for k, invoking compute at most
// once per key across concurrent callers. hit reports whether the
// artifacts (or the in-flight computation it joined) already existed. A
// failed compute is not cached; a later call retries. ctx bounds the
// caller's wait: a caller that joins another caller's in-flight
// computation stops waiting when its own ctx is done and returns
// ctx.Err() — the computation itself keeps running under its owner, and
// its result is cached for later callers as usual. The computing
// caller's compute closure is responsible for honoring its own ctx.
func (c *Cache) GetOrComputeCtx(ctx context.Context, k Key, compute func() (*Artifacts, error)) (art *Artifacts, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.done:
			// Count the hit only once something was actually delivered;
			// a joiner abandoning the wait got nothing from the cache.
			c.hits.Add(1)
			return e.art, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &entry{key: k, done: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.misses.Add(1)
	// Evict least-recently-used *completed* entries; an in-flight entry
	// must survive so concurrent callers of its key share one compute
	// (the singleflight contract). The cache may transiently exceed max
	// while many keys are in flight.
	for el := c.lru.Back(); el != nil && len(c.entries) > c.max; {
		victim := el.Value.(*entry)
		el = el.Prev()
		select {
		case <-victim.done:
			c.lru.Remove(victim.elem)
			delete(c.entries, victim.key)
		default: // still computing; skip
		}
	}
	c.mu.Unlock()

	e.art, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		if c.entries[k] == e {
			c.lru.Remove(e.elem)
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.art, false, e.err
}

// Len reports the number of cached (or in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters reports lookups that found an entry and lookups that had to
// compute, since construction.
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
