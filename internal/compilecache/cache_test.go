package compilecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fpsa/internal/bitstream"
)

func keyN(n int) Key {
	var m [32]byte
	m[0] = byte(n)
	m[1] = byte(n >> 8)
	return KeyFrom(m, "cfg")
}

func TestKeyFromSeparatesModelAndConfig(t *testing.T) {
	var m [32]byte
	a := KeyFrom(m, "dup=1")
	b := KeyFrom(m, "dup=2")
	if a == b {
		t.Error("different configs produced one key")
	}
	m[5] = 1
	if c := KeyFrom(m, "dup=1"); c == a {
		t.Error("different models produced one key")
	}
	if d := KeyFrom(m, "dup=1"); d != KeyFrom(m, "dup=1") {
		t.Error("KeyFrom not deterministic")
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New(8)
	var builds atomic.Int64
	const callers = 32
	var wg sync.WaitGroup
	arts := make([]*Artifacts, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			art, _, err := c.GetOrComputeCtx(context.Background(), keyN(1), func() (*Artifacts, error) {
				builds.Add(1)
				return &Artifacts{PlacementMoves: 42}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("compute ran %d times for one key", got)
	}
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatal("callers received distinct artifacts")
		}
	}
	hits, misses := c.Counters()
	if misses != 1 || hits != callers-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}
}

func TestFailedComputeRetries(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	if _, _, err := c.GetOrComputeCtx(context.Background(), keyN(2), func() (*Artifacts, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute cached (len %d)", c.Len())
	}
	art, hit, err := c.GetOrComputeCtx(context.Background(), keyN(2), func() (*Artifacts, error) { return &Artifacts{}, nil })
	if err != nil || hit || art == nil {
		t.Errorf("retry: art=%v hit=%v err=%v", art, hit, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.GetOrComputeCtx(context.Background(), keyN(i), func() (*Artifacts, error) { return &Artifacts{PlacementMoves: i}, nil })
	}
	// Touch key 0 so key 1 is the least recently used.
	if _, hit, _ := c.GetOrComputeCtx(context.Background(), keyN(0), nil); !hit {
		t.Fatal("expected hit on key 0")
	}
	c.GetOrComputeCtx(context.Background(), keyN(9), func() (*Artifacts, error) { return &Artifacts{}, nil })
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	for _, n := range []int{0, 2, 9} {
		if _, hit, _ := c.GetOrComputeCtx(context.Background(), keyN(n), nil); !hit {
			t.Errorf("key %d evicted, want kept", n)
		}
	}
	if _, hit, _ := c.GetOrComputeCtx(context.Background(), keyN(1), func() (*Artifacts, error) { return &Artifacts{}, nil }); hit {
		t.Error("LRU key 1 survived eviction")
	}
}

func TestEvictionSkipsInFlightEntries(t *testing.T) {
	// A full cache must not evict an entry whose compute is still
	// running: concurrent callers of that key share the one compute.
	c := New(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrComputeCtx(context.Background(), keyN(1), func() (*Artifacts, error) {
			close(started)
			<-release
			builds.Add(1)
			return &Artifacts{PlacementMoves: 1}, nil
		})
	}()
	<-started
	// Overflow the 1-entry cache while key 1 is in flight.
	for n := 2; n < 5; n++ {
		c.GetOrComputeCtx(context.Background(), keyN(n), func() (*Artifacts, error) { return &Artifacts{}, nil })
	}
	// A second caller for key 1 must join the in-flight compute, not
	// start a new one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		art, hit, err := c.GetOrComputeCtx(context.Background(), keyN(1), func() (*Artifacts, error) {
			builds.Add(1)
			return &Artifacts{PlacementMoves: 99}, nil
		})
		if err != nil || !hit || art.PlacementMoves != 1 {
			t.Errorf("joiner got art=%+v hit=%v err=%v", art, hit, err)
		}
	}()
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("in-flight entry evicted: compute ran %d times", builds.Load())
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				art, _, err := c.GetOrComputeCtx(context.Background(), keyN(i), func() (*Artifacts, error) {
					return &Artifacts{PlacementMoves: i}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if art.PlacementMoves != i {
					t.Errorf("key %d returned artifacts for %d", i, art.PlacementMoves)
				}
			}(i)
		}
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Errorf("len = %d, want 16", c.Len())
	}
}

func TestArtifactsBitstreamMemoized(t *testing.T) {
	a := &Artifacts{}
	var gens atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg, err := a.Bitstream(func() (*bitstream.Config, error) {
				gens.Add(1)
				return &bitstream.Config{}, nil
			})
			if err != nil || cfg == nil {
				t.Error("bitstream memo failed")
			}
		}()
	}
	wg.Wait()
	if gens.Load() != 1 {
		t.Errorf("bitstream generated %d times", gens.Load())
	}
	b := &Artifacts{}
	if _, err := b.Bitstream(func() (*bitstream.Config, error) { return nil, fmt.Errorf("verify failed") }); err == nil {
		t.Error("error not propagated")
	}
	if _, err := b.Bitstream(func() (*bitstream.Config, error) { return &bitstream.Config{}, nil }); err == nil {
		t.Error("deterministic failure should be cached as final")
	}
}

// TestJoinerWaitBoundedByContext: a caller joining an in-flight compute
// stops waiting when its own context is done; the computation keeps
// running under its owner and its result is cached for later callers.
func TestJoinerWaitBoundedByContext(t *testing.T) {
	c := New(0)
	key := KeyFrom([32]byte{1}, "cfg")
	release := make(chan struct{})
	started := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		art, hit, err := c.GetOrComputeCtx(context.Background(), key, func() (*Artifacts, error) {
			close(started)
			<-release
			return &Artifacts{}, nil
		})
		if err != nil || hit || art == nil {
			t.Errorf("owner: art=%v hit=%v err=%v", art, hit, err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrComputeCtx(ctx, key, func() (*Artifacts, error) {
		t.Error("joiner ran the compute")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner with done ctx: %v, want context.Canceled", err)
	}

	close(release)
	<-ownerDone
	art, hit, err := c.GetOrComputeCtx(context.Background(), key, func() (*Artifacts, error) {
		t.Error("cached result recomputed")
		return nil, nil
	})
	if err != nil || !hit || art == nil {
		t.Fatalf("post-release lookup: art=%v hit=%v err=%v", art, hit, err)
	}
}
