// Command docscheck keeps the README honest: it extracts every CLI flag
// declared by the binaries under cmd/ and fails when one is missing from
// the README's flag tables (a row whose first cell is `-flagname`).
// Rows are attributed per binary — a table documents the binary named
// most recently above it — so a flag added to one binary cannot ride on
// a same-named row in another binary's table. CI runs it so a new or
// renamed flag cannot land undocumented.
//
// Usage (from the repository root):
//
//	go run ./internal/tools/docscheck
//	go run ./internal/tools/docscheck -readme README.md -cmd ./cmd
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// flagDecl matches flag declarations like flag.String("model", …),
// flag.IntVar(&v, "model", …) and flag.Duration("flush", …). The first
// quoted argument is the flag name.
var flagDecl = regexp.MustCompile(`flag\.[A-Za-z]+\((?:&[A-Za-z0-9_.]+,\s*)?"([^"]+)"`)

// flagRow matches a flag-table row: | `-name` | meaning |.
var flagRow = regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|")

func main() {
	readmePath := flag.String("readme", "README.md", "README file holding the flag tables")
	cmdDir := flag.String("cmd", "cmd", "directory holding the CLI binaries")
	flag.Parse()

	mains, err := filepath.Glob(filepath.Join(*cmdDir, "*", "main.go"))
	if err != nil {
		fail(err)
	}
	if len(mains) == 0 {
		fail(fmt.Errorf("no binaries found under %s", *cmdDir))
	}
	sort.Strings(mains)
	binaries := make([]string, len(mains))
	for i, path := range mains {
		binaries[i] = filepath.Base(filepath.Dir(path))
	}

	readme, err := os.ReadFile(*readmePath)
	if err != nil {
		fail(err)
	}
	// Attribute each flag row to the binary named most recently before
	// it: prose like "go run ./cmd/fpsa-serve …" or a "## fpsa-bench"
	// heading switches the current binary, and its flag table follows.
	documented := make(map[string]map[string]bool, len(binaries))
	for _, b := range binaries {
		documented[b] = make(map[string]bool)
	}
	current := ""
	rows := 0
	for _, line := range strings.Split(string(readme), "\n") {
		if m := flagRow.FindStringSubmatch(line); m != nil {
			rows++
			if current != "" {
				documented[current][m[1]] = true
			}
			continue
		}
		for _, b := range binaries {
			if idx := strings.LastIndex(line, b); idx >= 0 {
				if current == "" || idx >= strings.LastIndex(line, current) {
					current = b
				}
			}
		}
	}
	if rows == 0 {
		fail(fmt.Errorf("%s contains no flag-table rows (| `-flag` | …); refusing to pass vacuously", *readmePath))
	}

	type miss struct{ binary, flag string }
	var missing []miss
	total := 0
	for i, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		for _, m := range flagDecl.FindAllStringSubmatch(string(src), -1) {
			total++
			if !documented[binaries[i]][m[1]] {
				missing = append(missing, miss{binary: binaries[i], flag: m[1]})
			}
		}
	}
	if total == 0 {
		fail(fmt.Errorf("no flag declarations found under %s; the matcher may be stale", *cmdDir))
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d flag(s) missing from %s flag tables:\n", len(missing), *readmePath)
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s: -%s\n", m.binary, m.flag)
		}
		fmt.Fprintln(os.Stderr, "add a `| `-flag` | meaning |` row to that binary's table (or remove the flag).")
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d flags across %d binaries all documented in %s\n", total, len(mains), *readmePath)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "docscheck:", err)
	os.Exit(1)
}
