// Command docscheck keeps the repository's public surface honest, in two
// passes. First, it extracts every CLI flag declared by the binaries
// under cmd/ and fails when one is missing from the README's flag tables
// (a row whose first cell is `-flagname`). Rows are attributed per
// binary — a table documents the binary named most recently above it —
// so a flag added to one binary cannot ride on a same-named row in
// another binary's table. Second, it parses the root fpsa package for
// exported symbols marked `// Deprecated:` and fails when any of them is
// still used under cmd/ or examples/ — the in-repo users must stay on
// the current API, so the deprecated wrappers can eventually be deleted.
// CI runs both passes, so neither an undocumented flag nor a deprecated
// call can land.
//
// Usage (from the repository root):
//
//	go run ./internal/tools/docscheck
//	go run ./internal/tools/docscheck -readme README.md -cmd ./cmd -pkg . -examples examples
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// flagDecl matches flag declarations like flag.String("model", …),
// flag.IntVar(&v, "model", …) and flag.Duration("flush", …). The first
// quoted argument is the flag name.
var flagDecl = regexp.MustCompile(`flag\.[A-Za-z]+\((?:&[A-Za-z0-9_.]+,\s*)?"([^"]+)"`)

// flagRow matches a flag-table row: | `-name` | meaning |.
var flagRow = regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|")

func main() {
	readmePath := flag.String("readme", "README.md", "README file holding the flag tables")
	cmdDir := flag.String("cmd", "cmd", "directory holding the CLI binaries")
	pkgDir := flag.String("pkg", ".", "directory of the public package scanned for // Deprecated: symbols")
	examplesDir := flag.String("examples", "examples", "directory of the example programs")
	flag.Parse()

	mains, err := filepath.Glob(filepath.Join(*cmdDir, "*", "main.go"))
	if err != nil {
		fail(err)
	}
	if len(mains) == 0 {
		fail(fmt.Errorf("no binaries found under %s", *cmdDir))
	}
	sort.Strings(mains)
	binaries := make([]string, len(mains))
	for i, path := range mains {
		binaries[i] = filepath.Base(filepath.Dir(path))
	}

	readme, err := os.ReadFile(*readmePath)
	if err != nil {
		fail(err)
	}
	// Attribute each flag row to the binary named most recently before
	// it: prose like "go run ./cmd/fpsa-serve …" or a "## fpsa-bench"
	// heading switches the current binary, and its flag table follows.
	documented := make(map[string]map[string]bool, len(binaries))
	for _, b := range binaries {
		documented[b] = make(map[string]bool)
	}
	current := ""
	rows := 0
	for _, line := range strings.Split(string(readme), "\n") {
		if m := flagRow.FindStringSubmatch(line); m != nil {
			rows++
			if current != "" {
				documented[current][m[1]] = true
			}
			continue
		}
		for _, b := range binaries {
			if idx := strings.LastIndex(line, b); idx >= 0 {
				if current == "" || idx >= strings.LastIndex(line, current) {
					current = b
				}
			}
		}
	}
	if rows == 0 {
		fail(fmt.Errorf("%s contains no flag-table rows (| `-flag` | …); refusing to pass vacuously", *readmePath))
	}

	type miss struct{ binary, flag string }
	var missing []miss
	total := 0
	for i, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		for _, m := range flagDecl.FindAllStringSubmatch(string(src), -1) {
			total++
			if !documented[binaries[i]][m[1]] {
				missing = append(missing, miss{binary: binaries[i], flag: m[1]})
			}
		}
	}
	if total == 0 {
		fail(fmt.Errorf("no flag declarations found under %s; the matcher may be stale", *cmdDir))
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d flag(s) missing from %s flag tables:\n", len(missing), *readmePath)
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s: -%s\n", m.binary, m.flag)
		}
		fmt.Fprintln(os.Stderr, "add a `| `-flag` | meaning |` row to that binary's table (or remove the flag).")
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d flags across %d binaries all documented in %s\n", total, len(mains), *readmePath)

	checkDeprecatedUsage(*pkgDir, *cmdDir, *examplesDir)
}

// deprecatedSymbols parses the public package and returns its exported
// symbols whose doc comment carries a "Deprecated:" marker: package-level
// names (funcs, types, vars, consts) and method names separately, since
// the two are matched differently at use sites.
func deprecatedSymbols(pkgDir string) (pkgSyms, methodSyms []string) {
	files, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
	if err != nil {
		fail(err)
	}
	fset := token.NewFileSet()
	deprecated := func(doc *ast.CommentGroup) bool {
		return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
	}
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fail(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !deprecated(d.Doc) || !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					methodSyms = append(methodSyms, d.Name.Name)
				} else {
					pkgSyms = append(pkgSyms, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if (deprecated(d.Doc) || deprecated(s.Doc)) && s.Name.IsExported() {
							pkgSyms = append(pkgSyms, s.Name.Name)
						}
					case *ast.ValueSpec:
						if deprecated(d.Doc) || deprecated(s.Doc) {
							for _, n := range s.Names {
								if n.IsExported() {
									pkgSyms = append(pkgSyms, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(pkgSyms)
	sort.Strings(methodSyms)
	return pkgSyms, methodSyms
}

// checkDeprecatedUsage fails the build when a deprecated public symbol is
// still used by the in-repo consumers under cmd/ or examples/. Use sites
// are found in the parsed AST, never in raw text, so a comment that
// merely mentions a deprecated symbol (a migration note, say) cannot
// trip the check: package-level symbols match fpsa.Name selector
// expressions (the import's local alias is honored), deprecated methods
// match .Name(...) calls by name. The method match is untyped — a
// cmd/example calling an unrelated type's same-named method would trip
// it — which is accepted as fail-closed: the consumers are small, the
// deprecated method names (ClassifyCtx, OutputsCtx, Deploy) are
// distinctive, and a false hit fails loudly at CI rather than letting a
// deprecated call land silently.
func checkDeprecatedUsage(pkgDir, cmdDir, examplesDir string) {
	pkgSyms, methodSyms := deprecatedSymbols(pkgDir)
	if len(pkgSyms)+len(methodSyms) == 0 {
		fmt.Println("docscheck: no deprecated symbols declared; nothing to check")
		return
	}
	isPkgSym := make(map[string]bool, len(pkgSyms))
	for _, s := range pkgSyms {
		isPkgSym[s] = true
	}
	isMethod := make(map[string]bool, len(methodSyms))
	for _, s := range methodSyms {
		isMethod[s] = true
	}

	var sources []string
	for _, dir := range []string{cmdDir, examplesDir} {
		globbed, err := filepath.Glob(filepath.Join(dir, "*", "*.go"))
		if err != nil {
			fail(err)
		}
		sources = append(sources, globbed...)
	}
	sort.Strings(sources)
	type use struct {
		where string
		what  string
	}
	var uses []use
	fset := token.NewFileSet()
	for _, path := range sources {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			fail(err)
		}
		// Resolve what the fpsa package is called in this file: the
		// default "fpsa", or the local alias of a renamed import — so
		// `import f "fpsa"; f.DeployModel(...)` cannot evade the gate.
		pkgName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "fpsa" {
				continue
			}
			pkgName = "fpsa"
			if imp.Name != nil {
				pkgName = imp.Name.Name
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if x, ok := e.X.(*ast.Ident); ok && pkgName != "" && x.Name == pkgName && isPkgSym[e.Sel.Name] {
					uses = append(uses, use{where: fset.Position(e.Pos()).String(), what: pkgName + "." + e.Sel.Name})
				}
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok && isMethod[sel.Sel.Name] {
					if x, ok := sel.X.(*ast.Ident); !ok || x.Name != pkgName {
						uses = append(uses, use{where: fset.Position(e.Pos()).String(), what: "." + sel.Sel.Name + "(…)"})
					}
				}
			}
			return true
		})
	}
	if len(uses) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d use(s) of deprecated fpsa symbols under cmd/ and examples/:\n", len(uses))
		for _, u := range uses {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", u.where, u.what)
		}
		fmt.Fprintln(os.Stderr, "migrate to the current API (see docs/API.md) — the in-repo consumers must not lean on deprecated wrappers.")
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d deprecated symbols unused under %s and %s\n",
		len(pkgSyms)+len(methodSyms), cmdDir, examplesDir)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "docscheck:", err)
	os.Exit(1)
}
