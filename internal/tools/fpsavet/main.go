// Command fpsavet is the repository's lint suite: a multichecker that
// enforces, at compile time, the three invariant classes the equivalence
// tests can only catch after the fact — determinism of the bit-exact
// packages, unbroken context flow, and the closed error taxonomy — plus
// the deprecation and README-flag-table passes migrated from the retired
// docscheck binary. See docs/INVARIANTS.md for the rules and the
// //fpsa:nondet escape hatch.
//
// It is shaped like a golang.org/x/tools/go/analysis multichecker, but
// built entirely on the standard library (go/ast, go/types, and `go list
// -export` for dependency type information), because this build
// environment has no module proxy to fetch x/tools from; the analyzers
// would port to the real framework mechanically.
//
// Usage (from the repository root):
//
//	go run ./internal/tools/fpsavet ./...
//	go run ./internal/tools/fpsavet -docs=false ./internal/place
//
// Exit status is nonzero when any finding is reported. CI runs the suite
// ahead of the tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fpsa/internal/tools/fpsavet/analysis"
	"fpsa/internal/tools/fpsavet/checks"
)

func main() {
	docs := flag.Bool("docs", true, "also run the README flag-table pass (docscheck's first pass)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, moduleDir, err := analysis.Load(".", patterns)
	if err != nil {
		fail(err)
	}
	if moduleDir == "" {
		fail(fmt.Errorf("patterns %v matched no packages in the fpsa module", patterns))
	}

	analyzers := []*analysis.Analyzer{
		checks.Determinism,
		checks.Ctxflow,
		checks.Errwrap,
		checks.Detaxonomy,
		checks.Deprecation(moduleDir, checks.RootPath),
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fail(err)
		}
		diags = append(diags, ds...)
	}
	analysis.SortDiagnostics(diags)

	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}

	problems := 0
	if *docs {
		flagProblems, err := checks.CheckFlagDocs(moduleDir)
		if err != nil {
			fail(err)
		}
		for _, p := range flagProblems {
			fmt.Fprintln(os.Stderr, p)
		}
		problems += len(flagProblems)
	}

	if n := len(diags) + problems; n > 0 {
		fmt.Fprintf(os.Stderr, "fpsavet: %d finding(s)\n", n)
		os.Exit(1)
	}
	fmt.Printf("fpsavet: %d package(s) clean\n", len(pkgs))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsavet:", err)
	os.Exit(1)
}
