package checks

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"fpsa/internal/tools/fpsavet/analysis"
)

// Errwrap keeps the PR 5 error taxonomy closed under errors.Is. Two
// rules:
//
//  1. Everywhere: fmt.Errorf that formats an error-typed argument
//     without a %w verb flattens the chain — errors.Is can no longer see
//     the sentinel underneath.
//  2. In the public fpsa package only: a function body that mints an
//     error with errors.New, or with fmt.Errorf carrying no %w at all,
//     sends a sentinel-free error across the public boundary; every
//     error the root package returns must wrap one of its Err*
//     sentinels. Package-level declarations are exempt — that is where
//     the sentinels themselves are defined.
var Errwrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "flags fmt.Errorf calls that format an error without %w, and " +
		"sentinel-free errors minted inside the public fpsa package",
	Run: runErrwrap,
}

func runErrwrap(pass *analysis.Pass) error {
	isRoot := pass.Pkg.Path() == RootPath
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pass, call)
				switch {
				case analysis.IsNamed(obj, "fmt", "Errorf"):
					format, known := constFormat(pass, call)
					if !known {
						return true // dynamic format string: nothing to prove
					}
					hasW := strings.Contains(format, "%w")
					errArgs := 0
					for _, arg := range call.Args[1:] {
						if t := pass.TypeOf(arg); t != nil && types.Implements(t, errIface) {
							errArgs++
						}
					}
					switch {
					case errArgs > 0 && !hasW:
						pass.Report(call.Pos(), "fmt.Errorf formats an error argument without %%w; errors.Is cannot see through it — wrap with %%w")
					case isRoot && !hasW:
						pass.Report(call.Pos(), "sentinel-free error crosses the public fpsa boundary; wrap one of the Err* sentinels with %%w")
					}
				case analysis.IsNamed(obj, "errors", "New"):
					if isRoot {
						pass.Report(call.Pos(), "errors.New inside the public fpsa package mints an error outside the taxonomy; wrap an Err* sentinel with fmt.Errorf and %%w")
					}
				}
				return true
			})
		}
	}
	return nil
}

// constFormat returns the constant value of the call's first argument
// when it is a compile-time string.
func constFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
