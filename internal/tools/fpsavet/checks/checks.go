// Package checks holds the fpsavet analyzers: the project-specific
// compile-time invariants of this repository, each one born from a bug
// class the equivalence tests only caught after the fact.
//
//   - determinism: the bit-exact compile/execute packages must not
//     iterate maps, draw from the global math/rand source, or read the
//     wall clock — the exact nondeterminism class behind the PR 2
//     Dijkstra-seeding and PR 1 frozen-RNG bugs. Audited exceptions are
//     annotated //fpsa:nondet <reason>.
//   - ctxflow: context flows from the caller. Library code must not
//     synthesize context.Background()/TODO(), and a function that
//     receives a ctx must pass it on rather than detach its callees —
//     the PR 5 prompt-cancellation guarantee depends on an unbroken
//     chain.
//   - errwrap: the PR 5 error taxonomy stays closed. An error formatted
//     into another error uses %w so errors.Is still sees the sentinel,
//     and the public fpsa package never mints a sentinel-free error
//     inside a function body.
//   - deprecation: no in-repo consumer under cmd/ or examples/ may use a
//     symbol the root package marks "Deprecated:" (migrated from the
//     retired docscheck binary).
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"fpsa/internal/tools/fpsavet/analysis"
)

// RootPath is the import path of the repository's public package — the
// boundary the errwrap and deprecation analyzers guard.
const RootPath = "fpsa"

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// calleeObj resolves the package-level function a call invokes, through
// either a plain identifier or a pkg.Name selector.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// isDeprecated reports whether a doc comment carries the standard
// "Deprecated:" marker.
func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

// underPath reports whether pkgPath is prefix itself or below it.
func underPath(pkgPath, prefix string) bool {
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}
