package checks

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"sync"

	"fpsa/internal/tools/fpsavet/analysis"
)

// Deprecation is the docscheck deprecation pass, migrated into the suite
// and made type-aware: the in-repo consumers under cmd/ and examples/
// must not use any exported symbol the root package marks
// "// Deprecated:", so the compatibility wrappers can eventually be
// deleted. Where docscheck matched method calls by bare name (untyped,
// fail-closed), this analyzer resolves every use through go/types, so an
// unrelated type's same-named method can no longer trip it.
//
// rootDir is the directory holding the root package's sources (scanned
// for the Deprecated: markers); rootPath is its import path.
func Deprecation(rootDir, rootPath string) *analysis.Analyzer {
	var (
		once       sync.Once
		pkgSyms    map[string]bool
		methodSyms map[string]bool
		scanErr    error
	)
	return &analysis.Analyzer{
		Name: "deprecation",
		Doc: "flags uses of the root package's Deprecated: symbols under " +
			"cmd/ and examples/ — in-repo consumers stay on the current API",
		Run: func(pass *analysis.Pass) error {
			path := pass.Pkg.Path()
			if !underPath(path, rootPath+"/cmd") && !underPath(path, rootPath+"/examples") {
				return nil
			}
			once.Do(func() {
				pkgSyms, methodSyms, scanErr = deprecatedSymbols(rootDir)
			})
			if scanErr != nil {
				return scanErr
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := pass.TypesInfo.Uses[sel.Sel]
					if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != rootPath {
						return true
					}
					if fn, ok := obj.(*types.Func); ok {
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
							if methodSyms[fn.Name()] {
								pass.Report(sel.Pos(), "use of deprecated method %s.%s; migrate to the current API (see docs/API.md)",
									sig.Recv().Type(), fn.Name())
							}
							return true
						}
					}
					if pkgSyms[obj.Name()] {
						pass.Report(sel.Pos(), "use of deprecated %s.%s; migrate to the current API (see docs/API.md)",
							rootPath, obj.Name())
					}
					return true
				})
			}
			return nil
		},
	}
}

// deprecatedSymbols parses the root package and returns its exported
// package-level and method names whose doc comment carries a
// "Deprecated:" marker.
func deprecatedSymbols(rootDir string) (pkgSyms, methodSyms map[string]bool, err error) {
	files, err := filepath.Glob(filepath.Join(rootDir, "*.go"))
	if err != nil {
		return nil, nil, err
	}
	pkgSyms = make(map[string]bool)
	methodSyms = make(map[string]bool)
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing root package: %w", err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !isDeprecated(d.Doc) || !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					methodSyms[d.Name.Name] = true
				} else {
					pkgSyms[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if (isDeprecated(d.Doc) || isDeprecated(s.Doc)) && s.Name.IsExported() {
							pkgSyms[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						if isDeprecated(d.Doc) || isDeprecated(s.Doc) {
							for _, n := range s.Names {
								if n.IsExported() {
									pkgSyms[n.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return pkgSyms, methodSyms, nil
}
