// Command tool is golden input: an in-repo consumer that must stay off
// the deprecated API.
package main

import "fpsa"

type local struct{}

// OldRun shares its name with the deprecated method but belongs to an
// unrelated type; the typed matcher must not flag it.
func (local) OldRun() {}

func main() {
	fpsa.Old() // want `use of deprecated fpsa\.Old`
	fpsa.New()
	var r fpsa.Runner
	r.OldRun() // want `use of deprecated method fpsa\.Runner\.OldRun`
	r.Run()
	_ = fpsa.OldMode // want `use of deprecated fpsa\.OldMode`
	_ = fpsa.ModeCurrent
	local{}.OldRun()
}
