// Package lib is golden input: library code is outside the deprecation
// guard — the compatibility wrappers exist for callers like this.
package lib

import "fpsa"

func bridge() {
	fpsa.Old()
}
