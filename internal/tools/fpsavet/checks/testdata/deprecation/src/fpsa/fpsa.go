// Package fpsa is golden input standing in for the root package: its
// Deprecated: symbols must not be used from cmd/ or examples/.
package fpsa

// Deprecated: use New.
func Old() {}

// New is the current constructor.
func New() {}

// Runner is current API with one deprecated method.
type Runner struct{}

// Deprecated: use Run.
func (Runner) OldRun() {}

// Run is the current method.
func (Runner) Run() {}

// Deprecated: use ModeCurrent.
var OldMode = 0

// ModeCurrent is the current mode.
var ModeCurrent = 1
