// Command demo is golden input: examples are held to the same
// no-deprecated-API rule as commands.
package main

import "fpsa"

func main() {
	fpsa.Old() // want `use of deprecated fpsa\.Old`
}
