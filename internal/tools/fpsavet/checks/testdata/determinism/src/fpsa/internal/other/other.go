// Package other is golden input: not a bit-exact package, so map order
// and wall-clock reads are unchecked here.
package other

import "time"

func unguarded(m map[int]int) time.Time {
	for range m {
		break
	}
	return time.Now()
}
