// Package synth is golden input: a bit-exact package exercising every
// determinism finding and its exemptions.
package synth

import (
	"math/rand"
	v2 "math/rand/v2"
	"time"
)

func mapOrder(m map[int]int) int {
	sum := 0
	for k := range m { // want `map iteration order is nondeterministic`
		sum += k
	}
	return sum
}

func annotated(m map[int]int) []int {
	var keys []int
	//fpsa:nondet collects keys into a set; sorted by the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func missingReason(m map[int]int) int {
	n := 0
	//fpsa:nondet
	for range m { // want `//fpsa:nondet directive needs a reason`
		n++
	}
	return n
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand source`
}

func globalRandV2() int {
	return v2.IntN(10) // want `global math/rand source`
}

func seeded(rng *rand.Rand) int {
	return rng.Intn(10) // methods on a seeded source are fine
}

func wallClock() time.Time {
	return time.Now() // want `time.Now in a bit-exact package`
}

func sliceRange(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}
