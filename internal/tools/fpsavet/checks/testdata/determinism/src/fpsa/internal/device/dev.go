// Package device is golden input: the fault-model package joined the
// bit-exact set in PR 9 — fault maps must derive only from seeds — so
// the determinism guard applies here exactly as in the kernels.
package device

import (
	"math/rand"
	"time"
)

func layerSeeds(seeds map[string]int64) int64 {
	var sum int64
	for _, s := range seeds { // want `map iteration order is nondeterministic`
		sum += s
	}
	return sum
}

func sortedSeeds(seeds map[string]int64) []string {
	var names []string
	//fpsa:nondet collects names into a set; sorted before use
	for name := range seeds {
		names = append(names, name)
	}
	return names
}

func drawFault() bool {
	return rand.Float64() < 0.01 // want `global math/rand source`
}

func seededFault(rng *rand.Rand) bool {
	return rng.Float64() < 0.01 // seeded streams are how fault maps draw
}

func timestampedMap() int64 {
	return time.Now().UnixNano() // want `time.Now in a bit-exact package`
}
