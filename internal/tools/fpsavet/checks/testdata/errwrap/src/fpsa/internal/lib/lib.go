// Package lib is golden input: the no-%v-over-errors rule applies
// everywhere, but sentinel-free errors are fine below the public
// boundary.
package lib

import (
	"errors"
	"fmt"
)

func flattened(err error) error {
	return fmt.Errorf("route: %v", err) // want `fmt.Errorf formats an error argument without %w`
}

func wrapped(err error) error {
	return fmt.Errorf("route: %w", err)
}

func plain(n int) error {
	return fmt.Errorf("route: %d tracks over capacity", n)
}

func minted() error {
	return errors.New("internal sentinel")
}
