// Package fpsa is golden input standing in for the public root package:
// every error it returns must wrap an Err* sentinel.
package fpsa

import (
	"errors"
	"fmt"
)

// ErrCapacity is a sentinel; package-level declarations are where the
// taxonomy lives, so errors.New is fine here.
var ErrCapacity = errors.New("fpsa: capacity")

func wrapped(n int) error {
	return fmt.Errorf("%w: need %d crossbars", ErrCapacity, n)
}

func flattened(err error) error {
	return fmt.Errorf("compile: %v", err) // want `fmt.Errorf formats an error argument without %w`
}

func sentinelFree(n int) error {
	return fmt.Errorf("need %d crossbars", n) // want `sentinel-free error crosses the public fpsa boundary`
}

func minted() error {
	return errors.New("ad hoc") // want `errors.New inside the public fpsa package mints an error outside the taxonomy`
}

func dynamic(format string, err error) error {
	return fmt.Errorf(format, err)
}
