package fpsa

import "fmt"

// Outside the autotuner files the tightened rule does not apply — the
// general errwrap pass owns these (its own golden tests cover them).
func elsewhere(n int) error {
	return fmt.Errorf("need %d crossbars", n)
}
