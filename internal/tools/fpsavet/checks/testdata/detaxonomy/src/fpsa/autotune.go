// Package fpsa is golden input standing in for the public root package:
// in autotuner files every fmt.Errorf must provably wrap the taxonomy.
package fpsa

import (
	"errors"
	"fmt"
)

// ErrInvalidArgument is a sentinel; package-level declarations are where
// the taxonomy lives.
var ErrInvalidArgument = errors.New("fpsa: invalid argument")

func wrapsSentinel(n int) error {
	return fmt.Errorf("%w: budget %d", ErrInvalidArgument, n)
}

func wrapsUpstream(err error) error {
	return fmt.Errorf("fpsa: autotune: refining candidate: %w", err)
}

func adHoc(n int) error {
	return fmt.Errorf("no feasible assignment within %d PEs", n) // want `fmt.Errorf without %w in an autotuner file`
}

func flattens(err error) error {
	return fmt.Errorf("search failed: %v", err) // want `fmt.Errorf without %w in an autotuner file`
}

func dynamic(format string, err error) error {
	return fmt.Errorf(format, err) // want `dynamic fmt.Errorf format in an autotuner file`
}
