// Package lib is golden input: library code that must keep the context
// chain unbroken.
package lib

import "context"

func use(ctx context.Context) {}

func severed() {
	use(context.Background()) // want `context.Background\(\) in library code severs the caller's cancellation`
}

func todoSevered() {
	use(context.TODO()) // want `context.TODO\(\) in library code severs the caller's cancellation`
}

func dropsCtx(ctx context.Context) {
	use(context.Background()) // want `function already receives a context.Context`
}

func inClosure(ctx context.Context) func() {
	return func() {
		use(context.TODO()) // want `function already receives a context.Context`
	}
}

func closureOwnCtx() func(context.Context) {
	return func(ctx context.Context) {
		use(context.Background()) // want `function already receives a context.Context`
	}
}

func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	use(ctx)
}

// Deprecated: use a ctx-first API; this wrapper bridges old call sites.
func Compat() {
	use(context.Background())
}

func passesCtx(ctx context.Context) {
	use(ctx)
}
