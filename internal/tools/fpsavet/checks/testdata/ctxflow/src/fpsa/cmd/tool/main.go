// Command tool is golden input: an entry point may synthesize its root
// context, but a function already holding one must still pass it on.
package main

import "context"

func use(ctx context.Context) {}

func main() {
	use(context.Background())
}

func helper(ctx context.Context) {
	use(context.Background()) // want `function already receives a context.Context`
}
