package checks

import (
	"go/ast"
	"path/filepath"
	"strings"

	"fpsa/internal/tools/fpsavet/analysis"
)

// Detaxonomy is the autotuner's tightened taxonomy pass. The general
// Errwrap rules leave two gaps the search code is prone to fall into:
// a dynamic format string proves nothing (so Errwrap stays silent), and
// a %v over an interpolated non-error value hides which taxonomy
// sentinel applies. In the public package's autotuner files — basename
// prefix "autotune", where the search loop mints errors on many exit
// paths — every fmt.Errorf must therefore carry a %w verb wrapping the
// taxonomy (an Err* sentinel or an upstream error that already wraps
// one), and the format must be a compile-time constant so the rule is
// checkable.
var Detaxonomy = &analysis.Analyzer{
	Name: "detaxonomy",
	Doc: "flags fmt.Errorf calls without a %w verb (or with unprovable " +
		"dynamic formats) in the root package's autotuner files",
	Run: runDetaxonomy,
}

func runDetaxonomy(pass *analysis.Pass) error {
	if pass.Pkg.Path() != RootPath {
		return nil
	}
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !strings.HasPrefix(base, "autotune") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !analysis.IsNamed(calleeObj(pass, call), "fmt", "Errorf") {
				return true
			}
			format, known := constFormat(pass, call)
			switch {
			case !known:
				pass.Report(call.Pos(), "dynamic fmt.Errorf format in an autotuner file; use a constant format with %%w so the error provably stays inside the taxonomy")
			case !strings.Contains(format, "%w"):
				pass.Report(call.Pos(), "fmt.Errorf without %%w in an autotuner file; wrap an Err* sentinel (or an upstream error) with %%w so errors.Is keeps working")
			}
			return true
		})
	}
	return nil
}
