package checks

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// flagDecl matches flag declarations like flag.String("model", …),
// flag.IntVar(&v, "model", …) and flag.Duration("flush", …). The first
// quoted argument is the flag name.
var flagDecl = regexp.MustCompile(`flag\.[A-Za-z]+\((?:&[A-Za-z0-9_.]+,\s*)?"([^"]+)"`)

// flagRow matches a flag-table row: | `-name` | meaning |.
var flagRow = regexp.MustCompile("^\\|\\s*`-([^`]+)`\\s*\\|")

// CheckFlagDocs is docscheck's flag-table pass, migrated into the suite:
// every CLI flag declared by a binary under cmd/ must have a row in the
// README's flag tables, attributed to that binary (the table documents
// the binary named most recently above it). It returns one message per
// undocumented flag; a broken precondition (no binaries, no rows — the
// vacuous-pass cases) is an error.
func CheckFlagDocs(repoRoot string) ([]string, error) {
	cmdDir := filepath.Join(repoRoot, "cmd")
	readmePath := filepath.Join(repoRoot, "README.md")
	mains, err := filepath.Glob(filepath.Join(cmdDir, "*", "main.go"))
	if err != nil {
		return nil, err
	}
	if len(mains) == 0 {
		return nil, fmt.Errorf("no binaries found under %s", cmdDir)
	}
	sort.Strings(mains)
	binaries := make([]string, len(mains))
	for i, path := range mains {
		binaries[i] = filepath.Base(filepath.Dir(path))
	}

	readme, err := os.ReadFile(readmePath)
	if err != nil {
		return nil, err
	}
	// Attribute each flag row to the binary named most recently before
	// it: prose like "go run ./cmd/fpsa-serve …" or a "## fpsa-bench"
	// heading switches the current binary, and its flag table follows.
	documented := make(map[string]map[string]bool, len(binaries))
	for _, b := range binaries {
		documented[b] = make(map[string]bool)
	}
	current := ""
	rows := 0
	for _, line := range strings.Split(string(readme), "\n") {
		if m := flagRow.FindStringSubmatch(line); m != nil {
			rows++
			if current != "" {
				documented[current][m[1]] = true
			}
			continue
		}
		for _, b := range binaries {
			if idx := strings.LastIndex(line, b); idx >= 0 {
				if current == "" || idx >= strings.LastIndex(line, current) {
					current = b
				}
			}
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("%s contains no flag-table rows (| `-flag` | …); refusing to pass vacuously", readmePath)
	}

	var problems []string
	total := 0
	for i, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDecl.FindAllStringSubmatch(string(src), -1) {
			total++
			if !documented[binaries[i]][m[1]] {
				problems = append(problems,
					fmt.Sprintf("%s: flag -%s of %s has no row in README.md's flag tables", path, m[1], binaries[i]))
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("no flag declarations found under %s; the matcher may be stale", cmdDir)
	}
	return problems, nil
}
