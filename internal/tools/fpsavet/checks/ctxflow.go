package checks

import (
	"go/ast"
	"go/token"

	"fpsa/internal/tools/fpsavet/analysis"
)

// Ctxflow keeps the context chain unbroken, the property the PR 5
// prompt-cancellation guarantee rests on. Two rules:
//
//  1. Library code never synthesizes a context: context.Background() and
//     context.TODO() belong to program entry points (package main under
//     cmd/ and examples/) and tests, not to packages whose callers
//     already hold a ctx.
//  2. A function that receives a context.Context passes it on: calling
//     context.Background()/TODO() while a ctx parameter is in scope
//     detaches the callee from the caller's cancellation.
//
// Two idioms are deliberately exempt: the nil-guard default
// (`ctx = context.Background()` assigned to an existing ctx variable,
// the documented nil-tolerant entry pattern of the public API) and
// functions marked Deprecated: (the PR 5 compatibility wrappers exist
// precisely to bridge ctx-less call sites onto the ctx-first stack).
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() in library code and in any " +
		"function that already receives a context.Context",
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	entrypointPkg := pass.Pkg.Name() == "main" ||
		underPath(path, RootPath+"/cmd") || underPath(path, RootPath+"/examples")

	for _, f := range pass.Files {
		// Pre-pass: collect nil-guard defaults — `ctx = context.Background()`
		// assigned (not defined) to a variable that is already a
		// context.Context.
		nilGuard := make(map[*ast.CallExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isCtxConstructor(pass, call) {
				return true
			}
			if t := pass.TypeOf(as.Lhs[0]); t != nil && isContextType(t) {
				nilGuard[call] = true
			}
			return true
		})

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isDeprecated(fd.Doc) {
				continue
			}
			// Track the function stack so a ctx parameter on any
			// enclosing function (including closures) counts as in scope.
			ctxDepth := 0
			if hasCtxParam(pass, fd.Type) {
				ctxDepth = 1
			}
			var stack []int // 1 if the pushed func literal declares a ctx param
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					if len(stack) > 0 {
						ctxDepth -= stack[len(stack)-1]
						stack = stack[:len(stack)-1]
					}
					return true
				}
				if lit, ok := n.(*ast.FuncLit); ok {
					has := 0
					if hasCtxParam(pass, lit.Type) {
						has = 1
					}
					stack = append(stack, has)
					ctxDepth += has
					return true
				}
				stack = append(stack, 0)
				call, ok := n.(*ast.CallExpr)
				if !ok || !isCtxConstructor(pass, call) || nilGuard[call] {
					return true
				}
				name := "Background"
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					name = sel.Sel.Name
				}
				switch {
				case ctxDepth > 0:
					pass.Report(call.Pos(), "function already receives a context.Context; pass it (or a context derived from it) instead of context.%s()", name)
				case !entrypointPkg:
					pass.Report(call.Pos(), "context.%s() in library code severs the caller's cancellation; accept a ctx parameter instead", name)
				}
				return true
			})
		}
	}
	return nil
}

// isCtxConstructor reports whether call invokes context.Background or
// context.TODO.
func isCtxConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass, call)
	return analysis.IsNamed(obj, "context", "Background") || analysis.IsNamed(obj, "context", "TODO")
}
