package checks_test

import (
	"path/filepath"
	"testing"

	"fpsa/internal/tools/fpsavet/analysis"
	"fpsa/internal/tools/fpsavet/checks"
)

func TestDeterminism(t *testing.T) {
	analysis.RunTest(t, "testdata/determinism", checks.Determinism,
		"fpsa/internal/synth", "fpsa/internal/device", "fpsa/internal/other")
}

func TestCtxflow(t *testing.T) {
	analysis.RunTest(t, "testdata/ctxflow", checks.Ctxflow,
		"fpsa/internal/lib", "fpsa/cmd/tool")
}

func TestErrwrap(t *testing.T) {
	analysis.RunTest(t, "testdata/errwrap", checks.Errwrap,
		"fpsa", "fpsa/internal/lib")
}

func TestDetaxonomy(t *testing.T) {
	analysis.RunTest(t, "testdata/detaxonomy", checks.Detaxonomy, "fpsa")
}

func TestDeprecation(t *testing.T) {
	rootDir := filepath.Join("testdata", "deprecation", "src", "fpsa")
	analysis.RunTest(t, "testdata/deprecation", checks.Deprecation(rootDir, checks.RootPath),
		"fpsa/cmd/tool", "fpsa/examples/demo", "fpsa/internal/lib")
}
