package checks

import (
	"go/ast"
	"go/types"

	"fpsa/internal/tools/fpsavet/analysis"
)

// deterministicPkgs are the bit-exact packages: every result they
// produce must be identical for any worker count, chip count, or run —
// the property the PR 2–4 equivalence tests pin. Subpackages inherit the
// guard.
var deterministicPkgs = []string{
	"fpsa/internal/place",
	"fpsa/internal/route",
	"fpsa/internal/shard",
	"fpsa/internal/mapper",
	"fpsa/internal/synth",
	"fpsa/internal/xbar",
	"fpsa/internal/spike",
	"fpsa/internal/device",
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared global source. Seeded *rand.Rand
// streams are fine — they are how the repo does reproducible noise — so
// methods never match.
var globalRandFuncs = map[string]bool{
	"Int": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Intn": true, "Uint32": true, "Uint64": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// Determinism flags the three nondeterminism sources inside the
// bit-exact packages: ranging over a map, drawing from the global
// math/rand source, and reading time.Now. An audited site is excused
// with a //fpsa:nondet <reason> directive on the same line or the line
// above; a directive without a reason is itself a finding.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags map iteration, global math/rand and time.Now inside the " +
		"bit-exact packages (internal/{place,route,shard,mapper,synth,xbar,spike,device})",
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	guarded := false
	for _, p := range deterministicPkgs {
		if underPath(pass.Pkg.Path(), p) {
			guarded = true
			break
		}
	}
	if !guarded {
		return nil
	}
	report := func(pos ast.Node, format string, args ...any) {
		if reason, ok := pass.Directive("nondet", pos.Pos()); ok {
			if reason == "" {
				pass.Report(pos.Pos(), "//fpsa:nondet directive needs a reason; write //fpsa:nondet <why this is safe>")
			}
			return
		}
		pass.Report(pos.Pos(), format, args...)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(node.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						report(node, "map iteration order is nondeterministic in a bit-exact package; range over sorted keys (or annotate //fpsa:nondet <reason>)")
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[node.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are seeded and fine
				}
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[fn.Name()] {
						report(node, "global math/rand source in a bit-exact package; use a seeded *rand.Rand (or annotate //fpsa:nondet <reason>)")
					}
				case "time":
					if fn.Name() == "Now" {
						report(node, "time.Now in a bit-exact package makes results time-dependent; plumb timings in (or annotate //fpsa:nondet <reason>)")
					}
				}
			}
			return true
		})
	}
	return nil
}
