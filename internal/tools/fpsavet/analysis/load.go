package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path, e.g. fpsa/internal/xbar
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load lists patterns with the go command, type-checks every matched
// package from source (dependencies are imported through the compiled
// export data `go list -export` leaves in the build cache — fully
// offline) and returns them ready for analysis, plus the module root
// directory. Test files and testdata trees are excluded, exactly as the
// go tool excludes them from builds.
func Load(dir string, patterns []string) ([]*Package, string, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	moduleDir := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, "", errors.New("go list: " + p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
			if p.Module != nil && moduleDir == "" {
				moduleDir = p.Module.Dir
			}
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, "", err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, moduleDir, nil
}

// exportImporter imports packages from the compiled export data the go
// command reported, via the standard library's gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses files (comments kept — the directives live there) and
// type-checks them as the package at importPath.
func typecheck(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      fset,
		Files:     parsed,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
