package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest is the suite's analysistest: it loads the GOPATH-style golden
// tree under dataDir (dataDir/src/<import path>/*.go), runs the analyzer
// over each of the named packages, and asserts that the reported
// diagnostics exactly match the `// want "regexp"` comments in those
// packages' files — every finding must be wanted, every want must fire.
// Imports resolve first against the golden tree itself (so a fake `fpsa`
// root package can stand in for the real one), then against the standard
// library via build-cache export data, keeping the harness offline.
func RunTest(t *testing.T, dataDir string, a *Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newTestLoader(t, dataDir)
	for _, path := range pkgPaths {
		pkg := l.load(path)
		diags, err := RunAnalyzers(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		checkWants(t, pkg, diags)
	}
}

// testLoader type-checks golden packages with memoization.
type testLoader struct {
	t       *testing.T
	src     string // dataDir/src
	fset    *token.FileSet
	memo    map[string]*Package
	stdlib  types.Importer
	loading map[string]bool
}

func newTestLoader(t *testing.T, dataDir string) *testLoader {
	t.Helper()
	fset := token.NewFileSet()
	l := &testLoader{
		t:       t,
		src:     filepath.Join(dataDir, "src"),
		fset:    fset,
		memo:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.stdlib = exportImporter(fset, stdlibExports(t, l.externalImports()))
	return l
}

// externalImports walks the whole golden tree and returns every import
// path that does not resolve inside it — the standard-library closure the
// harness must supply export data for.
func (l *testLoader) externalImports() []string {
	l.t.Helper()
	seen := make(map[string]bool)
	var external []string
	err := filepath.WalkDir(l.src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if seen[p] {
				continue
			}
			seen[p] = true
			if _, err := os.Stat(filepath.Join(l.src, p)); err != nil {
				external = append(external, p)
			}
		}
		return nil
	})
	if err != nil {
		l.t.Fatalf("scanning golden tree: %v", err)
	}
	return external
}

// load type-checks the golden package at path (and, recursively, its
// golden dependencies).
func (l *testLoader) load(path string) *Package {
	l.t.Helper()
	if pkg, ok := l.memo[path]; ok {
		return pkg
	}
	if l.loading[path] {
		l.t.Fatalf("golden import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.src, path)
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		l.t.Fatalf("no golden files under %s", dir)
	}
	var names []string
	for _, m := range matches {
		names = append(names, filepath.Base(m))
	}
	pkg, err := typecheck(l.fset, path, dir, names, importerFunc(func(p string) (*types.Package, error) {
		if _, statErr := os.Stat(filepath.Join(l.src, p)); statErr == nil {
			return l.load(p).Types, nil
		}
		return l.stdlib.Import(p)
	}))
	if err != nil {
		l.t.Fatalf("golden package %s: %v", path, err)
	}
	l.memo[path] = pkg
	return pkg
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdlibExports resolves export-data files for the named standard-library
// packages and their dependency closure through the go command's build
// cache — no network, no GOPATH.
func stdlibExports(t *testing.T, paths []string) map[string]string {
	t.Helper()
	exports := make(map[string]string)
	if len(paths) == 0 {
		return exports
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// wantRe matches one quoted or backquoted expectation after `// want`.
var wantRe = regexp.MustCompile("^(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// checkWants compares diagnostics against the `// want` annotations in
// the package's files.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				rest = strings.TrimSpace(rest)
				for rest != "" {
					m := wantRe.FindStringSubmatch(rest)
					if m == nil {
						break
					}
					rest = strings.TrimSpace(rest[len(m[0]):])
					text := m[1]
					var pattern string
					if text[0] == '`' {
						pattern = strings.Trim(text, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(text)
						if err != nil {
							t.Fatalf("%s: bad want expectation %s: %v", pos, text, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(d.Pos), d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
