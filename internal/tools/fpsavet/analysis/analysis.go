// Package analysis is a small, dependency-free core for the fpsavet lint
// suite, mirroring the shape of golang.org/x/tools/go/analysis: an
// Analyzer inspects one type-checked package through a Pass and reports
// Diagnostics. The container this repo builds in has no module proxy, so
// the x/tools framework cannot be vendored; everything here is built on
// the standard library's go/ast, go/parser and go/types, with package
// metadata and compiled export data supplied by `go list -export` (see
// load.go). The surface is intentionally the subset fpsavet needs —
// porting the analyzers to the real framework later is a rename, not a
// rewrite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph description shown by fpsavet -help.
	Doc string
	// Run inspects the package and reports findings via pass.Report.
	// Returning an error aborts the whole fpsavet run (reserved for
	// broken inputs, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer   *Analyzer
	diags      *[]Diagnostic
	directives map[string][]Directive // file name → sorted by line
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Directive is a //fpsa:<name> <argument> comment, the audited escape
// hatch of the suite (e.g. //fpsa:nondet seeding only, order-insensitive).
type Directive struct {
	Name string // "nondet"
	Arg  string // the free-text reason, "" when omitted
	Line int
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive returns the //fpsa:<name> directive governing pos: one on the
// same line or on the line directly above. The bool reports whether such
// a directive exists; the string is its free-text argument.
func (p *Pass) Directive(name string, pos token.Pos) (string, bool) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.Name == name && (d.Line == position.Line || d.Line == position.Line-1) {
			return d.Arg, true
		}
	}
	return "", false
}

// TypeOf is shorthand for the package's types.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// scanDirectives indexes every //fpsa: comment in the package by file and
// line so Directive lookups are cheap.
func scanDirectives(fset *token.FileSet, files []*ast.File) map[string][]Directive {
	out := make(map[string][]Directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//fpsa:")
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], Directive{
					Name: name,
					Arg:  strings.TrimSpace(arg),
					Line: pos.Line,
				})
			}
		}
	}
	for _, ds := range out {
		sort.Slice(ds, func(i, j int) bool { return ds[i].Line < ds[j].Line })
	}
	return out
}

// RunAnalyzers applies every analyzer to pkg and returns the findings
// sorted by position. An analyzer error aborts the run.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	directives := scanDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			analyzer:   a,
			diags:      &diags,
			directives: directives,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// IsNamed reports whether obj is the named package-level object pkgPath.name
// — the standard way the analyzers recognize context.Background,
// fmt.Errorf, time.Now and friends through go/types rather than by text.
func IsNamed(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
