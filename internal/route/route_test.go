package route

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
	"fpsa/internal/place"
)

// linePlacement places blocks left to right on a 1×n strip.
func linePlacement(t *testing.T, nl *netlist.Netlist, w, tracks int) (*place.Placement, fabric.Chip) {
	t.Helper()
	chip := fabric.Chip{W: w, H: 1, Tracks: tracks, Params: device.Params45nm}
	sites := make([]fabric.Site, len(nl.Blocks))
	for b := range sites {
		sites[b] = fabric.Site{X: b, Y: 0}
	}
	p, err := place.Fixed(nl, chip, sites)
	if err != nil {
		t.Fatal(err)
	}
	return p, chip
}

func TestRouteTwoBlockNet(t *testing.T) {
	nl := &netlist.Netlist{}
	a := nl.AddBlock(netlist.BlockPE, "a", 0, 0)
	b := nl.AddBlock(netlist.BlockPE, "b", 1, 0)
	nl.AddNet(a, []int{b}, 1)
	p, chip := linePlacement(t, nl, 2, 8)
	res, err := Route(context.Background(), nl, p, chip, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("trivial net did not converge")
	}
	if res.NetHops[0] < 1 || res.NetHops[0] > 3 {
		t.Errorf("adjacent-block hops = %d, want 1..3", res.NetHops[0])
	}
}

func TestRouteCongestionNegotiation(t *testing.T) {
	// Many wide nets crossing one narrow strip force negotiation; with
	// enough tracks the router must converge, and occupancy must never
	// exceed capacity afterwards.
	nl := &netlist.Netlist{}
	const pairs = 4
	for i := 0; i < 2*pairs; i++ {
		nl.AddBlock(netlist.BlockPE, "b", i, 0)
	}
	for i := 0; i < pairs; i++ {
		nl.AddNet(i, []int{2*pairs - 1 - i}, 3)
	}
	chip := fabric.Chip{W: 4, H: 2, Tracks: 12, Params: device.Params45nm}
	rng := rand.New(rand.NewSource(5))
	p, err := place.Random(nl, chip, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), nl, p, chip, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: overused=%d maxOcc=%d", res.Overused, res.MaxOccupancy)
	}
	if res.MaxOccupancy > chip.Tracks {
		t.Errorf("MaxOccupancy %d exceeds tracks %d after convergence", res.MaxOccupancy, chip.Tracks)
	}
}

func TestRouteReportsNeededWidth(t *testing.T) {
	// With tracks=1 and two 1-signal nets over the same corridor the
	// router cannot converge; MaxOccupancy then reports the width that
	// would have been needed.
	nl := &netlist.Netlist{}
	a := nl.AddBlock(netlist.BlockPE, "a", 0, 0)
	b := nl.AddBlock(netlist.BlockPE, "b", 1, 0)
	nl.AddNet(a, []int{b}, 4)
	p, chip := linePlacement(t, nl, 2, 1)
	res, err := Route(context.Background(), nl, p, chip, Options{MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("4-signal net on 1-track fabric converged")
	}
	if res.MaxOccupancy < 4 {
		t.Errorf("MaxOccupancy = %d, want ≥4", res.MaxOccupancy)
	}
}

func TestRouteMultiSinkTree(t *testing.T) {
	nl := &netlist.Netlist{}
	src := nl.AddBlock(netlist.BlockPE, "src", 0, 0)
	var sinks []int
	for i := 0; i < 3; i++ {
		sinks = append(sinks, nl.AddBlock(netlist.BlockPE, "sink", i+1, 0))
	}
	nl.AddNet(src, sinks, 2)
	chip := fabric.Chip{W: 2, H: 2, Tracks: 16, Params: device.Params45nm}
	rng := rand.New(rand.NewSource(13))
	p, err := place.Random(nl, chip, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), nl, p, chip, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("multi-sink net did not converge")
	}
	// The tree must be no larger than 3 disjoint point-to-point routes.
	if len(res.NetRoutes[0]) > 3*8 {
		t.Errorf("route tree size %d suspiciously large", len(res.NetRoutes[0]))
	}
}

func TestRouteAnnealedLeNetClassNetlist(t *testing.T) {
	// An end-to-end smoke test at realistic shape: 60 blocks, mixed
	// fan-out, annealed placement, must converge on the default fabric.
	rng := rand.New(rand.NewSource(17))
	nl := &netlist.Netlist{}
	for i := 0; i < 60; i++ {
		nl.AddBlock(netlist.BlockPE, "b", i, 0)
	}
	for i := 0; i < 50; i++ {
		src := rng.Intn(60)
		var sinks []int
		for len(sinks) < 1+rng.Intn(3) {
			s := rng.Intn(60)
			if s != src {
				sinks = append(sinks, s)
			}
		}
		nl.AddNet(src, sinks, 1+rng.Intn(64))
	}
	chip, err := fabric.SizeFor(60, fabric.DefaultTracks, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := place.Anneal(context.Background(), nl, chip, rng, place.Options{MovesPerTemp: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(context.Background(), nl, p, chip, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("realistic netlist did not converge (overused %d)", res.Overused)
	}
	if res.MeanHops() <= 0 {
		t.Error("mean hops not positive")
	}
	// HPWL estimate must track routed hops within 3×.
	est := EstimateHops(nl, p)
	for i, h := range res.NetHops {
		if h > 3*est[i]+4 {
			t.Errorf("net %d: routed hops %d ≫ estimate %d", i, h, est[i])
		}
	}
}

func TestRouteDeterministicAcrossWorkers(t *testing.T) {
	// The same placement must route bit-identically for every worker
	// count and on repeated runs — the deployment cache and the parallel
	// router's contract both depend on it.
	rng := rand.New(rand.NewSource(23))
	nl := &netlist.Netlist{}
	for i := 0; i < 40; i++ {
		nl.AddBlock(netlist.BlockPE, "b", i, 0)
	}
	for i := 0; i < 36; i++ {
		src := rng.Intn(40)
		var sinks []int
		for len(sinks) < 1+rng.Intn(3) {
			s := rng.Intn(40)
			if s != src {
				sinks = append(sinks, s)
			}
		}
		nl.AddNet(src, sinks, 1+rng.Intn(8))
	}
	chip := fabric.Chip{W: 7, H: 7, Tracks: 24, Params: device.Params45nm}
	p, err := place.Random(nl, chip, rng)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, workers := range []int{1, 1, 2, 4, 8} {
		res, err := Route(context.Background(), nl, p, chip, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Converged != ref.Converged || res.Iterations != ref.Iterations ||
			res.MaxOccupancy != ref.MaxOccupancy || res.Overused != ref.Overused {
			t.Fatalf("workers=%d summary %+v differs from workers=1", workers, res)
		}
		for ni := range nl.Nets {
			if len(res.NetRoutes[ni]) != len(ref.NetRoutes[ni]) || res.NetHops[ni] != ref.NetHops[ni] {
				t.Fatalf("workers=%d net %d tree differs", workers, ni)
			}
			for j, n := range res.NetRoutes[ni] {
				if n != ref.NetRoutes[ni][j] {
					t.Fatalf("workers=%d net %d node %d: %d vs %d", workers, ni, j, n, ref.NetRoutes[ni][j])
				}
			}
			for j, e := range res.NetEdges[ni] {
				if e != ref.NetEdges[ni][j] {
					t.Fatalf("workers=%d net %d edge %d differs", workers, ni, j)
				}
			}
		}
	}
}

func TestEstimateHops(t *testing.T) {
	nl := &netlist.Netlist{}
	a := nl.AddBlock(netlist.BlockPE, "a", 0, 0)
	b := nl.AddBlock(netlist.BlockPE, "b", 1, 0)
	nl.AddNet(a, []int{b}, 1)
	chip := fabric.Chip{W: 5, H: 1, Tracks: 4, Params: device.Params45nm}
	p, err := place.Fixed(nl, chip, []fabric.Site{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateHops(nl, p)
	if got[0] != 2 {
		t.Errorf("EstimateHops = %v, want [2]", got)
	}
}

func TestRandomizedEstimateScales(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	small := RandomizedEstimate(16, rng)
	large := RandomizedEstimate(4096, rng)
	if small <= 0 || large <= small {
		t.Errorf("RandomizedEstimate: small=%v large=%v, want growth", small, large)
	}
}

// TestRouteCancelled: a cancelled context aborts routing with ctx.Err(),
// for any worker count.
func TestRouteCancelled(t *testing.T) {
	nl := &netlist.Netlist{}
	blocks := make([]int, 6)
	for i := range blocks {
		blocks[i] = nl.AddBlock(netlist.BlockPE, "b", 0, 0)
	}
	for i := 1; i < len(blocks); i++ {
		nl.AddNet(blocks[i-1], []int{blocks[i]}, 1)
	}
	p, chip := linePlacement(t, nl, len(blocks), 8)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Route(ctx, nl, p, chip, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: %v, want context.Canceled", workers, err)
		}
	}
}
