// Package route implements PathFinder-style negotiated-congestion routing
// over the FPSA fabric (paper §5.3): Dijkstra searches on a channel-level
// routing-resource graph, iterated with growing present-congestion and
// history costs until no channel is over capacity.
//
// The routing-resource graph is channel-granular: each tile carries one
// horizontal and one vertical channel node of capacity Tracks, and a net of
// width Signals consumes Signals track units on every channel node of its
// route tree. This coarsening (versus VPR's per-track graph) keeps the
// graph 2·W·H nodes while preserving what the evaluation needs: congestion
// feasibility, required channel width, and per-net hop counts for the
// communication-latency model.
package route

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
	"fpsa/internal/place"
)

// Options tunes the router.
type Options struct {
	// MaxIters bounds the negotiation iterations (default 30).
	MaxIters int
	// PresFacFirst/PresFacGrowth control the present-congestion penalty
	// schedule (defaults 0.5, ×1.8 per iteration).
	PresFacFirst  float64
	PresFacGrowth float64
	// HistGain is added to the history cost of each overused node per
	// iteration (default 1).
	HistGain float64
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 30
	}
	if o.PresFacFirst <= 0 {
		o.PresFacFirst = 0.5
	}
	if o.PresFacGrowth <= 1 {
		o.PresFacGrowth = 1.8
	}
	if o.HistGain <= 0 {
		o.HistGain = 1
	}
	return o
}

// TreeEdge is one switch-box hop of a route tree: channel nodes A and B
// are adjacent and electrically joined for the net.
type TreeEdge struct{ A, B int }

// Result is the routing outcome.
type Result struct {
	// Converged reports whether the final iteration had no overuse.
	Converged bool
	// Iterations actually run.
	Iterations int
	// NetRoutes[i] is net i's route tree (channel node IDs).
	NetRoutes [][]int
	// NetEdges[i] is the tree's switch-box hops; the source site's two
	// seed nodes join through the source's connection box instead of an
	// edge. Consumed by the bitstream generator.
	NetEdges [][]TreeEdge
	// NetHops[i] is the longest source→sink channel-hop count of net i.
	NetHops []int
	// MaxOccupancy is the busiest channel's track usage — the channel
	// width this placement actually needs.
	MaxOccupancy int
	// Overused counts channel nodes above capacity in the last
	// iteration.
	Overused int
}

// NodeSite decodes a channel node ID into (direction, site) for the given
// chip: direction 0 is horizontal, 1 vertical.
func NodeSite(chip fabric.Chip, node int) (dir int, s fabric.Site) {
	wh := chip.W * chip.H
	dir = node / wh
	rem := node % wh
	return dir, fabric.Site{X: rem % chip.W, Y: rem / chip.W}
}

// MaxHops returns the critical (longest) net hop count.
func (r *Result) MaxHops() int {
	max := 0
	for _, h := range r.NetHops {
		if h > max {
			max = h
		}
	}
	return max
}

// MeanHops returns the average net hop count.
func (r *Result) MeanHops() float64 {
	if len(r.NetHops) == 0 {
		return 0
	}
	total := 0
	for _, h := range r.NetHops {
		total += h
	}
	return float64(total) / float64(len(r.NetHops))
}

// router carries per-run state.
type router struct {
	chip    fabric.Chip
	nl      *netlist.Netlist
	pl      *place.Placement
	opts    Options
	nodes   int
	hist    []float64
	occ     []int
	presFac float64
}

// Node numbering: dir·W·H + y·W + x with dir 0 horizontal, 1 vertical.
func (r *router) node(dir int, s fabric.Site) int {
	return dir*r.chip.W*r.chip.H + s.Y*r.chip.W + s.X
}

func (r *router) siteOf(n int) (int, fabric.Site) {
	wh := r.chip.W * r.chip.H
	dir := n / wh
	rem := n % wh
	return dir, fabric.Site{X: rem % r.chip.W, Y: rem / r.chip.W}
}

// neighbors appends n's adjacent channel nodes to buf.
func (r *router) neighbors(n int, buf []int) []int {
	dir, s := r.siteOf(n)
	// Turn at the switch box.
	buf = append(buf, r.node(1-dir, s))
	if dir == 0 { // horizontal: continue along X
		if s.X > 0 {
			buf = append(buf, r.node(0, fabric.Site{X: s.X - 1, Y: s.Y}))
		}
		if s.X < r.chip.W-1 {
			buf = append(buf, r.node(0, fabric.Site{X: s.X + 1, Y: s.Y}))
		}
	} else { // vertical: continue along Y
		if s.Y > 0 {
			buf = append(buf, r.node(1, fabric.Site{X: s.X, Y: s.Y - 1}))
		}
		if s.Y < r.chip.H-1 {
			buf = append(buf, r.node(1, fabric.Site{X: s.X, Y: s.Y + 1}))
		}
	}
	return buf
}

// cost is the PathFinder node cost for a net of the given width.
func (r *router) cost(n, signals int) float64 {
	c := 1 + r.hist[n]
	if over := r.occ[n] + signals - r.chip.Tracks; over > 0 {
		c *= 1 + r.presFac*float64(over)
	}
	return c
}

// Route runs negotiated-congestion routing of nl under placement pl.
func Route(nl *netlist.Netlist, pl *place.Placement, chip fabric.Chip, opts Options) (*Result, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	r := &router{
		chip:  chip,
		nl:    nl,
		pl:    pl,
		opts:  opts,
		nodes: 2 * chip.W * chip.H,
	}
	r.hist = make([]float64, r.nodes)
	r.presFac = opts.PresFacFirst

	// Wide nets first: they are hardest to place.
	order := make([]int, len(nl.Nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return nl.Nets[order[a]].Signals > nl.Nets[order[b]].Signals
	})

	res := &Result{
		NetRoutes: make([][]int, len(nl.Nets)),
		NetEdges:  make([][]TreeEdge, len(nl.Nets)),
		NetHops:   make([]int, len(nl.Nets)),
	}
	for iter := 1; iter <= opts.MaxIters; iter++ {
		r.occ = make([]int, r.nodes)
		res.Iterations = iter
		for _, ni := range order {
			tree, edges, hops, err := r.routeNet(&nl.Nets[ni])
			if err != nil {
				return nil, fmt.Errorf("route: net %d: %w", ni, err)
			}
			res.NetRoutes[ni] = tree
			res.NetEdges[ni] = edges
			res.NetHops[ni] = hops
			for _, n := range tree {
				r.occ[n] += nl.Nets[ni].Signals
			}
		}
		res.Overused = 0
		res.MaxOccupancy = 0
		for n := 0; n < r.nodes; n++ {
			if r.occ[n] > res.MaxOccupancy {
				res.MaxOccupancy = r.occ[n]
			}
			if r.occ[n] > chip.Tracks {
				res.Overused++
				r.hist[n] += opts.HistGain
			}
		}
		if res.Overused == 0 {
			res.Converged = true
			return res, nil
		}
		r.presFac *= opts.PresFacGrowth
	}
	return res, nil
}

// routeNet builds a route tree source→all sinks and returns (tree nodes,
// tree edges, max source→sink hops).
func (r *router) routeNet(net *netlist.Net) ([]int, []TreeEdge, int, error) {
	src := r.pl.Pos[net.Src]
	inTree := make(map[int]int) // node → hops from source along tree
	tree := make([]int, 0, 8)
	var edges []TreeEdge
	addTree := func(n, hops int) {
		if _, ok := inTree[n]; !ok {
			inTree[n] = hops
			tree = append(tree, n)
		}
	}
	// The source's CB reaches both channels at its site.
	addTree(r.node(0, src), 1)
	addTree(r.node(1, src), 1)

	maxHops := 0
	dist := make([]float64, r.nodes)
	hops := make([]int, r.nodes)
	prev := make([]int, r.nodes)
	visited := make([]bool, r.nodes)
	var buf [3]int
	for _, sinkBlock := range net.Sinks {
		sink := r.pl.Pos[sinkBlock]
		tH, tV := r.node(0, sink), r.node(1, sink)
		if _, ok := inTree[tH]; ok {
			if h := inTree[tH]; h > maxHops {
				maxHops = h
			}
			continue
		}
		if _, ok := inTree[tV]; ok {
			if h := inTree[tV]; h > maxHops {
				maxHops = h
			}
			continue
		}
		// Dijkstra seeded with the whole tree at cost 0.
		for i := range dist {
			dist[i] = -1
			visited[i] = false
		}
		pq := &nodeHeap{}
		for n, h := range inTree {
			dist[n] = 0
			hops[n] = h
			prev[n] = -1
			heap.Push(pq, nodeCost{node: n, cost: 0})
		}
		found := -1
		for pq.Len() > 0 {
			nc := heap.Pop(pq).(nodeCost)
			n := nc.node
			if visited[n] {
				continue
			}
			visited[n] = true
			if n == tH || n == tV {
				found = n
				break
			}
			for _, m := range r.neighbors(n, buf[:0]) {
				c := dist[n] + r.cost(m, net.Signals)
				if dist[m] < 0 || c < dist[m] {
					dist[m] = c
					hops[m] = hops[n] + 1
					prev[m] = n
					heap.Push(pq, nodeCost{node: m, cost: c})
				}
			}
		}
		if found < 0 {
			return nil, nil, 0, fmt.Errorf("no path to sink block %d", sinkBlock)
		}
		if hops[found] > maxHops {
			maxHops = hops[found]
		}
		// Walk back, adding the new branch (nodes and switch-box hops)
		// to the tree. Dijkstra was seeded with every tree node at
		// prev = −1, so the walk ends exactly where the branch joins
		// the existing tree.
		for n := found; ; n = prev[n] {
			addTree(n, hops[n])
			if prev[n] < 0 {
				break
			}
			edges = append(edges, TreeEdge{A: prev[n], B: n})
		}
	}
	return tree, edges, maxHops, nil
}

// nodeCost / nodeHeap implement the Dijkstra priority queue.
type nodeCost struct {
	node int
	cost float64
}

type nodeHeap []nodeCost

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeCost)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EstimateHops predicts per-net hop counts from placement alone (HPWL+1),
// for netlists too large to route exhaustively; the full router reports
// exact values on small and medium designs and the estimate tracks it.
func EstimateHops(nl *netlist.Netlist, pl *place.Placement) []int {
	hops := make([]int, len(nl.Nets))
	for i := range nl.Nets {
		net := &nl.Nets[i]
		s := pl.Pos[net.Src]
		maxD := 0
		for _, b := range net.Sinks {
			q := pl.Pos[b]
			d := abs(q.X-s.X) + abs(q.Y-s.Y)
			if d > maxD {
				maxD = d
			}
		}
		hops[i] = maxD + 1
	}
	return hops
}

// RandomizedEstimate is a helper for perf models: mean hops over nets of a
// synthetic placement with the given block count and fan-out (used when no
// concrete netlist exists, e.g. baseline sweeps).
func RandomizedEstimate(blocks int, rng *rand.Rand) float64 {
	if blocks < 2 {
		return 1
	}
	side := 1
	for side*side < blocks {
		side++
	}
	const samples = 256
	total := 0
	for i := 0; i < samples; i++ {
		x1, y1 := rng.Intn(side), rng.Intn(side)
		x2, y2 := rng.Intn(side), rng.Intn(side)
		total += abs(x1-x2) + abs(y1-y2) + 1
	}
	return float64(total) / samples
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
