// Package route implements PathFinder-style negotiated-congestion routing
// over the FPSA fabric (paper §5.3): Dijkstra searches on a channel-level
// routing-resource graph, iterated with growing present-congestion and
// history costs until no channel is over capacity.
//
// The routing-resource graph is channel-granular: each tile carries one
// horizontal and one vertical channel node of capacity Tracks, and a net of
// width Signals consumes Signals track units on every channel node of its
// route tree. This coarsening (versus VPR's per-track graph) keeps the
// graph 2·W·H nodes while preserving what the evaluation needs: congestion
// feasibility, required channel width, and per-net hop counts for the
// communication-latency model.
//
// Within each negotiation iteration, nets route concurrently against the
// previous iteration's congestion snapshot and a serial deterministic
// pass resolves the conflicts, so the Result is bit-identical for every
// Options.Workers value — see Route.
package route

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
	"fpsa/internal/place"
)

// Options tunes the router.
type Options struct {
	// MaxIters bounds the negotiation iterations (default 30).
	MaxIters int
	// PresFacFirst/PresFacGrowth control the present-congestion penalty
	// schedule (defaults 0.5, ×1.8 per iteration).
	PresFacFirst  float64
	PresFacGrowth float64
	// HistGain is added to the history cost of each overused node per
	// iteration (default 1).
	HistGain float64
	// Workers is the number of goroutines routing nets concurrently
	// within each negotiation iteration (0 = GOMAXPROCS). The Result is
	// bit-identical for every worker count: the concurrent phase routes
	// each net against the previous iteration's congestion snapshot, and
	// conflicts are resolved by a serial deterministic pass.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 30
	}
	if o.PresFacFirst <= 0 {
		o.PresFacFirst = 0.5
	}
	if o.PresFacGrowth <= 1 {
		o.PresFacGrowth = 1.8
	}
	if o.HistGain <= 0 {
		o.HistGain = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// TreeEdge is one switch-box hop of a route tree: channel nodes A and B
// are adjacent and electrically joined for the net.
type TreeEdge struct{ A, B int }

// Result is the routing outcome.
type Result struct {
	// Converged reports whether the final iteration had no overuse.
	Converged bool
	// Iterations actually run.
	Iterations int
	// NetRoutes[i] is net i's route tree (channel node IDs).
	NetRoutes [][]int
	// NetEdges[i] is the tree's switch-box hops; the source site's two
	// seed nodes join through the source's connection box instead of an
	// edge. Consumed by the bitstream generator.
	NetEdges [][]TreeEdge
	// NetHops[i] is the longest source→sink channel-hop count of net i.
	NetHops []int
	// MaxOccupancy is the busiest channel's track usage — the channel
	// width this placement actually needs.
	MaxOccupancy int
	// Overused counts channel nodes above capacity in the last
	// iteration.
	Overused int
}

// NodeSite decodes a channel node ID into (direction, site) for the given
// chip: direction 0 is horizontal, 1 vertical.
func NodeSite(chip fabric.Chip, node int) (dir int, s fabric.Site) {
	wh := chip.W * chip.H
	dir = node / wh
	rem := node % wh
	return dir, fabric.Site{X: rem % chip.W, Y: rem / chip.W}
}

// MaxHops returns the critical (longest) net hop count.
func (r *Result) MaxHops() int {
	max := 0
	for _, h := range r.NetHops {
		if h > max {
			max = h
		}
	}
	return max
}

// MeanHops returns the average net hop count.
func (r *Result) MeanHops() float64 {
	if len(r.NetHops) == 0 {
		return 0
	}
	total := 0
	for _, h := range r.NetHops {
		total += h
	}
	return float64(total) / float64(len(r.NetHops))
}

// router carries per-run state.
type router struct {
	chip    fabric.Chip
	nl      *netlist.Netlist
	pl      *place.Placement
	opts    Options
	nodes   int
	hist    []float64
	occ     []int
	presFac float64
}

// scratch is one worker's private search state, reused across nets.
type scratch struct {
	dist    []float64
	hops    []int
	prev    []int
	visited []bool
	// stamp marks the current net's previous-iteration route: stamp[n] ==
	// mark means node n carried this net last iteration.
	stamp []int
	mark  int
}

func newScratch(nodes int) *scratch {
	return &scratch{
		dist:    make([]float64, nodes),
		hops:    make([]int, nodes),
		prev:    make([]int, nodes),
		visited: make([]bool, nodes),
		stamp:   make([]int, nodes),
	}
}

// Node numbering: dir·W·H + y·W + x with dir 0 horizontal, 1 vertical.
func (r *router) node(dir int, s fabric.Site) int {
	return dir*r.chip.W*r.chip.H + s.Y*r.chip.W + s.X
}

func (r *router) siteOf(n int) (int, fabric.Site) {
	wh := r.chip.W * r.chip.H
	dir := n / wh
	rem := n % wh
	return dir, fabric.Site{X: rem % r.chip.W, Y: rem / r.chip.W}
}

// neighbors appends n's adjacent channel nodes to buf.
func (r *router) neighbors(n int, buf []int) []int {
	dir, s := r.siteOf(n)
	// Turn at the switch box.
	buf = append(buf, r.node(1-dir, s))
	if dir == 0 { // horizontal: continue along X
		if s.X > 0 {
			buf = append(buf, r.node(0, fabric.Site{X: s.X - 1, Y: s.Y}))
		}
		if s.X < r.chip.W-1 {
			buf = append(buf, r.node(0, fabric.Site{X: s.X + 1, Y: s.Y}))
		}
	} else { // vertical: continue along Y
		if s.Y > 0 {
			buf = append(buf, r.node(1, fabric.Site{X: s.X, Y: s.Y - 1}))
		}
		if s.Y < r.chip.H-1 {
			buf = append(buf, r.node(1, fabric.Site{X: s.X, Y: s.Y + 1}))
		}
	}
	return buf
}

// chanCost is the PathFinder node cost for a net of the given width
// against an occupancy base for node n.
func (r *router) chanCost(base, n, signals int) float64 {
	c := 1 + r.hist[n]
	if over := base + signals - r.chip.Tracks; over > 0 {
		c *= 1 + r.presFac*float64(over)
	}
	return c
}

// Route runs negotiated-congestion routing of nl under placement pl.
//
// Each negotiation iteration has two phases. First, every net is routed
// concurrently (opts.Workers goroutines) against a frozen congestion
// snapshot — the previous iteration's occupancy minus the net's own
// previous usage — so the nets are mutually independent and the phase is
// deterministic regardless of scheduling. Second, a serial
// conflict-resolution pass walks the nets in the deterministic wide-first
// order and rips up and re-routes every net crossing an overused channel
// against live occupancy. Overuse that survives the pass feeds the normal
// history/present-cost negotiation of the next iteration, so the Result
// is bit-identical for every worker count, including 1.
//
// ctx bounds the routing: workers check it between nets and the
// negotiation loop checks it between phases, so cancellation or deadline
// expiry aborts promptly, discards the partial routing, and returns
// ctx.Err() with no goroutines left behind. The checks never affect the
// search, so an uncancelled run's Result is unchanged.
func Route(ctx context.Context, nl *netlist.Netlist, pl *place.Placement, chip fabric.Chip, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	r := &router{
		chip:  chip,
		nl:    nl,
		pl:    pl,
		opts:  opts,
		nodes: 2 * chip.W * chip.H,
	}
	r.hist = make([]float64, r.nodes)
	r.presFac = opts.PresFacFirst

	// Wide nets first: they are hardest to place.
	order := make([]int, len(nl.Nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return nl.Nets[order[a]].Signals > nl.Nets[order[b]].Signals
	})

	res := &Result{
		NetRoutes: make([][]int, len(nl.Nets)),
		NetEdges:  make([][]TreeEdge, len(nl.Nets)),
		NetHops:   make([]int, len(nl.Nets)),
	}
	// Per-worker search state, the conflict-pass scratch and the
	// occupancy buffers live across iterations; only the cheap worker
	// goroutines respawn per iteration.
	workers := opts.Workers
	if workers > len(nl.Nets) {
		workers = len(nl.Nets)
	}
	scratches := make([]*scratch, workers)
	for w := range scratches {
		scratches[w] = newScratch(r.nodes)
	}
	conflictSt := newScratch(r.nodes)
	errs := make([]error, len(nl.Nets))
	prevOcc := make([]int, r.nodes)
	r.occ = make([]int, r.nodes)
	for iter := 1; iter <= opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter

		// Concurrent phase: snapshot-route every net independently.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(st *scratch) {
				defer wg.Done()
				for {
					ni := int(next.Add(1)) - 1
					if ni >= len(nl.Nets) || ctx.Err() != nil {
						return
					}
					net := &nl.Nets[ni]
					st.mark++
					for _, n := range res.NetRoutes[ni] {
						st.stamp[n] = st.mark
					}
					cost := func(n int) float64 {
						base := prevOcc[n]
						if st.stamp[n] == st.mark {
							base -= net.Signals
						}
						return r.chanCost(base, n, net.Signals)
					}
					tree, edges, hops, err := r.routeNet(net, st, cost)
					if err != nil {
						errs[ni] = err
						return
					}
					res.NetRoutes[ni], res.NetEdges[ni], res.NetHops[ni] = tree, edges, hops
				}
			}(scratches[w])
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for ni, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("route: net %d: %w", ni, err)
			}
		}

		// Live occupancy of the snapshot routes.
		clear(r.occ)
		for ni := range nl.Nets {
			for _, n := range res.NetRoutes[ni] {
				r.occ[n] += nl.Nets[ni].Signals
			}
		}

		// Serial conflict-resolution pass in deterministic order.
		st := conflictSt
		for _, ni := range order {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			net := &nl.Nets[ni]
			conflicted := false
			for _, n := range res.NetRoutes[ni] {
				if r.occ[n] > chip.Tracks {
					conflicted = true
					break
				}
			}
			if !conflicted {
				continue
			}
			for _, n := range res.NetRoutes[ni] {
				r.occ[n] -= net.Signals
			}
			cost := func(n int) float64 { return r.chanCost(r.occ[n], n, net.Signals) }
			tree, edges, hops, err := r.routeNet(net, st, cost)
			if err != nil {
				return nil, fmt.Errorf("route: net %d: %w", ni, err)
			}
			res.NetRoutes[ni], res.NetEdges[ni], res.NetHops[ni] = tree, edges, hops
			for _, n := range tree {
				r.occ[n] += net.Signals
			}
		}

		res.Overused = 0
		res.MaxOccupancy = 0
		for n := 0; n < r.nodes; n++ {
			if r.occ[n] > res.MaxOccupancy {
				res.MaxOccupancy = r.occ[n]
			}
			if r.occ[n] > chip.Tracks {
				res.Overused++
				r.hist[n] += opts.HistGain
			}
		}
		if res.Overused == 0 {
			res.Converged = true
			return res, nil
		}
		r.presFac *= opts.PresFacGrowth
		prevOcc, r.occ = r.occ, prevOcc
	}
	return res, nil
}

// routeNet builds a route tree source→all sinks and returns (tree nodes,
// tree edges, max source→sink hops). Node prices come from cost; st is
// the caller's private search state, so concurrent calls on distinct
// scratches are safe.
func (r *router) routeNet(net *netlist.Net, st *scratch, cost func(n int) float64) ([]int, []TreeEdge, int, error) {
	src := r.pl.Pos[net.Src]
	inTree := make(map[int]int) // node → hops from source along tree
	tree := make([]int, 0, 8)
	var edges []TreeEdge
	addTree := func(n, hops int) {
		if _, ok := inTree[n]; !ok {
			inTree[n] = hops
			tree = append(tree, n)
		}
	}
	// The source's CB reaches both channels at its site.
	addTree(r.node(0, src), 1)
	addTree(r.node(1, src), 1)

	maxHops := 0
	dist, hops, prev, visited := st.dist, st.hops, st.prev, st.visited
	var buf [3]int
	for _, sinkBlock := range net.Sinks {
		sink := r.pl.Pos[sinkBlock]
		tH, tV := r.node(0, sink), r.node(1, sink)
		if _, ok := inTree[tH]; ok {
			if h := inTree[tH]; h > maxHops {
				maxHops = h
			}
			continue
		}
		if _, ok := inTree[tV]; ok {
			if h := inTree[tV]; h > maxHops {
				maxHops = h
			}
			continue
		}
		// Dijkstra seeded with the whole tree at cost 0.
		for i := range dist {
			dist[i] = -1
			visited[i] = false
		}
		// Seed from the ordered tree slice, not the map: map iteration
		// order would make equal-cost tie-breaking nondeterministic.
		pq := &nodeHeap{}
		for _, n := range tree {
			dist[n] = 0
			hops[n] = inTree[n]
			prev[n] = -1
			heap.Push(pq, nodeCost{node: n, cost: 0})
		}
		found := -1
		for pq.Len() > 0 {
			nc := heap.Pop(pq).(nodeCost)
			n := nc.node
			if visited[n] {
				continue
			}
			visited[n] = true
			if n == tH || n == tV {
				found = n
				break
			}
			for _, m := range r.neighbors(n, buf[:0]) {
				c := dist[n] + cost(m)
				if dist[m] < 0 || c < dist[m] {
					dist[m] = c
					hops[m] = hops[n] + 1
					prev[m] = n
					heap.Push(pq, nodeCost{node: m, cost: c})
				}
			}
		}
		if found < 0 {
			return nil, nil, 0, fmt.Errorf("no path to sink block %d", sinkBlock)
		}
		if hops[found] > maxHops {
			maxHops = hops[found]
		}
		// Walk back, adding the new branch (nodes and switch-box hops)
		// to the tree. Dijkstra was seeded with every tree node at
		// prev = −1, so the walk ends exactly where the branch joins
		// the existing tree.
		for n := found; ; n = prev[n] {
			addTree(n, hops[n])
			if prev[n] < 0 {
				break
			}
			edges = append(edges, TreeEdge{A: prev[n], B: n})
		}
	}
	return tree, edges, maxHops, nil
}

// nodeCost / nodeHeap implement the Dijkstra priority queue.
type nodeCost struct {
	node int
	cost float64
}

type nodeHeap []nodeCost

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeCost)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EstimateHops predicts per-net hop counts from placement alone (HPWL+1),
// for netlists too large to route exhaustively; the full router reports
// exact values on small and medium designs and the estimate tracks it.
func EstimateHops(nl *netlist.Netlist, pl *place.Placement) []int {
	hops := make([]int, len(nl.Nets))
	for i := range nl.Nets {
		net := &nl.Nets[i]
		s := pl.Pos[net.Src]
		maxD := 0
		for _, b := range net.Sinks {
			q := pl.Pos[b]
			d := abs(q.X-s.X) + abs(q.Y-s.Y)
			if d > maxD {
				maxD = d
			}
		}
		hops[i] = maxD + 1
	}
	return hops
}

// RandomizedEstimate is a helper for perf models: mean hops over nets of a
// synthetic placement with the given block count and fan-out (used when no
// concrete netlist exists, e.g. baseline sweeps).
func RandomizedEstimate(blocks int, rng *rand.Rand) float64 {
	if blocks < 2 {
		return 1
	}
	side := 1
	for side*side < blocks {
		side++
	}
	const samples = 256
	total := 0
	for i := 0; i < samples; i++ {
		x1, y1 := rng.Intn(side), rng.Intn(side)
		x2, y2 := rng.Intn(side), rng.Intn(side)
		total += abs(x1-x2) + abs(y1-y2) + 1
	}
	return float64(total) / samples
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
