package xbar

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/device"
)

// faultedArms programs the same logical weights twice — once under a
// fault mask, once with the stuck cells folded into the weight matrix by
// hand (plus an analog-only mask carrying the same drift/read stream) —
// and returns both crossbars. The two must be indistinguishable: stuck
// faults are defined as a logical-weight mask applied before the
// polarity split, and every programming RNG draw is value-independent.
func faultedArms(t *testing.T, seed int64, rows, cols int, faultBytes []byte, noisy, analog bool) (*Crossbar, *Crossbar, int) {
	t.Helper()
	cfg := testConfig(0)
	var prngF, prngM *rand.Rand
	if noisy {
		cfg.Spec = device.Cell4BitMeasured
		cfg.Rep = device.NewAdd(cfg.Spec, cfg.Params.CellsPerWeight)
		prngF = rand.New(rand.NewSource(seed + 1))
		prngM = rand.New(rand.NewSource(seed + 1))
	}
	maxW := cfg.Rep.MaxWeight()
	rng := rand.New(rand.NewSource(seed))
	weights := randomWeights(rng, rows, cols, maxW)

	fm := device.FaultMap{Rows: rows, Cols: cols}
	if analog {
		fm.Drift = 0.1
		fm.ReadSigma = 1e-7
		fm.ReadSeed = seed + 2
	}
	masked := make([][]int, rows)
	for i := range masked {
		masked[i] = append([]int(nil), weights[i]...)
	}
	for k := 0; k < rows*cols && len(faultBytes) > 0; k++ {
		i, j := k/cols, k%cols
		switch faultBytes[k%len(faultBytes)] % 3 {
		case 1:
			fm.Cells = append(fm.Cells, device.FaultCell{Row: i, Col: j, Kind: device.FaultStuckLow})
			masked[i][j] = 0
		case 2:
			fm.Cells = append(fm.Cells, device.FaultCell{Row: i, Col: j, Kind: device.FaultStuckHigh})
			masked[i][j] = maxW
		}
	}
	if err := fm.Validate(); err != nil {
		t.Fatal(err)
	}

	cfgF := cfg
	mask := fm.MaskFor(rows, cols, false)
	cfgF.Faults = &mask
	faulted, err := Program(cfgF, weights, prngF)
	if err != nil {
		t.Fatal(err)
	}
	cfgM := cfg
	analogOnly := device.FaultMap{Rows: rows, Cols: cols, Drift: fm.Drift, ReadSigma: fm.ReadSigma, ReadSeed: fm.ReadSeed}.MaskFor(rows, cols, false)
	if analogOnly.Active() {
		cfgM.Faults = &analogOnly
	}
	byHand, err := Program(cfgM, masked, prngM)
	if err != nil {
		t.Fatal(err)
	}
	return faulted, byHand, len(fm.Cells)
}

// assertSameConductances requires bit-identical programmed state.
func assertSameConductances(t *testing.T, faulted, byHand *Crossbar) {
	t.Helper()
	for k := range byHand.posG {
		if math.Float64bits(faulted.posG[k]) != math.Float64bits(byHand.posG[k]) {
			t.Fatalf("posG[%d]: faulted %x, masked-by-hand %x", k, faulted.posG[k], byHand.posG[k])
		}
		if math.Float64bits(faulted.negG[k]) != math.Float64bits(byHand.negG[k]) {
			t.Fatalf("negG[%d]: faulted %x, masked-by-hand %x", k, faulted.negG[k], byHand.negG[k])
		}
	}
}

// TestProgramFaultedVsMasked pins the masked-weights fault equivalence
// on fixed cases across ideal/noisy programming and with the analog
// effects on and off.
func TestProgramFaultedVsMasked(t *testing.T) {
	for _, tc := range []struct {
		name          string
		bytes         []byte
		noisy, analog bool
	}{
		{"ideal", []byte{0, 1, 2, 0, 0, 1}, false, false},
		{"noisy", []byte{2, 2, 0, 1}, true, false},
		{"noisy-analog", []byte{1, 0, 2}, true, true},
		{"no-faults", nil, true, true},
	} {
		faulted, byHand, cells := faultedArms(t, 77, 19, 6, tc.bytes, tc.noisy, tc.analog)
		assertSameConductances(t, faulted, byHand)
		if got := faulted.FaultedCells(); got != cells {
			t.Fatalf("%s: FaultedCells() = %d, want %d", tc.name, got, cells)
		}
		if got := byHand.FaultedCells(); tc.bytes != nil && got != 0 {
			t.Fatalf("%s: by-hand arm reports %d faulted cells", tc.name, got)
		}
	}
}

// TestProgramFaultMaskGeometryMismatch: a mask sized for a different
// matrix is a programming error, not a silent partial application.
func TestProgramFaultMaskGeometryMismatch(t *testing.T) {
	cfg := testConfig(0)
	mask := device.FaultMap{Rows: 4, Cols: 4, Cells: []device.FaultCell{{Kind: device.FaultStuckLow}}}.MaskFor(4, 4, false)
	cfg.Faults = &mask
	rng := rand.New(rand.NewSource(1))
	if _, err := Program(cfg, randomWeights(rng, 5, 4, cfg.Rep.MaxWeight()), nil); err == nil {
		t.Fatal("Program accepted a 4x4 mask over 5x4 weights")
	}
}

// FuzzProgramFaultedVsMasked fuzzes the masked-weights equivalence:
// arbitrary stuck-cell patterns over fuzzed shapes, under ideal and
// noisy programming, with and without drift/read variation, must program
// conductances bit-identical to masking the weight matrix by hand. Seed
// corpus under testdata/fuzz/FuzzProgramFaultedVsMasked; CI runs a short
// -fuzztime smoke pass.
func FuzzProgramFaultedVsMasked(f *testing.F) {
	f.Add(int64(1), 1, 1, []byte{1}, false, false)
	f.Add(int64(7), 23, 7, []byte{0, 2, 1, 0, 2}, true, false)
	f.Add(int64(42), 8, 3, []byte{2, 2, 2}, true, true)
	f.Fuzz(func(t *testing.T, seed int64, rows, cols int, faultBytes []byte, noisy, analog bool) {
		if rows < 1 || rows > 80 || cols < 1 || cols > 16 {
			t.Skip()
		}
		faulted, byHand, cells := faultedArms(t, seed, rows, cols, faultBytes, noisy, analog)
		assertSameConductances(t, faulted, byHand)
		if got := faulted.FaultedCells(); got != cells {
			t.Fatalf("FaultedCells() = %d, want %d", got, cells)
		}
	})
}
