package xbar

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

func testConfig(eta float64) Config {
	spec := device.Cell4Bit
	spec.Sigma = 0
	return Config{
		Params: device.Params45nm,
		Spec:   spec,
		Rep:    device.NewAdd(spec, device.Params45nm.CellsPerWeight),
		Eta:    eta,
	}
}

func randomWeights(rng *rand.Rand, rows, cols, maxW int) [][]int {
	w := make([][]int, rows)
	for i := range w {
		w[i] = make([]int, cols)
		for j := range w[i] {
			w[i][j] = rng.Intn(2*maxW+1) - maxW
		}
	}
	return w
}

func randomCounts(rng *rand.Rand, n, window int) []int {
	x := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(window + 1)
	}
	return x
}

// TestVMMBatchMatchesNaive checks the blocked kernel against a plain
// triple loop across shapes that straddle the row-block boundary.
func TestVMMBatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ batch, rows, cols int }{
		{1, 1, 1}, {1, 31, 7}, {3, 32, 5}, {4, 33, 9}, {2, 100, 64}, {7, 256, 17},
	} {
		in := make([]float64, tc.batch*tc.rows)
		for i := range in {
			in[i] = math.Round(rng.Float64()*20 - 10)
		}
		w := make([]float64, tc.rows*tc.cols)
		for i := range w {
			w[i] = math.Round(rng.Float64()*10 - 5)
		}
		got := make([]float64, tc.batch*tc.cols)
		VMMBatch(got, w, in, tc.batch, tc.rows, tc.cols)
		for b := 0; b < tc.batch; b++ {
			for j := 0; j < tc.cols; j++ {
				var want float64
				for i := 0; i < tc.rows; i++ {
					want += in[b*tc.rows+i] * w[i*tc.cols+j]
				}
				if got[b*tc.cols+j] != want {
					t.Fatalf("%+v: out[%d,%d] = %g, want %g", tc, b, j, got[b*tc.cols+j], want)
				}
			}
		}
	}
}

// referenceNaive replicates the historical per-item integer reference
// semantics with plain int arithmetic.
func referenceNaive(weights [][]int, x []int, eta float64, window int) []int {
	cols := len(weights[0])
	out := make([]int, cols)
	for j := 0; j < cols; j++ {
		var pos, neg int
		for i := range weights {
			w := weights[i][j]
			if w >= 0 {
				pos += w * x[i]
			} else {
				neg += -w * x[i]
			}
		}
		y := int(float64(pos)/eta) - int(float64(neg)/eta)
		if y < 0 {
			y = 0
		}
		out[j] = spike.Clamp(y, window)
	}
	return out
}

// TestReferenceBatchMatchesNaive pins the batched reference path to the
// historical integer semantics element by element.
func TestReferenceBatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig(0)
	maxW := cfg.Rep.MaxWeight()
	for _, tc := range []struct{ batch, rows, cols int }{
		{1, 16, 8}, {5, 40, 12}, {16, 256, 30},
	} {
		weights := randomWeights(rng, tc.rows, tc.cols, maxW)
		xb, err := Program(cfg, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		// A saturation-safe eta keeps the semantics in the regime the
		// synthesizer targets.
		xb.SetEta(float64(maxW * tc.rows / 4))
		src := make([]int, 0, tc.batch*tc.rows)
		for b := 0; b < tc.batch; b++ {
			src = append(src, randomCounts(rng, tc.rows, xb.Window())...)
		}
		dst := make([]int, tc.batch*tc.cols)
		if err := xb.ReferenceBatch(dst, src, tc.batch); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < tc.batch; b++ {
			want := referenceNaive(weights, src[b*tc.rows:(b+1)*tc.rows], xb.Eta(), xb.Window())
			for j := range want {
				if dst[b*tc.cols+j] != want[j] {
					t.Fatalf("%+v: out[%d,%d] = %d, want %d", tc, b, j, dst[b*tc.cols+j], want[j])
				}
			}
		}
	}
}

// TestSimulateCountsBatchMatchesTrains cross-checks the batched
// counts-level simulation against the train-level path with ideal
// neurons: identical conductances, identical uniform input trains, so
// the output counts must agree exactly — item by item, for ideal and
// noisy programming alike.
func TestSimulateCountsBatchMatchesTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig(0)
	maxW := cfg.Rep.MaxWeight()
	for _, noisy := range []bool{false, true} {
		c := cfg
		var prng *rand.Rand
		if noisy {
			c.Spec = device.Cell4BitMeasured
			prng = rand.New(rand.NewSource(17))
		}
		weights := randomWeights(rng, 48, 10, maxW)
		xb, err := Program(c, weights, prng)
		if err != nil {
			t.Fatal(err)
		}
		xb.SetEta(float64(maxW * 12))
		const batch = 6
		src := make([]int, 0, batch*48)
		for b := 0; b < batch; b++ {
			src = append(src, randomCounts(rng, 48, xb.Window())...)
		}
		dst := make([]int, batch*10)
		if err := xb.SimulateCountsBatch(dst, src, batch); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < batch; b++ {
			ins := make([]spike.Train, 48)
			for i := range ins {
				ins[i] = spike.UniformTrain(src[b*48+i], xb.Window())
			}
			outs, err := xb.SimulateTrains(ins, func(eta float64) Stepper { return &spike.Neuron{Eta: eta} })
			if err != nil {
				t.Fatal(err)
			}
			for j, tr := range outs {
				if dst[b*10+j] != tr.Count() {
					t.Fatalf("noisy=%v item %d col %d: batch %d, trains %d", noisy, b, j, dst[b*10+j], tr.Count())
				}
			}
		}
	}
}

// TestProgramDrawOrder pins the noisy programming draw order (column-
// major, positive before negative) that seeded variation streams across
// the stack depend on.
func TestProgramDrawOrder(t *testing.T) {
	cfg := testConfig(0)
	cfg.Spec = device.Cell4BitMeasured
	weights := [][]int{{3, -2}, {-1, 4}}
	xb, err := Program(cfg, weights, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			w := weights[i][j]
			pos, neg := 0, 0
			if w >= 0 {
				pos = w
			} else {
				neg = -w
			}
			gp := device.ProgramWeight(cfg.Rep, cfg.Spec, pos, rng)
			gn := device.ProgramWeight(cfg.Rep, cfg.Spec, neg, rng)
			if xb.posG[i*2+j] != gp || xb.negG[i*2+j] != gn {
				t.Fatalf("cell (%d,%d): got %g/%g, want %g/%g", i, j, xb.posG[i*2+j], xb.negG[i*2+j], gp, gn)
			}
		}
	}
}

func TestProgramValidation(t *testing.T) {
	cfg := testConfig(0)
	if _, err := Program(cfg, nil, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Program(cfg, [][]int{{}}, nil); err == nil {
		t.Error("zero-column matrix accepted")
	}
	if _, err := Program(cfg, [][]int{{1, 2}, {3}}, nil); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Program(cfg, [][]int{{cfg.Rep.MaxWeight() + 1}}, nil); err == nil {
		t.Error("overflowing weight accepted")
	}
	tall := make([][]int, cfg.Params.CrossbarRows+1)
	for i := range tall {
		tall[i] = []int{1}
	}
	if _, err := Program(cfg, tall, nil); err == nil {
		t.Error("too-tall matrix accepted")
	}
	xb, err := Program(cfg, [][]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.ReferenceBatch(make([]int, 2), make([]int, 3), 2); err == nil {
		t.Error("mis-sized batch input accepted")
	}
	if err := xb.SimulateCountsBatch(make([]int, 3), make([]int, 2), 2); err == nil {
		t.Error("mis-sized batch output accepted")
	}
	if _, err := xb.SimulateTrains(make([]spike.Train, 2), nil); err == nil {
		t.Error("wrong train count accepted")
	}
}
