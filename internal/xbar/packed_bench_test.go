package xbar

import (
	"fmt"
	"math/rand"
	"testing"

	"fpsa/internal/device"
)

// BenchmarkSimulateCounts compares the dense and packed spiking kernels
// across input spike densities on a serving-shaped crossbar, for ideal
// programming (count grouping available) and noisy programming (order-
// preserving row iteration). The packed win comes from dead-cycle
// skipping and, in the ideal case, count grouping.
func BenchmarkSimulateCounts(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	const batch, rows, cols = 16, 48, 24
	for _, noisy := range []bool{false, true} {
		cfg := testConfig(0)
		var prng *rand.Rand
		label := "ideal"
		if noisy {
			cfg.Spec = device.Cell4BitMeasured
			prng = rand.New(rand.NewSource(17))
			label = "noisy"
		}
		weights := randomWeights(rng, rows, cols, cfg.Rep.MaxWeight())
		xb, err := Program(cfg, weights, prng)
		if err != nil {
			b.Fatal(err)
		}
		xb.SetEta(float64(cfg.Rep.MaxWeight()) * 12)
		for _, d := range []float64{0.02, 0.05, 0.1, 0.3, 0.6, 1.0} {
			src := make([]int, 0, batch*rows)
			for i := 0; i < batch; i++ {
				src = append(src, countsAtDensity(rng, rows, xb.Window(), d)...)
			}
			dst := make([]int, batch*cols)
			b.Run(fmt.Sprintf("%s/dense/d=%.2f", label, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := xb.SimulateCountsBatchDense(dst, src, batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/packed/d=%.2f", label, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := xb.SimulateCountsBatchPacked(dst, src, batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
