package xbar

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

// countsAtDensity draws a spike-count vector whose expected density (mean
// count / window) is roughly d, mixing silent rows with active ones the
// way trained-layer activations do.
func countsAtDensity(rng *rand.Rand, n, window int, d float64) []int {
	x := make([]int, n)
	if d >= 1 {
		for i := range x {
			x[i] = window
		}
		return x
	}
	for i := range x {
		if rng.Float64() < 0.5 {
			continue // silent row
		}
		c := int(2 * d * float64(window) * rng.Float64() * 2)
		x[i] = spike.Clamp(c, window)
	}
	return x
}

// newTestCrossbar programs a crossbar with random weights; noisy selects
// Gaussian programming variation (inexact conductance sums, forcing the
// packed kernel's order-preserving row iteration).
func newTestCrossbar(t *testing.T, rng *rand.Rand, rows, cols int, noisy bool, zeroCols int) (*Crossbar, [][]int) {
	t.Helper()
	cfg := testConfig(0)
	var prng *rand.Rand
	if noisy {
		cfg.Spec = device.Cell4BitMeasured
		prng = rand.New(rand.NewSource(rng.Int63()))
	}
	weights := randomWeights(rng, rows, cols, cfg.Rep.MaxWeight())
	for z := 0; z < zeroCols && z < cols; z++ {
		j := (z * 7) % cols
		for i := range weights {
			weights[i][j] = 0
		}
	}
	xb, err := Program(cfg, weights, prng)
	if err != nil {
		t.Fatal(err)
	}
	return xb, weights
}

// TestPackedMatchesDenseProperty is the core bit-exactness property test:
// randomized (rows, cols, batch, density, programming noise, zero
// columns, threshold η) configurations where the packed kernel must equal
// the dense kernel element for element. Shapes straddle the 64-bit lane
// boundary; zeroCols exercises the column skip list; noisy programming
// disables count grouping and pins the float accumulation order.
func TestPackedMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cases := []struct {
		rows, cols, batch, zeroCols int
	}{
		{1, 1, 1, 0}, {63, 8, 3, 2}, {64, 10, 4, 0}, {65, 9, 2, 3},
		{100, 16, 5, 4}, {256, 30, 2, 0}, {48, 12, 16, 6},
	}
	densities := []float64{0, 0.02, 0.05, 0.1, 0.3, 0.7, 1}
	for _, noisy := range []bool{false, true} {
		for _, tc := range cases {
			xb, _ := newTestCrossbar(t, rng, tc.rows, tc.cols, noisy, tc.zeroCols)
			if xb.exactSums == noisy {
				t.Fatalf("noisy=%v: exactSums=%v, want %v", noisy, xb.exactSums, !noisy)
			}
			// A mid-range η so both sub- and super-threshold drives occur.
			xb.SetEta(float64(testConfig(0).Rep.MaxWeight()) * float64(tc.rows) / 8)
			for _, d := range densities {
				src := make([]int, 0, tc.batch*tc.rows)
				for b := 0; b < tc.batch; b++ {
					src = append(src, countsAtDensity(rng, tc.rows, xb.Window(), d)...)
				}
				dense := make([]int, tc.batch*tc.cols)
				packed := make([]int, tc.batch*tc.cols)
				if err := xb.SimulateCountsBatchDense(dense, src, tc.batch); err != nil {
					t.Fatal(err)
				}
				if err := xb.SimulateCountsBatchPacked(packed, src, tc.batch); err != nil {
					t.Fatal(err)
				}
				for k := range dense {
					if dense[k] != packed[k] {
						t.Fatalf("noisy=%v %+v d=%g: out[%d] dense %d packed %d",
							noisy, tc, d, k, dense[k], packed[k])
					}
				}
			}
		}
	}
}

// TestPackedDegenerateCases covers the boundary inputs the ISSUE calls
// out: all-zero windows, all-ones windows, a single-cycle window (Γ=1 via
// IOBits=0), tiny η (every cycle fires), and η ≤ 0 after SetEta.
func TestPackedDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	check := func(t *testing.T, xb *Crossbar, src []int, batch int) {
		t.Helper()
		dense := make([]int, batch*xb.Cols())
		packed := make([]int, batch*xb.Cols())
		if err := xb.SimulateCountsBatchDense(dense, src, batch); err != nil {
			t.Fatal(err)
		}
		if err := xb.SimulateCountsBatchPacked(packed, src, batch); err != nil {
			t.Fatal(err)
		}
		for k := range dense {
			if dense[k] != packed[k] {
				t.Fatalf("out[%d]: dense %d packed %d", k, dense[k], packed[k])
			}
		}
	}
	t.Run("all-zero", func(t *testing.T) {
		xb, _ := newTestCrossbar(t, rng, 40, 8, false, 0)
		check(t, xb, make([]int, 3*40), 3)
	})
	t.Run("all-ones", func(t *testing.T) {
		xb, _ := newTestCrossbar(t, rng, 40, 8, true, 0)
		src := make([]int, 2*40)
		for i := range src {
			src[i] = xb.Window()
		}
		check(t, xb, src, 2)
	})
	t.Run("single-timestep-window", func(t *testing.T) {
		cfg := testConfig(0)
		cfg.Params.IOBits = 0 // Γ = 1
		weights := randomWeights(rng, 20, 6, cfg.Rep.MaxWeight())
		xb, err := Program(cfg, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		if xb.Window() != 1 {
			t.Fatalf("window = %d, want 1", xb.Window())
		}
		src := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1}
		check(t, xb, src, 1)
	})
	t.Run("tiny-eta", func(t *testing.T) {
		xb, _ := newTestCrossbar(t, rng, 30, 7, false, 0)
		xb.SetEta(0.5) // far below single-row drive: long hot tails
		src := countsAtDensity(rng, 30, xb.Window(), 0.05)
		check(t, xb, src, 1)
	})
	t.Run("nonpositive-eta", func(t *testing.T) {
		xb, _ := newTestCrossbar(t, rng, 16, 5, false, 2)
		xb.SetEta(0) // every column fires every cycle, zero columns included
		src := countsAtDensity(rng, 16, xb.Window(), 0.1)
		check(t, xb, src, 1)
	})
}

// TestAutoSelection pins the density probe on a noisy crossbar (no count
// grouping, so the threshold decides): below it the packed kernel runs,
// above it the dense kernel, and KernelStats records both the choices and
// the observed density.
func TestAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cfg := testConfig(0)
	cfg.Spec = device.Cell4BitMeasured
	cfg.SparseThreshold = 0.25
	weights := randomWeights(rng, 32, 8, cfg.Rep.MaxWeight())
	xb, err := Program(cfg, weights, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	window := xb.Window()
	sparseSrc := make([]int, 32) // density 1/window ≈ 0.016
	for i := range sparseSrc {
		sparseSrc[i] = 1
	}
	denseSrc := make([]int, 32) // density 1.0
	for i := range denseSrc {
		denseSrc[i] = window
	}
	dst := make([]int, 8)
	if err := xb.SimulateCountsBatch(dst, sparseSrc, 1); err != nil {
		t.Fatal(err)
	}
	if err := xb.SimulateCountsBatch(dst, denseSrc, 1); err != nil {
		t.Fatal(err)
	}
	st := xb.KernelStats()
	if st.SparseBatches != 1 || st.DenseBatches != 1 {
		t.Fatalf("selections = %d sparse / %d dense, want 1/1", st.SparseBatches, st.DenseBatches)
	}
	wantDensity := float64(32+32*window) / float64(2*32*window)
	if math.Abs(st.Density()-wantDensity) > 1e-12 {
		t.Fatalf("Density() = %g, want %g", st.Density(), wantDensity)
	}

	// An ideally programmed crossbar always takes the packed kernel under
	// PathAuto — count grouping makes it the faster walk at every density.
	icfg := testConfig(0)
	icfg.SparseThreshold = 0.25
	ixb, err := Program(icfg, weights, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ixb.SimulateCountsBatch(dst, denseSrc, 1); err != nil {
		t.Fatal(err)
	}
	if st := ixb.KernelStats(); st.SparseBatches != 1 || st.DenseBatches != 0 {
		t.Fatalf("ideal selections = %d sparse / %d dense, want 1/0", st.SparseBatches, st.DenseBatches)
	}
}

// TestPathEnvOverride pins the operator escape hatch: FPSA_SPIKE_PATH and
// FPSA_SPIKE_DENSITY outrank the configured path and threshold at Program
// time, and garbage values are ignored.
func TestPathEnvOverride(t *testing.T) {
	t.Setenv(EnvSpikePath, "sparse")
	t.Setenv(EnvSparseDensity, "0.75")
	p, th := ResolvePath(PathDense, 0.2)
	if p != PathSparse || th != 0.75 {
		t.Fatalf("ResolvePath = %v/%g, want sparse/0.75", p, th)
	}
	t.Setenv(EnvSpikePath, "bogus")
	t.Setenv(EnvSparseDensity, "2.5")
	p, th = ResolvePath(PathDense, 0.2)
	if p != PathDense || th != 0.2 {
		t.Fatalf("ResolvePath with garbage env = %v/%g, want dense/0.2", p, th)
	}
	t.Setenv(EnvSpikePath, "dense")
	rng := rand.New(rand.NewSource(74))
	cfg := testConfig(0)
	cfg.Path = PathSparse
	xb, err := Program(cfg, randomWeights(rng, 8, 4, cfg.Rep.MaxWeight()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SimulateCountsBatch(make([]int, 4), []int{1, 0, 0, 0, 0, 0, 0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if st := xb.KernelStats(); st.DenseBatches != 1 || st.SparseBatches != 0 {
		t.Fatalf("env dense override ignored: %+v", st)
	}
}

// TestPathString pins the flag/env spellings.
func TestPathString(t *testing.T) {
	for p, want := range map[Path]string{PathAuto: "auto", PathDense: "dense", PathSparse: "sparse", Path(99): "auto"} {
		if got := p.String(); got != want {
			t.Errorf("Path(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

// TestVMMBatchPackedMatchesDense checks the packed binary kernel against
// VMMBatch with the equivalent 0/1 float input — bit for bit, including
// a last lane with stray bits past rows, which must be ignored.
func TestVMMBatchPackedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, tc := range []struct{ batch, rows, cols int }{
		{1, 1, 1}, {2, 63, 5}, {3, 64, 7}, {4, 65, 6}, {2, 100, 12}, {1, 256, 20},
	} {
		lanes := spike.Lanes(tc.rows)
		masks := make([]uint64, tc.batch*lanes)
		in := make([]float64, tc.batch*tc.rows)
		for b := 0; b < tc.batch; b++ {
			for i := 0; i < tc.rows; i++ {
				if rng.Intn(3) == 0 {
					masks[b*lanes+i>>6] |= 1 << uint(i&63)
					in[b*tc.rows+i] = 1
				}
			}
			// Stray bits past rows in the final lane must not contribute.
			if r := tc.rows & 63; r != 0 {
				masks[b*lanes+lanes-1] |= ^(uint64(1)<<uint(r) - 1)
			}
		}
		w := make([]float64, tc.rows*tc.cols)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		want := make([]float64, tc.batch*tc.cols)
		got := make([]float64, tc.batch*tc.cols)
		VMMBatch(want, w, in, tc.batch, tc.rows, tc.cols)
		VMMBatchPacked(got, w, masks, tc.batch, tc.rows, tc.cols)
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("%+v: out[%d] = %x, want %x", tc, k, got[k], want[k])
			}
		}
	}
}

// TestKernelStatsAdd covers the aggregation helper executors use.
func TestKernelStatsAdd(t *testing.T) {
	a := KernelStats{SparseBatches: 1, DenseBatches: 2, Spikes: 30, SpikeSlots: 100}
	b := KernelStats{SparseBatches: 3, DenseBatches: 4, Spikes: 10, SpikeSlots: 100}
	got := a.Add(b)
	want := KernelStats{SparseBatches: 4, DenseBatches: 6, Spikes: 40, SpikeSlots: 200}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if got.Density() != 0.2 {
		t.Fatalf("Density = %g, want 0.2", got.Density())
	}
	if (KernelStats{}).Density() != 0 {
		t.Fatal("empty Density != 0")
	}
}
