package xbar

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

// FuzzVMMBatchPackedVsDense feeds arbitrary mask bytes and shapes to the
// packed binary kernel and requires bit-identical float output to
// VMMBatch over the equivalent 0/1 input vector — the accumulation-order
// contract the sparse spiking path is built on. Weights are derived
// deterministically from a fuzzed seed so the corpus stays byte-based.
// Seed corpus under testdata/fuzz/FuzzVMMBatchPackedVsDense; CI runs a
// short -fuzztime smoke pass.
func FuzzVMMBatchPackedVsDense(f *testing.F) {
	f.Add([]byte{0xff}, 1, 1, 1, int64(1))
	f.Add([]byte{0xaa, 0x55, 0x00, 0x01}, 2, 65, 4, int64(7))
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}, 3, 64, 3, int64(42))
	f.Fuzz(func(t *testing.T, maskBytes []byte, batch, rows, cols int, seed int64) {
		if batch < 1 || batch > 8 || rows < 1 || rows > 300 || cols < 1 || cols > 32 {
			t.Skip()
		}
		lanes := spike.Lanes(rows)
		masks := make([]uint64, batch*lanes)
		in := make([]float64, batch*rows)
		for b := 0; b < batch; b++ {
			for i := 0; i < rows; i++ {
				k := b*rows + i
				if len(maskBytes) > 0 && maskBytes[k%len(maskBytes)]&(1<<uint(k&7)) != 0 {
					masks[b*lanes+i>>6] |= 1 << uint(i&63)
					in[k] = 1
				}
			}
			// Stray high bits past rows must be ignored by the kernel.
			if r := rows & 63; r != 0 && len(maskBytes) > 0 && maskBytes[0]&1 != 0 {
				masks[b*lanes+lanes-1] |= ^(uint64(1)<<uint(r) - 1)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, rows*cols)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		want := make([]float64, batch*cols)
		got := make([]float64, batch*cols)
		VMMBatch(want, w, in, batch, rows, cols)
		VMMBatchPacked(got, w, masks, batch, rows, cols)
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("shape b%d r%d c%d: out[%d] = %x, want %x", batch, rows, cols, k, got[k], want[k])
			}
		}
	})
}

// FuzzSimulateCountsPackedVsDense fuzzes the full spiking kernel pair:
// arbitrary count bytes against a fixed ideal and a fixed noisy crossbar,
// requiring element-identical outputs. This is the deepest bit-exactness
// check — it exercises count grouping, dead-cycle skipping, hot tails,
// and the column skip list together.
func FuzzSimulateCountsPackedVsDense(f *testing.F) {
	rng := rand.New(rand.NewSource(76))
	ideal, _ := newFuzzCrossbar(rng, false)
	noisy, _ := newFuzzCrossbar(rng, true)
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0, 0, 0}, true)
	f.Add([]byte{64, 64, 64, 64, 64}, false)
	f.Add([]byte{1, 2, 3, 250, 130, 0, 7}, true)
	f.Fuzz(func(t *testing.T, countBytes []byte, useNoisy bool) {
		xb := ideal
		if useNoisy {
			xb = noisy
		}
		rows, cols := xb.Rows(), xb.Cols()
		batch := len(countBytes)/rows + 1
		if batch > 6 {
			batch = 6
		}
		src := make([]int, batch*rows)
		for k := range src {
			if len(countBytes) > 0 {
				src[k] = int(countBytes[k%len(countBytes)]) // >window exercises clamping
			}
		}
		dense := make([]int, batch*cols)
		packed := make([]int, batch*cols)
		if err := xb.SimulateCountsBatchDense(dense, src, batch); err != nil {
			t.Fatal(err)
		}
		if err := xb.SimulateCountsBatchPacked(packed, src, batch); err != nil {
			t.Fatal(err)
		}
		for k := range dense {
			if dense[k] != packed[k] {
				t.Fatalf("noisy=%v out[%d]: dense %d packed %d", useNoisy, k, dense[k], packed[k])
			}
		}
	})
}

// newFuzzCrossbar builds a small fixed crossbar for the kernel fuzzers.
func newFuzzCrossbar(rng *rand.Rand, noisy bool) (*Crossbar, [][]int) {
	cfg := testConfig(0)
	var prng *rand.Rand
	if noisy {
		cfg.Spec = device.Cell4BitMeasured
		prng = rand.New(rand.NewSource(99))
	}
	weights := randomWeights(rng, 33, 9, cfg.Rep.MaxWeight())
	for i := range weights { // an all-zero column for the skip list
		weights[i][4] = 0
	}
	xb, err := Program(cfg, weights, prng)
	if err != nil {
		panic(err)
	}
	xb.SetEta(float64(cfg.Rep.MaxWeight()) * 4)
	return xb, weights
}
