package xbar

import (
	"math"
	"math/bits"
	"os"
	"strconv"

	"fpsa/internal/spike"
)

// Path selects which spiking kernel SimulateCountsBatch runs. The sparse
// and dense kernels are bit-identical (pinned by the property/fuzz suite
// and documented in docs/INVARIANTS.md), so Path is purely a performance
// knob.
type Path int

const (
	// PathAuto probes each micro-batch's spike density and takes the
	// packed kernel when it is at or below the sparse threshold. This is
	// the default everywhere.
	PathAuto Path = iota
	// PathDense always runs the dense cycle-level kernel.
	PathDense
	// PathSparse always runs the bit-packed kernel.
	PathSparse
)

// String renders the path the way the FPSA_SPIKE_PATH env var and the
// -spikepath flag spell it.
func (p Path) String() string {
	switch p {
	case PathDense:
		return "dense"
	case PathSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// DefaultSparseThreshold is the auto-selection density cutoff: micro-
// batches whose input spike density (Σ counts / (batch·rows·Γ)) is at or
// below it take the packed kernel. The value is tuned on the fpsa-bench
// sparsity sweep (BENCH_PR7.json): at the crossover the kernels are within
// noise of each other, well below it the packed path wins by >2×.
const DefaultSparseThreshold = 0.30

// Environment overrides for the spike-path selection, read once per
// Program call. They outrank the Config/engine options so an operator can
// flip a deployed binary without a rebuild:
//
//	FPSA_SPIKE_PATH=auto|dense|sparse   force the kernel choice
//	FPSA_SPIKE_DENSITY=0.15             auto-selection density threshold
const (
	EnvSpikePath     = "FPSA_SPIKE_PATH"
	EnvSparseDensity = "FPSA_SPIKE_DENSITY"
)

// ResolvePath applies the default threshold and the environment overrides
// to a configured path/threshold pair. Unknown env values are ignored
// rather than failing: kernel selection must never take down a serving
// process, and the paths are semantically identical anyway.
func ResolvePath(path Path, threshold float64) (Path, float64) {
	if threshold <= 0 || threshold > 1 {
		threshold = DefaultSparseThreshold
	}
	switch os.Getenv(EnvSpikePath) {
	case "auto":
		path = PathAuto
	case "dense":
		path = PathDense
	case "sparse":
		path = PathSparse
	}
	if v := os.Getenv(EnvSparseDensity); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			threshold = f
		}
	}
	return path, threshold
}

// KernelStats counts spiking-kernel selections and the observed input
// spike density. Counters accumulate across a Crossbar's lifetime and are
// safe to read while other goroutines execute (serve.Engine reads them
// live); executors sum them across their crossbars.
type KernelStats struct {
	// SparseBatches / DenseBatches count SimulateCountsBatch calls that
	// took the packed and the dense kernel respectively.
	SparseBatches uint64
	DenseBatches  uint64
	// Spikes and SpikeSlots accumulate the observed input spike counts
	// and the capacity (batch·rows·Γ) they were observed over; their
	// ratio is the density the auto-probe saw.
	Spikes     uint64
	SpikeSlots uint64
}

// Density returns the observed input spike density in [0, 1], or 0 before
// any spiking batch ran.
func (s KernelStats) Density() float64 {
	if s.SpikeSlots == 0 {
		return 0
	}
	return float64(s.Spikes) / float64(s.SpikeSlots)
}

// Add returns the element-wise sum of two stats records.
func (s KernelStats) Add(o KernelStats) KernelStats {
	s.SparseBatches += o.SparseBatches
	s.DenseBatches += o.DenseBatches
	s.Spikes += o.Spikes
	s.SpikeSlots += o.SpikeSlots
	return s
}

// KernelStats returns the crossbar's accumulated kernel-selection
// counters.
func (c *Crossbar) KernelStats() KernelStats {
	return KernelStats{
		SparseBatches: c.sparseN.Load(),
		DenseBatches:  c.denseN.Load(),
		Spikes:        c.spikeN.Load(),
		SpikeSlots:    c.slotN.Load(),
	}
}

// VMMBatchPacked computes the batched binary vector-matrix product over a
// bit-packed input: masks is batch×Lanes(rows) words where bit i of item
// b's lane group reports input i firing, and
//
//	out[b*cols+j] = Σ_{i: bit i set} weights[i*cols+j]
//
// It is the packed analog of VMMBatch with 0/1 inputs and is bit-identical
// to it: set rows are visited in ascending order and 1·w adds are exactly
// w adds, so the float accumulation order matches (pinned by
// FuzzVMMBatchPackedVsDense). Stray bits at or beyond rows in the last
// lane are ignored.
func VMMBatchPacked(out, weights []float64, masks []uint64, batch, rows, cols int) {
	if batch == 0 || rows == 0 || cols == 0 {
		return
	}
	lanes := spike.Lanes(rows)
	_ = out[batch*cols-1]
	_ = masks[batch*lanes-1]
	_ = weights[rows*cols-1]
	for k := range out[:batch*cols] {
		out[k] = 0
	}
	tail := uint64(0)
	if r := rows & 63; r != 0 {
		tail = 1<<uint(r) - 1
	}
	for b := 0; b < batch; b++ {
		o := out[b*cols : (b+1)*cols]
		m := masks[b*lanes : (b+1)*lanes]
		for l, word := range m {
			if l == lanes-1 && tail != 0 {
				word &= tail
			}
			base := l << 6
			for word != 0 {
				i := base + bits.TrailingZeros64(word)
				word &= word - 1
				w := weights[i*cols : (i+1)*cols]
				for j, wv := range w {
					o[j] += wv
				}
			}
		}
	}
}

// SimulateCountsBatchDense forces the dense cycle-level kernel regardless
// of the configured path — the benchmark and property-test baseline.
func (c *Crossbar) SimulateCountsBatchDense(dst, src []int, batch int) error {
	if batch == 0 {
		return nil
	}
	if err := c.checkBatch(dst, src, batch); err != nil {
		return err
	}
	c.denseN.Add(1)
	c.simulateCountsDense(dst, src, batch)
	return nil
}

// SimulateCountsBatchPacked forces the bit-packed sparse kernel regardless
// of the configured path. Output is bit-identical to the dense kernel.
func (c *Crossbar) SimulateCountsBatchPacked(dst, src []int, batch int) error {
	if batch == 0 {
		return nil
	}
	if err := c.checkBatch(dst, src, batch); err != nil {
		return err
	}
	c.sparseN.Add(1)
	c.simulateCountsPacked(dst, src, batch)
	return nil
}

// probeDensity sums the clamped input spike counts of a micro-batch and
// records them in the stats counters; the returned density drives the
// auto-selection.
func (c *Crossbar) probeDensity(src []int, batch int) float64 {
	total := 0
	for _, v := range src {
		total += spike.Clamp(v, c.window)
	}
	slots := batch * c.rows * c.window
	c.spikeN.Add(uint64(total))
	c.slotN.Add(uint64(slots))
	if slots == 0 {
		return 0
	}
	return float64(total) / float64(slots)
}

// simulateCountsPacked is the sparsity-aware spiking kernel: the same
// cycle-level integrate-and-fire/subtracter semantics as the dense kernel,
// restructured around bit-packed firing masks so that work scales with
// spike events instead of with rows×Γ×cols.
//
// Per batch item it
//
//  1. collapses the input rows into drive units — every row with a zero
//     count drops out; when the programmed conductances are exact-sum
//     (integer-valued and bounded, see Program) rows with equal counts
//     share one unit whose conductance rows are pre-summed, because equal
//     counts produce identical Bresenham trains and integer sums are
//     order-independent, so the per-cycle drive is bit-identical either
//     way. With inexact (noisy) conductances every firing row stays its
//     own unit in ascending row order, preserving the dense float
//     accumulation order exactly;
//  2. builds a timestep-major firing mask (Γ × Lanes(units) words) with
//     the jump-Bresenham generator and flattens it into an event list:
//     the live cycles and, per live cycle, the firing units in ascending
//     order;
//  3. accumulates the drive rows of each live cycle into a live×2·cols
//     drive matrix — row-major streaming adds over the firing units in
//     ascending order, exactly the dense kernel's accumulation order per
//     column — and then walks each column independently: live cycles step
//     the membrane/threshold/subtracter statements with the
//     pre-accumulated drive, and the dead cycles between them are skipped
//     wholesale once the column's membranes are below threshold. While a
//     membrane is still at or above η the column steps through the
//     zero-drive cycles one by one, because each such cycle really fires
//     (the "hot drain"); adding a drive of 0.0 to a membrane is bit-exactly
//     a no-op, so skipping cold cycles changes nothing. Columns whose
//     conductances are zero in both polarities never accumulate drive and
//     (for η > 0) never fire, so they are skipped entirely.
//
// Every floating-point operation the dense kernel performs on a value that
// could differ is performed here, per column, in the same order; every
// skipped operation is provably a no-op. That is the sparse/dense
// bit-exactness invariant the property and fuzz suites pin.
func (c *Crossbar) simulateCountsPacked(dst, src []int, batch int) {
	window, cols := c.window, c.cols
	// Column skip list only applies while η > 0; with η ≤ 0 every column
	// fires every cycle, so all columns must be stepped.
	eta := c.eta
	colIdx := c.activeCols
	if eta <= 0 {
		colIdx = nil
	}
	for b := 0; b < batch; b++ {
		counts := src[b*c.rows : (b+1)*c.rows]
		out := dst[b*cols : (b+1)*cols]
		units := c.buildUnits(counts)
		ulanes := spike.Lanes(units)
		stride := 64 * ulanes
		c.masks = grow(c.masks, window*ulanes)
		for k := range c.masks {
			c.masks[k] = 0
		}
		for u := 0; u < units; u++ {
			spike.AppendUniform(c.masks, c.unitCount[u], window, u, stride)
		}
		// Flatten the masks into the event list: evCycles holds the live
		// cycles ascending, evUnits the firing units of each live cycle
		// (ascending unit order), evStart the per-cycle offsets into it.
		c.evCycles = c.evCycles[:0]
		c.evStart = c.evStart[:0]
		c.evUnits = c.evUnits[:0]
		for t := 0; t < window; t++ {
			m := c.masks[t*ulanes : (t+1)*ulanes]
			live := false
			for l, word := range m {
				base := l << 6
				for word != 0 {
					u := base + bits.TrailingZeros64(word)
					word &= word - 1
					if !live {
						c.evCycles = append(c.evCycles, t)
						c.evStart = append(c.evStart, len(c.evUnits))
						live = true
					}
					c.evUnits = append(c.evUnits, u)
				}
			}
		}
		c.evStart = append(c.evStart, len(c.evUnits))
		// Accumulate each live cycle's drives: positive at [li·2c, li·2c+c),
		// negative at [li·2c+c, (li+1)·2c). The first firing unit writes,
		// the rest add — 0 + g equals g bitwise, so the per-column sum
		// order is exactly the dense kernel's.
		c.drvAll = grow(c.drvAll, len(c.evCycles)*2*cols)
		for li := range c.evCycles {
			row := c.drvAll[li*2*cols : (li+1)*2*cols]
			us := c.evUnits[c.evStart[li]:c.evStart[li+1]]
			up, un := c.unitPos[us[0]], c.unitNeg[us[0]]
			for j := 0; j < cols; j++ {
				row[j] = up[j]
				row[cols+j] = un[j]
			}
			for _, u := range us[1:] {
				up, un = c.unitPos[u], c.unitNeg[u]
				for j := 0; j < cols; j++ {
					row[j] += up[j]
					row[cols+j] += un[j]
				}
			}
		}
		for j := 0; j < cols; j++ {
			out[j] = 0
		}
		if colIdx == nil {
			for j := 0; j < cols; j++ {
				out[j] = c.runColumnPacked(j, window, cols, eta)
			}
		} else {
			for _, j := range colIdx {
				out[j] = c.runColumnPacked(j, window, cols, eta)
			}
		}
	}
}

// colNeuron is one column's ideal neuron pair and subtracter state during
// the packed walk. step is the exact statement sequence of the dense
// kernel's per-column inner loop; step(0, 0) is the zero-drive cycle
// (membranes never go negative, so += 0.0 is bitwise a no-op).
type colNeuron struct {
	memP, memN float64
	debt, out  int
	eta        float64
}

// hot reports whether a zero-drive cycle could still fire this column.
func (n *colNeuron) hot() bool { return n.memP >= n.eta || n.memN >= n.eta }

// step advances one cycle with the given drives.
func (n *colNeuron) step(dP, dN float64) {
	sp := false
	if n.memP += dP; n.memP >= n.eta {
		n.memP -= n.eta
		sp = true
	}
	sn := false
	if n.memN += dN; n.memN >= n.eta {
		n.memN -= n.eta
		sn = true
	}
	if sn {
		n.debt++
	}
	if sp {
		if n.debt > 0 {
			n.debt--
		} else {
			n.out++
		}
	}
}

// runColumnPacked runs one column over the current event list and drive
// matrix and returns its output spike count. Dead cycles are stepped only
// while the column is hot; a live cycle whose drive happens to be zero for
// this column is stepped only when hot, which is the same no-op argument.
func (c *Crossbar) runColumnPacked(j, window, cols int, eta float64) int {
	n := colNeuron{eta: eta}
	prev := -1
	for li, t := range c.evCycles {
		for gap := t - prev - 1; gap > 0 && n.hot(); gap-- {
			n.step(0, 0)
		}
		dP := c.drvAll[li*2*cols+j]
		dN := c.drvAll[li*2*cols+cols+j]
		if dP != 0 || dN != 0 || n.hot() {
			n.step(dP, dN)
		}
		prev = t
	}
	for gap := window - 1 - prev; gap > 0 && n.hot(); gap-- {
		n.step(0, 0)
	}
	return n.out
}

// buildUnits collapses one item's input counts into drive units (see
// simulateCountsPacked) and returns the unit count. Unit conductance rows
// land in c.unitPos/c.unitNeg, firing counts in c.unitCount.
func (c *Crossbar) buildUnits(counts []int) int {
	window, cols := c.window, c.cols
	c.unitPos = c.unitPos[:0]
	c.unitNeg = c.unitNeg[:0]
	c.unitCount = c.unitCount[:0]
	if !c.exactSums {
		// Inexact conductances: one unit per firing row, ascending row
		// order — the dense accumulation order, preserved bit for bit.
		for i, cnt := range counts {
			cnt = spike.Clamp(cnt, window)
			if cnt == 0 {
				continue
			}
			c.unitPos = append(c.unitPos, c.posG[i*cols:(i+1)*cols])
			c.unitNeg = append(c.unitNeg, c.negG[i*cols:(i+1)*cols])
			c.unitCount = append(c.unitCount, cnt)
		}
		return len(c.unitCount)
	}
	// Exact-sum conductances: group rows by firing count. Equal counts
	// fire on identical cycles, and integer-valued conductances sum
	// exactly in any order, so a pre-summed group row drives the column
	// bit-identically to its member rows added one by one.
	c.slotMult = grow(c.slotMult, window+1)
	c.slotRow = grow(c.slotRow, window+1)
	c.slotUnit = grow(c.slotUnit, window+1)
	for k := range c.slotMult {
		c.slotMult[k] = 0
	}
	for i, cnt := range counts {
		cnt = spike.Clamp(cnt, window)
		if cnt == 0 {
			continue
		}
		if c.slotMult[cnt] == 0 {
			c.slotRow[cnt] = i
		}
		c.slotMult[cnt]++
	}
	grouped := 0
	for cnt := 1; cnt <= window; cnt++ {
		if c.slotMult[cnt] > 1 {
			grouped++
		}
	}
	c.groupBuf = grow(c.groupBuf, grouped*2*cols)
	gi := 0
	for cnt := 1; cnt <= window; cnt++ {
		mult := c.slotMult[cnt]
		if mult == 0 {
			continue
		}
		c.slotUnit[cnt] = len(c.unitCount)
		if mult == 1 {
			i := c.slotRow[cnt]
			c.unitPos = append(c.unitPos, c.posG[i*cols:(i+1)*cols])
			c.unitNeg = append(c.unitNeg, c.negG[i*cols:(i+1)*cols])
		} else {
			pos := c.groupBuf[gi*2*cols : gi*2*cols+cols]
			neg := c.groupBuf[gi*2*cols+cols : (gi+1)*2*cols]
			for j := range pos {
				pos[j], neg[j] = 0, 0
			}
			gi++
			c.unitPos = append(c.unitPos, pos)
			c.unitNeg = append(c.unitNeg, neg)
		}
		c.unitCount = append(c.unitCount, cnt)
	}
	for i, cnt := range counts {
		cnt = spike.Clamp(cnt, window)
		if cnt == 0 || c.slotMult[cnt] < 2 {
			continue
		}
		up := c.unitPos[c.slotUnit[cnt]]
		un := c.unitNeg[c.slotUnit[cnt]]
		pg := c.posG[i*cols : (i+1)*cols]
		ng := c.negG[i*cols : (i+1)*cols]
		for j := range up {
			up[j] += pg[j]
			un[j] += ng[j]
		}
	}
	return len(c.unitCount)
}

// classifyProgramming scans the programmed conductances and precomputes
// the sparse kernel's structural facts: whether conductance sums are
// exact in any order (every value integer and the worst-case window-long
// column accumulation far below 2^53 — true for ideal programming, where
// conductances are integer level counts; false as soon as programming
// noise produces fractional values), and which columns carry any nonzero
// conductance at all.
func (c *Crossbar) classifyProgramming() {
	exact := true
	var maxColSum float64
	colSum := make([]float64, c.cols)
	for i := 0; i < c.rows; i++ {
		for j := 0; j < c.cols; j++ {
			k := i*c.cols + j
			pg, ng := c.posG[k], c.negG[k]
			if pg != math.Trunc(pg) || ng != math.Trunc(ng) {
				exact = false
			}
			colSum[j] += math.Abs(pg) + math.Abs(ng)
		}
	}
	active := make([]int, 0, c.cols)
	for j, s := range colSum {
		if s > maxColSum {
			maxColSum = s
		}
		if s != 0 {
			active = append(active, j)
		}
	}
	c.exactSums = exact && float64(c.window)*maxColSum < 1<<52
	if len(active) == c.cols {
		c.activeCols = nil // all columns live: use the contiguous loop
	} else {
		c.activeCols = active
	}
}
