// Package xbar is the shared batched crossbar kernel behind the
// functional execution stack (internal/pe, internal/synth,
// internal/serve). It models one programmed ReRAM crossbar — the PE's
// compute core (paper §4.2) — as flat row-major []float64 buffers and
// evaluates whole micro-batches of input vectors per call, which is where
// ReRAM throughput actually comes from: the programming cost of a weight
// matrix is amortized across every vector that streams through it.
//
// Three views of the same computation are provided, from fastest to most
// circuit-faithful, and the callers' test suites prove they agree with the
// historical per-item paths bit for bit:
//
//  1. VMMBatch: the raw blocked batched vector-matrix product on flat
//     buffers — the hot loop everything else is built from.
//  2. Crossbar.ReferenceBatch: the integer reference semantics
//     Y_j = clamp(max(0, floor(P_j/η) − floor(N_j/η)), Γ) over a batch.
//  3. Crossbar.SimulateCountsBatch / SimulateTrains: the cycle-level
//     spiking simulation (ideal accumulate-and-fire neurons and spike
//     subtracters, or a caller-supplied neuron model).
//
// A Crossbar's batch methods reuse internal scratch buffers and are NOT
// safe for concurrent use — hold one Crossbar (or one synth.Executor) per
// goroutine, exactly as each replica chip carries its own programmed
// arrays.
package xbar

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

// rowBlock is the VMMBatch tile height: a rowBlock×cols weight panel is
// streamed against every batch item before moving to the next panel, so
// the panel stays cache-hot across the whole batch.
const rowBlock = 32

// VMMBatch computes the batched vector-matrix product
//
//	out[b*cols+j] = Σ_i in[b*rows+i] · weights[i*cols+j]
//
// over flat row-major buffers: in is batch×rows, weights is rows×cols,
// out is batch×cols (overwritten). The loop is blocked over weight rows
// and accumulates in float64; for integer-valued operands below 2^53 the
// result is exact regardless of blocking, which is what lets the integer
// reference semantics ride on the float kernel unchanged.
func VMMBatch(out, weights, in []float64, batch, rows, cols int) {
	if batch == 0 || rows == 0 || cols == 0 {
		return
	}
	_ = out[batch*cols-1]
	_ = in[batch*rows-1]
	_ = weights[rows*cols-1]
	for k := range out[:batch*cols] {
		out[k] = 0
	}
	for i0 := 0; i0 < rows; i0 += rowBlock {
		i1 := i0 + rowBlock
		if i1 > rows {
			i1 = rows
		}
		for b := 0; b < batch; b++ {
			x := in[b*rows : (b+1)*rows]
			o := out[b*cols : (b+1)*cols]
			for i := i0; i < i1; i++ {
				xv := x[i]
				if xv == 0 {
					continue
				}
				w := weights[i*cols : (i+1)*cols]
				for j, wv := range w {
					o[j] += xv * wv
				}
			}
		}
	}
}

// Config parameterizes crossbar programming. It mirrors pe.Config so the
// PE model and the executor program identical devices.
type Config struct {
	// Params supplies crossbar geometry and the sampling window.
	Params device.Params
	// Spec is the ReRAM cell used.
	Spec device.CellSpec
	// Rep maps logical weight magnitudes onto parallel cells.
	Rep device.Representation
	// Eta is the neuron threshold η in conductance units; zero means
	// "use Rep.MaxWeight()".
	Eta float64
	// Path selects the spiking kernel (dense, bit-packed sparse, or
	// density-probed auto — the zero value). The kernels are
	// bit-identical; see SimulateCountsBatch.
	Path Path
	// SparseThreshold is the auto-selection density cutoff; ≤ 0 (or > 1)
	// means DefaultSparseThreshold. FPSA_SPIKE_PATH / FPSA_SPIKE_DENSITY
	// in the environment override both fields (see ResolvePath).
	SparseThreshold float64
	// Faults, when non-nil and active, is the device fault state Program
	// applies: stuck logical cells override the weight matrix before the
	// polarity split (stuck-low reads 0, stuck-high +Rep.MaxWeight()), so
	// the ideal weights and the programmed conductances both see the same
	// faults — which is what keeps the reference, spiking and noisy modes,
	// and the dense and bit-packed kernels, on identical faulted state.
	// Drift and static read offsets then perturb the conductances alone.
	// An inactive mask is bit-identical to no mask at all.
	Faults *device.FaultMask
}

// Stepper is the common surface of the neuron models SimulateTrains can
// drive (the ideal accumulate-and-fire neuron or the RC voltage neuron).
type Stepper interface {
	Step(drive float64) bool
	Reset()
}

// Crossbar is one programmed crossbar: the ideal integer weights split by
// polarity (reference path) and the programmed — possibly noisy —
// conductances (spiking path), all in flat row-major buffers.
type Crossbar struct {
	rows, cols int
	eta        float64
	window     int

	// posW/negW hold the ideal |weight| magnitudes by polarity,
	// row-major rows×cols, as exact float64 integers.
	posW, negW []float64
	// posG/negG hold the programmed conductance sums (level units,
	// possibly with variation), row-major rows×cols.
	posG, negG []float64

	// Spiking-kernel selection (see packed.go): the resolved path and
	// auto threshold, plus the structural facts classifyProgramming
	// derives from the conductances.
	path       Path
	threshold  float64
	exactSums  bool  // conductance sums exact in any order (integer values)
	activeCols []int // columns with any nonzero conductance; nil = all

	// faulted is the number of stuck logical cells Program masked into
	// this crossbar (after any remapping upstream).
	faulted int

	// Kernel-selection counters, atomic because serve.Engine reads them
	// while executor goroutines run.
	sparseN, denseN atomic.Uint64
	spikeN, slotN   atomic.Uint64

	// Scratch reused across batch calls (not concurrency-safe).
	xf         []float64 // batch×rows float inputs
	accP, accN []float64 // batch×cols reference accumulators
	drvP, drvN []float64 // cols per-cycle drives
	memP, memN []float64 // cols neuron membrane accumulators
	debt       []int     // cols subtracter debts
	trains     []bool    // rows×window spike trains for one item

	// Packed-kernel scratch (see simulateCountsPacked).
	masks     []uint64    // window×Lanes(units) timestep-major firing masks
	unitPos   [][]float64 // per-unit positive conductance rows
	unitNeg   [][]float64 // per-unit negative conductance rows
	unitCount []int       // per-unit firing counts
	groupBuf  []float64   // backing store for pre-summed group rows
	slotMult  []int       // window+1: rows sharing each count
	slotRow   []int       // window+1: first row with each count
	slotUnit  []int       // window+1: count → unit index
	evCycles  []int       // live cycles of the current item, ascending
	evStart   []int       // per-live-cycle offsets into evUnits
	evUnits   []int       // firing units per live cycle, ascending
	drvAll    []float64   // live×2·cols accumulated drives (P then N per cycle)
}

// Program writes a logical weight matrix weights[i][j] (row-major,
// rows × cols, integers in [−Rep.MaxWeight(), Rep.MaxWeight()]) into a
// fresh crossbar. Positive parts go to the positive polarity, negative
// magnitudes to the negative one. A nil rng programs ideal conductances;
// otherwise each cell draws Gaussian programming variation from rng in
// column-major (j, then i, positive before negative) order — the draw
// order the historical PE model used, so seeded variation streams
// reproduce bit for bit.
//
// With an active cfg.Faults mask, stuck cells override the logical
// weight before the polarity split — so programming a faulted crossbar
// is bit-identical to programming the manually masked weight matrix,
// including the noisy draw stream (each cell draws exactly one variation
// sample regardless of its weight value; fuzz-pinned by
// FuzzProgramFaultedVsMasked). Drift then relaxes every conductance by
// (1−Drift)× and ReadSigma adds a static per-cell offset drawn from the
// mask's own read stream, never touching rng.
func Program(cfg Config, weights [][]int, rng *rand.Rand) (*Crossbar, error) {
	rows := len(weights)
	if rows == 0 || len(weights[0]) == 0 {
		return nil, fmt.Errorf("xbar: empty weight matrix")
	}
	cols := len(weights[0])
	if rows > cfg.Params.CrossbarRows {
		return nil, fmt.Errorf("xbar: %d rows exceed crossbar rows %d", rows, cfg.Params.CrossbarRows)
	}
	if cols > cfg.Params.LogicalColumns() {
		return nil, fmt.Errorf("xbar: %d cols exceed logical columns %d", cols, cfg.Params.LogicalColumns())
	}
	maxW := cfg.Rep.MaxWeight()
	for i := range weights {
		if len(weights[i]) != cols {
			return nil, fmt.Errorf("xbar: ragged weight matrix at row %d", i)
		}
	}
	eta := cfg.Eta
	if eta <= 0 {
		eta = float64(maxW)
	}
	c := &Crossbar{
		rows:   rows,
		cols:   cols,
		eta:    eta,
		window: cfg.Params.SamplingWindow(),
		posW:   make([]float64, rows*cols),
		negW:   make([]float64, rows*cols),
		posG:   make([]float64, rows*cols),
		negG:   make([]float64, rows*cols),
	}
	c.path, c.threshold = ResolvePath(cfg.Path, cfg.SparseThreshold)
	var mask *device.FaultMask
	if cfg.Faults.Active() {
		mask = cfg.Faults
		if mask.Rows != rows || mask.Cols != cols {
			return nil, fmt.Errorf("xbar: fault mask is %dx%d, weights are %dx%d", mask.Rows, mask.Cols, rows, cols)
		}
		c.faulted = mask.Faulted
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			w := weights[i][j]
			if w > maxW || w < -maxW {
				return nil, fmt.Errorf("xbar: weight %d at (%d,%d) exceeds |%d|", w, i, j, maxW)
			}
			if mask != nil {
				switch mask.Stuck(i, j) {
				case device.FaultStuckLow:
					w = 0
				case device.FaultStuckHigh:
					w = maxW
				}
			}
			pos, neg := 0, 0
			if w >= 0 {
				pos = w
			} else {
				neg = -w
			}
			k := i*cols + j
			c.posW[k] = float64(pos)
			c.negW[k] = float64(neg)
			c.posG[k] = device.ProgramWeight(cfg.Rep, cfg.Spec, pos, rng)
			c.negG[k] = device.ProgramWeight(cfg.Rep, cfg.Spec, neg, rng)
		}
	}
	if mask != nil && (mask.Drift > 0 || mask.ReadSigma > 0) {
		// Analog aging, applied to the programmed conductances only (the
		// ideal posW/negW stay exact): multiplicative drift relaxation,
		// then a static per-cell read offset from the mask's own seeded
		// stream — row-major, positive before negative per cell — so the
		// main programming-variation stream rng is never advanced.
		scale := 1 - mask.Drift
		var rrng *rand.Rand
		if mask.ReadSigma > 0 {
			rrng = rand.New(rand.NewSource(mask.ReadSeed))
		}
		perturb := func(g float64) float64 {
			g *= scale
			if rrng != nil {
				g += rrng.NormFloat64() * mask.ReadSigma
			}
			if g < 0 {
				g = 0
			}
			return g
		}
		for k := range c.posG {
			c.posG[k] = perturb(c.posG[k])
			c.negG[k] = perturb(c.negG[k])
		}
	}
	c.classifyProgramming()
	return c, nil
}

// Rows reports the programmed logical row count.
func (c *Crossbar) Rows() int { return c.rows }

// FaultedCells reports how many stuck logical cells the fault mask
// pinned in this crossbar (0 without a mask).
func (c *Crossbar) FaultedCells() int { return c.faulted }

// Cols reports the programmed logical column count.
func (c *Crossbar) Cols() int { return c.cols }

// Eta returns the neuron threshold η.
func (c *Crossbar) Eta() float64 { return c.eta }

// Window returns the sampling window Γ.
func (c *Crossbar) Window() int { return c.window }

// SetEta overrides the neuron threshold η.
func (c *Crossbar) SetEta(eta float64) { c.eta = eta }

// grow returns buf resized to n, reusing capacity.
func grow[T float64 | bool | int | uint64](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// checkBatch validates a flat batch buffer pair.
func (c *Crossbar) checkBatch(dst, src []int, batch int) error {
	if len(src) != batch*c.rows {
		return fmt.Errorf("xbar: input length %d, want %d (batch %d × %d rows)", len(src), batch*c.rows, batch, c.rows)
	}
	if len(dst) != batch*c.cols {
		return fmt.Errorf("xbar: output length %d, want %d (batch %d × %d cols)", len(dst), batch*c.cols, batch, c.cols)
	}
	return nil
}

// ReferenceBatch computes the integer reference output for a batch of
// spike-count vectors: dst[b*cols+j] = clamp(max(0, floor(P/η) −
// floor(N/η)), Γ), with P/N the positive and negative drive sums of item
// b's inputs against the ideal logical weights. src is flat batch×rows,
// dst flat batch×cols. The per-element semantics equal the historical
// one-vector reference path exactly: all intermediate values are integers
// far below 2^53, so the float accumulation is exact.
func (c *Crossbar) ReferenceBatch(dst, src []int, batch int) error {
	if batch == 0 {
		return nil
	}
	if err := c.checkBatch(dst, src, batch); err != nil {
		return err
	}
	c.xf = grow(c.xf, batch*c.rows)
	for k, v := range src {
		c.xf[k] = float64(v)
	}
	c.accP = grow(c.accP, batch*c.cols)
	c.accN = grow(c.accN, batch*c.cols)
	VMMBatch(c.accP, c.posW, c.xf, batch, c.rows, c.cols)
	VMMBatch(c.accN, c.negW, c.xf, batch, c.rows, c.cols)
	for k := range dst {
		y := int(c.accP[k]/c.eta) - int(c.accN[k]/c.eta)
		if y < 0 {
			y = 0
		}
		dst[k] = spike.Clamp(y, c.window)
	}
	return nil
}

// SimulateCountsBatch runs the cycle-level spiking simulation with ideal
// accumulate-and-fire neurons for a batch of spike-count vectors: each
// input count becomes a uniform train (the SMB spike-generator pattern),
// the programmed — possibly noisy — conductances drive the column
// neurons cycle by cycle, and dst receives the subtracter output counts.
// src is flat batch×rows, dst flat batch×cols. Per item it reproduces
// UniformTrain → Simulate → Count on the historical PE bit for bit; the
// batch win is locality (one crossbar's conductances stay hot across the
// whole batch).
//
// Two bit-identical kernels back it: the dense cycle walk and the
// bit-packed sparse walk (simulateCountsPacked). The configured Path picks
// one; PathAuto (the default) probes the micro-batch's input spike density
// and takes the packed kernel at or below the sparse threshold, where
// skipping dead cycles and zero rows wins. Ideally programmed crossbars
// (integer conductances, exact in any summation order) always take the
// packed kernel under PathAuto: count grouping collapses equal-count rows
// there, so it measures faster than the dense walk at every density.
// Selection counts and the observed density are exposed through
// KernelStats.
func (c *Crossbar) SimulateCountsBatch(dst, src []int, batch int) error {
	if batch == 0 {
		return nil
	}
	if err := c.checkBatch(dst, src, batch); err != nil {
		return err
	}
	density := c.probeDensity(src, batch)
	if c.path == PathSparse || (c.path == PathAuto && (c.exactSums || density <= c.threshold)) {
		c.sparseN.Add(1)
		c.simulateCountsPacked(dst, src, batch)
		return nil
	}
	c.denseN.Add(1)
	c.simulateCountsDense(dst, src, batch)
	return nil
}

// simulateCountsDense is the dense cycle-level kernel: every row's train
// is materialized and every cycle steps every column.
func (c *Crossbar) simulateCountsDense(dst, src []int, batch int) {
	window := c.window
	c.trains = grow(c.trains, c.rows*window)
	c.drvP = grow(c.drvP, c.cols)
	c.drvN = grow(c.drvN, c.cols)
	c.memP = grow(c.memP, c.cols)
	c.memN = grow(c.memN, c.cols)
	c.debt = grow(c.debt, c.cols)
	for b := 0; b < batch; b++ {
		counts := src[b*c.rows : (b+1)*c.rows]
		out := dst[b*c.cols : (b+1)*c.cols]
		// Bresenham-style even spacing, exactly spike.UniformTrain.
		for i, count := range counts {
			count = spike.Clamp(count, window)
			tr := c.trains[i*window : (i+1)*window]
			acc := 0
			for t := range tr {
				acc += count
				if acc >= window {
					acc -= window
					tr[t] = true
				} else {
					tr[t] = false
				}
			}
		}
		for j := 0; j < c.cols; j++ {
			out[j] = 0
			c.memP[j], c.memN[j] = 0, 0
			c.debt[j] = 0
		}
		for t := 0; t < window; t++ {
			for j := range c.drvP {
				c.drvP[j], c.drvN[j] = 0, 0
			}
			// Row-major accumulation: for each firing row, add its
			// conductance row across all columns. For any fixed column
			// this sums the same conductances in the same (ascending
			// row) order as the historical column-major loop, so the
			// float results are identical.
			for i := 0; i < c.rows; i++ {
				if !c.trains[i*window+t] {
					continue
				}
				pg := c.posG[i*c.cols : (i+1)*c.cols]
				ng := c.negG[i*c.cols : (i+1)*c.cols]
				for j := range c.drvP {
					c.drvP[j] += pg[j]
					c.drvN[j] += ng[j]
				}
			}
			for j := 0; j < c.cols; j++ {
				// Ideal accumulate-and-fire (spike.Neuron.Step) on both
				// polarities, then the spike subtracter
				// (spike.Subtracter.Step) inline.
				sp := false
				if c.memP[j] += c.drvP[j]; c.memP[j] >= c.eta {
					c.memP[j] -= c.eta
					sp = true
				}
				sn := false
				if c.memN[j] += c.drvN[j]; c.memN[j] >= c.eta {
					c.memN[j] -= c.eta
					sn = true
				}
				if sn {
					c.debt[j]++
				}
				if sp {
					if c.debt[j] > 0 {
						c.debt[j]--
					} else {
						out[j]++
					}
				}
			}
		}
	}
}

// SimulateTrains runs the cycle-level simulation over one sampling window
// of explicit input spike trains with a caller-supplied neuron model,
// returning the output spike trains of the subtracters. This is the
// train-level single-shot path behind pe.Simulate and pe.SimulateRC; the
// drive accumulation order matches SimulateCountsBatch.
func (c *Crossbar) SimulateTrains(inputs []spike.Train, newNeuron func(eta float64) Stepper) ([]spike.Train, error) {
	if len(inputs) != c.rows {
		return nil, fmt.Errorf("xbar: %d input trains, want %d", len(inputs), c.rows)
	}
	window := c.window
	for i, tr := range inputs {
		if tr.Window() != window {
			return nil, fmt.Errorf("xbar: input %d window %d, want %d", i, tr.Window(), window)
		}
	}
	posN := make([]Stepper, c.cols)
	negN := make([]Stepper, c.cols)
	subs := make([]spike.Subtracter, c.cols)
	outs := make([]spike.Train, c.cols)
	for j := range outs {
		posN[j] = newNeuron(c.eta)
		negN[j] = newNeuron(c.eta)
		outs[j] = spike.NewTrain(window)
	}
	c.drvP = grow(c.drvP, c.cols)
	c.drvN = grow(c.drvN, c.cols)
	for t := 0; t < window; t++ {
		for j := range c.drvP {
			c.drvP[j], c.drvN[j] = 0, 0
		}
		for i := 0; i < c.rows; i++ {
			if !inputs[i][t] {
				continue
			}
			pg := c.posG[i*c.cols : (i+1)*c.cols]
			ng := c.negG[i*c.cols : (i+1)*c.cols]
			for j := range c.drvP {
				c.drvP[j] += pg[j]
				c.drvN[j] += ng[j]
			}
		}
		for j := 0; j < c.cols; j++ {
			sp := posN[j].Step(c.drvP[j])
			sn := negN[j].Step(c.drvN[j])
			outs[j][t] = subs[j].Step(sp, sn)
		}
	}
	return outs, nil
}
