// Package coreop defines the core-op graph — the hardware-facing
// intermediate representation the neural synthesizer emits and the
// spatial-to-temporal mapper consumes (paper §5, Figure 5). A core-op is a
// low-precision vector-matrix multiplication (≤256×256) followed by ReLU;
// core-ops sharing one weight matrix form a weight group whose reuse degree
// drives PE allocation (§5.2).
package coreop

import "fmt"

// Kind classifies what a weight group implements, for utilization reports
// (§7.3 observes that synthesized pooling dominates GoogLeNet's PEs).
type Kind int

// Group kinds.
const (
	KindCompute     Kind = iota // conv / FC tile
	KindReduce                  // partial-sum reduction of a row-split layer
	KindPool                    // max/avg pooling structure
	KindElementwise             // residual add, LRN approximation, etc.
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindReduce:
		return "reduce"
	case KindPool:
		return "pool"
	case KindElementwise:
		return "elementwise"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Group is one weight matrix tile: the unit of PE allocation. All core-ops
// in the group execute the same matrix on different inputs (weight reuse).
type Group struct {
	ID    int
	Layer string // originating CG node
	Name  string // unique tile name
	Kind  Kind
	// Rows/Cols is the crossbar footprint the tile occupies (each ≤ the
	// PE's logical dimensions).
	Rows, Cols int
	// UsefulWeights counts the mathematically meaningful (potentially
	// nonzero) cells; block-diagonal lowerings occupy a Rows×Cols
	// footprint but use far fewer cells, which is what the spatial
	// utilization bound measures.
	UsefulWeights int64
	// Reuse is the group's reuse degree: how many core-ops (input
	// positions) share this matrix per sample.
	Reuse int
	// Deps lists group IDs whose outputs this group's core-ops consume.
	Deps []int
	// Weights optionally carries the quantized matrix for functional
	// execution (nil for shape-only synthesis of the large zoo models).
	Weights [][]int
	// Eta is the neuron threshold the synthesizer chose (0 = PE
	// default).
	Eta float64
}

// PEsForWeights returns how many PEs the group's single copy occupies
// (always 1: a group is one tile by construction).
func (g *Group) PEsForWeights() int { return 1 }

// Footprint returns Rows×Cols.
func (g *Group) Footprint() int64 { return int64(g.Rows) * int64(g.Cols) }

// Graph is a synthesized core-op graph.
type Graph struct {
	Name   string
	Groups []*Group
}

// AddGroup appends a group, assigning its ID.
func (g *Graph) AddGroup(grp *Group) *Group {
	grp.ID = len(g.Groups)
	g.Groups = append(g.Groups, grp)
	return grp
}

// MaxReuse returns the largest reuse degree over all groups (the model's
// reuse degree, §5.2).
func (g *Graph) MaxReuse() int {
	max := 0
	for _, grp := range g.Groups {
		if grp.Reuse > max {
			max = grp.Reuse
		}
	}
	return max
}

// GroupsByKind returns the number of groups (≡ minimum PEs) per kind.
func (g *Graph) GroupsByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, grp := range g.Groups {
		m[grp.Kind]++
	}
	return m
}

// TotalCoreOps returns Σ reuse over groups — the number of core-op
// executions per sample.
func (g *Graph) TotalCoreOps() int64 {
	var total int64
	for _, grp := range g.Groups {
		total += int64(grp.Reuse)
	}
	return total
}

// Validate checks ID consistency, dependency sanity and footprint limits
// against the given logical crossbar dimensions.
func (g *Graph) Validate(maxRows, maxCols int) error {
	for i, grp := range g.Groups {
		if grp.ID != i {
			return fmt.Errorf("coreop: group %q has ID %d at index %d", grp.Name, grp.ID, i)
		}
		if grp.Rows <= 0 || grp.Cols <= 0 {
			return fmt.Errorf("coreop: group %q has empty footprint %dx%d", grp.Name, grp.Rows, grp.Cols)
		}
		if grp.Rows > maxRows || grp.Cols > maxCols {
			return fmt.Errorf("coreop: group %q footprint %dx%d exceeds PE %dx%d", grp.Name, grp.Rows, grp.Cols, maxRows, maxCols)
		}
		if grp.Reuse <= 0 {
			return fmt.Errorf("coreop: group %q reuse %d", grp.Name, grp.Reuse)
		}
		if grp.UsefulWeights <= 0 || grp.UsefulWeights > grp.Footprint() {
			return fmt.Errorf("coreop: group %q useful weights %d outside (0,%d]", grp.Name, grp.UsefulWeights, grp.Footprint())
		}
		for _, d := range grp.Deps {
			if d < 0 || d >= len(g.Groups) {
				return fmt.Errorf("coreop: group %q dep %d out of range", grp.Name, d)
			}
			if d >= grp.ID {
				return fmt.Errorf("coreop: group %q dep %d not earlier (graph must be topological)", grp.Name, d)
			}
		}
		if grp.Weights != nil {
			if len(grp.Weights) != grp.Rows {
				return fmt.Errorf("coreop: group %q carries %d weight rows, footprint %d", grp.Name, len(grp.Weights), grp.Rows)
			}
			for r, row := range grp.Weights {
				if len(row) != grp.Cols {
					return fmt.Errorf("coreop: group %q weight row %d has %d cols, footprint %d", grp.Name, r, len(row), grp.Cols)
				}
			}
		}
	}
	return nil
}
