package coreop

import (
	"strings"
	"testing"
)

func validGroup(name string, reuse int, deps ...int) *Group {
	return &Group{
		Layer: "l", Name: name, Rows: 8, Cols: 8,
		UsefulWeights: 64, Reuse: reuse, Deps: deps,
	}
}

func TestAddGroupAssignsIDs(t *testing.T) {
	g := &Graph{Name: "g"}
	a := g.AddGroup(validGroup("a", 1))
	b := g.AddGroup(validGroup("b", 2, a.ID))
	if a.ID != 0 || b.ID != 1 {
		t.Errorf("IDs = %d, %d", a.ID, b.ID)
	}
	if g.MaxReuse() != 2 {
		t.Errorf("MaxReuse = %d", g.MaxReuse())
	}
	if g.TotalCoreOps() != 3 {
		t.Errorf("TotalCoreOps = %d", g.TotalCoreOps())
	}
}

func TestGroupsByKind(t *testing.T) {
	g := &Graph{}
	g.AddGroup(validGroup("a", 1))
	p := validGroup("p", 1)
	p.Kind = KindPool
	g.AddGroup(p)
	m := g.GroupsByKind()
	if m[KindCompute] != 1 || m[KindPool] != 1 {
		t.Errorf("kinds = %v", m)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCompute: "compute", KindReduce: "reduce",
		KindPool: "pool", KindElementwise: "elementwise",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"oversized footprint", func() *Graph {
			g := &Graph{}
			grp := validGroup("a", 1)
			grp.Rows = 300
			grp.UsefulWeights = 300 * 8
			g.AddGroup(grp)
			return g
		}},
		{"zero reuse", func() *Graph {
			g := &Graph{}
			g.AddGroup(validGroup("a", 0))
			return g
		}},
		{"forward dep", func() *Graph {
			g := &Graph{}
			g.AddGroup(validGroup("a", 1, 1))
			g.AddGroup(validGroup("b", 1))
			return g
		}},
		{"dep out of range", func() *Graph {
			g := &Graph{}
			g.AddGroup(validGroup("a", 1, 5))
			return g
		}},
		{"useful exceeds footprint", func() *Graph {
			g := &Graph{}
			grp := validGroup("a", 1)
			grp.UsefulWeights = 1000
			g.AddGroup(grp)
			return g
		}},
		{"weight shape mismatch", func() *Graph {
			g := &Graph{}
			grp := validGroup("a", 1)
			grp.Weights = [][]int{{1}}
			g.AddGroup(grp)
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.build().Validate(256, 256); err == nil {
				t.Error("defect not caught")
			}
		})
	}
}

func TestValidateAcceptsGoodGraph(t *testing.T) {
	g := &Graph{}
	a := g.AddGroup(validGroup("a", 4))
	g.AddGroup(validGroup("b", 2, a.ID))
	if err := g.Validate(256, 256); err != nil {
		t.Error(err)
	}
}

func TestFootprint(t *testing.T) {
	grp := validGroup("a", 1)
	if grp.Footprint() != 64 {
		t.Errorf("Footprint = %d", grp.Footprint())
	}
	if grp.PEsForWeights() != 1 {
		t.Errorf("PEsForWeights = %d", grp.PEsForWeights())
	}
}
