// Package smb models FPSA's spiking memory block (paper §4.3): an SRAM
// buffer that stores spike *counts* rather than spike trains, with embedded
// counters (train → count on write) and spike generators (count → evenly
// spaced train on read). Storing counts is what makes on-chip buffering
// affordable: an n-bit count replaces a 2^n-cycle train.
//
// The internal memory is bit-indexed so any power-of-two sampling window
// fits: with window Γ = 2^n, counts are stored n bits by n bits, so a full
// window count of Γ saturates to Γ−1 (the usual fixed-point convention).
// SRAM is used rather than ReRAM because buffer traffic would exhaust
// ReRAM's ~1e12 write endurance.
package smb

import (
	"fmt"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

// SMB is one spiking memory block instance.
type SMB struct {
	params device.Params
	window int
	bits   []bool
	writes int64 // lifetime write counter (endurance accounting)
}

// New returns an SMB configured for the given sampling window, which must
// be a power of two (bit indexing, §4.3).
func New(params device.Params, window int) (*SMB, error) {
	if !spike.IsPow2(window) {
		return nil, fmt.Errorf("smb: window %d is not a power of two", window)
	}
	return &SMB{
		params: params,
		window: window,
		bits:   make([]bool, params.SMBCapacityBits),
	}, nil
}

// CountBits returns the per-count storage width n = log2(Γ).
func (s *SMB) CountBits() int {
	n := 0
	for w := s.window; w > 1; w >>= 1 {
		n++
	}
	return n
}

// Slots returns how many counts the block can hold at the current window.
func (s *SMB) Slots() int { return len(s.bits) / s.CountBits() }

// Window returns the configured sampling window Γ.
func (s *SMB) Window() int { return s.window }

// Writes returns the lifetime number of count writes (endurance metric).
func (s *SMB) Writes() int64 { return s.writes }

// WriteCount stores a spike count in a slot. Counts clamp to [0, Γ−1].
func (s *SMB) WriteCount(slot, count int) error {
	n := s.CountBits()
	if slot < 0 || slot >= s.Slots() {
		return fmt.Errorf("smb: slot %d out of range [0,%d)", slot, s.Slots())
	}
	count = spike.Clamp(count, s.window-1)
	base := slot * n
	for b := 0; b < n; b++ {
		s.bits[base+b] = count&(1<<uint(b)) != 0
	}
	s.writes++
	return nil
}

// ReadCount loads a stored spike count.
func (s *SMB) ReadCount(slot int) (int, error) {
	n := s.CountBits()
	if slot < 0 || slot >= s.Slots() {
		return 0, fmt.Errorf("smb: slot %d out of range [0,%d)", slot, s.Slots())
	}
	base := slot * n
	count := 0
	for b := 0; b < n; b++ {
		if s.bits[base+b] {
			count |= 1 << uint(b)
		}
	}
	return count, nil
}

// ReceiveTrain is the embedded counter: it counts the spikes of an incoming
// train and stores the count.
func (s *SMB) ReceiveTrain(slot int, tr spike.Train) error {
	if tr.Window() != s.window {
		return fmt.Errorf("smb: train window %d, block window %d", tr.Window(), s.window)
	}
	return s.WriteCount(slot, tr.Count())
}

// EmitTrain is the embedded spike generator: it decodes a stored count back
// into an evenly spaced spike train.
func (s *SMB) EmitTrain(slot int) (spike.Train, error) {
	count, err := s.ReadCount(slot)
	if err != nil {
		return nil, err
	}
	return spike.UniformTrain(count, s.window), nil
}

// Cost returns the published 16 Kb SMB cost triple.
func (s *SMB) Cost() device.BlockCost { return s.params.SMB }

// SlotsNeeded returns how many count slots a signal bundle of the given
// width needs; BlocksNeeded converts that into SMB instances for a given
// window — the sizing rule the mapper uses when it inserts buffers.
func SlotsNeeded(signals int) int { return signals }

// BlocksNeeded returns the number of 16 Kb SMBs required to buffer the
// given number of count signals at the given window.
func BlocksNeeded(params device.Params, signals, window int) int {
	if signals <= 0 {
		return 0
	}
	n := 0
	for w := window; w > 1; w >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	perBlock := params.SMBCapacityBits / n
	return (signals + perBlock - 1) / perBlock
}
