package smb

import (
	"testing"
	"testing/quick"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

func newSMB(t *testing.T, window int) *SMB {
	t.Helper()
	s, err := New(device.Params45nm, window)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsNonPow2(t *testing.T) {
	if _, err := New(device.Params45nm, 60); err == nil {
		t.Error("window 60 accepted")
	}
	if _, err := New(device.Params45nm, 0); err == nil {
		t.Error("window 0 accepted")
	}
}

func TestCountBitsAndSlots(t *testing.T) {
	s := newSMB(t, 64)
	if got := s.CountBits(); got != 6 {
		t.Errorf("CountBits = %d, want 6", got)
	}
	// 16 Kb / 6 bits = 2730 counts: enough for more than ten 256-wide PE
	// output vectors.
	if got := s.Slots(); got != 16*1024/6 {
		t.Errorf("Slots = %d, want %d", got, 16*1024/6)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newSMB(t, 64)
	for c := 0; c < 64; c++ {
		if err := s.WriteCount(c, c); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 64; c++ {
		got, err := s.ReadCount(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Errorf("slot %d: read %d", c, got)
		}
	}
}

func TestWriteCountClampsToWindowMinusOne(t *testing.T) {
	s := newSMB(t, 64)
	if err := s.WriteCount(0, 64); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 63 {
		t.Errorf("full-scale count stored as %d, want 63 (n-bit saturation)", got)
	}
}

func TestSlotBounds(t *testing.T) {
	s := newSMB(t, 64)
	if err := s.WriteCount(-1, 0); err == nil {
		t.Error("negative slot accepted")
	}
	if err := s.WriteCount(s.Slots(), 0); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := s.ReadCount(s.Slots()); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestTrainRoundTrip(t *testing.T) {
	s := newSMB(t, 64)
	for count := 0; count < 64; count++ {
		in := spike.UniformTrain(count, 64)
		if err := s.ReceiveTrain(5, in); err != nil {
			t.Fatal(err)
		}
		out, err := s.EmitTrain(5)
		if err != nil {
			t.Fatal(err)
		}
		if out.Count() != count {
			t.Errorf("count %d round-tripped to %d", count, out.Count())
		}
	}
}

func TestReceiveTrainWindowMismatch(t *testing.T) {
	s := newSMB(t, 64)
	if err := s.ReceiveTrain(0, spike.NewTrain(32)); err == nil {
		t.Error("mismatched window accepted")
	}
}

func TestWritesCounter(t *testing.T) {
	s := newSMB(t, 64)
	for i := 0; i < 10; i++ {
		if err := s.WriteCount(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Writes(); got != 10 {
		t.Errorf("Writes = %d, want 10", got)
	}
}

func TestBlocksNeeded(t *testing.T) {
	p := device.Params45nm
	cases := []struct {
		signals, window, want int
	}{
		{0, 64, 0},
		{1, 64, 1},
		{2730, 64, 1}, // exactly one block's worth at 6 bits
		{2731, 64, 2}, // one over
		{256, 64, 1},  // a PE output vector
		{16384, 2, 1}, // 1-bit counts fill the full 16 Kb
		{16385, 2, 2},
	}
	for _, tc := range cases {
		if got := BlocksNeeded(p, tc.signals, tc.window); got != tc.want {
			t.Errorf("BlocksNeeded(%d,%d) = %d, want %d", tc.signals, tc.window, got, tc.want)
		}
	}
}

func TestQuickRoundTripArbitraryWindows(t *testing.T) {
	f := func(raw uint16, wsel uint8) bool {
		window := 1 << (2 + wsel%7) // 4..256
		s, err := New(device.Params45nm, window)
		if err != nil {
			return false
		}
		count := int(raw) % window // storable range is [0, Γ−1]
		slot := int(raw) % s.Slots()
		if err := s.WriteCount(slot, count); err != nil {
			return false
		}
		got, err := s.ReadCount(slot)
		return err == nil && got == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacentSlotsDoNotInterfere(t *testing.T) {
	s := newSMB(t, 64)
	if err := s.WriteCount(0, 63); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCount(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCount(2, 42); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadCount(0); got != 63 {
		t.Errorf("slot 0 = %d, want 63", got)
	}
	if got, _ := s.ReadCount(1); got != 0 {
		t.Errorf("slot 1 = %d, want 0", got)
	}
	if got, _ := s.ReadCount(2); got != 42 {
		t.Errorf("slot 2 = %d, want 42", got)
	}
}
