package bitstream

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
	"fpsa/internal/place"
	"fpsa/internal/route"
)

// routedFixture builds, places and routes a small random netlist.
func routedFixture(t *testing.T, seed int64, blocks, nets, maxSignals int) (*netlist.Netlist, *place.Placement, *route.Result, fabric.Chip) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := &netlist.Netlist{Name: "fixture"}
	for i := 0; i < blocks; i++ {
		nl.AddBlock(netlist.BlockPE, "b", i, 0)
	}
	for i := 0; i < nets; i++ {
		src := rng.Intn(blocks)
		sink := rng.Intn(blocks)
		for sink == src {
			sink = rng.Intn(blocks)
		}
		sinks := []int{sink}
		if rng.Intn(3) == 0 {
			extra := rng.Intn(blocks)
			if extra != src && extra != sink {
				sinks = append(sinks, extra)
			}
		}
		nl.AddNet(src, sinks, 1+rng.Intn(maxSignals))
	}
	chip, err := fabric.SizeFor(blocks, 256, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := place.Anneal(context.Background(), nl, chip, rng, place.Options{MovesPerTemp: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(context.Background(), nl, pl, chip, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fixture routing did not converge")
	}
	return nl, pl, res, chip
}

func TestGenerateAndVerify(t *testing.T) {
	nl, pl, res, chip := routedFixture(t, 21, 24, 30, 16)
	cfg, err := Generate(nl, pl, res, chip)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CellCount() == 0 {
		t.Fatal("empty configuration")
	}
	if err := cfg.Verify(nl); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if occ := cfg.TrackOccupancy(); occ > chip.Tracks {
		t.Errorf("occupancy %d exceeds %d tracks", occ, chip.Tracks)
	}
}

func TestGenerateRejectsUnconverged(t *testing.T) {
	nl, pl, res, chip := routedFixture(t, 22, 8, 6, 4)
	res.Converged = false
	if _, err := Generate(nl, pl, res, chip); err == nil {
		t.Error("unconverged routing accepted")
	}
}

func TestVerifyDetectsCorruptedSwitch(t *testing.T) {
	nl, pl, res, chip := routedFixture(t, 23, 24, 30, 8)
	cfg, err := Generate(nl, pl, res, chip)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SBCells) == 0 {
		t.Skip("no SB hops in this fixture")
	}
	// Clearing any switch cell must break a signal path (fault
	// injection: a stuck-high-resistance ReRAM switch).
	cfg.CorruptSBCell(len(cfg.SBCells) / 2)
	err = cfg.Verify(nl)
	if err == nil {
		t.Fatal("corrupted configuration verified clean")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Logf("corruption surfaced as: %v", err)
	}
}

func TestVerifyDetectsForeignTrackSwitch(t *testing.T) {
	// A misprogrammed SB cell reaching into an unowned (or foreign)
	// track must fail verification — the electrical-shorts class of
	// configuration bugs.
	nl, pl, res, chip := routedFixture(t, 24, 16, 16, 4)
	cfg, err := Generate(nl, pl, res, chip)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SBCells) == 0 {
		t.Skip("no SB cells in fixture")
	}
	cfg.SBCells[0].TrackA = cfg.Chip.Tracks - 1 // last track: free in this small fixture
	if err := cfg.Verify(nl); err == nil {
		t.Error("foreign-track SB cell verified clean")
	}
}

func TestCellCountScalesWithSignals(t *testing.T) {
	nlA, plA, resA, chipA := routedFixture(t, 25, 12, 10, 2)
	cfgA, err := Generate(nlA, plA, resA, chipA)
	if err != nil {
		t.Fatal(err)
	}
	nlB, plB, resB, chipB := routedFixture(t, 25, 12, 10, 32)
	cfgB, err := Generate(nlB, plB, resB, chipB)
	if err != nil {
		t.Fatal(err)
	}
	if cfgB.CellCount() <= cfgA.CellCount() {
		t.Errorf("wider buses did not grow the configuration: %d vs %d", cfgA.CellCount(), cfgB.CellCount())
	}
}
