// Package bitstream generates the FPSA Configuration — the final artifact
// of the paper's system stack (Figure 5: Placement & Routing → FPSA
// Configuration). The configuration is the set of programmed ReRAM cells
// in the mrFPGA routing layer: switch-box cells joining channel tracks of
// adjacent segments, and connection-box cells attaching block pins to
// channel tracks (paper §4.1: "the connections in SBs and CBs are decided
// by the resistance of the ReRAM cells ... low resistance is a pass").
//
// Because mrFPGA switch boxes are themselves ReRAM crossbars, any track
// can connect to any track, so track assignment is per-channel first-fit.
// The package also provides an independent Verify that interprets only
// the programmed cells — reconstructing per-signal electrical paths — to
// prove each net's source reaches every sink with no shorts between nets.
package bitstream

import (
	"fmt"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
	"fpsa/internal/place"
	"fpsa/internal/route"
)

// SBCell is one programmed switch-box ReRAM cell: it joins track ta of
// channel node a with track tb of channel node b for one signal.
type SBCell struct {
	NodeA, TrackA int
	NodeB, TrackB int
	Net, Signal   int
}

// CBCell is one programmed connection-box ReRAM cell: it attaches a block
// pin (net signal) to a channel-node track at the block's site.
type CBCell struct {
	Block       int
	Node, Track int
	Net, Signal int
	Source      bool // true: block drives the track; false: block listens
}

// Config is the complete chip configuration for one routed netlist.
type Config struct {
	Chip    fabric.Chip
	Nets    int
	SBCells []SBCell
	CBCells []CBCell
	// tracks[node][track] = net index + 1 (0 = free); retained for
	// verification and occupancy stats.
	tracks [][]int32
}

// Generate programs the fabric for a converged routing result.
func Generate(nl *netlist.Netlist, pl *place.Placement, res *route.Result, chip fabric.Chip) (*Config, error) {
	if !res.Converged {
		return nil, fmt.Errorf("bitstream: routing did not converge; no legal configuration exists at %d tracks", chip.Tracks)
	}
	nodes := 2 * chip.W * chip.H
	cfg := &Config{Chip: chip, Nets: len(nl.Nets), tracks: make([][]int32, nodes)}
	for i := range cfg.tracks {
		cfg.tracks[i] = make([]int32, chip.Tracks)
	}
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		// Assign `signals` tracks on every tree node, first-fit.
		assigned := make(map[int][]int, len(res.NetRoutes[ni]))
		for _, node := range res.NetRoutes[ni] {
			picks := make([]int, 0, net.Signals)
			for t := 0; t < chip.Tracks && len(picks) < net.Signals; t++ {
				if cfg.tracks[node][t] == 0 {
					cfg.tracks[node][t] = int32(ni + 1)
					picks = append(picks, t)
				}
			}
			if len(picks) < net.Signals {
				return nil, fmt.Errorf("bitstream: net %d needs %d tracks on node %d, found %d free",
					ni, net.Signals, node, len(picks))
			}
			assigned[node] = picks
		}
		// Switch-box cells along every tree hop, one per signal.
		for _, e := range res.NetEdges[ni] {
			ta, tb := assigned[e.A], assigned[e.B]
			for s := 0; s < net.Signals; s++ {
				cfg.SBCells = append(cfg.SBCells, SBCell{
					NodeA: e.A, TrackA: ta[s],
					NodeB: e.B, TrackB: tb[s],
					Net: ni, Signal: s,
				})
			}
		}
		// Connection-box cells: the source block drives the tree nodes
		// at its own site; each sink block listens on one tree node at
		// its site.
		srcSite := pl.Pos[net.Src]
		srcDone := false
		for _, node := range res.NetRoutes[ni] {
			if _, s := route.NodeSite(chip, node); s == srcSite {
				for k, t := range assigned[node] {
					cfg.CBCells = append(cfg.CBCells, CBCell{
						Block: net.Src, Node: node, Track: t, Net: ni, Signal: k, Source: true,
					})
				}
				srcDone = true
			}
		}
		if !srcDone {
			return nil, fmt.Errorf("bitstream: net %d has no tree node at its source site", ni)
		}
		for _, sink := range net.Sinks {
			site := pl.Pos[sink]
			attached := false
			for _, node := range res.NetRoutes[ni] {
				if _, s := route.NodeSite(chip, node); s == site {
					for k, t := range assigned[node] {
						cfg.CBCells = append(cfg.CBCells, CBCell{
							Block: sink, Node: node, Track: t, Net: ni, Signal: k, Source: false,
						})
					}
					attached = true
					break
				}
			}
			if !attached {
				return nil, fmt.Errorf("bitstream: net %d has no tree node at sink block %d's site", ni, sink)
			}
		}
	}
	return cfg, nil
}

// CellCount returns the number of programmed (low-resistance) ReRAM cells
// — the configuration's size.
func (c *Config) CellCount() int { return len(c.SBCells) + len(c.CBCells) }

// TrackOccupancy returns the busiest channel's used-track count.
func (c *Config) TrackOccupancy() int {
	max := 0
	for _, node := range c.tracks {
		used := 0
		for _, t := range node {
			if t != 0 {
				used++
			}
		}
		if used > max {
			max = used
		}
	}
	return max
}

// Verify interprets the programmed cells only — no routing data — and
// checks electrical correctness:
//
//  1. no two nets share a (channel node, track) — no shorts;
//  2. for every net, every listening CB cell is reachable from a driving
//     CB cell through programmed SB cells (per-net connectivity);
//  3. every net has at least one driver and the expected listener count.
func (c *Config) Verify(nl *netlist.Netlist) error {
	type slot struct{ node, track int }
	owner := make(map[slot]int)
	for node, tracks := range c.tracks {
		for t, netPlus := range tracks {
			if netPlus == 0 {
				continue
			}
			s := slot{node, t}
			if prev, ok := owner[s]; ok && prev != int(netPlus-1) {
				return fmt.Errorf("bitstream: short at node %d track %d", node, t)
			}
			owner[s] = int(netPlus - 1)
		}
	}
	// own reports a slot's net, or −1 when the slot is unprogrammed.
	own := func(s slot) int {
		if o, ok := owner[s]; ok {
			return o
		}
		return -1
	}
	// Per-net union-find over slots, seeded by SB cells; all driver
	// slots of a net are additionally merged (they share the source
	// block's output pin through its CB).
	parent := make(map[slot]slot)
	var find func(s slot) slot
	find = func(s slot) slot {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b slot) { parent[find(a)] = find(b) }
	for _, cell := range c.SBCells {
		if got := own(slot{cell.NodeA, cell.TrackA}); got != cell.Net {
			return fmt.Errorf("bitstream: SB cell of net %d drives foreign track (owner %d)", cell.Net, got)
		}
		if got := own(slot{cell.NodeB, cell.TrackB}); got != cell.Net {
			return fmt.Errorf("bitstream: SB cell of net %d reaches foreign track (owner %d)", cell.Net, got)
		}
		union(slot{cell.NodeA, cell.TrackA}, slot{cell.NodeB, cell.TrackB})
	}
	drivers := make(map[int][]slot)
	listeners := make(map[int][]slot)
	for _, cell := range c.CBCells {
		s := slot{cell.Node, cell.Track}
		if got := own(s); got != cell.Net {
			return fmt.Errorf("bitstream: CB cell of net %d attached to foreign track (owner %d)", cell.Net, got)
		}
		if cell.Source {
			drivers[cell.Net] = append(drivers[cell.Net], s)
		} else {
			listeners[cell.Net] = append(listeners[cell.Net], s)
		}
	}
	for ni := range nl.Nets {
		ds := drivers[ni]
		if len(ds) == 0 {
			return fmt.Errorf("bitstream: net %d has no driver", ni)
		}
		for _, d := range ds[1:] {
			union(ds[0], d) // joined at the source block's pins
		}
		want := len(nl.Nets[ni].Sinks) * nl.Nets[ni].Signals
		if got := len(listeners[ni]); got != want {
			return fmt.Errorf("bitstream: net %d has %d listener cells, want %d", ni, got, want)
		}
		root := find(ds[0])
		for _, l := range listeners[ni] {
			if find(l) != root {
				return fmt.Errorf("bitstream: net %d listener at node %d track %d unreachable from source",
					ni, l.node, l.track)
			}
		}
	}
	return nil
}

// CorruptSBCell clears one programmed switch cell (fault-injection tests).
func (c *Config) CorruptSBCell(i int) {
	if i >= 0 && i < len(c.SBCells) {
		c.SBCells = append(c.SBCells[:i], c.SBCells[i+1:]...)
	}
}
