package experiments

import (
	"fmt"
	"math"
	"strings"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/perf"
	"fpsa/internal/synth"
)

// CurvePoint is one (area, performance) sample of a perf-vs-area curve.
type CurvePoint struct {
	Dup     int
	AreaMM2 float64
	OPS     float64
}

// Sweep holds one architecture's peak/ideal/real curves over a duplication
// sweep (the Figure 2 and Figure 6 series).
type Sweep struct {
	Target perf.Target
	Peak   []CurvePoint
	Ideal  []CurvePoint
	Real   []CurvePoint
}

// DefaultSweepDups is the duplication sweep used by Figures 2 and 6.
var DefaultSweepDups = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// sweepTarget evaluates one architecture over the duplication sweep.
func sweepTarget(g *cgraph.Graph, co *coreop.Graph, dups []int, target perf.Target) (Sweep, error) {
	s := Sweep{Target: target}
	for _, d := range dups {
		r, err := perf.Evaluate(perf.Input{
			Model: g, CoreOps: co, Params: device.Params45nm, Dup: d,
		}, target)
		if err != nil {
			return Sweep{}, err
		}
		s.Peak = append(s.Peak, CurvePoint{Dup: d, AreaMM2: r.AreaMM2, OPS: r.PeakOPS})
		s.Ideal = append(s.Ideal, CurvePoint{Dup: d, AreaMM2: r.AreaMM2, OPS: r.TemporalBoundOPS})
		s.Real = append(s.Real, CurvePoint{Dup: d, AreaMM2: r.AreaMM2, OPS: r.PerfOPS})
	}
	return s, nil
}

// Figure2Result is PRIME's perf-vs-area study for VGG16.
type Figure2Result struct {
	Model string
	PRIME Sweep
}

// Figure2 reproduces the motivation study: PRIME's real performance is
// communication-bound, far below its ideal curve.
func Figure2(dups []int) (Figure2Result, error) {
	if len(dups) == 0 {
		dups = DefaultSweepDups
	}
	g, err := models.ByName(models.NameVGG16)
	if err != nil {
		return Figure2Result{}, err
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		return Figure2Result{}, err
	}
	s, err := sweepTarget(g, co, dups, perf.TargetPRIME)
	if err != nil {
		return Figure2Result{}, err
	}
	return Figure2Result{Model: models.NameVGG16, PRIME: s}, nil
}

// RenderFigure2 renders the series.
func RenderFigure2(r Figure2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: PRIME performance vs area, %s\n", r.Model)
	fmt.Fprintf(&b, "%6s %12s %14s %14s %14s\n", "dup", "Area/mm2", "Peak/OPS", "Ideal/OPS", "Real/OPS")
	for i := range r.PRIME.Peak {
		fmt.Fprintf(&b, "%6d %12.2f %14.4g %14.4g %14.4g\n",
			r.PRIME.Peak[i].Dup, r.PRIME.Peak[i].AreaMM2,
			r.PRIME.Peak[i].OPS, r.PRIME.Ideal[i].OPS, r.PRIME.Real[i].OPS)
	}
	last := len(r.PRIME.Real) - 1
	fmt.Fprintf(&b, "communication gap at largest area: ideal/real = %.1fx\n",
		r.PRIME.Ideal[last].OPS/r.PRIME.Real[last].OPS)
	return b.String()
}

// Figure6Result compares PRIME, FP-PRIME and FPSA for VGG16.
type Figure6Result struct {
	Model   string
	PRIME   Sweep
	FPPRIME Sweep
	FPSA    Sweep
	// SpeedupAtMatchedArea is FPSA's real performance over PRIME's real
	// performance where their area curves overlap most closely at the
	// high end (the paper's "up to 1000×" claim).
	SpeedupAtMatchedArea float64
}

// Figure6 reproduces the three-way comparison.
func Figure6(dups []int) (Figure6Result, error) {
	if len(dups) == 0 {
		dups = DefaultSweepDups
	}
	g, err := models.ByName(models.NameVGG16)
	if err != nil {
		return Figure6Result{}, err
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		return Figure6Result{}, err
	}
	res := Figure6Result{Model: models.NameVGG16}
	if res.PRIME, err = sweepTarget(g, co, dups, perf.TargetPRIME); err != nil {
		return Figure6Result{}, err
	}
	if res.FPPRIME, err = sweepTarget(g, co, dups, perf.TargetFPPRIME); err != nil {
		return Figure6Result{}, err
	}
	if res.FPSA, err = sweepTarget(g, co, dups, perf.TargetFPSA); err != nil {
		return Figure6Result{}, err
	}
	res.SpeedupAtMatchedArea = matchedAreaSpeedup(res.FPSA.Real, res.PRIME.Real)
	return res, nil
}

// matchedAreaSpeedup compares the best FPSA point against PRIME's real
// performance interpolated at the same area (PRIME saturates, so the
// nearest-not-smaller-area point is a fair stand-in).
func matchedAreaSpeedup(fpsa, prim []CurvePoint) float64 {
	best := 0.0
	for _, f := range fpsa {
		// Find PRIME's real performance at ≥ this area.
		var p *CurvePoint
		for i := range prim {
			if prim[i].AreaMM2 >= f.AreaMM2 {
				p = &prim[i]
				break
			}
		}
		if p == nil {
			p = &prim[len(prim)-1]
		}
		if s := f.OPS / p.OPS; s > best {
			best = s
		}
	}
	return best
}

// RenderFigure6 renders the series.
func RenderFigure6(r Figure6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: PRIME vs FP-PRIME vs FPSA, %s\n", r.Model)
	fmt.Fprintf(&b, "%6s | %10s %12s | %10s %12s | %10s %12s\n", "dup",
		"PRIME/mm2", "real/OPS", "FPP/mm2", "real/OPS", "FPSA/mm2", "real/OPS")
	for i := range r.PRIME.Real {
		fmt.Fprintf(&b, "%6d | %10.1f %12.4g | %10.1f %12.4g | %10.1f %12.4g\n",
			r.PRIME.Real[i].Dup,
			r.PRIME.Real[i].AreaMM2, r.PRIME.Real[i].OPS,
			r.FPPRIME.Real[i].AreaMM2, r.FPPRIME.Real[i].OPS,
			r.FPSA.Real[i].AreaMM2, r.FPSA.Real[i].OPS)
	}
	fmt.Fprintf(&b, "max FPSA speedup over PRIME at matched area: %.0fx (paper: up to 1000x)\n",
		r.SpeedupAtMatchedArea)
	return b.String()
}

// Figure7Row is one architecture's per-PE latency breakdown for VGG16.
type Figure7Row struct {
	Target perf.Target
	CompNS float64
	CommNS float64
}

// Figure7 reproduces the latency-breakdown bars at the 64× evaluation
// configuration.
func Figure7() ([]Figure7Row, error) {
	g, err := models.ByName(models.NameVGG16)
	if err != nil {
		return nil, err
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		return nil, err
	}
	var rows []Figure7Row
	for _, target := range []perf.Target{perf.TargetPRIME, perf.TargetFPPRIME, perf.TargetFPSA} {
		r, err := perf.Evaluate(perf.Input{
			Model: g, CoreOps: co, Params: device.Params45nm, Dup: 64,
		}, target)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure7Row{Target: target, CompNS: r.CompNSPerVMM, CommNS: r.CommNSPerVMM})
	}
	return rows, nil
}

// RenderFigure7 renders the bars.
func RenderFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: per-PE latency breakdown, VGG16\n")
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "", "Computation/ns", "Communication/ns")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %16.1f %16.1f\n", r.Target, r.CompNS, r.CommNS)
	}
	return b.String()
}

// Figure8Row is one (model, duplication) sample of the scalability study.
type Figure8Row struct {
	Model                string
	Dup                  int
	PerfOPS              float64
	AreaMM2              float64
	DensityOPSmm2        float64
	PeakDensity          float64
	SpatialBoundDensity  float64
	TemporalBoundDensity float64
}

// Figure8Dups is the paper's duplication ladder.
var Figure8Dups = []int{1, 4, 16, 64}

// Figure8 reproduces the scalability/utilization study over all benchmark
// models.
func Figure8(dups []int) ([]Figure8Row, error) {
	if len(dups) == 0 {
		dups = Figure8Dups
	}
	var rows []Figure8Row
	for _, name := range models.Names() {
		g, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		co, err := synth.Synthesize(g, synth.DefaultOptions())
		if err != nil {
			return nil, err
		}
		for _, d := range dups {
			r, err := perf.Evaluate(perf.Input{
				Model: g, CoreOps: co, Params: device.Params45nm, Dup: d,
			}, perf.TargetFPSA)
			if err != nil {
				return nil, err
			}
			row := Figure8Row{
				Model: name, Dup: d,
				PerfOPS: r.PerfOPS, AreaMM2: r.AreaMM2, DensityOPSmm2: r.DensityOPSmm2,
			}
			if r.AreaMM2 > 0 {
				row.PeakDensity = r.PeakOPS / r.AreaMM2
				row.SpatialBoundDensity = r.SpatialBoundOPS / r.AreaMM2
				row.TemporalBoundDensity = r.TemporalBoundOPS / r.AreaMM2
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure8Geomeans summarizes the paper's headline: geometric-mean
// performance and area growth at each duplication degree relative to 1×.
func Figure8Geomeans(rows []Figure8Row, dups []int) (perfGain, areaGain map[int]float64) {
	base := make(map[string]Figure8Row)
	for _, r := range rows {
		if r.Dup == 1 {
			base[r.Model] = r
		}
	}
	perfGain = make(map[int]float64)
	areaGain = make(map[int]float64)
	for _, d := range dups {
		if d == 1 {
			continue
		}
		pProd, aProd, n := 1.0, 1.0, 0
		for _, r := range rows {
			if r.Dup != d {
				continue
			}
			b := base[r.Model]
			pProd *= r.PerfOPS / b.PerfOPS
			aProd *= r.AreaMM2 / b.AreaMM2
			n++
		}
		if n > 0 {
			perfGain[d] = pow(pProd, 1/float64(n))
			areaGain[d] = pow(aProd, 1/float64(n))
		}
	}
	return perfGain, areaGain
}

// RenderFigure8 renders the study.
func RenderFigure8(rows []Figure8Row, dups []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: scalability and utilization bounds (FPSA)\n")
	fmt.Fprintf(&b, "%-14s %5s %12s %10s %13s %13s %13s %13s\n",
		"Model", "dup", "Perf/OPS", "Area/mm2", "Dens", "Peak", "SpatialBnd", "TemporalBnd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %5d %12.4g %10.2f %13.4g %13.4g %13.4g %13.4g\n",
			r.Model, r.Dup, r.PerfOPS, r.AreaMM2, r.DensityOPSmm2,
			r.PeakDensity, r.SpatialBoundDensity, r.TemporalBoundDensity)
	}
	perfGain, areaGain := Figure8Geomeans(rows, dups)
	for _, d := range dups {
		if d == 1 {
			continue
		}
		fmt.Fprintf(&b, "geomean @%dx: perf %.2fx, area %.2fx\n", d, perfGain[d], areaGain[d])
	}
	fmt.Fprintf(&b, "(paper geomeans: perf 3.06/10.88/38.65x, area 1.25/1.85/3.73x at 4/16/64x)\n")
	return b.String()
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}
