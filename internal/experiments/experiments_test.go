package experiments

import (
	"math"
	"strings"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/perf"
)

func TestTable1MatchesPublished(t *testing.T) {
	rows := Table1(device.Params45nm)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[0].AreaUM2 != 22051.414 {
		t.Errorf("PE area = %v, want 22051.414", rows[0].AreaUM2)
	}
	if rows[0].LatencyNS != 2.443 {
		t.Errorf("PE latency = %v, want 2.443", rows[0].LatencyNS)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"PE (256x256)", "SMB (16Kb)", "5998.272"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2HeadlineNumbers(t *testing.T) {
	r := Table2(device.Params45nm)
	if math.Abs(r.AreaReductionPct-(-36.63)) > 0.05 {
		t.Errorf("area reduction = %.2f%%, paper −36.63%%", r.AreaReductionPct)
	}
	if math.Abs(r.LatencyReductPct-(-94.90)) > 0.05 {
		t.Errorf("latency reduction = %.2f%%, paper −94.90%%", r.LatencyReductPct)
	}
	if math.Abs(r.DensityGain-30.92) > 0.1 {
		t.Errorf("density gain = %.2fx, paper 30.92x", r.DensityGain)
	}
	if r.FPSADensity < r.PipeLayerDensity || r.FPSADensity < r.ISAACDensity {
		t.Error("FPSA density not above PipeLayer/ISAAC")
	}
}

func TestTable3ShapesMatchPaper(t *testing.T) {
	rows, err := Table3(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byModel := make(map[string]Table3Row)
	for _, r := range rows {
		byModel[r.Model] = r
	}
	// VGG16 anchors (paper: 2.4K samples/s, 671.8 µs, 68.09 mm²): hold
	// within ~2× — the shape contract.
	vgg := byModel["VGG16"]
	checkWithin(t, "VGG16 throughput", vgg.ThroughputSPS, 2400, 2)
	checkWithin(t, "VGG16 latency", vgg.LatencyUS, 671.8, 2)
	checkWithin(t, "VGG16 area", vgg.AreaMM2, 68.09, 2)
	// MLP anchors (paper: 129.7M samples/s, 28.23 mm²): within 3×.
	mlp := byModel["MLP-500-100"]
	checkWithin(t, "MLP throughput", mlp.ThroughputSPS, 129.7e6, 3)
	checkWithin(t, "MLP area", mlp.AreaMM2, 28.23, 3)
	// Ordering: MLP is the fastest; VGG16 the slowest (throughput).
	for _, r := range rows {
		if r.Model != "MLP-500-100" && r.ThroughputSPS > mlp.ThroughputSPS {
			t.Errorf("%s throughput %v exceeds MLP %v", r.Model, r.ThroughputSPS, mlp.ThroughputSPS)
		}
		if r.Model != "VGG16" && r.ThroughputSPS < vgg.ThroughputSPS {
			t.Errorf("%s throughput %v below VGG16 %v", r.Model, r.ThroughputSPS, vgg.ThroughputSPS)
		}
	}
}

func checkWithin(t *testing.T, what string, got, want, factor float64) {
	t.Helper()
	if got > want*factor || got < want/factor {
		t.Errorf("%s = %.4g, paper %.4g (outside %gx band)", what, got, want, factor)
	}
}

func TestFigure2CommunicationBound(t *testing.T) {
	r, err := Figure2(nil)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.PRIME.Real) - 1
	// The real curve must saturate: two orders of magnitude below ideal
	// at the largest area (paper: "two orders of magnitude lower").
	gap := r.PRIME.Ideal[last].OPS / r.PRIME.Real[last].OPS
	if gap < 30 {
		t.Errorf("ideal/real gap = %.1fx, want ≥30 (paper ~100x)", gap)
	}
	// Peak ≥ ideal ≥ real pointwise.
	for i := range r.PRIME.Peak {
		if r.PRIME.Ideal[i].OPS > r.PRIME.Peak[i].OPS*1.001 || r.PRIME.Real[i].OPS > r.PRIME.Ideal[i].OPS*1.001 {
			t.Errorf("point %d: bound ordering violated", i)
		}
	}
	// Real performance grows sub-2x over the last two sweep doublings
	// (the plateau).
	n := len(r.PRIME.Real)
	if growth := r.PRIME.Real[n-1].OPS / r.PRIME.Real[n-3].OPS; growth > 2 {
		t.Errorf("real curve still growing %.2fx over last two doublings", growth)
	}
}

func TestFigure6SpeedupClaim(t *testing.T) {
	r, err := Figure6(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: up to 1000×. Hold the order of magnitude: [300, 5000].
	if r.SpeedupAtMatchedArea < 300 || r.SpeedupAtMatchedArea > 5000 {
		t.Errorf("matched-area speedup = %.0fx, want ~1000x", r.SpeedupAtMatchedArea)
	}
	// FP-PRIME must sit close to its ideal curve (communication bound
	// broken by the routing architecture alone).
	for i := range r.FPPRIME.Real {
		if r.FPPRIME.Real[i].OPS < 0.8*r.FPPRIME.Ideal[i].OPS {
			t.Errorf("FP-PRIME point %d: real %.3g far from ideal %.3g",
				i, r.FPPRIME.Real[i].OPS, r.FPPRIME.Ideal[i].OPS)
		}
	}
	t.Logf("max FPSA/PRIME speedup at matched area: %.0fx", r.SpeedupAtMatchedArea)
}

func TestFigure7Bars(t *testing.T) {
	rows, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTarget := make(map[perf.Target]Figure7Row)
	for _, r := range rows {
		byTarget[r.Target] = r
	}
	// PRIME communication dominates computation; FPSA communication is
	// within an order of magnitude of computation; FP-PRIME negligible.
	if p := byTarget[perf.TargetPRIME]; p.CommNS < p.CompNS {
		t.Errorf("PRIME comm %v not dominating comp %v", p.CommNS, p.CompNS)
	}
	if f := byTarget[perf.TargetFPPRIME]; f.CommNS > 0.05*f.CompNS {
		t.Errorf("FP-PRIME comm %v not negligible vs comp %v", f.CommNS, f.CompNS)
	}
	fpsa := byTarget[perf.TargetFPSA]
	if math.Abs(fpsa.CompNS-156.4) > 1 || math.Abs(fpsa.CommNS-633.9) > 10 {
		t.Errorf("FPSA bars = (%.1f, %.1f), paper (156.4, 633.9)", fpsa.CompNS, fpsa.CommNS)
	}
}

func TestFigure8GeomeanShapes(t *testing.T) {
	rows, err := Figure8(nil)
	if err != nil {
		t.Fatal(err)
	}
	perfGain, areaGain := Figure8Geomeans(rows, Figure8Dups)
	// Paper: perf 3.06/10.88/38.65×, area 1.25/1.85/3.73× at 4/16/64×.
	// Hold the super-linear shape: perf gain well above area gain, and
	// within a 2× band of the published geomeans.
	wantPerf := map[int]float64{4: 3.06, 16: 10.88, 64: 38.65}
	wantArea := map[int]float64{4: 1.25, 16: 1.85, 64: 3.73}
	for _, d := range []int{4, 16, 64} {
		if perfGain[d] < areaGain[d] {
			t.Errorf("@%dx: perf gain %.2f below area gain %.2f (not super-linear)", d, perfGain[d], areaGain[d])
		}
		checkWithin(t, "perf geomean", perfGain[d], wantPerf[d], 2)
		checkWithin(t, "area geomean", areaGain[d], wantArea[d], 2)
		t.Logf("@%dx: perf %.2fx (paper %.2f), area %.2fx (paper %.2f)",
			d, perfGain[d], wantPerf[d], areaGain[d], wantArea[d])
	}
	// Bounds behaviour (Figure 8c): for CNNs the temporal bound rises
	// with duplication while the spatial bound stays put.
	var vggRows []Figure8Row
	for _, r := range rows {
		if r.Model == "VGG16" {
			vggRows = append(vggRows, r)
		}
	}
	first, last := vggRows[0], vggRows[len(vggRows)-1]
	if last.TemporalBoundDensity <= first.TemporalBoundDensity {
		t.Error("VGG16 temporal bound did not rise with duplication")
	}
	if math.Abs(last.SpatialBoundDensity-first.SpatialBoundDensity)/first.SpatialBoundDensity > 0.35 {
		t.Errorf("VGG16 spatial bound moved %.3g → %.3g (should be ~flat)",
			first.SpatialBoundDensity, last.SpatialBoundDensity)
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(Figure9Options{Cells: []int{1, 2, 8, 16}, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.PRIMEConfig.SpliceAcc < 0.5 || r.PRIMEConfig.SpliceAcc > 0.85 {
		t.Errorf("PRIME config = %.3f, want ~0.7", r.PRIMEConfig.SpliceAcc)
	}
	if r.FPSAConfig.AddAcc < 0.95 {
		t.Errorf("FPSA config = %.3f, want ~1.0", r.FPSAConfig.AddAcc)
	}
	// Add accuracy is monotone-ish in cells: 16 cells ≥ 1 cell.
	var one, sixteen float64
	for _, p := range r.Points {
		switch p.Cells {
		case 1:
			one = p.AddAcc
		case 16:
			sixteen = p.AddAcc
		}
	}
	if sixteen < one {
		t.Errorf("add accuracy fell with more cells: 1→%.3f, 16→%.3f", one, sixteen)
	}
	// Level staircase: 15k+1.
	for _, p := range r.Points {
		if p.AddLevels != 15*p.Cells+1 {
			t.Errorf("cells %d: levels = %d, want %d", p.Cells, p.AddLevels, 15*p.Cells+1)
		}
	}
	out := RenderFigure9(r)
	if !strings.Contains(out, "PRIME config") {
		t.Error("render missing PRIME config line")
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	if s := RenderTable2(Table2(device.Params45nm)); !strings.Contains(s, "30.9") {
		t.Errorf("Table2 render missing density gain: %s", s)
	}
	rows, err := Table3(4)
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderTable3(rows, 4); !strings.Contains(s, "VGG16") {
		t.Error("Table3 render missing VGG16")
	}
}
