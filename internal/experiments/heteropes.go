package experiments

import (
	"fmt"
	"strings"

	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/mapper"
	"fpsa/internal/models"
	"fpsa/internal/synth"
)

// The paper's §7.3 names its own fix for the spatial-utilization bound as
// future work: "from the hardware perspective, we could introduce
// different scales of PE to fit weight matrices better". This ablation
// models that proposal: a second, quarter-size PE (128×128 logical) hosts
// every group whose footprint fits, and the chip area / spatial bound are
// recomputed. The small PE's cost scales the Table 1 components: half the
// charging units, neurons and subtracters, a quarter of the ReRAM array.

// SmallPEAreaUM2 returns the 128×128 PE's area from the Table 1 component
// scaling.
func SmallPEAreaUM2(p device.Params) float64 {
	return p.ChargingUnitsTotal.AreaUM2/2 +
		p.ReRAMArraysTotal.AreaUM2/4 +
		p.NeuronUnitsTotal.AreaUM2/2 +
		p.SubtractersTotal.AreaUM2/2
}

// smallPESide is the small PE's logical dimension.
const smallPESide = 128

// HeteroPERow is one model's comparison between the homogeneous fabric and
// the mixed-PE fabric at the same duplication degree.
type HeteroPERow struct {
	Model string
	// Baseline (all 256×256 PEs).
	BasePEs     int
	BaseAreaMM2 float64
	BaseSpatial float64 // spatial-bound density, OPS/mm²
	// Mixed fabric.
	SmallPEs     int
	LargePEs     int
	MixedAreaMM2 float64
	MixedSpatial float64
	AreaSavingPc float64
}

// AblationHeteroPEs evaluates the proposal on every benchmark model at the
// given duplication degree.
func AblationHeteroPEs(dup int) ([]HeteroPERow, error) {
	if dup <= 0 {
		dup = 64
	}
	p := device.Params45nm
	compNS := p.VMMLatencyNS() * 1e-9
	var rows []HeteroPERow
	for _, name := range models.Names() {
		g, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		co, err := synth.Synthesize(g, synth.DefaultOptions())
		if err != nil {
			return nil, err
		}
		alloc, err := mapper.Allocate(co, dup)
		if err != nil {
			return nil, err
		}
		row := HeteroPERow{Model: name}
		var baseArea, mixedArea, baseOPS, mixedOPS float64
		smallArea := SmallPEAreaUM2(p)
		for gi, grp := range co.Groups {
			n := float64(alloc.Dup[gi])
			useful := 2 * float64(grp.UsefulWeights)
			row.BasePEs += alloc.Dup[gi]
			baseArea += n * p.PETotal.AreaUM2
			baseOPS += n * useful
			mixedOPS += n * useful
			if fitsSmall(grp) {
				row.SmallPEs += alloc.Dup[gi]
				mixedArea += n * smallArea
			} else {
				row.LargePEs += alloc.Dup[gi]
				mixedArea += n * p.PETotal.AreaUM2
			}
		}
		row.BaseAreaMM2 = baseArea * 1e-6
		row.MixedAreaMM2 = mixedArea * 1e-6
		row.BaseSpatial = baseOPS / compNS / row.BaseAreaMM2
		row.MixedSpatial = mixedOPS / compNS / row.MixedAreaMM2
		row.AreaSavingPc = 100 * (baseArea - mixedArea) / baseArea
		rows = append(rows, row)
	}
	return rows, nil
}

// fitsSmall reports whether a group fits the 128×128 PE.
func fitsSmall(grp *coreop.Group) bool {
	return grp.Rows <= smallPESide && grp.Cols <= smallPESide
}

// RenderAblationHeteroPEs renders the comparison.
func RenderAblationHeteroPEs(rows []HeteroPERow, dup int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (§7.3 future work): heterogeneous PE sizes (256² + 128²), %dx duplication\n", dup)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %12s %12s %12s %10s\n",
		"Model", "basePEs", "small", "large", "baseArea", "mixedArea", "spatialGain", "areaSave")
	for _, r := range rows {
		gain := r.MixedSpatial / r.BaseSpatial
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %10.2fmm2 %10.2fmm2 %11.2fx %9.1f%%\n",
			r.Model, r.BasePEs, r.SmallPEs, r.LargePEs,
			r.BaseAreaMM2, r.MixedAreaMM2, gain, r.AreaSavingPc)
	}
	b.WriteString("(PE-array accounting only; §7.3 predicts the gain concentrates in pooling-heavy models)\n")
	return b.String()
}
