package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAblationTransmissionTradeoffs(t *testing.T) {
	r, err := AblationTransmission()
	if err != nil {
		t.Fatal(err)
	}
	// The §7.1 claims: trains give 2ⁿ× NBD fill advantage and n× buffer
	// savings, at 2ⁿ/n× the wire traffic.
	if r.CountFillCycles != 64 || r.TrainFillCycles != 1 {
		t.Errorf("fill cycles = %d vs %d, want 64 vs 1", r.CountFillCycles, r.TrainFillCycles)
	}
	if r.CountBufferBits != 6 || r.TrainBufferBits != 1 {
		t.Errorf("buffer bits = %d vs %d, want 6 vs 1", r.CountBufferBits, r.TrainBufferBits)
	}
	if r.TrainWireBits/r.CountWireBits < 10 {
		t.Errorf("traffic ratio = %d/%d, want ≥10x", r.TrainWireBits, r.CountWireBits)
	}
	// Honest finding: at VGG16's 64× TDM configuration the count mode's
	// shorter stages win end-to-end latency — the train design's payoff
	// is the NBD fill on shallow/bufferless pipelines plus the removal
	// of per-PE encoder/decoder circuits (§4.2).
	if r.TrainLatencyUS <= 0 || r.CountLatencyUS <= 0 {
		t.Fatal("latencies not positive")
	}
	out := RenderAblationTransmission(r)
	if !strings.Contains(out, "NBD fill cycles") {
		t.Error("render missing fill row")
	}
}

func TestAblationChannelWidth(t *testing.T) {
	r, err := AblationChannelWidth(context.Background(), []int{2048, 1024, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if !r.Points[0].Converged {
		t.Error("2048 tracks did not route")
	}
	if r.Points[2].Converged {
		t.Error("256 tracks routed a netlist with 256-signal buses and shared corridors")
	}
	if r.MinWidth == 0 {
		t.Error("no feasible width found")
	}
	// Routing area must shrink with narrower channels.
	if r.Points[0].RoutingAreaUM <= r.Points[1].RoutingAreaUM {
		t.Error("routing area not monotone in channel width")
	}
	out := RenderAblationChannelWidth(r)
	if !strings.Contains(out, "minimum feasible") {
		t.Error("render missing summary")
	}
}
