package experiments

import (
	"strings"
	"testing"

	"fpsa/internal/device"
)

func TestAblationHeteroPEs(t *testing.T) {
	rows, err := AblationHeteroPEs(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := make(map[string]HeteroPERow)
	for _, r := range rows {
		byModel[r.Model] = r
		if r.SmallPEs+r.LargePEs != r.BasePEs {
			t.Errorf("%s: PE split %d+%d ≠ %d", r.Model, r.SmallPEs, r.LargePEs, r.BasePEs)
		}
		if r.MixedAreaMM2 > r.BaseAreaMM2*1.0001 {
			t.Errorf("%s: mixed fabric larger than baseline", r.Model)
		}
		if r.MixedSpatial < r.BaseSpatial*0.999 {
			t.Errorf("%s: spatial bound regressed", r.Model)
		}
	}
	// §7.3's prediction: the gain concentrates where synthesized pooling
	// dominates. GoogLeNet must save far more area than VGG16.
	goog, vgg := byModel["GoogLeNet"], byModel["VGG16"]
	if goog.AreaSavingPc < 2*vgg.AreaSavingPc {
		t.Errorf("GoogLeNet saving %.1f%% not ≫ VGG16 %.1f%%", goog.AreaSavingPc, vgg.AreaSavingPc)
	}
	if goog.AreaSavingPc < 30 {
		t.Errorf("GoogLeNet saving %.1f%%, want ≥30%%", goog.AreaSavingPc)
	}
	if gain := goog.MixedSpatial / goog.BaseSpatial; gain < 1.5 {
		t.Errorf("GoogLeNet spatial gain %.2fx, want ≥1.5x", gain)
	}
	out := RenderAblationHeteroPEs(rows, 64)
	if !strings.Contains(out, "GoogLeNet") {
		t.Error("render missing GoogLeNet row")
	}
}

func TestSmallPEAreaScaling(t *testing.T) {
	p := device.Params45nm
	small := SmallPEAreaUM2(p)
	if small >= p.PETotal.AreaUM2/2 {
		t.Errorf("128² PE area %v not well below half of %v", small, p.PETotal.AreaUM2)
	}
	if small <= p.PETotal.AreaUM2/8 {
		t.Errorf("128² PE area %v implausibly small", small)
	}
}
