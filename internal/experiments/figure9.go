package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"fpsa/internal/device"
	"fpsa/internal/trainer"
)

// Figure9Point is one cell-count sample of the weight-representation study.
type Figure9Point struct {
	Cells int
	// SpliceAcc / AddAcc are Monte-Carlo normalized accuracies under
	// programming variation (−1 when the method is not defined at this
	// cell count: splicing needs the full bit budget).
	SpliceAcc float64
	AddAcc    float64
	// AddQuantAcc is the noise-free add-method accuracy — the "Bound by
	// #Levels" staircase.
	AddQuantAcc float64
	// AddLevels is the representable level count 15·cells+1.
	AddLevels int
	// SpliceDev / AddDev are the closed-form normalized deviations.
	SpliceDev float64
	AddDev    float64
}

// Figure9Options configures the study.
type Figure9Options struct {
	// Cells lists the x-axis samples (default 1,2,4,8,12,16).
	Cells []int
	// Trials is the Monte-Carlo count per point (default 8).
	Trials int
	// Seed fixes the data/novelty RNG.
	Seed int64
	// Spec is the cell (default device.Cell4BitMeasured — calibrated so
	// the PRIME splice configuration reproduces the paper's ~0.7).
	Spec device.CellSpec
}

// Figure9Result carries the study output.
type Figure9Result struct {
	Points       []Figure9Point
	FullAccuracy float64
	PRIMEConfig  Figure9Point // splice, 2 cells
	FPSAConfig   Figure9Point // add, 16 cells (8 per polarity)
	Spec         device.CellSpec
}

// Figure9 trains the substitute network (the paper used VGG16/ImageNet;
// see DESIGN.md §2) and sweeps cell counts for both representation
// methods. Per the paper's configuration the x-axis counts 4-bit cells per
// weight: the splicing method is sampled where the spliced fields cover 8
// bits (2 cells), and the add method across the whole axis; 16 add cells
// (8 per polarity) are "our configuration".
func Figure9(opts Figure9Options) (Figure9Result, error) {
	if len(opts.Cells) == 0 {
		opts.Cells = []int{1, 2, 4, 8, 12, 16}
	}
	if opts.Trials <= 0 {
		opts.Trials = 8
	}
	if opts.Spec.Bits == 0 {
		opts.Spec = device.Cell4BitMeasured
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 301
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := trainer.SyntheticClusters(rng, 1800, 24, 8, 0.13).Split(2.0 / 3)
	net, err := trainer.NewMLP(rng, []int{24, 48, 40, 32, 8})
	if err != nil {
		return Figure9Result{}, err
	}
	net.Train(rng, train, trainer.TrainOptions{Epochs: 60, LR: 0.02})

	res := Figure9Result{FullAccuracy: net.Accuracy(test), Spec: opts.Spec}
	if res.FullAccuracy == 0 {
		return Figure9Result{}, fmt.Errorf("experiments: substitute network failed to train")
	}
	for _, cells := range opts.Cells {
		pt := Figure9Point{Cells: cells, SpliceAcc: -1}
		// Add method: `cells` total, split across polarities by the
		// architecture; the signed normalized deviation matches
		// NewAdd(cells) (see internal/device).
		addRep := device.NewAdd(opts.Spec, cells)
		pt.AddLevels = addRep.EffectiveLevels()
		pt.AddDev = addRep.NormalizedDeviation(opts.Spec)
		pt.AddAcc = trainer.VariationStudy(net, test, addRep, opts.Spec, rng, opts.Trials).NormalizedAccuracy
		pt.AddQuantAcc = trainer.QuantizationOnly(net, test, addRep, opts.Spec).NormalizedAccuracy
		// Splice method: defined where the spliced fields form the
		// 8-bit weight (2 cells in the paper's comparison; more cells
		// extend precision but not robustness).
		if cells >= 2 {
			spliceRep := device.NewSplice(opts.Spec, 2)
			pt.SpliceDev = spliceRep.NormalizedDeviation(opts.Spec)
			pt.SpliceAcc = trainer.VariationStudy(net, test, spliceRep, opts.Spec, rng, opts.Trials).NormalizedAccuracy
		}
		res.Points = append(res.Points, pt)
		if cells == 2 && pt.SpliceAcc >= 0 {
			res.PRIMEConfig = pt
		}
		if cells == 16 {
			res.FPSAConfig = pt
		}
	}
	return res, nil
}

// RenderFigure9 renders the study.
func RenderFigure9(r Figure9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: normalized accuracy vs #cells (4-bit cells, sigma=%.2f levels)\n", r.Spec.Sigma)
	fmt.Fprintf(&b, "substitute network full-precision accuracy: %.3f\n", r.FullAccuracy)
	fmt.Fprintf(&b, "%6s %10s %10s %12s %10s %12s %12s\n",
		"cells", "splice", "add", "add(quant)", "levels", "spliceDev", "addDev")
	for _, p := range r.Points {
		splice := "-"
		spliceDev := "-"
		if p.SpliceAcc >= 0 {
			splice = fmt.Sprintf("%.3f", p.SpliceAcc)
			spliceDev = fmt.Sprintf("%.4f", p.SpliceDev)
		}
		fmt.Fprintf(&b, "%6d %10s %10.3f %12.3f %10d %12s %12.4f\n",
			p.Cells, splice, p.AddAcc, p.AddQuantAcc, p.AddLevels, spliceDev, p.AddDev)
	}
	fmt.Fprintf(&b, "PRIME config (splice, 2 cells): %.3f (paper ~0.70, calibration point)\n", r.PRIMEConfig.SpliceAcc)
	fmt.Fprintf(&b, "FPSA config (add, 16 cells):    %.3f (paper ~1.00, predicted)\n", r.FPSAConfig.AddAcc)
	return b.String()
}

// BitsForLevels converts a level count to equivalent bits (Figure 9's
// level-bound annotations).
func BitsForLevels(levels int) float64 { return math.Log2(float64(levels)) }
