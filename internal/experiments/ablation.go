package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/mapper"
	"fpsa/internal/models"
	"fpsa/internal/perf"
	"fpsa/internal/place"
	"fpsa/internal/route"
	"fpsa/internal/synth"
)

// TransmissionResult quantifies the §7.1 design discussion: FPSA transmits
// raw spike trains between PEs, while the alternative (PipeLayer-style)
// transmits n-bit spike counts. Trains win pipeline-fill latency (a
// bufferless consumer starts 1 cycle after its producer instead of waiting
// the whole 2ⁿ-cycle window) and buffer bits (1 vs n per signal), at 2ⁿ/n×
// the wire traffic.
type TransmissionResult struct {
	Model string
	Dup   int

	// Trains: the FPSA design point.
	TrainLatencyUS   float64
	TrainBufferBits  int // per buffered signal
	TrainWireBits    int // bits moved per signal per window
	TrainCommNSPerOp float64

	// Counts: the ablated design point (full window wait + n-bit
	// transfer per stage; no streaming overlap).
	CountLatencyUS   float64
	CountBufferBits  int
	CountWireBits    int
	CountCommNSPerOp float64

	// NBD fill advantage: cycles a bufferless consumer waits before it
	// can start, trains vs counts (paper: 1 vs 2ⁿ).
	TrainFillCycles int
	CountFillCycles int
}

// AblationTransmission evaluates both transmission modes for VGG16 at the
// evaluation configuration.
func AblationTransmission() (TransmissionResult, error) {
	g, err := models.ByName(models.NameVGG16)
	if err != nil {
		return TransmissionResult{}, err
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		return TransmissionResult{}, err
	}
	p := device.Params45nm
	const dup = 64
	rep, err := perf.Evaluate(perf.Input{Model: g, CoreOps: co, Params: p, Dup: dup}, perf.TargetFPSA)
	if err != nil {
		return TransmissionResult{}, err
	}
	alloc, err := mapper.Allocate(co, dup)
	if err != nil {
		return TransmissionResult{}, err
	}
	window := p.SamplingWindow()
	hops := p.TypicalRouteHops
	res := TransmissionResult{
		Model: models.NameVGG16, Dup: dup,
		TrainLatencyUS:   rep.LatencyUS,
		TrainBufferBits:  1,
		TrainWireBits:    window,
		TrainCommNSPerOp: rep.CommNSPerVMM,
		TrainFillCycles:  1,
		CountFillCycles:  window,
		CountBufferBits:  p.IOBits,
		CountWireBits:    p.IOBits,
		CountCommNSPerOp: float64(p.IOBits*hops) * p.WireDelayPerHopNS,
	}
	// Count mode: each stage completes its window, then ships counts;
	// pipeline fill is a full stage per level instead of one cycle.
	stageNS := float64(window)*p.PipelineClockNS() + res.CountCommNSPerOp
	depth := 0
	longest := make([]int, len(co.Groups))
	for gi, grp := range co.Groups {
		pred := 0
		for _, d := range grp.Deps {
			if longest[d] > pred {
				pred = longest[d]
			}
		}
		longest[gi] = pred + 1
		if longest[gi] > depth {
			depth = longest[gi]
		}
	}
	bottleneck := float64(alloc.MaxIterations()) * stageNS
	res.CountLatencyUS = (float64(depth)*stageNS + bottleneck) * 1e-3
	return res, nil
}

// RenderAblationTransmission renders the comparison.
func RenderAblationTransmission(r TransmissionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (§7.1): spike-train vs spike-count transmission, %s @%dx\n", r.Model, r.Dup)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "", "trains (FPSA)", "counts")
	fmt.Fprintf(&b, "%-22s %14d %14d\n", "NBD fill cycles", r.TrainFillCycles, r.CountFillCycles)
	fmt.Fprintf(&b, "%-22s %14d %14d\n", "buffer bits/signal", r.TrainBufferBits, r.CountBufferBits)
	fmt.Fprintf(&b, "%-22s %14d %14d\n", "wire bits/signal", r.TrainWireBits, r.CountWireBits)
	fmt.Fprintf(&b, "%-22s %14.1f %14.1f\n", "comm ns/VMM", r.TrainCommNSPerOp, r.CountCommNSPerOp)
	fmt.Fprintf(&b, "%-22s %14.4g %14.4g\n", "latency us", r.TrainLatencyUS, r.CountLatencyUS)
	fmt.Fprintf(&b, "(paper: trains gain up to 2^n x NBD latency and n x buffer, cost 2^n/n x traffic)\n")
	return b.String()
}

// ChannelWidthPoint is one track-count sample of the routability sweep.
type ChannelWidthPoint struct {
	Tracks        int
	Converged     bool
	MaxOccupancy  int
	RoutingAreaUM float64
}

// ChannelWidthResult is the routability sweep of a real netlist — the
// classic FPGA-architecture experiment behind choosing the fabric's
// channel width.
type ChannelWidthResult struct {
	Model    string
	Blocks   int
	Points   []ChannelWidthPoint
	MinWidth int // smallest converged width in the sweep
}

// AblationChannelWidth places LeNet's netlist once, then routes it at
// shrinking channel widths until routing fails. ctx bounds the
// place-and-route work; cancellation returns ctx.Err().
func AblationChannelWidth(ctx context.Context, widths []int) (ChannelWidthResult, error) {
	if len(widths) == 0 {
		widths = []int{2048, 1024, 768, 512, 384, 256, 128}
	}
	g, err := models.ByName(models.NameLeNet)
	if err != nil {
		return ChannelWidthResult{}, err
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		return ChannelWidthResult{}, err
	}
	alloc, err := mapper.Allocate(co, 4)
	if err != nil {
		return ChannelWidthResult{}, err
	}
	nl, err := mapper.BuildNetlist(co, alloc, device.Params45nm, nil)
	if err != nil {
		return ChannelWidthResult{}, err
	}
	res := ChannelWidthResult{Model: models.NameLeNet, Blocks: len(nl.Blocks)}
	rng := rand.New(rand.NewSource(33))
	chip, err := fabric.SizeFor(len(nl.Blocks), widths[0], device.Params45nm)
	if err != nil {
		return ChannelWidthResult{}, err
	}
	pl, _, err := place.Anneal(ctx, nl, chip, rng, place.Options{MovesPerTemp: 2000})
	if err != nil {
		return ChannelWidthResult{}, err
	}
	for _, w := range widths {
		c := chip
		c.Tracks = w
		r, err := route.Route(ctx, nl, pl, c, route.Options{})
		if err != nil {
			return ChannelWidthResult{}, err
		}
		res.Points = append(res.Points, ChannelWidthPoint{
			Tracks:        w,
			Converged:     r.Converged,
			MaxOccupancy:  r.MaxOccupancy,
			RoutingAreaUM: c.RoutingAreaUM2(),
		})
		if r.Converged && (res.MinWidth == 0 || w < res.MinWidth) {
			res.MinWidth = w
		}
	}
	return res, nil
}

// RenderAblationChannelWidth renders the sweep.
func RenderAblationChannelWidth(r ChannelWidthResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: channel-width routability, %s netlist (%d blocks)\n", r.Model, r.Blocks)
	fmt.Fprintf(&b, "%8s %10s %12s %16s\n", "tracks", "routed", "maxOcc", "routingArea/um2")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10v %12d %16.0f\n", p.Tracks, p.Converged, p.MaxOccupancy, p.RoutingAreaUM)
	}
	fmt.Fprintf(&b, "minimum feasible channel width in sweep: %d tracks\n", r.MinWidth)
	return b.String()
}
