// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): each driver returns typed results plus a text rendering
// with the same rows/series the paper reports, so `cmd/fpsa-bench` and the
// benchmark harness can print paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"strings"

	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/perf"
	"fpsa/internal/prime"
	"fpsa/internal/synth"
)

// Table1Row is one function-block row of Table 1.
type Table1Row struct {
	Block     string
	EnergyPJ  float64
	AreaUM2   float64
	LatencyNS float64
}

// Table1 reproduces the 45 nm function-block parameter table.
func Table1(p device.Params) []Table1Row {
	return []Table1Row{
		{"PE (256x256)", p.PETotal.EnergyPJ, p.PETotal.AreaUM2, p.PETotal.LatencyNS},
		{"  Charging Unit x256", p.ChargingUnitsTotal.EnergyPJ, p.ChargingUnitsTotal.AreaUM2, p.ChargingUnit.LatencyNS},
		{"  ReRAM (256x512) x8", p.ReRAMArraysTotal.EnergyPJ, p.ReRAMArraysTotal.AreaUM2, p.ReRAMArray.LatencyNS},
		{"  Neuron Unit x512", p.NeuronUnitsTotal.EnergyPJ, p.NeuronUnitsTotal.AreaUM2, p.NeuronUnit.LatencyNS},
		{"  Subtracter x256", p.SubtractersTotal.EnergyPJ, p.SubtractersTotal.AreaUM2, p.Subtracter.LatencyNS},
		{"CLB (128x LUT)", p.CLB.EnergyPJ, p.CLB.AreaUM2, p.CLB.LatencyNS},
		{"SMB (16Kb)", p.SMB.EnergyPJ, p.SMB.AreaUM2, p.SMB.LatencyNS},
	}
}

// RenderTable1 renders the table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: function-block parameters (45 nm)\n")
	fmt.Fprintf(&b, "%-22s %10s %12s %10s\n", "Block", "Energy/pJ", "Area/um2", "Latency/ns")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.3f %12.3f %10.3f\n", r.Block, r.EnergyPJ, r.AreaUM2, r.LatencyNS)
	}
	return b.String()
}

// Table2Result compares one PE of PRIME and FPSA for a 256×256 VMM with
// 8-bit weights and 6-bit I/O.
type Table2Result struct {
	PRIMEAreaUM2     float64
	PRIMELatencyNS   float64
	PRIMEDensity     float64
	FPSAAreaUM2      float64
	FPSALatencyNS    float64
	FPSADensity      float64
	AreaReductionPct float64 // paper: −36.63 %
	LatencyReductPct float64 // paper: −94.90 %
	DensityGain      float64 // paper: 30.92×
	ISAACDensity     float64
	PipeLayerDensity float64
}

// Table2 reproduces the PE comparison.
func Table2(p device.Params) Table2Result {
	r := Table2Result{
		PRIMEAreaUM2:     prime.PE.AreaUM2,
		PRIMELatencyNS:   prime.PE.VMMLatencyNS,
		PRIMEDensity:     prime.ComputationalDensityOPSmm2(),
		FPSAAreaUM2:      p.PEAreaUM2(),
		FPSALatencyNS:    p.VMMLatencyNS(),
		FPSADensity:      p.ComputationalDensityOPSmm2(),
		ISAACDensity:     prime.DensityISAAC,
		PipeLayerDensity: prime.DensityPipeLayer,
	}
	r.AreaReductionPct = 100 * (r.FPSAAreaUM2 - r.PRIMEAreaUM2) / r.PRIMEAreaUM2
	r.LatencyReductPct = 100 * (r.FPSALatencyNS - r.PRIMELatencyNS) / r.PRIMELatencyNS
	r.DensityGain = r.FPSADensity / r.PRIMEDensity
	return r
}

// RenderTable2 renders the comparison.
func RenderTable2(r Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: PE comparison (256x256 VMM, 8-bit weight, 6-bit I/O)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %22s\n", "", "Area/um2", "Latency/ns", "Density/(OPS/mm2)")
	fmt.Fprintf(&b, "%-8s %12.3f %12.1f %22.4g\n", "PRIME", r.PRIMEAreaUM2, r.PRIMELatencyNS, r.PRIMEDensity)
	fmt.Fprintf(&b, "%-8s %12.3f %12.1f %22.4g\n", "FPSA", r.FPSAAreaUM2, r.FPSALatencyNS, r.FPSADensity)
	fmt.Fprintf(&b, "%-8s %11.2f%% %11.2f%% %21.2fx\n", "Improve", r.AreaReductionPct, r.LatencyReductPct, r.DensityGain)
	fmt.Fprintf(&b, "(context: PipeLayer %.4g, ISAAC %.4g OPS/mm2)\n", r.PipeLayerDensity, r.ISAACDensity)
	return b.String()
}

// Table3Row is one model column of Table 3.
type Table3Row struct {
	Model         string
	Weights       int64
	Ops           int64
	ThroughputSPS float64
	LatencyUS     float64
	AreaMM2       float64
}

// Table3 evaluates every benchmark model on FPSA at the given duplication
// degree (the paper reports the 64× case).
func Table3(dup int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range models.Names() {
		g, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		co, err := synth.Synthesize(g, synth.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		r, err := perf.Evaluate(perf.Input{
			Model: g, CoreOps: co, Params: device.Params45nm, Dup: dup,
		}, perf.TargetFPSA)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		s := g.Summary()
		rows = append(rows, Table3Row{
			Model:         name,
			Weights:       s.Weights,
			Ops:           s.Ops,
			ThroughputSPS: r.ThroughputSPS,
			LatencyUS:     r.LatencyUS,
			AreaMM2:       r.AreaMM2,
		})
	}
	return rows, nil
}

// RenderTable3 renders the overall-performance table.
func RenderTable3(rows []Table3Row, dup int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: overall FPSA performance (%dx duplication)\n", dup)
	fmt.Fprintf(&b, "%-14s %12s %12s %16s %12s %10s\n",
		"Model", "# weights", "# ops", "Thrpt/(smp/s)", "Latency/us", "Area/mm2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.4g %12.4g %16.4g %12.4g %10.2f\n",
			r.Model, float64(r.Weights), float64(r.Ops), r.ThroughputSPS, r.LatencyUS, r.AreaMM2)
	}
	return b.String()
}
