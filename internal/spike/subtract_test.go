package spike

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubtractUniformTrainsExact(t *testing.T) {
	// For the evenly spaced trains SMB generators emit, the stream
	// subtracter realizes Eq. 6 exactly: count = max(P−N, 0).
	const window = 64
	for p := 0; p <= window; p++ {
		for n := 0; n <= window; n++ {
			out := SubtractTrains(UniformTrain(p, window), UniformTrain(n, window))
			want := p - n
			if want < 0 {
				want = 0
			}
			if got := out.Count(); got != want {
				t.Fatalf("Subtract(uniform %d, uniform %d) = %d, want %d", p, n, got, want)
			}
		}
	}
}

func TestSubtractSameCycleCancels(t *testing.T) {
	pos := Train{true, false, true}
	neg := Train{true, false, false}
	out := SubtractTrains(pos, neg)
	if got := out.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if out[0] || !out[2] {
		t.Fatalf("out = %v, want spike only at cycle 2", out)
	}
}

func TestSubtractNegBlocksNextPos(t *testing.T) {
	// A negative spike with no concurrent positive blocks the NEXT
	// positive spike (the circuit mechanism in §4.2).
	pos := Train{false, true, true}
	neg := Train{true, false, false}
	out := SubtractTrains(pos, neg)
	if out[1] {
		t.Fatal("cycle-1 positive should have been blocked")
	}
	if !out[2] {
		t.Fatal("cycle-2 positive should pass")
	}
}

func TestSubtractLateNegativeCannotBlock(t *testing.T) {
	// Negative spikes arriving after the last positive block nothing —
	// the bounded deviation from Eq. 6 for adversarial (non-neuron)
	// trains.
	pos := Train{true, false, false}
	neg := Train{false, false, true}
	if got := SubtractTrains(pos, neg).Count(); got != 1 {
		t.Fatalf("count = %d, want 1 (late negative blocks nothing)", got)
	}
}

func TestSubtractMismatchedWindowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched windows")
		}
	}()
	SubtractTrains(NewTrain(4), NewTrain(5))
}

func TestQuickSubtractBounds(t *testing.T) {
	// For arbitrary trains: max(P−N,0) ≤ out ≤ P.
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		window := 32 + rng.Intn(64)
		pos, neg := NewTrain(window), NewTrain(window)
		for i := 0; i < window; i++ {
			pos[i] = rng.Intn(2) == 1
			neg[i] = rng.Intn(3) == 1
		}
		out := SubtractTrains(pos, neg).Count()
		p, n := pos.Count(), neg.Count()
		low := p - n
		if low < 0 {
			low = 0
		}
		return out >= low && out <= p
	}
	if err := quick.Check(func(uint8) bool { return f() }, nil); err != nil {
		t.Error(err)
	}
}

func TestSubtracterReset(t *testing.T) {
	var s Subtracter
	s.Step(false, true)
	if s.PendingBlocks() != 1 {
		t.Fatalf("debt = %d, want 1", s.PendingBlocks())
	}
	s.Reset()
	if s.PendingBlocks() != 0 {
		t.Fatal("debt not cleared by Reset")
	}
	if !s.Step(true, false) {
		t.Fatal("post-reset positive spike was blocked")
	}
}
