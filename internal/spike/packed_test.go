package spike

import (
	"math/rand"
	"testing"
)

// trainsEqual compares a boolean train against a packed train over a
// window, cycle by cycle.
func trainsEqual(t Train, p PackedTrain, window int) bool {
	for i := 0; i < window; i++ {
		want := i < len(t) && t[i]
		if p.Get(i) != want {
			return false
		}
	}
	return true
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Widths deliberately straddle lane boundaries: empty, single cycle,
	// one lane, lane±1, and a multi-lane non-multiple of 64.
	for _, window := range []int{0, 1, 63, 64, 65, 100, 128, 200} {
		for trial := 0; trial < 50; trial++ {
			tr := NewTrain(window)
			for i := range tr {
				tr[i] = rng.Intn(3) == 0
			}
			p := Pack(tr)
			if got, want := len(p), Lanes(window); got != want {
				t.Fatalf("Pack(window %d): %d lanes, want %d", window, got, want)
			}
			if p.Count() != tr.Count() {
				t.Fatalf("Pack(window %d): Count %d, want %d", window, p.Count(), tr.Count())
			}
			if !trainsEqual(tr, p, window) {
				t.Fatalf("Pack(window %d): Get mismatch", window)
			}
			back := p.Unpack(window)
			for i := range tr {
				if back[i] != tr[i] {
					t.Fatalf("Unpack(window %d): cycle %d = %v, want %v", window, i, back[i], tr[i])
				}
			}
		}
	}
}

func TestPackEmptyTrain(t *testing.T) {
	p := Pack(nil)
	if len(p) != 0 || p.Count() != 0 || p.Capacity() != 0 {
		t.Fatalf("Pack(nil) = %v (count %d, capacity %d), want empty", p, p.Count(), p.Capacity())
	}
	if p.Get(0) || p.Get(-1) {
		t.Fatal("empty PackedTrain reports spikes")
	}
	if got := p.Unpack(8).Count(); got != 0 {
		t.Fatalf("Pack(nil).Unpack(8).Count() = %d, want 0", got)
	}
}

func TestUnpackShorterAndLongerWindow(t *testing.T) {
	// A train longer than the target window truncates; shorter
	// zero-extends. Both directions matter because xbar reuses packed
	// scratch buffers across differently-sized windows.
	tr := UniformTrain(50, 100)
	p := Pack(tr)
	short := p.Unpack(40)
	if len(short) != 40 {
		t.Fatalf("Unpack(40) length %d", len(short))
	}
	for i := range short {
		if short[i] != tr[i] {
			t.Fatalf("Unpack(40): cycle %d = %v, want %v", i, short[i], tr[i])
		}
	}
	long := p.Unpack(130)
	if len(long) != 130 {
		t.Fatalf("Unpack(130) length %d", len(long))
	}
	for i := range long {
		want := i < 100 && tr[i]
		if long[i] != want {
			t.Fatalf("Unpack(130): cycle %d = %v, want %v", i, long[i], want)
		}
	}
}

func TestPackedUniformMatchesPack(t *testing.T) {
	// The jump-Bresenham closed form must reproduce UniformTrain exactly,
	// spike for spike, for every count at several windows (including
	// window 1 and non-multiples of 64).
	for _, window := range []int{1, 7, 63, 64, 65, 100, 128} {
		for count := -2; count <= window+2; count++ {
			want := Pack(UniformTrain(count, window))
			got := PackedUniform(count, window)
			if len(got) != len(want) {
				t.Fatalf("PackedUniform(%d,%d): %d lanes, want %d", count, window, len(got), len(want))
			}
			for l := range got {
				if got[l] != want[l] {
					t.Fatalf("PackedUniform(%d,%d): lane %d = %#x, want %#x", count, window, l, got[l], want[l])
				}
			}
		}
	}
}

func TestPackedTrainCanonical(t *testing.T) {
	// Bits at or beyond the window must be zero — the xbar kernels
	// popcount whole lanes and rely on it.
	for _, window := range []int{1, 63, 65, 100} {
		p := PackedUniform(window, window) // all-ones train
		if p.Count() != window {
			t.Fatalf("PackedUniform(%d,%d).Count() = %d", window, window, p.Count())
		}
		for i := window; i < p.Capacity(); i++ {
			if p.Get(i) {
				t.Fatalf("PackedUniform(%d,%d): stray bit at cycle %d", window, window, i)
			}
		}
	}
}

func TestAppendUniformStride(t *testing.T) {
	// The strided variant places cycle t of unit u at bit t*stride+u —
	// the timestep-major mask layout the packed kernels build. Check a
	// two-unit layout against the per-unit packed trains.
	const window, units = 64, 2
	stride := 64 * Lanes(units)
	dst := make([]uint64, Lanes(units)*window)
	AppendUniform(dst, 3, window, 0, stride)
	AppendUniform(dst, 64, window, 1, stride)
	t3, tAll := PackedUniform(3, window), PackedUniform(64, window)
	for cyc := 0; cyc < window; cyc++ {
		for u := 0; u < units; u++ {
			bit := cyc*stride + u
			got := dst[bit>>6]&(1<<uint(bit&63)) != 0
			want := t3.Get(cyc)
			if u == 1 {
				want = tAll.Get(cyc)
			}
			if got != want {
				t.Fatalf("strided appendUniform: unit %d cycle %d = %v, want %v", u, cyc, got, want)
			}
		}
	}
}

// TestStepperResetBetweenWindows pins that Reset restores both neuron
// models to freshly-constructed behavior: running a window, resetting, and
// running a second window must emit exactly what a fresh instance emits.
// The packed xbar kernels reinitialize membrane state per batch item on
// the same assumption.
func TestStepperResetBetweenWindows(t *testing.T) {
	drives := func(seed int64, n int) []float64 {
		rng := rand.New(rand.NewSource(seed))
		d := make([]float64, n)
		for i := range d {
			d[i] = 3 * rng.Float64()
		}
		return d
	}
	run := func(s Stepper, d []float64) []bool {
		out := make([]bool, len(d))
		for i, v := range d {
			out[i] = s.Step(v)
		}
		return out
	}
	mk := map[string]func() Stepper{
		"Neuron":   func() Stepper { return &Neuron{Eta: 1.25} },
		"RCNeuron": func() Stepper { return DefaultRCNeuron(1.25) },
	}
	first, second := drives(1, 64), drives(2, 64)
	for name, newStepper := range mk {
		reused := newStepper()
		run(reused, first) // dirty the internal state
		reused.Reset()
		got := run(reused, second)
		want := run(newStepper(), second)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: after Reset, cycle %d = %v, want fresh behavior %v", name, i, got[i], want[i])
			}
		}
	}
	// Subtracter has a two-input Step but the same reset-to-fresh contract.
	var s Subtracter
	s.Step(false, true) // leave debt behind
	s.Reset()
	if s.PendingBlocks() != 0 {
		t.Errorf("Subtracter: PendingBlocks after Reset = %d, want 0", s.PendingBlocks())
	}
	if !s.Step(true, false) {
		t.Error("Subtracter: positive spike blocked after Reset")
	}
}
