package spike

import "testing"

// FuzzPackRoundTrip drives the packed codec with arbitrary spike patterns
// and window widths: Pack must round-trip through Unpack bit-exactly, stay
// canonical (no stray bits past the window), agree with the boolean train
// on Count, and PackedUniform must match Pack(UniformTrain(...)) lane for
// lane. Seed corpus under testdata/fuzz/FuzzPackRoundTrip; CI runs a short
// -fuzztime smoke pass.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0x01}, 1)
	f.Add([]byte{0xff, 0xff}, 64)
	f.Add([]byte{0xaa, 0x55, 0x00, 0x10}, 100)
	f.Fuzz(func(t *testing.T, pattern []byte, window int) {
		if window < 0 || window > 1<<12 {
			t.Skip()
		}
		tr := NewTrain(window)
		count := 0
		for i := range tr {
			if len(pattern) > 0 && pattern[i%len(pattern)]&(1<<uint(i&7)) != 0 {
				tr[i] = true
				count++
			}
		}
		p := Pack(tr)
		if len(p) != Lanes(window) {
			t.Fatalf("Pack: %d lanes, want %d", len(p), Lanes(window))
		}
		if p.Count() != count {
			t.Fatalf("Pack: Count %d, want %d", p.Count(), count)
		}
		for i := window; i < p.Capacity(); i++ {
			if p.Get(i) {
				t.Fatalf("Pack: stray bit at cycle %d past window %d", i, window)
			}
		}
		back := p.Unpack(window)
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip: cycle %d = %v, want %v", i, back[i], tr[i])
			}
		}
		// The jump-Bresenham generator must agree with the reference
		// generator for this train's count at this window.
		want := Pack(UniformTrain(count, window))
		got := PackedUniform(count, window)
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("PackedUniform(%d,%d): lane %d = %#x, want %#x", count, window, l, got[l], want[l])
			}
		}
	})
}
