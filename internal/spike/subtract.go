package spike

// Subtracter is the spike subtracter of Figure 4(E): it merges the spike
// trains of a positive and a negative crossbar column into one output train
// whose count is max(Y⁺ − Y⁻, 0) (Eq. 6). The circuit mechanism is that
// each negative spike blocks the next positive spike; a same-cycle pair
// cancels.
type Subtracter struct {
	// debt counts negative spikes that have not yet blocked a positive
	// spike.
	debt int
}

// Step processes one cycle and reports whether an output spike is emitted.
func (s *Subtracter) Step(pos, neg bool) bool {
	if neg {
		s.debt++
	}
	if !pos {
		return false
	}
	if s.debt > 0 {
		s.debt--
		return false
	}
	return true
}

// Reset clears the blocking state between sampling windows.
func (s *Subtracter) Reset() { s.debt = 0 }

// PendingBlocks exposes the outstanding negative-spike debt, for tests.
func (s *Subtracter) PendingBlocks() int { return s.debt }

// SubtractTrains runs a fresh Subtracter over two whole trains and returns
// the output train. The trains must share a window length.
func SubtractTrains(pos, neg Train) Train {
	if len(pos) != len(neg) {
		panic("spike: subtracter train windows differ")
	}
	var s Subtracter
	out := NewTrain(len(pos))
	for t := range pos {
		out[t] = s.Step(pos[t], neg[t])
	}
	return out
}
