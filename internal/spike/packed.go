package spike

import "math/bits"

// PackedTrain is a spike train bit-packed into 64-cycle lanes: bit t%64 of
// word t/64 reports a spike in cycle t. It is the storage format behind the
// sparse spiking kernels in internal/xbar — a whole Γ=64 window is one
// machine word, so counting spikes is a popcount and scanning for the next
// spike is a trailing-zeros instruction. Bits at or beyond the window are
// always zero (canonical form); Pack and PackedUniform produce canonical
// trains, and the xbar kernels rely on it.
type PackedTrain []uint64

// Lanes returns the number of 64-bit words needed to hold a window of n
// cycles.
func Lanes(n int) int { return (n + 63) / 64 }

// Pack converts a boolean train to its packed form. The result has
// Lanes(len(t)) words and is canonical.
func Pack(t Train) PackedTrain {
	p := make(PackedTrain, Lanes(len(t)))
	for i, s := range t {
		if s {
			p[i>>6] |= 1 << uint(i&63)
		}
	}
	return p
}

// Unpack expands the packed train back to a boolean train of the given
// window length. Cycles beyond the packed capacity read as no-spike, so
// unpacking into a longer window zero-extends.
func (p PackedTrain) Unpack(window int) Train {
	t := NewTrain(window)
	for i := range t {
		if p.Get(i) {
			t[i] = true
		}
	}
	return t
}

// Count returns the number of spikes — one popcount per lane.
func (p PackedTrain) Count() int {
	n := 0
	for _, w := range p {
		n += bits.OnesCount64(w)
	}
	return n
}

// Get reports whether a spike occurs in cycle t. Out-of-range cycles
// (negative or beyond the packed capacity) read as no-spike.
func (p PackedTrain) Get(t int) bool {
	return t >= 0 && t>>6 < len(p) && p[t>>6]&(1<<uint(t&63)) != 0
}

// Capacity returns the number of cycles the packed train can address —
// always a multiple of 64, at least the window it was packed from.
func (p PackedTrain) Capacity() int { return len(p) * 64 }

// PackedUniform returns the packed form of UniformTrain(count, window)
// without materializing the boolean train. Instead of walking every cycle
// it jumps directly between spikes with the closed form of the Bresenham
// accumulator: from residue acc, the next spike is n = ⌈(window-acc)/count⌉
// cycles away and leaves residue acc + n·count − window. The result is
// bit-identical to Pack(UniformTrain(count, window)) — pinned by
// TestPackedUniformMatchesPack and FuzzPackRoundTrip.
func PackedUniform(count, window int) PackedTrain {
	count = Clamp(count, window)
	p := make(PackedTrain, Lanes(window))
	AppendUniform(p, count, window, 0, 1)
	return p
}

// AppendUniform OR-s the spikes of UniformTrain(count, window) into dst,
// placing cycle t at bit (t*stride+offset)%64 of word (t*stride+offset)/64.
// With offset 0, stride 1 this fills a single packed train; the xbar
// kernels use stride = lanes-per-timestep layouts to build timestep-major
// masks. count must already be clamped to [0, window].
func AppendUniform(dst []uint64, count, window, offset, stride int) {
	if count <= 0 {
		return
	}
	acc := 0
	t := -1
	for {
		// Next spike is the smallest n ≥ 1 with acc + n·count ≥ window.
		n := (window - acc + count - 1) / count
		t += n
		if t >= window {
			return
		}
		acc += n*count - window
		bit := t*stride + offset
		dst[bit>>6] |= 1 << uint(bit&63)
	}
}
