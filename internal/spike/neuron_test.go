package spike

import (
	"math"
	"math/rand"
	"testing"
)

func runNeuron(n *Neuron, drives []float64) int {
	count := 0
	for _, d := range drives {
		if n.Step(d) {
			count++
		}
	}
	return count
}

func TestNeuronFloorSemantics(t *testing.T) {
	// With per-cycle drives ≤ η, the ideal neuron emits exactly
	// floor(Σ drive / η) spikes over the window (Eq. 3-5 telescoping).
	rng := rand.New(rand.NewSource(21))
	const eta = 100.0
	for trial := 0; trial < 200; trial++ {
		window := 64
		drives := make([]float64, window)
		var total float64
		for i := range drives {
			drives[i] = rng.Float64() * eta
			total += drives[i]
		}
		n := &Neuron{Eta: eta}
		got := runNeuron(n, drives)
		want := int(total / eta)
		if got != want {
			t.Fatalf("trial %d: neuron fired %d, want floor(%v/%v)=%d", trial, got, total, eta, want)
		}
	}
}

func TestNeuronOneSpikePerCycleCap(t *testing.T) {
	// Drive of 3η in one cycle cannot emit 3 spikes at once; the excess
	// drains on later cycles (S-R latch emits one spike per cycle).
	n := &Neuron{Eta: 1}
	if !n.Step(3) {
		t.Fatal("cycle 0: want spike")
	}
	if !n.Step(0) {
		t.Fatal("cycle 1: want carried spike")
	}
	if !n.Step(0) {
		t.Fatal("cycle 2: want carried spike")
	}
	if n.Step(0) {
		t.Fatal("cycle 3: drive exhausted, got spike")
	}
}

func TestNeuronReset(t *testing.T) {
	n := &Neuron{Eta: 10}
	n.Step(9)
	if n.Potential() != 9 {
		t.Fatalf("potential = %v, want 9", n.Potential())
	}
	n.Reset()
	if n.Potential() != 0 {
		t.Fatalf("potential after reset = %v, want 0", n.Potential())
	}
	if n.Step(9) {
		t.Fatal("post-reset 9/10 drive fired")
	}
}

func TestRCNeuronEtaClosedForm(t *testing.T) {
	n := &RCNeuron{Vdd: 1.2, Vth: 0.7, Vre: 0.1, TauOverC: 0.003}
	want := math.Log((1.2-0.1)/(1.2-0.7)) / 0.003
	if got := n.Eta(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Eta() = %v, want %v", got, want)
	}
}

func TestDefaultRCNeuronMatchesEta(t *testing.T) {
	for _, eta := range []float64{1, 64, 1000, 3840} {
		n := DefaultRCNeuron(eta)
		if got := n.Eta(); math.Abs(got-eta)/eta > 1e-9 {
			t.Errorf("DefaultRCNeuron(%v).Eta() = %v", eta, got)
		}
	}
}

func TestRCNeuronExactWhenDrivesQuantized(t *testing.T) {
	// When each cycle's drive is exactly η, the capacitor lands exactly
	// on Vth every cycle: RC and ideal agree with zero error.
	const eta = 50.0
	rc := DefaultRCNeuron(eta)
	ideal := &Neuron{Eta: eta}
	for cycle := 0; cycle < 64; cycle++ {
		rcSpike := rc.Step(eta)
		idealSpike := ideal.Step(eta)
		if rcSpike != idealSpike {
			t.Fatalf("cycle %d: rc=%v ideal=%v", cycle, rcSpike, idealSpike)
		}
		if !rcSpike {
			t.Fatalf("cycle %d: drive η must fire every cycle", cycle)
		}
	}
}

func TestRCNeuronTracksIdealWithinOvershootBound(t *testing.T) {
	// With per-cycle drive ≤ dmax, each RC discharge loses < dmax of
	// accumulated drive, so over Y spikes the undercount is bounded by
	// ceil(Y·dmax/η) + 1. This quantifies the idealization in Eq. 2.
	rng := rand.New(rand.NewSource(31))
	const eta = 100.0
	for trial := 0; trial < 100; trial++ {
		dmax := eta / 8
		window := 256
		rc := DefaultRCNeuron(eta)
		ideal := &Neuron{Eta: eta}
		rcCount, idealCount := 0, 0
		for c := 0; c < window; c++ {
			d := rng.Float64() * dmax
			if rc.Step(d) {
				rcCount++
			}
			if ideal.Step(d) {
				idealCount++
			}
		}
		if rcCount > idealCount {
			t.Fatalf("trial %d: RC overcounted: rc=%d ideal=%d", trial, rcCount, idealCount)
		}
		bound := int(float64(idealCount)*dmax/eta) + 2
		if idealCount-rcCount > bound {
			t.Fatalf("trial %d: undercount %d exceeds bound %d", trial, idealCount-rcCount, bound)
		}
	}
}

func TestRCNeuronResetVoltage(t *testing.T) {
	n := DefaultRCNeuron(10)
	n.Step(5)
	if n.Voltage() <= n.Vre {
		t.Fatal("voltage did not rise on drive")
	}
	n.Reset()
	if got := n.Voltage(); got != n.Vre {
		t.Fatalf("voltage after reset = %v, want %v", got, n.Vre)
	}
}

func BenchmarkNeuronStep(b *testing.B) {
	n := &Neuron{Eta: 100}
	for i := 0; i < b.N; i++ {
		n.Step(1.5)
	}
}

func BenchmarkRCNeuronStep(b *testing.B) {
	n := DefaultRCNeuron(100)
	for i := 0; i < b.N; i++ {
		n.Step(1.5)
	}
}
