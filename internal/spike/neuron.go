package spike

import "math"

// Stepper is the cycle-stepped neuron contract shared by the ideal and RC
// models: advance one pipeline cycle with a conductance drive, report
// whether a spike is emitted, and Reset between sampling windows ("a reset
// signal will be sent to clear internal states before a new sampling window
// begins", §4.2). The packed kernels in internal/xbar inline this contract,
// so tests pin that Reset restores every implementation to its
// freshly-constructed behavior.
type Stepper interface {
	Step(drive float64) bool
	Reset()
}

// Neuron is the idealized integrate-and-fire neuron the paper's derivation
// assumes (Eq. 2-5): it accumulates the column conductance-drive each cycle
// and fires when the accumulation reaches the threshold η, carrying the
// remainder over. Over a window it emits floor(Σ drive / η) spikes (capped
// at one per cycle, as the S-R latch allows), which is exactly the
// telescoped RC-charging solution of Eq. 1 in the continuous-time limit.
type Neuron struct {
	// Eta is the firing threshold η = (C/τ)·ln((Vdd−Vre)/(Vdd−Vth)) in
	// conductance-drive units (Eq. 2 right-hand side).
	Eta float64

	acc float64
}

// Step advances the neuron one pipeline cycle with the given total
// conductance drive (Σ_i s_i(t)·g_ji for the column) and reports whether a
// spike is emitted this cycle.
func (n *Neuron) Step(drive float64) bool {
	n.acc += drive
	if n.acc >= n.Eta {
		n.acc -= n.Eta
		return true
	}
	return false
}

// Reset clears internal state; the mapper issues it between sampling
// windows ("a reset signal will be sent to clear internal states before a
// new sampling window begins", §4.2).
func (n *Neuron) Reset() { n.acc = 0 }

// Potential exposes the accumulated sub-threshold drive, for tests.
func (n *Neuron) Potential() float64 { return n.acc }

// RCNeuron is the circuit-faithful voltage-domain model of Figure 4(D) and
// Eq. 1: a capacitor charges toward Vdd through the crossbar's equivalent
// resistance and is discharged to Vre when it crosses Vth at a cycle
// boundary. Unlike Neuron, threshold overshoot within a cycle is lost on
// discharge, so it can undercount by a bounded amount; tests quantify the
// bound and the exact-match conditions.
type RCNeuron struct {
	Vdd float64 // charging supply voltage
	Vth float64 // firing threshold voltage
	Vre float64 // reset voltage
	// TauOverC is τ/C: charging time per cycle divided by the membrane
	// capacitance, which scales conductance-drive into the exponent of
	// Eq. 1.
	TauOverC float64

	v       float64
	started bool
}

// Eta returns the equivalent ideal threshold η = (C/τ)·ln((Vdd−Vre)/(Vdd−Vth))
// (Eq. 2), letting callers build a matched ideal Neuron.
func (n *RCNeuron) Eta() float64 {
	return math.Log((n.Vdd-n.Vre)/(n.Vdd-n.Vth)) / n.TauOverC
}

// Step advances one cycle with the given total conductance drive, per
// Eq. 1: Vdd − U_T = (Vdd − U_{T−1})·exp(−τ·G/C).
func (n *RCNeuron) Step(drive float64) bool {
	if !n.started {
		n.v = n.Vre
		n.started = true
	}
	n.v = n.Vdd - (n.Vdd-n.v)*math.Exp(-n.TauOverC*drive)
	if n.v >= n.Vth {
		n.v = n.Vre
		return true
	}
	return false
}

// Reset discharges the capacitor to the reset voltage.
func (n *RCNeuron) Reset() {
	n.v = n.Vre
	n.started = true
}

// Voltage exposes the membrane voltage, for tests.
func (n *RCNeuron) Voltage() float64 {
	if !n.started {
		return n.Vre
	}
	return n.v
}

// DefaultRCNeuron returns an RC neuron with a plausible 45 nm operating
// point whose ideal threshold equals eta.
func DefaultRCNeuron(eta float64) *RCNeuron {
	n := &RCNeuron{Vdd: 1.0, Vth: 0.5, Vre: 0.0, TauOverC: 1}
	// Solve TauOverC so that Eta() == eta: η = ln(2)/TauOverC.
	n.TauOverC = math.Log((n.Vdd-n.Vre)/(n.Vdd-n.Vth)) / eta
	return n
}
