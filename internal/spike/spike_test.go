package spike

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformTrainCount(t *testing.T) {
	for window := 1; window <= 128; window *= 2 {
		for count := 0; count <= window; count++ {
			tr := UniformTrain(count, window)
			if got := tr.Count(); got != count {
				t.Fatalf("UniformTrain(%d,%d).Count() = %d", count, window, got)
			}
			if got := tr.Window(); got != window {
				t.Fatalf("UniformTrain(%d,%d).Window() = %d", count, window, got)
			}
		}
	}
}

func TestUniformTrainClamps(t *testing.T) {
	if got := UniformTrain(-3, 16).Count(); got != 0 {
		t.Errorf("UniformTrain(-3,16).Count() = %d, want 0", got)
	}
	if got := UniformTrain(99, 16).Count(); got != 16 {
		t.Errorf("UniformTrain(99,16).Count() = %d, want 16", got)
	}
}

func TestUniformTrainEvenSpacing(t *testing.T) {
	// Half-rate train must alternate with no two adjacent spikes closer
	// than the ideal gap minus one.
	tr := UniformTrain(32, 64)
	prev := -2
	for i, s := range tr {
		if !s {
			continue
		}
		if i-prev < 2 {
			t.Fatalf("UniformTrain(32,64): spikes at %d and %d too close", prev, i)
		}
		prev = i
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, window, want int }{
		{-1, 64, 0}, {0, 64, 0}, {30, 64, 30}, {64, 64, 64}, {65, 64, 64},
	}
	for _, tc := range cases {
		if got := Clamp(tc.v, tc.window); got != tc.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", tc.v, tc.window, got, tc.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, w := range []int{1, 2, 4, 64, 256} {
		if !IsPow2(w) {
			t.Errorf("IsPow2(%d) = false", w)
		}
	}
	for _, w := range []int{0, -4, 3, 6, 65} {
		if IsPow2(w) {
			t.Errorf("IsPow2(%d) = true", w)
		}
	}
}

func TestValidateWindow(t *testing.T) {
	if err := ValidateWindow(64); err != nil {
		t.Errorf("ValidateWindow(64) = %v", err)
	}
	if err := ValidateWindow(0); err == nil {
		t.Error("ValidateWindow(0) = nil, want error")
	}
}

func TestQuickUniformTrainRoundTrip(t *testing.T) {
	f := func(count uint8) bool {
		c := int(count) % 65
		return UniformTrain(c, 64).Count() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTrainCountMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		tr := NewTrain(64)
		want := 0
		for i := range tr {
			if rng.Intn(2) == 1 {
				tr[i] = true
				want++
			}
		}
		return tr.Count() == want
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatal("Count mismatch on random train")
		}
	}
}
