// Package spike implements FPSA's spiking schema (paper §4.2): numbers are
// carried as spike counts inside a sampling window of Γ cycles, processed by
// integrate-and-fire neuron circuits and spike subtracters. The package
// provides both the idealized functional semantics the paper derives
// (Eq. 1-6: a PE computes ReLU of a vector-matrix product) and a
// circuit-faithful RC voltage-domain neuron used to validate the derivation.
package spike

import "fmt"

// Train is a binary spike train over a sampling window; Train[t] reports
// whether a spike occurs in cycle t.
type Train []bool

// NewTrain returns an empty (all-zero) train of the given window length.
func NewTrain(window int) Train { return make(Train, window) }

// Count returns the number of spikes in the train — the value the train
// encodes (a number in [0, Γ], representing [0,1] after normalization).
func (t Train) Count() int {
	n := 0
	for _, s := range t {
		if s {
			n++
		}
	}
	return n
}

// Window returns the sampling-window length Γ.
func (t Train) Window() int { return len(t) }

// UniformTrain returns a train of the given window with count spikes spread
// as evenly as possible — the pattern SMB spike generators emit when
// decoding a stored count back into a train (§4.3). Count is clamped to
// [0, window].
func UniformTrain(count, window int) Train {
	if count < 0 {
		count = 0
	}
	if count > window {
		count = window
	}
	t := NewTrain(window)
	if count == 0 {
		return t
	}
	// Bresenham-style even spacing: spike at cycle i when the running
	// error accumulator crosses the window.
	acc := 0
	for i := range t {
		acc += count
		if acc >= window {
			acc -= window
			t[i] = true
		}
	}
	return t
}

// Clamp returns v limited to the representable count range [0, window].
func Clamp(v, window int) int {
	if v < 0 {
		return 0
	}
	if v > window {
		return window
	}
	return v
}

// ValidateWindow reports whether a window length is usable (the SMB stores
// counts bit-indexed, so windows are powers of two in the paper; we only
// require positivity here and let callers impose the power-of-two rule).
func ValidateWindow(window int) error {
	if window <= 0 {
		return fmt.Errorf("spike: sampling window must be positive, got %d", window)
	}
	return nil
}

// IsPow2 reports whether w is a power of two (SMB bit-indexing, §4.3).
func IsPow2(w int) bool { return w > 0 && w&(w-1) == 0 }
