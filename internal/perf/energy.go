package perf

import (
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/mapper"
)

// EnergyBreakdown is the per-sample energy of one deployment, from the
// Table 1 per-block energies. Routing-wire/switch energy is excluded (the
// paper publishes no per-hop constant); PE energy scales with each
// core-op's active rows/columns (idle charging units and neurons are
// clock-gated), SMB energy counts one write and one read per buffered
// count, and CLB energy charges every controller cycle of the pipeline
// period.
type EnergyBreakdown struct {
	PEuJ  float64
	SMBuJ float64
	CLBuJ float64
}

// TotalUJ returns the per-sample total in microjoules.
func (e EnergyBreakdown) TotalUJ() float64 { return e.PEuJ + e.SMBuJ + e.CLBuJ }

// energyPerSample models one sample's energy on the FPSA fabric.
func energyPerSample(g *coreop.Graph, a mapper.Allocation, clbs int, p device.Params) EnergyBreakdown {
	var e EnergyBreakdown
	rows := float64(p.CrossbarRows)
	cols := float64(p.LogicalColumns())
	for gi, grp := range g.Groups {
		rowFrac := float64(grp.Rows) / rows
		colFrac := float64(grp.Cols) / cols
		vmmPJ := p.ChargingUnitsTotal.EnergyPJ*rowFrac +
			p.ReRAMArraysTotal.EnergyPJ*rowFrac*colFrac +
			p.NeuronUnitsTotal.EnergyPJ*colFrac +
			p.SubtractersTotal.EnergyPJ*colFrac
		e.PEuJ += float64(grp.Reuse) * vmmPJ * 1e-6

		// Buffered inputs: every consumed count is written once and
		// read once from a 16 Kb SMB.
		for _, ui := range grp.Deps {
			if a.Iterations[ui] > 1 || a.Iterations[gi] > 1 {
				counts := float64(g.Groups[ui].Cols) * float64(g.Groups[ui].Reuse)
				e.SMBuJ += 2 * counts * p.SMB.EnergyPJ * 1e-6
			}
		}
	}
	// Controllers tick every pipeline cycle of the sample period.
	cyclesPerSample := float64(a.MaxIterations()) * float64(p.SamplingWindow())
	e.CLBuJ += float64(clbs) * cyclesPerSample * p.CLB.EnergyPJ * 1e-6
	return e
}
