package perf

import (
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/mapper"
	"fpsa/internal/models"
	"fpsa/internal/synth"
)

// The autotuner trusts two order properties of the cost oracle: spending
// more duplication never slows the modeled pipeline down, and cutting a
// deployment across more chips never makes the links cheaper. These pin
// them so a model refactor cannot silently invert a search gradient.

// TestLatencyMonotoneInDuplication: raising the uniform duplication
// degree (within the model's reuse ceiling, so the replication rule
// stays out of play) never increases single-sample latency — more
// copies mean fewer serial iterations per group, never more.
func TestLatencyMonotoneInDuplication(t *testing.T) {
	for _, name := range []string{models.NameLeNet, models.NameVGG17} {
		prev := -1.0
		for _, dup := range []int{1, 2, 4, 8, 16, 32} {
			r := evalModel(t, name, dup, TargetFPSA)
			if prev >= 0 && r.LatencyUS > prev*1.0001 {
				t.Errorf("%s: latency rose from %.3fus to %.3fus when dup doubled to %d",
					name, prev, r.LatencyUS, dup)
			}
			prev = r.LatencyUS
		}
	}
}

// TestLatencyMonotoneInAssign: bumping any single group's explicit
// per-group duplication entry by one never increases modeled latency —
// the per-layer gradient the search climbs.
func TestLatencyMonotoneInAssign(t *testing.T) {
	g, err := models.ByName(models.NameLeNet)
	if err != nil {
		t.Fatal(err)
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eval := func(assign []int) Report {
		t.Helper()
		r, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: 1, Assign: assign}, TargetFPSA)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := make([]int, len(co.Groups))
	for i := range base {
		base[i] = 1
	}
	r0 := eval(base)
	for i, grp := range co.Groups {
		if grp.Reuse < 2 {
			continue // already saturated; +1 would just clamp back
		}
		bumped := append([]int(nil), base...)
		bumped[i] = 2
		if r := eval(bumped); r.LatencyUS > r0.LatencyUS*1.0001 {
			t.Errorf("group %d (%s): latency rose from %.3fus to %.3fus on +1 duplication",
				i, grp.Layer, r0.LatencyUS, r.LatencyUS)
		}
	}
}

// TestLinkCostMonotoneInCuts: every added inter-chip cut adds link
// traffic — LinkNSPerSample and latency never decrease as the cut list
// grows, and the chip count tracks the cuts exactly.
func TestLinkCostMonotoneInCuts(t *testing.T) {
	g, err := models.ByName(models.NameLeNet)
	if err != nil {
		t.Fatal(err)
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eval := func(cuts []int) Report {
		t.Helper()
		r, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: 1, CutWidths: cuts}, TargetFPSA)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	prevLink, prevLat := -1.0, -1.0
	for i, cuts := range [][]int{nil, {800}, {800, 1500}, {800, 1500, 400}} {
		r := eval(cuts)
		if r.Chips != 1+len(cuts) {
			t.Errorf("cuts %v: Chips = %d, want %d", cuts, r.Chips, 1+len(cuts))
		}
		if i == 0 && r.LinkNSPerSample != 0 {
			t.Errorf("single chip charged %v ns of link time", r.LinkNSPerSample)
		}
		if r.LinkNSPerSample < prevLink {
			t.Errorf("cuts %v: link cost fell from %.1fns to %.1fns", cuts, prevLink, r.LinkNSPerSample)
		}
		if r.LatencyUS < prevLat {
			t.Errorf("cuts %v: latency fell from %.3fus to %.3fus", cuts, prevLat, r.LatencyUS)
		}
		prevLink, prevLat = r.LinkNSPerSample, r.LatencyUS
	}
	// A wider cut costs at least as much as a narrower one.
	if narrow, wide := eval([]int{100}), eval([]int{10000}); wide.LinkNSPerSample < narrow.LinkNSPerSample {
		t.Errorf("wider cut cheaper: %v < %v", wide.LinkNSPerSample, narrow.LinkNSPerSample)
	}
}

// TestAssignUniformMatchesDup: an explicit Assign vector spelling the
// uniform allocation is bit-exact with the classic Dup-derived path —
// the oracle-level face of the compile-level equivalence property.
func TestAssignUniformMatchesDup(t *testing.T) {
	g, err := models.ByName(models.NameLeNet)
	if err != nil {
		t.Fatal(err)
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, dup := range []int{1, 4, 16} {
		uniform, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: dup}, TargetFPSA)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := mapper.Allocate(co, dup)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: dup, Assign: alloc.Dup}, TargetFPSA)
		if err != nil {
			t.Fatal(err)
		}
		if uniform != assign {
			t.Errorf("dup %d: uniform and explicit-assign reports differ:\n%+v\n%+v", dup, uniform, assign)
		}
	}
}
