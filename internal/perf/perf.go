// Package perf is the performance model behind the paper's evaluation: it
// combines the synthesized core-op graph, the mapper's allocation, the
// fabric's block costs and the routed (or estimated) communication delays
// into throughput, latency, area, and the three analytic bounds of §3 —
// peak performance, utilization bounds (spatial and temporal), and the
// communication bound.
//
// Timing model (per §4.2, §7.1):
//
//   - FPSA streams spike trains; a pipeline stage's effective cycle is
//     max(PE clock, hop delay of its routed path), so one VMM takes
//     Γ·max(2.443 ns, hops·1.651 ns) — the Figure 7 comp/comm bars.
//   - FP-PRIME computes a full VMM then ships 6-bit counts over the FPSA
//     fabric: T = VMM + 6·hops·hopDelay.
//   - PRIME computes then contends for the shared memory bus:
//     T = VMM + bits·active/bandwidth.
//
// Stage time is iterations × T; throughput is one sample per bottleneck
// stage; latency accumulates along the group graph's critical path.
package perf

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/mapper"
	"fpsa/internal/netlist"
	"fpsa/internal/prime"
	"fpsa/internal/shard"
)

// Target selects the architecture being modeled.
type Target int

// Evaluation targets.
const (
	TargetFPSA Target = iota
	TargetFPPRIME
	TargetPRIME
)

// String renders the target.
func (t Target) String() string {
	switch t {
	case TargetFPSA:
		return "FPSA"
	case TargetFPPRIME:
		return "FP-PRIME"
	case TargetPRIME:
		return "PRIME"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// Input bundles everything one evaluation needs.
type Input struct {
	// Model supplies per-sample op counts (Table 3 accounting).
	Model *cgraph.Graph
	// CoreOps is the synthesized group graph.
	CoreOps *coreop.Graph
	// Params are the 45 nm constants.
	Params device.Params
	// Dup is the model duplication degree (§5.2).
	Dup int
	// Assign, when non-empty, is an explicit per-group duplication vector
	// (one entry per CoreOps group, each ≥ 1, clamped to that group's
	// reuse degree). It overrides the uniform Dup-derived allocation and
	// is how the autotuner scores per-layer candidates; Dup then only
	// feeds the whole-model replication rule below. Empty keeps the
	// classic uniform allocation bit-exact.
	Assign []int
	// Hops is the mean routed hop count for FPSA-fabric targets; 0 uses
	// Params.TypicalRouteHops (annealed pipeline placements keep
	// connected blocks adjacent, so the value is size-independent — the
	// router tests confirm it on real netlists).
	Hops int
	// Bus is PRIME's memory bus (zero value uses prime.DefaultBus).
	Bus prime.Bus
	// CutWidths, when non-empty, describes a sharded multi-chip
	// deployment: per inter-chip link, the signal values crossing it per
	// sample. Each link's transfer is charged into latency, and the
	// busiest link becomes a pipeline stage that can bound throughput.
	CutWidths []int
	// Link models the inter-chip interconnect (zero value =
	// shard.DefaultLink with the params' IOBits per signal).
	Link shard.Link
}

// Report is one evaluation result.
type Report struct {
	Name   string
	Target Target
	Dup    int

	PEs, SMBs, CLBs int
	// Replicas is the whole-model sample-parallel replication applied
	// when duplication saturates every group's reuse degree (MLPs).
	Replicas int

	AreaMM2       float64
	ThroughputSPS float64 // samples per second
	LatencyUS     float64 // single-sample pipeline latency
	PerfOPS       float64 // model ops × throughput
	DensityOPSmm2 float64

	// Analytic bounds (§3), in OPS.
	PeakOPS          float64
	SpatialBoundOPS  float64
	TemporalBoundOPS float64

	// Figure 7 bars: per-VMM computation and communication latency.
	CompNSPerVMM float64
	CommNSPerVMM float64

	// Chips is the deployment's chip count (1 unless CutWidths sharded
	// it); LinkNSPerSample is the summed per-sample inter-chip transfer
	// time charged into latency.
	Chips           int
	LinkNSPerSample float64

	// Energy model (FPSA-fabric targets only; zero for PRIME, whose
	// per-access energies the paper does not publish).
	Energy  EnergyBreakdown
	PowerMW float64
}

// Evaluate runs the model for one target.
func Evaluate(in Input, target Target) (Report, error) {
	if in.Dup < 1 {
		return Report{}, fmt.Errorf("perf: duplication degree %d", in.Dup)
	}
	p := in.Params
	alloc, err := allocFor(in)
	if err != nil {
		return Report{}, err
	}
	hops := in.Hops
	if hops <= 0 {
		hops = p.TypicalRouteHops
	}
	bus := in.Bus
	if bus.BandwidthBitsPerNS <= 0 {
		bus = prime.DefaultBus
	}

	gamma := float64(p.SamplingWindow())
	var compNS, commNS, stageNS float64 // per-VMM latencies
	switch target {
	case TargetFPSA:
		compNS = gamma * p.PipelineClockNS()
		commNS = gamma * float64(hops) * p.WireDelayPerHopNS
		stageNS = compNS
		if commNS > stageNS {
			stageNS = commNS
		}
	case TargetFPPRIME:
		compNS = prime.PE.VMMLatencyNS
		commNS = float64(p.IOBits*hops) * p.WireDelayPerHopNS
		stageNS = compNS + commNS
	case TargetPRIME:
		compNS = prime.PE.VMMLatencyNS
		commNS = bus.CommLatencyNS(activePEs(in.CoreOps, alloc))
		stageNS = compNS + commNS
	default:
		return Report{}, fmt.Errorf("perf: unknown target %v", target)
	}

	// Whole-model replication when duplication exhausts reuse (§5.2's
	// allocation cannot exceed a group's reuse degree; the remaining
	// budget replicates the pipeline for sample parallelism).
	replicas := 1
	if maxReuse := in.CoreOps.MaxReuse(); in.Dup > maxReuse {
		replicas = in.Dup / maxReuse
	}

	rep := Report{
		Name:         in.CoreOps.Name,
		Target:       target,
		Dup:          in.Dup,
		Replicas:     replicas,
		CompNSPerVMM: compNS,
		CommNSPerVMM: commNS,
	}

	// Block inventory and area.
	switch target {
	case TargetFPSA, TargetFPPRIME:
		nl, err := mapper.BuildNetlist(in.CoreOps, alloc, p, nil)
		if err != nil {
			return Report{}, err
		}
		pes, smbs, clbs := nl.Counts()
		rep.PEs, rep.SMBs, rep.CLBs = pes*replicas, smbs*replicas, clbs*replicas
		peArea := p.PETotal.AreaUM2
		if target == TargetFPPRIME {
			peArea = prime.PE.AreaUM2
		}
		rep.AreaMM2 = (float64(rep.PEs)*peArea +
			float64(rep.SMBs)*p.SMB.AreaUM2 +
			float64(rep.CLBs)*p.CLB.AreaUM2) * 1e-6
		if target == TargetFPSA {
			rep.Energy = energyPerSample(in.CoreOps, alloc, clbs, p)
		}
	case TargetPRIME:
		rep.PEs = alloc.TotalPEs * replicas
		rep.AreaMM2 = float64(rep.PEs) * prime.PE.AreaUM2 * 1e-6
	}

	// Inter-chip links of a sharded deployment: each link's per-sample
	// transfer adds pipeline-fill latency, and the busiest link is a
	// pipeline stage of its own that can bound throughput — leaving the
	// die costs serialization latency plus bandwidth time, unlike the
	// on-fabric wires already inside stageNS.
	rep.Chips = 1 + len(in.CutWidths)
	var maxLinkNS float64
	if len(in.CutWidths) > 0 {
		link := in.Link
		if link.SignalBits <= 0 {
			link.SignalBits = p.IOBits
		}
		for _, w := range in.CutWidths {
			t := link.TransferNS(w)
			rep.LinkNSPerSample += t
			if t > maxLinkNS {
				maxLinkNS = t
			}
		}
	}

	// Throughput and latency. A sample's latency is the pipeline fill
	// along the critical path plus the bottleneck stage's full
	// iteration drain. Fill cost per stage depends on the connection:
	// bufferless NBD chaining (both sides non-time-multiplexed, FPSA's
	// spike-train streaming, §7.1) starts the consumer one effective
	// cycle after its producer; buffered stages wait a full stage time.
	// FP-PRIME and PRIME transmit counts after the whole VMM, so every
	// stage fills fully.
	maxIter := float64(alloc.MaxIterations())
	bottleneckNS := maxIter * stageNS
	if maxLinkNS > bottleneckNS {
		bottleneckNS = maxLinkNS
	}
	rep.ThroughputSPS = float64(replicas) / (bottleneckNS * 1e-9)
	fillCycleNS := stageNS
	if target == TargetFPSA {
		fillCycleNS = stageNS / gamma // one effective pipeline cycle
	}
	rep.LatencyUS = (criticalFillNS(in.CoreOps, alloc, stageNS, fillCycleNS) + bottleneckNS + rep.LinkNSPerSample) * 1e-3
	rep.PerfOPS = float64(in.Model.TotalOps()) * rep.ThroughputSPS
	if rep.AreaMM2 > 0 {
		rep.DensityOPSmm2 = rep.PerfOPS / rep.AreaMM2
	}
	rep.PowerMW = rep.Energy.TotalUJ() * rep.ThroughputSPS * 1e-3

	// Bounds. Peak and the utilization bounds assume ideal communication
	// (stage = comp only).
	opsPerVMM := float64(p.OpsPerVMM())
	rep.PeakOPS = float64(rep.PEs) * opsPerVMM / (compNS * 1e-9)
	var usefulPerVMMSum float64 // Σ over PE copies of useful ops per VMM
	for gi, grp := range in.CoreOps.Groups {
		usefulPerVMMSum += float64(alloc.Dup[gi]) * 2 * float64(grp.UsefulWeights)
	}
	rep.SpatialBoundOPS = float64(replicas) * usefulPerVMMSum / (compNS * 1e-9)
	rep.TemporalBoundOPS = float64(in.Model.TotalOps()) * float64(replicas) / (maxIter * compNS * 1e-9)
	return rep, nil
}

// activePEs returns the duty-cycle-weighted number of PEs communicating
// concurrently: a group's copies are busy iterations/maxIterations of the
// pipeline period.
func activePEs(g *coreop.Graph, a mapper.Allocation) float64 {
	maxIter := float64(a.MaxIterations())
	var active float64
	for gi := range g.Groups {
		active += float64(a.Dup[gi]) * float64(a.Iterations[gi]) / maxIter
	}
	return active
}

// criticalFillNS returns the longest dependency chain's pipeline-fill
// time: an NBD-chained stage (it and all its producers execute once per
// sample) adds one effective cycle, a buffered stage adds a full stage
// time.
func criticalFillNS(g *coreop.Graph, a mapper.Allocation, stageNS, fillCycleNS float64) float64 {
	longest := make([]float64, len(g.Groups))
	best := 0.0
	for gi, grp := range g.Groups {
		pred := 0.0
		nbd := a.Iterations[gi] == 1
		for _, d := range grp.Deps {
			if longest[d] > pred {
				pred = longest[d]
			}
			if a.Iterations[d] > 1 {
				nbd = false
			}
		}
		fill := stageNS
		if nbd {
			fill = fillCycleNS
		}
		longest[gi] = pred + fill
		if longest[gi] > best {
			best = longest[gi]
		}
	}
	return best
}

// allocFor resolves the evaluation's allocation: the explicit per-group
// Assign vector when given, the uniform Dup-derived policy otherwise.
func allocFor(in Input) (mapper.Allocation, error) {
	if len(in.Assign) > 0 {
		return mapper.AllocateVector(in.CoreOps, in.Assign)
	}
	return mapper.Allocate(in.CoreOps, in.Dup)
}

// NetlistFor exposes the netlist the report's inventory came from, for
// callers that also place & route it.
func NetlistFor(in Input) (*netlist.Netlist, mapper.Allocation, error) {
	alloc, err := allocFor(in)
	if err != nil {
		return nil, mapper.Allocation{}, err
	}
	nl, err := mapper.BuildNetlist(in.CoreOps, alloc, in.Params, nil)
	return nl, alloc, err
}
