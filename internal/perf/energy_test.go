package perf

import (
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/synth"
)

func TestEnergyScalesWithModelSize(t *testing.T) {
	small := evalModel(t, models.NameLeNet, 1, TargetFPSA)
	big := evalModel(t, models.NameVGG16, 1, TargetFPSA)
	if small.Energy.TotalUJ() <= 0 {
		t.Fatal("LeNet energy not positive")
	}
	if big.Energy.TotalUJ() <= small.Energy.TotalUJ() {
		t.Errorf("VGG16 energy %.3g ≤ LeNet %.3g", big.Energy.TotalUJ(), small.Energy.TotalUJ())
	}
}

func TestEnergyPerSampleIndependentOfDuplication(t *testing.T) {
	// Duplication trades area for throughput; per-sample work is
	// unchanged, so PE energy per sample must stay identical and total
	// may only shrink (fewer iterations → fewer controller cycles).
	r1 := evalModel(t, models.NameVGG17, 1, TargetFPSA)
	r16 := evalModel(t, models.NameVGG17, 16, TargetFPSA)
	if r1.Energy.PEuJ != r16.Energy.PEuJ {
		t.Errorf("PE energy changed with duplication: %v vs %v", r1.Energy.PEuJ, r16.Energy.PEuJ)
	}
	if r16.Energy.CLBuJ > r1.Energy.CLBuJ {
		t.Errorf("CLB energy rose with duplication: %v vs %v", r1.Energy.CLBuJ, r16.Energy.CLBuJ)
	}
}

func TestPowerTracksThroughputTimesEnergy(t *testing.T) {
	r := evalModel(t, models.NameLeNet, 4, TargetFPSA)
	want := r.Energy.TotalUJ() * r.ThroughputSPS * 1e-3
	if d := r.PowerMW - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("PowerMW = %v, want %v", r.PowerMW, want)
	}
	if r.PowerMW <= 0 {
		t.Error("power not positive")
	}
}

func TestPRIMEEnergyZero(t *testing.T) {
	// The paper publishes no PRIME per-access energies; the model must
	// report zero rather than invent numbers.
	r := evalModel(t, models.NameLeNet, 1, TargetPRIME)
	if r.Energy.TotalUJ() != 0 || r.PowerMW != 0 {
		t.Errorf("PRIME energy/power = %v / %v, want 0", r.Energy.TotalUJ(), r.PowerMW)
	}
}

func TestFullCrossbarVMMEnergyMatchesTable1(t *testing.T) {
	// A single full 256×256 group at reuse 1 must charge exactly the
	// Table 1 component-sum PE energy.
	g, err := models.ByName(models.NameMLP)
	if err != nil {
		t.Fatal(err)
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = co
	p := device.Params45nm
	full := p.ChargingUnitsTotal.EnergyPJ + p.ReRAMArraysTotal.EnergyPJ +
		p.NeuronUnitsTotal.EnergyPJ + p.SubtractersTotal.EnergyPJ
	if got := p.PEEnergyPJ(); got != full {
		t.Errorf("PEEnergyPJ = %v, want %v", got, full)
	}
}
