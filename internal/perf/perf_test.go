package perf

import (
	"math"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/prime"
	"fpsa/internal/synth"
)

// evalModel evaluates one zoo model at one duplication degree.
func evalModel(t *testing.T, name string, dup int, target Target) Report {
	t.Helper()
	g, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: dup}, target)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFigure7LatencyBars(t *testing.T) {
	// Per-PE computation/communication latency for VGG16 at the 64×
	// evaluation configuration (Figure 7): PRIME ~3064.7 comp + ~2×10⁴
	// comm; FP-PRIME comm 59.4; FPSA comp 156.4, comm 633.9.
	rPrime := evalModel(t, models.NameVGG16, 64, TargetPRIME)
	if math.Abs(rPrime.CompNSPerVMM-3064.7) > 0.1 {
		t.Errorf("PRIME comp = %v, want 3064.7", rPrime.CompNSPerVMM)
	}
	if rPrime.CommNSPerVMM < 1e4 || rPrime.CommNSPerVMM > 4e4 {
		t.Errorf("PRIME comm = %v ns, want ~2e4 (Figure 7)", rPrime.CommNSPerVMM)
	}
	rFP := evalModel(t, models.NameVGG16, 1, TargetFPPRIME)
	if math.Abs(rFP.CommNSPerVMM-59.4) > 1 {
		t.Errorf("FP-PRIME comm = %v, want 59.4", rFP.CommNSPerVMM)
	}
	rFPSA := evalModel(t, models.NameVGG16, 1, TargetFPSA)
	if math.Abs(rFPSA.CompNSPerVMM-156.4) > 0.5 {
		t.Errorf("FPSA comp = %v, want 156.4", rFPSA.CompNSPerVMM)
	}
	if math.Abs(rFPSA.CommNSPerVMM-633.9) > 7 {
		t.Errorf("FPSA comm = %v, want 633.9", rFPSA.CommNSPerVMM)
	}
}

func TestBoundsOrdering(t *testing.T) {
	// Peak ≥ spatial bound ≥ temporal bound ≥ real performance, for all
	// models and duplication degrees (§3's bound hierarchy).
	for _, name := range []string{models.NameLeNet, models.NameVGG17} {
		for _, dup := range []int{1, 4, 16} {
			r := evalModel(t, name, dup, TargetFPSA)
			if r.SpatialBoundOPS > r.PeakOPS*1.0001 {
				t.Errorf("%s dup %d: spatial %v > peak %v", name, dup, r.SpatialBoundOPS, r.PeakOPS)
			}
			if r.TemporalBoundOPS > r.SpatialBoundOPS*1.0001 {
				t.Errorf("%s dup %d: temporal %v > spatial %v", name, dup, r.TemporalBoundOPS, r.SpatialBoundOPS)
			}
			if r.PerfOPS > r.TemporalBoundOPS*1.0001 {
				t.Errorf("%s dup %d: real %v > temporal %v", name, dup, r.PerfOPS, r.TemporalBoundOPS)
			}
		}
	}
}

func TestSuperLinearScaling(t *testing.T) {
	// Figure 8: CNN performance grows super-linearly in area as the
	// duplication degree rises (utilization recovers), so perf ratio
	// must exceed area ratio.
	r1 := evalModel(t, models.NameVGG17, 1, TargetFPSA)
	r16 := evalModel(t, models.NameVGG17, 16, TargetFPSA)
	perfRatio := r16.PerfOPS / r1.PerfOPS
	areaRatio := r16.AreaMM2 / r1.AreaMM2
	if perfRatio < 8 {
		t.Errorf("perf ratio at 16× dup = %.2f, want ≥8", perfRatio)
	}
	if areaRatio > perfRatio {
		t.Errorf("area ratio %.2f ≥ perf ratio %.2f: not super-linear", areaRatio, perfRatio)
	}
}

func TestPRIMECommunicationBound(t *testing.T) {
	// Figure 2: PRIME's real performance saturates with more area while
	// FPSA keeps scaling; the gap at high duplication reaches two to
	// three orders of magnitude for VGG16-class reuse.
	rP1 := evalModel(t, models.NameVGG17, 1, TargetPRIME)
	rP64 := evalModel(t, models.NameVGG17, 64, TargetPRIME)
	rF64 := evalModel(t, models.NameVGG17, 64, TargetFPSA)
	primeScale := rP64.PerfOPS / rP1.PerfOPS
	if primeScale > 16 {
		t.Errorf("PRIME scaled %.1f× at 64× dup — bus bound missing", primeScale)
	}
	if gap := rF64.PerfOPS / rP64.PerfOPS; gap < 30 {
		t.Errorf("FPSA/PRIME gap at 64× dup = %.1f×, want ≫30", gap)
	}
}

func TestFPPRIMEBreaksCommBound(t *testing.T) {
	// Figure 6: FP-PRIME (FPSA routing + PRIME PEs) sits near its ideal
	// curve: communication adds <5% to its stage time.
	r := evalModel(t, models.NameVGG17, 16, TargetFPPRIME)
	if frac := r.CommNSPerVMM / r.CompNSPerVMM; frac > 0.05 {
		t.Errorf("FP-PRIME comm/comp = %.3f, want <0.05", frac)
	}
	if r.PerfOPS < 0.9*r.TemporalBoundOPS {
		t.Errorf("FP-PRIME real %v far from ideal %v", r.PerfOPS, r.TemporalBoundOPS)
	}
}

func TestMLPReplication(t *testing.T) {
	// MLPs have reuse degree 1: duplication becomes whole-model
	// replication and throughput scales linearly.
	r1 := evalModel(t, models.NameMLP, 1, TargetFPSA)
	r64 := evalModel(t, models.NameMLP, 64, TargetFPSA)
	if r64.Replicas != 64 {
		t.Errorf("Replicas = %d, want 64", r64.Replicas)
	}
	if ratio := r64.ThroughputSPS / r1.ThroughputSPS; math.Abs(ratio-64) > 1 {
		t.Errorf("MLP throughput ratio = %v, want 64", ratio)
	}
	// Bounds coincide for MLPs (no weight sharing ⇒ balanced workload,
	// Figure 8c): temporal equals spatial.
	if math.Abs(r64.TemporalBoundOPS-r64.SpatialBoundOPS)/r64.SpatialBoundOPS > 0.01 {
		t.Errorf("MLP temporal %v ≠ spatial %v", r64.TemporalBoundOPS, r64.SpatialBoundOPS)
	}
}

func TestEvaluateValidation(t *testing.T) {
	g, _ := models.ByName(models.NameMLP)
	co, err := synth.Synthesize(g, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: 0}, TargetFPSA); err == nil {
		t.Error("dup 0 accepted")
	}
	if _, err := Evaluate(Input{Model: g, CoreOps: co, Params: device.Params45nm, Dup: 1}, Target(99)); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestPrimeDensityConstant(t *testing.T) {
	if got := prime.ComputationalDensityOPSmm2(); math.Abs(got-prime.DensityPRIME)/prime.DensityPRIME > 0.001 {
		t.Errorf("PRIME density = %v, want %v", got, prime.DensityPRIME)
	}
}
