package trainer

import (
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/synth"
)

// trainedNet returns a small trained network and its evaluation set.
func trainedNet(t *testing.T) (*MLP, Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(301))
	train, test := SyntheticClusters(rng, 900, 16, 4, 0.08).Split(2.0 / 3)
	m, err := NewMLP(rng, []int{16, 24, 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(rng, train, TrainOptions{Epochs: 40, LR: 0.03})
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("trained accuracy = %.3f, want ≥0.9", acc)
	}
	return m, test
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(rand.New(rand.NewSource(1)), []int{5}); err == nil {
		t.Error("single-dim MLP accepted")
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	ds := SyntheticClusters(rng, 400, 8, 3, 0.05)
	m, err := NewMLP(rng, []int{8, 12, 3})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Accuracy(ds)
	m.Train(rng, ds, TrainOptions{Epochs: 30, LR: 0.05})
	after := m.Accuracy(ds)
	if after <= before {
		t.Errorf("accuracy did not improve: %.3f → %.3f", before, after)
	}
	if after < 0.85 {
		t.Errorf("trained accuracy %.3f too low", after)
	}
}

func TestForwardReLU(t *testing.T) {
	m := &MLP{Dims: []int{2, 2}, W: [][][]float64{{{1, -1}, {1, -1}}}}
	acts := m.Forward([]float64{1, 1})
	out := acts[1]
	if out[0] != 2 || out[1] != 0 {
		t.Errorf("out = %v, want [2 0] (ReLU clips)", out)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	m, err := NewMLP(rng, []int{3, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.W[0][0][0] += 100
	if m.W[0][0][0] == c.W[0][0][0] {
		t.Error("clone shares weight storage")
	}
}

func TestGraphAndWeightSourceCompile(t *testing.T) {
	// Integration: a trained MLP compiles through the synthesizer and
	// its spiking execution agrees with the float model on most
	// classifications.
	m, test := trainedNet(t)
	opts := synth.DefaultOptions()
	opts.Weights = m.WeightSource()
	_, prog, err := synth.Compile(m.Graph("trained"), opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	agree, n := 0, 0
	for i := 0; i < 60; i++ {
		in := synth.QuantizeInput(test.X[i], window)
		out, err := prog.Run(in, synth.RunOptions{Mode: synth.ModeReference})
		if err != nil {
			t.Fatal(err)
		}
		if synth.Argmax(out) == m.Predict(test.X[i]) {
			agree++
		}
		n++
	}
	if frac := float64(agree) / float64(n); frac < 0.8 {
		t.Errorf("spiking/float agreement = %.2f, want ≥0.8", frac)
	}
}

func TestProgramNetworkQuantizationOnly(t *testing.T) {
	// Ideal programming at the paper's add-method precision keeps
	// normalized accuracy near 1.
	m, test := trainedNet(t)
	spec := device.CellSpec{Bits: 4}
	res := QuantizationOnly(m, test, device.NewAdd(spec, 8), spec)
	if res.NormalizedAccuracy < 0.97 {
		t.Errorf("add-8 quantization-only normalized accuracy = %.3f, want ≥0.97", res.NormalizedAccuracy)
	}
	// One 4-bit cell (16 levels) loses visibly more.
	res1 := QuantizationOnly(m, test, device.NewAdd(spec, 1), spec)
	if res1.NormalizedAccuracy > res.NormalizedAccuracy+1e-9 {
		t.Errorf("1-cell quantization (%.3f) beats 8-cell (%.3f)", res1.NormalizedAccuracy, res.NormalizedAccuracy)
	}
}

// fig9Net returns the deeper substitute network the variation study uses
// (depth compounds programming noise the way VGG16's depth does).
func fig9Net(t *testing.T) (*MLP, Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(301))
	train, test := SyntheticClusters(rng, 1800, 24, 8, 0.13).Split(2.0 / 3)
	m, err := NewMLP(rng, []int{24, 48, 40, 32, 8})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(rng, train, TrainOptions{Epochs: 60, LR: 0.02})
	if acc := m.Accuracy(test); acc < 0.95 {
		t.Fatalf("fig9 net accuracy = %.3f, want ≥0.95", acc)
	}
	return m, test
}

func TestVariationStudyReproducesFigure9Ordering(t *testing.T) {
	// The Figure 9 shape at the measured cell variation: the PRIME
	// splice configuration collapses to ~0.7 normalized accuracy while
	// the paper's add configuration stays near full precision.
	m, test := fig9Net(t)
	rng := rand.New(rand.NewSource(304))
	spec := device.Cell4BitMeasured
	splice := VariationStudy(m, test, device.NewSplice(spec, 2), spec, rng, 8)
	add := VariationStudy(m, test, device.NewAdd(spec, 8), spec, rng, 8)
	if splice.NormalizedAccuracy < 0.5 || splice.NormalizedAccuracy > 0.85 {
		t.Errorf("splice-2 normalized accuracy = %.3f, want ~0.7 (calibration point)", splice.NormalizedAccuracy)
	}
	if add.NormalizedAccuracy < 0.95 {
		t.Errorf("add-8 normalized accuracy = %.3f, want ≥0.95 (predicted, paper ~1.0)", add.NormalizedAccuracy)
	}
	if add.NormalizedAccuracy <= splice.NormalizedAccuracy {
		t.Errorf("add (%.3f) not better than splice (%.3f)", add.NormalizedAccuracy, splice.NormalizedAccuracy)
	}
	t.Logf("splice=%.3f add=%.3f (paper: ~0.7 vs ~1.0)", splice.NormalizedAccuracy, add.NormalizedAccuracy)
}

func TestSyntheticClustersLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	ds := SyntheticClusters(rng, 100, 4, 5, 0.01)
	if ds.Len() != 100 || ds.Classes != 5 {
		t.Fatalf("dataset %d samples %d classes", ds.Len(), ds.Classes)
	}
	for i, x := range ds.X {
		if len(x) != 4 {
			t.Fatalf("sample %d has %d features", i, len(x))
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("feature %v outside [0,1]", v)
			}
		}
		if ds.Y[i] < 0 || ds.Y[i] >= 5 {
			t.Fatalf("label %d out of range", ds.Y[i])
		}
	}
}
