// Package trainer is a small pure-Go neural-network trainer used to obtain
// real trained weights for the functional experiments — most importantly
// the device-variation accuracy study (paper Figure 9), whose subject
// network substitutes for VGG16/ImageNet (see DESIGN.md §2: the study
// exercises the identical quantize → program-cells → perturb → re-evaluate
// code path on any trained network).
//
// Networks are bias-free MLPs with ReLU after every layer, including the
// classifier — exactly the function class FPSA's core-op executes — so the
// trained model maps onto the hardware with no structural approximation.
package trainer

import (
	"fmt"
	"math"
	"math/rand"

	"fpsa/internal/cgraph"
)

// Dataset is a labeled feature set with features in [0, 1].
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// Split partitions the dataset: the first ceil(frac·n) samples become the
// training set, the rest the held-out set. Samples are interleaved by
// class at generation time, so both halves cover every class.
func (d Dataset) Split(frac float64) (train, test Dataset) {
	cut := int(math.Ceil(frac * float64(d.Len())))
	if cut > d.Len() {
		cut = d.Len()
	}
	train = Dataset{X: d.X[:cut], Y: d.Y[:cut], Classes: d.Classes}
	test = Dataset{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes}
	return train, test
}

// SyntheticClusters generates a classification dataset: `classes` Gaussian
// clusters with random centers in [0.2, 0.8]^dim and the given noise
// standard deviation, n samples total, features clamped to [0, 1].
func SyntheticClusters(rng *rand.Rand, n, dim, classes int, noise float64) Dataset {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = 0.2 + 0.6*rng.Float64()
		}
	}
	ds := Dataset{X: make([][]float64, n), Y: make([]int, n), Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for j := range x {
			v := centers[c][j] + rng.NormFloat64()*noise
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			x[j] = v
		}
		ds.X[i] = x
		ds.Y[i] = c
	}
	return ds
}

// MLP is a bias-free multi-layer perceptron with ReLU everywhere.
type MLP struct {
	// Dims is [input, hidden..., classes].
	Dims []int
	// W[l][i][j] is layer l's weight from input i to output j.
	W [][][]float64
}

// NewMLP initializes He-scaled random weights.
func NewMLP(rng *rand.Rand, dims []int) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("trainer: need ≥2 dims, got %v", dims)
	}
	m := &MLP{Dims: append([]int(nil), dims...)}
	for l := 0; l+1 < len(dims); l++ {
		scale := math.Sqrt(2 / float64(dims[l]))
		w := make([][]float64, dims[l])
		for i := range w {
			w[i] = make([]float64, dims[l+1])
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		m.W = append(m.W, w)
	}
	return m, nil
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.W) }

// Forward runs inference, returning every layer's post-ReLU activations
// (acts[0] is the input).
func (m *MLP) Forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.W)+1)
	acts[0] = x
	for l, w := range m.W {
		out := make([]float64, m.Dims[l+1])
		in := acts[l]
		for i, wi := range w {
			xi := in[i]
			if xi == 0 {
				continue
			}
			for j, wij := range wi {
				out[j] += wij * xi
			}
		}
		for j := range out {
			if out[j] < 0 {
				out[j] = 0
			}
		}
		acts[l+1] = out
	}
	return acts
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int {
	acts := m.Forward(x)
	out := acts[len(acts)-1]
	best := 0
	for j, v := range out {
		if v > out[best] {
			best = j
		}
	}
	return best
}

// Accuracy evaluates classification accuracy on a dataset.
func (m *MLP) Accuracy(ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		if m.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// TrainOptions configures SGD.
type TrainOptions struct {
	Epochs int
	LR     float64
	// Target is the one-hot magnitude (ReLU outputs regress toward it;
	// default 1).
	Target float64
}

// Train runs plain SGD with squared loss on the ReLU outputs. The final
// ReLU means wrong-class outputs are pushed to 0 and the true class toward
// Target — a hardware-friendly objective that needs no softmax.
func (m *MLP) Train(rng *rand.Rand, ds Dataset, opts TrainOptions) {
	if opts.Epochs <= 0 {
		opts.Epochs = 30
	}
	if opts.LR <= 0 {
		opts.LR = 0.05
	}
	if opts.Target <= 0 {
		opts.Target = 1
	}
	order := rng.Perm(ds.Len())
	for e := 0; e < opts.Epochs; e++ {
		for _, idx := range order {
			m.step(ds.X[idx], ds.Y[idx], opts.LR, opts.Target)
		}
	}
}

// step backpropagates one sample.
func (m *MLP) step(x []float64, label int, lr, target float64) {
	acts := m.Forward(x)
	out := acts[len(acts)-1]
	// dL/dout with L = Σ (out − t)².
	grad := make([]float64, len(out))
	for j := range out {
		t := 0.0
		if j == label {
			t = target
		}
		grad[j] = 2 * (out[j] - t)
		if out[j] == 0 && grad[j] > 0 {
			grad[j] = 0 // ReLU gate
		}
	}
	for l := len(m.W) - 1; l >= 0; l-- {
		in := acts[l]
		w := m.W[l]
		var next []float64
		if l > 0 {
			next = make([]float64, len(in))
		}
		for i := range w {
			xi := in[i]
			wi := w[i]
			var g float64
			for j := range wi {
				if next != nil {
					g += wi[j] * grad[j]
				}
				wi[j] -= lr * grad[j] * xi
			}
			if next != nil {
				if xi == 0 && g > 0 {
					g = 0 // ReLU gate on the hidden activation
				}
				next[i] = g
			}
		}
		grad = next
	}
}

// LayerName returns the canonical layer name used by Graph and
// WeightSource ("fc1", "fc2", ...).
func LayerName(l int) string { return fmt.Sprintf("fc%d", l+1) }

// Graph builds the matching computational graph (Input → FC+ReLU ... →
// FC+ReLU), suitable for synth.Compile.
func (m *MLP) Graph(name string) *cgraph.Graph {
	g := cgraph.New(name)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(m.Dims[0])})
	for l := 0; l < m.Layers(); l++ {
		x = g.MustAdd(LayerName(l), cgraph.FC{Out: m.Dims[l+1]}, x)
		x = g.MustAdd(LayerName(l)+"_relu", cgraph.ReLU{}, x)
	}
	return g
}

// WeightSource adapts the trained weights to synth.Options.Weights.
func (m *MLP) WeightSource() func(layer string) [][]float64 {
	byName := make(map[string][][]float64, m.Layers())
	for l, w := range m.W {
		byName[LayerName(l)] = w
	}
	return func(layer string) [][]float64 { return byName[layer] }
}

// Clone deep-copies the network (perturbation studies mutate copies).
func (m *MLP) Clone() *MLP {
	c := &MLP{Dims: append([]int(nil), m.Dims...)}
	for _, w := range m.W {
		cw := make([][]float64, len(w))
		for i := range w {
			cw[i] = append([]float64(nil), w[i]...)
		}
		c.W = append(c.W, cw)
	}
	return c
}
