package trainer

import (
	"math"
	"math/rand"

	"fpsa/internal/device"
)

// ProgramNetwork returns a copy of m whose every weight has been quantized
// onto rep's signed grid and programmed onto ReRAM cells with the spec's
// variation (nil rng = ideal programming, isolating pure quantization).
//
// This is the Figure 9 code path: weight w maps per layer to an integer in
// [−MaxWeight, MaxWeight]; its magnitude goes to one polarity's cells via
// rep.Encode, the opposite polarity holds zero, and the decoded signed
// value (with per-cell Gaussian noise) replaces w.
func ProgramNetwork(m *MLP, rep device.Representation, spec device.CellSpec, rng *rand.Rand) *MLP {
	out := m.Clone()
	maxW := float64(rep.MaxWeight())
	for _, w := range out.W {
		scale := 0.0
		for i := range w {
			for _, v := range w[i] {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
		}
		if scale == 0 {
			continue
		}
		for i := range w {
			for j, v := range w[i] {
				q := math.Round(v / scale * maxW)
				if q > maxW {
					q = maxW
				}
				if q < -maxW {
					q = -maxW
				}
				pos, neg := 0, 0
				if q >= 0 {
					pos = int(q)
				} else {
					neg = int(-q)
				}
				gp := device.ProgramWeight(rep, spec, pos, rng)
				gn := device.ProgramWeight(rep, spec, neg, rng)
				w[i][j] = (gp - gn) * scale / maxW
			}
		}
	}
	return out
}

// VariationTrial is one Monte-Carlo accuracy measurement.
type VariationTrial struct {
	Accuracy           float64
	NormalizedAccuracy float64
}

// VariationStudy measures the mean accuracy of a representation under
// programming variation over `trials` Monte-Carlo programmings, normalized
// by the full-precision accuracy (the Figure 9 y-axis).
func VariationStudy(m *MLP, ds Dataset, rep device.Representation, spec device.CellSpec, rng *rand.Rand, trials int) VariationTrial {
	full := m.Accuracy(ds)
	if trials < 1 {
		trials = 1
	}
	var sum float64
	for t := 0; t < trials; t++ {
		perturbed := ProgramNetwork(m, rep, spec, rng)
		sum += perturbed.Accuracy(ds)
	}
	mean := sum / float64(trials)
	norm := 0.0
	if full > 0 {
		norm = mean / full
	}
	return VariationTrial{Accuracy: mean, NormalizedAccuracy: norm}
}

// QuantizationOnly measures the accuracy of the ideal (noise-free)
// quantized network — Figure 9's "Bound by #Levels" staircase.
func QuantizationOnly(m *MLP, ds Dataset, rep device.Representation, spec device.CellSpec) VariationTrial {
	full := m.Accuracy(ds)
	ideal := ProgramNetwork(m, rep, spec, nil)
	acc := ideal.Accuracy(ds)
	norm := 0.0
	if full > 0 {
		norm = acc / full
	}
	return VariationTrial{Accuracy: acc, NormalizedAccuracy: norm}
}
