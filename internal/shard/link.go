package shard

// Link models one inter-chip interconnect: a serial off-chip channel
// (SerDes class) that forwards spike-count signals between pipeline
// stages of a sharded deployment. Unlike the on-fabric mrFPGA wires
// (per-hop ~1.6 ns, paper §4.1), leaving the die costs a fixed
// serialization latency plus bandwidth-limited transfer time, which is
// exactly what the performance model charges per boundary crossing.
type Link struct {
	// LatencyNS is the fixed per-transfer latency: serialization,
	// pad/driver and deserialization.
	LatencyNS float64
	// BandwidthBitsPerNS is the link's payload bandwidth (1 bit/ns =
	// 1 Gb/s).
	BandwidthBitsPerNS float64
	// SignalBits is the width of one transferred signal: a spike count in
	// [0, Γ] needs IOBits bits (Γ = 2^IOBits).
	SignalBits int
}

// DefaultLink returns the evaluated interconnect: a 32 Gb/s serial link
// with 100 ns of fixed latency carrying 6-bit spike counts (Γ = 64, the
// paper's sampling window).
func DefaultLink() Link {
	return Link{LatencyNS: 100, BandwidthBitsPerNS: 32, SignalBits: 6}
}

// withDefaults fills zero fields from DefaultLink.
func (l Link) withDefaults() Link {
	d := DefaultLink()
	if l.LatencyNS <= 0 {
		l.LatencyNS = d.LatencyNS
	}
	if l.BandwidthBitsPerNS <= 0 {
		l.BandwidthBitsPerNS = d.BandwidthBitsPerNS
	}
	if l.SignalBits <= 0 {
		l.SignalBits = d.SignalBits
	}
	return l
}

// TransferNS returns the time to move one batch item's worth of signals
// across the link: fixed latency plus signals·SignalBits of payload at
// the link bandwidth. Zero signals cost nothing (no transfer happens).
func (l Link) TransferNS(signals int) float64 {
	if signals <= 0 {
		return 0
	}
	l = l.withDefaults()
	return l.LatencyNS + float64(signals*l.SignalBits)/l.BandwidthBitsPerNS
}
