package shard

import (
	"reflect"
	"testing"
)

// TestPlanFromBoundsMatchesPartition: replaying a searched plan's bounds
// reproduces its loads and cut traffic exactly — the property that makes
// the autotuner's pinned cuts interchangeable with searched ones.
func TestPlanFromBoundsMatchesPartition(t *testing.T) {
	weights := []int{3, 1, 2, 2, 4}
	signals := []Signal{
		{Prod: 0, Last: 2, Width: 7},
		{Prod: 1, Last: 4, Width: 2},
		{Prod: 3, Last: 4, Width: 5},
	}
	searched, err := Partition(weights, signals, nil, Options{Chips: 3, Policy: PolicyMinCut})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := PlanFromBounds(weights, signals, searched.Bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(searched, replayed) {
		t.Errorf("replayed plan differs:\nsearched %+v\nreplayed %+v", searched, replayed)
	}
}

// TestPlanFromBoundsAccounting: loads are segment weight sums and each
// cut is charged every signal alive across it.
func TestPlanFromBoundsAccounting(t *testing.T) {
	weights := []int{1, 2, 3, 4}
	signals := []Signal{
		{Prod: 0, Last: 3, Width: 5}, // alive over both cuts
		{Prod: 1, Last: 2, Width: 9}, // alive over the second cut only
	}
	p, err := PlanFromBounds(weights, signals, []int{0, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Loads, []int{3, 3, 4}) {
		t.Errorf("Loads = %v, want [3 3 4]", p.Loads)
	}
	if !reflect.DeepEqual(p.CutTraffic, []int{14, 5}) {
		t.Errorf("CutTraffic = %v, want [14 5]", p.CutTraffic)
	}
}

// TestPlanFromBoundsErrors: malformed bounds, negative weights, signals
// outside the chain, and capacity violations are all rejected.
func TestPlanFromBoundsErrors(t *testing.T) {
	weights := []int{1, 2, 3}
	cases := []struct {
		name     string
		weights  []int
		signals  []Signal
		bounds   []int
		capacity int
	}{
		{"empty chain", nil, nil, []int{0}, 0},
		{"bounds not from 0", weights, nil, []int{1, 3}, 0},
		{"bounds not to n", weights, nil, []int{0, 2}, 0},
		{"non-increasing", weights, nil, []int{0, 2, 2, 3}, 0},
		{"decreasing", weights, nil, []int{0, 2, 1, 3}, 0},
		{"negative weight", []int{1, -2, 3}, nil, []int{0, 3}, 0},
		{"signal out of range", weights, []Signal{{Prod: 0, Last: 5, Width: 1}}, []int{0, 3}, 0},
		{"negative signal width", weights, []Signal{{Prod: 0, Last: 1, Width: -1}}, []int{0, 3}, 0},
		{"segment over capacity", weights, nil, []int{0, 3}, 5},
	}
	for _, tc := range cases {
		if _, err := PlanFromBounds(tc.weights, tc.signals, tc.bounds, tc.capacity); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The capacity gate passes when every segment fits.
	if _, err := PlanFromBounds(weights, nil, []int{0, 2, 3}, 3); err != nil {
		t.Errorf("legal capacity rejected: %v", err)
	}
}
