package shard

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPartitionSingleChip: one chip is the whole chain, no cuts.
func TestPartitionSingleChip(t *testing.T) {
	p, err := Partition([]int{3, 1, 2}, nil, nil, Options{Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Chips(); got != 1 {
		t.Fatalf("Chips = %d, want 1", got)
	}
	if !reflect.DeepEqual(p.Bounds, []int{0, 3}) {
		t.Fatalf("Bounds = %v", p.Bounds)
	}
	if p.TotalCutTraffic() != 0 || p.MaxCutTraffic() != 0 {
		t.Fatalf("single chip reports cut traffic %v", p.CutTraffic)
	}
	if p.MaxLoad() != 6 {
		t.Fatalf("MaxLoad = %d, want 6", p.MaxLoad())
	}
}

// TestPartitionMinCutPicksCheapestCut: with one wide and one narrow
// dependency, the 2-way min-cut must fall on the narrow boundary.
func TestPartitionMinCutPicksCheapestCut(t *testing.T) {
	// Chain 0→1 wide (100 signals), 1→2 narrow (3 signals).
	signals := []Signal{
		{Prod: 0, Last: 1, Width: 100},
		{Prod: 1, Last: 2, Width: 3},
	}
	p, err := Partition([]int{1, 1, 1}, signals, nil, Options{Chips: 2, Policy: PolicyMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Bounds, []int{0, 2, 3}) {
		t.Fatalf("Bounds = %v, want cut at 2 (narrow edge)", p.Bounds)
	}
	if !reflect.DeepEqual(p.CutTraffic, []int{3}) {
		t.Fatalf("CutTraffic = %v, want [3]", p.CutTraffic)
	}
}

// TestPartitionSignalChargedPerLink: a signal alive across multiple cuts
// is charged on every link it traverses.
func TestPartitionSignalChargedPerLink(t *testing.T) {
	// One signal produced at 0 and last used at 3 crosses both cuts of a
	// 3-way partition.
	signals := []Signal{{Prod: 0, Last: 3, Width: 5}}
	p, err := Partition([]int{1, 1, 1, 1}, signals, nil, Options{Chips: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TotalCutTraffic(); got != 10 {
		t.Fatalf("TotalCutTraffic = %d, want 10 (5 over each of 2 links)", got)
	}
}

// TestPartitionBalanced: the balanced policy equalizes loads even when a
// lopsided cut would carry less traffic.
func TestPartitionBalanced(t *testing.T) {
	weights := []int{4, 4, 4, 4}
	// Make the lopsided cut (after item 0) traffic-free and the balanced
	// cut expensive: min-cut would pick bounds {0,1,4}.
	signals := []Signal{{Prod: 1, Last: 2, Width: 50}}
	minp, err := Partition(weights, signals, nil, Options{Chips: 2, Policy: PolicyMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if minp.MaxLoad() != 12 {
		t.Fatalf("mincut MaxLoad = %d, want 12 (lopsided)", minp.MaxLoad())
	}
	balp, err := Partition(weights, signals, nil, Options{Chips: 2, Policy: PolicyBalanced})
	if err != nil {
		t.Fatal(err)
	}
	if balp.MaxLoad() != 8 {
		t.Fatalf("balanced MaxLoad = %d, want 8", balp.MaxLoad())
	}
	if !reflect.DeepEqual(balp.Bounds, []int{0, 2, 4}) {
		t.Fatalf("balanced Bounds = %v", balp.Bounds)
	}
}

// TestPartitionCapacity: capacity forces more, smaller segments and is an
// error when infeasible at the requested chip count.
func TestPartitionCapacity(t *testing.T) {
	weights := []int{3, 3, 3, 3}
	if _, err := Partition(weights, nil, nil, Options{Chips: 2, Capacity: 5}); err == nil {
		t.Fatal("capacity 5 with 2 chips accepted; segments of 6 exceed it")
	}
	p, err := Partition(weights, nil, nil, Options{Chips: 4, Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range p.Loads {
		if l > 3 {
			t.Fatalf("segment %d load %d exceeds capacity", s, l)
		}
	}
}

// TestPartitionIllegalCuts: forbidden positions are never used, and a
// fully pinned chain cannot be cut.
func TestPartitionIllegalCuts(t *testing.T) {
	weights := []int{1, 1, 1, 1}
	illegal := []bool{false, false, true, false, false} // no cut between 1 and 2
	p, err := Partition(weights, nil, illegal, Options{Chips: 2, Policy: PolicyBalanced})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bounds[1] == 2 {
		t.Fatalf("illegal cut position used: %v", p.Bounds)
	}
	all := []bool{false, true, true, true, false}
	if _, err := Partition(weights, nil, all, Options{Chips: 2}); err == nil {
		t.Fatal("fully pinned chain was cut")
	}
}

// TestPartitionShardOf: item→segment lookup matches the bounds.
func TestPartitionShardOf(t *testing.T) {
	p, err := Partition([]int{1, 1, 1, 1, 1, 1}, nil, nil, Options{Chips: 3, Policy: PolicyBalanced})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		s := p.ShardOf(i)
		if i < p.Bounds[s] || i >= p.Bounds[s+1] {
			t.Fatalf("ShardOf(%d) = %d, bounds %v", i, s, p.Bounds)
		}
	}
}

// TestPartitionDeterministic: repeated runs on a randomized chain agree
// exactly.
func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1 + rng.Intn(5)
	}
	var signals []Signal
	for i := 0; i < n-1; i++ {
		last := i + 1 + rng.Intn(n-i-1)
		signals = append(signals, Signal{Prod: i, Last: last, Width: 1 + rng.Intn(40)})
	}
	for _, pol := range []Policy{PolicyMinCut, PolicyBalanced} {
		first, err := Partition(weights, signals, nil, Options{Chips: 4, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			again, err := Partition(weights, signals, nil, Options{Chips: 4, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%v: plans differ: %+v vs %+v", pol, first, again)
			}
		}
	}
}

// TestPartitionMinCutOptimal: brute-force every 3-way partition of a
// random chain and require the DP to match the optimum.
func TestPartitionMinCutOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 9
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	var signals []Signal
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				signals = append(signals, Signal{Prod: i, Last: j, Width: 1 + rng.Intn(9)})
			}
		}
	}
	trafficAt := func(c int) int {
		total := 0
		for _, s := range signals {
			if s.Prod < c && c <= s.Last {
				total += s.Width
			}
		}
		return total
	}
	best := int(^uint(0) >> 1)
	for a := 1; a < n-1; a++ {
		for b := a + 1; b < n; b++ {
			if v := trafficAt(a) + trafficAt(b); v < best {
				best = v
			}
		}
	}
	p, err := Partition(weights, signals, nil, Options{Chips: 3, Policy: PolicyMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TotalCutTraffic(); got != best {
		t.Fatalf("DP traffic %d, brute-force optimum %d", got, best)
	}
}

// TestPartitionErrors: invalid inputs are rejected with errors, not
// panics.
func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, nil, nil, Options{Chips: 1}); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := Partition([]int{1}, nil, nil, Options{Chips: 0}); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := Partition([]int{1, 1}, nil, nil, Options{Chips: 3}); err == nil {
		t.Error("more chips than items accepted")
	}
	if _, err := Partition([]int{1, -1}, nil, nil, Options{Chips: 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Partition([]int{1, 1}, []Signal{{Prod: 5, Last: 6, Width: 1}}, nil, Options{Chips: 1}); err == nil {
		t.Error("out-of-range signal accepted")
	}
	if _, err := Partition([]int{1, 1}, nil, []bool{false}, Options{Chips: 1}); err == nil {
		t.Error("mis-sized illegal mask accepted")
	}
}

// TestLinkTransfer: the link model charges latency plus bandwidth time,
// nothing for empty transfers, and fills zero fields with defaults.
func TestLinkTransfer(t *testing.T) {
	l := Link{LatencyNS: 10, BandwidthBitsPerNS: 2, SignalBits: 6}
	if got := l.TransferNS(0); got != 0 {
		t.Errorf("TransferNS(0) = %g, want 0", got)
	}
	if got, want := l.TransferNS(4), 10+float64(4*6)/2; got != want {
		t.Errorf("TransferNS(4) = %g, want %g", got, want)
	}
	var zero Link
	if got, want := zero.TransferNS(1), DefaultLink().TransferNS(1); got != want {
		t.Errorf("zero-value link TransferNS = %g, want default %g", got, want)
	}
	if zero.TransferNS(1) <= DefaultLink().LatencyNS {
		t.Error("default transfer should exceed fixed latency")
	}
}
