// Package shard partitions a chip-sized workload across multiple FPSA
// chips. The paper (§5) compiles one model onto one reconfigurable
// fabric; this package supplies the scale axis beyond it: given a
// topologically ordered chain of work items (core-op weight groups on the
// compile path, executable program stages on the serving path), it cuts
// the chain into per-chip segments so that every chip fits its capacity
// and the signal traffic crossing inter-chip links is minimal.
//
// The partitioner is a chain-partitioning dynamic program, not a
// heuristic: for k chips it returns an exact optimum of the selected
// policy — PolicyMinCut minimizes the total signal width crossing chip
// boundaries (each signal is charged once per link it traverses, which is
// what the link occupies), PolicyBalanced minimizes the largest per-chip
// load so the chip-level pipeline's bottleneck stage is as small as
// possible. Ties break toward the other objective and then toward the
// earliest cut positions, so results are fully deterministic: the same
// inputs produce the same Plan on any machine, which is what lets sharded
// compile artifacts live in the content-addressed deployment cache.
//
// Contiguity is not a restriction in practice: both chains this package
// partitions are topologically ordered, so a contiguous segmentation
// always yields a feed-forward chip pipeline (signals only ever flow from
// earlier chips to later ones), the shape the pipelined executor needs.
package shard

import "fmt"

// Policy selects the partitioning objective.
type Policy int

// Policies.
const (
	// PolicyMinCut minimizes total inter-chip signal traffic, breaking
	// ties toward balanced loads. The compile path's default: link wires
	// and transfer energy are the scarce resource.
	PolicyMinCut Policy = iota
	// PolicyBalanced minimizes the maximum per-chip load, breaking ties
	// toward less traffic. The serving pipeline's default: steady-state
	// throughput is one batch per bottleneck chip.
	PolicyBalanced
)

// String renders the policy the way the CLIs spell it.
func (p Policy) String() string {
	switch p {
	case PolicyMinCut:
		return "mincut"
	case PolicyBalanced:
		return "balanced"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Signal is one producer→consumers data dependency along the chain: a bus
// of Width logical signals produced by item Prod (or the external input,
// Prod = -1) and last consumed by item Last. The signal crosses — and is
// charged against — every cut c with Prod < c ≤ Last.
type Signal struct {
	Prod  int // producing item index, or -1 for the external input
	Last  int // last consuming item index (≥ Prod)
	Width int // logical signal count carried
}

// Options configures one partition.
type Options struct {
	// Chips is the exact number of segments wanted. Partition fails if
	// the chain cannot be cut into this many non-empty legal segments;
	// callers that can degrade (fewer chips) or escalate (more chips)
	// retry at other counts.
	Chips int
	// Capacity bounds each segment's total item weight (0 = unbounded).
	Capacity int
	// Policy selects the objective (default PolicyMinCut).
	Policy Policy
}

// Plan is one partition of n chain items into Chips() contiguous
// segments: segment k holds items [Bounds[k], Bounds[k+1]).
type Plan struct {
	// Bounds has Chips()+1 entries; Bounds[0] = 0 and the last entry = n.
	Bounds []int
	// Loads[k] is segment k's total item weight.
	Loads []int
	// CutTraffic[k] is the signal width crossing the cut between segment
	// k and k+1 (len Chips()-1) — the traffic on that inter-chip link.
	CutTraffic []int
}

// Chips returns the number of segments.
func (p *Plan) Chips() int { return len(p.Bounds) - 1 }

// ShardOf returns the segment holding item i.
func (p *Plan) ShardOf(i int) int {
	for k := 1; k < len(p.Bounds); k++ {
		if i < p.Bounds[k] {
			return k - 1
		}
	}
	return p.Chips() - 1
}

// TotalCutTraffic sums the traffic over every inter-chip link.
func (p *Plan) TotalCutTraffic() int {
	total := 0
	for _, t := range p.CutTraffic {
		total += t
	}
	return total
}

// MaxCutTraffic returns the busiest link's signal width (0 for a single
// segment).
func (p *Plan) MaxCutTraffic() int {
	max := 0
	for _, t := range p.CutTraffic {
		if t > max {
			max = t
		}
	}
	return max
}

// MaxLoad returns the heaviest segment's weight.
func (p *Plan) MaxLoad() int {
	max := 0
	for _, l := range p.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// cost is the lexicographic DP objective: primary then secondary,
// compared in order.
type cost struct{ primary, secondary int }

func (c cost) less(o cost) bool {
	if c.primary != o.primary {
		return c.primary < o.primary
	}
	return c.secondary < o.secondary
}

// Partition cuts a chain of len(weights) items into exactly opts.Chips
// contiguous non-empty segments. signals carries the chain's data
// dependencies (see Signal); illegal, when non-nil, marks cut positions
// that must not be used — illegal[c] forbids a boundary between items c-1
// and c, the way a weight group shared by a run of program stages pins
// those stages to one chip. len(illegal) must be len(weights)+1 when
// supplied; positions 0 and n are the chain ends and never consulted.
//
// The result is the exact optimum of opts.Policy and is deterministic —
// independent of map iteration, goroutine scheduling, or machine.
func Partition(weights []int, signals []Signal, illegal []bool, opts Options) (*Plan, error) {
	n := len(weights)
	k := opts.Chips
	if n == 0 {
		return nil, fmt.Errorf("shard: empty chain")
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: chip count %d must be ≥ 1", k)
	}
	if k > n {
		return nil, fmt.Errorf("shard: cannot cut %d items into %d non-empty segments", n, k)
	}
	if illegal != nil && len(illegal) != n+1 {
		return nil, fmt.Errorf("shard: illegal mask has %d entries, want %d", len(illegal), n+1)
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("shard: item %d has negative weight %d", i, w)
		}
	}

	// Prefix weights and per-cut traffic. traffic[c] is the total signal
	// width crossing a cut between items c-1 and c: every signal with
	// Prod < c ≤ Last, accumulated with a difference array.
	prefW := make([]int, n+1)
	for i, w := range weights {
		prefW[i+1] = prefW[i] + w
	}
	diff := make([]int, n+2)
	for _, s := range signals {
		if s.Width < 0 || s.Prod < -1 || s.Prod >= n || s.Last < s.Prod || s.Last >= n {
			return nil, fmt.Errorf("shard: signal %+v outside chain of %d items", s, n)
		}
		diff[s.Prod+1] += s.Width
		diff[s.Last+1] -= s.Width
	}
	traffic := make([]int, n+1)
	run := 0
	for c := 0; c <= n; c++ {
		run += diff[c]
		traffic[c] = run
	}

	// DP over (segments used, items consumed). best[s][i] is the optimal
	// cost of cutting items [0, i) into s segments; from[s][i] the start
	// of the last segment. Scanning j ascending with strict improvement
	// keeps the earliest cut positions on ties — determinism by
	// construction.
	const inf = int(^uint(0) >> 1)
	best := make([][]cost, k+1)
	from := make([][]int, k+1)
	for s := 0; s <= k; s++ {
		best[s] = make([]cost, n+1)
		from[s] = make([]int, n+1)
		for i := 0; i <= n; i++ {
			best[s][i] = cost{inf, inf}
			from[s][i] = -1
		}
	}
	best[0][0] = cost{0, 0}
	for s := 1; s <= k; s++ {
		for i := s; i <= n; i++ {
			for j := s - 1; j < i; j++ {
				if best[s-1][j].primary == inf {
					continue
				}
				if j > 0 && illegal != nil && illegal[j] {
					continue
				}
				load := prefW[i] - prefW[j]
				if opts.Capacity > 0 && load > opts.Capacity {
					continue
				}
				cut := 0
				if j > 0 {
					cut = traffic[j]
				}
				prev := best[s-1][j]
				var cand cost
				switch opts.Policy {
				case PolicyBalanced:
					cand = cost{primary: maxInt(prev.primary, load), secondary: prev.secondary + cut}
				default: // PolicyMinCut
					cand = cost{primary: prev.primary + cut, secondary: maxInt(prev.secondary, load)}
				}
				if cand.less(best[s][i]) {
					best[s][i] = cand
					from[s][i] = j
				}
			}
		}
	}
	if best[k][n].primary == inf {
		return nil, fmt.Errorf("shard: no legal %d-segment partition of %d items (capacity %d)", k, n, opts.Capacity)
	}

	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k; s >= 1; s-- {
		bounds[s-1] = from[s][bounds[s]]
	}
	plan := &Plan{Bounds: bounds, Loads: make([]int, k), CutTraffic: make([]int, k-1)}
	for s := 0; s < k; s++ {
		plan.Loads[s] = prefW[bounds[s+1]] - prefW[bounds[s]]
		if s > 0 {
			plan.CutTraffic[s-1] = traffic[bounds[s]]
		}
	}
	return plan, nil
}

// PlanFromBounds builds the Plan for an explicitly chosen segmentation —
// bounds[0] = 0, bounds[len-1] = len(weights), strictly increasing — with
// the same load and cut-traffic accounting Partition uses, so a pinned
// cut (the autotuner's shard candidates, a replayed plan) is
// interchangeable with a searched one. capacity > 0 rejects segments
// whose load exceeds it.
func PlanFromBounds(weights []int, signals []Signal, bounds []int, capacity int) (*Plan, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("shard: empty chain")
	}
	k := len(bounds) - 1
	if k < 1 || bounds[0] != 0 || bounds[k] != n {
		return nil, fmt.Errorf("shard: bounds %v must run 0..%d", bounds, n)
	}
	for s := 0; s < k; s++ {
		if bounds[s+1] <= bounds[s] {
			return nil, fmt.Errorf("shard: bounds %v not strictly increasing", bounds)
		}
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("shard: item %d has negative weight %d", i, w)
		}
	}
	prefW := make([]int, n+1)
	for i, w := range weights {
		prefW[i+1] = prefW[i] + w
	}
	diff := make([]int, n+2)
	for _, s := range signals {
		if s.Width < 0 || s.Prod < -1 || s.Prod >= n || s.Last < s.Prod || s.Last >= n {
			return nil, fmt.Errorf("shard: signal %+v outside chain of %d items", s, n)
		}
		diff[s.Prod+1] += s.Width
		diff[s.Last+1] -= s.Width
	}
	traffic := make([]int, n+1)
	run := 0
	for c := 0; c <= n; c++ {
		run += diff[c]
		traffic[c] = run
	}
	plan := &Plan{Bounds: append([]int(nil), bounds...), Loads: make([]int, k), CutTraffic: make([]int, k-1)}
	for s := 0; s < k; s++ {
		plan.Loads[s] = prefW[bounds[s+1]] - prefW[bounds[s]]
		if capacity > 0 && plan.Loads[s] > capacity {
			return nil, fmt.Errorf("shard: segment %d load %d exceeds capacity %d", s, plan.Loads[s], capacity)
		}
		if s > 0 {
			plan.CutTraffic[s-1] = traffic[bounds[s]]
		}
	}
	return plan, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
