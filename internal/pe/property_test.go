package pe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over the PE's reference semantics: invariants that must
// hold for any programmed matrix and input, independent of the cycle-level
// machinery.

func TestQuickReferenceMonotoneInInputs(t *testing.T) {
	// With non-negative weights, increasing any input count can never
	// decrease any output (the crossbar computes a monotone map).
	rng := rand.New(rand.NewSource(111))
	cfg := smallConfig()
	p := New(cfg)
	w := make([][]int, 12)
	for i := range w {
		w[i] = make([]int, 6)
		for j := range w[i] {
			w[i][j] = rng.Intn(cfg.MaxWeight() + 1) // non-negative
		}
	}
	if err := p.Program(w, nil); err != nil {
		t.Fatal(err)
	}
	p.SetEta(p.SafeEta(cfg.Params.SamplingWindow()))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]int, 12)
		for i := range x {
			x[i] = r.Intn(60)
		}
		base, err := p.ReferenceVMM(x)
		if err != nil {
			return false
		}
		i := r.Intn(12)
		x[i]++
		bumped, err := p.ReferenceVMM(x)
		if err != nil {
			return false
		}
		for j := range base {
			if bumped[j] < base[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReferenceZeroInputZeroOutput(t *testing.T) {
	// Zero input must produce zero output for any weights.
	rng := rand.New(rand.NewSource(112))
	cfg := smallConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(16), 1+r.Intn(8)
		p := New(cfg)
		if err := p.Program(randomWeights(rng, rows, cols, cfg.MaxWeight()), nil); err != nil {
			return false
		}
		out, err := p.ReferenceVMM(make([]int, rows))
		if err != nil {
			return false
		}
		for _, v := range out {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickNegatedWeightsGiveZero(t *testing.T) {
	// All-negative weights through ReLU must always yield zero.
	cfg := smallConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(12)
		w := make([][]int, rows)
		for i := range w {
			w[i] = []int{-(1 + r.Intn(cfg.MaxWeight()))}
		}
		p := New(cfg)
		if err := p.Program(w, nil); err != nil {
			return false
		}
		x := make([]int, rows)
		for i := range x {
			x[i] = r.Intn(64)
		}
		out, err := p.ReferenceVMM(x)
		return err == nil && out[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
