package pe

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/spike"
)

// smallConfig returns a config with a reduced window for fast cycle sims.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Spec.Sigma = 0 // ideal devices unless a test overrides
	cfg.Rep = device.NewAdd(cfg.Spec, cfg.Params.CellsPerWeight)
	return cfg
}

func randomWeights(rng *rand.Rand, rows, cols, maxW int) [][]int {
	w := make([][]int, rows)
	for i := range w {
		w[i] = make([]int, cols)
		for j := range w[i] {
			w[i][j] = rng.Intn(2*maxW+1) - maxW
		}
	}
	return w
}

func randomInputs(rng *rand.Rand, rows, window int) ([]int, []spike.Train) {
	counts := make([]int, rows)
	trains := make([]spike.Train, rows)
	for i := range counts {
		counts[i] = rng.Intn(window + 1)
		trains[i] = spike.UniformTrain(counts[i], window)
	}
	return counts, trains
}

func TestProgramRejectsBadShapes(t *testing.T) {
	p := New(smallConfig())
	if err := p.Program(nil, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	big := make([][]int, 257)
	for i := range big {
		big[i] = make([]int, 1)
	}
	if err := p.Program(big, nil); err == nil {
		t.Error("257-row matrix accepted")
	}
	wide := [][]int{make([]int, 257)}
	if err := p.Program(wide, nil); err == nil {
		t.Error("257-col matrix accepted")
	}
	ragged := [][]int{{1, 2}, {3}}
	if err := p.Program(ragged, nil); err == nil {
		t.Error("ragged matrix accepted")
	}
	tooBig := [][]int{{1000}}
	if err := p.Program(tooBig, nil); err == nil {
		t.Error("overweight value accepted")
	}
}

func TestReferenceVMMIdentity(t *testing.T) {
	// A diagonal of full-scale weights with η = MaxWeight passes counts
	// through: Y = X (then ReLU is a no-op for non-negative counts).
	cfg := smallConfig()
	p := New(cfg)
	n := 8
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
		w[i][i] = cfg.MaxWeight()
	}
	if err := p.Program(w, nil); err != nil {
		t.Fatal(err)
	}
	x := []int{0, 1, 5, 10, 20, 40, 63, 64}
	got, err := p.ReferenceVMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Errorf("identity: out[%d] = %d, want %d", i, got[i], x[i])
		}
	}
}

func TestReferenceVMMReLU(t *testing.T) {
	cfg := smallConfig()
	p := New(cfg)
	w := [][]int{{-cfg.MaxWeight()}}
	if err := p.Program(w, nil); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReferenceVMM([]int{50})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("negative product: out = %d, want 0 (ReLU)", got[0])
	}
}

func TestSimulateMatchesReferenceIdealDevices(t *testing.T) {
	// Core fidelity property (Eq. 1-6): the cycle-level spiking PE with
	// ideal devices computes the integer reference VMM+ReLU. The
	// subtracter stream can deviate by at most 1 count when negative
	// spikes trail the last positive spike.
	rng := rand.New(rand.NewSource(51))
	cfg := smallConfig()
	window := cfg.Params.SamplingWindow()
	for trial := 0; trial < 10; trial++ {
		rows, cols := 1+rng.Intn(24), 1+rng.Intn(12)
		p := New(cfg)
		if err := p.Program(randomWeights(rng, rows, cols, cfg.MaxWeight()), nil); err != nil {
			t.Fatal(err)
		}
		if eta := p.SafeEta(window); eta > 0 {
			p.SetEta(eta)
		}
		counts, trains := randomInputs(rng, rows, window)
		ref, err := p.ReferenceVMM(counts)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := p.Simulate(trains)
		if err != nil {
			t.Fatal(err)
		}
		for j := range outs {
			got := outs[j].Count()
			if d := got - ref[j]; d < -1 || d > 1 {
				t.Errorf("trial %d col %d: sim %d vs reference %d (|Δ|>1)", trial, j, got, ref[j])
			}
		}
	}
}

func TestSimulateTracksFloatVMM(t *testing.T) {
	// The spike count approximates the real-valued ReLU(Wx/η) within the
	// quantization error of the floor operations (≤ 2 counts).
	rng := rand.New(rand.NewSource(61))
	cfg := smallConfig()
	window := cfg.Params.SamplingWindow()
	p := New(cfg)
	if err := p.Program(randomWeights(rng, 16, 8, cfg.MaxWeight()/4), nil); err != nil {
		t.Fatal(err)
	}
	p.SetEta(p.SafeEta(window))
	counts, trains := randomInputs(rng, 16, window)
	want, err := p.FloatVMM(counts)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := p.Simulate(trains)
	if err != nil {
		t.Fatal(err)
	}
	for j := range outs {
		got := float64(outs[j].Count())
		wf := want[j]
		if wf > float64(window) {
			wf = float64(window)
		}
		if math.Abs(got-wf) > 2 {
			t.Errorf("col %d: sim %v vs float %v", j, got, wf)
		}
	}
}

func TestSimulateRCUndercountsBoundedly(t *testing.T) {
	// The RC voltage neuron loses sub-cycle overshoot at each discharge,
	// so it can only undercount relative to the ideal neuron, and only
	// by a small margin for realistic drives.
	rng := rand.New(rand.NewSource(71))
	cfg := smallConfig()
	window := cfg.Params.SamplingWindow()
	p := New(cfg)
	if err := p.Program(randomWeights(rng, 16, 8, cfg.MaxWeight()/4), nil); err != nil {
		t.Fatal(err)
	}
	p.SetEta(p.SafeEta(window))
	_, trains := randomInputs(rng, 16, window)
	ideal, err := p.Simulate(trains)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := p.SimulateRC(trains)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ideal {
		di, dr := ideal[j].Count(), rc[j].Count()
		if dr > di+1 {
			t.Errorf("col %d: RC %d overcounts ideal %d", j, dr, di)
		}
		if di-dr > di/4+2 {
			t.Errorf("col %d: RC %d undercounts ideal %d beyond bound", j, dr, di)
		}
	}
}

func TestSimulateWithVariationStaysClose(t *testing.T) {
	// With the paper's add method and realistic sigma, outputs stay
	// within a few counts of the ideal reference (the Figure 9 add-curve
	// mechanism).
	rng := rand.New(rand.NewSource(81))
	cfg := DefaultConfig() // Sigma = Cell4Bit.Sigma
	window := cfg.Params.SamplingWindow()
	p := New(cfg)
	if err := p.Program(randomWeights(rng, 32, 8, cfg.MaxWeight()/4), rng); err != nil {
		t.Fatal(err)
	}
	p.SetEta(p.SafeEta(window))
	counts, trains := randomInputs(rng, 32, window)
	ref, err := p.ReferenceVMM(counts)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := p.Simulate(trains)
	if err != nil {
		t.Fatal(err)
	}
	for j := range outs {
		if d := math.Abs(float64(outs[j].Count() - ref[j])); d > 6 {
			t.Errorf("col %d: noisy sim %d vs ideal ref %d (Δ=%v)", j, outs[j].Count(), ref[j], d)
		}
	}
}

func TestSimulateInputValidation(t *testing.T) {
	cfg := smallConfig()
	p := New(cfg)
	if err := p.Program([][]int{{1, 2}, {3, 4}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Simulate([]spike.Train{spike.NewTrain(64)}); err == nil {
		t.Error("wrong train count accepted")
	}
	if _, err := p.Simulate([]spike.Train{spike.NewTrain(32), spike.NewTrain(32)}); err == nil {
		t.Error("wrong window accepted")
	}
	if _, err := p.ReferenceVMM([]int{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestUtilizationAndEnergyScale(t *testing.T) {
	cfg := smallConfig()
	p := New(cfg)
	full := make([][]int, cfg.Params.CrossbarRows)
	for i := range full {
		full[i] = make([]int, cfg.Params.LogicalColumns())
	}
	if err := p.Program(full, nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Utilization(); got != 1 {
		t.Errorf("full crossbar utilization = %v, want 1", got)
	}
	if got, want := p.EnergyPerVMMpJ(), cfg.Params.PEEnergyPJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("full crossbar energy = %v, want %v", got, want)
	}

	p2 := New(cfg)
	if err := p2.Program([][]int{{1}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := p2.Utilization(); math.Abs(got-1.0/65536) > 1e-12 {
		t.Errorf("1×1 utilization = %v", got)
	}
	if p2.EnergyPerVMMpJ() >= p.EnergyPerVMMpJ() {
		t.Error("sparse PE not cheaper than full PE")
	}
}

func TestProgramFloatQuantization(t *testing.T) {
	cfg := smallConfig()
	p := New(cfg)
	w := [][]float64{{1.0, -1.0, 0.5, 2.0, -2.0, 0.0}}
	if err := p.ProgramFloat(w, nil); err != nil {
		t.Fatal(err)
	}
	maxW := cfg.MaxWeight()
	wantRow := []int{maxW, -maxW, maxW / 2, maxW, -maxW, 0}
	for j, want := range wantRow {
		if got := p.weights[0][j]; got != want {
			t.Errorf("quantized[0][%d] = %d, want %d", j, got, want)
		}
	}
}

func BenchmarkSimulateFullPE(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	cfg := smallConfig()
	p := New(cfg)
	rows, cols := 256, 64
	if err := p.Program(randomWeights(rng, rows, cols, cfg.MaxWeight()), nil); err != nil {
		b.Fatal(err)
	}
	_, trains := randomInputs(rng, rows, cfg.Params.SamplingWindow())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Simulate(trains); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceVMM(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	cfg := smallConfig()
	p := New(cfg)
	if err := p.Program(randomWeights(rng, 256, 256, cfg.MaxWeight()), nil); err != nil {
		b.Fatal(err)
	}
	counts, _ := randomInputs(rng, 256, cfg.Params.SamplingWindow())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReferenceVMM(counts); err != nil {
			b.Fatal(err)
		}
	}
}
