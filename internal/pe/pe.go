// Package pe models FPSA's processing element (paper §4.2, Figure 4): an
// ReRAM crossbar whose rows are driven by 1-transistor charging units and
// whose column currents feed integrate-and-fire neuron units; adjacent
// positive/negative column pairs merge through spike subtracters. A PE
// computes Y = ReLU(G·X) over spike trains (Eq. 6).
//
// The package offers three views of the same computation, from most ideal
// to most circuit-faithful, and the test suite proves they agree:
//
//  1. ReferenceVMM: the integer semantics the synthesizer targets —
//     Y_j = max(0, floor(P_j/η) − floor(N_j/η)) with P/N the positive and
//     negative drive sums.
//  2. Simulate: a cycle-level simulation with ideal accumulate-and-fire
//     neurons over real spike trains.
//  3. SimulateRC: the same, with the voltage-domain RC neuron of Eq. 1.
//
// The numeric kernels live in internal/xbar (the shared batched crossbar
// kernel the whole execution stack runs on); PE wraps one xbar.Crossbar
// with the circuit-level surface — RC neurons, energy and utilization
// accounting — that the chip-level simulation needs.
package pe

import (
	"fmt"
	"math"
	"math/rand"

	"fpsa/internal/device"
	"fpsa/internal/spike"
	"fpsa/internal/xbar"
)

// Config parameterizes a PE.
type Config struct {
	// Params supplies crossbar geometry, window and cost constants.
	Params device.Params
	// Spec is the ReRAM cell used (4-bit in the paper).
	Spec device.CellSpec
	// Rep maps logical weight magnitudes onto parallel cells; the
	// paper's configuration is the add method over 8 cells.
	Rep device.Representation
	// Eta is the neuron threshold η in conductance units. Zero means
	// "use Rep.MaxWeight()", which normalizes weights to [−1, 1]: a
	// full-scale weight times a full-scale input yields a full-scale
	// output count.
	Eta float64
}

// DefaultConfig returns the paper's evaluated PE: 256×512 crossbar, 4-bit
// cells, add method over 8 cells per polarity, Γ=64.
func DefaultConfig() Config {
	spec := device.Cell4Bit
	return Config{
		Params: device.Params45nm,
		Spec:   spec,
		Rep:    device.NewAdd(spec, device.Params45nm.CellsPerWeight),
	}
}

func (c Config) eta() float64 {
	if c.Eta > 0 {
		return c.Eta
	}
	return float64(c.Rep.MaxWeight())
}

// MaxWeight returns the largest representable logical weight magnitude.
func (c Config) MaxWeight() int { return c.Rep.MaxWeight() }

// PE is one processing element with programmed weights. The programmed
// state and the compute kernels live in an internal xbar.Crossbar; PE
// keeps the logical integer weights for the scaling and accounting
// methods (SafeEta, Utilization).
type PE struct {
	cfg  Config
	rows int
	cols int
	// xb is the programmed crossbar kernel (reference + spiking paths).
	xb *xbar.Crossbar
	// weights keeps the logical integers for SafeEta and tests.
	weights [][]int
}

// New returns an unprogrammed PE.
func New(cfg Config) *PE {
	return &PE{cfg: cfg}
}

// Rows and Cols report the programmed logical dimensions.
func (p *PE) Rows() int { return p.rows }

// Cols reports the programmed logical column count.
func (p *PE) Cols() int { return p.cols }

// Config returns the PE's configuration.
func (p *PE) Config() Config { return p.cfg }

// Program writes a logical weight matrix weights[i][j] (row-major,
// rows × cols, integer weights in [−MaxWeight, MaxWeight]) into the
// crossbar. Positive parts go to the positive column, negative magnitudes
// to the negative column. A nil rng programs ideal conductances; otherwise
// each cell receives Gaussian programming variation.
func (p *PE) Program(weights [][]int, rng *rand.Rand) error {
	xb, err := xbar.Program(xbar.Config{
		Params: p.cfg.Params,
		Spec:   p.cfg.Spec,
		Rep:    p.cfg.Rep,
		Eta:    p.cfg.Eta,
	}, weights, rng)
	if err != nil {
		return fmt.Errorf("pe: %w", err)
	}
	p.xb = xb
	p.rows, p.cols = xb.Rows(), xb.Cols()
	p.weights = make([][]int, p.rows)
	for i := range weights {
		p.weights[i] = append([]int(nil), weights[i]...)
	}
	return nil
}

// ProgramFloat quantizes weights in [−1, 1] to the representable integer
// grid (round to nearest of w·MaxWeight) and programs them.
func (p *PE) ProgramFloat(weights [][]float64, rng *rand.Rand) error {
	maxW := float64(p.cfg.MaxWeight())
	q := make([][]int, len(weights))
	for i, row := range weights {
		q[i] = make([]int, len(row))
		for j, w := range row {
			v := math.Round(w * maxW)
			if v > maxW {
				v = maxW
			}
			if v < -maxW {
				v = -maxW
			}
			q[i][j] = int(v)
		}
	}
	return p.Program(q, rng)
}

// SetEta overrides the neuron threshold η. The synthesizer calls this with
// a per-matrix scale that prevents neuron saturation (see SafeEta).
func (p *PE) SetEta(eta float64) {
	p.cfg.Eta = eta
	if p.xb != nil {
		p.xb.SetEta(p.cfg.eta())
	}
}

// SafeEta returns the smallest η for which no neuron can saturate the
// one-spike-per-cycle cap: η = max_j max(Σ_i pos_ji, Σ_i neg_ji)·maxCount/Γ.
// With maxCount = Γ this also bounds the instantaneous per-cycle drive by
// η, making the neuron's spike count exactly floor(total drive/η). A zero
// result (all-zero matrix) means "keep the default".
//
// This is the hardware constraint behind the synthesizer's weight scaling:
// Eq. 5 only holds while firing stays below one spike per cycle.
func (p *PE) SafeEta(maxCount int) float64 {
	window := p.cfg.Params.SamplingWindow()
	var worst float64
	for j := 0; j < p.cols; j++ {
		var pos, neg float64
		for i := 0; i < p.rows; i++ {
			w := float64(p.weights[i][j])
			if w >= 0 {
				pos += w
			} else {
				neg += -w
			}
		}
		if pos > worst {
			worst = pos
		}
		if neg > worst {
			worst = neg
		}
	}
	return worst * float64(maxCount) / float64(window)
}

// ReferenceVMM computes the integer reference output for spike counts
// x[i] ∈ [0, Γ]: Y_j = max(0, floor(P_j/η) − floor(N_j/η)), clamped to the
// sampling window. It uses the ideal (noise-free) logical weights and
// assumes η is saturation-safe (see SafeEta); the cycle-level simulation
// reproduces it exactly up to the ±1 subtracter stream artefact.
func (p *PE) ReferenceVMM(x []int) ([]int, error) {
	if p.xb == nil || len(x) != p.rows {
		return nil, fmt.Errorf("pe: input length %d, want %d", len(x), p.rows)
	}
	out := make([]int, p.cols)
	if err := p.xb.ReferenceBatch(out, x, 1); err != nil {
		return nil, fmt.Errorf("pe: %w", err)
	}
	return out, nil
}

// FloatVMM computes ReLU(W·x/η) in real arithmetic on the ideal weights —
// the mathematical function the PE approximates.
func (p *PE) FloatVMM(x []int) ([]float64, error) {
	if len(x) != p.rows {
		return nil, fmt.Errorf("pe: input length %d, want %d", len(x), p.rows)
	}
	eta := p.cfg.eta()
	out := make([]float64, p.cols)
	for j := 0; j < p.cols; j++ {
		var acc float64
		for i := 0; i < p.rows; i++ {
			acc += float64(p.weights[i][j]) * float64(x[i])
		}
		v := acc / eta
		if v < 0 {
			v = 0
		}
		out[j] = v
	}
	return out, nil
}

// Simulate runs the cycle-level PE over one sampling window of input spike
// trains using ideal accumulate-and-fire neurons and the programmed
// (possibly noisy) conductances. It returns the output spike trains of the
// subtracters.
func (p *PE) Simulate(inputs []spike.Train) ([]spike.Train, error) {
	return p.simulate(inputs, func(eta float64) xbar.Stepper { return &spike.Neuron{Eta: eta} })
}

// SimulateRC runs the same simulation with circuit-faithful RC voltage
// neurons (Eq. 1).
func (p *PE) SimulateRC(inputs []spike.Train) ([]spike.Train, error) {
	return p.simulate(inputs, func(eta float64) xbar.Stepper { return spike.DefaultRCNeuron(eta) })
}

func (p *PE) simulate(inputs []spike.Train, newNeuron func(eta float64) xbar.Stepper) ([]spike.Train, error) {
	if p.xb == nil {
		return nil, fmt.Errorf("pe: %d input trains, want %d", len(inputs), p.rows)
	}
	outs, err := p.xb.SimulateTrains(inputs, newNeuron)
	if err != nil {
		return nil, fmt.Errorf("pe: %w", err)
	}
	return outs, nil
}

// EnergyPerVMMpJ estimates the energy of one full-window VMM: the published
// per-PE aggregate scaled by the fraction of active rows/columns (idle
// charging units and neurons are clock-gated). With full occupancy it
// equals Table 1's PE total.
func (p *PE) EnergyPerVMMpJ() float64 {
	pr := p.cfg.Params
	rowFrac := float64(p.rows) / float64(pr.CrossbarRows)
	colFrac := float64(p.cols) / float64(pr.LogicalColumns())
	return pr.ChargingUnitsTotal.EnergyPJ*rowFrac +
		pr.ReRAMArraysTotal.EnergyPJ*rowFrac*colFrac +
		pr.NeuronUnitsTotal.EnergyPJ*colFrac +
		pr.SubtractersTotal.EnergyPJ*colFrac
}

// Utilization returns the fraction of logical crossbar cells the programmed
// matrix occupies — the per-PE term of the paper's spatial utilization
// bound (§6.3).
func (p *PE) Utilization() float64 {
	total := p.cfg.Params.WeightsPerPE()
	return float64(p.rows*p.cols) / float64(total)
}
