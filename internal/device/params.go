package device

// BlockCost is the (energy, area, latency) triple NVSim/Design Compiler
// report for one circuit block at 45 nm (paper Table 1).
type BlockCost struct {
	EnergyPJ  float64 // energy per activation, picojoules
	AreaUM2   float64 // area, square micrometres
	LatencyNS float64 // latency, nanoseconds
}

// Params holds every published 45 nm constant the evaluation depends on.
// The values are the paper's Tables 1 and 2 verbatim; the architecture and
// system layers treat them as externally supplied ground truth (they come
// from NVSim [12] and Synopsys Design Compiler in the paper).
type Params struct {
	// CrossbarRows/Cols are the physical crossbar dimensions. Two
	// physical columns form one logical column (positive and negative),
	// so the logical matrix is CrossbarRows × CrossbarCols/2.
	CrossbarRows int
	CrossbarCols int
	// CellsPerWeight is how many parallel cells form one weight with the
	// add method (8 per polarity in the paper's configuration).
	CellsPerWeight int
	// WeightBits is the logical weight precision (8 bit).
	WeightBits int
	// IOBits is the input/output precision; the sampling window is
	// 2^IOBits cycles (6 bit ⇒ Γ=64).
	IOBits int

	// Per-unit block costs (Table 1 per-unit rows). The published
	// per-unit energies/areas are rounded for display; the ×N aggregate
	// rows below are canonical (they sum exactly to the PE totals).
	ChargingUnit BlockCost // one per crossbar row
	ReRAMArray   BlockCost // one 256×512 array; ×8 for 8 cells/weight
	NeuronUnit   BlockCost // one per physical column
	Subtracter   BlockCost // one per logical column (column pair)
	CLB          BlockCost // 128 LUTs
	SMB          BlockCost // 16 Kb SRAM

	// Aggregate costs (Table 1 "×N" rows; latency fields repeat the
	// per-unit stage latency since the units operate in parallel).
	ChargingUnitsTotal BlockCost // ×256
	ReRAMArraysTotal   BlockCost // ×8
	NeuronUnitsTotal   BlockCost // ×512
	SubtractersTotal   BlockCost // ×256

	// PETotal is the published aggregate PE cost (Table 1 header row).
	// Area and latency equal the component sums exactly; the published
	// energy total differs from the component sum by ~3 % (rounding in
	// the paper), so we keep both.
	PETotal BlockCost

	// SMBCapacityBits is the SMB SRAM capacity (16 Kb).
	SMBCapacityBits int
	// CLBLUTs is the number of LUTs per CLB (sized so one CLB matches
	// one PE in area and pin count, §6.1).
	CLBLUTs int
	// LUTInputs is the LUT fan-in (conventional 6-input LUT, §4.4).
	LUTInputs int

	// WireDelayPerHopNS is the routing-architecture delay for one signal
	// to traverse one tile-to-tile hop (segment + mrFPGA ReRAM switch).
	// Calibrated so the mrVPR-reported averages in Figure 7 are
	// reproduced: a routed VGG16 net averages ~6 hops ⇒ ~9.9 ns per
	// signal transition, giving 6-bit count transmission 59.4 ns
	// (FP-PRIME) and Γ=64 spike-train transmission 633.9 ns (FPSA).
	WireDelayPerHopNS float64
	// TypicalRouteHops is the average routed critical-hop count backing
	// the calibration above; the full router reports exact values.
	TypicalRouteHops int
}

// Params45nm is the paper's evaluated configuration.
var Params45nm = Params{
	CrossbarRows:   256,
	CrossbarCols:   512,
	CellsPerWeight: 8,
	WeightBits:     8,
	IOBits:         6,

	ChargingUnit: BlockCost{EnergyPJ: 0.001, AreaUM2: 2.246, LatencyNS: 0.070},
	ReRAMArray:   BlockCost{EnergyPJ: 0.131, AreaUM2: 1061.683, LatencyNS: 0.000},
	NeuronUnit:   BlockCost{EnergyPJ: 0.039, AreaUM2: 19.247, LatencyNS: 1.463},
	Subtracter:   BlockCost{EnergyPJ: 0.031, AreaUM2: 12.121, LatencyNS: 0.910},
	CLB:          BlockCost{EnergyPJ: 3.106, AreaUM2: 5998.272, LatencyNS: 0.229},
	SMB:          BlockCost{EnergyPJ: 1.150, AreaUM2: 5421.900, LatencyNS: 0.578},

	ChargingUnitsTotal: BlockCost{EnergyPJ: 0.229, AreaUM2: 600.704, LatencyNS: 0.070},
	ReRAMArraysTotal:   BlockCost{EnergyPJ: 1.049, AreaUM2: 8493.466, LatencyNS: 0.000},
	NeuronUnitsTotal:   BlockCost{EnergyPJ: 19.861, AreaUM2: 9854.342, LatencyNS: 1.463},
	SubtractersTotal:   BlockCost{EnergyPJ: 8.945, AreaUM2: 3102.902, LatencyNS: 0.910},

	PETotal: BlockCost{EnergyPJ: 29.094, AreaUM2: 22051.414, LatencyNS: 2.443},

	SMBCapacityBits: 16 * 1024,
	CLBLUTs:         128,
	LUTInputs:       6,

	WireDelayPerHopNS: 1.651,
	TypicalRouteHops:  6,
}

// SamplingWindow returns Γ = 2^IOBits, the spike-count window that encodes
// one IOBits-bit number (§4.2).
func (p Params) SamplingWindow() int { return 1 << uint(p.IOBits) }

// PipelineClockNS returns the PE cycle time: the sum of the charging,
// neuron, and subtracter stage latencies (2.443 ns in Table 1; the crossbar
// RC delay itself is ~10 ps and counted as zero).
func (p Params) PipelineClockNS() float64 {
	return p.ChargingUnit.LatencyNS + p.NeuronUnit.LatencyNS + p.Subtracter.LatencyNS
}

// VMMLatencyNS returns the latency of one full vector-matrix multiplication
// on a PE: Γ pipeline cycles (156.4 ns for the 6-bit window, Table 2).
func (p Params) VMMLatencyNS() float64 {
	return float64(p.SamplingWindow()) * p.PipelineClockNS()
}

// LogicalColumns returns the number of logical output columns (column
// pairs).
func (p Params) LogicalColumns() int { return p.CrossbarCols / 2 }

// WeightsPerPE returns the logical weight capacity of one PE crossbar.
func (p Params) WeightsPerPE() int { return p.CrossbarRows * p.LogicalColumns() }

// OpsPerVMM returns the operation count the paper attributes to one
// crossbar pass: a multiply and an add per logical cell.
func (p Params) OpsPerVMM() int { return 2 * p.WeightsPerPE() }

// PEAreaUM2 returns the component-sum PE area (equals the published total).
func (p Params) PEAreaUM2() float64 {
	return p.ChargingUnitsTotal.AreaUM2 + p.ReRAMArraysTotal.AreaUM2 +
		p.NeuronUnitsTotal.AreaUM2 + p.SubtractersTotal.AreaUM2
}

// PEEnergyPJ returns the component-sum PE energy per VMM cycle set.
func (p Params) PEEnergyPJ() float64 {
	return p.ChargingUnitsTotal.EnergyPJ + p.ReRAMArraysTotal.EnergyPJ +
		p.NeuronUnitsTotal.EnergyPJ + p.SubtractersTotal.EnergyPJ
}

// ComputationalDensityOPSmm2 returns OPS per mm² for one PE running
// back-to-back VMMs: OpsPerVMM / (VMMLatency × PEArea). The paper's Table 2
// value is 38.004 TOPS/mm².
func (p Params) ComputationalDensityOPSmm2() float64 {
	areaMM2 := p.PEAreaUM2() * 1e-6
	latencyS := p.VMMLatencyNS() * 1e-9
	return float64(p.OpsPerVMM()) / latencyS / areaMM2
}

// PeakOPSPerPE returns the peak throughput of one PE.
func (p Params) PeakOPSPerPE() float64 {
	return float64(p.OpsPerVMM()) / (p.VMMLatencyNS() * 1e-9)
}

// WireDelayNS returns the signal-transition delay across a routed path of
// the given hop count.
func (p Params) WireDelayNS(hops int) float64 {
	return float64(hops) * p.WireDelayPerHopNS
}
