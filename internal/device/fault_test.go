package device

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestFaultMapDeterministic: MapForUnit is a pure function of (model,
// layer, unit, geometry) — two calls agree cell for cell, and distinct
// units land on distinct draws.
func TestFaultMapDeterministic(t *testing.T) {
	fm := &FaultModel{Rate: 0.05, Seed: 42, Drift: 0.1, ReadSigma: 1e-6}
	a := fm.MapForUnit("fc1", 3, 64, 32)
	b := fm.MapForUnit("fc1", 3, 64, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (model, layer, unit, geometry) produced different maps")
	}
	if len(a.Cells) == 0 {
		t.Fatal("5% rate over 2048 cells produced no faults")
	}
	other := fm.MapForUnit("fc1", 4, 64, 32)
	if reflect.DeepEqual(a.Cells, other.Cells) {
		t.Fatal("distinct units drew identical fault populations")
	}
	if a.ReadSeed == other.ReadSeed {
		t.Fatal("distinct units share a read-offset seed")
	}
}

// TestFaultMapLayerSeeds: a per-layer seed override re-rolls that layer's
// units and leaves the others on the model seed.
func TestFaultMapLayerSeeds(t *testing.T) {
	base := &FaultModel{Rate: 0.05, Seed: 1}
	binned := &FaultModel{Rate: 0.05, Seed: 1, Seeds: map[string]int64{"fc2": 99}}
	if a, b := base.MapForUnit("fc1", 0, 64, 32), binned.MapForUnit("fc1", 0, 64, 32); !reflect.DeepEqual(a, b) {
		t.Fatal("unlisted layer shifted under a LayerSeeds override")
	}
	if a, b := base.MapForUnit("fc2", 1, 64, 32), binned.MapForUnit("fc2", 1, 64, 32); reflect.DeepEqual(a.Cells, b.Cells) {
		t.Fatal("overridden layer kept the model seed's faults")
	}
}

// TestFaultMapInactive: nil and all-zero models report inactive and
// generate empty maps; any nonzero knob flips Active.
func TestFaultMapInactive(t *testing.T) {
	var nilModel *FaultModel
	if nilModel.Active() {
		t.Fatal("nil model active")
	}
	if (&FaultModel{Seed: 5, Remap: true}).Active() {
		t.Fatal("zero-rate model active")
	}
	for name, fm := range map[string]*FaultModel{
		"rate":  {Rate: 0.1},
		"drift": {Drift: 0.1},
		"sigma": {ReadSigma: 0.1},
	} {
		if !fm.Active() {
			t.Fatalf("%s-only model inactive", name)
		}
	}
	m := (&FaultModel{Seed: 5}).MapForUnit("l", 0, 8, 8)
	if !m.Empty() {
		t.Fatal("zero-rate map not empty")
	}
	mask := m.MaskFor(4, 4, true)
	if mask.Active() {
		t.Fatal("empty map produced an active mask")
	}
}

// TestFaultMapRemapSteersAroundFaults: a hand-built map whose faults
// concentrate on specific rows/columns must be fully avoided when spares
// exist, with deterministic ascending selections.
func TestFaultMapRemapSteersAroundFaults(t *testing.T) {
	m := FaultMap{Rows: 6, Cols: 6, Cells: []FaultCell{
		{Row: 1, Col: 0, Kind: FaultStuckHigh},
		{Row: 1, Col: 3, Kind: FaultStuckLow},
		{Row: 4, Col: 2, Kind: FaultStuckLow},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, cols, residual := m.Remap(4, 4)
	if residual != 0 {
		t.Fatalf("residual %d with 2 spare rows for 2 faulty ones", residual)
	}
	if want := []int{0, 2, 3, 5}; !reflect.DeepEqual(rows, want) {
		t.Fatalf("row selection %v, want %v", rows, want)
	}
	if len(cols) != 4 {
		t.Fatalf("col selection %v, want 4 columns", cols)
	}
	mask := m.MaskFor(4, 4, true)
	if mask.Faulted != 0 {
		t.Fatalf("remapped mask carries %d faults", mask.Faulted)
	}
	// Identity projection keeps the origin region's faults.
	ident := m.MaskFor(4, 4, false)
	if ident.Faulted != 2 {
		t.Fatalf("identity mask carries %d faults, want 2 (cells at rows 1 and col ≤ 3)", ident.Faulted)
	}
	if got := ident.Stuck(1, 0); got != FaultStuckHigh {
		t.Fatalf("Stuck(1,0) = %v, want stuck-high", got)
	}
	if got := ident.Stuck(0, 0); got != 0 {
		t.Fatalf("Stuck(0,0) = %v, want healthy", got)
	}
}

// TestFaultMapValidateRejects covers the malformed maps Decode and the
// fuzzers rely on Validate to reject.
func TestFaultMapValidateRejects(t *testing.T) {
	for name, m := range map[string]FaultMap{
		"zero-geometry": {},
		"nan-drift":     {Rows: 2, Cols: 2, Drift: math.NaN()},
		"big-drift":     {Rows: 2, Cols: 2, Drift: 1},
		"neg-sigma":     {Rows: 2, Cols: 2, ReadSigma: -1},
		"cell-range":    {Rows: 2, Cols: 2, Cells: []FaultCell{{Row: 2, Col: 0, Kind: FaultStuckLow}}},
		"cell-kind":     {Rows: 2, Cols: 2, Cells: []FaultCell{{Row: 0, Col: 0, Kind: 9}}},
		"cell-order":    {Rows: 2, Cols: 2, Cells: []FaultCell{{Row: 1, Col: 0, Kind: FaultStuckLow}, {Row: 0, Col: 1, Kind: FaultStuckLow}}},
		"cell-dup":      {Rows: 2, Cols: 2, Cells: []FaultCell{{Row: 0, Col: 1, Kind: FaultStuckLow}, {Row: 0, Col: 1, Kind: FaultStuckHigh}}},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, m)
		}
	}
}

// TestFaultMapEncodeDecode: the canonical wire form round-trips exactly,
// and Decode rejects near-miss non-canonical spellings.
func TestFaultMapEncodeDecode(t *testing.T) {
	m := FaultMap{Rows: 16, Cols: 8, Drift: 0.125, ReadSigma: 2.5e-7, ReadSeed: 901,
		Cells: []FaultCell{{Row: 0, Col: 7, Kind: FaultStuckLow}, {Row: 3, Col: 0, Kind: FaultStuckHigh}}}
	enc := m.Encode()
	dec, err := DecodeFaultMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, m) {
		t.Fatalf("decoded %+v, want %+v", dec, m)
	}
	for name, s := range map[string]string{
		"version":       strings.Replace(enc, "fm1", "fm2", 1),
		"reordered":     "fm1|16x8|d=0.125|s=2.5e-07|rs=901|3.0H;0.7L",
		"float-form":    strings.Replace(enc, "0.125", "0.1250", 1),
		"trailing-semi": enc + ";",
		"empty":         "",
	} {
		if _, err := DecodeFaultMap(s); err == nil {
			t.Errorf("%s: Decode accepted %q", name, s)
		}
	}
}

// FuzzFaultMapRoundTrip fuzzes the canonical wire format from both ends:
// generated maps must survive Encode → Decode → Encode bit-exactly, and
// any arbitrary string Decode accepts must already be canonical (its
// re-encoding is itself). Seed corpus under
// testdata/fuzz/FuzzFaultMapRoundTrip; CI runs a short smoke pass.
func FuzzFaultMapRoundTrip(f *testing.F) {
	f.Add(0.1, int64(7), 3, 16, 8, 0.05, 1e-7, "fm1|2x2|d=0|s=0|rs=1|0.0H")
	f.Add(1.0, int64(-3), 0, 4, 4, 0.0, 0.0, "fm1|2x2|d=0|s=0|rs=1|0.1L;0.0H")
	f.Add(0.0, int64(0), 11, 64, 1, 0.999, 5.5, "not a map")
	f.Fuzz(func(t *testing.T, rate float64, seed int64, unit, rows, cols int, drift, sigma float64, raw string) {
		if rows >= 1 && cols >= 1 && rows*cols >= 1 && rows*cols <= 4096 &&
			!math.IsNaN(rate) &&
			drift >= 0 && drift < 1 && !math.IsNaN(drift) &&
			sigma >= 0 && !math.IsNaN(sigma) && !math.IsInf(sigma, 0) {
			fm := &FaultModel{Rate: rate, Seed: seed, Drift: drift, ReadSigma: sigma}
			m := fm.MapForUnit("fuzz", unit, rows, cols)
			if err := m.Validate(); err != nil {
				t.Fatalf("generated map invalid: %v", err)
			}
			enc := m.Encode()
			dec, err := DecodeFaultMap(enc)
			if err != nil {
				t.Fatalf("decode of own encoding %q: %v", enc, err)
			}
			if !reflect.DeepEqual(dec, m) {
				t.Fatalf("round trip changed the map: %+v != %+v", dec, m)
			}
			if got := dec.Encode(); got != enc {
				t.Fatalf("re-encoding drifted: %q != %q", got, enc)
			}
		}
		if dec, err := DecodeFaultMap(raw); err == nil {
			if got := dec.Encode(); got != raw {
				t.Fatalf("Decode accepted non-canonical %q (canonical %q)", raw, got)
			}
		}
	})
}
