// Fault modeling: deterministic, seedable stuck-cell maps plus the analog
// aging effects (conductance drift, static read variation) a deployed
// ReRAM fleet accumulates. The paper's evaluation models programming
// noise only; this file adds the non-ideal device effects the compiler
// steers around (spare-row/column remapping in internal/mapper) and the
// executor applies at xbar.Program time, so every execution mode sees the
// same faulted conductances.
//
// Everything here is a pure deterministic function of (seed, unit):
// FaultModel.MapForUnit builds each crossbar's FaultMap from its own
// splitmix-derived rand.Source, so two workers — or two chips of a
// pipelined deployment — programming the same unit always see identical
// faults, unlike programming variation, which is per-replica by design.
package device

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// FaultKind classifies a stuck logical weight cell.
type FaultKind uint8

// Fault kinds. A "cell" here is one logical weight position — the
// differential pos/neg device pair programmed together — so a stuck-low
// cell reads as weight 0 and a stuck-high cell as +MaxWeight, exactly as
// if the weight matrix itself had been masked before programming.
const (
	FaultStuckLow FaultKind = iota + 1
	FaultStuckHigh
)

// String renders the kind the way FaultMap.Encode spells it.
func (k FaultKind) String() string {
	switch k {
	case FaultStuckLow:
		return "L"
	case FaultStuckHigh:
		return "H"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FaultCell is one stuck logical cell at a physical crossbar position.
type FaultCell struct {
	Row, Col int
	Kind     FaultKind
}

// FaultModel is a whole deployment's fault scenario: the stuck-cell rate
// and seed, the analog aging knobs, optional per-layer seed overrides
// (chip binning: different dies age differently), and whether the mapper
// remaps logical regions around known-bad cells.
type FaultModel struct {
	// Rate is the per-cell stuck probability in [0, 1].
	Rate float64
	// Seed drives fault-map generation; every unit derives its own
	// stream from (Seed, unit), so maps are reproducible and
	// worker-count independent.
	Seed int64
	// HighFrac is the fraction of stuck cells that are stuck-high
	// (0 = the default 0.5 split).
	HighFrac float64
	// Drift is the multiplicative conductance relaxation in [0, 1): every
	// programmed conductance decays to (1−Drift)·g.
	Drift float64
	// ReadSigma is the standard deviation of a static per-cell read
	// offset in level units (a fixed miscalibration, drawn once per cell
	// from the unit's read stream — not fresh noise per read).
	ReadSigma float64
	// Seeds overrides Seed for the named layers' units.
	Seeds map[string]int64
	// Remap steers logical regions around known-bad cells using the
	// crossbar's spare rows and columns (see FaultMap.Remap).
	Remap bool
}

// Active reports whether the model perturbs anything at all: an inactive
// model is structurally a no-op and executors skip fault plumbing
// entirely, which is what pins zero-rate bit-exactness.
func (m *FaultModel) Active() bool {
	return m != nil && (m.Rate > 0 || m.Drift > 0 || m.ReadSigma > 0)
}

// seedFor resolves the generation seed for one layer.
func (m *FaultModel) seedFor(layer string) int64 {
	if s, ok := m.Seeds[layer]; ok {
		return s
	}
	return m.Seed
}

// mixSeed derives one unit's rand seed from the model seed — a splitmix64
// finalizer, so adjacent units land on uncorrelated streams.
func mixSeed(seed int64, unit int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(unit+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // non-negative, full 63-bit entropy
}

// MapForUnit generates the deterministic fault map of one physical
// crossbar: unit is a stable global identifier (the weight-group ID), and
// rows×cols the physical crossbar geometry (spares included — remapping
// needs them). The same (model, unit, geometry) always yields the same
// map, regardless of which worker or chip asks.
func (m *FaultModel) MapForUnit(layer string, unit, rows, cols int) FaultMap {
	fm := FaultMap{Rows: rows, Cols: cols}
	if m == nil {
		return fm
	}
	fm.Drift = m.Drift
	fm.ReadSigma = m.ReadSigma
	seed := m.seedFor(layer)
	fm.ReadSeed = mixSeed(seed+1, unit)
	rate := m.Rate
	if rate <= 0 {
		return fm
	}
	if rate > 1 {
		rate = 1
	}
	highFrac := m.HighFrac
	if highFrac == 0 {
		highFrac = 0.5
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, unit)))
	// Row-major generation keeps Cells in canonical order by construction.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() >= rate {
				continue
			}
			kind := FaultStuckLow
			if rng.Float64() < highFrac {
				kind = FaultStuckHigh
			}
			fm.Cells = append(fm.Cells, FaultCell{Row: r, Col: c, Kind: kind})
		}
	}
	return fm
}

// FaultMap is one physical crossbar's fault state: its stuck cells in
// canonical row-major order, plus the unit's analog aging parameters.
type FaultMap struct {
	// Rows and Cols are the physical crossbar geometry the map covers.
	Rows, Cols int
	// Cells lists the stuck cells in strictly ascending row-major order
	// (the canonical order Encode/Decode enforce).
	Cells []FaultCell
	// Drift and ReadSigma mirror FaultModel; ReadSeed seeds the unit's
	// static read-offset stream.
	Drift     float64
	ReadSigma float64
	ReadSeed  int64
}

// Empty reports a map with no stuck cells and no analog effects.
func (m FaultMap) Empty() bool {
	return len(m.Cells) == 0 && m.Drift == 0 && m.ReadSigma == 0
}

// Validate checks geometry, cell ranges and canonical ordering.
func (m FaultMap) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("device: fault map geometry %dx%d", m.Rows, m.Cols)
	}
	if m.Drift < 0 || m.Drift >= 1 || m.Drift != m.Drift {
		return fmt.Errorf("device: fault map drift %v outside [0, 1)", m.Drift)
	}
	if m.ReadSigma < 0 || m.ReadSigma != m.ReadSigma {
		return fmt.Errorf("device: fault map read sigma %v negative", m.ReadSigma)
	}
	prev := -1
	for i, c := range m.Cells {
		if c.Row < 0 || c.Row >= m.Rows || c.Col < 0 || c.Col >= m.Cols {
			return fmt.Errorf("device: fault cell %d at (%d,%d) outside %dx%d", i, c.Row, c.Col, m.Rows, m.Cols)
		}
		if c.Kind != FaultStuckLow && c.Kind != FaultStuckHigh {
			return fmt.Errorf("device: fault cell %d has unknown kind %d", i, c.Kind)
		}
		key := c.Row*m.Cols + c.Col
		if key <= prev {
			return fmt.Errorf("device: fault cell %d at (%d,%d) breaks canonical row-major order", i, c.Row, c.Col)
		}
		prev = key
	}
	return nil
}

// Remap selects the rows least-faulted physical rows and, within them, the
// cols least-faulted physical columns — the spare-row/column steering the
// compiler applies for known-bad cells. Selection is greedy with
// ascending-index tie-breaks and the returned index slices are ascending,
// so the result is a deterministic function of the map alone. residual is
// the number of stuck cells remaining inside the selected region.
func (m FaultMap) Remap(rows, cols int) (rowIdx, colIdx []int, residual int) {
	if rows > m.Rows {
		rows = m.Rows
	}
	if cols > m.Cols {
		cols = m.Cols
	}
	rowFaults := make([]int, m.Rows)
	for _, c := range m.Cells {
		rowFaults[c.Row]++
	}
	rowIdx = pickLeast(rowFaults, rows)
	chosen := make([]bool, m.Rows)
	for _, r := range rowIdx {
		chosen[r] = true
	}
	colFaults := make([]int, m.Cols)
	for _, c := range m.Cells {
		if chosen[c.Row] {
			colFaults[c.Col]++
		}
	}
	colIdx = pickLeast(colFaults, cols)
	chosenCol := make([]bool, m.Cols)
	for _, c := range colIdx {
		chosenCol[c] = true
	}
	for _, c := range m.Cells {
		if chosen[c.Row] && chosenCol[c.Col] {
			residual++
		}
	}
	return rowIdx, colIdx, residual
}

// pickLeast returns the indices of the n smallest counts, ties broken by
// ascending index, result ascending.
func pickLeast(counts []int, n int) []int {
	idx := make([]int, len(counts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] < counts[idx[b]] })
	sel := append([]int(nil), idx[:n]...)
	sort.Ints(sel)
	return sel
}

// MaskFor projects the map onto a rows×cols logical region and returns
// the mask xbar.Program consumes. With remap false the region sits at the
// crossbar's origin (logical (i,j) is physical (i,j)); with remap true
// the Remap spare-row/column assignment steers it around stuck cells.
// The analog parameters ride along unchanged.
func (m FaultMap) MaskFor(rows, cols int, remap bool) FaultMask {
	mask := FaultMask{
		Rows:      rows,
		Cols:      cols,
		Drift:     m.Drift,
		ReadSigma: m.ReadSigma,
		ReadSeed:  m.ReadSeed,
	}
	if len(m.Cells) == 0 {
		return mask
	}
	var rowOf, colOf []int // physical index → logical index, or −1
	if remap {
		rowIdx, colIdx, _ := m.Remap(rows, cols)
		rowOf = inverseIndex(rowIdx, m.Rows)
		colOf = inverseIndex(colIdx, m.Cols)
	}
	for _, c := range m.Cells {
		i, j := c.Row, c.Col
		if remap {
			i, j = rowOf[c.Row], colOf[c.Col]
		}
		if i < 0 || i >= rows || j < 0 || j >= cols {
			continue
		}
		if mask.stuck == nil {
			mask.stuck = make([]FaultKind, rows*cols)
		}
		mask.stuck[i*cols+j] = c.Kind
		mask.Faulted++
	}
	return mask
}

// inverseIndex inverts an ascending physical-index selection into a
// physical → logical lookup (−1 = unselected).
func inverseIndex(sel []int, n int) []int {
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for logical, physical := range sel {
		inv[physical] = logical
	}
	return inv
}

// FaultMask is a fault map projected onto one logical weight region —
// what xbar.Program actually applies. The zero value masks nothing.
type FaultMask struct {
	Rows, Cols int
	// Faulted counts the stuck logical cells inside the region (after
	// any remapping) — the residual the serving stats surface.
	Faulted int
	// Drift, ReadSigma and ReadSeed are the unit's analog parameters.
	Drift     float64
	ReadSigma float64
	ReadSeed  int64

	stuck []FaultKind // row-major rows×cols; 0 = healthy
}

// Active reports whether programming under this mask can differ from
// unfaulted programming at all.
func (m *FaultMask) Active() bool {
	return m != nil && (m.Faulted > 0 || m.Drift > 0 || m.ReadSigma > 0)
}

// Stuck returns the fault kind at logical cell (i, j), or 0 when healthy.
func (m *FaultMask) Stuck(i, j int) FaultKind {
	if m == nil || m.stuck == nil {
		return 0
	}
	return m.stuck[i*m.Cols+j]
}

// encodeVersion tags the canonical FaultMap wire format.
const encodeVersion = "fm1"

// Encode renders the map in its canonical wire form:
//
//	fm1|<rows>x<cols>|d=<drift>|s=<readsigma>|rs=<readseed>|r.cK;r.cK;...
//
// Floats use Go's shortest round-tripping formatting and cells appear in
// canonical row-major order, so Encode∘Decode is the identity on valid
// maps (fuzz-pinned by FuzzFaultMapRoundTrip).
func (m FaultMap) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%dx%d|d=%s|s=%s|rs=%d|", encodeVersion, m.Rows, m.Cols,
		strconv.FormatFloat(m.Drift, 'g', -1, 64),
		strconv.FormatFloat(m.ReadSigma, 'g', -1, 64),
		m.ReadSeed)
	for i, c := range m.Cells {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d.%d%s", c.Row, c.Col, c.Kind)
	}
	return b.String()
}

// DecodeFaultMap parses the canonical wire form, rejecting anything
// non-canonical (bad geometry, out-of-range cells, duplicate or
// out-of-order cells) so Decode∘Encode round-trips exactly.
func DecodeFaultMap(s string) (FaultMap, error) {
	var m FaultMap
	parts := strings.Split(s, "|")
	if len(parts) != 6 || parts[0] != encodeVersion {
		return m, fmt.Errorf("device: fault map encoding wants 6 %q-delimited fields starting %q", "|", encodeVersion)
	}
	if _, err := fmt.Sscanf(parts[1], "%dx%d", &m.Rows, &m.Cols); err != nil {
		return m, fmt.Errorf("device: fault map geometry %q: %w", parts[1], err)
	}
	var err error
	if m.Drift, err = decodeFloatField(parts[2], "d="); err != nil {
		return m, err
	}
	if m.ReadSigma, err = decodeFloatField(parts[3], "s="); err != nil {
		return m, err
	}
	rs, ok := strings.CutPrefix(parts[4], "rs=")
	if !ok {
		return m, fmt.Errorf("device: fault map field %q wants prefix rs=", parts[4])
	}
	if m.ReadSeed, err = strconv.ParseInt(rs, 10, 64); err != nil {
		return m, fmt.Errorf("device: fault map read seed %q: %w", rs, err)
	}
	if parts[5] != "" {
		for _, cell := range strings.Split(parts[5], ";") {
			c, err := decodeCell(cell)
			if err != nil {
				return m, err
			}
			m.Cells = append(m.Cells, c)
		}
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	if got := m.Encode(); got != s {
		return m, fmt.Errorf("device: fault map encoding %q not canonical (want %q)", s, got)
	}
	return m, nil
}

// decodeFloatField parses one "<prefix><float>" field with round-trip
// canonical formatting.
func decodeFloatField(field, prefix string) (float64, error) {
	v, ok := strings.CutPrefix(field, prefix)
	if !ok {
		return 0, fmt.Errorf("device: fault map field %q wants prefix %q", field, prefix)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("device: fault map field %q: %w", field, err)
	}
	return f, nil
}

// decodeCell parses one "row.colKind" cell.
func decodeCell(s string) (FaultCell, error) {
	var c FaultCell
	if len(s) < 4 {
		return c, fmt.Errorf("device: fault cell %q too short", s)
	}
	switch s[len(s)-1] {
	case 'L':
		c.Kind = FaultStuckLow
	case 'H':
		c.Kind = FaultStuckHigh
	default:
		return c, fmt.Errorf("device: fault cell %q wants trailing L or H", s)
	}
	row, col, ok := strings.Cut(s[:len(s)-1], ".")
	if !ok {
		return c, fmt.Errorf("device: fault cell %q wants row.col", s)
	}
	var err error
	if c.Row, err = strconv.Atoi(row); err != nil {
		return c, fmt.Errorf("device: fault cell row %q: %w", row, err)
	}
	if c.Col, err = strconv.Atoi(col); err != nil {
		return c, fmt.Errorf("device: fault cell col %q: %w", col, err)
	}
	return c, nil
}
