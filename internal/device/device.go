// Package device models the ReRAM cell substrate FPSA is built on: multi-
// level cells with programming variation, the splice and add weight-
// representation methods (paper §7.2), and the 45 nm circuit cost constants
// the paper takes from NVSim and Synopsys Design Compiler (Tables 1 and 2).
//
// Conductances are handled in "level units": a cell programmed to level L
// contributes L (plus Gaussian programming noise) to the column current sum.
// This normalization is exact for everything the paper derives, because only
// conductance ratios appear in the spiking-PE equations (Eq. 1-6).
package device

import (
	"fmt"
	"math/rand"
)

// CellSpec describes one multi-level ReRAM cell.
type CellSpec struct {
	// Bits is the programmable resolution; the cell holds 2^Bits levels.
	Bits int
	// Sigma is the standard deviation of the programmed conductance in
	// level units (cycle-to-cycle plus programming variation, per the
	// fabricated-array data of Yao et al. [49] as used in Figure 9).
	Sigma float64
	// WriteEndurance is the approximate number of SET/RESET cycles the
	// cell survives (~1e12 for ReRAM; the reason SMBs use SRAM, §4.3).
	WriteEndurance float64
}

// Cell4Bit is the cell used throughout the paper's evaluation: 16 levels,
// with a moderate programming variation for the functional simulator.
var Cell4Bit = CellSpec{Bits: 4, Sigma: 0.45, WriteEndurance: 1e12}

// Cell4BitMeasured carries the per-cell variation calibrated against the
// fabricated-array behaviour the paper cites [49] as it manifests at our
// substitute network's scale: with this sigma, the PRIME configuration
// (two spliced 4-bit cells) reproduces Figure 9's ~70 % normalized
// accuracy, and the add-method curve is then *measured*, not fitted (see
// internal/experiments Figure9).
var Cell4BitMeasured = CellSpec{Bits: 4, Sigma: 1.6, WriteEndurance: 1e12}

// Levels returns the number of programmable conductance levels.
func (c CellSpec) Levels() int { return 1 << c.Bits }

// MaxLevel returns the highest programmable level (Levels-1).
func (c CellSpec) MaxLevel() int { return c.Levels() - 1 }

// Validate reports whether the spec is physically meaningful.
func (c CellSpec) Validate() error {
	if c.Bits <= 0 || c.Bits > 8 {
		return fmt.Errorf("device: cell bits %d out of range [1,8]", c.Bits)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("device: negative sigma %v", c.Sigma)
	}
	return nil
}

// Program returns the conductance (in level units) that results from
// programming the cell to the given level, including Gaussian programming
// variation drawn from rng. A nil rng programs the ideal value, and level
// is clamped to the representable range, mirroring a real write-verify
// loop that saturates at the extreme states.
func (c CellSpec) Program(level int, rng *rand.Rand) float64 {
	if level < 0 {
		level = 0
	}
	if max := c.MaxLevel(); level > max {
		level = max
	}
	g := float64(level)
	if rng != nil && c.Sigma > 0 {
		g += rng.NormFloat64() * c.Sigma
	}
	// Conductance cannot go negative; the device saturates at its
	// highest-resistance state.
	if g < 0 {
		g = 0
	}
	return g
}

// NormalizedDeviation is the ratio between the conductance standard
// deviation of a single cell and its representable range, the metric §7.2
// uses to compare representation methods.
func (c CellSpec) NormalizedDeviation() float64 {
	return c.Sigma / float64(c.MaxLevel())
}
