package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellSpecLevels(t *testing.T) {
	if got := Cell4Bit.Levels(); got != 16 {
		t.Fatalf("Cell4Bit.Levels() = %d, want 16", got)
	}
	if got := Cell4Bit.MaxLevel(); got != 15 {
		t.Fatalf("Cell4Bit.MaxLevel() = %d, want 15", got)
	}
}

func TestCellSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    CellSpec
		wantErr bool
	}{
		{"valid", CellSpec{Bits: 4, Sigma: 0.3}, false},
		{"zero bits", CellSpec{Bits: 0}, true},
		{"too many bits", CellSpec{Bits: 9}, true},
		{"negative sigma", CellSpec{Bits: 4, Sigma: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestProgramIdeal(t *testing.T) {
	spec := CellSpec{Bits: 4}
	for l := 0; l <= spec.MaxLevel(); l++ {
		if got := spec.Program(l, nil); got != float64(l) {
			t.Errorf("Program(%d, nil) = %v, want %d", l, got, l)
		}
	}
}

func TestProgramClamps(t *testing.T) {
	spec := CellSpec{Bits: 4}
	if got := spec.Program(-5, nil); got != 0 {
		t.Errorf("Program(-5) = %v, want 0", got)
	}
	if got := spec.Program(100, nil); got != 15 {
		t.Errorf("Program(100) = %v, want 15", got)
	}
}

func TestProgramVariationStatistics(t *testing.T) {
	spec := CellSpec{Bits: 4, Sigma: 0.4}
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	const level = 8
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := spec.Program(level, rng)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-level) > 0.01 {
		t.Errorf("programmed mean = %v, want ~%d", mean, level)
	}
	if math.Abs(std-spec.Sigma) > 0.01 {
		t.Errorf("programmed std = %v, want ~%v", std, spec.Sigma)
	}
}

func TestProgramNeverNegative(t *testing.T) {
	spec := CellSpec{Bits: 4, Sigma: 5} // absurd sigma to force clipping
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if g := spec.Program(0, rng); g < 0 {
			t.Fatalf("Program produced negative conductance %v", g)
		}
	}
}

func TestParams45nmTable1Sums(t *testing.T) {
	p := Params45nm
	// Table 1: PE area and latency are exact component sums.
	if got, want := p.PEAreaUM2(), p.PETotal.AreaUM2; math.Abs(got-want) > 1e-6 {
		t.Errorf("PE area component sum = %v, published total %v", got, want)
	}
	if got, want := p.PipelineClockNS(), p.PETotal.LatencyNS; math.Abs(got-want) > 1e-9 {
		t.Errorf("PE latency component sum = %v, published total %v", got, want)
	}
	// Energy: the published total is within 5% of the component sum
	// (rounding in the paper's table).
	if got, want := p.PEEnergyPJ(), p.PETotal.EnergyPJ; math.Abs(got-want)/want > 0.05 {
		t.Errorf("PE energy component sum = %v, published total %v (>5%% apart)", got, want)
	}
}

func TestParams45nmDerived(t *testing.T) {
	p := Params45nm
	if got := p.SamplingWindow(); got != 64 {
		t.Errorf("SamplingWindow = %d, want 64", got)
	}
	if got := p.VMMLatencyNS(); math.Abs(got-156.352) > 1e-3 {
		t.Errorf("VMMLatencyNS = %v, want 156.352 (Table 2: 156.4)", got)
	}
	if got := p.WeightsPerPE(); got != 256*256 {
		t.Errorf("WeightsPerPE = %d, want %d", got, 256*256)
	}
	if got := p.OpsPerVMM(); got != 2*256*256 {
		t.Errorf("OpsPerVMM = %d, want %d", got, 2*256*256)
	}
	// Table 2: computational density 38.004 TOPS/mm².
	if got := p.ComputationalDensityOPSmm2(); math.Abs(got-38.004e12)/38.004e12 > 0.001 {
		t.Errorf("ComputationalDensity = %v, want ~38.004e12", got)
	}
}

func TestWireDelayCalibration(t *testing.T) {
	p := Params45nm
	perSignal := p.WireDelayNS(p.TypicalRouteHops)
	// Figure 7: 6-bit count transmission = 59.4 ns, Γ=64 spike train =
	// 633.9 ns (within 1%).
	if got := perSignal * 6; math.Abs(got-59.4)/59.4 > 0.01 {
		t.Errorf("6-bit count transmission = %v ns, want ~59.4", got)
	}
	if got := perSignal * 64; math.Abs(got-633.9)/633.9 > 0.01 {
		t.Errorf("spike-train transmission = %v ns, want ~633.9", got)
	}
}

func TestWeightsFitSMB(t *testing.T) {
	p := Params45nm
	// An SMB stores spike counts bit-indexed: 16 Kb holds 16384/IOBits
	// counts at the evaluated precision.
	counts := p.SMBCapacityBits / p.IOBits
	if counts < p.LogicalColumns() {
		t.Errorf("one SMB holds %d counts, cannot buffer one PE output row of %d", counts, p.LogicalColumns())
	}
}

func TestQuickProgramWithinRange(t *testing.T) {
	spec := CellSpec{Bits: 4, Sigma: 0.3}
	rng := rand.New(rand.NewSource(3))
	f := func(level int) bool {
		g := spec.Program(level%64, rng)
		return g >= 0 && g <= float64(spec.MaxLevel())+6*spec.Sigma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
