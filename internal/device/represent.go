package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Representation is a method for storing one unsigned weight magnitude on a
// set of ReRAM cells whose conductances sum on a crossbar column. The two
// implementations are the splicing method used by prior accelerators
// (PRIME, ISAAC) and the paper's add method (§7.2).
//
// Encode maps a weight in [0, MaxWeight] to per-cell levels; the effective
// stored value is the plain sum of the programmed conductances scaled by
// Scale (so that different methods are comparable on the same axis).
type Representation interface {
	// Name identifies the method ("splice" or "add").
	Name() string
	// Cells returns the number of cells used per weight.
	Cells() int
	// MaxWeight returns the largest representable integer weight.
	MaxWeight() int
	// Encode maps weight w (clamped to [0, MaxWeight]) to cell levels.
	Encode(w int) []int
	// Scale converts a raw conductance sum into weight units: the
	// decoded weight is Scale() * sum(g_i * coefficient_i). For both
	// methods here coefficients are folded into Encode/Decode.
	Decode(conductances []float64) float64
	// NormalizedDeviation returns the standard deviation of the decoded
	// weight divided by the weight range, the §7.2 accuracy metric.
	NormalizedDeviation(spec CellSpec) float64
	// EffectiveLevels returns how many distinct weight values the method
	// can represent ("Bound by #Levels" in Figure 9).
	EffectiveLevels() int
}

// Splice represents a weight by bit-slicing it across cells: cell i stores
// an n-bit field with positional significance 2^(n*i). PRIME's configuration
// is two 4-bit cells forming an 8-bit weight.
type Splice struct {
	Spec     CellSpec
	NumCells int
}

// NewSplice returns a splicing representation over n cells.
func NewSplice(spec CellSpec, cells int) Splice {
	if cells < 1 {
		panic(fmt.Sprintf("device: splice needs >=1 cell, got %d", cells))
	}
	return Splice{Spec: spec, NumCells: cells}
}

// Name implements Representation.
func (s Splice) Name() string { return "splice" }

// Cells implements Representation.
func (s Splice) Cells() int { return s.NumCells }

// MaxWeight implements Representation.
func (s Splice) MaxWeight() int { return (1 << uint(s.Spec.Bits*s.NumCells)) - 1 }

// EffectiveLevels implements Representation.
func (s Splice) EffectiveLevels() int { return s.MaxWeight() + 1 }

// Encode implements Representation. Cell 0 holds the least-significant
// field.
func (s Splice) Encode(w int) []int {
	w = clampWeight(w, s.MaxWeight())
	levels := make([]int, s.NumCells)
	mask := s.Spec.Levels() - 1
	for i := range levels {
		levels[i] = w & mask
		w >>= uint(s.Spec.Bits)
	}
	return levels
}

// Decode implements Representation: conductances carry positional weights
// 2^(bits*i).
func (s Splice) Decode(conductances []float64) float64 {
	var v float64
	for i, g := range conductances {
		v += g * math.Pow(2, float64(s.Spec.Bits*i))
	}
	return v
}

// NormalizedDeviation implements Representation. For k cells of n bits the
// decoded value is Σ 2^(n·i)·G_i with independent G_i ~ N(level, σ²), so the
// deviation is σ·sqrt(Σ 4^(n·i)) over the range 2^(n·k)−1 — the closed form
// the paper derives for k=2 as sqrt(2^2n + 1)·σ/(2^2n − 1).
func (s Splice) NormalizedDeviation(spec CellSpec) float64 {
	var sumSq float64
	for i := 0; i < s.NumCells; i++ {
		c := math.Pow(2, float64(spec.Bits*i))
		sumSq += c * c
	}
	rangeW := math.Pow(2, float64(spec.Bits*s.NumCells)) - 1
	return spec.Sigma * math.Sqrt(sumSq) / rangeW
}

// Add represents a weight by spreading it evenly across cells with equal
// coefficients (the paper's add method): n cells of b bits represent
// n·(2^b−1)+1 distinct values and divide the deviation by sqrt(n).
type Add struct {
	Spec     CellSpec
	NumCells int
}

// NewAdd returns an add-method representation over n cells.
func NewAdd(spec CellSpec, cells int) Add {
	if cells < 1 {
		panic(fmt.Sprintf("device: add needs >=1 cell, got %d", cells))
	}
	return Add{Spec: spec, NumCells: cells}
}

// Name implements Representation.
func (a Add) Name() string { return "add" }

// Cells implements Representation.
func (a Add) Cells() int { return a.NumCells }

// MaxWeight implements Representation.
func (a Add) MaxWeight() int { return a.NumCells * a.Spec.MaxLevel() }

// EffectiveLevels implements Representation.
func (a Add) EffectiveLevels() int { return a.MaxWeight() + 1 }

// Encode implements Representation: the weight is split as evenly as
// possible (|a_i| all equal maximizes the Cauchy-inequality deviation gain,
// §7.2), with the remainder distributed one level at a time.
func (a Add) Encode(w int) []int {
	w = clampWeight(w, a.MaxWeight())
	base := w / a.NumCells
	rem := w % a.NumCells
	levels := make([]int, a.NumCells)
	for i := range levels {
		levels[i] = base
		if i < rem {
			levels[i]++
		}
	}
	return levels
}

// Decode implements Representation: unit coefficients.
func (a Add) Decode(conductances []float64) float64 {
	var v float64
	for _, g := range conductances {
		v += g
	}
	return v
}

// NormalizedDeviation implements Representation: σ·sqrt(n) over the range
// n·(2^b−1), i.e. σ/(sqrt(n)·(2^b−1)) — a sqrt(n) improvement per cell.
func (a Add) NormalizedDeviation(spec CellSpec) float64 {
	n := float64(a.NumCells)
	return spec.Sigma * math.Sqrt(n) / (n * float64(spec.MaxLevel()))
}

// ProgramWeight encodes w with rep, programs each cell with variation from
// rng, and returns the decoded (noisy) weight value. It is the single code
// path both the Monte-Carlo accuracy study (Figure 9) and the functional
// crossbar model use.
func ProgramWeight(rep Representation, spec CellSpec, w int, rng *rand.Rand) float64 {
	levels := rep.Encode(w)
	gs := make([]float64, len(levels))
	for i, l := range levels {
		gs[i] = spec.Program(l, rng)
	}
	return rep.Decode(gs)
}

func clampWeight(w, max int) int {
	if w < 0 {
		return 0
	}
	if w > max {
		return max
	}
	return w
}
