package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpliceEncodeDecodeRoundTrip(t *testing.T) {
	rep := NewSplice(CellSpec{Bits: 4}, 2)
	if got := rep.MaxWeight(); got != 255 {
		t.Fatalf("MaxWeight = %d, want 255", got)
	}
	for w := 0; w <= rep.MaxWeight(); w++ {
		levels := rep.Encode(w)
		gs := make([]float64, len(levels))
		for i, l := range levels {
			gs[i] = float64(l)
		}
		if got := rep.Decode(gs); got != float64(w) {
			t.Fatalf("splice round trip: Encode(%d)=%v Decode=%v", w, levels, got)
		}
	}
}

func TestSpliceEncodeFields(t *testing.T) {
	rep := NewSplice(CellSpec{Bits: 4}, 2)
	levels := rep.Encode(0xAB)
	if levels[0] != 0xB || levels[1] != 0xA {
		t.Fatalf("Encode(0xAB) = %v, want [11 10]", levels)
	}
}

func TestAddEncodeDecodeRoundTrip(t *testing.T) {
	rep := NewAdd(CellSpec{Bits: 4}, 8)
	if got := rep.MaxWeight(); got != 120 {
		t.Fatalf("MaxWeight = %d, want 120", got)
	}
	for w := 0; w <= rep.MaxWeight(); w++ {
		levels := rep.Encode(w)
		sum := 0
		for _, l := range levels {
			if l < 0 || l > 15 {
				t.Fatalf("Encode(%d) produced out-of-range level %d", w, l)
			}
			sum += l
		}
		if sum != w {
			t.Fatalf("add Encode(%d) levels sum to %d", w, sum)
		}
	}
}

func TestAddEncodeEven(t *testing.T) {
	rep := NewAdd(CellSpec{Bits: 4}, 8)
	levels := rep.Encode(60)
	for _, l := range levels {
		// 60/8 = 7.5: levels must be 7 or 8 (even spread maximizes the
		// Cauchy-inequality deviation gain).
		if l != 7 && l != 8 {
			t.Fatalf("Encode(60) = %v, want levels in {7,8}", levels)
		}
	}
}

func TestEncodeClamping(t *testing.T) {
	for _, rep := range []Representation{
		NewSplice(CellSpec{Bits: 4}, 2),
		NewAdd(CellSpec{Bits: 4}, 8),
	} {
		low := rep.Encode(-10)
		for _, l := range low {
			if l != 0 {
				t.Errorf("%s.Encode(-10) = %v, want all zero", rep.Name(), low)
			}
		}
		high := rep.Encode(1 << 20)
		gs := make([]float64, len(high))
		for i, l := range high {
			gs[i] = float64(l)
		}
		if got := rep.Decode(gs); got != float64(rep.MaxWeight()) {
			t.Errorf("%s.Encode(huge) decodes to %v, want MaxWeight %d", rep.Name(), got, rep.MaxWeight())
		}
	}
}

func TestSpliceNormalizedDeviationClosedForm(t *testing.T) {
	// Paper §7.2: two n-bit cells ⇒ sqrt(2^2n + 1)·σ/(2^2n − 1).
	spec := CellSpec{Bits: 4, Sigma: 0.5}
	rep := NewSplice(spec, 2)
	want := math.Sqrt(math.Pow(2, 8)+1) * spec.Sigma / (math.Pow(2, 8) - 1)
	if got := rep.NormalizedDeviation(spec); math.Abs(got-want) > 1e-12 {
		t.Errorf("splice deviation = %v, closed form %v", got, want)
	}
	// And it is "almost equal to the ratio of the one-cell case".
	oneCell := spec.NormalizedDeviation()
	if math.Abs(got(rep, spec)-oneCell)/oneCell > 0.07 {
		t.Errorf("splice deviation %v not within 7%% of one-cell %v", got(rep, spec), oneCell)
	}
}

func got(rep Representation, spec CellSpec) float64 { return rep.NormalizedDeviation(spec) }

func TestAddNormalizedDeviationSqrtN(t *testing.T) {
	spec := CellSpec{Bits: 4, Sigma: 0.5}
	one := NewAdd(spec, 1).NormalizedDeviation(spec)
	for _, n := range []int{2, 4, 8, 16} {
		gotDev := NewAdd(spec, n).NormalizedDeviation(spec)
		want := one / math.Sqrt(float64(n))
		if math.Abs(gotDev-want)/want > 1e-9 {
			t.Errorf("add(%d cells) deviation = %v, want %v (σ/√n scaling)", n, gotDev, want)
		}
	}
}

func TestAddBeatsSpliceOnDeviation(t *testing.T) {
	spec := CellSpec{Bits: 4, Sigma: 0.5}
	splice := NewSplice(spec, 2).NormalizedDeviation(spec)
	add := NewAdd(spec, 8).NormalizedDeviation(spec)
	if add >= splice {
		t.Errorf("add deviation %v not better than splice %v", add, splice)
	}
	// The paper's configurations: 8 add cells reduce deviation by ~√8
	// relative to one cell, splice ~none.
	if ratio := splice / add; ratio < 2.5 {
		t.Errorf("add improvement over splice = %.2f×, want ≥2.5×", ratio)
	}
}

func TestEffectiveLevelsFigure9Staircase(t *testing.T) {
	// Figure 9's "Bound by #Levels" staircase: k 4-bit add cells give
	// 15k+1 levels; 16 cells ≈ 8 bits, 2 splice cells = exactly 8 bits.
	spec := CellSpec{Bits: 4}
	cases := []struct {
		cells int
		want  int
	}{{1, 16}, {2, 31}, {4, 61}, {8, 121}, {16, 241}}
	for _, tc := range cases {
		if levels := NewAdd(spec, tc.cells).EffectiveLevels(); levels != tc.want {
			t.Errorf("add %d cells: EffectiveLevels = %d, want %d", tc.cells, levels, tc.want)
		}
	}
	if levels := NewSplice(spec, 2).EffectiveLevels(); levels != 256 {
		t.Errorf("splice 2 cells: EffectiveLevels = %d, want 256", levels)
	}
}

func TestProgramWeightMonteCarloDeviation(t *testing.T) {
	// The empirical deviation of ProgramWeight must match the closed
	// forms for both methods.
	spec := CellSpec{Bits: 4, Sigma: 0.4}
	rng := rand.New(rand.NewSource(7))
	for _, rep := range []Representation{
		NewSplice(spec, 2),
		NewAdd(spec, 8),
	} {
		const n = 100000
		w := rep.MaxWeight() / 2
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := ProgramWeight(rep, spec, w, rng)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		std := math.Sqrt(sumSq/n - mean*mean)
		gotDev := std / float64(rep.MaxWeight())
		wantDev := rep.NormalizedDeviation(spec)
		if math.Abs(gotDev-wantDev)/wantDev > 0.05 {
			t.Errorf("%s: Monte-Carlo deviation %v, closed form %v", rep.Name(), gotDev, wantDev)
		}
		if math.Abs(mean-float64(w)) > 3*std/math.Sqrt(n)+0.05 {
			t.Errorf("%s: ProgramWeight biased: mean %v want %d", rep.Name(), mean, w)
		}
	}
}

func TestQuickRoundTripBothMethods(t *testing.T) {
	spec := CellSpec{Bits: 4}
	reps := []Representation{NewSplice(spec, 2), NewAdd(spec, 8), NewAdd(spec, 3), NewSplice(spec, 3)}
	f := func(w int) bool {
		for _, rep := range reps {
			ww := w % (rep.MaxWeight() + 1)
			if ww < 0 {
				ww = -ww
			}
			levels := rep.Encode(ww)
			gs := make([]float64, len(levels))
			for i, l := range levels {
				gs[i] = float64(l)
			}
			if math.Abs(rep.Decode(gs)-float64(ww)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
