package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpsa/internal/serve"
)

// fakeReplica is a controllable Replica: outputs carry its source's
// marker (so tests can attribute responses to versions), Infer can be
// made to block on a gate, and QueueDepth can be faked to steer the
// autoscaler.
type fakeReplica struct {
	marker int
	gate   chan struct{} // when non-nil, Infer blocks until closed
	start  chan struct{} // when non-nil, Infer signals entry (buffered)
	depth  atomic.Int64  // fake queue depth
	closed atomic.Bool
	served atomic.Uint64
}

func (r *fakeReplica) Infer(ctx context.Context, input []int) ([]int, error) {
	if r.closed.Load() {
		return nil, serve.ErrClosed
	}
	if r.start != nil {
		r.start <- struct{}{}
	}
	if r.gate != nil {
		select {
		case <-r.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.closed.Load() {
		return nil, serve.ErrClosed
	}
	r.served.Add(1)
	return []int{r.marker, len(input)}, nil
}

func (r *fakeReplica) QueueDepth() int { return int(r.depth.Load()) }

func (r *fakeReplica) Close() error {
	r.closed.Store(true)
	return nil
}

// fakeSource mints fakeReplicas stamped with marker, recording them so
// tests can reach in.
type fakeSource struct {
	marker int
	window int
	gate   chan struct{}
	start  chan struct{}

	mu   sync.Mutex
	made []*fakeReplica
	fail error
}

func (s *fakeSource) Source() Source {
	return Source{
		Window: s.window,
		New: func() (Replica, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.fail != nil {
				return nil, s.fail
			}
			r := &fakeReplica{marker: s.marker, gate: s.gate, start: s.start}
			s.made = append(s.made, r)
			return r, nil
		},
	}
}

func (s *fakeSource) replicas() []*fakeReplica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*fakeReplica(nil), s.made...)
}

// slowTestOptions disables the autoscaler for tests that drive admission
// and swap directly (a long interval means it never ticks).
func slowTestOptions() Options {
	return Options{Chips: 16, ScaleInterval: time.Hour}
}

func TestInferRoutesAndStamps(t *testing.T) {
	f := New(slowTestOptions())
	defer f.Close()
	src := &fakeSource{marker: 7, window: 16}
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := f.Infer(context.Background(), "m", "anyone", []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d, want 1", res.Version)
	}
	if len(res.Output) != 2 || res.Output[0] != 7 || res.Output[1] != 2 {
		t.Fatalf("output = %v, want [7 2]", res.Output)
	}
	st := f.Stats().Models["m"]
	if st.Requests != 1 || st.Replicas != 2 || st.Version != 1 || st.Window != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownModelAndEmptyRegistration(t *testing.T) {
	f := New(slowTestOptions())
	defer f.Close()
	if _, err := f.Infer(context.Background(), "ghost", "t", []float64{1}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
	if err := f.AddModel("", (&fakeSource{window: 4}).Source(), ModelConfig{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := f.AddModel("m", Source{}, ModelConfig{}); err == nil {
		t.Fatal("nil factory accepted")
	}
	src := &fakeSource{window: 4}
	if err := f.AddModel("m", src.Source(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddModel("m", src.Source(), ModelConfig{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestChipAccounting(t *testing.T) {
	f := New(Options{Chips: 4, ScaleInterval: time.Hour})
	defer f.Close()
	src := &fakeSource{window: 4}
	// 3 replicas × 1 chip.
	if err := f.AddModel("a", src.Source(), ModelConfig{Replicas: 3}); err != nil {
		t.Fatal(err)
	}
	// 2 more would exceed the 4-chip pool.
	if err := f.AddModel("b", src.Source(), ModelConfig{Replicas: 2}); !errors.Is(err, ErrNoChips) {
		t.Fatalf("err = %v, want ErrNoChips", err)
	}
	if total, used := f.Chips(); total != 4 || used != 3 {
		t.Fatalf("chips = %d/%d, want 3/4", used, total)
	}
	// A swap needs headroom for both pools: 3 old + 3 new > 4.
	if _, err := f.Swap(context.Background(), "a", src.Source()); !errors.Is(err, ErrNoChips) {
		t.Fatalf("swap err = %v, want ErrNoChips", err)
	}
	// The failed swap must not leak chips.
	if _, used := f.Chips(); used != 3 {
		t.Fatalf("chips used after failed swap = %d, want 3", used)
	}
}

// fillInflight starts n requests that are all inside replica Infer
// (blocked on the source's gate) and returns their error channel.
func fillInflight(t *testing.T, f *Fleet, model, tenant string, src *fakeSource, n int) chan error {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := f.Infer(context.Background(), model, tenant, []float64{1})
			errs <- err
		}()
		select {
		case <-src.start:
		case <-time.After(5 * time.Second):
			t.Fatal("request never reached a replica")
		}
	}
	return errs
}

func TestClassWeightedAdmission(t *testing.T) {
	f := New(Options{
		Chips:         16,
		ScaleInterval: time.Hour,
		Tenants: map[string]Tenant{
			"gold": {Class: ClassGold},
			// batch is the DefaultClass for unknown tenants
		},
	})
	defer f.Close()
	gate := make(chan struct{})
	src := &fakeSource{window: 4, gate: gate, start: make(chan struct{}, 64)}
	// 1 replica × QueueDepth 4: gold admits 4 in flight, batch admits 2.
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 1, QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}

	errs := fillInflight(t, f, "m", "nobody", src, 2)
	if _, err := f.Infer(context.Background(), "m", "nobody", []float64{1}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch over limit: err = %v, want ErrOverloaded", err)
	}
	// Gold still has headroom above batch's 50% share.
	goldErrs := fillInflight(t, f, "m", "gold", src, 2)
	if _, err := f.Infer(context.Background(), "m", "gold", []float64{1}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("gold over limit: err = %v, want ErrOverloaded", err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("blocked batch request failed: %v", err)
		}
		if err := <-goldErrs; err != nil {
			t.Fatalf("blocked gold request failed: %v", err)
		}
	}
	st := f.Stats().Models["m"]
	if st.Overload != 2 {
		t.Fatalf("overload sheds = %d, want 2", st.Overload)
	}
}

func TestTenantQuota(t *testing.T) {
	f := New(Options{
		Chips:         16,
		ScaleInterval: time.Hour,
		Tenants:       map[string]Tenant{"capped": {Class: ClassGold, Quota: 2}},
	})
	defer f.Close()
	gate := make(chan struct{})
	src := &fakeSource{window: 4, gate: gate, start: make(chan struct{}, 64)}
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 1, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	errs := fillInflight(t, f, "m", "capped", src, 2)
	if _, err := f.Infer(context.Background(), "m", "capped", []float64{1}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("err = %v, want ErrTenantQuota", err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("blocked request failed: %v", err)
		}
	}
	if st := f.Stats().Models["m"]; st.Quota != 1 {
		t.Fatalf("quota sheds = %d, want 1", st.Quota)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	f := New(slowTestOptions())
	gate := make(chan struct{})
	src := &fakeSource{window: 4, gate: gate, start: make(chan struct{}, 64)}
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	errs := fillInflight(t, f, "m", "t", src, 2)
	closed := make(chan error, 1)
	go func() { closed <- f.Close() }()
	// Close must wait for the pinned requests, not strand them.
	select {
	case <-closed:
		t.Fatal("Close returned while requests were pinned")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("in-flight request dropped at close: %v", err)
		}
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if _, err := f.Infer(context.Background(), "m", "t", []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if !errors.Is(ErrClosed, serve.ErrClosed) {
		t.Fatal("fleet.ErrClosed must wrap serve.ErrClosed")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for _, r := range src.replicas() {
		if !r.closed.Load() {
			t.Fatal("replica left open after Close")
		}
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"gold": ClassGold, "silver": ClassSilver, "batch": ClassBatch, "": ClassBatch} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
}
