// Package fleet schedules many compiled deployments onto a bounded pool
// of simulated chips and serves them concurrently — the layer above one
// serve.Engine that a production FPSA installation would run: per-model
// replica pools (each replica a programmed execution engine occupying
// chips), admission control with per-tenant QoS classes, queue-driven
// autoscaling, and zero-downtime bitstream hot-swap.
//
// The swap protocol is the heart of the package. Every model points at a
// version — an immutable bitstream generation carrying its replica pool
// and input quantization window — through an atomic pointer. A request
// pins the version it will run on (acquire/release with a pending count),
// so Swap can atomically re-point the route to a freshly built pool and
// then wait for the old version to drain: no in-flight request is ever
// dropped, every response is attributable to exactly one version, and a
// request never sees the new version's window with the old version's
// replicas (torn reads are structurally impossible — window and pool
// live on the one pinned version).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpsa/internal/serve"
	"fpsa/internal/synth"
)

// The package's shed/routing sentinels. The public fpsa package lifts
// them into its taxonomy (fpsa.ErrOverloaded, fpsa.ErrTenantQuota, …);
// ErrClosed wraps serve.ErrClosed so one errors.Is class covers "the
// serving stack is shut down" at every layer.
var (
	// ErrOverloaded sheds a request whose QoS class is over the model's
	// class-weighted admission limit.
	ErrOverloaded = errors.New("fleet: overloaded")
	// ErrTenantQuota sheds a request whose tenant is at its in-flight
	// quota.
	ErrTenantQuota = errors.New("fleet: tenant quota exceeded")
	// ErrUnknownModel rejects a request for a model the fleet does not
	// serve.
	ErrUnknownModel = errors.New("fleet: unknown model")
	// ErrNoChips rejects a model registration or swap that needs more
	// simulated chips than the fleet has free.
	ErrNoChips = errors.New("fleet: insufficient chips")
	// ErrClosed is returned once Close has begun.
	ErrClosed = fmt.Errorf("fleet: closed: %w", serve.ErrClosed)
)

// Replica is one serving replica of a model version: a programmed
// execution engine. *serve.Engine satisfies it.
type Replica interface {
	Infer(ctx context.Context, input []int) ([]int, error)
	QueueDepth() int
	Close() error
}

// Source describes one deployment version: a factory minting replicas
// programmed with its bitstream, and the input quantization window its
// requests are encoded with. The factory is called once per replica —
// at registration, on scale-up, and when a swap builds the replacement
// pool.
type Source struct {
	New    func() (Replica, error)
	Window int
}

// Class is a tenant's QoS class. The zero value is ClassBatch, so an
// unconfigured tenant gets the most conservative admission share.
type Class int

// QoS classes, in ascending admission share.
const (
	// ClassBatch is admitted up to half the model's capacity.
	ClassBatch Class = iota
	// ClassSilver is admitted up to three quarters of capacity.
	ClassSilver
	// ClassGold is admitted up to full capacity.
	ClassGold
)

// fraction is the share of a model's in-flight capacity the class may
// occupy before its requests shed with ErrOverloaded. Gold riding to the
// full limit while batch sheds at half is what keeps interactive tenants
// responsive when batch traffic spikes.
func (c Class) fraction() float64 {
	switch c {
	case ClassGold:
		return 1.0
	case ClassSilver:
		return 0.75
	}
	return 0.5
}

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassGold:
		return "gold"
	case ClassSilver:
		return "silver"
	}
	return "batch"
}

// ParseClass parses a class name ("gold", "silver", "batch").
func ParseClass(s string) (Class, error) {
	switch s {
	case "gold":
		return ClassGold, nil
	case "silver":
		return ClassSilver, nil
	case "batch", "":
		return ClassBatch, nil
	}
	return 0, fmt.Errorf("fleet: unknown QoS class %q (want gold, silver or batch)", s)
}

// Tenant configures one tenant's admission.
type Tenant struct {
	// Class is the tenant's QoS class (default ClassBatch).
	Class Class
	// Quota bounds the tenant's fleet-wide in-flight requests; 0 means
	// unlimited.
	Quota int
}

// Options configures a Fleet.
type Options struct {
	// Chips is the fleet's simulated chip pool; replicas allocate from it
	// and registration/scale-up fail when it is exhausted. 0 means 64.
	Chips int
	// Tenants maps tenant names to their admission config. Unknown
	// tenants are admitted at DefaultClass with no quota.
	Tenants map[string]Tenant
	// DefaultClass is the class of tenants absent from Tenants (zero
	// value: ClassBatch).
	DefaultClass Class
	// ScaleInterval is the autoscaler tick (0 = 50ms). Scale decisions
	// are made per tick from sustained observations, so the thresholds
	// below are counted in ticks.
	ScaleInterval time.Duration
	// ScaleUpBacklog is the per-replica queue depth that counts as
	// backlog (0 = 4); sustained for ScaleUpTicks consecutive ticks
	// (0 = 2), the model gains a replica (chips permitting, up to its
	// MaxReplicas).
	ScaleUpBacklog int
	ScaleUpTicks   int
	// IdleTicks is how many consecutive ticks with an empty queue and no
	// in-flight requests drop one replica (0 = 40), down to MinReplicas.
	IdleTicks int
}

func (o Options) withDefaults() Options {
	if o.Chips <= 0 {
		o.Chips = 64
	}
	if o.ScaleInterval <= 0 {
		o.ScaleInterval = 50 * time.Millisecond
	}
	if o.ScaleUpBacklog <= 0 {
		o.ScaleUpBacklog = 4
	}
	if o.ScaleUpTicks <= 0 {
		o.ScaleUpTicks = 2
	}
	if o.IdleTicks <= 0 {
		o.IdleTicks = 40
	}
	return o
}

// ModelConfig shapes one model's replica pool.
type ModelConfig struct {
	// Replicas is the initial pool size (0 = 1); the autoscaler moves it
	// within [MinReplicas, MaxReplicas] (0 = 1 and max(4, Replicas)).
	Replicas    int
	MinReplicas int
	MaxReplicas int
	// ChipsPerReplica is how many fleet chips one replica occupies
	// (0 = 1; a sharded deployment's replica occupies its compiled chip
	// count).
	ChipsPerReplica int
	// QueueDepth is the per-replica admission depth: a model's in-flight
	// capacity is replicas × QueueDepth, scaled by each class's share
	// (0 = 64). Keep it equal to the replica engines' queue depth so
	// admission mirrors what the engines can actually hold.
	QueueDepth int
}

func (c ModelConfig) withDefaults() ModelConfig {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = c.Replicas
		if c.MaxReplicas < 4 {
			c.MaxReplicas = 4
		}
	}
	if c.Replicas < c.MinReplicas {
		c.Replicas = c.MinReplicas
	}
	if c.MaxReplicas < c.Replicas {
		c.MaxReplicas = c.Replicas
	}
	if c.ChipsPerReplica <= 0 {
		c.ChipsPerReplica = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// version is one immutable bitstream generation of a model: a replica
// pool plus the quantization window requests to it are encoded with.
// Requests pin it (acquire/release) so a swap can re-point the route and
// then wait for the pending count to drain before tearing replicas down.
type version struct {
	id     int
	window int

	mu       sync.Mutex
	pending  int
	retired  bool
	drained  chan struct{}
	replicas []Replica
}

func newVersion(id, window int) *version {
	return &version{id: id, window: window, drained: make(chan struct{})}
}

// acquire pins the version and picks its least-loaded replica. It fails
// once the version is retired (a swap has re-pointed the route) or its
// pool is empty; the caller retries on the model's current version.
func (v *version) acquire() (Replica, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.retired || len(v.replicas) == 0 {
		return nil, false
	}
	best := v.replicas[0]
	depth := best.QueueDepth()
	for _, r := range v.replicas[1:] {
		if d := r.QueueDepth(); d < depth {
			best, depth = r, d
		}
	}
	v.pending++
	return best, true
}

// release unpins the version; the last release of a retired version
// signals the drain.
func (v *version) release() {
	v.mu.Lock()
	v.pending--
	if v.retired && v.pending == 0 {
		close(v.drained)
	}
	v.mu.Unlock()
}

// retire marks the version dead to new acquires and returns the channel
// that closes when the last pinned request releases. Idempotent.
func (v *version) retire() <-chan struct{} {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.retired {
		v.retired = true
		if v.pending == 0 {
			close(v.drained)
		}
	}
	return v.drained
}

// takeReplicas empties the pool (after drain) so the caller can close
// the replicas outside the lock.
func (v *version) takeReplicas() []Replica {
	v.mu.Lock()
	defer v.mu.Unlock()
	rs := v.replicas
	v.replicas = nil
	return rs
}

// addReplica grows the pool; it refuses on a retired version (the caller
// closes the orphan replica itself).
func (v *version) addReplica(r Replica) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.retired {
		return false
	}
	v.replicas = append(v.replicas, r)
	return true
}

// removeReplica pops one replica when the pool is above min. The caller
// closes it: requests that pinned it before removal drain through the
// engine's own close path, and any that lose the race retry on a live
// replica (see Fleet.Infer).
func (v *version) removeReplica(min int) Replica {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.retired || len(v.replicas) <= min {
		return nil
	}
	r := v.replicas[len(v.replicas)-1]
	v.replicas = v.replicas[:len(v.replicas)-1]
	return r
}

// count reports the pool size and summed replica queue depth.
func (v *version) count() (replicas, depth int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range v.replicas {
		depth += r.QueueDepth()
	}
	return len(v.replicas), depth
}

// model is one served model: its current version (atomic route pointer),
// the source that mints replicas for scale-up, and its serving counters.
type model struct {
	name  string
	cfg   ModelConfig
	start time.Time

	cur atomic.Pointer[version]

	// swapMu serializes swaps, scaling and close against each other;
	// requests never take it.
	swapMu sync.Mutex
	src    Source // current version's source, for scale-up (under swapMu)
	closed atomic.Bool

	inflight   atomic.Int64
	requests   atomic.Uint64
	errors     atomic.Uint64
	overload   atomic.Uint64
	quotaShed  atomic.Uint64
	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64
	lat        serve.LatencyRing

	// autoscaler-local tick counters (only the scale goroutine touches
	// them).
	backlogTicks int
	idleTicks    int
}

// tenantState tracks one configured tenant's class and in-flight count.
type tenantState struct {
	class    Class
	quota    int64
	inflight atomic.Int64
}

// Result is one completed inference, stamped with the version that
// served it.
type Result struct {
	Output  []int
	Version int
}

// Fleet serves many models on a bounded chip pool. Construct with New,
// register models with AddModel, serve with Infer, replace bitstreams
// with Swap, and Close when done. All methods are safe for concurrent
// use.
type Fleet struct {
	opts    Options
	tenants map[string]*tenantState // immutable after New

	mu        sync.RWMutex
	closed    bool
	models    map[string]*model
	chipsUsed int
	swaps     []SwapEvent

	stopScale chan struct{}
	scaleWG   sync.WaitGroup
}

// New builds an empty fleet and starts its autoscaler.
func New(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		opts:      opts,
		tenants:   make(map[string]*tenantState, len(opts.Tenants)),
		models:    make(map[string]*model),
		stopScale: make(chan struct{}),
	}
	for name, t := range opts.Tenants {
		f.tenants[name] = &tenantState{class: t.Class, quota: int64(t.Quota)}
	}
	f.scaleWG.Add(1)
	go f.autoscale()
	return f
}

// Chips reports the pool size and how many chips replicas currently
// occupy.
func (f *Fleet) Chips() (total, used int) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.opts.Chips, f.chipsUsed
}

// AddModel registers a model under name and builds its initial replica
// pool from src. The pool's chips are reserved from the fleet;
// registration fails with ErrNoChips when the pool cannot fit.
func (f *Fleet) AddModel(name string, src Source, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("fleet: empty model name")
	}
	if src.New == nil || src.Window <= 0 {
		return fmt.Errorf("fleet: model %q: source needs a replica factory and a positive window", name)
	}
	cfg = cfg.withDefaults()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, dup := f.models[name]; dup {
		return fmt.Errorf("fleet: model %q already registered", name)
	}
	need := cfg.Replicas * cfg.ChipsPerReplica
	if f.chipsUsed+need > f.opts.Chips {
		return fmt.Errorf("%w: model %q needs %d chips, %d of %d free",
			ErrNoChips, name, need, f.opts.Chips-f.chipsUsed, f.opts.Chips)
	}
	v := newVersion(1, src.Window)
	for i := 0; i < cfg.Replicas; i++ {
		r, err := src.New()
		if err != nil {
			closeAll(v.takeReplicas())
			return fmt.Errorf("fleet: model %q: building replica %d: %w", name, i, err)
		}
		v.replicas = append(v.replicas, r)
	}
	f.chipsUsed += need
	m := &model{name: name, cfg: cfg, src: src, start: time.Now()}
	m.cur.Store(v)
	f.models[name] = m
	return nil
}

// lookup resolves a model name under the read lock.
func (f *Fleet) lookup(name string) (*model, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	m, ok := f.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, nil
}

// admitLimit is the in-flight ceiling a class may occupy on a model:
// its share of replicas × per-replica queue depth, never below 1 so a
// one-replica model still serves every class.
func admitLimit(c Class, replicas, queueDepth int) int64 {
	l := int64(c.fraction() * float64(replicas*queueDepth))
	if l < 1 {
		l = 1
	}
	return l
}

// Infer serves one request for (model, tenant): admission (tenant quota,
// then class-weighted model capacity), then version pinning and replica
// dispatch. The response carries the id of the exact version that ran
// the request. Features are quantized against the pinned version's
// window, so a mid-flight swap can never mix one version's encoding
// with another's replicas.
func (f *Fleet) Infer(ctx context.Context, name, tenant string, features []float64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := f.lookup(name)
	if err != nil {
		return Result{}, err
	}
	cls := f.opts.DefaultClass
	if ts := f.tenants[tenant]; ts != nil {
		cls = ts.class
		if ts.quota > 0 {
			if ts.inflight.Add(1) > ts.quota {
				ts.inflight.Add(-1)
				m.quotaShed.Add(1)
				return Result{}, fmt.Errorf("%w: tenant %q at in-flight quota %d (model %q)",
					ErrTenantQuota, tenant, ts.quota, name)
			}
			defer ts.inflight.Add(-1)
		}
	}
	replicas, _ := m.cur.Load().count()
	limit := admitLimit(cls, replicas, m.cfg.QueueDepth)
	if m.inflight.Add(1) > limit {
		m.inflight.Add(-1)
		m.overload.Add(1)
		return Result{}, fmt.Errorf("%w: model %q at %s-class admission limit %d",
			ErrOverloaded, name, cls, limit)
	}
	defer m.inflight.Add(-1)

	start := time.Now()
	for {
		v := m.cur.Load()
		rep, ok := v.acquire()
		if !ok {
			// The route re-pointed under us (swap) — retry on the current
			// version — unless the model or fleet is shutting down.
			if m.closed.Load() {
				return Result{}, ErrClosed
			}
			runtime.Gosched()
			continue
		}
		out, err := rep.Infer(ctx, synth.QuantizeInput(features, v.window))
		v.release()
		if err != nil && errors.Is(err, serve.ErrClosed) {
			if m.closed.Load() {
				return Result{}, ErrClosed
			}
			// The replica was scaled away between acquire and dispatch;
			// the request is intact — requeue it on a live replica.
			continue
		}
		m.requests.Add(1)
		m.lat.Record(time.Since(start))
		if err != nil {
			m.errors.Add(1)
			return Result{}, err
		}
		return Result{Output: out, Version: v.id}, nil
	}
}

// Swap replaces name's bitstream with src, zero-downtime: it builds the
// replacement pool (same replica count as the current version), atomically
// re-points the route, waits for every request pinned to the old version
// to complete, then tears the old pool down and returns its chips. While
// the swap is in flight both pools hold chips, so a fleet needs one
// model's worth of headroom to swap (ErrNoChips otherwise). In-flight
// requests are never dropped: each runs to completion on the version it
// pinned, stamped with that version's id.
func (f *Fleet) Swap(ctx context.Context, name string, src Source) (SwapEvent, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if src.New == nil || src.Window <= 0 {
		return SwapEvent{}, fmt.Errorf("fleet: swap %q: source needs a replica factory and a positive window", name)
	}
	m, err := f.lookup(name)
	if err != nil {
		return SwapEvent{}, err
	}
	m.swapMu.Lock()
	defer m.swapMu.Unlock()
	if m.closed.Load() {
		return SwapEvent{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return SwapEvent{}, err
	}
	start := time.Now()
	old := m.cur.Load()
	count, _ := old.count()
	need := count * m.cfg.ChipsPerReplica
	if err := f.reserveChips(need); err != nil {
		return SwapEvent{}, fmt.Errorf("swapping %q: %w", name, err)
	}
	next := newVersion(old.id+1, src.Window)
	for i := 0; i < count; i++ {
		r, err := src.New()
		if err != nil {
			closeAll(next.takeReplicas())
			f.releaseChips(need)
			return SwapEvent{}, fmt.Errorf("fleet: swap %q: building replica %d: %w", name, i, err)
		}
		next.replicas = append(next.replicas, r)
	}
	m.src = src
	m.cur.Store(next)
	// No new request can pin the old version now; wait out the ones that
	// already did. The wait is bounded — every pinned request is a finite
	// simulation — so a cancelled ctx does not abandon the teardown.
	<-old.retire()
	olds := old.takeReplicas()
	closeAll(olds)
	f.releaseChips(len(olds) * m.cfg.ChipsPerReplica)
	ev := SwapEvent{
		Model:    name,
		From:     old.id,
		To:       next.id,
		Replicas: count,
		At:       start,
		Duration: time.Since(start),
	}
	f.recordSwap(ev)
	return ev, nil
}

// reserveChips claims n chips from the pool.
func (f *Fleet) reserveChips(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.chipsUsed+n > f.opts.Chips {
		return fmt.Errorf("%w: need %d, %d of %d free", ErrNoChips, n, f.opts.Chips-f.chipsUsed, f.opts.Chips)
	}
	f.chipsUsed += n
	return nil
}

// tryReserveChips is reserveChips for the autoscaler: no error detail,
// just whether the chips were claimed.
func (f *Fleet) tryReserveChips(n int) bool {
	return f.reserveChips(n) == nil
}

func (f *Fleet) releaseChips(n int) {
	f.mu.Lock()
	f.chipsUsed -= n
	f.mu.Unlock()
}

func (f *Fleet) recordSwap(ev SwapEvent) {
	f.mu.Lock()
	f.swaps = append(f.swaps, ev)
	f.mu.Unlock()
}

// Close stops the autoscaler, retires every model's current version,
// waits for pinned requests to drain and closes every replica.
// Idempotent; Infer afterwards returns ErrClosed.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	models := make([]*model, 0, len(f.models))
	for _, m := range f.models {
		models = append(models, m)
	}
	f.mu.Unlock()
	close(f.stopScale)
	f.scaleWG.Wait()
	for _, m := range models {
		m.swapMu.Lock()
		m.closed.Store(true)
		v := m.cur.Load()
		<-v.retire()
		closeAll(v.takeReplicas())
		m.swapMu.Unlock()
	}
	f.mu.Lock()
	f.chipsUsed = 0
	f.mu.Unlock()
	return nil
}

// closeAll closes replicas, dropping errors: the route has already moved
// on, and a simulated chip's teardown has nothing actionable to report.
func closeAll(rs []Replica) {
	for _, r := range rs {
		_ = r.Close()
	}
}
