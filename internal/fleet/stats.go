package fleet

import "time"

// ModelStats is one model's serving snapshot.
type ModelStats struct {
	// Requests counts completed inferences (successes and errors, not
	// sheds); Errors the subset that failed.
	Requests uint64
	Errors   uint64
	// Overload and Quota count sheds by cause: class-weighted model
	// capacity versus per-tenant in-flight quota.
	Overload uint64
	Quota    uint64
	// Replicas and QueueDepth describe the current pool: its size and
	// the summed depth of its replicas' request queues; InFlight is the
	// model's admitted-but-uncompleted count.
	Replicas   int
	QueueDepth int
	InFlight   int
	// Version is the current bitstream generation (1 at registration,
	// +1 per swap); Window its input quantization window.
	Version int
	Window  int
	// ScaleUps and ScaleDowns count autoscaler pool moves.
	ScaleUps   uint64
	ScaleDowns uint64
	// QPS is completed requests per second since the model was
	// registered; the latency percentiles are over a sliding window of
	// recent requests (the same serve.LatencyRing the engine stats use).
	QPS           float64
	P50LatencyUS  float64
	P99LatencyUS  float64
	P999LatencyUS float64
}

// SwapEvent records one completed hot-swap.
type SwapEvent struct {
	Model    string
	From, To int // version ids
	Replicas int
	At       time.Time
	Duration time.Duration
}

// Stats is a point-in-time snapshot of the whole fleet.
type Stats struct {
	Chips     int
	ChipsUsed int
	Models    map[string]ModelStats
	Swaps     []SwapEvent
}

// Stats snapshots every model's counters and the swap history.
func (f *Fleet) Stats() Stats {
	f.mu.RLock()
	s := Stats{
		Chips:     f.opts.Chips,
		ChipsUsed: f.chipsUsed,
		Models:    make(map[string]ModelStats, len(f.models)),
		Swaps:     append([]SwapEvent(nil), f.swaps...),
	}
	models := make(map[string]*model, len(f.models))
	for name, m := range f.models {
		models[name] = m
	}
	f.mu.RUnlock()
	for name, m := range models {
		s.Models[name] = m.snapshot()
	}
	return s
}

func (m *model) snapshot() ModelStats {
	v := m.cur.Load()
	replicas, depth := v.count()
	st := ModelStats{
		Requests:   m.requests.Load(),
		Errors:     m.errors.Load(),
		Overload:   m.overload.Load(),
		Quota:      m.quotaShed.Load(),
		Replicas:   replicas,
		QueueDepth: depth,
		InFlight:   int(m.inflight.Load()),
		Version:    v.id,
		Window:     v.window,
		ScaleUps:   m.scaleUps.Load(),
		ScaleDowns: m.scaleDowns.Load(),
	}
	if up := time.Since(m.start).Seconds(); up > 0 {
		st.QPS = float64(st.Requests) / up
	}
	st.P50LatencyUS, st.P99LatencyUS, st.P999LatencyUS = m.lat.Percentiles()
	return st
}
