package fleet

import (
	"context"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestScaleUpOnBacklogThenDownOnIdle drives the autoscaler with faked
// replica queue depths: sustained backlog grows the pool to MaxReplicas,
// and a subsequently idle pool drains back to MinReplicas.
func TestScaleUpOnBacklogThenDownOnIdle(t *testing.T) {
	f := New(Options{
		Chips:          16,
		ScaleInterval:  2 * time.Millisecond,
		ScaleUpBacklog: 4,
		ScaleUpTicks:   2,
		IdleTicks:      3,
	})
	defer f.Close()
	src := &fakeSource{marker: 1, window: 4}
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 1, MinReplicas: 1, MaxReplicas: 3, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	// Fake sustained backlog on every replica (new ones included, so the
	// scaler keeps seeing pressure until it hits MaxReplicas).
	setDepths := func(d int64) {
		for _, r := range src.replicas() {
			r.depth.Store(d)
		}
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				setDepths(10)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	waitFor(t, "scale-up to MaxReplicas", func() bool {
		return f.Stats().Models["m"].Replicas == 3
	})
	close(stop)
	if _, used := f.Chips(); used != 3 {
		t.Fatalf("chips used at peak = %d, want 3", used)
	}
	// Go idle: zero depth, nothing in flight.
	setDepths(0)
	waitFor(t, "scale-down to MinReplicas", func() bool {
		return f.Stats().Models["m"].Replicas == 1
	})
	if _, used := f.Chips(); used != 1 {
		t.Fatalf("chips used after idle = %d, want 1", used)
	}
	st := f.Stats().Models["m"]
	if st.ScaleUps < 2 || st.ScaleDowns < 2 {
		t.Fatalf("scale counters = up %d / down %d, want ≥ 2 each", st.ScaleUps, st.ScaleDowns)
	}
	// Requests still complete on the shrunken pool (removed replicas were
	// closed, not leaked into the route).
	res, err := f.Infer(context.Background(), "m", "t", []float64{1})
	if err != nil || res.Version != 1 {
		t.Fatalf("post-scale request = %+v, %v", res, err)
	}
}

// TestScaleUpStopsAtChipPool pins that the autoscaler respects the chip
// pool: with only one free chip, a backlogged model gains exactly one
// replica no matter how long the pressure lasts.
func TestScaleUpStopsAtChipPool(t *testing.T) {
	f := New(Options{
		Chips:          2,
		ScaleInterval:  2 * time.Millisecond,
		ScaleUpBacklog: 1,
		ScaleUpTicks:   1,
		IdleTicks:      1 << 30, // never scale down
	})
	defer f.Close()
	src := &fakeSource{marker: 1, window: 4}
	if err := f.AddModel("m", src.Source(), ModelConfig{Replicas: 1, MaxReplicas: 8, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, r := range src.replicas() {
					r.depth.Store(100)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer close(stop)
	waitFor(t, "scale-up to the chip pool", func() bool {
		return f.Stats().Models["m"].Replicas == 2
	})
	// Give it time to (incorrectly) try to exceed the pool.
	time.Sleep(30 * time.Millisecond)
	if got := f.Stats().Models["m"].Replicas; got != 2 {
		t.Fatalf("replicas = %d, want 2 (chip pool is 2)", got)
	}
	if _, used := f.Chips(); used != 2 {
		t.Fatalf("chips used = %d, want 2", used)
	}
}
