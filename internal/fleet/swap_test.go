package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSwapZeroLoss is the hot-swap property test at the fleet layer:
// under sustained concurrent load, a sequence of swaps loses no request
// — every offered request either completes or sheds with a typed error
// (here admission is sized so nothing sheds) — and every response's
// output marker matches the version that stamped it, so no request ever
// crosses version boundaries mid-flight.
func TestSwapZeroLoss(t *testing.T) {
	f := New(Options{Chips: 64, ScaleInterval: time.Hour})
	defer f.Close()

	// marker[v] is the output stamp of version v's replicas.
	marker := func(v int) int { return 100 + v }
	srcFor := func(v int) *fakeSource { return &fakeSource{marker: marker(v), window: 4} }
	if err := f.AddModel("m", srcFor(1).Source(), ModelConfig{Replicas: 3, QueueDepth: 100000}); err != nil {
		t.Fatal(err)
	}

	const (
		loaders  = 8
		perLoad  = 400
		swaps    = 5
		deadline = 30 * time.Second
	)
	var (
		completed atomic.Uint64
		mismatch  atomic.Uint64
		failed    atomic.Uint64
	)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perLoad; i++ {
				res, err := f.Infer(ctx, "m", "t", []float64{0.5})
				if err != nil {
					failed.Add(1)
					continue
				}
				completed.Add(1)
				if len(res.Output) == 0 || res.Output[0] != marker(res.Version) {
					mismatch.Add(1)
				}
			}
		}()
	}
	for v := 2; v <= swaps+1; v++ {
		time.Sleep(2 * time.Millisecond)
		ev, err := f.Swap(ctx, "m", srcFor(v).Source())
		if err != nil {
			t.Fatalf("swap to v%d: %v", v, err)
		}
		if ev.From != v-1 || ev.To != v || ev.Replicas != 3 {
			t.Fatalf("swap event = %+v", ev)
		}
	}
	wg.Wait()

	if got := completed.Load(); got != loaders*perLoad {
		t.Fatalf("completed %d of %d requests (%d failed) — swap lost requests",
			got, loaders*perLoad, failed.Load())
	}
	if mismatch.Load() != 0 {
		t.Fatalf("%d responses whose output marker disagreed with their version stamp", mismatch.Load())
	}
	st := f.Stats()
	ms := st.Models["m"]
	if ms.Requests != loaders*perLoad || ms.Errors != 0 || ms.Overload != 0 || ms.Quota != 0 {
		t.Fatalf("model stats = %+v", ms)
	}
	if ms.Version != swaps+1 {
		t.Fatalf("final version = %d, want %d", ms.Version, swaps+1)
	}
	if len(st.Swaps) != swaps {
		t.Fatalf("swap history has %d events, want %d", len(st.Swaps), swaps)
	}
	// Chips must balance: the 3 swap-transient chips went back.
	if _, used := f.Chips(); used != 3 {
		t.Fatalf("chips used after swaps = %d, want 3", used)
	}
}

// TestSwapDrainsOldVersion pins a request on the old version, swaps, and
// checks the swap waits for the pinned request and the request still
// completes on — and is stamped with — the version it pinned.
func TestSwapDrainsOldVersion(t *testing.T) {
	f := New(slowTestOptions())
	defer f.Close()
	gate := make(chan struct{})
	old := &fakeSource{marker: 101, window: 4, gate: gate, start: make(chan struct{}, 1)}
	if err := f.AddModel("m", old.Source(), ModelConfig{Replicas: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	type out struct {
		res Result
		err error
	}
	pinned := make(chan out, 1)
	go func() {
		res, err := f.Infer(context.Background(), "m", "t", []float64{1})
		pinned <- out{res, err}
	}()
	<-old.start // the request is inside the v1 replica

	swapped := make(chan error, 1)
	go func() {
		_, err := f.Swap(context.Background(), "m", (&fakeSource{marker: 102, window: 4}).Source())
		swapped <- err
	}()
	select {
	case <-swapped:
		t.Fatal("swap returned while a request was pinned to the old version")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-swapped; err != nil {
		t.Fatal(err)
	}
	got := <-pinned
	if got.err != nil {
		t.Fatalf("pinned request dropped by swap: %v", got.err)
	}
	if got.res.Version != 1 || got.res.Output[0] != 101 {
		t.Fatalf("pinned request got version %d output %v, want the v1 it pinned", got.res.Version, got.res.Output)
	}
	// And new traffic lands on v2.
	res, err := f.Infer(context.Background(), "m", "t", []float64{1})
	if err != nil || res.Version != 2 || res.Output[0] != 102 {
		t.Fatalf("post-swap request = %+v, %v; want v2/102", res, err)
	}
	// The old replica was torn down after the drain.
	if rs := old.replicas(); len(rs) != 1 || !rs[0].closed.Load() {
		t.Fatal("old replica not closed after swap drain")
	}
}

// TestSwapWindowFollowsVersion pins that the quantization window is read
// from the pinned version, not from model-level state: after a swap to a
// source with a different window, outputs reflect the new window.
func TestSwapWindowFollowsVersion(t *testing.T) {
	f := New(slowTestOptions())
	defer f.Close()
	if err := f.AddModel("m", (&fakeSource{marker: 1, window: 4}).Source(), ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	// fakeReplica echoes len(input); QuantizeInput preserves feature count,
	// so this is a proxy for "encoded with the pinned version's window".
	res, err := f.Infer(context.Background(), "m", "t", []float64{0.1, 0.2, 0.3})
	if err != nil || res.Output[1] != 3 {
		t.Fatalf("pre-swap = %+v, %v", res, err)
	}
	if _, err := f.Swap(context.Background(), "m", (&fakeSource{marker: 2, window: 9}).Source()); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats().Models["m"]; st.Window != 9 {
		t.Fatalf("post-swap window = %d, want 9", st.Window)
	}
}

// TestSwapReplicaFactoryFailure pins that a failed replica build aborts
// the swap, returns its chips, and leaves the old version serving.
func TestSwapReplicaFactoryFailure(t *testing.T) {
	f := New(slowTestOptions())
	defer f.Close()
	if err := f.AddModel("m", (&fakeSource{marker: 1, window: 4}).Source(), ModelConfig{Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	bad := &fakeSource{marker: 2, window: 4}
	bad.fail = context.DeadlineExceeded // any error will do
	if _, err := f.Swap(context.Background(), "m", bad.Source()); err == nil {
		t.Fatal("swap with failing factory succeeded")
	}
	if _, used := f.Chips(); used != 2 {
		t.Fatalf("chips used after aborted swap = %d, want 2", used)
	}
	res, err := f.Infer(context.Background(), "m", "t", []float64{1})
	if err != nil || res.Version != 1 {
		t.Fatalf("old version not serving after aborted swap: %+v, %v", res, err)
	}
}
