package fleet

import (
	"sort"
	"time"
)

// autoscale is the fleet's scaling loop: every ScaleInterval it walks
// the models (in name order, so chip contention resolves
// deterministically) and moves each pool toward its observed load —
// sustained backlog grows it, sustained idleness shrinks it.
func (f *Fleet) autoscale() {
	defer f.scaleWG.Done()
	t := time.NewTicker(f.opts.ScaleInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stopScale:
			return
		case <-t.C:
			f.scaleTick()
		}
	}
}

func (f *Fleet) scaleTick() {
	f.mu.RLock()
	models := make([]*model, 0, len(f.models))
	for _, m := range f.models {
		models = append(models, m)
	}
	f.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	for _, m := range models {
		f.scaleModel(m)
	}
}

// scaleModel applies one tick's decision to one model. It yields to an
// in-flight swap (TryLock) rather than queueing behind it: the swap will
// rebuild the pool anyway, so this tick's observation is stale.
func (f *Fleet) scaleModel(m *model) {
	if !m.swapMu.TryLock() {
		return
	}
	defer m.swapMu.Unlock()
	if m.closed.Load() {
		return
	}
	v := m.cur.Load()
	n, depth := v.count()
	switch {
	case n > 0 && depth >= n*f.opts.ScaleUpBacklog:
		m.idleTicks = 0
		m.backlogTicks++
		if m.backlogTicks < f.opts.ScaleUpTicks || n >= m.cfg.MaxReplicas {
			return
		}
		m.backlogTicks = 0
		if !f.tryReserveChips(m.cfg.ChipsPerReplica) {
			return // pool exhausted; retry when chips free up
		}
		r, err := m.src.New()
		if err != nil {
			f.releaseChips(m.cfg.ChipsPerReplica)
			return
		}
		if !v.addReplica(r) {
			// Retired between count and add (close racing in); drop the
			// orphan.
			_ = r.Close()
			f.releaseChips(m.cfg.ChipsPerReplica)
			return
		}
		m.scaleUps.Add(1)
	case depth == 0 && m.inflight.Load() == 0:
		m.backlogTicks = 0
		m.idleTicks++
		if m.idleTicks < f.opts.IdleTicks || n <= m.cfg.MinReplicas {
			return
		}
		// One replica per idle period, so a shrinking pool re-earns each
		// step down.
		m.idleTicks = 0
		if r := v.removeReplica(m.cfg.MinReplicas); r != nil {
			// Close drains the replica's queued requests; a request that
			// pinned it but loses the race to submit retries on a live
			// replica (see Infer).
			_ = r.Close()
			f.releaseChips(m.cfg.ChipsPerReplica)
			m.scaleDowns.Add(1)
		}
	default:
		m.backlogTicks, m.idleTicks = 0, 0
	}
}
