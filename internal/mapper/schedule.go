package mapper

import (
	"fmt"
	"sort"

	"fpsa/internal/coreop"
)

// ExpandedOp is one core-op instance: group × position index.
type ExpandedOp struct {
	ID    int
	Group int
	Index int
	Deps  []int // producer op IDs
}

// OpGraph is a core-op graph unrolled to individual core-ops, the structure
// Algorithm 1 schedules. Dependencies between groups with different reuse
// degrees are rate-matched: position i of a group consumes position
// floor(i·reuseDep/reuse) of each dependency.
type OpGraph struct {
	Groups *coreop.Graph
	Ops    []ExpandedOp
}

// Expand unrolls g; it refuses graphs above maxOps core-ops (use the
// group-level pipeline model for the large zoo models).
func Expand(g *coreop.Graph, maxOps int) (*OpGraph, error) {
	total := g.TotalCoreOps()
	if total > int64(maxOps) {
		return nil, fmt.Errorf("mapper: %d core-ops exceed expansion limit %d", total, maxOps)
	}
	og := &OpGraph{Groups: g}
	base := make([]int, len(g.Groups))
	id := 0
	for gi, grp := range g.Groups {
		base[gi] = id
		id += grp.Reuse
	}
	og.Ops = make([]ExpandedOp, 0, id)
	for gi, grp := range g.Groups {
		for i := 0; i < grp.Reuse; i++ {
			op := ExpandedOp{ID: base[gi] + i, Group: gi, Index: i}
			for _, d := range grp.Deps {
				dr := g.Groups[d].Reuse
				j := i * dr / grp.Reuse
				op.Deps = append(op.Deps, base[d]+j)
			}
			og.Ops = append(og.Ops, op)
		}
	}
	return og, nil
}

// Edge identifies a producer→consumer op pair.
type Edge struct{ From, To int }

// Schedule is Algorithm 1's output: start/end cycles, PE assignments, and
// the edges that required SMB buffers.
type Schedule struct {
	Start    []int
	End      []int
	PE       []int
	Buffered map[Edge]bool
	Makespan int
}

// ScheduleOps runs the greedy list scheduler of Algorithm 1 over the
// expanded graph under allocation a with sampling window gamma. It
// maintains the paper's constraints:
//
//	RC  — ops on one PE never overlap;
//	NBD — a bufferless edge starts the consumer exactly one cycle after
//	      the producer so the spike train is consumed as it is produced;
//	BD  — a buffered edge starts the consumer strictly after the producer
//	      ends;
//	BC  — readers of one buffer port are serialized ≥ Γ apart;
//	SW  — every core-op runs for the full sampling window.
//
// Unlike the paper's pseudo-code, already-placed ops are never revisited;
// instead the current op is delayed (and its incoming edges buffered) until
// all constraints hold, which converges because start times only increase.
// This monotonic variant can insert more buffers than the paper's ripple
// variant (which re-times earlier nodes to preserve streaming), but every
// schedule it emits satisfies the same five constraints — the independent
// Validate method is the contract.
func ScheduleOps(og *OpGraph, a Allocation, gamma int) (*Schedule, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("mapper: sampling window %d", gamma)
	}
	n := len(og.Ops)
	s := &Schedule{
		Start:    make([]int, n),
		End:      make([]int, n),
		PE:       make([]int, n),
		Buffered: make(map[Edge]bool),
	}
	peBase := make([]int, len(og.Groups.Groups))
	next := 0
	for gi := range og.Groups.Groups {
		peBase[gi] = next
		next += a.Dup[gi]
	}
	nextFree := make([]int, next)          // PE → earliest start
	lastReaderEnd := make(map[int]int, 64) // producer op → latest buffered-reader end
	for _, op := range og.Ops {
		pe := peBase[op.Group] + op.Index%a.Dup[op.Group]
		sv := 0
		for _, u := range op.Deps {
			if t := s.Start[u] + 1; t > sv {
				sv = t
			}
		}
		for {
			moved := false
			for _, u := range op.Deps {
				e := Edge{From: u, To: op.ID}
				if !s.Buffered[e] && sv <= s.Start[u]+1 {
					continue // NBD holds
				}
				if !s.Buffered[e] {
					s.Buffered[e] = true
				}
				if sv <= s.End[u] { // BD
					sv = s.End[u] + 1
					moved = true
				}
				if last, ok := lastReaderEnd[u]; ok && sv <= last { // BC
					sv = last + 1
					moved = true
				}
			}
			if sv < nextFree[pe] { // RC
				sv = nextFree[pe]
				moved = true
			}
			if !moved {
				break
			}
		}
		s.Start[op.ID] = sv
		s.End[op.ID] = sv + gamma
		s.PE[op.ID] = pe
		nextFree[pe] = s.End[op.ID] + 1
		for _, u := range op.Deps {
			if s.Buffered[Edge{From: u, To: op.ID}] {
				if e := s.End[op.ID]; e > lastReaderEnd[u] {
					lastReaderEnd[u] = e
				}
			}
		}
		if s.End[op.ID] > s.Makespan {
			s.Makespan = s.End[op.ID]
		}
	}
	return s, nil
}

// BufferedGroupEdges lifts op-level buffer decisions to group pairs.
func (s *Schedule) BufferedGroupEdges(og *OpGraph) map[Edge]bool {
	out := make(map[Edge]bool)
	for e := range s.Buffered { //fpsa:nondet builds a set; order-free
		out[Edge{From: og.Ops[e.From].Group, To: og.Ops[e.To].Group}] = true
	}
	return out
}

// Validate independently re-checks every constraint; it shares no logic
// with the scheduler.
func (s *Schedule) Validate(og *OpGraph, a Allocation, gamma int) error {
	// SW.
	for _, op := range og.Ops {
		if s.End[op.ID] < s.Start[op.ID]+gamma {
			return fmt.Errorf("mapper: op %d violates SW: [%d,%d] with Γ=%d", op.ID, s.Start[op.ID], s.End[op.ID], gamma)
		}
	}
	// RC: per PE, sorted intervals must be strictly disjoint.
	byPE := make(map[int][]int)
	for _, op := range og.Ops {
		byPE[s.PE[op.ID]] = append(byPE[s.PE[op.ID]], op.ID)
	}
	//fpsa:nondet validator verdict is order-free; only which violation reports first varies
	for pe, ops := range byPE {
		sort.Slice(ops, func(i, j int) bool { return s.Start[ops[i]] < s.Start[ops[j]] })
		for i := 1; i < len(ops); i++ {
			if s.Start[ops[i]] <= s.End[ops[i-1]] {
				return fmt.Errorf("mapper: PE %d ops %d,%d violate RC", pe, ops[i-1], ops[i])
			}
		}
	}
	// NBD / BD per edge.
	for _, op := range og.Ops {
		for _, u := range op.Deps {
			if s.Buffered[Edge{From: u, To: op.ID}] {
				if s.Start[op.ID] <= s.End[u] {
					return fmt.Errorf("mapper: edge %d→%d violates BD", u, op.ID)
				}
			} else {
				if s.Start[op.ID] > s.Start[u]+1 || s.End[op.ID] < s.End[u]+1 {
					return fmt.Errorf("mapper: edge %d→%d violates NBD", u, op.ID)
				}
			}
		}
	}
	// BC: buffered readers of one producer end ≥ Γ apart pairwise.
	readers := make(map[int][]int)
	for e, buf := range s.Buffered { //fpsa:nondet groups into a map, sorted before use
		if buf {
			readers[e.From] = append(readers[e.From], e.To)
		}
	}
	//fpsa:nondet validator verdict is order-free; only which violation reports first varies
	for u, rs := range readers {
		sort.Slice(rs, func(i, j int) bool { return s.End[rs[i]] < s.End[rs[j]] })
		for i := 1; i < len(rs); i++ {
			if s.End[rs[i]]-s.End[rs[i-1]] <= gamma {
				return fmt.Errorf("mapper: buffer of op %d violates BC: readers %d,%d end %d apart",
					u, rs[i-1], rs[i], s.End[rs[i]]-s.End[rs[i-1]])
			}
		}
	}
	// PE assignment sanity: copies of one group only.
	peBase := make([]int, len(og.Groups.Groups))
	next := 0
	for gi := range og.Groups.Groups {
		peBase[gi] = next
		next += a.Dup[gi]
	}
	for _, op := range og.Ops {
		lo, hi := peBase[op.Group], peBase[op.Group]+a.Dup[op.Group]
		if s.PE[op.ID] < lo || s.PE[op.ID] >= hi {
			return fmt.Errorf("mapper: op %d assigned PE %d outside its group range [%d,%d)", op.ID, s.PE[op.ID], lo, hi)
		}
	}
	return nil
}
