package mapper

import (
	"reflect"
	"testing"
)

// TestAllocateAssignedNilMatchesAllocate: with no overrides the assigned
// allocator is exactly the classic balanced one — the fpsa-level
// equivalence property, pinned where it is cheapest to check.
func TestAllocateAssignedNilMatchesAllocate(t *testing.T) {
	g := chainGraph(100, 10, 1)
	for _, dup := range []int{1, 5, 10, 64} {
		classic, err := Allocate(g, dup)
		if err != nil {
			t.Fatal(err)
		}
		assigned, err := AllocateAssigned(g, dup, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(classic, assigned) {
			t.Errorf("dup %d: %+v vs %+v", dup, classic, assigned)
		}
	}
}

// TestAllocateAssignedOverrides: a per-layer entry replaces the uniform
// target for that layer's groups and is clamped to each group's reuse.
func TestAllocateAssignedOverrides(t *testing.T) {
	g := chainGraph(100, 10, 1) // all groups in layer "l"
	a, err := AllocateAssigned(g, 1, map[string]int{"l": 25})
	if err != nil {
		t.Fatal(err)
	}
	// 25 copies where reuse allows, clamped to 10 and 1 elsewhere.
	if !reflect.DeepEqual(a.Dup, []int{25, 10, 1}) {
		t.Errorf("Dup = %v, want [25 10 1]", a.Dup)
	}
	if a.TotalPEs != 36 {
		t.Errorf("TotalPEs = %d, want 36", a.TotalPEs)
	}
	// Iterations shrink accordingly: ceil(100/25) = 4 on the hot group.
	if a.Dup[0] != 25 || a.Iterations[0] != 4 {
		t.Errorf("group 0: dup %d iterations %d, want 25/4", a.Dup[0], a.Iterations[0])
	}
}

// TestAllocateAssignedValidation: bad degrees and unknown layers are
// errors, not silent no-ops.
func TestAllocateAssignedValidation(t *testing.T) {
	g := chainGraph(4, 1)
	if _, err := AllocateAssigned(g, 0, nil); err == nil {
		t.Error("modelDup 0 accepted")
	}
	if _, err := AllocateAssigned(g, 1, map[string]int{"l": 0}); err == nil {
		t.Error("zero layer degree accepted")
	}
	if _, err := AllocateAssigned(g, 1, map[string]int{"l": -2}); err == nil {
		t.Error("negative layer degree accepted")
	}
	if _, err := AllocateAssigned(g, 1, map[string]int{"ghost": 2}); err == nil {
		t.Error("unknown layer accepted")
	}
}

// TestAllocateVector: the per-group form the autotuner scores with —
// exact degrees, clamped to reuse, ModelDup reported as the max.
func TestAllocateVector(t *testing.T) {
	g := chainGraph(100, 10, 1)
	a, err := AllocateVector(g, []int{50, 99, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Dup, []int{50, 10, 1}) {
		t.Errorf("Dup = %v, want [50 10 1] (clamped to reuse)", a.Dup)
	}
	if a.ModelDup != 50 {
		t.Errorf("ModelDup = %d, want 50 (max over groups)", a.ModelDup)
	}
	if a.Iterations[0] != 2 {
		t.Errorf("Iterations[0] = %d, want ceil(100/50) = 2", a.Iterations[0])
	}
}

// TestAllocateVectorValidation: length mismatch and sub-1 degrees fail.
func TestAllocateVectorValidation(t *testing.T) {
	g := chainGraph(4, 1)
	if _, err := AllocateVector(g, []int{1}); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := AllocateVector(g, []int{1, 1, 1}); err == nil {
		t.Error("long vector accepted")
	}
	if _, err := AllocateVector(g, []int{0, 1}); err == nil {
		t.Error("zero degree accepted")
	}
}
