package mapper

import (
	"math/rand"
	"testing"

	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/netlist"
	"fpsa/internal/synth"
)

// chainGraph builds a linear core-op graph with the given reuse degrees.
func chainGraph(reuses ...int) *coreop.Graph {
	g := &coreop.Graph{Name: "chain"}
	for i, r := range reuses {
		grp := &coreop.Group{
			Layer: "l", Name: "g" + string(rune('a'+i)), Rows: 16, Cols: 16,
			UsefulWeights: 256, Reuse: r,
		}
		if i > 0 {
			grp.Deps = []int{i - 1}
		}
		g.AddGroup(grp)
	}
	return g
}

func TestAllocateBalancesIterations(t *testing.T) {
	g := chainGraph(100, 10, 1)
	a, err := Allocate(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ModelDup != 10 {
		t.Errorf("ModelDup = %d", a.ModelDup)
	}
	// Target iterations = 100/10 = 10: group0 gets 10 copies, group1 1,
	// group2 1.
	if a.Dup[0] != 10 || a.Dup[1] != 1 || a.Dup[2] != 1 {
		t.Errorf("Dup = %v, want [10 1 1]", a.Dup)
	}
	if a.MaxIterations() != 10 {
		t.Errorf("MaxIterations = %d, want 10", a.MaxIterations())
	}
	if a.TotalPEs != 12 {
		t.Errorf("TotalPEs = %d, want 12", a.TotalPEs)
	}
}

func TestAllocateDupNeverExceedsReuse(t *testing.T) {
	g := chainGraph(4, 1)
	a, err := Allocate(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dup[0] != 4 || a.Dup[1] != 1 {
		t.Errorf("Dup = %v, want [4 1]", a.Dup)
	}
	if a.MaxIterations() != 1 {
		t.Errorf("MaxIterations = %d", a.MaxIterations())
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(chainGraph(1), 0); err == nil {
		t.Error("dup 0 accepted")
	}
	if _, err := Allocate(&coreop.Graph{}, 1); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestExpandRateMatchedDeps(t *testing.T) {
	g := chainGraph(8, 4)
	og, err := Expand(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(og.Ops) != 12 {
		t.Fatalf("ops = %d, want 12", len(og.Ops))
	}
	// Consumer op i (group 1) depends on producer op 2i.
	for i := 0; i < 4; i++ {
		op := og.Ops[8+i]
		if len(op.Deps) != 1 || op.Deps[0] != 2*i {
			t.Errorf("consumer %d deps = %v, want [%d]", i, op.Deps, 2*i)
		}
	}
}

func TestExpandRefusesHugeGraphs(t *testing.T) {
	g := chainGraph(1 << 20)
	if _, err := Expand(g, 1000); err == nil {
		t.Error("huge graph expanded")
	}
}

func TestScheduleMLPChainIsBufferless(t *testing.T) {
	// Reuse-1 chains (MLPs) satisfy NBD everywhere: consumers start one
	// cycle after producers, no buffers.
	g := chainGraph(1, 1, 1)
	a, err := Allocate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	og, err := Expand(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	const gamma = 64
	s, err := ScheduleOps(og, a, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(og, a, gamma); err != nil {
		t.Fatal(err)
	}
	if len(s.Buffered) != 0 {
		t.Errorf("buffered edges = %v, want none", s.Buffered)
	}
	// Pipeline fill: op i starts at cycle i.
	for i := 0; i < 3; i++ {
		if s.Start[i] != i {
			t.Errorf("op %d start = %d, want %d (1-cycle NBD chaining)", i, s.Start[i], i)
		}
	}
	if s.Makespan != 2+gamma {
		t.Errorf("makespan = %d, want %d", s.Makespan, 2+gamma)
	}
}

func TestScheduleWeightReuseForcesBuffers(t *testing.T) {
	// One producer position feeding four consumer iterations on a single
	// PE: only the first consumer can NBD-chain; RC pushes the rest past
	// the producer's end, forcing buffered (BD) edges with BC-serialized
	// reads.
	g := chainGraph(1, 4)
	a, err := Allocate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	og, err := Expand(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	const gamma = 64
	s, err := ScheduleOps(og, a, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(og, a, gamma); err != nil {
		t.Fatal(err)
	}
	if len(s.Buffered) != 3 {
		t.Errorf("buffered edges = %d, want 3 (all but the NBD-chained first read)", len(s.Buffered))
	}
}

func TestScheduleMultiDepSkewBuffersEarlyEdge(t *testing.T) {
	// A node consuming both ends of a chain cannot cover both producers:
	// the edge from the earlier producer must buffer (its spike train is
	// long gone by the time the later producer streams).
	g := &coreop.Graph{Name: "diamond"}
	g.AddGroup(&coreop.Group{Layer: "l", Name: "a", Rows: 4, Cols: 4, UsefulWeights: 16, Reuse: 1})
	g.AddGroup(&coreop.Group{Layer: "l", Name: "b", Rows: 4, Cols: 4, UsefulWeights: 16, Reuse: 1, Deps: []int{0}})
	g.AddGroup(&coreop.Group{Layer: "l", Name: "c", Rows: 4, Cols: 4, UsefulWeights: 16, Reuse: 1, Deps: []int{0, 1}})
	a, err := Allocate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	og, err := Expand(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	const gamma = 16
	s, err := ScheduleOps(og, a, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(og, a, gamma); err != nil {
		t.Fatal(err)
	}
	if !s.Buffered[Edge{From: 0, To: 2}] {
		t.Error("skewed edge a→c not buffered")
	}
	// Our monotonic scheduler never re-times placed ops, so it may also
	// buffer b→c (the paper's ripple variant would delay b instead);
	// either way the validator must accept the result — minimality is a
	// non-goal, constraint satisfaction is the contract.
}

func TestScheduleRandomDAGsSatisfyConstraints(t *testing.T) {
	// Property test: random layered DAGs with random reuse degrees and
	// duplication always produce schedules the independent validator
	// accepts, for several window sizes.
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 30; trial++ {
		g := &coreop.Graph{Name: "rand"}
		layers := 2 + rng.Intn(4)
		var prev []int
		id := 0
		for l := 0; l < layers; l++ {
			width := 1 + rng.Intn(3)
			var cur []int
			for w := 0; w < width; w++ {
				grp := &coreop.Group{
					Layer: "l", Name: "g" + string(rune('a'+id)),
					Rows: 8, Cols: 8, UsefulWeights: 64,
					Reuse: 1 + rng.Intn(20),
				}
				// Depend on a random nonempty subset of the previous
				// layer.
				for _, p := range prev {
					if rng.Intn(2) == 0 {
						grp.Deps = append(grp.Deps, p)
					}
				}
				if len(grp.Deps) == 0 && len(prev) > 0 {
					grp.Deps = []int{prev[rng.Intn(len(prev))]}
				}
				g.AddGroup(grp)
				cur = append(cur, grp.ID)
				id++
			}
			prev = cur
		}
		dup := 1 + rng.Intn(8)
		a, err := Allocate(g, dup)
		if err != nil {
			t.Fatal(err)
		}
		og, err := Expand(g, 10000)
		if err != nil {
			t.Fatal(err)
		}
		gamma := []int{4, 16, 64}[rng.Intn(3)]
		s, err := ScheduleOps(og, a, gamma)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(og, a, gamma); err != nil {
			t.Fatalf("trial %d (dup=%d, Γ=%d): %v", trial, dup, gamma, err)
		}
	}
}

func TestBuildNetlistMLP(t *testing.T) {
	co, err := synth.Synthesize(models.MLP500_100(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(co, 1)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNetlist(co, a, device.Params45nm, nil)
	if err != nil {
		t.Fatal(err)
	}
	pes, smbs, clbs := nl.Counts()
	if pes != a.TotalPEs {
		t.Errorf("PEs = %d, want %d", pes, a.TotalPEs)
	}
	// MLP is a reuse-1 pipeline: no SMBs under the steady-state rule.
	if smbs != 0 {
		t.Errorf("SMBs = %d, want 0 for MLP", smbs)
	}
	if clbs == 0 {
		t.Error("no CLBs for control")
	}
	if err := nl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildNetlistCNNHasBuffers(t *testing.T) {
	co, err := synth.Synthesize(models.LeNet(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(co, 4)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNetlist(co, a, device.Params45nm, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, smbs, _ := nl.Counts()
	if smbs == 0 {
		t.Error("LeNet netlist has no SMBs despite weight reuse")
	}
	if err := nl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildNetlistUsesScheduleDecisions(t *testing.T) {
	g := chainGraph(1, 1)
	a, err := Allocate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	forced := map[Edge]bool{{From: 0, To: 1}: true}
	nl, err := BuildNetlist(g, a, device.Params45nm, forced)
	if err != nil {
		t.Fatal(err)
	}
	_, smbs, _ := nl.Counts()
	if smbs == 0 {
		t.Error("forced buffer edge produced no SMB")
	}
}

func TestNetlistAreaBreakdown(t *testing.T) {
	nl := &netlist.Netlist{}
	p := nl.AddBlock(netlist.BlockPE, "pe", 0, 0)
	s := nl.AddBlock(netlist.BlockSMB, "smb", 0, 0)
	c := nl.AddBlock(netlist.BlockCLB, "clb", -1, 0)
	_ = p
	_ = s
	_ = c
	want := device.Params45nm.PETotal.AreaUM2 + device.Params45nm.SMB.AreaUM2 + device.Params45nm.CLB.AreaUM2
	if got := nl.AreaUM2(device.Params45nm); got != want {
		t.Errorf("AreaUM2 = %v, want %v", got, want)
	}
}
