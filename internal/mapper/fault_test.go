package mapper

import (
	"reflect"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/models"
	"fpsa/internal/synth"
)

// TestBuildNetlistFaultedNilIdentical: a nil or inactive fault model
// leaves BuildNetlistFaulted bit-identical to BuildNetlist — no block
// carries a fault stamp and the structure matches exactly.
func TestBuildNetlistFaultedNilIdentical(t *testing.T) {
	co, err := synth.Synthesize(models.MLP500_100(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(co, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildNetlist(co, a, device.Params45nm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, fm := range map[string]*device.FaultModel{
		"nil":       nil,
		"zero-rate": {Seed: 7, Remap: true},
	} {
		got, err := BuildNetlistFaulted(co, a, device.Params45nm, nil, fm, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, plain) {
			t.Fatalf("%s fault model changed the netlist", name)
		}
	}
	for i := range plain.Blocks {
		if plain.Blocks[i].Fault != 0 {
			t.Fatalf("unfaulted netlist block %d carries fault stamp %d", i, plain.Blocks[i].Fault)
		}
	}
}

// TestBuildNetlistFaultedStampsResiduals: an active unremapped model
// stamps PE blocks with positive residual counts, remapping strictly
// reduces the total, and the stamps are deterministic across rebuilds.
func TestBuildNetlistFaultedStampsResiduals(t *testing.T) {
	co, err := synth.Synthesize(models.MLP500_100(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(co, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := func(fm *device.FaultModel) int {
		nl, err := BuildNetlistFaulted(co, a, device.Params45nm, nil, fm, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i := range nl.Blocks {
			sum += nl.Blocks[i].Fault
		}
		return sum
	}
	raw := &device.FaultModel{Rate: 0.02, Seed: 13}
	without := total(raw)
	if without == 0 {
		t.Fatal("unremapped 2% fault rate stamped no residuals")
	}
	if again := total(raw); again != without {
		t.Fatalf("rebuild stamped %d residual cells, first build %d", again, without)
	}
	with := total(&device.FaultModel{Rate: 0.02, Seed: 13, Remap: true})
	if with >= without {
		t.Fatalf("remapping left %d residual cells, no-remap netlist has %d", with, without)
	}
}

// TestBuildNetlistFaultedUnitBase: the unit base offsets the global
// group IDs fault maps key on, so a shard rebuilt at its global offset
// stamps different residuals than one rebuilt as if it started at zero.
func TestBuildNetlistFaultedUnitBase(t *testing.T) {
	co, err := synth.Synthesize(models.MLP500_100(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Allocate(co, 1)
	if err != nil {
		t.Fatal(err)
	}
	fm := &device.FaultModel{Rate: 0.02, Seed: 3}
	at0, err := BuildNetlistFaulted(co, a, device.Params45nm, nil, fm, 0)
	if err != nil {
		t.Fatal(err)
	}
	at7, err := BuildNetlistFaulted(co, a, device.Params45nm, nil, fm, 7)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range at0.Blocks {
		if at0.Blocks[i].Fault != at7.Blocks[i].Fault {
			same = false
			break
		}
	}
	if same {
		t.Fatal("unit base 7 stamped the same fault population as base 0")
	}
}
