// Package mapper implements FPSA's spatial-to-temporal mapper (paper §5.2):
// it allocates PE copies to weight groups (duplication degrees), schedules
// core-op execution under the paper's five constraints (Algorithm 1),
// decides where SMB buffers are required, and emits the function-block
// netlist for placement & routing.
package mapper

import (
	"fmt"

	"fpsa/internal/coreop"
)

// Allocation assigns PE copies to weight groups.
type Allocation struct {
	// ModelDup is the model's duplication degree: the duplication of the
	// group with the maximum reuse degree (§5.2).
	ModelDup int
	// Dup[g] is group g's duplication degree (≥1).
	Dup []int
	// Iterations[g] = ceil(reuse/dup): how many time-division iterations
	// group g needs per sample.
	Iterations []int
	// TotalPEs is Σ dup.
	TotalPEs int
}

// Allocate balances pipeline stages for the requested model duplication
// degree: the target iteration count is that of the maximum-reuse group at
// modelDup copies, and every group receives just enough duplicates to meet
// it (never more copies than its reuse degree can use).
func Allocate(g *coreop.Graph, modelDup int) (Allocation, error) {
	if modelDup < 1 {
		return Allocation{}, fmt.Errorf("mapper: duplication degree %d must be ≥1", modelDup)
	}
	if len(g.Groups) == 0 {
		return Allocation{}, fmt.Errorf("mapper: empty core-op graph")
	}
	maxReuse := g.MaxReuse()
	if modelDup > maxReuse {
		modelDup = maxReuse // more copies than reuse degree cannot help
	}
	target := ceilDiv(maxReuse, modelDup)
	a := Allocation{
		ModelDup:   modelDup,
		Dup:        make([]int, len(g.Groups)),
		Iterations: make([]int, len(g.Groups)),
	}
	for i, grp := range g.Groups {
		dup := ceilDiv(grp.Reuse, target)
		if dup < 1 {
			dup = 1
		}
		if dup > grp.Reuse {
			dup = grp.Reuse
		}
		a.Dup[i] = dup
		a.Iterations[i] = ceilDiv(grp.Reuse, dup)
		a.TotalPEs += dup
	}
	return a, nil
}

// MaxIterations returns the pipeline-bottleneck iteration count.
func (a Allocation) MaxIterations() int {
	max := 0
	for _, it := range a.Iterations {
		if it > max {
			max = it
		}
	}
	return max
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
