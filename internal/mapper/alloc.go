// Package mapper implements FPSA's spatial-to-temporal mapper (paper §5.2):
// it allocates PE copies to weight groups (duplication degrees), schedules
// core-op execution under the paper's five constraints (Algorithm 1),
// decides where SMB buffers are required, and emits the function-block
// netlist for placement & routing.
package mapper

import (
	"fmt"
	"sort"

	"fpsa/internal/coreop"
)

// Allocation assigns PE copies to weight groups.
type Allocation struct {
	// ModelDup is the model's duplication degree: the duplication of the
	// group with the maximum reuse degree (§5.2).
	ModelDup int
	// Dup[g] is group g's duplication degree (≥1).
	Dup []int
	// Iterations[g] = ceil(reuse/dup): how many time-division iterations
	// group g needs per sample.
	Iterations []int
	// TotalPEs is Σ dup.
	TotalPEs int
}

// Allocate balances pipeline stages for the requested model duplication
// degree: the target iteration count is that of the maximum-reuse group at
// modelDup copies, and every group receives just enough duplicates to meet
// it (never more copies than its reuse degree can use).
func Allocate(g *coreop.Graph, modelDup int) (Allocation, error) {
	return AllocateAssigned(g, modelDup, nil)
}

// AllocateAssigned is Allocate with per-layer overrides: every group whose
// Layer appears in layerDup receives that duplication degree (clamped to
// its reuse degree — extra copies a group cannot use are not spent),
// while the remaining groups follow the uniform modelDup policy. A nil or
// empty layerDup is exactly Allocate. Overrides must name layers that
// exist in the graph and be ≥ 1.
func AllocateAssigned(g *coreop.Graph, modelDup int, layerDup map[string]int) (Allocation, error) {
	if modelDup < 1 {
		return Allocation{}, fmt.Errorf("mapper: duplication degree %d must be ≥1", modelDup)
	}
	if len(g.Groups) == 0 {
		return Allocation{}, fmt.Errorf("mapper: empty core-op graph")
	}
	if len(layerDup) > 0 {
		layers := make(map[string]bool, len(g.Groups))
		for _, grp := range g.Groups {
			layers[grp.Layer] = true
		}
		names := make([]string, 0, len(layerDup))
		for name := range layerDup { //fpsa:nondet collects keys; sorted below
			names = append(names, name)
		}
		sort.Strings(names) // deterministic error selection
		for _, name := range names {
			if dup := layerDup[name]; dup < 1 {
				return Allocation{}, fmt.Errorf("mapper: layer %q duplication degree %d must be ≥1", name, dup)
			}
			if !layers[name] {
				return Allocation{}, fmt.Errorf("mapper: layer %q not in model", name)
			}
		}
	}
	maxReuse := g.MaxReuse()
	if modelDup > maxReuse {
		modelDup = maxReuse // more copies than reuse degree cannot help
	}
	target := ceilDiv(maxReuse, modelDup)
	a := Allocation{
		ModelDup:   modelDup,
		Dup:        make([]int, len(g.Groups)),
		Iterations: make([]int, len(g.Groups)),
	}
	for i, grp := range g.Groups {
		dup := ceilDiv(grp.Reuse, target)
		if v, ok := layerDup[grp.Layer]; ok {
			dup = v
		}
		if dup < 1 {
			dup = 1
		}
		if dup > grp.Reuse {
			dup = grp.Reuse
		}
		a.Dup[i] = dup
		a.Iterations[i] = ceilDiv(grp.Reuse, dup)
		a.TotalPEs += dup
	}
	return a, nil
}

// AllocateVector builds an Allocation from an explicit per-group
// duplication vector (clamped to each group's reuse degree). It is the
// form the autotuner's cost oracle evaluates: candidates are per-group
// assignments, not a single knob. ModelDup records the maximum assigned
// degree so downstream consumers see a meaningful summary value.
func AllocateVector(g *coreop.Graph, dup []int) (Allocation, error) {
	if len(g.Groups) == 0 {
		return Allocation{}, fmt.Errorf("mapper: empty core-op graph")
	}
	if len(dup) != len(g.Groups) {
		return Allocation{}, fmt.Errorf("mapper: duplication vector has %d entries for %d groups", len(dup), len(g.Groups))
	}
	a := Allocation{
		Dup:        make([]int, len(g.Groups)),
		Iterations: make([]int, len(g.Groups)),
	}
	for i, grp := range g.Groups {
		d := dup[i]
		if d < 1 {
			return Allocation{}, fmt.Errorf("mapper: group %d duplication degree %d must be ≥1", i, d)
		}
		if d > grp.Reuse {
			d = grp.Reuse
		}
		a.Dup[i] = d
		a.Iterations[i] = ceilDiv(grp.Reuse, d)
		a.TotalPEs += d
		if d > a.ModelDup {
			a.ModelDup = d
		}
	}
	return a, nil
}

// MaxIterations returns the pipeline-bottleneck iteration count.
func (a Allocation) MaxIterations() int {
	max := 0
	for _, it := range a.Iterations {
		if it > max {
			max = it
		}
	}
	return max
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
