package mapper

import (
	"fmt"

	"fpsa/internal/clb"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/netlist"
	"fpsa/internal/smb"
)

// BuildNetlist emits the function-block netlist for a core-op graph under
// an allocation: one PE per group copy, SMB buffers on buffered edges, and
// CLB control logic sized by actually synthesizing the per-group schedule
// controllers.
//
// bufferedEdges may carry op-scheduler decisions lifted to group pairs
// (Schedule.BufferedGroupEdges); if nil, the steady-state pipeline rule
// applies: an edge chains bufferlessly (NBD) only when neither side
// time-multiplexes its weights (both iteration counts are 1), which is the
// paper's direct spike-train chaining; every time-division-multiplexed
// connection needs an SMB to hold intermediate counts (§5.2).
func BuildNetlist(g *coreop.Graph, a Allocation, params device.Params, bufferedEdges map[Edge]bool) (*netlist.Netlist, error) {
	return BuildNetlistFaulted(g, a, params, bufferedEdges, nil, 0)
}

// BuildNetlistFaulted is BuildNetlist under a device fault model: each
// group's PE blocks are stamped with the residual stuck-cell count of its
// crossbar's deterministic fault map (after spare-row/column remapping
// when the model asks for it), which the placer reads as a wirelength
// penalty — nets touching heavily-faulted PEs are pulled toward shorter
// routes, since their signals are re-driven through degraded hardware.
// A nil or inactive model stamps nothing and is bit-identical to
// BuildNetlist.
//
// unitBase offsets the fault-map unit IDs: a sharded deployment's
// sub-graph renumbers its groups from 0, so the caller passes the
// chip's global group offset to keep the netlist keyed on the same
// units the executor programs.
func BuildNetlistFaulted(g *coreop.Graph, a Allocation, params device.Params, bufferedEdges map[Edge]bool, faults *device.FaultModel, unitBase int) (*netlist.Netlist, error) {
	if len(a.Dup) != len(g.Groups) {
		return nil, fmt.Errorf("mapper: allocation covers %d groups, graph has %d", len(a.Dup), len(g.Groups))
	}
	nl := &netlist.Netlist{Name: g.Name}
	window := params.SamplingWindow()

	// PE instances.
	peIDs := make([][]int, len(g.Groups))
	for gi, grp := range g.Groups {
		residual := 0
		if faults.Active() {
			// Same primitive the executor programs with (FaultMap.MaskFor
			// keyed on the global group ID), so the netlist's penalty
			// weights and the runtime's faulted conductances agree by
			// construction. Every copy of a group shares the map: the
			// copies are one logical unit's duplicated programming.
			fm := faults.MapForUnit(grp.Layer, unitBase+grp.ID, params.CrossbarRows, params.LogicalColumns())
			mask := fm.MaskFor(grp.Rows, grp.Cols, faults.Remap)
			residual = mask.Faulted
		}
		peIDs[gi] = make([]int, a.Dup[gi])
		for c := 0; c < a.Dup[gi]; c++ {
			id := nl.AddBlock(netlist.BlockPE, fmt.Sprintf("%s#%d", grp.Name, c), gi, c)
			nl.Blocks[id].Fault = residual
			peIDs[gi][c] = id
		}
	}

	needsBuffer := func(u, v int) bool {
		if bufferedEdges != nil {
			return bufferedEdges[Edge{From: u, To: v}]
		}
		return a.Iterations[u] > 1 || a.Iterations[v] > 1
	}

	// Buffered producers get one double-buffered SMB bank each, shared
	// by every consumer (the bank stores the producer's output counts
	// once; each reader has its own port schedule — the BC constraint).
	bankOf := make(map[int][]int)
	bank := func(ui int) []int {
		if ids, ok := bankOf[ui]; ok {
			return ids
		}
		src := g.Groups[ui]
		blocks := smb.BlocksNeeded(params, 2*src.Cols, window)
		ids := make([]int, blocks)
		for b := 0; b < blocks; b++ {
			ids[b] = nl.AddBlock(netlist.BlockSMB, fmt.Sprintf("%s.buf%d", src.Name, b), ui, b)
		}
		for _, p := range peIDs[ui] {
			nl.AddNet(p, ids, src.Cols)
		}
		bankOf[ui] = ids
		return ids
	}

	// Data connections.
	groupInBufs := make(map[int][]int) // consumer group → SMB block IDs on its inputs
	for vi, grp := range g.Groups {
		for _, ui := range grp.Deps {
			src := g.Groups[ui]
			signals := src.Cols
			if needsBuffer(ui, vi) {
				bufIDs := bank(ui)
				groupInBufs[vi] = append(groupInBufs[vi], bufIDs...)
				for _, b := range bufIDs {
					nl.AddNet(b, peIDs[vi], signals)
				}
				continue
			}
			// Direct spike-train chaining: rate-matched copy pairing.
			du, dv := a.Dup[ui], a.Dup[vi]
			pairs := du
			if dv > pairs {
				pairs = dv
			}
			sinksOf := make(map[int][]int)
			for c := 0; c < pairs; c++ {
				sinksOf[c%du] = append(sinksOf[c%du], peIDs[vi][c%dv])
			}
			// Emit nets in copy order, not map order: net order feeds
			// the netlist fingerprint and the place/route trajectory,
			// which must be bit-identical run to run.
			for c := 0; c < du; c++ {
				if sinks, ok := sinksOf[c]; ok {
					nl.AddNet(peIDs[ui][c], dedupe(sinks), signals)
				}
			}
		}
	}

	// Control logic: synthesize the real per-group controllers to obtain
	// LUT counts, then pack them into CLBs.
	totalLUTs := 0
	type domain struct {
		group int
		luts  int
	}
	var domains []domain
	for gi := range g.Groups {
		luts, err := controllerLUTs(params, window, a.Iterations[gi])
		if err != nil {
			return nil, err
		}
		totalLUTs += luts
		domains = append(domains, domain{group: gi, luts: luts})
	}
	clbCount := clb.BlocksNeeded(params, totalLUTs)
	clbIDs := make([]int, clbCount)
	for i := range clbIDs {
		clbIDs[i] = nl.AddBlock(netlist.BlockCLB, fmt.Sprintf("ctl%d", i), -1, i)
	}
	// Assign control domains to CLBs first-fit and emit control nets.
	if clbCount > 0 {
		free := params.CLBLUTs
		cur := 0
		for _, d := range domains {
			if d.luts > free && cur < clbCount-1 {
				cur++
				free = params.CLBLUTs
			}
			free -= d.luts
			sinks := append([]int(nil), peIDs[d.group]...)
			sinks = append(sinks, groupInBufs[d.group]...)
			nl.AddNet(clbIDs[cur], sinks, 2) // reset + iteration-select strobes
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// controllerLUTs synthesizes the schedule controllers one group needs — a
// mod-Γ window/reset counter and, when the group time-multiplexes its
// weights, a mod-iterations counter — and returns their LUT cost.
func controllerLUTs(params device.Params, window, iterations int) (int, error) {
	reset, err := clb.NewController(window, params.LUTInputs, []clb.Event{{Name: "reset", Cycles: []int{0}}})
	if err != nil {
		return 0, err
	}
	luts := reset.LUTCount()
	if iterations > 1 {
		iter, err := clb.NewController(iterations, params.LUTInputs, []clb.Event{{Name: "next", Cycles: []int{iterations - 1}}})
		if err != nil {
			return 0, err
		}
		luts += iter.LUTCount()
	}
	return luts, nil
}

func dedupe(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
