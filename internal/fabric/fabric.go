// Package fabric models the FPSA chip: a W×H island-style grid of function
// block sites whose routing network (mrFPGA-style ReRAM connection boxes
// and switch boxes) is stacked above the blocks in metal layers M5-M9
// (paper §4.1, Figure 3). Chip area is therefore the larger of block area
// and routing area; in the evaluated configuration the routing layer is
// smaller (§6.1), so block area dominates.
package fabric

import (
	"fmt"
	"math"

	"fpsa/internal/device"
)

// Chip is one fabric instance.
type Chip struct {
	// W, H are the grid dimensions in sites.
	W, H int
	// Tracks is the routing channel width: wire segments per channel per
	// direction.
	Tracks int
	// Params carries the 45 nm constants.
	Params device.Params
}

// DefaultTracks is the channel width used throughout the evaluation. A PE
// has 256 spike inputs and 256 spike outputs, so channels must carry
// multiple PE-wide buses; the paper's fabric provides "massive wiring
// resources" stacked above the blocks, and at 2048 tracks the routing
// layer is still far below block area (see RoutingAreaUM2). The router
// reports when a netlist needs more.
const DefaultTracks = 2048

// SizeFor returns a square-ish chip large enough for the given block count
// (plus slack so the annealer can move blocks around).
func SizeFor(blocks, tracks int, params device.Params) (Chip, error) {
	if blocks <= 0 {
		return Chip{}, fmt.Errorf("fabric: no blocks to place")
	}
	if tracks <= 0 {
		tracks = DefaultTracks
	}
	side := int(math.Ceil(math.Sqrt(float64(blocks) * 1.25)))
	if side < 2 {
		side = 2
	}
	return Chip{W: side, H: side, Tracks: tracks, Params: params}, nil
}

// Sites returns the number of placement sites.
func (c Chip) Sites() int { return c.W * c.H }

// Site is one grid location.
type Site struct{ X, Y int }

// Valid reports whether the site lies on the chip.
func (c Chip) Valid(s Site) bool {
	return s.X >= 0 && s.X < c.W && s.Y >= 0 && s.Y < c.H
}

// Index linearizes a site.
func (c Chip) Index(s Site) int { return s.Y*c.W + s.X }

// SiteAt inverts Index.
func (c Chip) SiteAt(i int) Site { return Site{X: i % c.W, Y: i / c.W} }

// RoutingAreaUM2 estimates the stacked mrFPGA routing layer's footprint:
// every site carries one switch box (6 ReRAM switch cells per track pair
// for the disjoint pattern) and four connection boxes (one ReRAM cell per
// track per block pin side). NVSim's 45 nm ReRAM cell is 0.1µm² class at
// 4F²; we use the paper's [12]-derived per-cell constant folded into the
// ReRAM array area, normalized per cell.
func (c Chip) RoutingAreaUM2() float64 {
	// Per-cell area from the published 256×512 array with 8-cell stacks:
	// area / (256·512·8).
	cellArea := c.Params.ReRAMArraysTotal.AreaUM2 / float64(256*512*8)
	sbCells := 6 * c.Tracks
	cbCells := 4 * c.Tracks
	return float64(c.Sites()) * float64(sbCells+cbCells) * cellArea
}

// ChipAreaUM2 returns max(block area, routing area): the fabric is stacked.
func (c Chip) ChipAreaUM2(blockAreaUM2 float64) float64 {
	if r := c.RoutingAreaUM2(); r > blockAreaUM2 {
		return r
	}
	return blockAreaUM2
}

// HopDelayNS is the per-hop signal delay through one wire segment plus its
// mrFPGA switch.
func (c Chip) HopDelayNS() float64 { return c.Params.WireDelayPerHopNS }
