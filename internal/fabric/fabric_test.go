package fabric

import (
	"testing"

	"fpsa/internal/device"
)

func TestSizeFor(t *testing.T) {
	c, err := SizeFor(100, 0, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sites() < 100 {
		t.Errorf("Sites = %d, want ≥100", c.Sites())
	}
	if c.Tracks != DefaultTracks {
		t.Errorf("Tracks = %d, want default %d", c.Tracks, DefaultTracks)
	}
	if _, err := SizeFor(0, 0, device.Params45nm); err == nil {
		t.Error("zero blocks accepted")
	}
}

func TestSiteIndexRoundTrip(t *testing.T) {
	c := Chip{W: 7, H: 5, Tracks: 4, Params: device.Params45nm}
	for i := 0; i < c.Sites(); i++ {
		s := c.SiteAt(i)
		if !c.Valid(s) {
			t.Fatalf("SiteAt(%d) = %v invalid", i, s)
		}
		if c.Index(s) != i {
			t.Fatalf("Index(SiteAt(%d)) = %d", i, c.Index(s))
		}
	}
	if c.Valid(Site{X: 7, Y: 0}) || c.Valid(Site{X: -1, Y: 0}) {
		t.Error("out-of-range site reported valid")
	}
}

func TestRoutingStackedBelowBlockArea(t *testing.T) {
	// §6.1: "the routing architecture is stacked over function blocks;
	// the area of the former is less" — at the evaluated channel width,
	// per-site routing area must be below the smallest block.
	c := Chip{W: 10, H: 10, Tracks: DefaultTracks, Params: device.Params45nm}
	blockArea := float64(c.Sites()) * device.Params45nm.SMB.AreaUM2 // worst case: all-SMB chip
	if r := c.RoutingAreaUM2(); r > blockArea {
		t.Errorf("routing area %v exceeds all-SMB block area %v", r, blockArea)
	}
	if got := c.ChipAreaUM2(blockArea); got != blockArea {
		t.Errorf("ChipAreaUM2 = %v, want block-dominated %v", got, blockArea)
	}
}

func TestHopDelay(t *testing.T) {
	c := Chip{W: 2, H: 2, Tracks: 4, Params: device.Params45nm}
	if got := c.HopDelayNS(); got != device.Params45nm.WireDelayPerHopNS {
		t.Errorf("HopDelayNS = %v", got)
	}
}
