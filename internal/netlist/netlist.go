// Package netlist defines the function-block netlist — the mapper's output
// and the placement & routing tool's input (paper Figure 5): typed block
// instances (PE, SMB, CLB) connected by multi-terminal nets.
package netlist

import (
	"fmt"

	"fpsa/internal/device"
)

// BlockType is the kind of function block.
type BlockType int

// Block types.
const (
	BlockPE BlockType = iota
	BlockSMB
	BlockCLB
)

// String renders the block type.
func (t BlockType) String() string {
	switch t {
	case BlockPE:
		return "PE"
	case BlockSMB:
		return "SMB"
	case BlockCLB:
		return "CLB"
	default:
		return fmt.Sprintf("block(%d)", int(t))
	}
}

// Block is one function-block instance.
type Block struct {
	ID   int
	Type BlockType
	Name string
	// GroupID links PEs (and their buffers/controllers) back to the
	// core-op weight group they serve; −1 when not applicable.
	GroupID int
	// Copy distinguishes duplicated PEs of one group.
	Copy int
	// Fault is the residual stuck-cell count of a PE's crossbar under the
	// deployment's fault model (after spare-row/column remapping) — the
	// placement cost penalty weight. 0 for non-PE blocks and unfaulted
	// deployments.
	Fault int
}

// Net is one logical connection from a source block to sink blocks. The
// Signals field is the bundle width (number of spike-train wires the net
// carries); the router expands wide nets into that many routed signals.
type Net struct {
	ID      int
	Src     int
	Sinks   []int
	Signals int
}

// Netlist is the mapper's output.
type Netlist struct {
	Name   string
	Blocks []Block
	Nets   []Net
}

// AddBlock appends a block and returns its ID.
func (n *Netlist) AddBlock(t BlockType, name string, groupID, copyIdx int) int {
	id := len(n.Blocks)
	n.Blocks = append(n.Blocks, Block{ID: id, Type: t, Name: name, GroupID: groupID, Copy: copyIdx})
	return id
}

// AddNet appends a net and returns its ID.
func (n *Netlist) AddNet(src int, sinks []int, signals int) int {
	id := len(n.Nets)
	n.Nets = append(n.Nets, Net{ID: id, Src: src, Sinks: append([]int(nil), sinks...), Signals: signals})
	return id
}

// Counts returns the number of blocks of each type.
func (n *Netlist) Counts() (pes, smbs, clbs int) {
	for _, b := range n.Blocks {
		switch b.Type {
		case BlockPE:
			pes++
		case BlockSMB:
			smbs++
		case BlockCLB:
			clbs++
		}
	}
	return
}

// AreaUM2 returns the total function-block area. The mrFPGA routing fabric
// is stacked above the blocks in metal layers M5-M9 and occupies less area
// than the blocks (paper §6.1), so block area is chip area.
func (n *Netlist) AreaUM2(p device.Params) float64 {
	pes, smbs, clbs := n.Counts()
	return float64(pes)*p.PETotal.AreaUM2 + float64(smbs)*p.SMB.AreaUM2 + float64(clbs)*p.CLB.AreaUM2
}

// Validate checks referential integrity.
func (n *Netlist) Validate() error {
	for _, net := range n.Nets {
		if net.Src < 0 || net.Src >= len(n.Blocks) {
			return fmt.Errorf("netlist: net %d source %d out of range", net.ID, net.Src)
		}
		if len(net.Sinks) == 0 {
			return fmt.Errorf("netlist: net %d has no sinks", net.ID)
		}
		if net.Signals <= 0 {
			return fmt.Errorf("netlist: net %d has %d signals", net.ID, net.Signals)
		}
		for _, s := range net.Sinks {
			if s < 0 || s >= len(n.Blocks) {
				return fmt.Errorf("netlist: net %d sink %d out of range", net.ID, s)
			}
			if s == net.Src {
				return fmt.Errorf("netlist: net %d loops back to its source", net.ID)
			}
		}
	}
	for i, b := range n.Blocks {
		if b.ID != i {
			return fmt.Errorf("netlist: block %q ID %d at index %d", b.Name, b.ID, i)
		}
	}
	return nil
}
