package netlist

import (
	"strings"
	"testing"

	"fpsa/internal/device"
)

func TestAddBlockAndCounts(t *testing.T) {
	nl := &Netlist{Name: "n"}
	nl.AddBlock(BlockPE, "pe0", 0, 0)
	nl.AddBlock(BlockPE, "pe1", 0, 1)
	nl.AddBlock(BlockSMB, "buf", 0, 0)
	nl.AddBlock(BlockCLB, "ctl", -1, 0)
	pes, smbs, clbs := nl.Counts()
	if pes != 2 || smbs != 1 || clbs != 1 {
		t.Errorf("counts = %d,%d,%d", pes, smbs, clbs)
	}
}

func TestBlockTypeString(t *testing.T) {
	if BlockPE.String() != "PE" || BlockSMB.String() != "SMB" || BlockCLB.String() != "CLB" {
		t.Error("block type names wrong")
	}
	if !strings.Contains(BlockType(9).String(), "9") {
		t.Error("unknown type rendering")
	}
}

func TestAreaUM2(t *testing.T) {
	nl := &Netlist{}
	nl.AddBlock(BlockPE, "pe", 0, 0)
	nl.AddBlock(BlockSMB, "smb", 0, 0)
	p := device.Params45nm
	want := p.PETotal.AreaUM2 + p.SMB.AreaUM2
	if got := nl.AreaUM2(p); got != want {
		t.Errorf("AreaUM2 = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	good := &Netlist{}
	a := good.AddBlock(BlockPE, "a", 0, 0)
	b := good.AddBlock(BlockPE, "b", 1, 0)
	good.AddNet(a, []int{b}, 4)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}

	cases := []struct {
		name  string
		build func() *Netlist
	}{
		{"bad source", func() *Netlist {
			nl := &Netlist{}
			s := nl.AddBlock(BlockPE, "a", 0, 0)
			nl.AddNet(s, []int{s + 1}, 1) // sink out of range
			return nl
		}},
		{"no sinks", func() *Netlist {
			nl := &Netlist{}
			s := nl.AddBlock(BlockPE, "a", 0, 0)
			nl.AddNet(s, nil, 1)
			return nl
		}},
		{"zero signals", func() *Netlist {
			nl := &Netlist{}
			s := nl.AddBlock(BlockPE, "a", 0, 0)
			d := nl.AddBlock(BlockPE, "b", 0, 0)
			nl.AddNet(s, []int{d}, 0)
			return nl
		}},
		{"self loop", func() *Netlist {
			nl := &Netlist{}
			s := nl.AddBlock(BlockPE, "a", 0, 0)
			nl.AddNet(s, []int{s}, 1)
			return nl
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.build().Validate(); err == nil {
				t.Error("defect not caught")
			}
		})
	}
}
