// Package models provides the paper's seven benchmark networks (Table 3)
// as computational graphs with layer-exact shapes: MLP-500-100 and LeNet
// for MNIST, a reconstructed VGG17 for CIFAR-10, and AlexNet, VGG16,
// GoogLeNet and ResNet-152 for ImageNet. The weight and op totals reproduce
// the published "# of weights" / "# of ops" columns (the test suite pins
// the tolerances; CIFAR-VGG17 has no published layer table and is
// reconstructed to land on the published totals).
package models

import (
	"fmt"
	"sort"

	"fpsa/internal/cgraph"
)

// Names of the benchmark models, in Table 3 order.
const (
	NameMLP       = "MLP-500-100"
	NameLeNet     = "LeNet"
	NameVGG17     = "CIFAR-VGG17"
	NameAlexNet   = "AlexNet"
	NameVGG16     = "VGG16"
	NameGoogLeNet = "GoogLeNet"
	NameResNet152 = "ResNet152"
)

// builders maps model names to constructors.
var builders = map[string]func() *cgraph.Graph{
	NameMLP:       MLP500_100,
	NameLeNet:     LeNet,
	NameVGG17:     CIFARVGG17,
	NameAlexNet:   AlexNet,
	NameVGG16:     VGG16,
	NameGoogLeNet: GoogLeNet,
	NameResNet152: ResNet152,
}

// tableOrder is Table 3's column order.
var tableOrder = []string{
	NameMLP, NameLeNet, NameVGG17, NameAlexNet, NameVGG16, NameGoogLeNet, NameResNet152,
}

// Names returns the benchmark model names in Table 3 order.
func Names() []string { return append([]string(nil), tableOrder...) }

// ByName builds the named benchmark model.
func ByName(name string) (*cgraph.Graph, error) {
	b, ok := builders[name]
	if !ok {
		known := make([]string, 0, len(builders))
		for k := range builders {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("models: unknown model %q (known: %v)", name, known)
	}
	return b(), nil
}

// All builds every benchmark model in Table 3 order.
func All() []*cgraph.Graph {
	gs := make([]*cgraph.Graph, len(tableOrder))
	for i, name := range tableOrder {
		gs[i] = builders[name]()
	}
	return gs
}

// MLP500_100 is the paper's MLP with two hidden layers of 500 and 100
// neurons on 28×28 MNIST inputs: 443.0K weights, 886.0K ops.
func MLP500_100() *cgraph.Graph {
	g := cgraph.New(NameMLP)
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(784)})
	h1 := g.MustAdd("fc1", cgraph.FC{Out: 500}, in)
	h1 = g.MustAdd("relu1", cgraph.ReLU{}, h1)
	h2 := g.MustAdd("fc2", cgraph.FC{Out: 100}, h1)
	h2 = g.MustAdd("relu2", cgraph.ReLU{}, h2)
	out := g.MustAdd("fc3", cgraph.FC{Out: 10}, h2)
	g.MustAdd("softmax", cgraph.Softmax{}, out)
	return g
}

// LeNet is the Caffe LeNet variant the paper benchmarks (20/50 conv
// filters, 500-unit FC): 430.5K weights, 4.6M ops.
func LeNet() *cgraph.Graph {
	g := cgraph.New(NameLeNet)
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 1, H: 28, W: 28}})
	c1 := g.MustAdd("conv1", cgraph.Conv2D{OutC: 20, Kernel: 5, Stride: 1}, in)
	p1 := g.MustAdd("pool1", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, c1)
	c2 := g.MustAdd("conv2", cgraph.Conv2D{OutC: 50, Kernel: 5, Stride: 1}, p1)
	p2 := g.MustAdd("pool2", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, c2)
	fl := g.MustAdd("flatten", cgraph.Flatten{}, p2)
	f1 := g.MustAdd("fc1", cgraph.FC{Out: 500}, fl)
	r1 := g.MustAdd("relu1", cgraph.ReLU{}, f1)
	f2 := g.MustAdd("fc2", cgraph.FC{Out: 10}, r1)
	g.MustAdd("softmax", cgraph.Softmax{}, f2)
	return g
}

// CIFARVGG17 is the reconstructed 17-layer VGG-style CIFAR-10 network
// (§"Known deviations" in DESIGN.md): 16 weight layers of 3×3 convolutions
// in three resolution blocks plus a classifier FC, tuned to the published
// 1.1M weights / 333.4M ops (measured: 1.063M / 345.3M, within 4%).
func CIFARVGG17() *cgraph.Graph {
	const (
		c      = 36  // base width
		blockC = 152 // third-block width (tuned; see doc comment)
	)
	g := cgraph.New(NameVGG17)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 32, W: 32}})
	conv := func(name string, outC int, in *cgraph.Node) *cgraph.Node {
		n := g.MustAdd(name, cgraph.Conv2D{OutC: outC, Kernel: 3, Stride: 1, Pad: 1}, in)
		return g.MustAdd(name+"_relu", cgraph.ReLU{}, n)
	}
	pool := func(name string, in *cgraph.Node) *cgraph.Node {
		return g.MustAdd(name, cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, in)
	}
	// Block A: 6 convs at 32×32.
	x = conv("conv1_1", c, x)
	for i := 2; i <= 6; i++ {
		x = conv(fmt.Sprintf("conv1_%d", i), c, x)
	}
	x = pool("pool1", x)
	// Block B: 6 convs at 16×16.
	x = conv("conv2_1", 2*c, x)
	for i := 2; i <= 6; i++ {
		x = conv(fmt.Sprintf("conv2_%d", i), 2*c, x)
	}
	x = pool("pool2", x)
	// Block C: 4 convs at 8×8.
	x = conv("conv3_1", blockC, x)
	for i := 2; i <= 4; i++ {
		x = conv(fmt.Sprintf("conv3_%d", i), blockC, x)
	}
	x = pool("pool3", x)
	fl := g.MustAdd("flatten", cgraph.Flatten{}, x)
	fc := g.MustAdd("fc", cgraph.FC{Out: 10}, fl)
	g.MustAdd("softmax", cgraph.Softmax{}, fc)
	return g
}

// AlexNet is the original grouped AlexNet on 227×227 ImageNet inputs:
// 60.6M weights, 1.4G ops.
func AlexNet() *cgraph.Graph {
	g := cgraph.New(NameAlexNet)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 227, W: 227}})
	x = g.MustAdd("conv1", cgraph.Conv2D{OutC: 96, Kernel: 11, Stride: 4}, x)
	x = g.MustAdd("relu1", cgraph.ReLU{}, x)
	x = g.MustAdd("lrn1", cgraph.LRN{}, x)
	x = g.MustAdd("pool1", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2}, x)
	x = g.MustAdd("conv2", cgraph.Conv2D{OutC: 256, Kernel: 5, Stride: 1, Pad: 2, Groups: 2}, x)
	x = g.MustAdd("relu2", cgraph.ReLU{}, x)
	x = g.MustAdd("lrn2", cgraph.LRN{}, x)
	x = g.MustAdd("pool2", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2}, x)
	x = g.MustAdd("conv3", cgraph.Conv2D{OutC: 384, Kernel: 3, Stride: 1, Pad: 1}, x)
	x = g.MustAdd("relu3", cgraph.ReLU{}, x)
	x = g.MustAdd("conv4", cgraph.Conv2D{OutC: 384, Kernel: 3, Stride: 1, Pad: 1, Groups: 2}, x)
	x = g.MustAdd("relu4", cgraph.ReLU{}, x)
	x = g.MustAdd("conv5", cgraph.Conv2D{OutC: 256, Kernel: 3, Stride: 1, Pad: 1, Groups: 2}, x)
	x = g.MustAdd("relu5", cgraph.ReLU{}, x)
	x = g.MustAdd("pool5", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2}, x)
	x = g.MustAdd("flatten", cgraph.Flatten{}, x)
	x = g.MustAdd("fc6", cgraph.FC{Out: 4096}, x)
	x = g.MustAdd("relu6", cgraph.ReLU{}, x)
	x = g.MustAdd("drop6", cgraph.Dropout{}, x)
	x = g.MustAdd("fc7", cgraph.FC{Out: 4096}, x)
	x = g.MustAdd("relu7", cgraph.ReLU{}, x)
	x = g.MustAdd("drop7", cgraph.Dropout{}, x)
	x = g.MustAdd("fc8", cgraph.FC{Out: 1000}, x)
	g.MustAdd("softmax", cgraph.Softmax{}, x)
	return g
}

// VGG16 is the standard configuration-D VGG on 224×224 ImageNet inputs:
// 138.3M weights, 30.9G ops.
func VGG16() *cgraph.Graph {
	g := cgraph.New(NameVGG16)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 224, W: 224}})
	conv := func(name string, outC int, in *cgraph.Node) *cgraph.Node {
		n := g.MustAdd(name, cgraph.Conv2D{OutC: outC, Kernel: 3, Stride: 1, Pad: 1}, in)
		return g.MustAdd(name+"_relu", cgraph.ReLU{}, n)
	}
	pool := func(name string, in *cgraph.Node) *cgraph.Node {
		return g.MustAdd(name, cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, in)
	}
	blocks := []struct {
		name  string
		outC  int
		convs int
	}{
		{"conv1", 64, 2}, {"conv2", 128, 2}, {"conv3", 256, 3}, {"conv4", 512, 3}, {"conv5", 512, 3},
	}
	for _, b := range blocks {
		for i := 1; i <= b.convs; i++ {
			x = conv(fmt.Sprintf("%s_%d", b.name, i), b.outC, x)
		}
		x = pool(b.name+"_pool", x)
	}
	x = g.MustAdd("flatten", cgraph.Flatten{}, x)
	x = g.MustAdd("fc6", cgraph.FC{Out: 4096}, x)
	x = g.MustAdd("relu6", cgraph.ReLU{}, x)
	x = g.MustAdd("fc7", cgraph.FC{Out: 4096}, x)
	x = g.MustAdd("relu7", cgraph.ReLU{}, x)
	x = g.MustAdd("fc8", cgraph.FC{Out: 1000}, x)
	g.MustAdd("softmax", cgraph.Softmax{}, x)
	return g
}
