package models

import (
	"math"
	"testing"

	"fpsa/internal/cgraph"
)

// table3 pins the published "# of weights" and "# of ops" columns and the
// tolerance we hold each reconstruction to (CIFAR-VGG17 has no published
// layer table; ResNet-152's published weight count appears to exclude the
// classifier FC — see EXPERIMENTS.md).
var table3 = []struct {
	name       string
	weights    float64
	ops        float64
	weightsTol float64
	opsTol     float64
}{
	{NameMLP, 443.0e3, 886.0e3, 0.001, 0.001},
	{NameLeNet, 430.5e3, 4.6e6, 0.001, 0.005},
	{NameVGG17, 1.1e6, 333.4e6, 0.04, 0.04},
	{NameAlexNet, 60.6e6, 1.4e9, 0.01, 0.04},
	{NameVGG16, 138.3e6, 30.9e9, 0.001, 0.002},
	{NameGoogLeNet, 7.0e6, 3.2e9, 0.005, 0.015},
	{NameResNet152, 57.7e6, 22.6e9, 0.05, 0.005},
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestTable3WeightAndOpCounts(t *testing.T) {
	for _, tc := range table3 {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			s := g.Summary()
			if e := relErr(float64(s.Weights), tc.weights); e > tc.weightsTol {
				t.Errorf("weights = %d, published %.4g (rel err %.3f > %.3f)", s.Weights, tc.weights, e, tc.weightsTol)
			}
			if e := relErr(float64(s.Ops), tc.ops); e > tc.opsTol {
				t.Errorf("ops = %d, published %.4g (rel err %.3f > %.3f)", s.Ops, tc.ops, e, tc.opsTol)
			}
		})
	}
}

func TestAllGraphsValidate(t *testing.T) {
	for _, g := range All() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		outs := g.Outputs()
		if len(outs) != 1 {
			t.Errorf("%s: %d outputs, want 1", g.Name, len(outs))
		}
		if len(outs) == 1 && outs[0].OutShape.Elems() != 10 && outs[0].OutShape.Elems() != 1000 {
			t.Errorf("%s: classifier width %d", g.Name, outs[0].OutShape.Elems())
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NotANet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestNamesOrderMatchesTable3(t *testing.T) {
	names := Names()
	want := []string{NameMLP, NameLeNet, NameVGG17, NameAlexNet, NameVGG16, NameGoogLeNet, NameResNet152}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestVGG16LayerShapes(t *testing.T) {
	g := VGG16()
	shapes := map[string]cgraph.Shape{
		"conv1_2": {C: 64, H: 224, W: 224},
		"conv3_3": {C: 256, H: 56, W: 56},
		"conv5_3": {C: 512, H: 14, W: 14},
		"fc6":     cgraph.Vec(4096),
		"fc8":     cgraph.Vec(1000),
	}
	found := 0
	for _, n := range g.Nodes() {
		if want, ok := shapes[n.Name]; ok {
			found++
			if n.OutShape != want {
				t.Errorf("%s shape = %v, want %v", n.Name, n.OutShape, want)
			}
		}
	}
	if found != len(shapes) {
		t.Errorf("found %d/%d probe layers", found, len(shapes))
	}
}

func TestAlexNetConv1Shape(t *testing.T) {
	g := AlexNet()
	for _, n := range g.Nodes() {
		if n.Name == "conv1" {
			if n.OutShape != (cgraph.Shape{C: 96, H: 55, W: 55}) {
				t.Errorf("conv1 shape = %v, want 96x55x55", n.OutShape)
			}
			return
		}
	}
	t.Fatal("conv1 not found")
}

func TestGoogLeNetInceptionWidths(t *testing.T) {
	g := GoogLeNet()
	widths := map[string]int{
		"inc3a_concat": 256,
		"inc3b_concat": 480,
		"inc4e_concat": 832,
		"inc5b_concat": 1024,
	}
	found := 0
	for _, n := range g.Nodes() {
		if want, ok := widths[n.Name]; ok {
			found++
			if n.OutShape.C != want {
				t.Errorf("%s channels = %d, want %d", n.Name, n.OutShape.C, want)
			}
		}
	}
	if found != len(widths) {
		t.Errorf("found %d/%d inception outputs", found, len(widths))
	}
}

func TestResNet152Structure(t *testing.T) {
	g := ResNet152()
	// 1 stem conv + 3×(3) + 8×3 + 36×3 + 3×3 bottleneck convs + 4
	// projections + 1 FC = 156 weight layers ("152" counts conv+fc).
	weightLayers := 0
	for _, n := range g.Nodes() {
		switch n.Op.(type) {
		case cgraph.Conv2D, cgraph.FC:
			weightLayers++
		}
	}
	if weightLayers != 156 {
		t.Errorf("weight layers = %d, want 156 (152 named + 4 projections)", weightLayers)
	}
	// Final feature map before global pooling is 2048×7×7.
	for _, n := range g.Nodes() {
		if n.Name == "res5_3_relu" {
			if n.OutShape != (cgraph.Shape{C: 2048, H: 7, W: 7}) {
				t.Errorf("res5_3 out = %v, want 2048x7x7", n.OutShape)
			}
		}
	}
}

func TestGraphsAreIndependent(t *testing.T) {
	a, b := VGG16(), VGG16()
	if a.Nodes()[0] == b.Nodes()[0] {
		t.Error("two builds share nodes")
	}
}
