package models

import (
	"fmt"

	"fpsa/internal/cgraph"
)

// ResNet152 is the 152-layer residual network with bottleneck blocks
// ([3, 8, 36, 3] per stage) on 224×224 ImageNet inputs: 57.7M weights,
// 22.6G ops (BatchNorm folds into the convolutions at synthesis time and
// carries no counted weights).
func ResNet152() *cgraph.Graph {
	g := cgraph.New(NameResNet152)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 224, W: 224}})
	x = g.MustAdd("conv1", cgraph.Conv2D{OutC: 64, Kernel: 7, Stride: 2, Pad: 3}, x)
	x = g.MustAdd("conv1_bn", cgraph.BatchNorm{}, x)
	x = g.MustAdd("conv1_relu", cgraph.ReLU{}, x)
	x = g.MustAdd("pool1", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2, Pad: 1}, x)

	stages := []struct {
		name   string
		mid    int // bottleneck width
		out    int // expansion width (4×mid)
		blocks int
		stride int // first block's spatial stride
	}{
		{"res2", 64, 256, 3, 1},
		{"res3", 128, 512, 8, 2},
		{"res4", 256, 1024, 36, 2},
		{"res5", 512, 2048, 3, 2},
	}
	for _, st := range stages {
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			x = bottleneck(g, fmt.Sprintf("%s_%d", st.name, b+1), st.mid, st.out, stride, b == 0, x)
		}
	}

	x = g.MustAdd("gap", cgraph.GlobalAvgPool{}, x)
	x = g.MustAdd("fc", cgraph.FC{Out: 1000}, x)
	g.MustAdd("softmax", cgraph.Softmax{}, x)
	return g
}

// bottleneck appends one 1×1→3×3→1×1 residual block; the first block of a
// stage carries a projection shortcut.
func bottleneck(g *cgraph.Graph, name string, mid, out, stride int, project bool, in *cgraph.Node) *cgraph.Node {
	convBN := func(suffix string, op cgraph.Conv2D, src *cgraph.Node, relu bool) *cgraph.Node {
		n := g.MustAdd(name+suffix, op, src)
		n = g.MustAdd(name+suffix+"_bn", cgraph.BatchNorm{}, n)
		if relu {
			n = g.MustAdd(name+suffix+"_relu", cgraph.ReLU{}, n)
		}
		return n
	}
	branch := convBN("_a", cgraph.Conv2D{OutC: mid, Kernel: 1, Stride: stride}, in, true)
	branch = convBN("_b", cgraph.Conv2D{OutC: mid, Kernel: 3, Stride: 1, Pad: 1}, branch, true)
	branch = convBN("_c", cgraph.Conv2D{OutC: out, Kernel: 1, Stride: 1}, branch, false)
	shortcut := in
	if project {
		shortcut = convBN("_proj", cgraph.Conv2D{OutC: out, Kernel: 1, Stride: stride}, in, false)
	}
	sum := g.MustAdd(name+"_add", cgraph.Add{}, branch, shortcut)
	return g.MustAdd(name+"_relu", cgraph.ReLU{}, sum)
}
