package models

import (
	"fmt"

	"fpsa/internal/cgraph"
)

// inceptionSpec is one GoogLeNet inception module's branch widths.
type inceptionSpec struct {
	name     string
	c1x1     int // 1×1 branch
	c3x3r    int // 3×3 reduce
	c3x3     int // 3×3 branch
	c5x5r    int // 5×5 reduce
	c5x5     int // 5×5 branch
	poolProj int // pool-projection branch
}

// GoogLeNet is the 22-layer inception-v1 network (9 inception modules) on
// 224×224 ImageNet inputs, auxiliary classifiers excluded as in the
// deployed inference graph: 7.0M weights, 3.2G ops.
func GoogLeNet() *cgraph.Graph {
	g := cgraph.New(NameGoogLeNet)
	x := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 224, W: 224}})
	x = g.MustAdd("conv1", cgraph.Conv2D{OutC: 64, Kernel: 7, Stride: 2, Pad: 3}, x)
	x = g.MustAdd("conv1_relu", cgraph.ReLU{}, x)
	x = g.MustAdd("pool1", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2, Pad: 1}, x)
	x = g.MustAdd("lrn1", cgraph.LRN{}, x)
	x = g.MustAdd("conv2_reduce", cgraph.Conv2D{OutC: 64, Kernel: 1, Stride: 1}, x)
	x = g.MustAdd("conv2_reduce_relu", cgraph.ReLU{}, x)
	x = g.MustAdd("conv2", cgraph.Conv2D{OutC: 192, Kernel: 3, Stride: 1, Pad: 1}, x)
	x = g.MustAdd("conv2_relu", cgraph.ReLU{}, x)
	x = g.MustAdd("lrn2", cgraph.LRN{}, x)
	x = g.MustAdd("pool2", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2, Pad: 1}, x)

	specs3 := []inceptionSpec{
		{"3a", 64, 96, 128, 16, 32, 32},
		{"3b", 128, 128, 192, 32, 96, 64},
	}
	for _, s := range specs3 {
		x = inception(g, s, x)
	}
	x = g.MustAdd("pool3", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2, Pad: 1}, x)

	specs4 := []inceptionSpec{
		{"4a", 192, 96, 208, 16, 48, 64},
		{"4b", 160, 112, 224, 24, 64, 64},
		{"4c", 128, 128, 256, 24, 64, 64},
		{"4d", 112, 144, 288, 32, 64, 64},
		{"4e", 256, 160, 320, 32, 128, 128},
	}
	for _, s := range specs4 {
		x = inception(g, s, x)
	}
	x = g.MustAdd("pool4", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 2, Pad: 1}, x)

	specs5 := []inceptionSpec{
		{"5a", 256, 160, 320, 32, 128, 128},
		{"5b", 384, 192, 384, 48, 128, 128},
	}
	for _, s := range specs5 {
		x = inception(g, s, x)
	}

	x = g.MustAdd("gap", cgraph.GlobalAvgPool{}, x)
	x = g.MustAdd("drop", cgraph.Dropout{}, x)
	x = g.MustAdd("fc", cgraph.FC{Out: 1000}, x)
	g.MustAdd("softmax", cgraph.Softmax{}, x)
	return g
}

// inception appends one inception module and returns its concat output.
func inception(g *cgraph.Graph, s inceptionSpec, in *cgraph.Node) *cgraph.Node {
	p := func(branch string) string { return fmt.Sprintf("inc%s_%s", s.name, branch) }
	convRelu := func(name string, op cgraph.Conv2D, src *cgraph.Node) *cgraph.Node {
		n := g.MustAdd(name, op, src)
		return g.MustAdd(name+"_relu", cgraph.ReLU{}, n)
	}
	b1 := convRelu(p("1x1"), cgraph.Conv2D{OutC: s.c1x1, Kernel: 1, Stride: 1}, in)
	b2 := convRelu(p("3x3r"), cgraph.Conv2D{OutC: s.c3x3r, Kernel: 1, Stride: 1}, in)
	b2 = convRelu(p("3x3"), cgraph.Conv2D{OutC: s.c3x3, Kernel: 3, Stride: 1, Pad: 1}, b2)
	b3 := convRelu(p("5x5r"), cgraph.Conv2D{OutC: s.c5x5r, Kernel: 1, Stride: 1}, in)
	b3 = convRelu(p("5x5"), cgraph.Conv2D{OutC: s.c5x5, Kernel: 5, Stride: 1, Pad: 2}, b3)
	b4 := g.MustAdd(p("pool"), cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 3, Stride: 1, Pad: 1}, in)
	b4 = convRelu(p("proj"), cgraph.Conv2D{OutC: s.poolProj, Kernel: 1, Stride: 1}, b4)
	return g.MustAdd(p("concat"), cgraph.Concat{}, b1, b2, b3, b4)
}
