package synth

import (
	"fmt"
	"math"

	"fpsa/internal/coreop"
)

// tileMatrix splits a rows×cols logical weight matrix into crossbar-sized
// groups and returns the group IDs that carry the layer's outputs, plus
// (for functional synthesis) the execution refs of each logical output.
//
// When the matrix fits the crossbar's rows, tiles hold signed weights
// directly and are the outputs. When row-split, each tile emits
// positive/negative partial-sum pairs (footprint cost: 2× columns) and a
// reduction group per column chunk recombines them: ReLU(Σ(p⁺ − p⁻))
// equals the true ReLU activation. The column chunk is sized so one
// reduction group covers it exactly, keeping tile→reduction routing
// self-contained.
func (s *synthesizer) tileMatrix(name, layer string, rows, cols, reuse int, deps []int, weights [][]float64, inRefs []ExecRef) ([]int, []ExecRef, error) {
	if rows <= 0 || cols <= 0 {
		return nil, nil, fmt.Errorf("tileMatrix %q: empty matrix %dx%d", name, rows, cols)
	}
	if weights != nil && inRefs == nil {
		return nil, nil, fmt.Errorf("tileMatrix %q: weights supplied but producer refs unavailable", name)
	}
	rowTiles := (rows + s.maxRows - 1) / s.maxRows
	if rowTiles == 1 {
		return s.tileUnsplit(name, layer, rows, cols, reuse, deps, weights, inRefs)
	}
	return s.tileRowSplit(name, layer, rows, cols, reuse, deps, weights, inRefs, rowTiles)
}

// quantize maps float weights to the representable integer grid with one
// scale for the whole layer.
func (s *synthesizer) quantize(weights [][]float64) [][]int {
	maxW := 0.0
	for _, row := range weights {
		for _, w := range row {
			if a := math.Abs(w); a > maxW {
				maxW = a
			}
		}
	}
	limit := s.peMaxWeight()
	scale := 0.0
	if maxW > 0 {
		scale = float64(limit) / maxW
	}
	q := make([][]int, len(weights))
	for i, row := range weights {
		q[i] = make([]int, len(row))
		for j, w := range row {
			q[i][j] = int(math.Round(w * scale))
		}
	}
	return q
}

// peMaxWeight returns the representable magnitude of the evaluated add
// method (CellsPerWeight 4-bit cells per polarity).
func (s *synthesizer) peMaxWeight() int {
	return s.opts.Params.CellsPerWeight * 15
}

// safeEta returns the saturation-safe neuron threshold for signed integer
// matrices: the largest single-polarity column drive sum across all tiles.
func safeEta(tiles ...[][]int) float64 {
	worst := 0.0
	for _, m := range tiles {
		if len(m) == 0 {
			continue
		}
		for j := range m[0] {
			var pos, neg float64
			for i := range m {
				w := float64(m[i][j])
				if w >= 0 {
					pos += w
				} else {
					neg += -w
				}
			}
			if pos > worst {
				worst = pos
			}
			if neg > worst {
				worst = neg
			}
		}
	}
	if worst < 1 {
		worst = 1
	}
	return worst
}

// newGroup builds a group with the common fields filled in.
func newGroup(layer, name string, kind coreop.Kind, rows, cols, reuse int, deps []int) *coreop.Group {
	return &coreop.Group{
		Layer: layer,
		Name:  name,
		Kind:  kind,
		Rows:  rows,
		Cols:  cols,
		Reuse: reuse,
		Deps:  append([]int(nil), deps...),
	}
}

// tileUnsplit handles matrices that fit the crossbar rows.
func (s *synthesizer) tileUnsplit(name, layer string, rows, cols, reuse int, deps []int, weights [][]float64, inRefs []ExecRef) ([]int, []ExecRef, error) {
	var q [][]int
	var eta float64
	if weights != nil {
		q = s.quantize(weights)
		eta = safeEta(q)
	}
	var ids []int
	var outRefs []ExecRef
	colTiles := (cols + s.maxCols - 1) / s.maxCols
	for ct := 0; ct < colTiles; ct++ {
		c0 := ct * s.maxCols
		c1 := min(c0+s.maxCols, cols)
		tn := name
		if colTiles > 1 {
			tn = fmt.Sprintf("%s.c%d", name, ct)
		}
		grp := s.out.AddGroup(newGroup(layer, tn, coreop.KindCompute, rows, c1-c0, reuse, deps))
		grp.UsefulWeights = int64(rows) * int64(c1-c0)
		if q != nil {
			w := make([][]int, rows)
			for r := 0; r < rows; r++ {
				w[r] = append([]int(nil), q[r][c0:c1]...)
			}
			grp.Weights = w
			grp.Eta = eta
			stage := s.recordStage(grp.ID, inRefs[:rows:rows])
			for k := 0; k < c1-c0; k++ {
				outRefs = append(outRefs, ExecRef{Stage: stage, Col: k})
			}
		}
		ids = append(ids, grp.ID)
	}
	return ids, outRefs, nil
}

// tileRowSplit handles matrices taller than the crossbar.
//
// Shape-only synthesis follows the paper's accounting: the partial counts
// of row tiles are summed digitally by the consumer-side SMB's embedded
// counters (§4.3's counters accumulate trains for free), and the per-tile
// ReLU placement is absorbed by the NN compiler's fine-tuning [19, 20] —
// so splitting costs no extra PEs beyond the weight-capacity bound.
//
// Functional synthesis is numerically exact on PE semantics instead: tiles
// emit positive/negative partial pairs (2× column footprint) and explicit
// reduction core-ops compute ReLU(Σ(p⁺−p⁻)), reproducing the true
// activation bit-for-bit in count space.
func (s *synthesizer) tileRowSplit(name, layer string, rows, cols, reuse int, deps []int, weights [][]float64, inRefs []ExecRef, rowTiles int) ([]int, []ExecRef, error) {
	if weights == nil {
		return s.tileRowSplitShape(name, layer, rows, cols, reuse, deps, rowTiles)
	}
	return s.tileRowSplitExact(name, layer, rows, cols, reuse, deps, weights, inRefs, rowTiles)
}

// tileRowSplitShape is the paper-accounting variant (no weights): plain
// ceil-tiling, partial sums merged in SMB counters.
func (s *synthesizer) tileRowSplitShape(name, layer string, rows, cols, reuse int, deps []int, rowTiles int) ([]int, []ExecRef, error) {
	var outIDs []int
	colTiles := (cols + s.maxCols - 1) / s.maxCols
	for ct := 0; ct < colTiles; ct++ {
		c0 := ct * s.maxCols
		c1 := min(c0+s.maxCols, cols)
		width := c1 - c0
		for rt := 0; rt < rowTiles; rt++ {
			r0 := rt * s.maxRows
			r1 := min(r0+s.maxRows, rows)
			grp := s.out.AddGroup(newGroup(layer,
				fmt.Sprintf("%s.t%d.%d", name, rt, ct), coreop.KindCompute, r1-r0, width, reuse, deps))
			grp.UsefulWeights = int64(r1-r0) * int64(width)
			outIDs = append(outIDs, grp.ID)
		}
	}
	return outIDs, nil, nil
}

// tileRowSplitExact is the numerically exact functional variant.
func (s *synthesizer) tileRowSplitExact(name, layer string, rows, cols, reuse int, deps []int, weights [][]float64, inRefs []ExecRef, rowTiles int) ([]int, []ExecRef, error) {
	redRowsPerOut := 2 * rowTiles
	pack := s.maxRows / redRowsPerOut
	if pack == 0 {
		return nil, nil, fmt.Errorf("tileMatrix %q: %d row tiles need hierarchical reduction (unsupported)", name, rowTiles)
	}
	colCap := s.maxCols / 2 // ± pairs halve the per-tile output width
	q := s.quantize(weights)
	eta := safeEta(q)
	maxW := s.peMaxWeight()
	var outIDs []int
	var outRefs []ExecRef
	colTiles := (cols + colCap - 1) / colCap
	for ct := 0; ct < colTiles; ct++ {
		c0 := ct * colCap
		c1 := min(c0+colCap, cols)
		width := c1 - c0
		tileIDs := make([]int, rowTiles)
		tileStages := make([]int, rowTiles)
		for rt := 0; rt < rowTiles; rt++ {
			r0 := rt * s.maxRows
			r1 := min(r0+s.maxRows, rows)
			grp := s.out.AddGroup(newGroup(layer,
				fmt.Sprintf("%s.t%d.%d", name, rt, ct), coreop.KindCompute, r1-r0, 2*width, reuse, deps))
			grp.UsefulWeights = int64(r1-r0) * int64(2*width)
			w := make([][]int, r1-r0)
			for r := r0; r < r1; r++ {
				row := make([]int, 2*width)
				for k := c0; k < c1; k++ {
					row[2*(k-c0)] = q[r][k]
					row[2*(k-c0)+1] = -q[r][k]
				}
				w[r-r0] = row
			}
			grp.Weights = w
			grp.Eta = eta
			tileStages[rt] = s.recordStage(grp.ID, inRefs[r0:r1:r1])
			tileIDs[rt] = grp.ID
		}
		for o0, ri := 0, 0; o0 < width; o0, ri = o0+pack, ri+1 {
			o1 := min(o0+pack, width)
			redW := o1 - o0
			red := s.out.AddGroup(newGroup(layer,
				fmt.Sprintf("%s.red%d.%d", name, ct, ri), coreop.KindReduce,
				redRowsPerOut*redW, redW, reuse, tileIDs))
			red.UsefulWeights = int64(redRowsPerOut) * int64(redW)
			w := make([][]int, redRowsPerOut*redW)
			for i := range w {
				w[i] = make([]int, redW)
			}
			refs := make([]ExecRef, 0, redRowsPerOut*redW)
			for k := 0; k < redW; k++ {
				for t := 0; t < rowTiles; t++ {
					rowP := k*redRowsPerOut + 2*t
					w[rowP][k] = maxW
					w[rowP+1][k] = -maxW
					refs = append(refs,
						ExecRef{Stage: tileStages[t], Col: 2 * (o0 + k)},
						ExecRef{Stage: tileStages[t], Col: 2*(o0+k) + 1})
				}
			}
			red.Weights = w
			red.Eta = safeEta(w)
			stage := s.recordStage(red.ID, refs)
			for k := 0; k < redW; k++ {
				outRefs = append(outRefs, ExecRef{Stage: stage, Col: k})
			}
			outIDs = append(outIDs, red.ID)
		}
	}
	return outIDs, outRefs, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
