package synth

import (
	"math/rand"
	"sync"
	"testing"

	"fpsa/internal/shard"
)

// pipelineAt builds a pipeline executor over prog cut into (up to) chips
// segments, failing the test on any construction error.
func pipelineAt(t *testing.T, prog *Program, chips int, opts RunOptions) *PipelineExecutor {
	t.Helper()
	plan, err := prog.PartitionStages(chips, shard.PolicyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPipelineExecutor(prog, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

// assertPipelineMatchesExecutor requires the pipelined executor at every
// requested chip count to reproduce a single-chip Executor bit for bit,
// for both one-shot RunBatch and per-item Run.
func assertPipelineMatchesExecutor(t *testing.T, label string, prog *Program,
	mkOpts func() RunOptions, chipCounts []int, inputs [][]int) {
	t.Helper()
	single, err := NewExecutor(prog, mkOpts())
	if err != nil {
		t.Fatalf("%s: single-chip executor: %v", label, err)
	}
	want, err := single.RunBatch(inputs)
	if err != nil {
		t.Fatalf("%s: single-chip RunBatch: %v", label, err)
	}
	for _, chips := range chipCounts {
		pe := pipelineAt(t, prog, chips, mkOpts())
		got, err := pe.RunBatch(inputs)
		if err != nil {
			t.Fatalf("%s/%d-chip: RunBatch: %v", label, chips, err)
		}
		for b := range want {
			for j := range want[b] {
				if got[b][j] != want[b][j] {
					t.Fatalf("%s/%d-chip (%d real): item %d out[%d]: pipeline %d, single-chip %d",
						label, chips, pe.Chips(), b, j, got[b][j], want[b][j])
				}
			}
		}
		// Per-item Run through the same pipeline must agree too (buffer
		// reuse across differently sized jobs).
		out, err := pe.Run(inputs[0])
		if err != nil {
			t.Fatalf("%s/%d-chip: Run: %v", label, chips, err)
		}
		for j := range want[0] {
			if out[j] != want[0][j] {
				t.Fatalf("%s/%d-chip: Run out[%d]: %d, want %d", label, chips, j, out[j], want[0][j])
			}
		}
		if err := pe.Close(); err != nil {
			t.Fatalf("%s/%d-chip: Close: %v", label, chips, err)
		}
	}
}

// pipelineModes enumerates the three execution modes as fresh,
// identically seeded RunOptions factories, so the pipeline and the
// single-chip executor program identical (noisy) conductances.
func pipelineModes() map[string]func() RunOptions {
	return map[string]func() RunOptions{
		"reference": func() RunOptions { return RunOptions{Mode: ModeReference} },
		"spiking":   func() RunOptions { return RunOptions{Mode: ModeSpiking} },
		"noisy": func() RunOptions {
			return RunOptions{Mode: ModeSpikingNoisy, Rng: rand.New(rand.NewSource(1213))}
		},
	}
}

// TestPipelineMatchesExecutorMLP: sharded execution of an FC program at
// 2 and 4 chips is bit-identical to single-chip in all three modes.
func TestPipelineMatchesExecutorMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	g, ws := buildTestMLP(rng, []int{20, 14, 10, 8, 6})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stages) < 4 {
		t.Fatalf("test MLP has %d stages, need ≥4 for a 4-chip cut", len(prog.Stages))
	}
	inputs := batchInputs(rng, 6, 20, opts.Params.SamplingWindow())
	for mode, mkOpts := range pipelineModes() {
		assertPipelineMatchesExecutor(t, "mlp/"+mode, prog, mkOpts, []int{2, 4}, inputs)
	}
}

// TestPipelineMatchesExecutorRowSplit covers the row-split + reduction
// path, whose reduction stages read ± partial pairs across a cut.
func TestPipelineMatchesExecutorRowSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	g, ws := buildTestMLP(rng, []int{600, 12, 6})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(rng, 4, 600, opts.Params.SamplingWindow())
	for mode, mkOpts := range pipelineModes() {
		if mode == "spiking" {
			continue // covered by noisy (same code path, σ=0 vs σ>0)
		}
		assertPipelineMatchesExecutor(t, "rowsplit/"+mode, prog, mkOpts, []int{2, 4}, inputs)
	}
}

// TestPipelineMatchesExecutorConv covers a convolution program whose
// weight group is shared across every position: the group pins all its
// stages to one chip, so legal cuts only exist at layer boundaries.
func TestPipelineMatchesExecutorConv(t *testing.T) {
	prog, _ := convNet(t, 503, 2, 5, 5, 3, 3, 1, 1)
	rng := rand.New(rand.NewSource(504))
	inputs := batchInputs(rng, 5, 2*5*5, prog.Params.SamplingWindow())
	for mode, mkOpts := range pipelineModes() {
		assertPipelineMatchesExecutor(t, "conv/"+mode, prog, mkOpts, []int{2, 4}, inputs)
	}
}

// TestPartitionStagesRespectsSharedGroups: no plan boundary may fall
// inside a weight group's stage span, at any requested chip count.
func TestPartitionStagesRespectsSharedGroups(t *testing.T) {
	prog, _ := convNet(t, 505, 2, 6, 6, 2, 3, 1, 1)
	for chips := 1; chips <= 6; chips++ {
		plan, err := prog.PartitionStages(chips, shard.PolicyBalanced)
		if err != nil {
			t.Fatalf("chips=%d: %v", chips, err)
		}
		if plan.Chips() > chips {
			t.Fatalf("chips=%d: plan has %d segments", chips, plan.Chips())
		}
		span := make(map[int][2]int)
		for si, st := range prog.Stages {
			s, ok := span[st.GroupID]
			if !ok {
				span[st.GroupID] = [2]int{si, si}
				continue
			}
			s[1] = si
			span[st.GroupID] = s
		}
		for gid, s := range span {
			if plan.ShardOf(s[0]) != plan.ShardOf(s[1]) {
				t.Fatalf("chips=%d: group %d spans chips %d..%d", chips, gid, plan.ShardOf(s[0]), plan.ShardOf(s[1]))
			}
		}
	}
}

// TestPartitionStagesClampsToFeasible: asking for more chips than there
// are stages degrades gracefully instead of failing.
func TestPartitionStagesClampsToFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	g, ws := buildTestMLP(rng, []int{8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := prog.PartitionStages(16, shard.PolicyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chips() > len(prog.Stages) {
		t.Fatalf("plan has %d chips for %d stages", plan.Chips(), len(prog.Stages))
	}
}

// TestPipelineConcurrentRunBatch is the race test for the pipelined
// executor: many goroutines stream batches through one pipeline
// concurrently, and every result must still be bit-identical to the
// single-chip executor. Run under -race in CI.
func TestPipelineConcurrentRunBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(507))
	g, ws := buildTestMLP(rng, []int{16, 12, 8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	const feeders = 4
	const jobsPerFeeder = 8
	batches := make([][][]int, feeders*jobsPerFeeder)
	for i := range batches {
		batches[i] = batchInputs(rng, 1+i%5, 16, window)
	}
	single, err := NewExecutor(prog, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][][]int, len(batches))
	for i, b := range batches {
		if want[i], err = single.RunBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	pe := pipelineAt(t, prog, 3, RunOptions{Mode: ModeReference})
	defer pe.Close()
	var wg sync.WaitGroup
	errs := make([]error, feeders)
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for j := 0; j < jobsPerFeeder; j++ {
				idx := f*jobsPerFeeder + j
				got, err := pe.RunBatch(batches[idx])
				if err != nil {
					errs[f] = err
					return
				}
				for b := range want[idx] {
					for k := range want[idx][b] {
						if got[b][k] != want[idx][b][k] {
							t.Errorf("feeder %d job %d item %d out[%d]: %d, want %d",
								f, j, b, k, got[b][k], want[idx][b][k])
							return
						}
					}
				}
			}
		}(f)
	}
	wg.Wait()
	for f, err := range errs {
		if err != nil {
			t.Fatalf("feeder %d: %v", f, err)
		}
	}
}

// TestPipelineValidationAndClose: bad inputs fail by index before
// touching the pipeline, Close is idempotent, and RunBatch after Close
// reports ErrPipelineClosed.
func TestPipelineValidationAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(508))
	g, ws := buildTestMLP(rng, []int{8, 6, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe := pipelineAt(t, prog, 2, RunOptions{Mode: ModeReference})
	good := randomInput(rng, 8, opts.Params.SamplingWindow())
	if outs, err := pe.RunBatch(nil); err != nil || outs != nil {
		t.Errorf("empty batch: %v, %v", outs, err)
	}
	if _, err := pe.RunBatch([][]int{good, make([]int, 3)}); err == nil {
		t.Error("mis-sized batch item accepted")
	}
	if err := pe.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	if err := pe.Validate(make([]int, 3)); err == nil {
		t.Error("Validate(bad) accepted")
	}
	if _, err := pe.Run(good); err != nil {
		t.Errorf("Run after batch error: %v", err)
	}
	if err := pe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := pe.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := pe.RunBatch([][]int{good}); err != ErrPipelineClosed {
		t.Errorf("RunBatch after Close = %v, want ErrPipelineClosed", err)
	}
	// NewPipelineExecutor with a nil plan runs single-chip.
	pe2, err := NewPipelineExecutor(prog, nil, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	defer pe2.Close()
	if pe2.Chips() != 1 {
		t.Errorf("nil-plan pipeline has %d chips, want 1", pe2.Chips())
	}
	if _, err := pe2.Run(good); err != nil {
		t.Errorf("nil-plan Run: %v", err)
	}
	if _, err := NewPipelineExecutor(prog, nil, RunOptions{Mode: ModeSpikingNoisy}); err == nil {
		t.Error("noisy pipeline without Rng accepted")
	}
}
