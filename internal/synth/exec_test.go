package synth

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/cgraph"
)

// buildTestMLP returns a small random FC network and its weight source.
func buildTestMLP(rng *rand.Rand, dims []int) (*cgraph.Graph, func(string) [][]float64) {
	g := cgraph.New("testmlp")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(dims[0])})
	x := in
	names := make([]string, 0, len(dims)-1)
	weights := make(map[string][][]float64)
	for i := 1; i < len(dims); i++ {
		name := "fc" + string(rune('0'+i))
		names = append(names, name)
		w := make([][]float64, dims[i-1])
		for r := range w {
			w[r] = make([]float64, dims[i])
			for c := range w[r] {
				w[r][c] = (rng.Float64()*2 - 1) / float64(dims[i-1])
			}
		}
		weights[name] = w
		x = g.MustAdd(name, cgraph.FC{Out: dims[i]}, x)
		x = g.MustAdd(name+"_relu", cgraph.ReLU{}, x)
	}
	_ = names
	return g, func(layer string) [][]float64 { return weights[layer] }
}

func randomInput(rng *rand.Rand, n, window int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = rng.Intn(window + 1)
	}
	return in
}

func TestCompileRequiresWeights(t *testing.T) {
	g := cgraph.New("g")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(8)})
	g.MustAdd("fc", cgraph.FC{Out: 4}, in)
	if _, _, err := Compile(g, DefaultOptions()); err == nil {
		t.Error("Compile without weights accepted")
	}
}

func TestProgramReferenceMatchesFloat(t *testing.T) {
	// The integer reference pipeline tracks the float pipeline within
	// floor-quantization error at every output.
	rng := rand.New(rand.NewSource(101))
	g, ws := buildTestMLP(rng, []int{32, 24, 10})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	for trial := 0; trial < 20; trial++ {
		in := randomInput(rng, 32, window)
		got, err := prog.Run(in, RunOptions{Mode: ModeReference})
		if err != nil {
			t.Fatal(err)
		}
		want, err := prog.FloatReference(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			wf := math.Min(want[i], float64(window))
			if math.Abs(float64(got[i])-wf) > 3 {
				t.Errorf("trial %d out[%d]: ref %d vs float %.2f", trial, i, got[i], wf)
			}
		}
	}
}

func TestProgramSpikingMatchesReference(t *testing.T) {
	// Full cycle-level spiking execution agrees with the integer
	// reference within the per-stage ±1 subtracter artefact, compounded
	// over depth.
	rng := rand.New(rand.NewSource(102))
	g, ws := buildTestMLP(rng, []int{24, 16, 8})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	for trial := 0; trial < 5; trial++ {
		in := randomInput(rng, 24, window)
		ref, err := prog.Run(in, RunOptions{Mode: ModeReference})
		if err != nil {
			t.Fatal(err)
		}
		spiked, err := prog.Run(in, RunOptions{Mode: ModeSpiking})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if d := spiked[i] - ref[i]; d < -4 || d > 4 {
				t.Errorf("trial %d out[%d]: spiking %d vs reference %d", trial, i, spiked[i], ref[i])
			}
		}
	}
}

func TestProgramRowSplitCorrectness(t *testing.T) {
	// A 600-input layer exercises row splitting + reduction; the
	// end-to-end result must still track the float pipeline.
	rng := rand.New(rand.NewSource(103))
	g, ws := buildTestMLP(rng, []int{600, 20})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	in := randomInput(rng, 600, window)
	got, err := prog.Run(in, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.FloatReference(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		wf := math.Min(want[i], float64(window))
		// Reduction adds one more floor stage; allow slightly looser
		// tracking.
		if math.Abs(float64(got[i])-wf) > 4 {
			t.Errorf("out[%d]: ref %d vs float %.2f", i, got[i], wf)
		}
	}
}

func TestProgramNoisyRunStaysUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g, ws := buildTestMLP(rng, []int{24, 16, 8})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	in := randomInput(rng, 24, window)
	ref, err := prog.Run(in, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := prog.Run(in, RunOptions{Mode: ModeSpikingNoisy, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	var dev float64
	for i := range ref {
		dev += math.Abs(float64(noisy[i] - ref[i]))
	}
	if dev/float64(len(ref)) > 8 {
		t.Errorf("mean |noisy − ref| = %.2f counts, want ≤8", dev/float64(len(ref)))
	}
	if _, err := prog.Run(in, RunOptions{Mode: ModeSpikingNoisy}); err == nil {
		t.Error("noisy mode without rng accepted")
	}
}

func TestProgramInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	g, ws := buildTestMLP(rng, []int{8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(make([]int, 7), RunOptions{}); err == nil {
		t.Error("short input accepted")
	}
	bad := make([]int, 8)
	bad[0] = 1000
	if _, err := prog.Run(bad, RunOptions{}); err == nil {
		t.Error("out-of-window count accepted")
	}
}

func TestQuantizeInput(t *testing.T) {
	in := QuantizeInput([]float64{0, 0.5, 1, 1.5, -0.2}, 64)
	want := []int{0, 32, 64, 64, 0}
	for i := range want {
		if in[i] != want[i] {
			t.Errorf("QuantizeInput[%d] = %d, want %d", i, in[i], want[i])
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]int{1, 5, 3, 5}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := ArgmaxFloat([]float64{0.1, 0.5, 0.9}); got != 2 {
		t.Errorf("ArgmaxFloat = %d, want 2", got)
	}
}
