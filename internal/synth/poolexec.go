package synth

import (
	"fmt"
	"sort"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
)

// Functional lowering of the weight-free structural operations: max
// pooling via the pairwise-max construction max(a,b) = a + ReLU(b−a)
// (two core-ops per pair), exact average pooling via 1/K² columns, and
// residual adds via two-row identity columns. The ±1 matrices are shared
// across every position, level and layer invocation — a single weight
// group per structure width — mirroring how the chip would time-multiplex
// one programmed crossbar.

// pairwiseGroups caches the shared diff/comb groups per channel width.
type pairwiseGroups struct {
	diff, comb int
}

// pairwiseFor returns (creating on demand) the shared pairwise-max groups
// for the given width.
func (s *synthesizer) pairwiseFor(width int, deps []int) pairwiseGroups {
	if s.pairwise == nil {
		s.pairwise = make(map[int]pairwiseGroups)
	}
	if g, ok := s.pairwise[width]; ok {
		s.bumpReuse(g.diff)
		s.bumpReuse(g.comb)
		return g
	}
	maxW := s.peMaxWeight()
	mk := func(kind string, a, b int) int {
		grp := s.out.AddGroup(newGroup("pairwise-max", fmt.Sprintf("pmax.%s%d", kind, width),
			coreop.KindPool, 2*width, width, 1, deps))
		grp.UsefulWeights = 2 * int64(width)
		w := make([][]int, 2*width)
		for i := range w {
			w[i] = make([]int, width)
		}
		for c := 0; c < width; c++ {
			w[2*c][c] = a
			w[2*c+1][c] = b
		}
		grp.Weights = w
		grp.Eta = float64(maxW)
		return grp.ID
	}
	g := pairwiseGroups{
		diff: mk("d", -maxW, maxW), // ReLU(b − a)
		comb: mk("c", maxW, maxW),  // ReLU(a + d) = max(a, b)
	}
	s.pairwise[width] = g
	return g
}

// bumpReuse increments a shared group's reuse degree for one more
// invocation.
func (s *synthesizer) bumpReuse(gid int) { s.out.Groups[gid].Reuse++ }

// pairwiseMax records the two stages computing elementwise max(a, b).
func (s *synthesizer) pairwiseMax(a, b []ExecRef, deps []int) []ExecRef {
	width := len(a)
	g := s.pairwiseFor(width, deps)
	interleave := func(x, y []ExecRef) []ExecRef {
		refs := make([]ExecRef, 0, 2*width)
		for c := 0; c < width; c++ {
			refs = append(refs, x[c], y[c])
		}
		return refs
	}
	dStage := s.recordStage(g.diff, interleave(a, b))
	d := make([]ExecRef, width)
	for c := range d {
		d[c] = ExecRef{Stage: dStage, Col: c}
	}
	mStage := s.recordStage(g.comb, interleave(a, d))
	out := make([]ExecRef, width)
	for c := range out {
		out[c] = ExecRef{Stage: mStage, Col: c}
	}
	return out
}

// lowerMaxPoolExact lowers max pooling functionally.
func (s *synthesizer) lowerMaxPoolExact(n *cgraph.Node, op cgraph.Pool) error {
	in := n.Inputs[0].OutShape
	inRefs := s.nodeRefs[n.Inputs[0].ID]
	if len(inRefs) != in.Elems() {
		return fmt.Errorf("layer %q: %d producer refs, want %d", n.Name, len(inRefs), in.Elems())
	}
	deps := s.depsOf(n)
	pack := s.maxRows / 2
	outRefs := make([]ExecRef, n.OutShape.Elems())
	k2 := op.Kernel * op.Kernel
	for oy := 0; oy < n.OutShape.H; oy++ {
		for ox := 0; ox < n.OutShape.W; ox++ {
			for c0 := 0; c0 < in.C; c0 += pack {
				width := min(pack, in.C-c0)
				// Gather the window's k² value vectors for this
				// channel slice.
				vals := make([][]ExecRef, 0, k2)
				for ky := 0; ky < op.Kernel; ky++ {
					for kx := 0; kx < op.Kernel; kx++ {
						iy := oy*op.Stride - op.Pad + ky
						ix := ox*op.Stride - op.Pad + kx
						v := make([]ExecRef, width)
						for c := 0; c < width; c++ {
							if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
								v[c] = ExecRef{Stage: ZeroStage}
							} else {
								v[c] = inRefs[chwIndex(in, c0+c, iy, ix)]
							}
						}
						vals = append(vals, v)
					}
				}
				// Pairwise reduction tree.
				for len(vals) > 1 {
					var next [][]ExecRef
					for i := 0; i+1 < len(vals); i += 2 {
						next = append(next, s.pairwiseMax(vals[i], vals[i+1], deps))
					}
					if len(vals)%2 == 1 {
						next = append(next, vals[len(vals)-1])
					}
					vals = next
				}
				for c := 0; c < width; c++ {
					outRefs[chwIndex(n.OutShape, c0+c, oy, ox)] = vals[0][c]
				}
			}
		}
	}
	s.produced[n.ID] = s.pairwiseIDs()
	s.nodeRefs[n.ID] = outRefs
	return nil
}

// pairwiseIDs lists the shared pairwise groups (produced bookkeeping).
// Sorted: the list flows through depsOf into group dependency order and
// from there into the netlist fingerprint, so map order must not leak.
func (s *synthesizer) pairwiseIDs() []int {
	var ids []int
	for _, g := range s.pairwise { //fpsa:nondet sorted below; set semantics
		ids = append(ids, g.diff, g.comb)
	}
	sort.Ints(ids)
	return ids
}

// lowerAvgPoolExact lowers average pooling (window k²) functionally; GAP
// passes k² = H·W with one output position.
func (s *synthesizer) lowerAvgPoolExact(n *cgraph.Node, kernel, stride, pad, outH, outW int) error {
	in := n.Inputs[0].OutShape
	inRefs := s.nodeRefs[n.Inputs[0].ID]
	if len(inRefs) != in.Elems() {
		return fmt.Errorf("layer %q: %d producer refs, want %d", n.Name, len(inRefs), in.Elems())
	}
	deps := s.depsOf(n)
	k2 := kernel * kernel
	if kernel == 0 { // global: the full plane
		k2 = in.H * in.W
	}
	maxW := s.peMaxWeight()
	cellW := maxW / k2
	if cellW == 0 {
		return fmt.Errorf("layer %q: window %d too large for %d-level weights", n.Name, k2, maxW)
	}
	pack := s.maxRows / k2
	if pack < 1 {
		return fmt.Errorf("layer %q: window %d exceeds crossbar rows", n.Name, k2)
	}
	// Shared averaging groups per width.
	if s.avgGroups == nil {
		s.avgGroups = make(map[[2]int]int)
	}
	groupFor := func(width int) int {
		key := [2]int{k2, width}
		if gid, ok := s.avgGroups[key]; ok {
			s.bumpReuse(gid)
			return gid
		}
		grp := s.out.AddGroup(newGroup(n.Name, fmt.Sprintf("%s.avg%dx%d", n.Name, k2, width),
			coreop.KindPool, k2*width, width, 1, deps))
		grp.UsefulWeights = int64(k2) * int64(width)
		w := make([][]int, k2*width)
		for i := range w {
			w[i] = make([]int, width)
		}
		for c := 0; c < width; c++ {
			for i := 0; i < k2; i++ {
				w[c*k2+i][c] = cellW
			}
		}
		grp.Weights = w
		grp.Eta = float64(cellW * k2)
		s.avgGroups[key] = grp.ID
		return grp.ID
	}
	outRefs := make([]ExecRef, n.OutShape.Elems())
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for c0 := 0; c0 < in.C; c0 += pack {
				width := min(pack, in.C-c0)
				refs := make([]ExecRef, 0, k2*width)
				for c := 0; c < width; c++ {
					if kernel == 0 {
						for iy := 0; iy < in.H; iy++ {
							for ix := 0; ix < in.W; ix++ {
								refs = append(refs, inRefs[chwIndex(in, c0+c, iy, ix)])
							}
						}
						continue
					}
					for ky := 0; ky < kernel; ky++ {
						for kx := 0; kx < kernel; kx++ {
							iy := oy*stride - pad + ky
							ix := ox*stride - pad + kx
							if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
								refs = append(refs, ExecRef{Stage: ZeroStage})
							} else {
								refs = append(refs, inRefs[chwIndex(in, c0+c, iy, ix)])
							}
						}
					}
				}
				stage := s.recordStage(groupFor(width), refs)
				for c := 0; c < width; c++ {
					outRefs[chwIndex(n.OutShape, c0+c, oy, ox)] = ExecRef{Stage: stage, Col: c}
				}
			}
		}
	}
	s.produced[n.ID] = avgIDs(s)
	s.nodeRefs[n.ID] = outRefs
	return nil
}

// avgIDs lists the shared average-pool groups (produced bookkeeping).
// Sorted for the same reason as pairwiseIDs: dependency order feeds the
// netlist fingerprint.
func avgIDs(s *synthesizer) []int {
	var ids []int
	for _, gid := range s.avgGroups { //fpsa:nondet sorted below; set semantics
		ids = append(ids, gid)
	}
	sort.Ints(ids)
	return ids
}

// lowerAddExact lowers the elementwise residual add functionally:
// out = ReLU(a + b) per element, packed 128 elements per stage.
func (s *synthesizer) lowerAddExact(n *cgraph.Node) error {
	if len(n.Inputs) != 2 {
		return fmt.Errorf("functional synthesis supports binary adds only (%q has %d operands)", n.Name, len(n.Inputs))
	}
	a := s.nodeRefs[n.Inputs[0].ID]
	b := s.nodeRefs[n.Inputs[1].ID]
	elems := n.OutShape.Elems()
	if len(a) != elems || len(b) != elems {
		return fmt.Errorf("layer %q: operand refs %d/%d, want %d", n.Name, len(a), len(b), elems)
	}
	deps := s.depsOf(n)
	maxW := s.peMaxWeight()
	pack := s.maxRows / 2
	if s.addGroups == nil {
		s.addGroups = make(map[int]int)
	}
	groupFor := func(width int) int {
		if gid, ok := s.addGroups[width]; ok {
			s.bumpReuse(gid)
			return gid
		}
		grp := s.out.AddGroup(newGroup(n.Name, fmt.Sprintf("addx%d", width),
			coreop.KindElementwise, 2*width, width, 1, deps))
		grp.UsefulWeights = 2 * int64(width)
		w := make([][]int, 2*width)
		for i := range w {
			w[i] = make([]int, width)
		}
		for c := 0; c < width; c++ {
			w[2*c][c] = maxW
			w[2*c+1][c] = maxW
		}
		grp.Weights = w
		grp.Eta = float64(maxW)
		s.addGroups[width] = grp.ID
		return grp.ID
	}
	outRefs := make([]ExecRef, elems)
	var ids []int
	for e0 := 0; e0 < elems; e0 += pack {
		width := min(pack, elems-e0)
		refs := make([]ExecRef, 0, 2*width)
		for c := 0; c < width; c++ {
			refs = append(refs, a[e0+c], b[e0+c])
		}
		gid := groupFor(width)
		ids = append(ids, gid)
		stage := s.recordStage(gid, refs)
		for c := 0; c < width; c++ {
			outRefs[e0+c] = ExecRef{Stage: stage, Col: c}
		}
	}
	s.produced[n.ID] = dedupeInts(ids)
	s.nodeRefs[n.ID] = outRefs
	return nil
}

func dedupeInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
