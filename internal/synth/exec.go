package synth

import (
	"fmt"
	"math"
	"math/rand"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/spike"
	"fpsa/internal/xbar"
)

// ExternalStage marks an ExecRef as reading the network's external input.
const ExternalStage = -1

// ZeroStage marks an ExecRef as a constant-zero signal (convolution
// padding rows).
const ZeroStage = -2

// ExecRef identifies the producer of one logical signal: a column of an
// earlier stage's output, an element of the external input vector, or the
// constant zero.
type ExecRef struct {
	Stage int // ExternalStage, ZeroStage, or index into Program.Stages
	Col   int
}

// ExecStage is one executable core-op: a weight group plus the refs feeding
// each of its rows.
type ExecStage struct {
	GroupID int
	InRefs  []ExecRef
}

// Program is an executable synthesized network (FC graphs with supplied
// weights). Stages are topologically ordered; outputs are read at
// OutputRefs.
type Program struct {
	Graph      *coreop.Graph
	Params     device.Params
	Stages     []ExecStage
	OutputRefs []ExecRef
	InputSize  int
}

// Compile synthesizes g functionally: it requires opts.Weights and returns
// both the core-op graph and the executable program.
func Compile(g *cgraph.Graph, opts Options) (*coreop.Graph, *Program, error) {
	if opts.Weights == nil {
		return nil, nil, fmt.Errorf("synth: Compile requires Options.Weights")
	}
	return synthesize(g, opts)
}

// ExecMode selects how Program.Run evaluates each core-op.
type ExecMode int

// Execution modes.
const (
	// ModeReference runs the integer reference semantics
	// (floor(P/η)−floor(N/η) with ReLU and window clamping).
	ModeReference ExecMode = iota
	// ModeSpiking runs the full cycle-level spiking PE simulation with
	// ideal devices.
	ModeSpiking
	// ModeSpikingNoisy runs the cycle-level simulation on conductances
	// programmed with device variation (requires Rng).
	ModeSpikingNoisy
)

// RunOptions configures Program execution.
type RunOptions struct {
	Mode ExecMode
	// Rng supplies programming variation for ModeSpikingNoisy.
	Rng *rand.Rand
	// Spec overrides the cell spec (default device.Cell4Bit).
	Spec device.CellSpec
	// Spike selects the spiking kernel for every crossbar the program
	// runs on: xbar.PathAuto (zero value) probes each micro-batch's spike
	// density and picks dense or bit-packed sparse per batch;
	// xbar.PathDense and xbar.PathSparse force one kernel. The two
	// kernels are bit-identical in every mode, so this is purely a
	// performance knob.
	Spike xbar.Path
	// SparseThreshold is the auto-path density cutoff; zero means
	// xbar.DefaultSparseThreshold.
	SparseThreshold float64
	// Faults, when active, injects the device fault scenario into every
	// crossbar the program runs on: each weight group's stuck-cell map is
	// a deterministic function of (Faults, group ID), so every worker
	// replica and every chip of a pipelined deployment sees identical
	// faults — unlike programming variation, which is per-replica. With
	// Faults.Remap the logical weight region is steered around known-bad
	// cells using the crossbar's spare rows and columns. An inactive (or
	// nil) model is bit-identical to no faults at all.
	Faults *device.FaultModel
}

// Run executes the program on one input vector of spike counts in [0, Γ]
// and returns the output counts at the network's output refs. Each call
// programs a fresh set of crossbars (in ModeSpikingNoisy, drawing fresh
// variation from opts.Rng); serving loops that classify many samples
// should build one Executor instead and reuse its programmed state.
func (p *Program) Run(input []int, opts RunOptions) ([]int, error) {
	// Validate before programming so a bad input neither costs a full
	// programming pass nor advances opts.Rng's variation stream.
	if err := p.validateInput(input); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	ex, err := NewExecutor(p, opts)
	if err != nil {
		return nil, err
	}
	return ex.Run(input)
}

// RunBatch executes the program on a whole micro-batch of input vectors,
// programming each weight group once for the batch (in ModeSpikingNoisy,
// drawing one set of variation from opts.Rng that every item shares — one
// physical chip serving the batch) and streaming all items through each
// stage together. Results are positional and bit-identical to per-item
// Run calls on an equally programmed Executor. Serving loops should build
// one Executor and call its RunBatch instead, amortizing programming
// across batches as well.
func (p *Program) RunBatch(inputs [][]int, opts RunOptions) ([][]int, error) {
	for b, in := range inputs {
		if err := p.validateInput(in); err != nil {
			return nil, fmt.Errorf("synth: batch item %d: %w", b, err)
		}
	}
	if len(inputs) == 0 {
		return nil, nil
	}
	ex, err := NewExecutor(p, opts)
	if err != nil {
		return nil, err
	}
	return ex.runBatch(inputs)
}

// validateInput checks the input vector's length and window range.
func (p *Program) validateInput(input []int) error {
	if len(input) != p.InputSize {
		return fmt.Errorf("input length %d, want %d", len(input), p.InputSize)
	}
	window := p.Params.SamplingWindow()
	for i, v := range input {
		if v < 0 || v > window {
			return fmt.Errorf("input[%d] = %d outside [0,%d]", i, v, window)
		}
	}
	return nil
}

// FloatReference evaluates the same quantized pipeline in real arithmetic
// (no floors, no window clamping) — the mathematical function the spiking
// program approximates. Useful for quantifying spiking error in tests.
func (p *Program) FloatReference(input []int) ([]float64, error) {
	if len(input) != p.InputSize {
		return nil, fmt.Errorf("synth: input length %d, want %d", len(input), p.InputSize)
	}
	outputs := make([][]float64, len(p.Stages))
	for si, st := range p.Stages {
		grp := p.Graph.Groups[st.GroupID]
		x := make([]float64, len(st.InRefs))
		for r, ref := range st.InRefs {
			switch ref.Stage {
			case ExternalStage:
				x[r] = float64(input[ref.Col])
			case ZeroStage:
				x[r] = 0
			default:
				x[r] = outputs[ref.Stage][ref.Col]
			}
		}
		out := make([]float64, grp.Cols)
		for j := 0; j < grp.Cols; j++ {
			var acc float64
			for i := 0; i < grp.Rows; i++ {
				acc += float64(grp.Weights[i][j]) * x[i]
			}
			v := acc / grp.Eta
			if v < 0 {
				v = 0
			}
			out[j] = v
		}
		outputs[si] = out
	}
	result := make([]float64, len(p.OutputRefs))
	for i, ref := range p.OutputRefs {
		if ref.Stage == ExternalStage {
			result[i] = float64(input[ref.Col])
			continue
		}
		result[i] = outputs[ref.Stage][ref.Col]
	}
	return result, nil
}

// Argmax returns the index of the largest count (ties to the lowest index).
func Argmax(v []int) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// ArgmaxFloat returns the index of the largest value.
func ArgmaxFloat(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// QuantizeInput maps real-valued features in [0,1] to window counts.
func QuantizeInput(features []float64, window int) []int {
	counts := make([]int, len(features))
	for i, f := range features {
		c := int(math.Round(f * float64(window)))
		counts[i] = spike.Clamp(c, window)
	}
	return counts
}
