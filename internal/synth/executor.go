package synth

import (
	"fmt"

	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/xbar"
)

// Executor is a reusable execution context over a Program: every weight
// group's crossbar is programmed exactly once, at construction, and reused
// across Run/RunBatch calls — the way the physical chip programs its
// crossbars once at deployment and then streams samples through them.
// Program.Run re-programs on every call; for a serving loop the Executor
// amortizes that away.
//
// Execution is batched end to end: RunBatch walks the stage list once per
// micro-batch, evaluating every batch item on a stage's crossbar before
// moving to the next stage (via the internal/xbar batch kernels), instead
// of re-walking all stages per item. Run is the batch-of-one special
// case.
//
// An Executor is NOT safe for concurrent use: the per-stage input and
// output tables are reused between runs, and in noisy mode the programmed
// variation is the executor's identity. Concurrent callers must hold one
// Executor per goroutine (see internal/serve), which also matches the
// hardware — each replica chip carries its own programming variation.
type Executor struct {
	prog  *Program
	opts  RunOptions
	units map[int]*xbar.Crossbar
	// stageCols[si] is the output width of stage si's weight group.
	stageCols []int
	// ins[si] is stage si's flat batch×rows input buffer; outs[si] its
	// flat batch×cols output, read by downstream refs. Both are grown on
	// demand and reused across runs.
	ins  [][]int
	outs [][]int
}

// NewExecutor programs every weight group of p under opts and returns the
// reusable execution state. In ModeSpikingNoisy the supplied Rng draws
// each cell's programming variation once, in stage order — the same draw
// order Program.Run uses, so a fresh Executor reproduces a single Run
// bit for bit.
func NewExecutor(p *Program, opts RunOptions) (*Executor, error) {
	spec := opts.Spec
	if spec.Bits == 0 {
		spec = device.Cell4Bit
	}
	if opts.Mode != ModeSpikingNoisy {
		spec.Sigma = 0
	} else if opts.Rng == nil {
		return nil, fmt.Errorf("synth: ModeSpikingNoisy requires RunOptions.Rng")
	}
	opts.Spec = spec
	cfg := xbar.Config{
		Params:          p.Params,
		Spec:            spec,
		Rep:             device.NewAdd(spec, p.Params.CellsPerWeight),
		Path:            opts.Spike,
		SparseThreshold: opts.SparseThreshold,
	}
	ex := &Executor{
		prog:      p,
		opts:      opts,
		units:     make(map[int]*xbar.Crossbar, len(p.Graph.Groups)),
		stageCols: make([]int, len(p.Stages)),
		ins:       make([][]int, len(p.Stages)),
		outs:      make([][]int, len(p.Stages)),
	}
	// Weight groups are shared across stages (conv positions): program
	// each group's crossbar once, in first-use stage order, exactly as
	// the chip holds one physical crossbar per group copy.
	for si, st := range p.Stages {
		grp := p.Graph.Groups[st.GroupID]
		ex.stageCols[si] = grp.Cols
		if _, ok := ex.units[st.GroupID]; ok {
			continue
		}
		c := cfg
		c.Eta = grp.Eta
		c.Faults = faultMaskFor(opts.Faults, p.Params, grp, st.GroupID)
		u, err := xbar.Program(c, grp.Weights, opts.Rng)
		if err != nil {
			return nil, fmt.Errorf("synth: stage %d (%s): %w", si, grp.Name, err)
		}
		ex.units[st.GroupID] = u
	}
	return ex, nil
}

// faultMaskFor derives one weight group's fault mask: the model's
// deterministic per-unit map at physical crossbar geometry, projected
// (with or without spare-row/column remapping) onto the group's logical
// region. Returns nil for an inactive model, keeping the unfaulted path
// structurally untouched.
func faultMaskFor(fm *device.FaultModel, params device.Params, grp *coreop.Group, unit int) *device.FaultMask {
	if !fm.Active() {
		return nil
	}
	m := fm.MapForUnit(grp.Layer, unit, params.CrossbarRows, params.LogicalColumns())
	mask := m.MaskFor(grp.Rows, grp.Cols, fm.Remap)
	return &mask
}

// Mode returns the execution mode the Executor was programmed for.
func (e *Executor) Mode() ExecMode { return e.opts.Mode }

// FaultedCells sums the stuck logical cells pinned across every crossbar
// the Executor programmed — the residual faults execution actually sees
// after any remapping.
func (e *Executor) FaultedCells() int {
	n := 0
	for _, u := range e.units { //fpsa:nondet summing int counters; order-free
		n += u.FaultedCells()
	}
	return n
}

// KernelStats sums the spiking-kernel selection counters over every
// crossbar the Executor programmed: how many micro-batch kernel calls took
// the packed sparse path versus the dense path, and the aggregate observed
// input spike density.
func (e *Executor) KernelStats() xbar.KernelStats {
	var st xbar.KernelStats
	for _, u := range e.units { //fpsa:nondet summing uint64 counters; order-free
		st = st.Add(u.KernelStats())
	}
	return st
}

// Validate checks one input vector's length and window range without
// executing anything — the pre-flight the serving engine runs so one bad
// request cannot fail a whole micro-batch.
func (e *Executor) Validate(input []int) error {
	if err := e.prog.validateInput(input); err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	return nil
}

// Run executes the program on one input vector of spike counts in [0, Γ]
// and returns the output counts at the network's output refs. The
// returned slice is freshly allocated; per-stage buffers are reused
// across runs. Run is RunBatch with a batch of one.
func (e *Executor) Run(input []int) ([]int, error) {
	if err := e.Validate(input); err != nil {
		return nil, err
	}
	outs, err := e.runBatch([][]int{input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch executes the program on a micro-batch of input vectors and
// returns one freshly allocated output-count slice per input, positionally.
// The whole batch advances through the stage list together: each stage's
// crossbar evaluates every item (one batched kernel call) before the next
// stage runs, so a weight group's programmed state is touched once per
// batch rather than once per item. Outputs are bit-identical to len(inputs)
// independent Run calls in every execution mode.
func (e *Executor) RunBatch(inputs [][]int) ([][]int, error) {
	for b, in := range inputs {
		if err := e.prog.validateInput(in); err != nil {
			return nil, fmt.Errorf("synth: batch item %d: %w", b, err)
		}
	}
	return e.runBatch(inputs)
}

// growInts returns buf resized to n, reusing capacity.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// runBatch is the validated batch execution path.
func (e *Executor) runBatch(inputs [][]int) ([][]int, error) {
	p := e.prog
	B := len(inputs)
	if B == 0 {
		return nil, nil
	}
	for si, st := range p.Stages {
		n := len(st.InRefs)
		x := growInts(e.ins[si], B*n)
		e.ins[si] = x
		for b, in := range inputs {
			row := x[b*n : (b+1)*n]
			for r, ref := range st.InRefs {
				switch {
				case ref.Stage == ExternalStage:
					row[r] = in[ref.Col]
				case ref.Stage == ZeroStage:
					row[r] = 0
				case ref.Stage >= 0 && ref.Stage < si:
					row[r] = e.outs[ref.Stage][b*e.stageCols[ref.Stage]+ref.Col]
				default:
					return nil, fmt.Errorf("synth: stage %d row %d references stage %d", si, r, ref.Stage)
				}
			}
		}
		out := growInts(e.outs[si], B*e.stageCols[si])
		e.outs[si] = out
		unit := e.units[st.GroupID]
		var err error
		switch e.opts.Mode {
		case ModeReference:
			err = unit.ReferenceBatch(out, x, B)
		case ModeSpiking, ModeSpikingNoisy:
			err = unit.SimulateCountsBatch(out, x, B)
		default:
			err = fmt.Errorf("unknown exec mode %d", e.opts.Mode)
		}
		if err != nil {
			return nil, fmt.Errorf("synth: stage %d (%s): %w", si, p.Graph.Groups[st.GroupID].Name, err)
		}
	}
	results := make([][]int, B)
	for b := range results {
		res := make([]int, len(p.OutputRefs))
		for i, ref := range p.OutputRefs {
			if ref.Stage == ExternalStage {
				res[i] = inputs[b][ref.Col]
				continue
			}
			res[i] = e.outs[ref.Stage][b*e.stageCols[ref.Stage]+ref.Col]
		}
		results[b] = res
	}
	return results, nil
}
