package synth

import (
	"fmt"

	"fpsa/internal/device"
	"fpsa/internal/pe"
)

// Executor is a reusable execution context over a Program: every weight
// group's PE is programmed exactly once, at construction, and reused
// across Run calls — the way the physical chip programs its crossbars
// once at deployment and then streams samples through them. Program.Run
// re-programs on every call; for a serving loop the Executor amortizes
// that away.
//
// An Executor is NOT safe for concurrent use: the per-stage input rows
// and output table are reused between runs, and in noisy mode the
// programmed variation is the executor's identity. Concurrent callers
// must hold one Executor per goroutine (see internal/serve), which also
// matches the hardware — each replica chip carries its own programming
// variation.
type Executor struct {
	prog  *Program
	opts  RunOptions
	units map[int]*pe.PE
	// ins[si] is stage si's input row, sized once at construction and
	// refilled each run; scratch[si] holds stage si's latest output for
	// downstream refs.
	ins     [][]int
	scratch [][]int
}

// NewExecutor programs every weight group of p under opts and returns the
// reusable execution state. In ModeSpikingNoisy the supplied Rng draws
// each cell's programming variation once, in stage order — the same draw
// order Program.Run uses, so a fresh Executor reproduces a single Run
// bit for bit.
func NewExecutor(p *Program, opts RunOptions) (*Executor, error) {
	spec := opts.Spec
	if spec.Bits == 0 {
		spec = device.Cell4Bit
	}
	if opts.Mode != ModeSpikingNoisy {
		spec.Sigma = 0
	} else if opts.Rng == nil {
		return nil, fmt.Errorf("synth: ModeSpikingNoisy requires RunOptions.Rng")
	}
	opts.Spec = spec
	cfg := pe.Config{
		Params: p.Params,
		Spec:   spec,
		Rep:    device.NewAdd(spec, p.Params.CellsPerWeight),
	}
	ex := &Executor{
		prog:    p,
		opts:    opts,
		units:   make(map[int]*pe.PE, len(p.Graph.Groups)),
		ins:     make([][]int, len(p.Stages)),
		scratch: make([][]int, len(p.Stages)),
	}
	for si, st := range p.Stages {
		ex.ins[si] = make([]int, len(st.InRefs))
	}
	// Weight groups are shared across stages (conv positions): program
	// each group's PE once, in first-use stage order, exactly as the chip
	// holds one physical crossbar per group copy.
	for si, st := range p.Stages {
		if _, ok := ex.units[st.GroupID]; ok {
			continue
		}
		grp := p.Graph.Groups[st.GroupID]
		c := cfg
		c.Eta = grp.Eta
		u := pe.New(c)
		if err := u.Program(grp.Weights, opts.Rng); err != nil {
			return nil, fmt.Errorf("synth: stage %d (%s): %w", si, grp.Name, err)
		}
		ex.units[st.GroupID] = u
	}
	return ex, nil
}

// Mode returns the execution mode the Executor was programmed for.
func (e *Executor) Mode() ExecMode { return e.opts.Mode }

// Run executes the program on one input vector of spike counts in [0, Γ]
// and returns the output counts at the network's output refs. The
// returned slice is freshly allocated; per-stage input rows are reused
// across runs.
func (e *Executor) Run(input []int) ([]int, error) {
	p := e.prog
	if err := p.validateInput(input); err != nil {
		return nil, err
	}
	for si, st := range p.Stages {
		grp := p.Graph.Groups[st.GroupID]
		x := e.ins[si]
		for r, ref := range st.InRefs {
			switch {
			case ref.Stage == ExternalStage:
				x[r] = input[ref.Col]
			case ref.Stage == ZeroStage:
				x[r] = 0
			case ref.Stage >= 0 && ref.Stage < si:
				x[r] = e.scratch[ref.Stage][ref.Col]
			default:
				return nil, fmt.Errorf("synth: stage %d row %d references stage %d", si, r, ref.Stage)
			}
		}
		out, err := runStageOn(e.units[st.GroupID], x, e.opts)
		if err != nil {
			return nil, fmt.Errorf("synth: stage %d (%s): %w", si, grp.Name, err)
		}
		e.scratch[si] = out
	}
	result := make([]int, len(p.OutputRefs))
	for i, ref := range p.OutputRefs {
		if ref.Stage == ExternalStage {
			result[i] = input[ref.Col]
			continue
		}
		result[i] = e.scratch[ref.Stage][ref.Col]
	}
	return result, nil
}
