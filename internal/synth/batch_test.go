package synth

import (
	"math/rand"
	"strings"
	"testing"

	"fpsa/internal/cgraph"
)

// batchInputs draws B random in-window input vectors.
func batchInputs(rng *rand.Rand, b, n, window int) [][]int {
	ins := make([][]int, b)
	for i := range ins {
		ins[i] = randomInput(rng, n, window)
	}
	return ins
}

// assertBatchMatchesSerial runs inputs through one executor serially and
// through an identically programmed executor as one batch, and requires
// bit-identical outputs. mkExec builds a fresh executor with its own
// (identically seeded) variation stream so noisy programming matches too.
func assertBatchMatchesSerial(t *testing.T, label string, mkExec func() *Executor, inputs [][]int) {
	t.Helper()
	serial := mkExec()
	want := make([][]int, len(inputs))
	for i, in := range inputs {
		out, err := serial.Run(in)
		if err != nil {
			t.Fatalf("%s: serial run %d: %v", label, i, err)
		}
		want[i] = out
	}
	batched := mkExec()
	got, err := batched.RunBatch(inputs)
	if err != nil {
		t.Fatalf("%s: RunBatch: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: RunBatch returned %d outputs, want %d", label, len(got), len(want))
	}
	for b := range want {
		for j := range want[b] {
			if got[b][j] != want[b][j] {
				t.Fatalf("%s: item %d out[%d]: batch %d, serial %d", label, b, j, got[b][j], want[b][j])
			}
		}
	}
	// The batch executor must stay serially usable afterwards (buffer
	// reuse across differently-sized calls), and vice versa.
	for _, b := range []int{0, len(inputs) / 2} {
		out, err := batched.Run(inputs[b])
		if err != nil {
			t.Fatalf("%s: run-after-batch %d: %v", label, b, err)
		}
		for j := range out {
			if out[j] != want[b][j] {
				t.Fatalf("%s: run-after-batch item %d out[%d]: %d, want %d", label, b, j, out[j], want[b][j])
			}
		}
	}
	if reGot, err := serial.RunBatch(inputs); err != nil {
		t.Fatalf("%s: batch-after-run: %v", label, err)
	} else {
		for b := range want {
			for j := range want[b] {
				if reGot[b][j] != want[b][j] {
					t.Fatalf("%s: batch-after-run item %d out[%d]: %d, want %d", label, b, j, reGot[b][j], want[b][j])
				}
			}
		}
	}
}

// modeExecs enumerates the three execution modes with per-call fresh but
// identically seeded executors (fixed RNG stream for ModeSpikingNoisy).
func modeExecs(t *testing.T, prog *Program) map[string]func() *Executor {
	t.Helper()
	mk := func(opts RunOptions, noisySeed int64) func() *Executor {
		return func() *Executor {
			o := opts
			if o.Mode == ModeSpikingNoisy {
				o.Rng = rand.New(rand.NewSource(noisySeed))
			}
			ex, err := NewExecutor(prog, o)
			if err != nil {
				t.Fatal(err)
			}
			return ex
		}
	}
	return map[string]func() *Executor{
		"reference": mk(RunOptions{Mode: ModeReference}, 0),
		"spiking":   mk(RunOptions{Mode: ModeSpiking}, 0),
		"noisy":     mk(RunOptions{Mode: ModeSpikingNoisy}, 991),
	}
}

// TestRunBatchMatchesRunMLP is the core batch/serial equivalence property
// on an FC program, across all three execution modes.
func TestRunBatchMatchesRunMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	g, ws := buildTestMLP(rng, []int{24, 16, 8})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(rng, 7, 24, opts.Params.SamplingWindow())
	for mode, mkExec := range modeExecs(t, prog) {
		assertBatchMatchesSerial(t, "mlp/"+mode, mkExec, inputs)
	}
}

// TestRunBatchMatchesRunRowSplit exercises the row-split + reduction
// path, where stages feed ± partial pairs to a reduction crossbar.
func TestRunBatchMatchesRunRowSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	g, ws := buildTestMLP(rng, []int{600, 12})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(rng, 4, 600, opts.Params.SamplingWindow())
	for mode, mkExec := range modeExecs(t, prog) {
		if mode == "spiking" {
			continue // covered by noisy (same code path, σ=0 vs σ>0)
		}
		assertBatchMatchesSerial(t, "rowsplit/"+mode, mkExec, inputs)
	}
}

// TestRunBatchMatchesRunConv covers the shared-group convolution program
// (one crossbar time-multiplexed over all positions) in all three modes.
func TestRunBatchMatchesRunConv(t *testing.T) {
	prog, _ := convNet(t, 403, 2, 5, 5, 3, 3, 1, 1)
	rng := rand.New(rand.NewSource(404))
	inputs := batchInputs(rng, 5, 2*5*5, prog.Params.SamplingWindow())
	for mode, mkExec := range modeExecs(t, prog) {
		assertBatchMatchesSerial(t, "conv/"+mode, mkExec, inputs)
	}
}

// TestRunBatchMatchesRunPooling covers the structural max-pool tree and
// average pooling, whose stages read interleaved and zero-padded refs.
func TestRunBatchMatchesRunPooling(t *testing.T) {
	g := cgraph.New("poolnet")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 4, W: 4}})
	p := g.MustAdd("pool", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, in)
	g.MustAdd("gap", cgraph.GlobalAvgPool{}, p)
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(405))
	inputs := batchInputs(rng, 6, 48, prog.Params.SamplingWindow())
	for mode, mkExec := range modeExecs(t, prog) {
		assertBatchMatchesSerial(t, "pool/"+mode, mkExec, inputs)
	}
}

// TestProgramRunBatchNoisyFixedStream: Program.RunBatch programs one
// executor from opts.Rng, so with a fixed seed it must equal serial Run
// calls on an executor programmed from the same stream.
func TestProgramRunBatchNoisyFixedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	g, ws := buildTestMLP(rng, []int{16, 10, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(rng, 5, 16, opts.Params.SamplingWindow())
	got, err := prog.RunBatch(inputs, RunOptions{Mode: ModeSpikingNoisy, Rng: rand.New(rand.NewSource(55))})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(prog, RunOptions{Mode: ModeSpikingNoisy, Rng: rand.New(rand.NewSource(55))})
	if err != nil {
		t.Fatal(err)
	}
	for b, in := range inputs {
		want, err := ex.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[b][j] != want[j] {
				t.Fatalf("item %d out[%d]: RunBatch %d, serial %d", b, j, got[b][j], want[j])
			}
		}
	}
}

// TestRunBatchValidation: empty batches are a no-op, a bad item is
// reported by index before any execution, and the executor survives.
func TestRunBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	g, ws := buildTestMLP(rng, []int{8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(prog, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	if outs, err := ex.RunBatch(nil); err != nil || outs != nil {
		t.Errorf("empty batch: %v, %v", outs, err)
	}
	good := randomInput(rng, 8, opts.Params.SamplingWindow())
	bad := make([]int, 7)
	if _, err := ex.RunBatch([][]int{good, bad}); err == nil {
		t.Error("mis-sized batch item accepted")
	} else if !strings.Contains(err.Error(), "batch item 1") {
		t.Errorf("error %q does not name the offending item", err)
	}
	if err := ex.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	if err := ex.Validate(bad); err == nil {
		t.Error("Validate(bad) accepted")
	}
	if _, err := ex.Run(good); err != nil {
		t.Errorf("executor unusable after batch error: %v", err)
	}
	if _, err := prog.RunBatch(nil, RunOptions{Mode: ModeReference}); err != nil {
		t.Errorf("Program.RunBatch(empty) = %v", err)
	}
}
