package synth

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
)

// This file implements the functional (executable) lowering of
// convolutional networks. Weight groups are created once and shared by
// every output position — exactly the paper's weight-reuse structure — and
// each position records an execution stage referencing the group, so the
// executor programs one PE per group and time-multiplexes it across
// positions, like the mapped chip does.
//
// Tensor references follow CHW order: signal (c, y, x) lives at ref index
// (c·H + y)·W + x. Convolution padding reads the constant-zero ref.

// chwIndex flattens a tensor coordinate.
func chwIndex(shape cgraph.Shape, c, y, x int) int {
	return (c*shape.H+y)*shape.W + x
}

// exactMatrix is a weight matrix lowered to shared crossbar groups that
// can be invoked once per input vector (conv position or FC pass).
type exactMatrix struct {
	s          *synthesizer
	rows, cols int
	rowTiles   int
	colCap     int // outputs per column tile
	pack       int // outputs per reduction group (split case)
	maxW       int
	// unsplit: tiles[ct]; split: tiles[ct][rt] and reds[ct][ri].
	flat      []int
	tiles     [][]int
	reds      [][]int
	invocable bool
}

// buildExactMatrix creates the shared groups for a rows×cols signed float
// matrix with the given reuse degree.
func (s *synthesizer) buildExactMatrix(name, layer string, rows, cols, reuse int, deps []int, weights [][]float64) (*exactMatrix, error) {
	if len(weights) != rows || len(weights[0]) != cols {
		return nil, fmt.Errorf("matrix %q: weights %dx%d, want %dx%d", name, len(weights), len(weights[0]), rows, cols)
	}
	m := &exactMatrix{s: s, rows: rows, cols: cols, maxW: s.peMaxWeight(), invocable: true}
	m.rowTiles = (rows + s.maxRows - 1) / s.maxRows
	q := s.quantize(weights)
	eta := safeEta(q)
	if m.rowTiles == 1 {
		m.colCap = s.maxCols
		colTiles := (cols + m.colCap - 1) / m.colCap
		for ct := 0; ct < colTiles; ct++ {
			c0, c1 := ct*m.colCap, min((ct+1)*m.colCap, cols)
			grp := s.out.AddGroup(newGroup(layer, fmt.Sprintf("%s.x%d", name, ct),
				coreop.KindCompute, rows, c1-c0, reuse, deps))
			grp.UsefulWeights = int64(rows) * int64(c1-c0)
			w := make([][]int, rows)
			for r := 0; r < rows; r++ {
				w[r] = append([]int(nil), q[r][c0:c1]...)
			}
			grp.Weights = w
			grp.Eta = eta
			m.flat = append(m.flat, grp.ID)
		}
		return m, nil
	}
	redRowsPerOut := 2 * m.rowTiles
	m.pack = s.maxRows / redRowsPerOut
	if m.pack == 0 {
		return nil, fmt.Errorf("matrix %q: %d row tiles need hierarchical reduction (unsupported)", name, m.rowTiles)
	}
	m.colCap = s.maxCols / 2
	colTiles := (cols + m.colCap - 1) / m.colCap
	for ct := 0; ct < colTiles; ct++ {
		c0, c1 := ct*m.colCap, min((ct+1)*m.colCap, cols)
		width := c1 - c0
		var tileIDs []int
		for rt := 0; rt < m.rowTiles; rt++ {
			r0, r1 := rt*s.maxRows, min((rt+1)*s.maxRows, rows)
			grp := s.out.AddGroup(newGroup(layer, fmt.Sprintf("%s.x%d.%d", name, rt, ct),
				coreop.KindCompute, r1-r0, 2*width, reuse, deps))
			grp.UsefulWeights = int64(r1-r0) * int64(2*width)
			w := make([][]int, r1-r0)
			for r := r0; r < r1; r++ {
				row := make([]int, 2*width)
				for k := c0; k < c1; k++ {
					row[2*(k-c0)] = q[r][k]
					row[2*(k-c0)+1] = -q[r][k]
				}
				w[r-r0] = row
			}
			grp.Weights = w
			grp.Eta = eta
			tileIDs = append(tileIDs, grp.ID)
		}
		m.tiles = append(m.tiles, tileIDs)
		var redIDs []int
		for o0, ri := 0, 0; o0 < width; o0, ri = o0+m.pack, ri+1 {
			o1 := min(o0+m.pack, width)
			redW := o1 - o0
			red := s.out.AddGroup(newGroup(layer, fmt.Sprintf("%s.r%d.%d", name, ct, ri),
				coreop.KindReduce, redRowsPerOut*redW, redW, reuse, tileIDs))
			red.UsefulWeights = int64(redRowsPerOut) * int64(redW)
			w := make([][]int, redRowsPerOut*redW)
			for i := range w {
				w[i] = make([]int, redW)
			}
			for k := 0; k < redW; k++ {
				for t := 0; t < m.rowTiles; t++ {
					rowP := k*redRowsPerOut + 2*t
					w[rowP][k] = m.maxW
					w[rowP+1][k] = -m.maxW
				}
			}
			red.Weights = w
			red.Eta = safeEta(w)
			redIDs = append(redIDs, red.ID)
		}
		m.reds = append(m.reds, redIDs)
	}
	return m, nil
}

// invoke records the execution stages for one input vector and returns the
// refs of the matrix's cols outputs.
func (m *exactMatrix) invoke(inRefs []ExecRef) ([]ExecRef, error) {
	if len(inRefs) != m.rows {
		return nil, fmt.Errorf("invoke: %d input refs, want %d", len(inRefs), m.rows)
	}
	s := m.s
	out := make([]ExecRef, 0, m.cols)
	if m.rowTiles == 1 {
		for ct, gid := range m.flat {
			c0, c1 := ct*m.colCap, min((ct+1)*m.colCap, m.cols)
			stage := s.recordStage(gid, inRefs)
			for k := 0; k < c1-c0; k++ {
				out = append(out, ExecRef{Stage: stage, Col: k})
			}
		}
		return out, nil
	}
	for ct := range m.tiles {
		c0, c1 := ct*m.colCap, min((ct+1)*m.colCap, m.cols)
		width := c1 - c0
		tileStages := make([]int, m.rowTiles)
		for rt, gid := range m.tiles[ct] {
			r0, r1 := rt*s.maxRows, min((rt+1)*s.maxRows, m.rows)
			tileStages[rt] = s.recordStage(gid, inRefs[r0:r1:r1])
		}
		for ri, gid := range m.reds[ct] {
			o0 := ri * m.pack
			o1 := min(o0+m.pack, width)
			redW := o1 - o0
			refs := make([]ExecRef, 0, 2*m.rowTiles*redW)
			for k := 0; k < redW; k++ {
				for t := 0; t < m.rowTiles; t++ {
					refs = append(refs,
						ExecRef{Stage: tileStages[t], Col: 2 * (o0 + k)},
						ExecRef{Stage: tileStages[t], Col: 2*(o0+k) + 1})
				}
			}
			stage := s.recordStage(gid, refs)
			for k := 0; k < redW; k++ {
				out = append(out, ExecRef{Stage: stage, Col: k})
			}
		}
	}
	return out, nil
}

// lowerConvExact lowers an ungrouped convolution with trained weights
// ([K²·Cin][OutC], rows ordered (c, ky, kx)).
func (s *synthesizer) lowerConvExact(n *cgraph.Node, op cgraph.Conv2D) error {
	if op.Groups > 1 {
		return fmt.Errorf("functional synthesis does not support grouped conv %q", n.Name)
	}
	in := n.Inputs[0].OutShape
	rows := op.Kernel * op.Kernel * in.C
	w := s.opts.Weights(n.Name)
	if w == nil {
		return fmt.Errorf("functional synthesis missing weights for layer %q", n.Name)
	}
	reuse := n.OutShape.H * n.OutShape.W
	mat, err := s.buildExactMatrix(n.Name, n.Name, rows, op.OutC, reuse, s.depsOf(n), w)
	if err != nil {
		return err
	}
	inRefs := s.nodeRefs[n.Inputs[0].ID]
	if len(inRefs) != in.Elems() {
		return fmt.Errorf("layer %q: %d producer refs, want %d", n.Name, len(inRefs), in.Elems())
	}
	outRefs := make([]ExecRef, n.OutShape.Elems())
	window := make([]ExecRef, rows)
	for oy := 0; oy < n.OutShape.H; oy++ {
		for ox := 0; ox < n.OutShape.W; ox++ {
			for c := 0; c < in.C; c++ {
				for ky := 0; ky < op.Kernel; ky++ {
					for kx := 0; kx < op.Kernel; kx++ {
						iy := oy*op.Stride - op.Pad + ky
						ix := ox*op.Stride - op.Pad + kx
						row := (c*op.Kernel+ky)*op.Kernel + kx
						if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
							window[row] = ExecRef{Stage: ZeroStage}
						} else {
							window[row] = inRefs[chwIndex(in, c, iy, ix)]
						}
					}
				}
			}
			colRefs, err := mat.invoke(window)
			if err != nil {
				return fmt.Errorf("layer %q at (%d,%d): %w", n.Name, oy, ox, err)
			}
			for oc := 0; oc < op.OutC; oc++ {
				outRefs[chwIndex(n.OutShape, oc, oy, ox)] = colRefs[oc]
			}
		}
	}
	s.produced[n.ID] = execGroupIDs(mat)
	s.nodeRefs[n.ID] = outRefs
	return nil
}

// execGroupIDs lists the matrix's group IDs (for produced bookkeeping).
func execGroupIDs(m *exactMatrix) []int {
	var ids []int
	ids = append(ids, m.flat...)
	for _, ts := range m.tiles {
		ids = append(ids, ts...)
	}
	for _, rs := range m.reds {
		ids = append(ids, rs...)
	}
	return ids
}
