package synth

import (
	"math/rand"
	"sync"
	"testing"

	"fpsa/internal/xbar"
)

// densityInputs draws b input vectors whose expected spike density (mean
// count / window) is roughly d, mixing silent elements with active ones
// the way thresholded activations do.
func densityInputs(rng *rand.Rand, b, n, window int, d float64) [][]int {
	ins := make([][]int, b)
	for i := range ins {
		x := make([]int, n)
		if d >= 1 {
			for k := range x {
				x[k] = window
			}
		} else if d > 0 {
			for k := range x {
				if rng.Float64() < 0.5 {
					continue
				}
				c := int(2 * d * float64(window) * rng.Float64() * 2)
				if c > window {
					c = window
				}
				x[k] = c
			}
		}
		ins[i] = x
	}
	return ins
}

// sparseModes enumerates the three execution modes as fresh RunOptions
// factories parameterized by spiking path, with identical noisy seeds so
// every executor programs the same conductances.
func sparseModes(path xbar.Path) map[string]func() RunOptions {
	return map[string]func() RunOptions{
		"reference": func() RunOptions { return RunOptions{Mode: ModeReference, Spike: path} },
		"spiking":   func() RunOptions { return RunOptions{Mode: ModeSpiking, Spike: path} },
		"noisy": func() RunOptions {
			return RunOptions{Mode: ModeSpikingNoisy, Spike: path, Rng: rand.New(rand.NewSource(1741))}
		},
	}
}

// TestSparseMatchesDenseProperty is the end-to-end bit-exactness property
// the ISSUE pins: for random programs and inputs at densities from 0 to 1,
// the forced-sparse, forced-dense, and auto paths produce identical
// outputs in all three execution modes, on a single-chip Executor and on
// 2- and 4-chip pipelines.
func TestSparseMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	g, ws := buildTestMLP(rng, []int{20, 14, 10, 8, 6})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stages) < 4 {
		t.Fatalf("test MLP has %d stages, need ≥4 for a 4-chip cut", len(prog.Stages))
	}
	window := opts.Params.SamplingWindow()
	for _, d := range []float64{0, 0.03, 0.1, 0.4, 1.0} {
		inputs := densityInputs(rng, 5, 20, window, d)
		for mode, mkDense := range sparseModes(xbar.PathDense) {
			dense, err := NewExecutor(prog, mkDense())
			if err != nil {
				t.Fatal(err)
			}
			want, err := dense.RunBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if st := dense.KernelStats(); st.SparseBatches != 0 {
				t.Fatalf("d=%g %s: forced-dense executor took %d sparse batches", d, mode, st.SparseBatches)
			}
			for variant, mkOpts := range map[string]func() RunOptions{
				"sparse": sparseModes(xbar.PathSparse)[mode],
				"auto":   sparseModes(xbar.PathAuto)[mode],
			} {
				ex, err := NewExecutor(prog, mkOpts())
				if err != nil {
					t.Fatal(err)
				}
				got, err := ex.RunBatch(inputs)
				if err != nil {
					t.Fatal(err)
				}
				assertSameOutputs(t, "d/"+mode+"/"+variant+"/1-chip", want, got)
				if variant == "sparse" && mode != "reference" {
					if st := ex.KernelStats(); st.DenseBatches != 0 || st.SparseBatches == 0 {
						t.Fatalf("d=%g %s: forced-sparse executor ran %d dense / %d sparse batches",
							d, mode, st.DenseBatches, st.SparseBatches)
					}
				}
				for _, chips := range []int{2, 4} {
					pe := pipelineAt(t, prog, chips, mkOpts())
					got, err := pe.RunBatch(inputs)
					if err != nil {
						t.Fatal(err)
					}
					assertSameOutputs(t, "d/"+mode+"/"+variant+"/pipelined", want, got)
					if err := pe.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// assertSameOutputs requires positionally identical batch outputs.
func assertSameOutputs(t *testing.T, label string, want, got [][]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for b := range want {
		for j := range want[b] {
			if got[b][j] != want[b][j] {
				t.Fatalf("%s: item %d out[%d]: got %d, want %d", label, b, j, got[b][j], want[b][j])
			}
		}
	}
}

// TestSparseDegenerateInputs covers the degenerate windows the ISSUE
// calls out at the program level: the all-zero batch, the all-ones
// (full-window) batch, and a single-item batch, on both kernels.
func TestSparseDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	g, ws := buildTestMLP(rng, []int{12, 8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	zero := make([]int, 12)
	full := make([]int, 12)
	for i := range full {
		full[i] = window
	}
	cases := map[string][][]int{
		"all-zero":    {zero, zero},
		"all-ones":    {full, full, full},
		"single-item": {randomInput(rng, 12, window)},
		"mixed":       {zero, full, randomInput(rng, 12, window)},
	}
	for name, inputs := range cases {
		dense, err := NewExecutor(prog, RunOptions{Mode: ModeSpiking, Spike: xbar.PathDense})
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := NewExecutor(prog, RunOptions{Mode: ModeSpiking, Spike: xbar.PathSparse})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dense.RunBatch(inputs)
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		got, err := sparse.RunBatch(inputs)
		if err != nil {
			t.Fatalf("%s: sparse: %v", name, err)
		}
		assertSameOutputs(t, name, want, got)
	}
}

// TestSparsePipelineRaceStress drives concurrent micro-batches through a
// sharded pipeline on the packed path while another goroutine polls
// KernelStats — the exact overlap the serving engine produces. Run with
// -race this pins the atomicity of the kernel-selection counters and the
// single-writer discipline of the packed scratch buffers.
func TestSparsePipelineRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	g, ws := buildTestMLP(rng, []int{16, 12, 8, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe := pipelineAt(t, prog, 4, RunOptions{Mode: ModeSpiking, Spike: xbar.PathAuto})
	defer pe.Close()
	window := opts.Params.SamplingWindow()

	const workers, rounds = 4, 8
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = pe.KernelStats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(700 + int64(w)))
			for r := 0; r < rounds; r++ {
				d := []float64{0.02, 0.2, 1.0}[r%3]
				inputs := densityInputs(wrng, 3, 16, window, d)
				first, err := pe.RunBatch(inputs)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// The same batch again must be deterministic even while
				// other workers interleave their jobs.
				again, err := pe.RunBatch(inputs)
				if err != nil {
					t.Errorf("worker %d: rerun: %v", w, err)
					return
				}
				for b := range first {
					for j := range first[b] {
						if first[b][j] != again[b][j] {
							t.Errorf("worker %d: nondeterministic out[%d][%d]: %d then %d",
								w, b, j, first[b][j], again[b][j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()
	if st := pe.KernelStats(); st.SparseBatches+st.DenseBatches == 0 {
		t.Error("race stress ran no kernel batches")
	}
}
