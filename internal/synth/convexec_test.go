package synth

import (
	"math"
	"math/rand"
	"testing"

	"fpsa/internal/cgraph"
)

// convNet builds input→conv(+relu) with random weights and returns the
// program plus the raw float weights ([K²Cin][OutC], (c,ky,kx) rows).
func convNet(t *testing.T, seed int64, inC, h, w, outC, k, stride, pad int) (*Program, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := cgraph.New("conv")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: inC, H: h, W: w}})
	c := g.MustAdd("conv", cgraph.Conv2D{OutC: outC, Kernel: k, Stride: stride, Pad: pad}, in)
	g.MustAdd("relu", cgraph.ReLU{}, c)
	rows := k * k * inC
	weights := make([][]float64, rows)
	for r := range weights {
		weights[r] = make([]float64, outC)
		for j := range weights[r] {
			weights[r][j] = (rng.Float64()*2 - 1) / float64(rows)
		}
	}
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return weights }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog, weights
}

// directConv computes the convolution independently on the program's own
// quantized weights and η (plain loops, no stages), returning CHW counts.
func directConv(prog *Program, input []int, inC, h, w, outC, k, stride, pad, outH, outW int) []float64 {
	// Recover the quantized weights and eta from the first (and only)
	// compute group.
	grp := prog.Graph.Groups[0]
	out := make([]float64, outC*outH*outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for oc := 0; oc < outC; oc++ {
				var acc float64
				for c := 0; c < inC; c++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							row := (c*k+ky)*k + kx
							acc += float64(grp.Weights[row][oc]) * float64(input[(c*h+iy)*w+ix])
						}
					}
				}
				v := acc / grp.Eta
				if v < 0 {
					v = 0
				}
				out[(oc*outH+oy)*outW+ox] = v
			}
		}
	}
	return out
}

func TestConvExactMatchesDirectConvolution(t *testing.T) {
	const inC, h, w, outC, k = 2, 5, 5, 3, 3
	prog, _ := convNet(t, 61, inC, h, w, outC, k, 1, 1)
	rng := rand.New(rand.NewSource(62))
	window := prog.Params.SamplingWindow()
	input := make([]int, inC*h*w)
	for i := range input {
		input[i] = rng.Intn(window + 1)
	}
	got, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	want := directConv(prog, input, inC, h, w, outC, k, 1, 1, 5, 5)
	if len(got) != len(want) {
		t.Fatalf("outputs %d, want %d", len(got), len(want))
	}
	for i := range got {
		wf := math.Min(want[i], float64(window))
		if math.Abs(float64(got[i])-wf) > 2 {
			t.Errorf("out[%d] = %d, direct %.2f", i, got[i], wf)
		}
	}
}

func TestConvExactStrideAndPadding(t *testing.T) {
	prog, _ := convNet(t, 63, 1, 6, 6, 2, 3, 2, 1)
	rng := rand.New(rand.NewSource(64))
	window := prog.Params.SamplingWindow()
	input := make([]int, 36)
	for i := range input {
		input[i] = rng.Intn(window + 1)
	}
	got, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	want := directConv(prog, input, 1, 6, 6, 2, 3, 2, 1, 3, 3)
	for i := range got {
		wf := math.Min(want[i], float64(window))
		if math.Abs(float64(got[i])-wf) > 2 {
			t.Errorf("out[%d] = %d, direct %.2f", i, got[i], wf)
		}
	}
}

func TestConvSharedGroupsAcrossPositions(t *testing.T) {
	// A conv layer with 25 positions must create a constant number of
	// weight groups (tiles), not per-position copies, with reuse
	// matching the position count.
	prog, _ := convNet(t, 65, 2, 5, 5, 3, 3, 1, 1)
	if n := len(prog.Graph.Groups); n != 1 {
		t.Fatalf("groups = %d, want 1 (18x3 fits one crossbar)", n)
	}
	if r := prog.Graph.Groups[0].Reuse; r != 25 {
		t.Errorf("reuse = %d, want 25", r)
	}
	if len(prog.Stages) != 25 {
		t.Errorf("stages = %d, want 25 (one per position)", len(prog.Stages))
	}
}

func TestMaxPoolExactComputesMax(t *testing.T) {
	g := cgraph.New("pool")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 3, H: 4, W: 4}})
	g.MustAdd("pool", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, in)
	// A weight-free graph still needs the Weights option to select the
	// functional path.
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	window := prog.Params.SamplingWindow()
	input := make([]int, 48)
	for i := range input {
		input[i] = rng.Intn(window + 1)
	}
	got, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	// Independent max pooling.
	idx := func(c, y, x int) int { return (c*4+y)*4 + x }
	oi := 0
	for c := 0; c < 3; c++ {
		for oy := 0; oy < 2; oy++ {
			for ox := 0; ox < 2; ox++ {
				max := 0
				for ky := 0; ky < 2; ky++ {
					for kx := 0; kx < 2; kx++ {
						if v := input[idx(c, 2*oy+ky, 2*ox+kx)]; v > max {
							max = v
						}
					}
				}
				if got[oi] != max {
					t.Errorf("pool out[%d] = %d, want %d", oi, got[oi], max)
				}
				oi++
			}
		}
	}
}

func TestGlobalAvgPoolExact(t *testing.T) {
	g := cgraph.New("gap")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 2, H: 3, W: 3}})
	g.MustAdd("gap", cgraph.GlobalAvgPool{}, in)
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	input := []int{9, 9, 9, 9, 9, 9, 9, 9, 9, 0, 18, 0, 18, 0, 18, 0, 18, 0}
	got, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 mean = 9; channel 1 mean = 8 (72/9).
	if got[0] < 8 || got[0] > 9 {
		t.Errorf("gap[0] = %d, want ~9", got[0])
	}
	if got[1] < 7 || got[1] > 8 {
		t.Errorf("gap[1] = %d, want ~8", got[1])
	}
}

func TestResidualAddExact(t *testing.T) {
	g := cgraph.New("res")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 2, H: 2, W: 2}})
	sum := g.MustAdd("sum", cgraph.Add{}, in, in)
	g.MustAdd("relu", cgraph.ReLU{}, sum)
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	input := []int{1, 2, 3, 4, 5, 6, 7, 8}
	got, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range input {
		if got[i] != 2*v {
			t.Errorf("add out[%d] = %d, want %d", i, got[i], 2*v)
		}
	}
}

func TestCNNEndToEndSpiking(t *testing.T) {
	// conv → relu → maxpool → gap → fc: the full structural vocabulary
	// in one program; spiking execution tracks the reference within a
	// few counts despite the six-stage depth.
	rng := rand.New(rand.NewSource(67))
	g := cgraph.New("cnn")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 1, H: 8, W: 8}})
	c1 := g.MustAdd("conv1", cgraph.Conv2D{OutC: 4, Kernel: 3, Stride: 1, Pad: 1}, in)
	r1 := g.MustAdd("relu1", cgraph.ReLU{}, c1)
	p1 := g.MustAdd("pool1", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, r1)
	gap := g.MustAdd("gap", cgraph.GlobalAvgPool{}, p1)
	fc := g.MustAdd("fc", cgraph.FC{Out: 3}, gap)
	g.MustAdd("relu2", cgraph.ReLU{}, fc)

	weights := map[string][][]float64{}
	mk := func(rows, cols int, scale float64) [][]float64 {
		w := make([][]float64, rows)
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = (rng.Float64()*2 - 1) * scale
			}
		}
		return w
	}
	weights["conv1"] = mk(9, 4, 0.3)
	weights["fc"] = mk(4, 3, 0.5)
	opts := DefaultOptions()
	opts.Weights = func(l string) [][]float64 { return weights[l] }
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	input := make([]int, 64)
	for i := range input {
		input[i] = rng.Intn(window + 1)
	}
	ref, err := prog.Run(input, RunOptions{Mode: ModeReference})
	if err != nil {
		t.Fatal(err)
	}
	spiked, err := prog.Run(input, RunOptions{Mode: ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if d := spiked[i] - ref[i]; d < -6 || d > 6 {
			t.Errorf("out[%d]: spiking %d vs reference %d", i, spiked[i], ref[i])
		}
	}
}

func TestFunctionalLRNUnsupported(t *testing.T) {
	g := cgraph.New("lrn")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 4, H: 2, W: 2}})
	g.MustAdd("lrn", cgraph.LRN{}, in)
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	if _, _, err := Compile(g, opts); err == nil {
		t.Error("functional LRN accepted")
	}
}
