package synth

import (
	"fmt"
	"sync"

	"fpsa/internal/device"
	"fpsa/internal/shard"
	"fpsa/internal/xbar"
)

// ErrPipelineClosed is returned by PipelineExecutor methods after Close.
var ErrPipelineClosed = fmt.Errorf("synth: pipeline executor closed")

// PartitionStages cuts the program's stage list into up to maxChips
// per-chip segments using internal/shard: per-chip load is the number of
// distinct programmed crossbars (weight groups) the segment owns, cut
// traffic is the number of logical signals (stage-output columns and
// forwarded external inputs) crossing each boundary, and a weight group
// shared by several stages (convolution positions) pins all of them to
// one chip — a physical crossbar lives on exactly one die.
//
// maxChips is clamped to what the program supports: if no legal
// maxChips-way cut exists (fewer stages than chips, or shared groups pin
// too much together), the largest feasible chip count is used, down to a
// single chip. The plan is deterministic for a given program and policy.
func (p *Program) PartitionStages(maxChips int, policy shard.Policy) (*shard.Plan, error) {
	n := len(p.Stages)
	if n == 0 {
		return nil, fmt.Errorf("synth: program has no stages to partition")
	}
	if maxChips < 1 {
		maxChips = 1
	}
	if maxChips > n {
		maxChips = n
	}

	// Per-stage weight: 1 where a group's crossbar is first programmed,
	// 0 for later reuses of the same group.
	weights := make([]int, n)
	firstUse := make(map[int]int, len(p.Graph.Groups))
	lastUse := make(map[int]int, len(p.Graph.Groups))
	for si, st := range p.Stages {
		if _, ok := firstUse[st.GroupID]; !ok {
			firstUse[st.GroupID] = si
			weights[si] = 1
		}
		lastUse[st.GroupID] = si
	}

	// A cut between stages c-1 and c is illegal while any group spans it.
	illegal := make([]bool, n+1)
	for gid, first := range firstUse { //fpsa:nondet OR-accumulates a bool mask; order-free
		for c := first + 1; c <= lastUse[gid]; c++ {
			illegal[c] = true
		}
	}

	// Signals: each referenced (producer stage, column) is one signal
	// alive from its producer to its last consumer; external input
	// columns are produced off-chain (Prod = -1). Output refs stay live
	// to the final stage — the last chip emits the network's outputs.
	type src struct{ stage, col int }
	last := make(map[src]int)
	note := func(ref ExecRef, consumer int) {
		switch ref.Stage {
		case ZeroStage:
			return // constant zero is materialized locally, never shipped
		case ExternalStage:
			if prev, ok := last[src{-1, ref.Col}]; !ok || consumer > prev {
				last[src{-1, ref.Col}] = consumer
			}
		default:
			if prev, ok := last[src{ref.Stage, ref.Col}]; !ok || consumer > prev {
				last[src{ref.Stage, ref.Col}] = consumer
			}
		}
	}
	for si, st := range p.Stages {
		for _, ref := range st.InRefs {
			note(ref, si)
		}
	}
	for _, ref := range p.OutputRefs {
		note(ref, n-1)
	}
	// Coalesce per (producer, last consumer). Signal order is free to
	// vary (map iteration): the partitioner only ever sums widths per
	// cut, so the plan stays deterministic.
	width := make(map[[2]int]int, len(last))
	for s, l := range last { //fpsa:nondet counts into a map; order-free
		width[[2]int{s.stage, l}]++
	}
	signals := make([]shard.Signal, 0, len(width))
	for k, w := range width { //fpsa:nondet the partitioner only sums widths per cut
		signals = append(signals, shard.Signal{Prod: k[0], Last: k[1], Width: w})
	}

	// Degrade gracefully: the densest legal cut count wins.
	for chips := maxChips; ; chips-- {
		plan, err := shard.Partition(weights, signals, illegal, shard.Options{Chips: chips, Policy: policy})
		if err == nil {
			return plan, nil
		}
		if chips == 1 {
			return nil, fmt.Errorf("synth: partition failed even at one chip: %w", err)
		}
	}
}

// pipeJob is one micro-batch in flight through the chip pipeline. outs is
// the per-stage output table (batch×cols flat, indexed by global stage);
// each chip fills its own stage range, so exactly one goroutine writes
// any entry and the channel hand-off orders the accesses.
type pipeJob struct {
	inputs  [][]int
	outs    [][]int
	results [][]int
	err     error
	done    chan struct{}
}

// pipeChip is one simulated chip of the pipeline: the contiguous stage
// range [lo, hi) and the crossbars programmed for the groups those stages
// own. Its goroutine consumes jobs in FIFO order, so the per-chip scratch
// input buffers and crossbar scratch are single-threaded even while
// different chips work on different jobs concurrently.
type pipeChip struct {
	lo, hi int
	units  map[int]*xbar.Crossbar
	ins    [][]int // per-stage gather scratch, indexed by global stage
	in     chan *pipeJob
}

// PipelineExecutor executes a Program across several simulated chips with
// chip-level pipeline parallelism: the stage list is cut into contiguous
// per-chip segments (see PartitionStages) and each chip runs on its own
// goroutine, so while chip 1 evaluates micro-batch N, chip 0 is already
// evaluating micro-batch N+1. One RunBatch call flows through every chip
// and is bit-identical to the same batch on a single-chip Executor in all
// three execution modes; throughput comes from overlapping *concurrent*
// RunBatch calls, which — unlike Executor — are safe here: jobs enqueue
// and the chips process them in order.
//
// Construction programs every weight group exactly once, in the same
// global stage order as NewExecutor and from the same RunOptions.Rng
// stream, so a sharded deployment carries the same programmed (and, in
// ModeSpikingNoisy, identically noisy) conductances as the single-chip
// deployment it replaces. Close releases the chip goroutines.
type PipelineExecutor struct {
	prog      *Program
	plan      *shard.Plan
	opts      RunOptions
	chips     []*pipeChip
	stageCols []int

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewPipelineExecutor programs p's weight groups under opts, distributes
// them over the plan's chips and starts one goroutine per chip. A nil
// plan partitions the program over a single chip (useful for uniform
// caller code). The plan must come from p.PartitionStages: segment
// boundaries may not split a shared weight group.
func NewPipelineExecutor(p *Program, plan *shard.Plan, opts RunOptions) (*PipelineExecutor, error) {
	if plan == nil {
		var err error
		plan, err = p.PartitionStages(1, shard.PolicyBalanced)
		if err != nil {
			return nil, err
		}
	}
	n := len(p.Stages)
	if got := plan.Bounds[len(plan.Bounds)-1]; got != n {
		return nil, fmt.Errorf("synth: plan covers %d stages, program has %d", got, n)
	}
	spec := opts.Spec
	if spec.Bits == 0 {
		spec = device.Cell4Bit
	}
	if opts.Mode != ModeSpikingNoisy {
		spec.Sigma = 0
	} else if opts.Rng == nil {
		return nil, fmt.Errorf("synth: ModeSpikingNoisy requires RunOptions.Rng")
	}
	opts.Spec = spec
	cfg := xbar.Config{
		Params:          p.Params,
		Spec:            spec,
		Rep:             device.NewAdd(spec, p.Params.CellsPerWeight),
		Path:            opts.Spike,
		SparseThreshold: opts.SparseThreshold,
	}

	pe := &PipelineExecutor{
		prog:      p,
		plan:      plan,
		opts:      opts,
		chips:     make([]*pipeChip, plan.Chips()),
		stageCols: make([]int, n),
	}
	for k := range pe.chips {
		pe.chips[k] = &pipeChip{
			lo:    plan.Bounds[k],
			hi:    plan.Bounds[k+1],
			units: make(map[int]*xbar.Crossbar),
			ins:   make([][]int, n),
			in:    make(chan *pipeJob, 1),
		}
	}
	// Program each group once, in global first-use stage order — the
	// exact draw order NewExecutor uses, so ModeSpikingNoisy variation is
	// bit-identical to the single-chip deployment. The owning chip is the
	// one whose range holds the first use; the partitioner guarantees all
	// uses fall inside it.
	programmed := make(map[int]bool, len(p.Graph.Groups))
	for si, st := range p.Stages {
		grp := p.Graph.Groups[st.GroupID]
		pe.stageCols[si] = grp.Cols
		if programmed[st.GroupID] {
			continue
		}
		programmed[st.GroupID] = true
		chip := pe.chips[pe.chipOf(si)]
		if si < chip.lo || si >= chip.hi {
			return nil, fmt.Errorf("synth: internal: stage %d outside its chip range", si)
		}
		c := cfg
		c.Eta = grp.Eta
		// Fault maps key on the global group ID, so a group lands on the
		// same stuck cells regardless of which chip owns it — pipelined
		// deployments see exactly the single-chip faults.
		c.Faults = faultMaskFor(opts.Faults, p.Params, grp, st.GroupID)
		u, err := xbar.Program(c, grp.Weights, opts.Rng)
		if err != nil {
			return nil, fmt.Errorf("synth: stage %d (%s): %w", si, grp.Name, err)
		}
		chip.units[st.GroupID] = u
	}
	// Group uses must not leak across the owning chip's boundary.
	for si, st := range p.Stages {
		if pe.chips[pe.chipOf(si)].units[st.GroupID] == nil {
			return nil, fmt.Errorf("synth: plan splits weight group %q across chips (stage %d)",
				p.Graph.Groups[st.GroupID].Name, si)
		}
	}

	pe.wg.Add(len(pe.chips))
	for k, chip := range pe.chips {
		var next chan *pipeJob
		if k+1 < len(pe.chips) {
			next = pe.chips[k+1].in
		}
		go pe.runChip(chip, next)
	}
	return pe, nil
}

// chipOf returns the chip index owning global stage si.
func (pe *PipelineExecutor) chipOf(si int) int { return pe.plan.ShardOf(si) }

// Chips returns the pipeline depth.
func (pe *PipelineExecutor) Chips() int { return len(pe.chips) }

// Plan returns the stage partition the pipeline runs.
func (pe *PipelineExecutor) Plan() *shard.Plan { return pe.plan }

// Mode returns the execution mode the pipeline was programmed for.
func (pe *PipelineExecutor) Mode() ExecMode { return pe.opts.Mode }

// KernelStats sums the spiking-kernel selection counters over every
// crossbar on every chip. The counters are atomics, so reading them while
// chip goroutines are mid-batch is safe (each count lands before the
// batch's results are delivered).
func (pe *PipelineExecutor) KernelStats() xbar.KernelStats {
	var st xbar.KernelStats
	for _, chip := range pe.chips {
		for _, u := range chip.units { //fpsa:nondet summing uint64 counters; order-free
			st = st.Add(u.KernelStats())
		}
	}
	return st
}

// FaultedCells sums the stuck logical cells pinned across every crossbar
// on every chip — identical to the single-chip Executor's count, since
// fault maps key on global group IDs.
func (pe *PipelineExecutor) FaultedCells() int {
	n := 0
	for _, chip := range pe.chips {
		for _, u := range chip.units { //fpsa:nondet summing int counters; order-free
			n += u.FaultedCells()
		}
	}
	return n
}

// Validate checks one input vector without executing anything.
func (pe *PipelineExecutor) Validate(input []int) error {
	if err := pe.prog.validateInput(input); err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	return nil
}

// Run executes one input vector through the chip pipeline.
func (pe *PipelineExecutor) Run(input []int) ([]int, error) {
	outs, err := pe.RunBatch([][]int{input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch streams one micro-batch through every chip and returns one
// freshly allocated output slice per input, positionally — bit-identical
// to Executor.RunBatch on the same program and options. RunBatch is safe
// for concurrent use, and concurrent calls are how the pipeline earns its
// keep: while a later chip finishes batch N, earlier chips are already
// working on batches N+1, N+2, …
func (pe *PipelineExecutor) RunBatch(inputs [][]int) ([][]int, error) {
	for b, in := range inputs {
		if err := pe.prog.validateInput(in); err != nil {
			return nil, fmt.Errorf("synth: batch item %d: %w", b, err)
		}
	}
	if len(inputs) == 0 {
		return nil, nil
	}
	job := &pipeJob{
		inputs: inputs,
		outs:   make([][]int, len(pe.prog.Stages)),
		done:   make(chan struct{}),
	}
	pe.mu.RLock()
	if pe.closed {
		pe.mu.RUnlock()
		return nil, ErrPipelineClosed
	}
	pe.chips[0].in <- job
	pe.mu.RUnlock()
	<-job.done
	return job.results, job.err
}

// Close stops the chip goroutines. In-flight jobs complete; later
// RunBatch calls return ErrPipelineClosed. Close is idempotent.
func (pe *PipelineExecutor) Close() error {
	pe.mu.Lock()
	if pe.closed {
		pe.mu.Unlock()
		return nil
	}
	pe.closed = true
	close(pe.chips[0].in)
	pe.mu.Unlock()
	pe.wg.Wait()
	return nil
}

// runChip is one chip's execution loop: evaluate the job's batch over
// the chip's stage range, then hand the job downstream (or finish it).
// Closing the first chip's channel cascades a shutdown through the
// pipeline.
func (pe *PipelineExecutor) runChip(chip *pipeChip, next chan *pipeJob) {
	defer pe.wg.Done()
	if next != nil {
		defer close(next)
	}
	for job := range chip.in {
		if job.err == nil {
			if err := pe.runStages(chip, job); err != nil {
				job.err = err
			}
		}
		if next != nil {
			next <- job
			continue
		}
		if job.err == nil {
			job.results = pe.gather(job)
		}
		close(job.done)
	}
}

// runStages evaluates the job's batch over chip's stage range. The logic
// mirrors Executor.runBatch exactly — same gather, same kernels — so
// outputs are bit-identical; only the buffer ownership differs (outs
// travel with the job, gather scratch stays on the chip).
func (pe *PipelineExecutor) runStages(chip *pipeChip, job *pipeJob) error {
	p := pe.prog
	B := len(job.inputs)
	for si := chip.lo; si < chip.hi; si++ {
		st := p.Stages[si]
		nrows := len(st.InRefs)
		x := growInts(chip.ins[si], B*nrows)
		chip.ins[si] = x
		for b, in := range job.inputs {
			row := x[b*nrows : (b+1)*nrows]
			for r, ref := range st.InRefs {
				switch {
				case ref.Stage == ExternalStage:
					row[r] = in[ref.Col]
				case ref.Stage == ZeroStage:
					row[r] = 0
				case ref.Stage >= 0 && ref.Stage < si:
					row[r] = job.outs[ref.Stage][b*pe.stageCols[ref.Stage]+ref.Col]
				default:
					return fmt.Errorf("synth: stage %d row %d references stage %d", si, r, ref.Stage)
				}
			}
		}
		out := make([]int, B*pe.stageCols[si])
		job.outs[si] = out
		unit := chip.units[st.GroupID]
		var err error
		switch pe.opts.Mode {
		case ModeReference:
			err = unit.ReferenceBatch(out, x, B)
		case ModeSpiking, ModeSpikingNoisy:
			err = unit.SimulateCountsBatch(out, x, B)
		default:
			err = fmt.Errorf("unknown exec mode %d", pe.opts.Mode)
		}
		if err != nil {
			return fmt.Errorf("synth: stage %d (%s): %w", si, p.Graph.Groups[st.GroupID].Name, err)
		}
	}
	return nil
}

// gather reads the job's output refs into per-item result slices.
func (pe *PipelineExecutor) gather(job *pipeJob) [][]int {
	p := pe.prog
	results := make([][]int, len(job.inputs))
	for b := range results {
		res := make([]int, len(p.OutputRefs))
		for i, ref := range p.OutputRefs {
			if ref.Stage == ExternalStage {
				res[i] = job.inputs[b][ref.Col]
				continue
			}
			res[i] = job.outs[ref.Stage][b*pe.stageCols[ref.Stage]+ref.Col]
		}
		results[b] = res
	}
	return results
}
