package synth

import (
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/xbar"
)

// faultTestProgram compiles the standard little MLP the fault properties
// run on, plus a batch of quantized inputs.
func faultTestProgram(t *testing.T) (*Program, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(601))
	g, ws := buildTestMLP(rng, []int{20, 14, 10, 8, 6})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog, batchInputs(rng, 6, 20, opts.Params.SamplingWindow())
}

// runFaulted executes the batch once under the given options on a fresh
// executor and returns the outputs and the residual faulted-cell count.
func runFaulted(t *testing.T, prog *Program, opts RunOptions, inputs [][]int) ([][]int, int) {
	t.Helper()
	ex, err := NewExecutor(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ex.RunBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out, ex.FaultedCells()
}

// TestFaultsZeroRateBitIdentical pins the zero-rate-equivalence
// invariant: a nil fault model, an all-zero model, and a zero-rate model
// with remap enabled are bit-identical to each other across all three
// execution modes and both spiking kernels. The masked-weights fault
// construction guarantees this — an empty mask changes no weight and
// draws nothing from any RNG stream.
func TestFaultsZeroRateBitIdentical(t *testing.T) {
	prog, inputs := faultTestProgram(t)
	for mode, mkOpts := range pipelineModes() {
		for _, path := range []xbar.Path{xbar.PathDense, xbar.PathSparse} {
			base := mkOpts()
			base.Spike = path
			want, _ := runFaulted(t, prog, base, inputs)
			for name, fm := range map[string]*device.FaultModel{
				"zero-value": {},
				"zero-rate":  {Rate: 0, Seed: 42, Remap: true},
			} {
				opts := mkOpts()
				opts.Spike = path
				opts.Faults = fm
				got, cells := runFaulted(t, prog, opts, inputs)
				if cells != 0 {
					t.Fatalf("%s/%v/%s: %d faulted cells from an inactive model", mode, path, name, cells)
				}
				assertSameOutputs(t, mode+"/"+name, want, got)
			}
		}
	}
}

// TestFaultsDeterministicSameSeed: the same fault model on two fresh
// executors programs identical faulted hardware — identical outputs and
// identical residual counts — in every mode and on both kernels.
func TestFaultsDeterministicSameSeed(t *testing.T) {
	prog, inputs := faultTestProgram(t)
	fm := func() *device.FaultModel {
		return &device.FaultModel{Rate: 0.03, Seed: 11, Drift: 0.05, ReadSigma: 1e-7, Remap: true}
	}
	for mode, mkOpts := range pipelineModes() {
		for _, path := range []xbar.Path{xbar.PathDense, xbar.PathSparse} {
			a := mkOpts()
			a.Spike, a.Faults = path, fm()
			b := mkOpts()
			b.Spike, b.Faults = path, fm()
			outA, cellsA := runFaulted(t, prog, a, inputs)
			outB, cellsB := runFaulted(t, prog, b, inputs)
			if cellsA != cellsB {
				t.Fatalf("%s/%v: faulted cells %d vs %d from the same seed", mode, path, cellsA, cellsB)
			}
			assertSameOutputs(t, mode+"/same-seed", outA, outB)
		}
	}
}

// TestFaultsDenseVsPackedBitIdentical: with an active fault model — stuck
// cells, drift and read variation together — the dense and bit-packed
// kernels still agree bit for bit. Drift makes column sums non-integer,
// so this exercises the packed kernel's non-exact-sums path under faults.
func TestFaultsDenseVsPackedBitIdentical(t *testing.T) {
	prog, inputs := faultTestProgram(t)
	fm := &device.FaultModel{Rate: 0.05, Seed: 5, Drift: 0.08, ReadSigma: 2e-7, Remap: false}
	for mode, mkOpts := range pipelineModes() {
		dense := mkOpts()
		dense.Spike, dense.Faults = xbar.PathDense, fm
		sparse := mkOpts()
		sparse.Spike, sparse.Faults = xbar.PathSparse, fm
		outD, cellsD := runFaulted(t, prog, dense, inputs)
		outS, cellsS := runFaulted(t, prog, sparse, inputs)
		if cellsD == 0 {
			t.Fatalf("%s: unremapped 5%% fault rate left no faulted cells", mode)
		}
		if cellsD != cellsS {
			t.Fatalf("%s: dense sees %d faulted cells, packed %d", mode, cellsD, cellsS)
		}
		assertSameOutputs(t, mode+"/dense-vs-packed", outD, outS)
	}
}

// TestFaultsPipelineMatchesExecutor: fault maps key on the global group
// ID, not the owning chip or replica, so a faulted program pipelined
// across 2 and 4 chips is bit-identical to the faulted single-chip
// executor in every mode.
func TestFaultsPipelineMatchesExecutor(t *testing.T) {
	prog, inputs := faultTestProgram(t)
	for mode, mkOpts := range pipelineModes() {
		for name, fm := range map[string]*device.FaultModel{
			"remap":   {Rate: 0.04, Seed: 23, Remap: true},
			"noremap": {Rate: 0.04, Seed: 23, Drift: 0.03, Remap: false},
		} {
			mk := func() RunOptions {
				o := mkOpts()
				o.Faults = fm
				return o
			}
			assertPipelineMatchesExecutor(t, "faults/"+mode+"/"+name, prog, mk, []int{2, 4}, inputs)
		}
	}
}

// TestFaultsPipelineFaultedCells: the pipelined executor reports the same
// residual faulted-cell total as the single-chip executor — the chips
// partition the same global fault population.
func TestFaultsPipelineFaultedCells(t *testing.T) {
	prog, _ := faultTestProgram(t)
	fm := &device.FaultModel{Rate: 0.05, Seed: 9, Remap: false}
	single, err := NewExecutor(prog, RunOptions{Mode: ModeReference, Faults: fm})
	if err != nil {
		t.Fatal(err)
	}
	want := single.FaultedCells()
	if want == 0 {
		t.Fatal("unremapped 5% fault rate left no faulted cells")
	}
	for _, chips := range []int{2, 4} {
		pe := pipelineAt(t, prog, chips, RunOptions{Mode: ModeReference, Faults: fm})
		if got := pe.FaultedCells(); got != want {
			t.Fatalf("%d-chip pipeline reports %d faulted cells, single-chip %d", chips, got, want)
		}
		if err := pe.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultsRemapReducesResidual: spare-row/column remapping steers
// stuck cells away from live weights — the remapped residual must be
// strictly below the unremapped one at a rate that faults this model,
// and outputs must differ from the unremapped arm's only through those
// residuals (sanity: high unremapped rates perturb outputs at all).
func TestFaultsRemapReducesResidual(t *testing.T) {
	prog, inputs := faultTestProgram(t)
	base, _ := runFaulted(t, prog, RunOptions{Mode: ModeReference}, inputs)
	_, without := runFaulted(t, prog, RunOptions{Mode: ModeReference, Faults: &device.FaultModel{Rate: 0.08, Seed: 3, Remap: false}}, inputs)
	faulted, with := runFaulted(t, prog, RunOptions{Mode: ModeReference, Faults: &device.FaultModel{Rate: 0.08, Seed: 3, Remap: true}}, inputs)
	if without == 0 {
		t.Fatal("unremapped 8% fault rate left no faulted cells")
	}
	if with >= without {
		t.Fatalf("remapping left %d faulted cells, no-remap arm has %d", with, without)
	}
	// The small test crossbars have generous spare capacity, so remap
	// should fully clean this model; if it does, outputs match baseline.
	if with == 0 {
		assertSameOutputs(t, "remapped-clean", base, faulted)
	}
}
