// Package synth implements FPSA's neural synthesizer (paper §5.1): it
// lowers a computational graph into a core-op graph containing only
// operations the hardware executes natively — ≤256×256 vector-matrix
// multiplications followed by ReLU.
//
// The lowering follows the compiler line of work the paper adopts [19, 20]:
//
//   - Convolutions are im2col'd and FC layers taken directly; matrices
//     larger than one crossbar are tiled. Row-split layers compute signed
//     partial sums as positive/negative logical-column pairs and a
//     reduction core-op recombines them (ReLU(Σ(p⁺−p⁻)) equals the true
//     activation).
//   - Max pooling becomes a tree of pairwise-max structures, each built
//     from two core-ops via max(a,b) = a + ReLU(b−a); average pooling is a
//     single 1/K² matrix; LRN is approximated by a small two-layer MLP;
//     residual adds become two-row columns. These small matrices are
//     block-diagonally packed across channels, which is exactly why
//     synthesized pooling dominates PE counts in GoogLeNet (§7.3).
//
// For fully connected networks with supplied trained weights, synthesis
// additionally produces an executable Program whose stages run on actual
// PE models (integer reference or cycle-level spiking simulation).
package synth

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
	"fpsa/internal/device"
)

// Options configures synthesis.
type Options struct {
	// Params supplies the PE's logical crossbar dimensions.
	Params device.Params
	// Weights optionally supplies trained float weights per layer name
	// ([in][out]) for functional synthesis of FC networks; shape-only
	// synthesis leaves it nil.
	Weights func(layer string) [][]float64
}

// DefaultOptions returns shape-only synthesis at the evaluated 45 nm
// configuration.
func DefaultOptions() Options { return Options{Params: device.Params45nm} }

// Synthesize lowers g into a core-op graph.
func Synthesize(g *cgraph.Graph, opts Options) (*coreop.Graph, error) {
	co, _, err := synthesize(g, opts)
	return co, err
}

func synthesize(g *cgraph.Graph, opts Options) (*coreop.Graph, *Program, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("synth: %w", err)
	}
	s := &synthesizer{
		opts:     opts,
		maxRows:  opts.Params.CrossbarRows,
		maxCols:  opts.Params.LogicalColumns(),
		out:      &coreop.Graph{Name: g.Name},
		produced: make(map[int][]int),
		nodeRefs: make(map[int][]ExecRef),
	}
	for _, n := range g.Nodes() {
		if err := s.lower(n); err != nil {
			return nil, nil, fmt.Errorf("synth: node %q: %w", n.Name, err)
		}
	}
	if err := s.out.Validate(s.maxRows, s.maxCols); err != nil {
		return nil, nil, err
	}
	var prog *Program
	if opts.Weights != nil {
		outs := g.Outputs()
		if len(outs) != 1 {
			return nil, nil, fmt.Errorf("synth: functional synthesis needs one output, got %d", len(outs))
		}
		refs := s.nodeRefs[outs[0].ID]
		if len(refs) == 0 {
			return nil, nil, fmt.Errorf("synth: functional synthesis produced no output refs (missing layer weights?)")
		}
		prog = &Program{
			Graph:      s.out,
			Params:     opts.Params,
			Stages:     s.ExecStages,
			OutputRefs: refs,
			InputSize:  s.inputSize,
		}
	}
	return s.out, prog, nil
}

type synthesizer struct {
	opts     Options
	maxRows  int
	maxCols  int
	out      *coreop.Graph
	produced map[int][]int // CG node ID → group IDs carrying its output

	// Functional-path state.
	nodeRefs   map[int][]ExecRef // CG node ID → refs of its logical outputs
	ExecStages []ExecStage
	inputSize  int
	// Shared structural groups (pairwise max, averaging, residual add),
	// keyed by width so one programmed crossbar serves every invocation.
	pairwise  map[int]pairwiseGroups
	avgGroups map[[2]int]int
	addGroups map[int]int
}

// recordStage appends an executable stage and returns its index.
func (s *synthesizer) recordStage(groupID int, inRefs []ExecRef) int {
	s.ExecStages = append(s.ExecStages, ExecStage{GroupID: groupID, InRefs: append([]ExecRef(nil), inRefs...)})
	return len(s.ExecStages) - 1
}

// depsOf gathers the producing groups of a node's operands.
func (s *synthesizer) depsOf(n *cgraph.Node) []int {
	var deps []int
	seen := make(map[int]bool)
	for _, in := range n.Inputs {
		for _, gid := range s.produced[in.ID] {
			if !seen[gid] {
				seen[gid] = true
				deps = append(deps, gid)
			}
		}
	}
	return deps
}

// refsOf concatenates the operand refs of a node in operand order.
func (s *synthesizer) refsOf(n *cgraph.Node) []ExecRef {
	var refs []ExecRef
	for _, in := range n.Inputs {
		refs = append(refs, s.nodeRefs[in.ID]...)
	}
	return refs
}

// lower dispatches one CG node.
func (s *synthesizer) lower(n *cgraph.Node) error {
	switch op := n.Op.(type) {
	case cgraph.Input:
		s.produced[n.ID] = nil
		if s.opts.Weights != nil {
			size := n.OutShape.Elems()
			s.inputSize = size
			refs := make([]ExecRef, size)
			for i := range refs {
				refs[i] = ExecRef{Stage: ExternalStage, Col: i}
			}
			s.nodeRefs[n.ID] = refs
		}
		return nil
	case cgraph.Conv2D:
		if s.opts.Weights != nil {
			return s.lowerConvExact(n, op)
		}
		return s.lowerConv(n, op)
	case cgraph.FC:
		return s.lowerFC(n, op)
	case cgraph.Pool:
		if s.opts.Weights != nil {
			if op.PoolKind == cgraph.AvgPoolKind {
				return s.lowerAvgPoolExact(n, op.Kernel, op.Stride, op.Pad, n.OutShape.H, n.OutShape.W)
			}
			return s.lowerMaxPoolExact(n, op)
		}
		return s.lowerPool(n, op)
	case cgraph.GlobalAvgPool:
		if s.opts.Weights != nil {
			return s.lowerAvgPoolExact(n, 0, 0, 0, 1, 1)
		}
		return s.lowerGlobalAvgPool(n)
	case cgraph.LRN:
		if s.opts.Weights != nil {
			return fmt.Errorf("functional synthesis does not support LRN (%q)", n.Name)
		}
		return s.lowerLRN(n)
	case cgraph.Add:
		if s.opts.Weights != nil {
			return s.lowerAddExact(n)
		}
		return s.lowerAdd(n)
	case cgraph.ReLU, cgraph.BatchNorm, cgraph.Dropout, cgraph.Flatten,
		cgraph.Softmax, cgraph.Concat:
		// ReLU fuses into the producing core-ops; BatchNorm folds into
		// the preceding convolution's weights; Concat/Flatten are pure
		// wiring; Dropout/Softmax run off-fabric.
		s.produced[n.ID] = s.depsOf(n)
		s.nodeRefs[n.ID] = s.refsOf(n)
		return nil
	default:
		return fmt.Errorf("unsupported op %q", op.Kind())
	}
}

// lowerConv tiles an im2col'd convolution (shape-only: conv layers are not
// part of the executable-FC path).
func (s *synthesizer) lowerConv(n *cgraph.Node, op cgraph.Conv2D) error {
	groups := 1
	if op.Groups > 1 {
		groups = op.Groups
	}
	inC := n.Inputs[0].OutShape.C
	rows := op.Kernel * op.Kernel * inC / groups
	cols := op.OutC / groups
	reuse := n.OutShape.H * n.OutShape.W
	deps := s.depsOf(n)
	var outGroups []int
	for gi := 0; gi < groups; gi++ {
		name := n.Name
		if groups > 1 {
			name = fmt.Sprintf("%s.g%d", n.Name, gi)
		}
		ids, _, err := s.tileMatrix(name, n.Name, rows, cols, reuse, deps, nil, nil)
		if err != nil {
			return err
		}
		outGroups = append(outGroups, ids...)
	}
	s.produced[n.ID] = outGroups
	return nil
}

// lowerFC tiles a fully connected layer (reuse degree 1), attaching real
// weights when the option supplies them.
func (s *synthesizer) lowerFC(n *cgraph.Node, op cgraph.FC) error {
	rows := n.Inputs[0].OutShape.Elems()
	var weights [][]float64
	var inRefs []ExecRef
	if s.opts.Weights != nil {
		weights = s.opts.Weights(n.Name)
		if weights == nil {
			return fmt.Errorf("functional synthesis missing weights for layer %q", n.Name)
		}
		if len(weights) != rows || len(weights[0]) != op.Out {
			return fmt.Errorf("weight source for %q is %dx%d, want %dx%d",
				n.Name, len(weights), len(weights[0]), rows, op.Out)
		}
		inRefs = s.nodeRefs[n.Inputs[0].ID]
		if len(inRefs) != rows {
			return fmt.Errorf("layer %q: %d producer refs, want %d", n.Name, len(inRefs), rows)
		}
	}
	ids, outRefs, err := s.tileMatrix(n.Name, n.Name, rows, op.Out, 1, s.depsOf(n), weights, inRefs)
	if err != nil {
		return err
	}
	s.produced[n.ID] = ids
	s.nodeRefs[n.ID] = outRefs
	return nil
}
