package synth

import (
	"strings"
	"testing"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
	"fpsa/internal/models"
)

func TestSynthesizeMLPShape(t *testing.T) {
	co, err := Synthesize(models.MLP500_100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// fc1 784×500 → 4×2 tiles; fc2 500×100 → 2 tiles; fc3 100×10 → 1:
	// 11 tiles, no reductions (SMB counters merge partials in the
	// shape-only accounting). All groups reuse=1.
	if co.MaxReuse() != 1 {
		t.Errorf("MLP MaxReuse = %d, want 1 (no weight sharing)", co.MaxReuse())
	}
	kinds := co.GroupsByKind()
	if kinds[coreop.KindCompute] != 11 {
		t.Errorf("compute groups = %d, want 11", kinds[coreop.KindCompute])
	}
	if kinds[coreop.KindReduce] != 0 {
		t.Errorf("reduce groups = %d, want 0 (SMB-counter merged)", kinds[coreop.KindReduce])
	}
	if err := co.Validate(256, 256); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeVGG16(t *testing.T) {
	co, err := Synthesize(models.VGG16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Minimum PEs must at least hold all weights: 138.3M / 65536 ≈ 2111.
	if got := len(co.Groups); got < 2111 {
		t.Errorf("VGG16 groups = %d, want ≥2111 (weight capacity)", got)
	}
	// conv1_1's reuse degree is the largest: 224×224 = 50176.
	if got := co.MaxReuse(); got != 224*224 {
		t.Errorf("VGG16 MaxReuse = %d, want 50176", got)
	}
}

func TestSynthesizeGoogLeNetPoolingDominates(t *testing.T) {
	// §7.3: after synthesis the pooling operations occupy 67.2% of
	// GoogLeNet's PEs. Our pairwise-max lowering must reproduce the
	// effect: pooling structures dominate the group count.
	co, err := Synthesize(models.GoogLeNet(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	kinds := co.GroupsByKind()
	total := 0
	for _, n := range kinds {
		total += n
	}
	frac := float64(kinds[coreop.KindPool]) / float64(total)
	if frac < 0.4 {
		t.Errorf("pool groups fraction = %.2f (%v of %d), want ≥0.4 (paper: 0.672)", frac, kinds[coreop.KindPool], total)
	}
	t.Logf("GoogLeNet pool-PE fraction: %.3f (paper reports 0.672)", frac)
}

func TestSynthesizeAllZooModels(t *testing.T) {
	for _, g := range models.All() {
		co, err := Synthesize(g, DefaultOptions())
		if err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		if err := co.Validate(256, 256); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if len(co.Groups) == 0 {
			t.Errorf("%s: no groups", g.Name)
		}
	}
}

func TestSynthesizeGroupedConvSplitsGroups(t *testing.T) {
	g := cgraph.New("grouped")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 8, H: 6, W: 6}})
	g.MustAdd("conv", cgraph.Conv2D{OutC: 8, Kernel: 3, Stride: 1, Pad: 1, Groups: 2}, in)
	co, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Groups) != 2 {
		t.Fatalf("grouped conv produced %d groups, want 2", len(co.Groups))
	}
	for _, grp := range co.Groups {
		if grp.Rows != 9*4 || grp.Cols != 4 {
			t.Errorf("group %s footprint %dx%d, want 36x4", grp.Name, grp.Rows, grp.Cols)
		}
		if grp.Reuse != 36 {
			t.Errorf("group %s reuse %d, want 36", grp.Name, grp.Reuse)
		}
	}
}

func TestSynthesizeRowSplitFootprints(t *testing.T) {
	// Shape-only: a 600×300 FC ceil-tiles into 3 row tiles × 2 column
	// tiles with no reduction groups (SMB counters merge partials).
	g := cgraph.New("split")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(600)})
	g.MustAdd("fc", cgraph.FC{Out: 300}, in)
	co, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Groups) != 6 {
		t.Fatalf("groups = %d, want 6 (3×2 ceil tiling)", len(co.Groups))
	}
	for _, grp := range co.Groups {
		if grp.Kind != coreop.KindCompute {
			t.Errorf("group %s kind = %v, want compute", grp.Name, grp.Kind)
		}
	}
}

func TestFunctionalRowSplitKeepsExactReductions(t *testing.T) {
	// The functional path must keep explicit ± pairs and reduction
	// core-ops: exactness over the shape-only accounting.
	g := cgraph.New("split")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(600)})
	g.MustAdd("fc", cgraph.FC{Out: 300}, in)
	w := make([][]float64, 600)
	for i := range w {
		w[i] = make([]float64, 300)
	}
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return w }
	co, _, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	kinds := co.GroupsByKind()
	if kinds[coreop.KindReduce] == 0 {
		t.Error("functional split produced no reduction groups")
	}
	for _, grp := range co.Groups {
		if grp.Kind == coreop.KindCompute && grp.Cols%2 != 0 {
			t.Errorf("functional split tile %s has odd column count %d", grp.Name, grp.Cols)
		}
	}
}

func TestSynthesizeMaxPoolTree(t *testing.T) {
	// A 2×2 max pool needs K²−1 = 3 pairwise maxes = 6 core-op groups
	// per channel pack.
	g := cgraph.New("pool")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 16, H: 8, W: 8}})
	g.MustAdd("pool", cgraph.Pool{PoolKind: cgraph.MaxPoolKind, Kernel: 2, Stride: 2}, in)
	co, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Groups) != 6 {
		t.Fatalf("2x2 max pool groups = %d, want 6", len(co.Groups))
	}
	for _, grp := range co.Groups {
		if grp.Kind != coreop.KindPool {
			t.Errorf("group %s kind %v", grp.Name, grp.Kind)
		}
		if grp.Reuse != 16 {
			t.Errorf("group %s reuse %d, want 16", grp.Name, grp.Reuse)
		}
		// Block-diagonal: tiny useful weights vs footprint.
		if grp.UsefulWeights != 2*16 {
			t.Errorf("group %s useful = %d, want 32", grp.Name, grp.UsefulWeights)
		}
	}
}

func TestSynthesizeAvgPoolExact(t *testing.T) {
	g := cgraph.New("avg")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 64, H: 4, W: 4}})
	g.MustAdd("gap", cgraph.GlobalAvgPool{}, in)
	co, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 16-value window: pack = 256/16 = 16 channels → 4 groups.
	if len(co.Groups) != 4 {
		t.Fatalf("GAP groups = %d, want 4", len(co.Groups))
	}
	for _, grp := range co.Groups {
		if grp.Rows != 256 || grp.Cols != 16 {
			t.Errorf("group %s footprint %dx%d, want 256x16", grp.Name, grp.Rows, grp.Cols)
		}
	}
}

func TestSynthesizeResNetAddGroups(t *testing.T) {
	g := cgraph.New("res")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 256, H: 7, W: 7}})
	a := g.MustAdd("a", cgraph.Conv2D{OutC: 256, Kernel: 1, Stride: 1}, in)
	sum := g.MustAdd("sum", cgraph.Add{}, a, in)
	g.MustAdd("relu", cgraph.ReLU{}, sum)
	co, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var adds int
	for _, grp := range co.Groups {
		if grp.Kind == coreop.KindElementwise {
			adds++
			if grp.Reuse != 49 {
				t.Errorf("add group reuse %d, want 49", grp.Reuse)
			}
		}
	}
	if adds != 2 {
		t.Errorf("add groups = %d, want 2 (256 channels / 128 pack)", adds)
	}
}

func TestSynthesizeDepsAreTopological(t *testing.T) {
	for _, name := range []string{models.NameLeNet, models.NameGoogLeNet} {
		g, err := models.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Synthesize(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, grp := range co.Groups {
			for _, d := range grp.Deps {
				if d >= grp.ID {
					t.Fatalf("%s: group %s dep %d not earlier", name, grp.Name, d)
				}
			}
		}
	}
}

func TestSynthesizeErrorsOnMissingWeights(t *testing.T) {
	g := cgraph.New("g")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(8)})
	g.MustAdd("fc", cgraph.FC{Out: 4}, in)
	opts := DefaultOptions()
	opts.Weights = func(string) [][]float64 { return nil }
	_, err := Synthesize(g, opts)
	if err == nil || !strings.Contains(err.Error(), "missing weights") {
		t.Errorf("err = %v, want missing-weights", err)
	}
}
