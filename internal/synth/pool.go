package synth

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/coreop"
)

// lowerPool lowers max pooling to a pairwise-max tree and average pooling
// to a 1/K² matrix, block-diagonally packed across channels.
func (s *synthesizer) lowerPool(n *cgraph.Node, op cgraph.Pool) error {
	k2 := op.Kernel * op.Kernel
	c := n.OutShape.C
	reuse := n.OutShape.H * n.OutShape.W
	deps := s.depsOf(n)
	if op.PoolKind == cgraph.AvgPoolKind {
		s.produced[n.ID] = s.avgPoolGroups(n.Name, k2, c, reuse, deps)
		return nil
	}
	s.produced[n.ID] = s.maxPoolGroups(n.Name, k2, c, reuse, deps)
	return nil
}

// lowerGlobalAvgPool averages each channel plane: a window of H×W values.
func (s *synthesizer) lowerGlobalAvgPool(n *cgraph.Node) error {
	in := n.Inputs[0].OutShape
	s.produced[n.ID] = s.avgPoolGroups(n.Name, in.H*in.W, in.C, 1, s.depsOf(n))
	return nil
}

// avgPoolGroups emits ceil(C/pack) groups whose matrices hold one 1/K²
// averaging column per channel.
func (s *synthesizer) avgPoolGroups(name string, k2, c, reuse int, deps []int) []int {
	pack := s.maxRows / k2
	if pack > s.maxCols {
		pack = s.maxCols
	}
	if pack < 1 {
		pack = 1 // degenerate window; one channel per group
	}
	var ids []int
	for c0, i := 0, 0; c0 < c; c0, i = c0+pack, i+1 {
		width := min(pack, c-c0)
		rows := min(k2*width, s.maxRows)
		grp := s.out.AddGroup(newGroup(name, fmt.Sprintf("%s.avg%d", name, i),
			coreop.KindPool, rows, width, reuse, deps))
		grp.UsefulWeights = int64(k2) * int64(width)
		ids = append(ids, grp.ID)
	}
	return ids
}

// poolChannelPack is how many channels one pairwise-max structure serves.
// A pool structure's rows interleave operands from two different producer
// blocks, so its practical packing is bounded by connection-box fan-in
// rather than crossbar rows; the value is calibrated so synthesized
// GoogLeNet reproduces the paper's §7.3 observation that pooling occupies
// 67.2% of PEs.
const poolChannelPack = 48

// maxPoolGroups emits the pairwise-max tree: each pairwise max over the K²
// window values is two core-ops — d = ReLU(b−a), then m = ReLU(a+d) —
// packed across channels. Levels chain as dependencies, so a K²-value
// window costs 2·(K²−1) core-op stages of depth 2·ceil(log2 K²).
func (s *synthesizer) maxPoolGroups(name string, k2, c, reuse int, deps []int) []int {
	pack := poolChannelPack
	if pack > s.maxRows/2 {
		pack = s.maxRows / 2
	}
	packs := (c + pack - 1) / pack
	level := 0
	prev := deps
	for m := k2; m > 1; m = (m + 1) / 2 {
		pairs := m / 2
		var levelIDs []int
		for p := 0; p < pairs; p++ {
			for cp := 0; cp < packs; cp++ {
				width := min(pack, c-cp*pack)
				diff := s.out.AddGroup(newGroup(name,
					fmt.Sprintf("%s.max%d.p%d.d%d", name, level, p, cp),
					coreop.KindPool, 2*width, width, reuse, prev))
				diff.UsefulWeights = 2 * int64(width)
				comb := s.out.AddGroup(newGroup(name,
					fmt.Sprintf("%s.max%d.p%d.c%d", name, level, p, cp),
					coreop.KindPool, 2*width, width, reuse, []int{diff.ID}))
				comb.UsefulWeights = 2 * int64(width)
				levelIDs = append(levelIDs, comb.ID)
			}
		}
		prev = levelIDs
		level++
	}
	return prev
}

// lowerLRN approximates local response normalization with a two-layer MLP
// over each channel's 5-wide neighborhood (hidden width 4), per [19, 20].
func (s *synthesizer) lowerLRN(n *cgraph.Node) error {
	const window, hidden = 5, 4
	c := n.OutShape.C
	reuse := n.OutShape.H * n.OutShape.W
	deps := s.depsOf(n)
	pack1 := min(s.maxRows/window, s.maxCols/hidden)
	pack2 := min(s.maxRows/hidden, s.maxCols)
	var stage1 []int
	for c0, i := 0, 0; c0 < c; c0, i = c0+pack1, i+1 {
		width := min(pack1, c-c0)
		grp := s.out.AddGroup(newGroup(n.Name, fmt.Sprintf("%s.lrn_h%d", n.Name, i),
			coreop.KindElementwise, window*width, hidden*width, reuse, deps))
		grp.UsefulWeights = int64(window) * int64(hidden) * int64(width)
		stage1 = append(stage1, grp.ID)
	}
	var stage2 []int
	for c0, i := 0, 0; c0 < c; c0, i = c0+pack2, i+1 {
		width := min(pack2, c-c0)
		grp := s.out.AddGroup(newGroup(n.Name, fmt.Sprintf("%s.lrn_o%d", n.Name, i),
			coreop.KindElementwise, hidden*width, width, reuse, stage1))
		grp.UsefulWeights = int64(hidden) * int64(width)
		stage2 = append(stage2, grp.ID)
	}
	s.produced[n.ID] = stage2
	return nil
}

// lowerAdd lowers the elementwise residual add: per channel a two-input
// identity column, out = ReLU(a+b).
func (s *synthesizer) lowerAdd(n *cgraph.Node) error {
	c := n.OutShape.C
	reuse := n.OutShape.H * n.OutShape.W
	deps := s.depsOf(n)
	pack := s.maxRows / 2
	var ids []int
	for c0, i := 0, 0; c0 < c; c0, i = c0+pack, i+1 {
		width := min(pack, c-c0)
		grp := s.out.AddGroup(newGroup(n.Name, fmt.Sprintf("%s.add%d", n.Name, i),
			coreop.KindElementwise, 2*width, width, reuse, deps))
		grp.UsefulWeights = 2 * int64(width)
		ids = append(ids, grp.ID)
	}
	s.produced[n.ID] = ids
	return nil
}
