package synth

import (
	"math/rand"
	"testing"
)

// TestExecutorReuseMatchesRun proves the program-once/run-many executor
// reproduces the per-call Program.Run path across repeated runs — the
// property the serving engine's per-worker replicas rely on.
func TestExecutorReuseMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	g, ws := buildTestMLP(rng, []int{16, 12, 4})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	window := opts.Params.SamplingWindow()
	for _, mode := range []ExecMode{ModeReference, ModeSpiking} {
		ex, err := NewExecutor(prog, RunOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			in := randomInput(rng, 16, window)
			want, err := prog.Run(in, RunOptions{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ex.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("mode %d trial %d: executor %v, Run %v", mode, trial, got, want)
				}
			}
		}
	}
}

// TestExecutorNoisyMatchesRun: an executor programmed from the same rng
// seed draws the same variation as one Program.Run call.
func TestExecutorNoisyMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	g, ws := buildTestMLP(rng, []int{12, 8, 3})
	opts := DefaultOptions()
	opts.Weights = ws
	_, prog, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	in := randomInput(rng, 12, opts.Params.SamplingWindow())
	want, err := prog.Run(in, RunOptions{Mode: ModeSpikingNoisy, Rng: rand.New(rand.NewSource(99))})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(prog, RunOptions{Mode: ModeSpikingNoisy, Rng: rand.New(rand.NewSource(99))})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("noisy executor %v, Run %v", got, want)
		}
	}
	if _, err := NewExecutor(prog, RunOptions{Mode: ModeSpikingNoisy}); err == nil {
		t.Error("noisy executor without rng accepted")
	}
	if ex.Mode() != ModeSpikingNoisy {
		t.Errorf("Mode = %d", ex.Mode())
	}
}
