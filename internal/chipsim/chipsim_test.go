package chipsim

import (
	"math/rand"
	"testing"

	"fpsa/internal/cgraph"
	"fpsa/internal/synth"
)

// compiled builds a functional program for a random MLP.
func compiled(t *testing.T, seed int64, dims []int) *synth.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := cgraph.New("chip")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Vec(dims[0])})
	x := in
	weights := make(map[string][][]float64)
	for i := 1; i < len(dims); i++ {
		name := "fc" + string(rune('0'+i))
		w := make([][]float64, dims[i-1])
		for r := range w {
			w[r] = make([]float64, dims[i])
			for c := range w[r] {
				w[r][c] = (rng.Float64()*2 - 1) / float64(dims[i-1])
			}
		}
		weights[name] = w
		x = g.MustAdd(name, cgraph.FC{Out: dims[i]}, x)
		x = g.MustAdd(name+"_relu", cgraph.ReLU{}, x)
	}
	opts := synth.DefaultOptions()
	opts.Weights = func(l string) [][]float64 { return weights[l] }
	_, prog, err := synth.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func randomCounts(rng *rand.Rand, n, window int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = rng.Intn(window + 1)
	}
	return in
}

func TestChipMatchesProgramSimulation(t *testing.T) {
	// The scheduled chip execution (NBD train streaming + SMB buffering
	// + controllers) must agree with the program-level spiking
	// simulation within the stream-timing artefact: the chip forwards
	// the producer's *raw* IF output train (§7.1's direct spike-train
	// transmission), while the program-level simulator re-encodes each
	// intermediate count as a uniform train — the subtracter is
	// sensitive to spike placement by at most ±1 per stage.
	prog := compiled(t, 41, []int{24, 16, 8})
	rng := rand.New(rand.NewSource(42))
	window := prog.Params.SamplingWindow()
	for trial := 0; trial < 5; trial++ {
		in := randomCounts(rng, 24, window)
		want, err := prog.Run(in, synth.RunOptions{Mode: synth.ModeSpiking})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(prog, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := got.Outputs[i] - want[i]; d < -2 || d > 2 {
				t.Errorf("trial %d out[%d]: chip %d vs program %d", trial, i, got.Outputs[i], want[i])
			}
		}
		if got.BufferedEdges != 0 {
			t.Errorf("reuse-1 chain buffered %d edges", got.BufferedEdges)
		}
		if got.ControllerLUTs == 0 {
			t.Error("no controller logic synthesized")
		}
	}
}

func TestChipRowSplitNetwork(t *testing.T) {
	// Row-split layers add reduction stages with fan-in from multiple
	// tiles; the chip path must still agree within the SMB saturation
	// artefact (Γ stored as Γ−1) when buffers appear.
	prog := compiled(t, 43, []int{600, 10})
	rng := rand.New(rand.NewSource(44))
	window := prog.Params.SamplingWindow()
	in := randomCounts(rng, 600, window)
	want, err := prog.Run(in, synth.RunOptions{Mode: synth.ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(prog, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := got.Outputs[i] - want[i]; d < -2 || d > 2 {
			t.Errorf("out[%d]: chip %d vs program %d", i, got.Outputs[i], want[i])
		}
	}
	if got.MakespanCycles <= window {
		t.Errorf("makespan %d not beyond one window", got.MakespanCycles)
	}
}

func TestChipWithVariationStaysClose(t *testing.T) {
	prog := compiled(t, 45, []int{24, 16, 8})
	rng := rand.New(rand.NewSource(46))
	window := prog.Params.SamplingWindow()
	in := randomCounts(rng, 24, window)
	ideal, err := Run(prog, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(prog, in, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	var dev int
	for i := range ideal.Outputs {
		d := noisy.Outputs[i] - ideal.Outputs[i]
		if d < 0 {
			d = -d
		}
		dev += d
	}
	if mean := float64(dev) / float64(len(ideal.Outputs)); mean > 8 {
		t.Errorf("mean |noisy − ideal| = %.2f counts", mean)
	}
}

func TestChipInputValidation(t *testing.T) {
	prog := compiled(t, 47, []int{8, 4})
	if _, err := Run(prog, make([]int, 7), Options{}); err == nil {
		t.Error("short input accepted")
	}
	bad := make([]int, 8)
	bad[3] = 1 << 20
	if _, err := Run(prog, bad, Options{}); err == nil {
		t.Error("out-of-window input accepted")
	}
}

func TestChipRejectsTimeMultiplexedPrograms(t *testing.T) {
	// Convolutional functional programs reuse one group across many
	// stages; the chip scheduler handles fully spatial programs only
	// and must say so.
	g := cgraph.New("conv")
	in := g.MustAdd("input", cgraph.Input{Shape: cgraph.Shape{C: 1, H: 4, W: 4}})
	c := g.MustAdd("conv", cgraph.Conv2D{OutC: 2, Kernel: 3, Stride: 1, Pad: 1}, in)
	g.MustAdd("relu", cgraph.ReLU{}, c)
	w := make([][]float64, 9)
	for r := range w {
		w[r] = []float64{0.1, -0.1}
	}
	opts := synth.DefaultOptions()
	opts.Weights = func(string) [][]float64 { return w }
	_, prog, err := synth.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, make([]int, 16), Options{}); err == nil {
		t.Error("time-multiplexed program accepted by chip scheduler")
	}
}

func TestChipConsecutiveSamplesIndependent(t *testing.T) {
	// Pipelined operation: successive samples through the same chip
	// must produce the same outputs as isolated runs (no state leaks
	// across sampling windows — the §4.2 reset contract).
	prog := compiled(t, 51, []int{16, 12, 4})
	rng := rand.New(rand.NewSource(52))
	window := prog.Params.SamplingWindow()
	inputs := make([][]int, 4)
	isolated := make([][]int, 4)
	for i := range inputs {
		inputs[i] = randomCounts(rng, 16, window)
		r, err := Run(prog, inputs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		isolated[i] = r.Outputs
	}
	// Stream the same samples back-to-back.
	for i := range inputs {
		r, err := Run(prog, inputs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range r.Outputs {
			if r.Outputs[j] != isolated[i][j] {
				t.Errorf("sample %d out[%d]: streamed %d vs isolated %d", i, j, r.Outputs[j], isolated[i][j])
			}
		}
	}
}

func TestChipSMBTrafficAccounting(t *testing.T) {
	// Buffered networks must report SMB write traffic; bufferless ones
	// must not.
	chain := compiled(t, 48, []int{16, 8})
	rng := rand.New(rand.NewSource(49))
	in := randomCounts(rng, 16, chain.Params.SamplingWindow())
	res, err := Run(chain, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferedEdges == 0 && res.SMBWrites != 0 {
		t.Errorf("bufferless run wrote %d counts to SMBs", res.SMBWrites)
	}
}
