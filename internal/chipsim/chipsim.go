// Package chipsim executes a functionally synthesized network the way the
// chip does: core-ops are scheduled by the spatial-to-temporal mapper
// (Algorithm 1), spike trains stream between PEs on bufferless NBD edges,
// SMB instances store counts (with their n-bit saturation) on buffered
// edges, and a synthesized CLB controller sequences every PE's sampling
// windows. It is the integration point of the whole repository: synth ×
// mapper × pe × smb × clb, cross-validated in tests against the
// program-level simulation (synth.Program.Run).
package chipsim

import (
	"fmt"
	"math/rand"

	"fpsa/internal/clb"
	"fpsa/internal/device"
	"fpsa/internal/mapper"
	"fpsa/internal/pe"
	"fpsa/internal/smb"
	"fpsa/internal/spike"
	"fpsa/internal/synth"
)

// Options configures a chip run.
type Options struct {
	// Spec is the ReRAM cell (default device.Cell4Bit with σ=0).
	Spec device.CellSpec
	// Rng enables programming variation when non-nil.
	Rng *rand.Rand
}

// Result reports one chip execution.
type Result struct {
	// Outputs are the network's output spike counts.
	Outputs []int
	// MakespanCycles is the schedule's end cycle.
	MakespanCycles int
	// BufferedEdges counts SMB-mediated connections.
	BufferedEdges int
	// SMBWrites is the total count-write traffic (endurance accounting).
	SMBWrites int64
	// ControllerLUTs is the LUT cost of the per-PE window controllers
	// actually synthesized and stepped during the run.
	ControllerLUTs int
}

// Run schedules and executes prog on the simulated chip for one input
// vector of spike counts.
func Run(prog *synth.Program, input []int, opts Options) (*Result, error) {
	if len(input) != prog.InputSize {
		return nil, fmt.Errorf("chipsim: input length %d, want %d", len(input), prog.InputSize)
	}
	window := prog.Params.SamplingWindow()
	for i, v := range input {
		if v < 0 || v > window {
			return nil, fmt.Errorf("chipsim: input[%d] = %d outside [0,%d]", i, v, window)
		}
	}
	spec := opts.Spec
	if spec.Bits == 0 {
		spec = device.Cell4Bit
	}
	if opts.Rng == nil {
		spec.Sigma = 0
	}

	// Schedule the core-op graph exactly as the mapper would.
	alloc, err := mapper.Allocate(prog.Graph, 1)
	if err != nil {
		return nil, err
	}
	og, err := mapper.Expand(prog.Graph, 1<<20)
	if err != nil {
		return nil, err
	}
	sched, err := mapper.ScheduleOps(og, alloc, window)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(og, alloc, window); err != nil {
		return nil, fmt.Errorf("chipsim: schedule invalid: %w", err)
	}

	// The chip scheduler handles fully spatial programs: one executable
	// stage per weight group (FC networks). Convolutional functional
	// programs time-multiplex groups over many stages and are served by
	// the program-level executor instead.
	stageOfGroup := make(map[int]int, len(prog.Stages))
	for si, st := range prog.Stages {
		if _, dup := stageOfGroup[st.GroupID]; dup {
			return nil, fmt.Errorf("chipsim: group %d has multiple stages (time-multiplexed program); use synth.Program.Run", st.GroupID)
		}
		stageOfGroup[st.GroupID] = si
	}

	res := &Result{MakespanCycles: sched.Makespan}
	cfg := pe.Config{Params: prog.Params, Spec: spec, Rep: device.NewAdd(spec, prog.Params.CellsPerWeight)}

	// Execute groups in topological (schedule) order. NBD edges hand
	// the producer's train over directly (one-cycle skew preserves the
	// pattern); buffered edges round-trip through a real SMB instance.
	outTrains := make([][]spike.Train, len(prog.Graph.Groups))
	for gi, grp := range prog.Graph.Groups {
		si, ok := stageOfGroup[gi]
		if !ok {
			return nil, fmt.Errorf("chipsim: group %d (%s) has no executable stage", gi, grp.Name)
		}
		stage := prog.Stages[si]
		inputs := make([]spike.Train, len(stage.InRefs))
		for r, ref := range stage.InRefs {
			switch {
			case ref.Stage < 0:
				inputs[r] = spike.UniformTrain(input[ref.Col], window)
			default:
				srcGroup := prog.Stages[ref.Stage].GroupID
				tr := outTrains[srcGroup][ref.Col]
				if sched.Buffered[mapper.Edge{From: srcGroup, To: gi}] {
					buffered, writes, err := smbRoundTrip(prog.Params, tr)
					if err != nil {
						return nil, err
					}
					res.SMBWrites += writes
					inputs[r] = buffered
				} else {
					// NBD: the schedule proves the consumer covers
					// the producer shifted by one cycle.
					if sched.Start[gi] != sched.Start[srcGroup]+1 {
						return nil, fmt.Errorf("chipsim: NBD edge %d→%d without unit skew", srcGroup, gi)
					}
					inputs[r] = tr
				}
			}
		}
		unit := pe.New(cfg)
		unit.SetEta(grp.Eta)
		if err := unit.Program(grp.Weights, opts.Rng); err != nil {
			return nil, fmt.Errorf("chipsim: group %s: %w", grp.Name, err)
		}
		outs, err := unit.Simulate(inputs)
		if err != nil {
			return nil, fmt.Errorf("chipsim: group %s: %w", grp.Name, err)
		}
		outTrains[gi] = outs

		// Sequence the PE's sampling window with a real synthesized
		// controller and check it fires the reset exactly once per
		// window (the §4.2 reset before each new window).
		ctl, err := clb.NewController(window, prog.Params.LUTInputs,
			[]clb.Event{{Name: "reset", Cycles: []int{0}}})
		if err != nil {
			return nil, err
		}
		res.ControllerLUTs += ctl.LUTCount()
		resets := 0
		for c := 0; c < window; c++ {
			ev, err := ctl.Step()
			if err != nil {
				return nil, err
			}
			if ev["reset"] {
				resets++
			}
		}
		if resets != 1 {
			return nil, fmt.Errorf("chipsim: controller fired %d resets per window", resets)
		}
	}
	for e, buf := range sched.Buffered {
		_ = e
		if buf {
			res.BufferedEdges++
		}
	}

	res.Outputs = make([]int, len(prog.OutputRefs))
	for i, ref := range prog.OutputRefs {
		if ref.Stage < 0 {
			res.Outputs[i] = input[ref.Col]
			continue
		}
		srcGroup := prog.Stages[ref.Stage].GroupID
		res.Outputs[i] = outTrains[srcGroup][ref.Col].Count()
	}
	return res, nil
}

// smbRoundTrip stores a train's count in a fresh 16 Kb SMB and re-emits it
// as the uniform train the embedded spike generator produces, returning
// the write traffic.
func smbRoundTrip(params device.Params, tr spike.Train) (spike.Train, int64, error) {
	buf, err := smb.New(params, tr.Window())
	if err != nil {
		return nil, 0, err
	}
	if err := buf.ReceiveTrain(0, tr); err != nil {
		return nil, 0, err
	}
	out, err := buf.EmitTrain(0)
	if err != nil {
		return nil, 0, err
	}
	return out, buf.Writes(), nil
}
