package cgraph

import (
	"strings"
	"testing"
)

func buildTiny(t *testing.T) (*Graph, *Node) {
	t.Helper()
	g := New("tiny")
	in, err := g.Input("in", Vec(16))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := g.Add("fc", FC{Out: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("relu", ReLU{}, fc); err != nil {
		t.Fatal(err)
	}
	return g, in
}

func TestGraphBuildAndStats(t *testing.T) {
	g, _ := buildTiny(t)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.TotalWeights(); got != 64 {
		t.Errorf("TotalWeights = %d", got)
	}
	if got := g.TotalOps(); got != 128 {
		t.Errorf("TotalOps = %d", got)
	}
	outs := g.Outputs()
	if len(outs) != 1 || outs[0].Name != "relu" {
		t.Errorf("Outputs = %v", outs)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGraphRejectsForeignNode(t *testing.T) {
	g, _ := buildTiny(t)
	other := New("other")
	foreign, err := other.Input("in", Vec(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("bad", ReLU{}, foreign); err == nil {
		t.Error("foreign input node accepted")
	}
	if _, err := g.Add("bad2", ReLU{}, nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestGraphAddPropagatesShapeErrors(t *testing.T) {
	g := New("g")
	in, err := g.Input("in", Shape{C: 50, H: 4, W: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Add("fc", FC{Out: 10}, in)
	if err == nil || !strings.Contains(err.Error(), "not flat") {
		t.Errorf("err = %v, want flatten hint", err)
	}
}

func TestConsumersCount(t *testing.T) {
	g := New("g")
	in, _ := g.Input("in", Vec(8))
	a, _ := g.Add("a", ReLU{}, in)
	if _, err := g.Add("b", ReLU{}, in); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("sum", Add{}, a, a); err != nil {
		t.Fatal(err)
	}
	if got := g.Consumers(in); got != 2 {
		t.Errorf("Consumers(in) = %d, want 2", got)
	}
	if got := g.Consumers(a); got != 2 {
		t.Errorf("Consumers(a) = %d, want 2 (used twice by add)", got)
	}
}

func TestValidateCatchesMutation(t *testing.T) {
	g, _ := buildTiny(t)
	g.Nodes()[1].OutShape = Vec(999)
	if err := g.Validate(); err == nil {
		t.Error("mutated shape passed validation")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic on invalid op")
		}
	}()
	g := New("g")
	g.MustAdd("bad", FC{Out: 10}) // no inputs
}
