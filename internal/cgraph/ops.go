package cgraph

import "fmt"

// Op is one tensor operation. Implementations infer output shapes and
// report the statistics the rest of the stack consumes.
type Op interface {
	// Kind returns the operation's type name.
	Kind() string
	// InferShape validates input shapes and returns the output shape.
	InferShape(in []Shape) (Shape, error)
	// Weights returns the multiply-matrix parameter count (0 for
	// weight-free operations).
	Weights(in []Shape) int64
	// MACs returns the multiply-accumulate count per sample.
	MACs(in []Shape, out Shape) int64
}

// Input is a graph source.
type Input struct{ Shape Shape }

// Kind implements Op.
func (Input) Kind() string { return "input" }

// InferShape implements Op.
func (op Input) InferShape(in []Shape) (Shape, error) {
	if len(in) != 0 {
		return Shape{}, fmt.Errorf("cgraph: input takes no operands")
	}
	if !op.Shape.Valid() {
		return Shape{}, fmt.Errorf("cgraph: invalid input shape %v", op.Shape)
	}
	return op.Shape, nil
}

// Weights implements Op.
func (Input) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Input) MACs([]Shape, Shape) int64 { return 0 }

// Conv2D is a 2-D convolution (optionally grouped, as in AlexNet).
type Conv2D struct {
	OutC   int
	Kernel int
	Stride int
	Pad    int
	Groups int // 0 or 1 means ungrouped
}

func (op Conv2D) groups() int {
	if op.Groups <= 1 {
		return 1
	}
	return op.Groups
}

// Kind implements Op.
func (Conv2D) Kind() string { return "conv2d" }

// InferShape implements Op.
func (op Conv2D) InferShape(in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: conv2d takes one operand")
	}
	s := in[0]
	g := op.groups()
	if op.OutC <= 0 || op.OutC%g != 0 || s.C%g != 0 {
		return Shape{}, fmt.Errorf("cgraph: conv2d channels %d→%d not divisible by groups %d", s.C, op.OutC, g)
	}
	h, err := convOut(s.H, op.Kernel, op.Stride, op.Pad)
	if err != nil {
		return Shape{}, err
	}
	w, err := convOut(s.W, op.Kernel, op.Stride, op.Pad)
	if err != nil {
		return Shape{}, err
	}
	return Shape{C: op.OutC, H: h, W: w}, nil
}

// Weights implements Op: K²·Cin/G·Cout.
func (op Conv2D) Weights(in []Shape) int64 {
	return int64(op.Kernel) * int64(op.Kernel) * int64(in[0].C/op.groups()) * int64(op.OutC)
}

// MACs implements Op: weights × output positions.
func (op Conv2D) MACs(in []Shape, out Shape) int64 {
	return op.Weights(in) * int64(out.H) * int64(out.W)
}

// FC is a fully connected layer over a flat feature vector.
type FC struct{ Out int }

// Kind implements Op.
func (FC) Kind() string { return "fc" }

// InferShape implements Op.
func (op FC) InferShape(in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: fc takes one operand")
	}
	if !in[0].IsVec() {
		return Shape{}, fmt.Errorf("cgraph: fc input %v is not flat (insert Flatten)", in[0])
	}
	if op.Out <= 0 {
		return Shape{}, fmt.Errorf("cgraph: fc output size %d", op.Out)
	}
	return Vec(op.Out), nil
}

// Weights implements Op.
func (op FC) Weights(in []Shape) int64 { return int64(in[0].Elems()) * int64(op.Out) }

// MACs implements Op.
func (op FC) MACs(in []Shape, out Shape) int64 { return op.Weights(in) }

// Pool kinds.
const (
	MaxPoolKind = "maxpool"
	AvgPoolKind = "avgpool"
)

// Pool is a max or average pooling window.
type Pool struct {
	PoolKind string // MaxPoolKind or AvgPoolKind
	Kernel   int
	Stride   int
	Pad      int
}

// Kind implements Op.
func (op Pool) Kind() string { return op.PoolKind }

// InferShape implements Op.
func (op Pool) InferShape(in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: pool takes one operand")
	}
	if op.PoolKind != MaxPoolKind && op.PoolKind != AvgPoolKind {
		return Shape{}, fmt.Errorf("cgraph: unknown pool kind %q", op.PoolKind)
	}
	s := in[0]
	h, err := convOut(s.H, op.Kernel, op.Stride, op.Pad)
	if err != nil {
		return Shape{}, err
	}
	w, err := convOut(s.W, op.Kernel, op.Stride, op.Pad)
	if err != nil {
		return Shape{}, err
	}
	return Shape{C: s.C, H: h, W: w}, nil
}

// Weights implements Op.
func (Pool) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Pool) MACs([]Shape, Shape) int64 { return 0 }

// GlobalAvgPool averages each channel plane to a single value.
type GlobalAvgPool struct{}

// Kind implements Op.
func (GlobalAvgPool) Kind() string { return "globalavgpool" }

// InferShape implements Op.
func (GlobalAvgPool) InferShape(in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: globalavgpool takes one operand")
	}
	return Vec(in[0].C), nil
}

// Weights implements Op.
func (GlobalAvgPool) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (GlobalAvgPool) MACs([]Shape, Shape) int64 { return 0 }

// ReLU is the rectifier; the PE provides it for free after every VMM.
type ReLU struct{}

// Kind implements Op.
func (ReLU) Kind() string { return "relu" }

// InferShape implements Op.
func (ReLU) InferShape(in []Shape) (Shape, error) { return passthrough("relu", in) }

// Weights implements Op.
func (ReLU) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (ReLU) MACs([]Shape, Shape) int64 { return 0 }

// LRN is local response normalization (AlexNet, GoogLeNet); approximated by
// the synthesizer with MLPs per [19, 20], weight-free at the CG level.
type LRN struct{}

// Kind implements Op.
func (LRN) Kind() string { return "lrn" }

// InferShape implements Op.
func (LRN) InferShape(in []Shape) (Shape, error) { return passthrough("lrn", in) }

// Weights implements Op.
func (LRN) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (LRN) MACs([]Shape, Shape) int64 { return 0 }

// BatchNorm is inference-mode batch normalization; its scale/shift fold
// into the preceding convolution's weights at synthesis time.
type BatchNorm struct{}

// Kind implements Op.
func (BatchNorm) Kind() string { return "batchnorm" }

// InferShape implements Op.
func (BatchNorm) InferShape(in []Shape) (Shape, error) { return passthrough("batchnorm", in) }

// Weights implements Op.
func (BatchNorm) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (BatchNorm) MACs([]Shape, Shape) int64 { return 0 }

// Add is elementwise addition (ResNet shortcuts).
type Add struct{}

// Kind implements Op.
func (Add) Kind() string { return "add" }

// InferShape implements Op.
func (Add) InferShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, fmt.Errorf("cgraph: add takes ≥2 operands")
	}
	for _, s := range in[1:] {
		if s != in[0] {
			return Shape{}, fmt.Errorf("cgraph: add shape mismatch %v vs %v", in[0], s)
		}
	}
	return in[0], nil
}

// Weights implements Op.
func (Add) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Add) MACs([]Shape, Shape) int64 { return 0 }

// Concat concatenates along channels (GoogLeNet inception outputs).
type Concat struct{}

// Kind implements Op.
func (Concat) Kind() string { return "concat" }

// InferShape implements Op.
func (Concat) InferShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, fmt.Errorf("cgraph: concat takes ≥2 operands")
	}
	out := in[0]
	for _, s := range in[1:] {
		if s.H != out.H || s.W != out.W {
			return Shape{}, fmt.Errorf("cgraph: concat spatial mismatch %v vs %v", in[0], s)
		}
		out.C += s.C
	}
	return out, nil
}

// Weights implements Op.
func (Concat) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Concat) MACs([]Shape, Shape) int64 { return 0 }

// Flatten reshapes a CHW tensor to a flat vector.
type Flatten struct{}

// Kind implements Op.
func (Flatten) Kind() string { return "flatten" }

// InferShape implements Op.
func (Flatten) InferShape(in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: flatten takes one operand")
	}
	return Vec(in[0].Elems()), nil
}

// Weights implements Op.
func (Flatten) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Flatten) MACs([]Shape, Shape) int64 { return 0 }

// Softmax is the output normalization; executed off-fabric (host) in the
// paper's deployment, weight-free here.
type Softmax struct{}

// Kind implements Op.
func (Softmax) Kind() string { return "softmax" }

// InferShape implements Op.
func (Softmax) InferShape(in []Shape) (Shape, error) { return passthrough("softmax", in) }

// Weights implements Op.
func (Softmax) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Softmax) MACs([]Shape, Shape) int64 { return 0 }

// Dropout is a training-time regularizer; an inference no-op.
type Dropout struct{}

// Kind implements Op.
func (Dropout) Kind() string { return "dropout" }

// InferShape implements Op.
func (Dropout) InferShape(in []Shape) (Shape, error) { return passthrough("dropout", in) }

// Weights implements Op.
func (Dropout) Weights([]Shape) int64 { return 0 }

// MACs implements Op.
func (Dropout) MACs([]Shape, Shape) int64 { return 0 }

func passthrough(kind string, in []Shape) (Shape, error) {
	if len(in) != 1 {
		return Shape{}, fmt.Errorf("cgraph: %s takes one operand", kind)
	}
	return in[0], nil
}
