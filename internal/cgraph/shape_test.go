package cgraph

import "testing"

func TestShapeBasics(t *testing.T) {
	s := Shape{C: 3, H: 224, W: 224}
	if got := s.Elems(); got != 3*224*224 {
		t.Errorf("Elems = %d", got)
	}
	if !s.Valid() {
		t.Error("valid shape reported invalid")
	}
	if s.IsVec() {
		t.Error("3x224x224 reported as vector")
	}
	if got := s.String(); got != "3x224x224" {
		t.Errorf("String = %q", got)
	}
	v := Vec(784)
	if !v.IsVec() || v.Elems() != 784 {
		t.Errorf("Vec(784) = %v", v)
	}
	if (Shape{C: 0, H: 1, W: 1}).Valid() {
		t.Error("zero-channel shape reported valid")
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct {
		in, k, s, p int
		want        int
		wantErr     bool
	}{
		{224, 3, 1, 1, 224, false}, // same padding
		{224, 2, 2, 0, 112, false}, // halving pool
		{227, 11, 4, 0, 55, false}, // AlexNet conv1
		{13, 3, 2, 0, 6, false},    // AlexNet pool5
		{5, 7, 1, 0, 0, true},      // kernel larger than input
		{8, 0, 1, 0, 0, true},      // zero kernel
		{8, 3, 0, 0, 0, true},      // zero stride
		{8, 3, 1, -1, 0, true},     // negative pad
	}
	for _, tc := range cases {
		got, err := convOut(tc.in, tc.k, tc.s, tc.p)
		if (err != nil) != tc.wantErr {
			t.Errorf("convOut(%d,%d,%d,%d) err = %v, wantErr %v", tc.in, tc.k, tc.s, tc.p, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("convOut(%d,%d,%d,%d) = %d, want %d", tc.in, tc.k, tc.s, tc.p, got, tc.want)
		}
	}
}
