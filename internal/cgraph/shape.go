// Package cgraph implements the computational-graph programming model the
// paper's software stack consumes (§5, Figure 5): tensors flow through
// typed operations with inferred shapes, and the graph reports the weight
// and operation statistics (Table 3's "# of weights" / "# of ops" columns)
// that drive the synthesizer and the performance model.
//
// Conventions follow the paper's accounting: weights count multiply
// matrices only (conv kernels and FC matrices; biases and folded
// BatchNorm/LRN parameters are excluded), and "ops" are 2×MACs of the
// MAC-bearing operations, matching the Table 3 totals.
package cgraph

import "fmt"

// Shape is a CHW tensor shape (no batch dimension; the pipeline processes
// one sample per sampling window). Vectors use H = W = 1.
type Shape struct {
	C, H, W int
}

// Vec returns a 1-D feature shape.
func Vec(n int) Shape { return Shape{C: n, H: 1, W: 1} }

// Elems returns the number of scalar elements.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// IsVec reports whether the shape is a flat feature vector.
func (s Shape) IsVec() bool { return s.H == 1 && s.W == 1 }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// convOut computes one spatial output dimension for a kernel/stride/pad
// sliding window.
func convOut(in, kernel, stride, pad int) (int, error) {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		return 0, fmt.Errorf("cgraph: bad window k=%d s=%d p=%d", kernel, stride, pad)
	}
	n := in + 2*pad - kernel
	if n < 0 {
		return 0, fmt.Errorf("cgraph: window k=%d exceeds padded input %d", kernel, in+2*pad)
	}
	return n/stride + 1, nil
}
