package cgraph

import (
	"crypto/sha256"
	"fmt"
)

// Node is one placed operation in a graph.
type Node struct {
	ID       int
	Name     string
	Op       Op
	Inputs   []*Node
	OutShape Shape
}

// Graph is a computational graph under construction; nodes are appended in
// topological order by design (inputs must already exist).
type Graph struct {
	Name  string
	nodes []*Node
	byID  map[int]*Node
	users map[int]int // node ID → consumer count
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, byID: make(map[int]*Node), users: make(map[int]int)}
}

// Add appends an operation consuming the given input nodes, inferring its
// output shape.
func (g *Graph) Add(name string, op Op, inputs ...*Node) (*Node, error) {
	shapes := make([]Shape, len(inputs))
	for i, n := range inputs {
		if n == nil {
			return nil, fmt.Errorf("cgraph: %s: nil input %d", name, i)
		}
		if g.byID[n.ID] != n {
			return nil, fmt.Errorf("cgraph: %s: input %q not in graph", name, n.Name)
		}
		shapes[i] = n.OutShape
	}
	out, err := op.InferShape(shapes)
	if err != nil {
		return nil, fmt.Errorf("cgraph: %s: %w", name, err)
	}
	node := &Node{
		ID:       len(g.nodes),
		Name:     name,
		Op:       op,
		Inputs:   append([]*Node(nil), inputs...),
		OutShape: out,
	}
	g.nodes = append(g.nodes, node)
	g.byID[node.ID] = node
	for _, in := range inputs {
		g.users[in.ID]++
	}
	return node, nil
}

// MustAdd is Add that panics on error, for static model builders whose
// shapes are fixed by construction.
func (g *Graph) MustAdd(name string, op Op, inputs ...*Node) *Node {
	n, err := g.Add(name, op, inputs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Input adds a graph source.
func (g *Graph) Input(name string, shape Shape) (*Node, error) {
	return g.Add(name, Input{Shape: shape})
}

// Nodes returns the nodes in topological order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Outputs returns the nodes no other node consumes.
func (g *Graph) Outputs() []*Node {
	var outs []*Node
	for _, n := range g.nodes {
		if g.users[n.ID] == 0 {
			outs = append(outs, n)
		}
	}
	return outs
}

// Consumers returns how many nodes consume n's output.
func (g *Graph) Consumers(n *Node) int { return g.users[n.ID] }

// inputShapes gathers a node's operand shapes.
func inputShapes(n *Node) []Shape {
	shapes := make([]Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		shapes[i] = in.OutShape
	}
	return shapes
}

// NodeWeights returns the parameter count of one node.
func NodeWeights(n *Node) int64 { return n.Op.Weights(inputShapes(n)) }

// NodeMACs returns the MAC count of one node.
func NodeMACs(n *Node) int64 { return n.Op.MACs(inputShapes(n), n.OutShape) }

// TotalWeights returns the graph's parameter count (Table 3 "# of
// weights").
func (g *Graph) TotalWeights() int64 {
	var total int64
	for _, n := range g.nodes {
		total += NodeWeights(n)
	}
	return total
}

// TotalOps returns 2×MACs over the whole graph (Table 3 "# of ops").
func (g *Graph) TotalOps() int64 {
	var total int64
	for _, n := range g.nodes {
		total += 2 * NodeMACs(n)
	}
	return total
}

// Validate re-checks every node's shape inference against its stored
// output shape, catching graphs mutated after construction.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		out, err := n.Op.InferShape(inputShapes(n))
		if err != nil {
			return fmt.Errorf("cgraph: node %q: %w", n.Name, err)
		}
		if out != n.OutShape {
			return fmt.Errorf("cgraph: node %q: stored shape %v, inferred %v", n.Name, n.OutShape, out)
		}
		for _, in := range n.Inputs {
			if in.ID >= n.ID {
				return fmt.Errorf("cgraph: node %q consumes later node %q (not topological)", n.Name, in.Name)
			}
		}
	}
	return nil
}

// Fingerprint returns a SHA-256 digest of the graph's full structure —
// its name, every node's name, operation (concrete type and parameters),
// output shape, and input wiring — so two graphs digest equal exactly
// when the compiler would treat them identically. The deployment cache
// uses it as the model half of its content address.
func (g *Graph) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "graph %q %d\n", g.Name, len(g.nodes))
	for _, n := range g.nodes {
		fmt.Fprintf(h, "node %d %q %s %#v %v [", n.ID, n.Name, n.Op.Kind(), n.Op, n.OutShape)
		for _, in := range n.Inputs {
			fmt.Fprintf(h, "%d ", in.ID)
		}
		fmt.Fprint(h, "]\n")
	}
	var d [sha256.Size]byte
	copy(d[:], h.Sum(nil))
	return d
}

// Stats summarizes a graph for reports.
type Stats struct {
	Nodes   int
	Weights int64
	Ops     int64
}

// Summary returns the graph's headline statistics.
func (g *Graph) Summary() Stats {
	return Stats{Nodes: len(g.nodes), Weights: g.TotalWeights(), Ops: g.TotalOps()}
}
