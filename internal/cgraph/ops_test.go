package cgraph

import "testing"

func TestConv2DShapeAndCounts(t *testing.T) {
	op := Conv2D{OutC: 64, Kernel: 3, Stride: 1, Pad: 1}
	in := []Shape{{C: 3, H: 224, W: 224}}
	out, err := op.InferShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 64, H: 224, W: 224}) {
		t.Fatalf("out = %v", out)
	}
	if got := op.Weights(in); got != 3*3*3*64 {
		t.Errorf("Weights = %d", got)
	}
	if got := op.MACs(in, out); got != 3*3*3*64*224*224 {
		t.Errorf("MACs = %d", got)
	}
}

func TestConv2DGroups(t *testing.T) {
	op := Conv2D{OutC: 256, Kernel: 5, Stride: 1, Pad: 2, Groups: 2}
	in := []Shape{{C: 96, H: 27, W: 27}}
	out, err := op.InferShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 256, H: 27, W: 27}) {
		t.Fatalf("out = %v", out)
	}
	// AlexNet conv2: 256×48×25 weights.
	if got := op.Weights(in); got != 256*48*25 {
		t.Errorf("grouped Weights = %d, want %d", got, 256*48*25)
	}
}

func TestConv2DGroupDivisibility(t *testing.T) {
	op := Conv2D{OutC: 6, Kernel: 3, Stride: 1, Groups: 4}
	if _, err := op.InferShape([]Shape{{C: 8, H: 8, W: 8}}); err == nil {
		t.Error("outC not divisible by groups accepted")
	}
	op2 := Conv2D{OutC: 8, Kernel: 3, Stride: 1, Groups: 4}
	if _, err := op2.InferShape([]Shape{{C: 6, H: 8, W: 8}}); err == nil {
		t.Error("inC not divisible by groups accepted")
	}
}

func TestFCRequiresFlat(t *testing.T) {
	op := FC{Out: 10}
	if _, err := op.InferShape([]Shape{{C: 50, H: 4, W: 4}}); err == nil {
		t.Error("FC accepted non-flat input")
	}
	out, err := op.InferShape([]Shape{Vec(800)})
	if err != nil {
		t.Fatal(err)
	}
	if out != Vec(10) {
		t.Fatalf("out = %v", out)
	}
	if got := op.Weights([]Shape{Vec(800)}); got != 8000 {
		t.Errorf("Weights = %d", got)
	}
}

func TestPoolShapes(t *testing.T) {
	op := Pool{PoolKind: MaxPoolKind, Kernel: 3, Stride: 2}
	out, err := op.InferShape([]Shape{{C: 96, H: 55, W: 55}})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 96, H: 27, W: 27}) {
		t.Fatalf("out = %v", out)
	}
	if op.Weights(nil) != 0 || op.MACs(nil, out) != 0 {
		t.Error("pool reported nonzero weights/MACs")
	}
	bad := Pool{PoolKind: "median", Kernel: 2, Stride: 2}
	if _, err := bad.InferShape([]Shape{{C: 1, H: 4, W: 4}}); err == nil {
		t.Error("unknown pool kind accepted")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	out, err := GlobalAvgPool{}.InferShape([]Shape{{C: 1024, H: 7, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if out != Vec(1024) {
		t.Fatalf("out = %v", out)
	}
}

func TestAddShapeChecks(t *testing.T) {
	a := Shape{C: 256, H: 56, W: 56}
	if _, err := (Add{}).InferShape([]Shape{a, a}); err != nil {
		t.Errorf("matching add rejected: %v", err)
	}
	if _, err := (Add{}).InferShape([]Shape{a, {C: 128, H: 56, W: 56}}); err == nil {
		t.Error("mismatched add accepted")
	}
	if _, err := (Add{}).InferShape([]Shape{a}); err == nil {
		t.Error("unary add accepted")
	}
}

func TestConcatChannels(t *testing.T) {
	out, err := (Concat{}).InferShape([]Shape{
		{C: 64, H: 28, W: 28}, {C: 128, H: 28, W: 28}, {C: 32, H: 28, W: 28}, {C: 32, H: 28, W: 28},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 256, H: 28, W: 28}) {
		t.Fatalf("out = %v", out)
	}
	if _, err := (Concat{}).InferShape([]Shape{{C: 1, H: 2, W: 2}, {C: 1, H: 3, W: 2}}); err == nil {
		t.Error("spatial mismatch accepted")
	}
}

func TestFlatten(t *testing.T) {
	out, err := (Flatten{}).InferShape([]Shape{{C: 256, H: 6, W: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if out != Vec(9216) {
		t.Fatalf("out = %v", out)
	}
}

func TestWeightFreeOps(t *testing.T) {
	in := []Shape{{C: 8, H: 8, W: 8}}
	for _, op := range []Op{ReLU{}, LRN{}, BatchNorm{}, Softmax{}, Dropout{}} {
		out, err := op.InferShape(in)
		if err != nil {
			t.Errorf("%s: %v", op.Kind(), err)
			continue
		}
		if out != in[0] {
			t.Errorf("%s: shape changed to %v", op.Kind(), out)
		}
		if op.Weights(in) != 0 || op.MACs(in, out) != 0 {
			t.Errorf("%s: reported weights/MACs", op.Kind())
		}
	}
}

func TestOpKinds(t *testing.T) {
	kinds := map[string]Op{
		"input": Input{}, "conv2d": Conv2D{}, "fc": FC{},
		"maxpool": Pool{PoolKind: MaxPoolKind}, "avgpool": Pool{PoolKind: AvgPoolKind},
		"globalavgpool": GlobalAvgPool{}, "relu": ReLU{}, "lrn": LRN{},
		"batchnorm": BatchNorm{}, "add": Add{}, "concat": Concat{},
		"flatten": Flatten{}, "softmax": Softmax{}, "dropout": Dropout{},
	}
	for want, op := range kinds {
		if got := op.Kind(); got != want {
			t.Errorf("Kind = %q, want %q", got, want)
		}
	}
}

func TestGlobalAvgPoolCounts(t *testing.T) {
	op := GlobalAvgPool{}
	in := []Shape{{C: 8, H: 4, W: 4}}
	out, err := op.InferShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if op.Weights(in) != 0 || op.MACs(in, out) != 0 {
		t.Error("GAP reported weights/MACs")
	}
	if _, err := op.InferShape(nil); err == nil {
		t.Error("GAP with no operand accepted")
	}
}

func TestAddConcatCounts(t *testing.T) {
	a := Shape{C: 4, H: 2, W: 2}
	for _, op := range []Op{Add{}, Concat{}} {
		if op.Weights([]Shape{a, a}) != 0 {
			t.Errorf("%s reported weights", op.Kind())
		}
		if op.MACs([]Shape{a, a}, a) != 0 {
			t.Errorf("%s reported MACs", op.Kind())
		}
	}
	if (Flatten{}).Weights([]Shape{a}) != 0 || (Flatten{}).MACs([]Shape{a}, Vec(16)) != 0 {
		t.Error("flatten reported weights/MACs")
	}
	if _, err := (Flatten{}).InferShape(nil); err == nil {
		t.Error("flatten with no operand accepted")
	}
}

func TestGraphSummary(t *testing.T) {
	g := New("s")
	in := g.MustAdd("in", Input{Shape: Vec(4)})
	g.MustAdd("fc", FC{Out: 2}, in)
	s := g.Summary()
	if s.Nodes != 2 || s.Weights != 8 || s.Ops != 16 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := (Input{Shape: Shape{}}).InferShape(nil); err == nil {
		t.Error("invalid input shape accepted")
	}
	if _, err := (Input{Shape: Vec(4)}).InferShape([]Shape{Vec(4)}); err == nil {
		t.Error("input with operands accepted")
	}
}
