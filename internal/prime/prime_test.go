package prime

import (
	"math"
	"testing"
)

func TestPublishedConstants(t *testing.T) {
	if PE.AreaUM2 != 34802.204 || PE.VMMLatencyNS != 3064.7 {
		t.Errorf("PE constants drifted: %+v", PE)
	}
	// Density ordering (§6.2): FPSA(38) > PipeLayer > PRIME > ISAAC.
	if !(DensityPipeLayer > DensityPRIME && DensityPRIME > DensityISAAC) {
		t.Error("published density ordering broken")
	}
}

func TestComputationalDensityClosedForm(t *testing.T) {
	got := ComputationalDensityOPSmm2()
	if math.Abs(got-DensityPRIME)/DensityPRIME > 0.001 {
		t.Errorf("density = %v, want %v", got, DensityPRIME)
	}
}

func TestBusContention(t *testing.T) {
	b := DefaultBus
	one := b.CommLatencyNS(1)
	if want := BitsPerVMM / b.BandwidthBitsPerNS; math.Abs(one-want) > 1e-9 {
		t.Errorf("uncontended latency = %v, want %v", one, want)
	}
	// Contention scales linearly; sub-1 active clamps to 1.
	if ten := b.CommLatencyNS(10); math.Abs(ten-10*one) > 1e-9 {
		t.Errorf("10-way contention = %v, want %v", ten, 10*one)
	}
	if clamped := b.CommLatencyNS(0.25); clamped != one {
		t.Errorf("sub-unity active = %v, want %v", clamped, one)
	}
}

func TestBitsPerVMM(t *testing.T) {
	// 256 inputs + 256 outputs at 6 bits each.
	if BitsPerVMM != 512*6 {
		t.Errorf("BitsPerVMM = %d", BitsPerVMM)
	}
}
