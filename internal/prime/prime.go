// Package prime models the baselines FPSA is evaluated against (paper §6):
// PRIME's ADC/DAC-based processing element and shared memory-bus
// communication, the FP-PRIME hybrid (FPSA's routing with PRIME's PEs), and
// the published computational densities of ISAAC and PipeLayer.
//
// The PE constants are Table 2 verbatim; the bus model is calibrated so the
// published behaviour is reproduced: per-PE communication latency around
// 2×10⁴ ns for VGG16 (Figure 7) and a real-performance plateau roughly two
// orders of magnitude below the ideal curve (Figure 2).
package prime

// PECost is PRIME's per-PE cost for a 256×256 8-bit-weight 6-bit-I/O VMM
// (Table 2).
type PECost struct {
	AreaUM2      float64
	VMMLatencyNS float64
}

// PE is the published PRIME PE.
var PE = PECost{AreaUM2: 34802.204, VMMLatencyNS: 3064.7}

// Bus models PRIME's shared hierarchical memory bus.
type Bus struct {
	// BandwidthBitsPerNS is the total bus bandwidth shared by all PEs
	// (128 bits/ns = 16 GB/s, a contemporary DDR3-class channel).
	BandwidthBitsPerNS float64
}

// DefaultBus is the calibrated bus.
var DefaultBus = Bus{BandwidthBitsPerNS: 128}

// BitsPerVMM is the data a PE moves over the bus per VMM: 256 six-bit
// inputs in and 256 six-bit outputs back.
const BitsPerVMM = (256 + 256) * 6

// CommLatencyNS returns the per-PE communication latency when `active` PEs
// contend for the bus: each transfer effectively sees bandwidth B/active.
func (b Bus) CommLatencyNS(active float64) float64 {
	if active < 1 {
		active = 1
	}
	return BitsPerVMM * active / b.BandwidthBitsPerNS
}

// Published computational densities of the other ReRAM accelerators
// (§6.2), in OPS/mm².
const (
	DensityPRIME     = 1.229e12
	DensityPipeLayer = 1.485e12
	DensityISAAC     = 0.479e12
)

// ComputationalDensityOPSmm2 returns PRIME's PE-level density from its
// Table 2 constants: 2·256·256 ops over latency×area (= 1.229 TOPS/mm²).
func ComputationalDensityOPSmm2() float64 {
	ops := 2.0 * 256 * 256
	return ops / (PE.VMMLatencyNS * 1e-9) / (PE.AreaUM2 * 1e-6)
}
