package place

import (
	"math"
	"testing"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
)

// TestNetWeightFaultPenalty pins the fault-pressure weighting: unfaulted
// nets keep the classic Signals weight bit for bit, the penalty grows
// monotonically with the worst residual on the net, and it is bounded
// strictly below 2× so fault pressure never dominates wirelength.
func TestNetWeightFaultPenalty(t *testing.T) {
	nl := ringNetlist(4)
	net := &nl.Nets[0] // src block 0, sink block 1
	if w := netWeight(nl, net); w != float64(net.Signals) {
		t.Fatalf("unfaulted net weighs %v, want the raw Signals weight %d", w, net.Signals)
	}
	prev := float64(net.Signals)
	for _, f := range []int{1, 4, 16, 256, 1 << 20} {
		nl.Blocks[1].Fault = f
		w := netWeight(nl, net)
		if w <= prev {
			t.Fatalf("fault %d: weight %v did not grow past %v", f, w, prev)
		}
		if w >= 2*float64(net.Signals) {
			t.Fatalf("fault %d: weight %v reached the 2x bound", f, w)
		}
		prev = w
	}
	// The penalty keys on the worst block across src and sinks: a faulted
	// source counts the same as an equally faulted sink.
	nl.Blocks[1].Fault = 0
	nl.Blocks[0].Fault = 16
	if w := netWeight(nl, net); math.Abs(w-1.5*float64(net.Signals)) > 1e-12 {
		t.Fatalf("fault 16 weighs %v, want exactly 1.5x (16/(16+16))", w)
	}
}

// TestCostFaultPenaltyPlacementIndependent: net weights depend only on
// the netlist, never the placement, so stamping faults scales every
// placement's cost by the same per-net factors — the cost ordering of two
// placements is preserved exactly on a single-net netlist.
func TestCostFaultPenaltyPlacementIndependent(t *testing.T) {
	nl := &netlist.Netlist{Name: "pair"}
	a := nl.AddBlock(netlist.BlockPE, "a", 0, 0)
	b := nl.AddBlock(netlist.BlockPE, "b", 1, 0)
	nl.AddNet(a, []int{b}, 3)
	near := &Placement{Pos: []fabric.Site{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	far := &Placement{Pos: []fabric.Site{{X: 0, Y: 0}, {X: 5, Y: 2}}}
	cleanNear, cleanFar := Cost(near, nl), Cost(far, nl)
	nl.Blocks[b].Fault = 8
	factor := Cost(near, nl) / cleanNear
	if factor <= 1 || factor >= 2 {
		t.Fatalf("fault penalty factor %v outside (1, 2)", factor)
	}
	if got := Cost(far, nl) / cleanFar; math.Abs(got-factor) > 1e-12 {
		t.Fatalf("penalty factor depends on placement: near %v, far %v", factor, got)
	}
}
