package place

import (
	"context"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
)

// ringNetlist builds n blocks chained in a ring with unit-width nets.
func ringNetlist(n int) *netlist.Netlist {
	nl := &netlist.Netlist{Name: "ring"}
	for i := 0; i < n; i++ {
		nl.AddBlock(netlist.BlockPE, "b", i, 0)
	}
	for i := 0; i < n; i++ {
		nl.AddNet(i, []int{(i + 1) % n}, 1)
	}
	return nl
}

func TestRandomPlacementValid(t *testing.T) {
	nl := ringNetlist(20)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p, err := Random(nl, chip, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRejectsOverfull(t *testing.T) {
	nl := ringNetlist(30)
	chip := fabric.Chip{W: 5, H: 5, Tracks: 4, Params: device.Params45nm}
	if _, err := Random(nl, chip, rand.New(rand.NewSource(1))); err == nil {
		t.Error("30 blocks on 25 sites accepted")
	}
}

func TestAnnealImprovesCost(t *testing.T) {
	nl := ringNetlist(36)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	p, stats, err := Anneal(context.Background(), nl, chip, rng, Options{MovesPerTemp: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.FinalCost >= stats.InitialCost {
		t.Errorf("annealing did not improve: %v → %v", stats.InitialCost, stats.FinalCost)
	}
	// A ring of 36 blocks on a ~6×6 grid has an optimal HPWL near 2 per
	// net; accept anything below 2.5× optimal.
	if stats.FinalCost > 2.5*2*36 {
		t.Errorf("final cost %v too far from optimal ~%v", stats.FinalCost, 2*36)
	}
}

func TestAnnealCostMatchesRecomputation(t *testing.T) {
	nl := ringNetlist(16)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	p, stats, err := Anneal(context.Background(), nl, chip, rng, Options{MovesPerTemp: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := Cost(p, nl); got != stats.FinalCost {
		t.Errorf("Cost = %v, stats.FinalCost = %v", got, stats.FinalCost)
	}
}

func TestCostWeightsBySignals(t *testing.T) {
	nl := &netlist.Netlist{}
	a := nl.AddBlock(netlist.BlockPE, "a", 0, 0)
	b := nl.AddBlock(netlist.BlockPE, "b", 1, 0)
	nl.AddNet(a, []int{b}, 256)
	chip := fabric.Chip{W: 4, H: 1, Tracks: 4, Params: device.Params45nm}
	p := &Placement{Chip: chip, Pos: []fabric.Site{{X: 0, Y: 0}, {X: 3, Y: 0}}, occ: []int{0, -1, -1, 1}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Cost(p, nl); got != 3*256 {
		t.Errorf("Cost = %v, want 768", got)
	}
}

func TestAnnealSingleBlockNoop(t *testing.T) {
	nl := &netlist.Netlist{}
	nl.AddBlock(netlist.BlockPE, "solo", 0, 0)
	chip := fabric.Chip{W: 2, H: 2, Tracks: 4, Params: device.Params45nm}
	p, _, err := Anneal(context.Background(), nl, chip, rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
