// Package place implements VPR-style simulated-annealing placement of a
// function-block netlist onto the FPSA fabric (paper §5.3): the cost is
// signal-weighted half-perimeter wirelength, moves swap blocks or relocate
// them to free sites, and the temperature schedule adapts to the observed
// acceptance rate.
//
// Anneal runs one classic serial schedule; Portfolio runs a multi-seed
// portfolio of independent anneals on a worker pool, cancels runs that
// fall behind the best-so-far at periodic cost checkpoints, and returns
// the cheapest placement — deterministically for any worker count.
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
)

// Placement maps block IDs to fabric sites.
type Placement struct {
	Chip fabric.Chip
	Pos  []fabric.Site // block ID → site
	occ  []int         // site index → block ID or −1
}

// Random places blocks onto distinct random sites.
func Random(nl *netlist.Netlist, chip fabric.Chip, rng *rand.Rand) (*Placement, error) {
	n := len(nl.Blocks)
	if n > chip.Sites() {
		return nil, fmt.Errorf("place: %d blocks exceed %d sites", n, chip.Sites())
	}
	perm := rng.Perm(chip.Sites())
	p := &Placement{
		Chip: chip,
		Pos:  make([]fabric.Site, n),
		occ:  make([]int, chip.Sites()),
	}
	for i := range p.occ {
		p.occ[i] = -1
	}
	for b := 0; b < n; b++ {
		p.Pos[b] = chip.SiteAt(perm[b])
		p.occ[perm[b]] = b
	}
	return p, nil
}

// Fixed builds a placement from explicit per-block sites (deterministic
// floorplans, tests, imported placements).
func Fixed(nl *netlist.Netlist, chip fabric.Chip, sites []fabric.Site) (*Placement, error) {
	if len(sites) != len(nl.Blocks) {
		return nil, fmt.Errorf("place: %d sites for %d blocks", len(sites), len(nl.Blocks))
	}
	p := &Placement{
		Chip: chip,
		Pos:  append([]fabric.Site(nil), sites...),
		occ:  make([]int, chip.Sites()),
	}
	for i := range p.occ {
		p.occ[i] = -1
	}
	for b, s := range sites {
		if !chip.Valid(s) {
			return nil, fmt.Errorf("place: block %d site %v off chip", b, s)
		}
		idx := chip.Index(s)
		if p.occ[idx] >= 0 {
			return nil, fmt.Errorf("place: blocks %d and %d share site %v", p.occ[idx], b, s)
		}
		p.occ[idx] = b
	}
	return p, nil
}

// Validate checks the one-block-per-site invariant.
func (p *Placement) Validate() error {
	seen := make(map[int]int)
	for b, s := range p.Pos {
		if !p.Chip.Valid(s) {
			return fmt.Errorf("place: block %d at invalid site %v", b, s)
		}
		idx := p.Chip.Index(s)
		if prev, ok := seen[idx]; ok {
			return fmt.Errorf("place: blocks %d and %d share site %v", prev, b, s)
		}
		seen[idx] = b
		if p.occ[idx] != b {
			return fmt.Errorf("place: occupancy table disagrees at site %v", s)
		}
	}
	return nil
}

// netHPWL returns the half-perimeter wirelength of one net.
func netHPWL(p *Placement, net *netlist.Net) int {
	s := p.Pos[net.Src]
	minX, maxX, minY, maxY := s.X, s.X, s.Y, s.Y
	for _, b := range net.Sinks {
		q := p.Pos[b]
		if q.X < minX {
			minX = q.X
		}
		if q.X > maxX {
			maxX = q.X
		}
		if q.Y < minY {
			minY = q.Y
		}
		if q.Y > maxY {
			maxY = q.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// netWeight is one net's annealing weight: its signal bundle width,
// inflated when the net touches a faulted PE. The factor 1 + f/(f+16)
// (f = the largest residual stuck-cell count among the net's blocks) is
// bounded below 2, so fault pressure shortens routes through degraded
// hardware without ever dominating the wirelength objective; unfaulted
// netlists (every Block.Fault zero) keep the classic Signals weight bit
// for bit. The weight depends only on the netlist, never the placement,
// so incremental cost deltas stay exact during annealing.
func netWeight(nl *netlist.Netlist, net *netlist.Net) float64 {
	f := nl.Blocks[net.Src].Fault
	for _, b := range net.Sinks {
		if v := nl.Blocks[b].Fault; v > f {
			f = v
		}
	}
	w := float64(net.Signals)
	if f > 0 {
		w *= 1 + float64(f)/float64(f+16)
	}
	return w
}

// Cost returns the signal-weighted total HPWL (fault-penalized; see
// netWeight).
func Cost(p *Placement, nl *netlist.Netlist) float64 {
	var total float64
	for i := range nl.Nets {
		total += float64(netHPWL(p, &nl.Nets[i])) * netWeight(nl, &nl.Nets[i])
	}
	return total
}

// Options tunes the annealer.
type Options struct {
	// MovesPerTemp is the number of proposed moves at each temperature;
	// 0 selects the VPR default 10·n^{4/3}.
	MovesPerTemp int
	// InitialTempFactor scales the starting temperature relative to the
	// cost standard deviation of random moves (default 20).
	InitialTempFactor float64
}

// Stats reports what the annealer did.
type Stats struct {
	InitialCost float64
	FinalCost   float64
	Temps       int
	Moves       int
	Accepted    int
}

// Anneal improves a random placement with simulated annealing and returns
// it with run statistics. ctx bounds the run: cancellation stops at the
// next temperature step and returns ctx.Err(). An uncancelled run is
// bit-identical for any ctx.
func Anneal(ctx context.Context, nl *netlist.Netlist, chip fabric.Chip, rng *rand.Rand, opts Options) (*Placement, Stats, error) {
	a, err := newAnnealer(nl, chip, rng, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	a.run(ctx, -1)
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	p, stats := a.finish()
	return p, stats, nil
}

// annealer is a resumable annealing run: advance it a bounded number of
// temperature steps at a time with run, inspect CurrentCost between
// segments, and call finish when done. The trajectory depends only on the
// rng the annealer was built with, never on when or from which goroutine
// its segments execute — the property the multi-seed Portfolio relies on
// for determinism.
type annealer struct {
	nl     *netlist.Netlist
	rng    *rand.Rand
	netsOf [][]int
	p      *Placement
	cost   float64
	stats  Stats

	moves   int
	temp    float64
	minTemp float64
	done    bool
}

// newAnnealer builds the initial random placement, probes the starting
// temperature (VPR's recipe: the cost deviation of a sample of random
// moves) and leaves the run ready to step.
func newAnnealer(nl *netlist.Netlist, chip fabric.Chip, rng *rand.Rand, opts Options) (*annealer, error) {
	p, err := Random(nl, chip, rng)
	if err != nil {
		return nil, err
	}
	a := &annealer{nl: nl, rng: rng, p: p}
	// Index nets by block for incremental cost evaluation.
	a.netsOf = make([][]int, len(nl.Blocks))
	for i := range nl.Nets {
		net := &nl.Nets[i]
		blocks := append([]int{net.Src}, net.Sinks...)
		seen := make(map[int]bool)
		for _, b := range blocks {
			if !seen[b] {
				seen[b] = true
				a.netsOf[b] = append(a.netsOf[b], i)
			}
		}
	}
	a.cost = Cost(p, nl)
	a.stats = Stats{InitialCost: a.cost}
	if len(nl.Nets) == 0 || len(nl.Blocks) < 2 {
		a.done = true
		return a, nil
	}

	a.moves = opts.MovesPerTemp
	if a.moves <= 0 {
		a.moves = int(10 * math.Pow(float64(len(nl.Blocks)), 4.0/3.0))
		if a.moves > 20000 {
			a.moves = 20000
		}
	}
	tempFactor := opts.InitialTempFactor
	if tempFactor <= 0 {
		tempFactor = 20
	}
	var sumSq, sum float64
	const probes = 64
	for i := 0; i < probes; i++ {
		d := p.probeMove(nl, a.netsOf, rng)
		sum += d
		sumSq += d * d
	}
	std := math.Sqrt(math.Max(0, sumSq/probes-(sum/probes)*(sum/probes)))
	a.temp = tempFactor * (std + 1)
	a.minTemp = 0.001 * (a.cost/float64(len(nl.Nets)) + 1)
	if a.temp <= a.minTemp {
		a.done = true
	}
	return a, nil
}

// step runs one temperature: a full move batch plus adaptive cooling.
func (a *annealer) step() {
	if a.done {
		return
	}
	accepted := 0
	for m := 0; m < a.moves; m++ {
		delta, commit := a.p.proposeMove(a.nl, a.netsOf, a.rng)
		if delta <= 0 || a.rng.Float64() < math.Exp(-delta/a.temp) {
			commit()
			a.cost += delta
			accepted++
			a.stats.Accepted++
		}
		a.stats.Moves++
	}
	// VPR-style adaptive cooling: cool faster when acceptance is
	// extreme, slower in the productive 15-95% band.
	rate := float64(accepted) / float64(a.moves)
	switch {
	case rate > 0.96:
		a.temp *= 0.5
	case rate > 0.8:
		a.temp *= 0.9
	case rate > 0.15:
		a.temp *= 0.95
	default:
		a.temp *= 0.8
	}
	a.stats.Temps++
	if a.temp <= a.minTemp || a.stats.Temps > 300 {
		a.done = true
	}
}

// run advances up to maxSteps temperatures (negative = to completion),
// checking ctx between temperatures: a cancelled run stops early with
// its placement frozen mid-anneal. The check never touches the rng, so
// an uncancelled run's trajectory is unchanged.
func (a *annealer) run(ctx context.Context, maxSteps int) {
	for i := 0; !a.done && (maxSteps < 0 || i < maxSteps); i++ {
		if ctx.Err() != nil {
			return
		}
		a.step()
	}
}

// CurrentCost recomputes the exact current cost (the incrementally
// maintained value drifts) — the checkpoint metric Portfolio ranks runs by.
func (a *annealer) CurrentCost() float64 { return Cost(a.p, a.nl) }

// finish returns the placement with final statistics.
func (a *annealer) finish() (*Placement, Stats) {
	a.stats.FinalCost = Cost(a.p, a.nl) // recompute exactly (incremental drift)
	return a.p, a.stats
}

// proposeMove picks a random block and a random target site (occupied →
// swap, free → relocate), returning the cost delta and a commit closure.
func (p *Placement) proposeMove(nl *netlist.Netlist, netsOf [][]int, rng *rand.Rand) (float64, func()) {
	b := rng.Intn(len(p.Pos))
	target := rng.Intn(p.Chip.Sites())
	other := p.occ[target]
	from := p.Pos[b]
	fromIdx := p.Chip.Index(from)
	if other == b {
		return 0, func() {}
	}
	affected := netsOf[b]
	if other >= 0 {
		affected = union(netsOf[b], netsOf[other])
	}
	before := p.partialCost(nl, affected)
	p.apply(b, target, other, fromIdx)
	after := p.partialCost(nl, affected)
	p.apply(b, fromIdx, other, target) // undo
	delta := after - before
	return delta, func() { p.apply(b, target, other, fromIdx) }
}

// probeMove measures |Δcost| of a random move without keeping it.
func (p *Placement) probeMove(nl *netlist.Netlist, netsOf [][]int, rng *rand.Rand) float64 {
	d, _ := p.proposeMove(nl, netsOf, rng)
	return math.Abs(d)
}

// apply moves block b to site index target; if other ≥ 0 it takes b's old
// site (index fromIdx).
func (p *Placement) apply(b, target, other, fromIdx int) {
	p.Pos[b] = p.Chip.SiteAt(target)
	p.occ[target] = b
	if other >= 0 {
		p.Pos[other] = p.Chip.SiteAt(fromIdx)
		p.occ[fromIdx] = other
	} else {
		p.occ[fromIdx] = -1
	}
}

func (p *Placement) partialCost(nl *netlist.Netlist, nets []int) float64 {
	var total float64
	for _, i := range nets {
		total += float64(netHPWL(p, &nl.Nets[i])) * netWeight(nl, &nl.Nets[i])
	}
	return total
}

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
