package place

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"fpsa/internal/fabric"
	"fpsa/internal/netlist"
)

// PortfolioOptions tunes the multi-seed annealing portfolio.
type PortfolioOptions struct {
	// Runs is the number of independent annealing runs (0 or 1 = one run,
	// equivalent to Anneal). Run i uses seed BaseSeed+i.
	Runs int
	// Workers bounds how many runs anneal concurrently (0 = GOMAXPROCS).
	// The returned placement is identical for every worker count.
	Workers int
	// SegmentTemps is the number of temperature steps each surviving run
	// advances between cost checkpoints (0 = 16).
	SegmentTemps int
	// CullMargin is the checkpoint cancellation threshold: a run whose
	// checkpoint cost exceeds the best-so-far cost (across finished and
	// running members) by more than this fraction is cancelled (0 = 25%).
	// Mid-anneal costs at matched temperature steps spread by 10-15% even
	// between runs that finish within 2% of each other, so the default
	// cancels only clear stragglers (a stuck run, a pathological seed)
	// and lets every competitive run anneal to completion — placement
	// quality never hinges on ranking noisy mid-anneal checkpoints.
	// Negative disables cancellation entirely.
	CullMargin float64
	// Anneal is passed through to every run.
	Anneal Options
}

// RunStats reports one portfolio member.
type RunStats struct {
	Seed int64
	Stats
	// Cancelled runs were culled at a checkpoint because they had fallen
	// behind; their Stats describe the partial run and FinalCost the cost
	// of the frozen (still valid) placement.
	Cancelled bool
}

// PortfolioStats reports a whole portfolio.
type PortfolioStats struct {
	Runs []RunStats
	// Winner indexes Runs.
	Winner int
	// Cancelled counts culled runs; TotalMoves sums moves across all runs
	// (the portfolio's total work), while Runs[Winner].Moves is the
	// winner's serial depth.
	Cancelled  int
	TotalMoves int
}

// Best returns the winning run's stats.
func (s PortfolioStats) Best() Stats { return s.Runs[s.Winner].Stats }

// Portfolio runs a multi-seed annealing portfolio on a worker pool and
// returns the lowest-cost placement. Runs advance in lockstep segments of
// SegmentTemps temperatures; at each checkpoint, every run whose exact
// recomputed cost has fallen more than CullMargin behind the best-so-far
// cost across the portfolio is cancelled, and the rest anneal on to
// completion. Every run's trajectory depends only on its own seed, and
// every cancellation decision only on deterministic checkpoint costs, so
// the returned placement is bit-identical for any worker count,
// including 1. At least one run always completes: the checkpoint leader
// is never behind itself.
//
// ctx bounds the portfolio: every run checks it between temperature
// steps and the portfolio checks it at each checkpoint, so cancellation
// or deadline expiry aborts promptly, discards the partial work, and
// returns ctx.Err() with no goroutines left behind. The ctx checks never
// touch any run's RNG, so an uncancelled portfolio is bit-identical to
// one run without a deadline.
func Portfolio(ctx context.Context, nl *netlist.Netlist, chip fabric.Chip, baseSeed int64, opts PortfolioOptions) (*Placement, PortfolioStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runs := opts.Runs
	if runs <= 0 {
		runs = 1
	}
	segment := opts.SegmentTemps
	if segment <= 0 {
		segment = 16
	}
	margin := opts.CullMargin
	if margin == 0 {
		margin = 0.25
	}

	anns := make([]*annealer, runs)
	for i := range anns {
		a, err := newAnnealer(nl, chip, rand.New(rand.NewSource(baseSeed+int64(i))), opts.Anneal)
		if err != nil {
			return nil, PortfolioStats{}, err
		}
		anns[i] = a
	}

	pool := NewPool(opts.Workers)
	cancelled := make([]bool, runs)
	active := make([]int, runs)
	for i := range active {
		active[i] = i
	}

	for len(active) > 0 {
		pool.Each(active, func(i int) { anns[i].run(ctx, segment) })
		if err := ctx.Err(); err != nil {
			return nil, PortfolioStats{}, err
		}
		still := active[:0]
		for _, i := range active {
			if !anns[i].done {
				still = append(still, i)
			}
		}
		active = still
		if len(active) == 0 || margin < 0 {
			continue
		}
		// Checkpoint: the best-so-far cost over every non-cancelled run,
		// finished or not, sets the bar; active runs too far above it
		// are cancelled.
		costs := make([]float64, runs)
		best := math.Inf(1)
		for i, a := range anns {
			if !cancelled[i] {
				costs[i] = a.CurrentCost()
				if costs[i] < best {
					best = costs[i]
				}
			}
		}
		threshold := best * (1 + margin)
		still = active[:0]
		for _, i := range active {
			if costs[i] > threshold {
				cancelled[i] = true
			} else {
				still = append(still, i)
			}
		}
		active = still
	}

	stats := PortfolioStats{Runs: make([]RunStats, runs), Winner: -1}
	var best *Placement
	for i, a := range anns {
		p, s := a.finish()
		stats.Runs[i] = RunStats{Seed: baseSeed + int64(i), Stats: s, Cancelled: cancelled[i]}
		stats.TotalMoves += s.Moves
		if cancelled[i] {
			stats.Cancelled++
		}
		// A cancelled run's frozen placement is still valid; let it win if
		// it is genuinely cheapest. Ties go to the lower seed.
		if stats.Winner < 0 || s.FinalCost < stats.Runs[stats.Winner].FinalCost {
			stats.Winner = i
			best = p
		}
	}
	return best, stats, nil
}

// Pool executes per-index closures on a bounded worker pool. It is the
// portfolio's wave-synchronous parallelism primitive, exported so other
// deterministic searches (the autotuner's candidate evaluation) run on
// the same pattern: parallel inside a wave, a barrier between waves, so
// every cross-candidate decision depends only on completed waves and the
// result is identical at any worker count.
type Pool struct{ workers int }

// NewPool sizes a pool (≤ 0 = GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Each calls f(i) for every index in ids, at most workers at a time, and
// waits for all of them.
func (p *Pool) Each(ids []int, f func(i int)) {
	if p.workers == 1 || len(ids) == 1 {
		for _, i := range ids {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for _, i := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			f(i)
			<-sem
		}(i)
	}
	wg.Wait()
}
