package place

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fpsa/internal/device"
	"fpsa/internal/fabric"
)

func TestPortfolioOfOneMatchesAnneal(t *testing.T) {
	nl := ringNetlist(24)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	want, wantStats, err := Anneal(context.Background(), nl, chip, rand.New(rand.NewSource(seed)), Options{MovesPerTemp: 200})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Portfolio(context.Background(), nl, chip, seed, PortfolioOptions{Runs: 1, Anneal: Options{MovesPerTemp: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Winner != 0 || len(stats.Runs) != 1 {
		t.Fatalf("winner %d of %d runs, want single run 0", stats.Winner, len(stats.Runs))
	}
	if stats.Best().FinalCost != wantStats.FinalCost || stats.Best().Moves != wantStats.Moves {
		t.Errorf("portfolio-of-1 stats %+v, Anneal stats %+v", stats.Best(), wantStats)
	}
	for b := range want.Pos {
		if got.Pos[b] != want.Pos[b] {
			t.Fatalf("block %d at %v, Anneal put it at %v", b, got.Pos[b], want.Pos[b])
		}
	}
}

func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	nl := ringNetlist(30)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	opts := PortfolioOptions{Runs: 5, SegmentTemps: 8, Anneal: Options{MovesPerTemp: 150}}
	var ref *Placement
	var refStats PortfolioStats
	for _, workers := range []int{1, 2, 8} {
		opts.Workers = workers
		p, stats, err := Portfolio(context.Background(), nl, chip, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refStats = p, stats
			continue
		}
		if stats.Winner != refStats.Winner {
			t.Fatalf("workers=%d winner %d, workers=1 winner %d", workers, stats.Winner, refStats.Winner)
		}
		for i := range stats.Runs {
			if stats.Runs[i] != refStats.Runs[i] {
				t.Fatalf("workers=%d run %d %+v, workers=1 %+v", workers, i, stats.Runs[i], refStats.Runs[i])
			}
		}
		for b := range ref.Pos {
			if p.Pos[b] != ref.Pos[b] {
				t.Fatalf("workers=%d places block %d at %v, workers=1 at %v", workers, b, p.Pos[b], ref.Pos[b])
			}
		}
	}
}

func TestPortfolioWinnerIsCheapestRun(t *testing.T) {
	nl := ringNetlist(36)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	// A hair-trigger margin forces cancellations: at the first checkpoint
	// everything measurably behind the leader stops.
	p, stats, err := Portfolio(context.Background(), nl, chip, 1, PortfolioOptions{Runs: 4, SegmentTemps: 8, CullMargin: 0.001, Anneal: Options{MovesPerTemp: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if got := Cost(p, nl); got != stats.Best().FinalCost {
		t.Errorf("returned placement cost %v, winner stats say %v", got, stats.Best().FinalCost)
	}
	for i, r := range stats.Runs {
		if r.FinalCost < stats.Best().FinalCost {
			t.Errorf("run %d cost %v beats declared winner %v", i, r.FinalCost, stats.Best().FinalCost)
		}
	}
	if stats.Cancelled == 0 {
		t.Error("hair-trigger margin cancelled no runs on a 4-run portfolio")
	}
	if stats.TotalMoves <= stats.Best().Moves {
		t.Error("TotalMoves should sum over all runs")
	}
}

// TestPortfolioCancelled: a cancelled context aborts the portfolio at a
// checkpoint with ctx.Err(), for any worker count.
func TestPortfolioCancelled(t *testing.T) {
	nl := ringNetlist(24)
	chip, err := fabric.SizeFor(len(nl.Blocks), 4, device.Params45nm)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err := Portfolio(ctx, nl, chip, 1, PortfolioOptions{
			Runs: 4, Workers: workers, Anneal: Options{MovesPerTemp: 200},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: %v, want context.Canceled", workers, err)
		}
	}
}
