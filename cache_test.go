package fpsa

import (
	"context"
	"sync"
	"testing"
)

// cacheTestModel builds a small MLP whose hidden width parameterizes the
// weight matrices — changing it must change the content address.
func cacheTestModel(t *testing.T, hidden int) Model {
	t.Helper()
	m, err := NewModelBuilder("cache-mlp", 16, 1, 1).FC(hidden).ReLU().FC(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileCacheHitSkipsPlaceAndRoute(t *testing.T) {
	cache := NewCompileCache(0)
	cfg := Config{Duplication: 1, Seed: 5, PlacementSeeds: 2, Cache: cache}
	m := cacheTestModel(t, 24)

	d1, err := CompileConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d1.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s1.FromCache {
		t.Fatal("first PlaceAndRoute claims a cache hit")
	}
	b1, err := d1.Bitstream(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A fresh Compile of the same model and config must hit.
	d2, err := CompileConfig(cacheTestModel(t, 24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !s2.FromCache {
		t.Fatal("identical deployment missed the cache")
	}
	// Pointer identity of the artifacts proves placement and routing were
	// skipped, not just equal.
	if d2.lastPlacement != d1.lastPlacement || d2.lastRoute != d1.lastRoute {
		t.Error("cache hit recomputed artifacts")
	}
	s2.FromCache = false
	if s1 != s2 {
		t.Errorf("cached stats %+v differ from computed %+v", s2, s1)
	}
	// The memoized bitstream must be byte-identical too.
	b2, err := d2.Bitstream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Errorf("cached bitstream %+v differs from generated %+v", b2, b1)
	}
	if hits, misses := cache.Counters(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	// And the cached artifacts must equal an uncached recompute
	// byte-for-byte (the determinism the cache's correctness rests on).
	d3, err := CompileConfig(cacheTestModel(t, 24), Config{Duplication: 1, Seed: 5, PlacementSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := d3.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("uncached recompute %+v differs from cached run %+v", s3, s1)
	}
	for b := range d3.lastPlacement.Pos {
		if d3.lastPlacement.Pos[b] != d1.lastPlacement.Pos[b] {
			t.Fatalf("block %d placed at %v uncached, %v cached", b, d3.lastPlacement.Pos[b], d1.lastPlacement.Pos[b])
		}
	}
}

func TestCompileCacheInvalidation(t *testing.T) {
	cache := NewCompileCache(0)
	base := Config{Duplication: 1, Seed: 5, Cache: cache}
	warm := func(m Model, cfg Config) PRStats {
		t.Helper()
		d, err := CompileConfig(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.PlaceAndRoute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s := warm(cacheTestModel(t, 24), base); s.FromCache {
		t.Fatal("cold cache hit")
	}

	// Changed weights (a wider hidden layer) must miss.
	if s := warm(cacheTestModel(t, 32), base); s.FromCache {
		t.Error("model with different weights hit the cache")
	}
	// Changed channel width must miss.
	narrower := base
	narrower.Tracks = 1024
	if s := warm(cacheTestModel(t, 24), narrower); s.FromCache {
		t.Error("different Tracks hit the cache")
	}
	// Changed portfolio size must miss (it changes the winning placement).
	portfolio := base
	portfolio.PlacementSeeds = 3
	if s := warm(cacheTestModel(t, 24), portfolio); s.FromCache {
		t.Error("different PlacementSeeds hit the cache")
	}
	// Parallelism is excluded from the key by design.
	jobs := base
	jobs.Parallelism = 4
	if s := warm(cacheTestModel(t, 24), jobs); !s.FromCache {
		t.Error("Parallelism changed the content address")
	}
	// The original key must still be cached.
	if s := warm(cacheTestModel(t, 24), base); !s.FromCache {
		t.Error("original deployment evicted or invalidated")
	}
}

func TestCompileCacheConcurrent(t *testing.T) {
	// Many goroutines deploy the same model through one cache: exactly
	// one must compute, and everyone must observe identical artifacts.
	// Run under -race in CI.
	cache := NewCompileCache(0)
	cfg := Config{Duplication: 1, Seed: 7, PlacementSeeds: 2, Parallelism: 2, Cache: cache}
	const goroutines = 12
	// Build the (equal but distinct) models on the test goroutine:
	// cacheTestModel may t.Fatal, which must not run inside a spawned
	// goroutine.
	models := make([]Model, goroutines)
	for i := range models {
		models[i] = cacheTestModel(t, 24)
	}
	stats := make([]PRStats, goroutines)
	infos := make([]BitstreamInfo, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := CompileConfig(models[i], cfg)
			if err != nil {
				t.Error(err)
				return
			}
			s, err := d.PlaceAndRoute(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			info, err := d.Bitstream(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			stats[i], infos[i] = s, info
		}(i)
	}
	wg.Wait()
	if _, misses := cache.Counters(); misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", misses)
	}
	for i := 1; i < goroutines; i++ {
		a, b := stats[i], stats[0]
		a.FromCache, b.FromCache = false, false
		if a != b {
			t.Fatalf("goroutine %d stats %+v differ from %+v", i, stats[i], stats[0])
		}
		if infos[i] != infos[0] {
			t.Fatalf("goroutine %d bitstream %+v differs from %+v", i, infos[i], infos[0])
		}
	}
}
