package fpsa

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"
)

// AutotuneBenchOptions shapes the compilation-autotuner experiment: the
// same benchmark model tuned at several PE envelopes and objectives, all
// searches sharing one compile cache so finalist sub-compiles are
// memoized across the sweep.
type AutotuneBenchOptions struct {
	// Model is the benchmark model to tune. "" means LeNet — the
	// committed workload with real per-layer reuse structure.
	Model string
	// Budgets lists the PE envelopes to sweep. nil means 480 and 700.
	Budgets []int
	// Objectives lists the objectives to tune for. nil means all three.
	Objectives []Objective
	// Refine is how many oracle finalists each search places & routes
	// (the WithAutotuneRefine knob). 0 means 2; < 0 disables refinement.
	Refine int
	// Seed fixes the placement seed of the refinement compiles. 0 means 3.
	Seed int64
}

func (o AutotuneBenchOptions) withDefaults() AutotuneBenchOptions {
	if o.Model == "" {
		o.Model = "LeNet"
	}
	if len(o.Budgets) == 0 {
		o.Budgets = []int{480, 700}
	}
	if len(o.Objectives) == 0 {
		o.Objectives = []Objective{MinLatency, MinEnergy, MaxThroughputPerChip}
	}
	if o.Refine == 0 {
		o.Refine = 2
	}
	if o.Seed == 0 {
		o.Seed = 3
	}
	return o
}

// AutotuneBenchRow is one (objective, budget) search's outcome: the best
// uniform configuration inside the envelope versus the tuned assignment,
// with the search's own accounting. Everything except SearchMS is
// deterministic; SearchMS is the measured search wall-clock (oracle sweep
// plus finalist place & route), which the memoized sub-compiles keep far
// below a from-scratch compile per candidate.
type AutotuneBenchRow struct {
	Objective      string
	Budget         int
	BaselineDup    int
	BaselinePEs    int
	BaselineValue  float64
	TunedPEs       int
	TunedValue     float64
	RoutedValue    float64
	ImprovementPct float64
	Chips          int
	Candidates     int
	Pruned         int
	Evaluated      int
	Refined        int
	CacheHits      int64
	CacheMisses    int64
	SearchMS       float64
}

// AutotuneBenchResult reports the sweep. CacheHits/CacheMisses are the
// shared compile cache's totals across every search — the cross-search
// reuse the per-row deltas cannot show.
type AutotuneBenchResult struct {
	Options     AutotuneBenchOptions
	GoMaxProcs  int
	NumCPU      int
	Rows        []AutotuneBenchRow
	CacheHits   int64
	CacheMisses int64
}

// unitFor maps an objective name to its value unit in the rendering.
func unitFor(objective string) string {
	switch objective {
	case MinEnergy.String():
		return "uJ"
	case MaxThroughputPerChip.String():
		return "sps/chip"
	}
	return "us"
}

// String renders the result as a fpsa-bench artifact.
func (r AutotuneBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compilation autotuner (%s, refine %d, shared compile cache)\n", r.Options.Model, r.Options.Refine)
	fmt.Fprintf(&b, "  %-24s %-7s %-19s %-19s %-8s %-6s %-6s %-7s %-9s %s\n",
		"objective", "budget", "uniform", "tuned", "gain", "cands", "eval", "pruned", "cache h/m", "search ms")
	for _, row := range r.Rows {
		unit := unitFor(row.Objective)
		fmt.Fprintf(&b, "  %-24s %-7d %-19s %-19s %-8s %-6d %-6d %-7d %-9s %.1f\n",
			row.Objective, row.Budget,
			fmt.Sprintf("%.4g %s", row.BaselineValue, unit),
			fmt.Sprintf("%.4g %s", row.TunedValue, unit),
			fmt.Sprintf("%+.1f%%", row.ImprovementPct),
			row.Candidates, row.Evaluated, row.Pruned,
			fmt.Sprintf("%d/%d", row.CacheHits, row.CacheMisses),
			row.SearchMS)
	}
	fmt.Fprintf(&b, "  (uniform = best WithDuplication sweep inside the same envelope; cache total %d hit / %d miss across the sweep)\n",
		r.CacheHits, r.CacheMisses)
	return b.String()
}

// AutotuneBench sweeps fpsa.Autotune over the requested PE envelopes and
// objectives on one benchmark model, reporting tuned-versus-uniform
// perf-model numbers and the search cost: wall-clock per search and the
// compile-cache traffic that bounds it. All searches share one
// CompileCache, so a finalist whose shard assignment already compiled —
// in an earlier search or the same one — is a cache hit instead of a
// fresh place & route; the per-row hit/miss deltas make that reuse
// visible. Every reported value except SearchMS is deterministic for the
// fixed seed. ctx bounds the searches.
func AutotuneBench(ctx context.Context, opts AutotuneBenchOptions) (AutotuneBenchResult, error) {
	opts = opts.withDefaults()
	res := AutotuneBenchResult{Options: opts, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	m, err := LoadBenchmark(opts.Model)
	if err != nil {
		return res, err
	}
	refine := opts.Refine
	if refine < 0 {
		refine = 0
	}
	cache := NewCompileCache(0)
	for _, budget := range opts.Budgets {
		for _, obj := range opts.Objectives {
			start := time.Now()
			_, rep, err := Autotune(ctx, m, obj,
				WithPEBudget(budget), WithAutotuneRefine(refine),
				WithCache(cache), WithSeed(opts.Seed))
			if err != nil {
				return res, fmt.Errorf("autotune %v at %d PEs: %w", obj, budget, err)
			}
			res.Rows = append(res.Rows, AutotuneBenchRow{
				Objective:      rep.Objective.String(),
				Budget:         budget,
				BaselineDup:    rep.BaselineDup,
				BaselinePEs:    rep.BaselinePEs,
				BaselineValue:  rep.BaselineValue,
				TunedPEs:       rep.TunedPEs,
				TunedValue:     rep.TunedValue,
				RoutedValue:    rep.RoutedValue,
				ImprovementPct: 100 * rep.Improvement,
				Chips:          rep.Chips,
				Candidates:     rep.Candidates,
				Pruned:         rep.Pruned,
				Evaluated:      rep.Evaluated,
				Refined:        rep.Refined,
				CacheHits:      rep.CacheHits,
				CacheMisses:    rep.CacheMisses,
				SearchMS:       float64(time.Since(start).Microseconds()) / 1e3,
			})
		}
	}
	res.CacheHits, res.CacheMisses = cache.Counters()
	return res, nil
}

// RunAutotuneExperiment renders the compilation-autotuner artifact. It
// backs fpsa-bench's "autotune" experiment.
func RunAutotuneExperiment(ctx context.Context) (string, error) {
	r, err := AutotuneBench(ctx, AutotuneBenchOptions{})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
