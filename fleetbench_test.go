package fpsa

import (
	"context"
	"strings"
	"testing"
)

// TestFleetBenchSmall runs the fleet load generator at a CI-sized scale
// and pins its accounting identity: every offered request is completed,
// shed with a typed error, or an error — never lost — and the artifact
// reports the tail percentiles and any hot-swaps.
func TestFleetBenchSmall(t *testing.T) {
	r, err := FleetBench(context.Background(), FleetBenchOptions{
		Requests: 3000,
		Loaders:  6,
		Swaps:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered == 0 || r.Completed == 0 {
		t.Fatalf("no traffic served: %+v", r)
	}
	if r.Lost != 0 || r.Errors != 0 {
		t.Fatalf("lost %d / errors %d requests of %d offered", r.Lost, r.Errors, r.Offered)
	}
	if r.Offered != r.Completed+r.Shed {
		t.Fatalf("accounting identity broken: offered %d ≠ completed %d + shed %d",
			r.Offered, r.Completed, r.Shed)
	}
	if len(r.Swaps) != 1 {
		t.Fatalf("swaps recorded = %d, want 1", len(r.Swaps))
	}
	if r.QPS <= 0 || r.P50LatencyUS <= 0 || r.P999LatencyUS < r.P50LatencyUS {
		t.Fatalf("latency/throughput stats implausible: qps %.1f p50 %g p999 %g",
			r.QPS, r.P50LatencyUS, r.P999LatencyUS)
	}
	if got := len(r.Stats.Models); got != 3 {
		t.Fatalf("fleet stats cover %d models, want 3", got)
	}
	text := r.String()
	for _, want := range []string{"p50", "p99", "p999", "shed", "swap"} {
		if !strings.Contains(text, want) {
			t.Errorf("artifact missing %q:\n%s", want, text)
		}
	}
}
