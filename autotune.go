package fpsa

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fpsa/internal/coreop"
	"fpsa/internal/device"
	"fpsa/internal/mapper"
	"fpsa/internal/perf"
	"fpsa/internal/place"
	"fpsa/internal/shard"
	"fpsa/internal/synth"
)

// Objective selects what Autotune optimizes.
type Objective int

// Autotune objectives.
const (
	// MinLatency minimizes the perf model's single-sample pipeline
	// latency (PerfSummary.LatencyUS).
	MinLatency Objective = iota
	// MinEnergy minimizes the per-sample energy (PerfSummary.EnergyUJ).
	MinEnergy
	// MaxThroughputPerChip maximizes samples/s divided by the chip count
	// — the fleet-level metric a capacity-bound serving deployment cares
	// about.
	MaxThroughputPerChip
)

// String renders the objective the way fpsa-compile -autotune spells it.
func (o Objective) String() string {
	switch o {
	case MinLatency:
		return "min-latency"
	case MinEnergy:
		return "min-energy"
	case MaxThroughputPerChip:
		return "max-throughput-per-chip"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}

// ParseObjective parses an objective name (the String spellings, plus the
// short forms "latency", "energy", "throughput"). Unknown names are
// ErrInvalidArgument.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "min-latency", "latency":
		return MinLatency, nil
	case "min-energy", "energy":
		return MinEnergy, nil
	case "max-throughput-per-chip", "throughput", "throughput-per-chip":
		return MaxThroughputPerChip, nil
	}
	return 0, fmt.Errorf("%w: unknown objective %q (want min-latency, min-energy or max-throughput-per-chip)", ErrInvalidArgument, s)
}

// maximize reports whether larger objective values win.
func (o Objective) maximize() bool { return o == MaxThroughputPerChip }

// value extracts the objective's scalar from an evaluated summary.
func (o Objective) value(p PerfSummary) float64 {
	switch o {
	case MinEnergy:
		return p.EnergyUJ
	case MaxThroughputPerChip:
		chips := p.Chips
		if chips < 1 {
			chips = 1
		}
		return p.ThroughputSPS / float64(chips)
	default:
		return p.LatencyUS
	}
}

// AutotuneReport records what one Autotune search did and found. Every
// field is deterministic for a fixed seed at any worker count; wall-clock
// is measured by AutotuneBench, not here.
type AutotuneReport struct {
	Objective Objective
	// PEBudget is the resolved PE envelope the search spent within.
	PEBudget int
	// BaselineDup / BaselinePEs / BaselineValue describe the best
	// *uniform* duplication inside the same envelope and chip options —
	// the configuration today's global knob would pick.
	BaselineDup   int
	BaselinePEs   int
	BaselineValue float64
	// LayerDup is the winning per-layer assignment (nil when the best
	// uniform configuration won outright); Cuts/Chips its multi-chip
	// partition (Cuts empty on one chip); TunedPEs its PE spend;
	// TunedValue its perf-model objective value, comparable with
	// BaselineValue.
	LayerDup   map[string]int
	Cuts       []int
	Chips      int
	TunedPEs   int
	TunedValue float64
	// Improvement is the fractional objective gain of tuned over the
	// uniform baseline (0.24 = 24% lower latency/energy or higher
	// throughput/chip).
	Improvement float64
	// RoutedValue is the winner's objective value rescored with measured
	// hop counts after place & route (0 when refinement was disabled).
	RoutedValue float64
	// Search accounting: candidates generated, pruned without a full
	// oracle evaluation, evaluated, and place&routed (finalists);
	// CacheHits/CacheMisses count the compile-cache traffic of the
	// refinement phase — the memoized sub-compiles that keep full P&R
	// runs far below candidates evaluated.
	Candidates  int
	Pruned      int
	Evaluated   int
	Refined     int
	CacheHits   int64
	CacheMisses int64
}

// String renders the report.
func (r AutotuneReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "autotune %v: budget %d PEs, %d candidates (%d pruned, %d evaluated, %d refined, cache %d hit/%d miss)\n",
		r.Objective, r.PEBudget, r.Candidates, r.Pruned, r.Evaluated, r.Refined, r.CacheHits, r.CacheMisses)
	fmt.Fprintf(&b, "  uniform dup %d (%d PEs): %.4g\n", r.BaselineDup, r.BaselinePEs, r.BaselineValue)
	assign := "uniform (no per-layer gain)"
	if len(r.LayerDup) > 0 {
		layers := make([]string, 0, len(r.LayerDup))
		for name := range r.LayerDup {
			layers = append(layers, name)
		}
		sort.Strings(layers)
		parts := make([]string, len(layers))
		for i, name := range layers {
			parts[i] = fmt.Sprintf("%s=%d", name, r.LayerDup[name])
		}
		assign = strings.Join(parts, " ")
	}
	fmt.Fprintf(&b, "  tuned %s (%d PEs, %d chip(s)): %.4g  (%+.1f%%)\n",
		assign, r.TunedPEs, r.Chips, r.TunedValue, 100*r.Improvement)
	if r.RoutedValue != 0 {
		fmt.Fprintf(&b, "  routed winner rescored: %.4g\n", r.RoutedValue)
	}
	return b.String()
}

// tuneCandidate is one point of the search space: a per-layer (or
// uniform) duplication assignment plus a chip partition.
type tuneCandidate struct {
	layerDup  map[string]int // per-layer realization; nil for the uniform family
	uniformD  int            // > 0 marks the uniform family (the baseline)
	assign    []int          // per-group duplication vector
	pes       int            // Σ assign × replicas
	maxIter   int
	cuts      []int // interior cut positions; nil = single chip
	cutWidths []int
	chips     int

	perf  PerfSummary
	value float64
	ok    bool
}

// Autotune searches per-layer duplication assignments and shard cut
// points for the configuration that optimizes the given perf-model
// objective within a PE envelope, then compiles it. The uniform
// WithDuplication policy quantizes spend coarsely — between its sweet
// spots a per-layer assignment buys strictly more parallelism from the
// same PEs — and the search exploits exactly that: candidates are the
// distinct per-layer minimal assignments across iteration targets (plus
// saturation variants that unbuffer cheap layers, plus multi-chip cut
// variants under WithChips/WithChipCapacity), scored with internal/perf
// as the cost oracle on the PR 2 portfolio worker pool, dominated
// candidates pruned by an optimistic bound before evaluation. The top
// finalists are then placed & routed through the compile cache
// (WithAutotuneRefine; memoized per-shard sub-compiles keep full P&R runs
// far below candidates evaluated) and rescored with measured hop counts
// before the winner is chosen.
//
// The envelope comes from WithPEBudget, or WithChipCapacity × WithChips,
// or — by default — the uniform WithDuplication spend. The uniform family
// itself is searched as the baseline, so the report's Improvement is
// tuned-vs-best-uniform under identical constraints, and the tuned
// deployment is never worse than uniform on the oracle's account.
//
// The search is deterministic for a fixed seed at any WithParallelism
// worker count: candidate generation is seedless, evaluation waves are
// index-ordered with a barrier between them, and every tie breaks toward
// the earlier candidate. ctx cancellation aborts between waves (and
// inside place & route per the PR 5 invariants) with ctx.Err().
func Autotune(ctx context.Context, m Model, objective Objective, opts ...Option) (*Deployment, AutotuneReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var set compileSettings
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	rep := AutotuneReport{Objective: objective}
	switch objective {
	case MinLatency, MinEnergy, MaxThroughputPerChip:
	default:
		return nil, rep, fmt.Errorf("%w: unknown objective %v", ErrInvalidArgument, objective)
	}
	if set.peBudget < 0 {
		return nil, rep, fmt.Errorf("%w: WithPEBudget(%d): value must be ≥ 0 (0 = derive from chips or duplication)", ErrInvalidArgument, set.peBudget)
	}
	if set.refineSet && set.refine < 0 {
		return nil, rep, fmt.Errorf("%w: WithAutotuneRefine(%d): value must be ≥ 0 (0 = oracle only)", ErrInvalidArgument, set.refine)
	}
	if !set.refineSet {
		set.refine = 2
	}
	if err := m.valid(); err != nil {
		return nil, rep, err
	}
	if err := set.cfg.validate(); err != nil {
		return nil, rep, err
	}
	if len(set.cfg.LayerDup) > 0 || len(set.cfg.ShardCuts) > 0 {
		return nil, rep, fmt.Errorf("%w: Autotune searches the per-layer assignment and cuts itself; WithLayerDuplication/WithShardCuts pin them", ErrInvalidArgument)
	}
	params := device.Params45nm
	co, err := synth.Synthesize(m.graph, synth.Options{Params: params})
	if err != nil {
		return nil, rep, fmt.Errorf("%w: %w", ErrModelInvalid, err)
	}

	budget, err := resolveBudget(co, set)
	if err != nil {
		return nil, rep, err
	}
	rep.PEBudget = budget

	cands := generateCandidates(co, set.cfg, objective, budget)
	rep.Candidates = len(cands)
	if len(cands) == 0 {
		return nil, rep, fmt.Errorf("%w: no feasible assignment of %s within %d PEs", ErrCapacity, m.Name(), budget)
	}

	if err := evaluateCandidates(ctx, m, co, params, objective, cands, set.cfg.Parallelism, &rep); err != nil {
		return nil, rep, err
	}

	// Oracle winner and the uniform baseline, both by index-ordered scan
	// so ties are deterministic.
	best, bestUniform := -1, -1
	for i, c := range cands {
		if !c.ok {
			continue
		}
		if best < 0 || betterValue(objective, c.value, cands[best].value) {
			best = i
		}
		if c.uniformD > 0 && (bestUniform < 0 || betterValue(objective, c.value, cands[bestUniform].value)) {
			bestUniform = i
		}
	}
	if best < 0 {
		return nil, rep, fmt.Errorf("%w: no candidate of %s evaluated successfully", ErrCapacity, m.Name())
	}
	if bestUniform >= 0 {
		rep.BaselineDup = cands[bestUniform].uniformD
		rep.BaselinePEs = cands[bestUniform].pes
		rep.BaselineValue = cands[bestUniform].value
	}

	// Refinement: place & route the top finalists through the compile
	// cache and rescore them with measured hop counts. Finalist order is
	// (objective value, candidate index) — deterministic.
	order := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.ok {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return betterValue(objective, cands[order[a]].value, cands[order[b]].value)
	})
	winner := best
	var winnerDep *Deployment
	if set.refine > 0 {
		cache := set.cfg.Cache
		if cache == nil {
			// The finalists still share per-shard sub-compiles with each
			// other through a search-local cache.
			cache = NewCompileCache(0)
		}
		h0, m0 := cache.Counters()
		k := set.refine
		if k > len(order) {
			k = len(order)
		}
		bestRouted := -1
		for fi := 0; fi < k; fi++ {
			if err := ctx.Err(); err != nil {
				return nil, rep, err
			}
			i := order[fi]
			d, err := compileCandidate(ctx, m, set, cands[i], cache)
			if err != nil {
				return nil, rep, fmt.Errorf("fpsa: autotune: refining candidate %d: %w", i, err)
			}
			stats, err := d.PlaceAndRoute(ctx)
			if err != nil {
				return nil, rep, fmt.Errorf("fpsa: autotune: refining candidate %d: %w", i, err)
			}
			ps, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
			if err != nil {
				return nil, rep, fmt.Errorf("fpsa: autotune: refining candidate %d: %w", i, err)
			}
			rep.Refined++
			routed := objective.value(ps)
			if bestRouted < 0 || betterValue(objective, routed, rep.RoutedValue) {
				bestRouted = i
				rep.RoutedValue = routed
				winnerDep = d
			}
		}
		winner = bestRouted
		h1, m1 := cache.Counters()
		rep.CacheHits, rep.CacheMisses = h1-h0, m1-m0
	}

	win := cands[winner]
	rep.TunedValue = win.value
	rep.TunedPEs = win.pes
	rep.Chips = win.chips
	rep.Cuts = append([]int(nil), win.cuts...)
	if win.uniformD == 0 {
		rep.LayerDup = copyIntMap(win.layerDup)
	}
	if bestUniform >= 0 && rep.BaselineValue != 0 {
		if objective.maximize() {
			rep.Improvement = rep.TunedValue/rep.BaselineValue - 1
		} else {
			rep.Improvement = 1 - rep.TunedValue/rep.BaselineValue
		}
	}
	if winnerDep == nil {
		winnerDep, err = compileCandidate(ctx, m, set, win, set.cfg.Cache)
		if err != nil {
			return nil, rep, fmt.Errorf("fpsa: autotune: compiling winner: %w", err)
		}
	}
	return winnerDep, rep, nil
}

// resolveBudget picks the PE envelope: explicit WithPEBudget, else the
// chip fleet's capacity, else the uniform WithDuplication spend.
func resolveBudget(co *coreop.Graph, set compileSettings) (int, error) {
	if set.peBudget > 0 {
		return set.peBudget, nil
	}
	if cap := set.cfg.ChipCapacity; cap > 0 {
		chips := set.cfg.MaxChips
		if chips < 1 {
			chips = 1
		}
		return cap * chips, nil
	}
	dup := set.cfg.Duplication
	if dup < 1 {
		dup = 1
	}
	alloc, err := mapper.Allocate(co, dup)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrCapacity, err)
	}
	return alloc.TotalPEs, nil
}

// layerRun is one model layer's contiguous group slice.
type layerRun struct {
	name   string
	groups []int // indices into co.Groups
}

// layerRuns collects the distinct layers in first-appearance order.
func layerRuns(co *coreop.Graph) []layerRun {
	var runs []layerRun
	index := map[string]int{}
	for gi, grp := range co.Groups {
		li, ok := index[grp.Layer]
		if !ok {
			li = len(runs)
			index[grp.Layer] = li
			runs = append(runs, layerRun{name: grp.Layer})
		}
		runs[li].groups = append(runs[li].groups, gi)
	}
	return runs
}

// generateCandidates enumerates the search space within the budget:
//
//   - the uniform family (every distinct Allocate outcome, plus
//     whole-model replicas when the budget allows) — the baseline;
//   - per-layer minimal assignments: for each achievable iteration
//     target T, every layer gets just enough copies to finish in ≤ T
//     iterations, deduplicated across T;
//   - saturation variants (latency/energy objectives only): leftover
//     budget raises cheap layers to full duplication, removing their
//     buffers from the fill path and energy account;
//   - multi-chip variants of each assignment under WithChips, at every
//     chip count and both cut policies, deduplicated by cut positions.
//
// Dominated candidates — same cuts, no better iteration bound, no
// cheaper spend — are dropped for the throughput objective, where the
// oracle provably cannot rank them higher.
func generateCandidates(co *coreop.Graph, cfg Config, objective Objective, budget int) []*tuneCandidate {
	maxReuse := co.MaxReuse()
	runs := layerRuns(co)
	var cands []*tuneCandidate
	seen := map[string]bool{}

	add := func(c *tuneCandidate) {
		key := fmt.Sprintf("u%d|%v|%v", c.uniformD, c.assign, c.cuts)
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, c)
	}

	capOK := func(pes int) bool { return cfg.ChipCapacity <= 0 || pes <= cfg.ChipCapacity }

	// Chip variants of one assignment. Single chip only when it fits the
	// capacity; cuts searched at every allowed chip count and policy.
	expandChips := func(base *tuneCandidate) {
		if capOK(base.pes) {
			add(base)
		}
		if cfg.MaxChips <= 1 || base.uniformD > maxReuse {
			// Replicated pipelines stay single-chip: the partitioner
			// models one copy of the chain.
			return
		}
		weights, signals := shardChain(co.Groups, base.assign)
		maxChips := cfg.MaxChips
		if maxChips > len(co.Groups) {
			maxChips = len(co.Groups)
		}
		for k := 2; k <= maxChips; k++ {
			for _, policy := range []shard.Policy{shard.PolicyMinCut, shard.PolicyBalanced} {
				plan, err := shard.Partition(weights, signals, nil, shard.Options{
					Chips:    k,
					Capacity: cfg.ChipCapacity,
					Policy:   policy,
				})
				if err != nil {
					continue
				}
				c := *base
				c.cuts = append([]int(nil), plan.Bounds[1:k]...)
				c.cutWidths = append([]int(nil), plan.CutTraffic...)
				c.chips = k
				add(&c)
			}
		}
	}

	// Uniform family: every distinct Allocate outcome within budget, and
	// whole-model sample-parallel replicas once duplication saturates.
	uniformDs := map[int]bool{}
	for t := 1; t <= maxReuse; t++ {
		uniformDs[(maxReuse+t-1)/t] = true
	}
	ds := make([]int, 0, len(uniformDs))
	for d := range uniformDs {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	var fullSpend int
	for _, grp := range co.Groups {
		fullSpend += grp.Reuse
	}
	for r := 2; r*fullSpend <= budget; r++ {
		ds = append(ds, r*maxReuse)
	}
	for _, d := range ds {
		alloc, err := mapper.Allocate(co, d)
		if err != nil {
			continue
		}
		replicas := 1
		if d > maxReuse {
			replicas = d / maxReuse
		}
		pes := alloc.TotalPEs * replicas
		if pes > budget {
			continue
		}
		expandChips(&tuneCandidate{
			uniformD: d,
			assign:   alloc.Dup,
			pes:      pes,
			maxIter:  alloc.MaxIterations(),
			chips:    1,
		})
	}

	// Per-layer minimal assignments across iteration targets.
	for t := 1; t <= maxReuse; t++ {
		layerDup := make(map[string]int, len(runs))
		assign := make([]int, len(co.Groups))
		pes, maxIter := 0, 0
		for _, run := range runs {
			d := 1
			for _, gi := range run.groups {
				r := co.Groups[gi].Reuse
				need := (r + t - 1) / t
				if need > r {
					need = r
				}
				if need > d {
					d = need
				}
			}
			layerDup[run.name] = d
		}
		for gi, grp := range co.Groups {
			d := layerDup[grp.Layer]
			if d > grp.Reuse {
				d = grp.Reuse
			}
			assign[gi] = d
			pes += d
			if it := (grp.Reuse + d - 1) / d; it > maxIter {
				maxIter = it
			}
		}
		if pes > budget {
			continue
		}
		base := &tuneCandidate{
			layerDup: layerDup,
			assign:   assign,
			pes:      pes,
			maxIter:  maxIter,
			chips:    1,
		}
		expandChips(base)

		// Saturation variant: spend the leftover envelope unbuffering the
		// cheapest layers (iterations collapse to 1, dropping their SMB
		// charge and fill wait). Throughput cannot benefit — skip there.
		if objective == MaxThroughputPerChip {
			continue
		}
		type satCost struct{ li, cost int }
		costs := make([]satCost, 0, len(runs))
		for li, run := range runs {
			cost := 0
			for _, gi := range run.groups {
				cost += co.Groups[gi].Reuse - assign[gi]
			}
			if cost > 0 {
				costs = append(costs, satCost{li, cost})
			}
		}
		sort.Slice(costs, func(a, b int) bool {
			if costs[a].cost != costs[b].cost {
				return costs[a].cost < costs[b].cost
			}
			return costs[a].li < costs[b].li
		})
		satAssign := append([]int(nil), assign...)
		satDup := copyIntMap(layerDup)
		satPEs := pes
		applied := false
		for _, sc := range costs {
			if satPEs+sc.cost > budget {
				continue
			}
			run := runs[sc.li]
			for _, gi := range run.groups {
				satPEs += co.Groups[gi].Reuse - satAssign[gi]
				satAssign[gi] = co.Groups[gi].Reuse
			}
			dmax := 0
			for _, gi := range run.groups {
				if co.Groups[gi].Reuse > dmax {
					dmax = co.Groups[gi].Reuse
				}
			}
			satDup[run.name] = dmax
			applied = true
		}
		if applied {
			satIter := 0
			for gi, grp := range co.Groups {
				if it := (grp.Reuse + satAssign[gi] - 1) / satAssign[gi]; it > satIter {
					satIter = it
				}
			}
			expandChips(&tuneCandidate{
				layerDup: satDup,
				assign:   satAssign,
				pes:      satPEs,
				maxIter:  satIter,
				chips:    1,
			})
		}
	}

	if objective == MaxThroughputPerChip {
		cands = pruneDominatedThroughput(cands)
	}
	return cands
}

// pruneDominatedThroughput drops candidates another candidate dominates
// for the throughput objective: identical cut positions (so identical
// link stages and chip count), an iteration bound no better, and no
// uniform-family replicas in play. Throughput is a function of the
// bottleneck iteration count and the links alone, so the dominated
// candidate provably cannot rank strictly higher; ties already break
// toward the earlier candidate.
func pruneDominatedThroughput(cands []*tuneCandidate) []*tuneCandidate {
	type groupKey struct {
		cuts string
		repl int
	}
	bestIter := map[groupKey]int{}
	keyOf := func(c *tuneCandidate) groupKey {
		repl := 0
		if c.uniformD > 0 {
			repl = c.uniformD
		}
		return groupKey{fmt.Sprint(c.cuts), repl}
	}
	for _, c := range cands {
		k := keyOf(c)
		if it, ok := bestIter[k]; !ok || c.maxIter < it {
			bestIter[k] = c.maxIter
		}
	}
	kept := cands[:0]
	for _, c := range cands {
		if c.maxIter > bestIter[keyOf(c)] {
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// betterValue reports whether a beats b for the objective (strictly — a
// tie is not an improvement, so earlier candidates win ties).
func betterValue(o Objective, a, b float64) bool {
	if o.maximize() {
		return a > b
	}
	return a < b
}

// evaluateCandidates scores every candidate with the perf oracle on the
// portfolio worker pool, in index-ordered waves with a barrier between
// them: pruning compares a candidate's optimistic bound against the best
// value among *completed* waves only, so the outcome is identical at any
// worker count. ctx cancellation aborts between waves.
func evaluateCandidates(ctx context.Context, m Model, co *coreop.Graph, params device.Params, objective Objective, cands []*tuneCandidate, workers int, rep *AutotuneReport) error {
	// The FPSA stage time is assignment-independent (comp and the
	// calibrated comm are both fixed), so maxIter×stage plus the known
	// link stages is a sound optimistic bound for latency and throughput.
	// Energy has no useful cheap bound (the PE term is
	// assignment-independent and the rest needs the netlist) — those
	// candidates always evaluate.
	gamma := float64(params.SamplingWindow())
	stageNS := gamma * params.PipelineClockNS()
	if comm := gamma * float64(params.TypicalRouteHops) * params.WireDelayPerHopNS; comm > stageNS {
		stageNS = comm
	}
	link := shard.Link{SignalBits: params.IOBits}
	bound := func(c *tuneCandidate) (float64, bool) {
		bottleneck := float64(c.maxIter) * stageNS
		var linkSum float64
		for _, w := range c.cutWidths {
			t := link.TransferNS(w)
			linkSum += t
			if t > bottleneck {
				bottleneck = t
			}
		}
		switch objective {
		case MinLatency:
			return (bottleneck + linkSum) * 1e-3, true
		case MaxThroughputPerChip:
			replicas := 1
			if c.uniformD > co.MaxReuse() {
				replicas = c.uniformD / co.MaxReuse()
			}
			return float64(replicas) / (bottleneck * 1e-9) / float64(c.chips), true
		}
		return 0, false
	}

	pool := place.NewPool(workers)
	const wave = 32
	hasBest := false
	var bestVal float64
	for lo := 0; lo < len(cands); lo += wave {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + wave
		if hi > len(cands) {
			hi = len(cands)
		}
		ids := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if hasBest {
				if b, ok := bound(cands[i]); ok && !betterValue(objective, b, bestVal) {
					rep.Pruned++
					continue
				}
			}
			ids = append(ids, i)
		}
		pool.Each(ids, func(i int) {
			c := cands[i]
			dup := 1
			if c.uniformD > 0 {
				dup = c.uniformD
			}
			r, err := perf.Evaluate(perf.Input{
				Model:     m.graph,
				CoreOps:   co,
				Params:    params,
				Dup:       dup,
				Assign:    c.assign,
				CutWidths: c.cutWidths,
			}, perf.TargetFPSA)
			if err != nil {
				return
			}
			c.perf = PerfSummary{
				ThroughputSPS: r.ThroughputSPS,
				LatencyUS:     r.LatencyUS,
				EnergyUJ:      r.Energy.TotalUJ(),
				Chips:         r.Chips,
			}
			c.value = objective.value(c.perf)
			c.ok = true
		})
		for _, i := range ids {
			c := cands[i]
			if !c.ok {
				continue
			}
			rep.Evaluated++
			if !hasBest || betterValue(objective, c.value, bestVal) {
				hasBest, bestVal = true, c.value
			}
		}
	}
	return nil
}

// compileCandidate realizes one candidate as a Deployment, replaying its
// assignment and cuts through the regular compile path (so equivalence
// with a hand-written WithLayerDuplication/WithShardCuts compile is by
// construction, and per-shard artifacts land in the cache under
// content addresses other candidates can hit).
func compileCandidate(ctx context.Context, m Model, set compileSettings, c *tuneCandidate, cache *CompileCache) (*Deployment, error) {
	cs := set
	cs.cfg.Cache = cache
	cs.cfg.LayerDup = nil
	cs.cfg.ShardCuts = nil
	if c.uniformD > 0 {
		cs.cfg.Duplication = c.uniformD
	} else {
		cs.cfg.LayerDup = copyIntMap(c.layerDup)
	}
	if len(c.cuts) > 0 {
		cs.cfg.ShardCuts = append([]int(nil), c.cuts...)
		if cs.cfg.MaxChips < len(c.cuts)+1 {
			cs.cfg.MaxChips = len(c.cuts) + 1
		}
	} else {
		cs.cfg.MaxChips = 1
	}
	return compile(ctx, m, cs)
}
