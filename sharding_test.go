package fpsa

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
)

// shardTestModel builds an FC model big enough to split across chips.
func shardTestModel(t *testing.T) Model {
	t.Helper()
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCompileExceedsCapacityErrors: a model too big for one chip is a
// hard error at MaxChips 1 — and the error names the fix.
func TestCompileExceedsCapacityErrors(t *testing.T) {
	m := shardTestModel(t)
	d, err := CompileConfig(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pes, _, _ := d.Blocks()
	if pes < 2 {
		t.Fatalf("test model occupies %d PEs, cannot exercise capacity", pes)
	}
	_, err = CompileConfig(m, Config{Duplication: 1, ChipCapacity: pes - 1})
	if err == nil {
		t.Fatal("over-capacity compile succeeded on one chip")
	}
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("error %q is not ErrCapacity", err)
	}
	if !strings.Contains(err.Error(), "WithChips") {
		t.Fatalf("error %q does not suggest WithChips", err)
	}
}

// TestCompileSharded: with MaxChips ≥ 2 the over-capacity model
// compiles; shards partition the groups, respect capacity, and preserve
// the PE inventory.
func TestCompileSharded(t *testing.T) {
	m := shardTestModel(t)
	single, err := CompileConfig(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantPEs, _, _ := single.Blocks()
	if single.Chips() != 1 || single.Shards() != nil {
		t.Fatalf("single-chip deployment reports %d chips, %v shards", single.Chips(), single.Shards())
	}

	capacity := wantPEs - 1
	d, err := CompileConfig(m, Config{Duplication: 1, ChipCapacity: capacity, MaxChips: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Chips() < 2 {
		t.Fatalf("sharded deployment has %d chips, want ≥ 2", d.Chips())
	}
	shards := d.Shards()
	if len(shards) != d.Chips() {
		t.Fatalf("Shards() returned %d entries for %d chips", len(shards), d.Chips())
	}
	totalPEs, totalGroups := 0, 0
	for _, sh := range shards {
		if sh.PEs > capacity {
			t.Errorf("chip %d holds %d PEs, capacity %d", sh.Chip, sh.PEs, capacity)
		}
		totalPEs += sh.PEs
		totalGroups += sh.Groups
	}
	if totalPEs != wantPEs {
		t.Errorf("sharded PEs sum to %d, single-chip deployment has %d", totalPEs, wantPEs)
	}
	groups, _ := d.CoreOps()
	if totalGroups != groups {
		t.Errorf("sharded groups sum to %d, graph has %d", totalGroups, groups)
	}
	for _, sh := range shards[1:] {
		if sh.InSignals <= 0 {
			t.Errorf("chip %d reports no inbound link traffic", sh.Chip)
		}
	}
	pes, smbs, clbs := d.Blocks()
	if pes != wantPEs || smbs < 0 || clbs <= 0 {
		t.Errorf("Blocks() = %d/%d/%d", pes, smbs, clbs)
	}
	if d.AreaMM2() <= 0 {
		t.Errorf("AreaMM2 = %g", d.AreaMM2())
	}
}

// TestCompileShardedExactChips: without a capacity bound, MaxChips asks
// for exactly that many chips.
func TestCompileShardedExactChips(t *testing.T) {
	m := shardTestModel(t)
	d, err := CompileConfig(m, Config{Duplication: 1, MaxChips: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Chips() != 3 {
		t.Fatalf("Chips() = %d, want 3", d.Chips())
	}
}

// TestCompileInfeasibleSharding: a single group heavier than the
// capacity cannot shard at any chip count.
func TestCompileInfeasibleSharding(t *testing.T) {
	m := shardTestModel(t)
	if _, err := CompileConfig(m, Config{Duplication: 1, ChipCapacity: 1, MaxChips: 2}); err == nil {
		t.Fatal("infeasible sharding accepted (capacity 1 cannot hold the model at 2 chips)")
	}
}

// TestShardedPlaceAndRoute: every chip places, routes and converges; the
// aggregate stats report the chip count; and the bitstream verifies per
// chip.
func TestShardedPlaceAndRoute(t *testing.T) {
	m := shardTestModel(t)
	d, err := CompileConfig(m, Config{Duplication: 1, MaxChips: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chips != 2 {
		t.Fatalf("PRStats.Chips = %d, want 2", stats.Chips)
	}
	if !stats.Converged {
		t.Fatalf("sharded routing did not converge: %+v", stats)
	}
	if stats.ChipSide <= 0 || stats.MeanHops <= 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	if !strings.Contains(stats.String(), "2 chips") {
		t.Errorf("stats string %q missing chip count", stats)
	}
	info, err := d.Bitstream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.ProgrammedCells <= 0 || info.TrackOccupancy <= 0 {
		t.Fatalf("implausible bitstream info: %+v", info)
	}
}

// TestShardedPlaceAndRouteCached: each shard is its own cache entry; a
// redeploy hits every one and reports FromCache.
func TestShardedPlaceAndRouteCached(t *testing.T) {
	m := shardTestModel(t)
	cache := NewCompileCache(0)
	cfg := Config{Duplication: 1, MaxChips: 2, Seed: 3, Cache: cache}
	d, err := CompileConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := d.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first sharded PlaceAndRoute reported FromCache")
	}
	d2, err := CompileConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := d2.PlaceAndRoute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("redeploy did not hit the cache for every shard")
	}
	if warm.MeanHops != cold.MeanHops || warm.WirelengthCost != cold.WirelengthCost {
		t.Errorf("cached stats differ: cold %+v, warm %+v", cold, warm)
	}
	hits, misses := cache.Counters()
	if misses != 2 || hits != 2 {
		t.Errorf("cache counters hits=%d misses=%d, want 2/2 (one per shard)", hits, misses)
	}
}

// TestShardedPerformance: the perf model charges the inter-chip link —
// chips reported, link time > 0, latency above the single-chip figure.
func TestShardedPerformance(t *testing.T) {
	m := shardTestModel(t)
	single, err := CompileConfig(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := single.Performance()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Chips != 1 || sp.LinkNSPerSample != 0 {
		t.Fatalf("single-chip perf reports %d chips, link %g", sp.Chips, sp.LinkNSPerSample)
	}
	d, err := CompileConfig(m, Config{Duplication: 1, MaxChips: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Performance()
	if err != nil {
		t.Fatal(err)
	}
	if p.Chips != 2 {
		t.Fatalf("sharded perf reports %d chips", p.Chips)
	}
	if p.LinkNSPerSample <= 0 {
		t.Fatalf("sharded perf charges no link time: %+v", p)
	}
	if p.LatencyUS <= sp.LatencyUS {
		t.Errorf("sharded latency %g µs not above single-chip %g µs", p.LatencyUS, sp.LatencyUS)
	}
	if !strings.Contains(p.String(), "2 chips") {
		t.Errorf("perf string %q missing chip count", p)
	}
}

// TestShardedEngineServes is the public serving path of the acceptance
// criterion: a network served with Chips ≥ 2 returns the same classes as
// the single-chip engine.
func TestShardedEngineServes(t *testing.T) {
	ds := SyntheticDataset(5, 300, 12, 3, 0.08)
	train, test := ds.Split(0.7)
	net, err := TrainMLP(5, []int{12, 10, 8, 3}, train, 15)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := net.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEngine(sn, EngineConfig{Workers: 1, MaxBatch: 4, Mode: ModeSpiking})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.ClassifyBatch(context.Background(), test.X)
	if err != nil {
		t.Fatal(err)
	}
	single.Close()

	sharded, err := NewEngine(sn, EngineConfig{Workers: 3, MaxBatch: 4, Mode: ModeSpiking, Chips: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if sharded.Chips() != 2 {
		t.Fatalf("Engine.Chips() = %d, want 2", sharded.Chips())
	}
	got, err := sharded.ClassifyBatch(context.Background(), test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: sharded class %d, single-chip %d", i, got[i], want[i])
		}
	}
	if s := sharded.Stats(); s.Chips != 2 {
		t.Errorf("EngineStats.Chips = %d, want 2", s.Chips)
	}
}

// TestShardingBench: the experiment runs end to end at small scale and
// reports one row per chip count with consistent stage splits.
func TestShardingBench(t *testing.T) {
	r, err := ShardingBench(context.Background(), ShardingBenchOptions{Samples: 48, Batch: 8, ChipCounts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Rows))
	}
	if r.Rows[0].RealChips != 1 || r.Rows[1].RealChips != 2 {
		t.Fatalf("realized chips %d/%d, want 1/2", r.Rows[0].RealChips, r.Rows[1].RealChips)
	}
	for _, row := range r.Rows {
		if row.ThroughputSPS <= 0 || row.BatchLatencyUS <= 0 {
			t.Errorf("row %+v has empty measurements", row)
		}
		total := 0
		for _, s := range row.StageSplit {
			total += s
		}
		if total != r.Stages {
			t.Errorf("chips=%d stage split %v does not cover %d stages", row.RealChips, row.StageSplit, r.Stages)
		}
	}
	if len(r.Rows[1].CutSignals) != 1 || r.Rows[1].CutSignals[0] <= 0 {
		t.Errorf("2-chip row cut signals = %v", r.Rows[1].CutSignals)
	}
	out := r.String()
	if !strings.Contains(out, "sharded serving") || !strings.Contains(out, "2+2") {
		t.Errorf("render missing expected content:\n%s", out)
	}
	if r.GoMaxProcs != runtime.GOMAXPROCS(0) || r.NumCPU != runtime.NumCPU() {
		t.Errorf("host parallelism GoMaxProcs=%d NumCPU=%d, want %d/%d",
			r.GoMaxProcs, r.NumCPU, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	// The pipeline can only overlap chips when the host gives it cores:
	// with GOMAXPROCS < chips the per-chip goroutines time-slice, the
	// multi-chip row legitimately measures ~1.0x, and the report must say
	// so instead of looking like a silent regression.
	if r.GoMaxProcs < 2 {
		if !strings.Contains(out, "time-slice") {
			t.Errorf("1-core render missing the GOMAXPROCS caveat:\n%s", out)
		}
		t.Logf("GOMAXPROCS=%d < 2 chips: skipping pipeline speedup assertion (2-chip speedup %.2fx)",
			r.GoMaxProcs, r.Rows[1].Speedup)
	} else if r.Rows[1].Speedup < 0.8 {
		// Loose floor: pipelining has overhead, but with ≥2 cores the
		// 2-chip row should not collapse far below the 1-chip baseline.
		t.Errorf("2-chip speedup %.2fx with GOMAXPROCS=%d, want ≥ 0.8x", r.Rows[1].Speedup, r.GoMaxProcs)
	}
}

// TestReshardingReusesUnchangedShards: shard cache keys address the
// shard's group range, not the chip count, so re-partitioning at a
// different MaxChips re-uses every chip whose content is unchanged.
func TestReshardingReusesUnchangedShards(t *testing.T) {
	m := shardTestModel(t)
	cache := NewCompileCache(0)
	d2, err := CompileConfig(m, Config{Duplication: 1, MaxChips: 2, Seed: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.PlaceAndRoute(context.Background()); err != nil {
		t.Fatal(err)
	}
	ranges2 := make(map[[2]int]bool)
	for _, sh := range d2.shards {
		ranges2[[2]int{sh.lo, sh.hi}] = true
	}
	d3, err := CompileConfig(m, Config{Duplication: 1, MaxChips: 3, Seed: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, sh := range d3.shards {
		if ranges2[[2]int{sh.lo, sh.hi}] {
			shared++
		}
	}
	if _, err := d3.PlaceAndRoute(context.Background()); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Counters()
	wantMisses := int64(len(d2.shards) + len(d3.shards) - shared)
	if misses != wantMisses || hits != int64(shared) {
		t.Errorf("cache counters hits=%d misses=%d, want hits=%d misses=%d (%d shared group ranges)",
			hits, misses, shared, wantMisses, shared)
	}
	for i, sh3 := range d3.shards {
		for j, sh2 := range d2.shards {
			if sh3.lo == sh2.lo && sh3.hi == sh2.hi && d3.cacheKey(i) != d2.cacheKey(j) {
				t.Errorf("shards with identical group range %d:%d have different cache keys", sh3.lo, sh3.hi)
			}
		}
	}
}
