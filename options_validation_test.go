package fpsa

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// TestCompileOptionValidation: every compile knob rejects nonsensical
// values up front with ErrInvalidArgument instead of letting them flow
// into allocation or partitioning.
func TestCompileOptionValidation(t *testing.T) {
	m, err := LoadBenchmark("MLP-500-100")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative duplication", []Option{WithDuplication(-1)}},
		{"negative tracks", []Option{WithTracks(-4)}},
		{"negative chips", []Option{WithChips(-2)}},
		{"negative chip capacity", []Option{WithChipCapacity(-100)}},
		{"negative placement seeds", []Option{WithPlacementSeeds(-1)}},
		{"negative parallelism", []Option{WithParallelism(-8)}},
		{"zero layer dup", []Option{WithLayerDuplication(map[string]int{"fc1": 0})}},
		{"negative layer dup", []Option{WithLayerDuplication(map[string]int{"fc1": -3})}},
		{"zero layer tracks", []Option{WithLayerTracks(map[string]int{"fc1": 0})}},
		{"zero shard cut", []Option{WithShardCuts(0)}},
		{"negative shard cut", []Option{WithShardCuts(-1, 2)}},
		{"non-increasing cuts", []Option{WithShardCuts(3, 3)}},
		{"decreasing cuts", []Option{WithShardCuts(4, 2)}},
		{"unknown layer dup", []Option{WithLayerDuplication(map[string]int{"no-such-layer": 2})}},
		{"unknown layer tracks", []Option{WithLayerTracks(map[string]int{"no-such-layer": 2})}},
		{"cut beyond chain", []Option{WithShardCuts(9999), WithChips(2)}},
		{"negative fault rate", []Option{WithFaultModel(-0.1, 1)}},
		{"fault rate above 1", []Option{WithFaultModel(1.5, 1)}},
		{"NaN fault rate", []Option{WithFaultModel(math.NaN(), 1)}},
		{"NaN drift", []Option{WithFaultMap(FaultMap{Rate: 0.01, Drift: math.NaN()})}},
		{"drift of 1", []Option{WithFaultMap(FaultMap{Rate: 0.01, Drift: 1})}},
		{"negative drift", []Option{WithFaultMap(FaultMap{Rate: 0.01, Drift: -0.2})}},
		{"negative read sigma", []Option{WithFaultMap(FaultMap{ReadSigma: -1e-6})}},
		{"NaN read sigma", []Option{WithFaultMap(FaultMap{ReadSigma: math.NaN()})}},
		{"stuck-high fraction above 1", []Option{WithFaultMap(FaultMap{Rate: 0.01, StuckHighFrac: 2})}},
		{"negative layer seed", []Option{WithFaultMap(FaultMap{Rate: 0.01, LayerSeeds: map[string]int64{"fc1": -5}})}},
		{"unknown fault layer", []Option{WithFaultMap(FaultMap{Rate: 0.01, LayerSeeds: map[string]int64{"no-such-layer": 3}})}},
		{"fault model and map together", []Option{WithFaultModel(0.01, 1), WithFaultMap(FaultMap{Rate: 0.01})}},
		{"fault map and model together", []Option{WithFaultMap(FaultMap{Rate: 0.01}), WithFaultModel(0.01, 1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(context.Background(), m, tc.opts...); !errors.Is(err, ErrInvalidArgument) {
				t.Errorf("Compile(%s) = %v, want ErrInvalidArgument", tc.name, err)
			}
		})
	}
	// Zero stays "use the default" everywhere, as the option docs promise
	// — including a zero-rate fault model, which is ideal devices.
	if _, err := Compile(context.Background(), m, WithDuplication(0), WithTracks(0), WithChips(0), WithFaultModel(0, 3)); err != nil {
		t.Errorf("zero-valued knobs must compile with defaults, got %v", err)
	}
}

// TestEngineOptionValidation: serving knobs with nonsensical values —
// including NaN and out-of-range sparse thresholds — are rejected with
// ErrInvalidArgument before a worker pool spins up.
func TestEngineOptionValidation(t *testing.T) {
	d, _, _ := trainedDeployment(t)
	ctx := context.Background()
	cases := []struct {
		name string
		opts []EngineOption
	}{
		{"NaN sparse threshold", []EngineOption{WithSparseThreshold(math.NaN())}},
		{"negative sparse threshold", []EngineOption{WithSparseThreshold(-0.5)}},
		{"sparse threshold above 1", []EngineOption{WithSparseThreshold(1.5)}},
		{"negative workers", []EngineOption{WithWorkers(-1)}},
		{"negative batch", []EngineOption{WithMaxBatch(-2)}},
		{"negative queue depth", []EngineOption{WithQueueDepth(-4)}},
		{"negative chips", []EngineOption{WithEngineChips(-1)}},
		{"negative flush interval", []EngineOption{WithFlushInterval(-time.Millisecond)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := d.NewEngine(ctx, tc.opts...); !errors.Is(err, ErrInvalidArgument) {
				t.Errorf("NewEngine(%s) = %v, want ErrInvalidArgument", tc.name, err)
			}
		})
	}
	// Boundary values of the sparse threshold are legal: 0 means default,
	// 1 disables the dense fallback entirely.
	for _, thr := range []float64{0, 1} {
		eng, err := d.NewEngine(ctx, WithSparseThreshold(thr))
		if err != nil {
			t.Errorf("WithSparseThreshold(%v): %v, want success", thr, err)
			continue
		}
		eng.Close()
	}
}
