// Package fpsa is a full-system-stack simulator of FPSA, the reconfigurable
// ReRAM-based neural-network accelerator of Ji et al. (ASPLOS 2019): a
// spiking crossbar processing-element model, spiking memory blocks,
// configurable logic blocks and an FPGA-style reconfigurable routing
// fabric, together with the software stack that deploys neural networks
// onto them — neural synthesizer, spatial-to-temporal mapper, and
// placement & routing — plus the performance models and baselines (PRIME,
// FP-PRIME) behind every table and figure of the paper's evaluation.
//
// Typical use:
//
//	m, _ := fpsa.LoadBenchmark("VGG16")
//	d, _ := fpsa.Compile(m, fpsa.Config{Duplication: 64})
//	fmt.Println(d.Performance())
//
// or train and run an actual spiking network:
//
//	net, _ := fpsa.TrainMLP(1, []int{16, 24, 4}, ds, 40)
//	sn, _ := net.Deploy()
//	label, _ := sn.Classify(x, fpsa.ModeSpiking)
//
// or serve it under concurrent load through the batched engine:
//
//	eng, _ := fpsa.NewEngine(sn, fpsa.DefaultEngineConfig())
//	defer eng.Close()
//	label, _ = eng.Classify(x) // safe from any number of goroutines
//	fmt.Println(eng.Stats())
//
// Placement & routing scale across cores and never repeat work: set
// Config.PlacementSeeds/Parallelism for a multi-seed annealing portfolio
// and parallel routing, and Config.Cache (see NewCompileCache) to serve
// repeat deployments from a content-addressed artifact cache.
//
// Models larger than one chip shard across several: Config.MaxChips and
// ChipCapacity partition the compile (per-chip netlists, concurrent
// place & route, inter-chip links charged into the performance model)
// and EngineConfig.Chips serves the deployment as a chip-level pipeline
// with bit-identical outputs — see ShardPolicy, Deployment.Shards and
// docs/SERVING.md.
package fpsa

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/models"
)

// Model is a neural network ready for compilation.
type Model struct {
	graph *cgraph.Graph
}

// BenchmarkModels returns the names of the paper's seven benchmark
// networks (Table 3 order).
func BenchmarkModels() []string { return models.Names() }

// LoadBenchmark builds one of the paper's benchmark networks by name.
func LoadBenchmark(name string) (Model, error) {
	g, err := models.ByName(name)
	if err != nil {
		return Model{}, err
	}
	return Model{graph: g}, nil
}

// Name returns the model's name.
func (m Model) Name() string { return m.graph.Name }

// Weights returns the parameter count (Table 3's "# of weights").
func (m Model) Weights() int64 { return m.graph.TotalWeights() }

// Ops returns 2×MACs per sample (Table 3's "# of ops").
func (m Model) Ops() int64 { return m.graph.TotalOps() }

// Layers returns the number of graph nodes.
func (m Model) Layers() int { return m.graph.Len() }

// WeightLayers returns the names of the MAC-bearing layers (convolutions
// and FC layers) in topological order — the keys DeployModel expects.
func (m Model) WeightLayers() []string {
	var names []string
	for _, n := range m.graph.Nodes() {
		switch n.Op.(type) {
		case cgraph.Conv2D, cgraph.FC:
			names = append(names, n.Name)
		}
	}
	return names
}

// valid reports whether the model was produced by a constructor.
func (m Model) valid() error {
	if m.graph == nil {
		return fmt.Errorf("fpsa: zero Model; use LoadBenchmark or ModelBuilder")
	}
	return nil
}
