// Package fpsa is a full-system-stack simulator of FPSA, the reconfigurable
// ReRAM-based neural-network accelerator of Ji et al. (ASPLOS 2019): a
// spiking crossbar processing-element model, spiking memory blocks,
// configurable logic blocks and an FPGA-style reconfigurable routing
// fabric, together with the software stack that deploys neural networks
// onto them — neural synthesizer, spatial-to-temporal mapper, and
// placement & routing — plus the performance models and baselines (PRIME,
// FP-PRIME) behind every table and figure of the paper's evaluation.
//
// The API is context-first and option-based, with the Deployment as the
// one handle everything derives from. Typical use:
//
//	m, _ := fpsa.LoadBenchmark("VGG16")
//	d, _ := fpsa.Compile(ctx, m, fpsa.WithDuplication(64))
//	fmt.Println(d.Performance())
//
// or train a network, compile it with its weights, and run the derived
// spiking net:
//
//	net, _ := fpsa.TrainMLP(1, []int{16, 24, 4}, ds, 40)
//	d, _ := fpsa.Compile(ctx, net.Model(), fpsa.WithWeightSource(net.WeightSource()))
//	sn, _ := d.NewNet(nil)
//	label, _ := sn.Classify(x, fpsa.ModeSpiking)
//
// or serve it under concurrent load through the batched engine — the
// engine derives from the same deployment, so the chip partition,
// weights and seed flow from the compile:
//
//	eng, _ := d.NewEngine(ctx)
//	defer eng.Close()
//	label, _ = eng.Classify(ctx, x) // safe from any number of goroutines
//	fmt.Println(eng.Stats())
//
// The context is live throughout: cancelling it aborts placement
// annealing and routing at their next checkpoint with ctx.Err(), and an
// uncancelled run is bit-identical to one without a deadline. Failures
// carry a typed taxonomy — ErrModelInvalid, ErrCapacity, ErrUnroutable,
// ErrChipConflict, ErrClosed — matchable with errors.Is.
//
// Placement & routing scale across cores and never repeat work: pass
// WithPlacementSeeds/WithParallelism for a multi-seed annealing
// portfolio and parallel routing, and WithCache (see NewCompileCache)
// to serve repeat deployments from a content-addressed artifact cache.
//
// Models larger than one chip shard across several: WithChips and
// WithChipCapacity partition the compile (per-chip netlists, concurrent
// place & route, inter-chip links charged into the performance model)
// and an engine derived from the sharded deployment serves it as a
// chip-level pipeline with bit-identical outputs — see ShardPolicy,
// Deployment.Shards and docs/SERVING.md.
//
// The pre-redesign struct-based entry points (Config, EngineConfig,
// NewEngine, DeployModel, …) remain as deprecated thin wrappers;
// docs/API.md maps every old call to its new form.
package fpsa

import (
	"fmt"

	"fpsa/internal/cgraph"
	"fpsa/internal/models"
)

// Model is a neural network ready for compilation.
type Model struct {
	graph *cgraph.Graph
}

// BenchmarkModels returns the names of the paper's seven benchmark
// networks (Table 3 order).
func BenchmarkModels() []string { return models.Names() }

// LoadBenchmark builds one of the paper's benchmark networks by name.
func LoadBenchmark(name string) (Model, error) {
	g, err := models.ByName(name)
	if err != nil {
		return Model{}, err
	}
	return Model{graph: g}, nil
}

// Name returns the model's name.
func (m Model) Name() string { return m.graph.Name }

// Weights returns the parameter count (Table 3's "# of weights").
func (m Model) Weights() int64 { return m.graph.TotalWeights() }

// Ops returns 2×MACs per sample (Table 3's "# of ops").
func (m Model) Ops() int64 { return m.graph.TotalOps() }

// Layers returns the number of graph nodes.
func (m Model) Layers() int { return m.graph.Len() }

// WeightLayers returns the names of the MAC-bearing layers (convolutions
// and FC layers) in topological order — the keys DeployModel expects.
func (m Model) WeightLayers() []string {
	var names []string
	for _, n := range m.graph.Nodes() {
		switch n.Op.(type) {
		case cgraph.Conv2D, cgraph.FC:
			names = append(names, n.Name)
		}
	}
	return names
}

// valid reports whether the model was produced by a constructor.
func (m Model) valid() error {
	if m.graph == nil {
		return fmt.Errorf("%w: zero Model; use LoadBenchmark or ModelBuilder", ErrModelInvalid)
	}
	return nil
}
