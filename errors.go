package fpsa

import (
	"errors"
	"fmt"

	"fpsa/internal/fleet"
	"fpsa/internal/serve"
)

// The package's error taxonomy. Every sentinel is matched with errors.Is;
// errors returned by Compile, PlaceAndRoute, Bitstream, Deployment.NewNet,
// Deployment.NewEngine and the Engine methods wrap the sentinel that names
// their failure class, so callers branch on the class without parsing
// message strings or importing internal packages.
var (
	// ErrModelInvalid marks a model the stack cannot compile or deploy: a
	// zero Model, a graph the synthesizer rejects, or a functional deploy
	// without weights.
	ErrModelInvalid = errors.New("fpsa: invalid model")

	// ErrCapacity marks a deployment whose resource request cannot be
	// satisfied: a model whose PE demand exceeds one chip's
	// ChipCapacity, a partition that cannot satisfy the per-chip bound
	// within WithChips, or a duplication degree beyond what the model's
	// reuse can sustain.
	ErrCapacity = errors.New("fpsa: deployment exceeds capacity")

	// ErrUnroutable marks a placement the router cannot complete: some
	// net's source cannot reach a sink on the routing fabric.
	ErrUnroutable = errors.New("fpsa: netlist unroutable")

	// ErrChipConflict marks an engine whose explicit chip override
	// disagrees with the chip partition its Deployment was compiled
	// with (see Deployment.NewEngine and WithEngineChips).
	ErrChipConflict = errors.New("fpsa: engine chip count conflicts with compiled deployment")

	// ErrClosed is returned by Engine methods once Close has begun. It
	// wraps the internal serving sentinel, so errors.Is matches it on
	// every error the engine surfaces after shutdown.
	ErrClosed = fmt.Errorf("fpsa: engine closed: %w", serve.ErrClosed)

	// ErrOverloaded sheds a fleet request whose QoS class is over the
	// model's class-weighted admission limit; back off and retry. It
	// wraps the internal fleet sentinel, so errors.Is matches it on
	// every overload shed the fleet surfaces.
	ErrOverloaded = fmt.Errorf("fpsa: fleet overloaded: %w", fleet.ErrOverloaded)

	// ErrTenantQuota sheds a fleet request whose tenant is at its
	// in-flight quota (see WithTenant); the tenant must finish requests
	// before submitting more.
	ErrTenantQuota = fmt.Errorf("fpsa: tenant quota exceeded: %w", fleet.ErrTenantQuota)

	// ErrInvalidArgument marks a request the API cannot interpret: an
	// unknown exec mode, shard policy, weight representation, or
	// experiment id.
	ErrInvalidArgument = errors.New("fpsa: invalid argument")

	// ErrNotPlaced marks a Bitstream request on a deployment that has
	// not completed PlaceAndRoute; run PlaceAndRoute (or Compile, which
	// runs it) first.
	ErrNotPlaced = errors.New("fpsa: deployment not placed-and-routed")
)

// ErrEngineClosed is the old name of the closed-engine sentinel.
//
// Deprecated: use ErrClosed.
var ErrEngineClosed = ErrClosed
