package fpsa

import (
	"context"
	"fmt"
	"strings"

	"fpsa/internal/synth"
)

// FaultBenchOptions shapes the reliability experiment: the standard MLP
// workload compiled under a sweep of stuck-cell fault rates, each rate
// measured with and without the compiler's spare-row/column remapping,
// Monte-Carlo over several fault seeds.
type FaultBenchOptions struct {
	// Samples caps how many held-out test samples each trial classifies.
	// 0 means the whole test split (300 samples).
	Samples int
	// Rates lists the per-cell stuck-fault probabilities to sweep, each
	// in [0, 1]. nil means 0, 0.002, 0.005, 0.01, 0.02, 0.05. Rate 0 is
	// the zero-rate-equivalence check: it must reproduce the fault-free
	// baseline exactly.
	Rates []float64
	// Trials is the Monte-Carlo width: how many fault seeds each (rate,
	// remap) cell averages over. 0 means 5.
	Trials int
	// Seed fixes the dataset/training seed and anchors the per-trial
	// fault seeds. 0 means 7.
	Seed int64
}

func (o FaultBenchOptions) withDefaults() FaultBenchOptions {
	if o.Samples <= 0 {
		o.Samples = 300
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// FaultBenchRow is one fault rate's Monte-Carlo means across the two
// compilation arms.
type FaultBenchRow struct {
	// Rate is the per-cell stuck-fault probability.
	Rate float64
	// CellsRemap and CellsNoRemap are the mean residual stuck cells the
	// programmed crossbars actually carry — after spare-row/column
	// remapping, and with remapping disabled. Their gap is the fault
	// population the compiler steered around.
	CellsRemap   float64
	CellsNoRemap float64
	// AccRemap and AccNoRemap are mean classification accuracies on the
	// held-out split under each arm.
	AccRemap   float64
	AccNoRemap float64
	// Recovered is AccRemap − AccNoRemap: the accuracy the remapping
	// recovers at this fault rate.
	Recovered float64
}

// FaultBenchResult reports the sweep.
type FaultBenchResult struct {
	Options FaultBenchOptions
	// BaselineAcc is the fault-free deployment's accuracy on the same
	// samples — the ceiling both arms degrade from. The Rate-0 row must
	// match it exactly (the zero-rate-equivalence invariant).
	BaselineAcc float64
	Rows        []FaultBenchRow
}

// String renders the result as a fpsa-bench artifact.
func (r FaultBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault injection (MLP 16-24-4, %d samples, %d trials per rate, mode reference)\n",
		r.Options.Samples, r.Options.Trials)
	fmt.Fprintf(&b, "  baseline accuracy %.4f (ideal devices)\n", r.BaselineAcc)
	fmt.Fprintf(&b, "  %-8s %-12s %-12s %-11s %-11s %s\n",
		"rate", "cells/remap", "cells/none", "acc/remap", "acc/none", "recovered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8.3g %-12.1f %-12.1f %-11.4f %-11.4f %+.4f\n",
			row.Rate, row.CellsRemap, row.CellsNoRemap, row.AccRemap, row.AccNoRemap, row.Recovered)
	}
	b.WriteString("  (same seed ⇒ same faults in every mode and at every worker count, see docs/INVARIANTS.md)\n")
	return b.String()
}

// FaultBench trains and deploys the standard MLP workload under a sweep
// of stuck-cell fault rates and measures classification accuracy with
// the compiler's spare-row/column remapping on and off, Monte-Carlo over
// opts.Trials fault seeds per rate. Execution runs ModeReference, so a
// trial's accuracy is a deterministic function of (training seed, fault
// seed, remap arm) — the sweep isolates fault damage from programming
// noise. ctx bounds the compiles and is checked between trials.
func FaultBench(ctx context.Context, opts FaultBenchOptions) (FaultBenchResult, error) {
	opts = opts.withDefaults()
	res := FaultBenchResult{Options: opts}
	ds := SyntheticDataset(opts.Seed, 900, 16, 4, 0.08)
	train, test := ds.Split(2.0 / 3)
	net, err := TrainMLP(opts.Seed, []int{16, 24, 4}, train, 30)
	if err != nil {
		return res, err
	}
	if opts.Samples < len(test.X) {
		test.X, test.Y = test.X[:opts.Samples], test.Y[:opts.Samples]
	}

	// One trial: compile the model under the given fault scenario and
	// classify the held-out split, returning accuracy and the residual
	// stuck-cell count the programmed crossbars carry.
	trial := func(fm *FaultMap) (acc float64, cells int, err error) {
		compileOpts := []Option{WithWeightSource(net.WeightSource()), WithSeed(opts.Seed)}
		if fm != nil {
			compileOpts = append(compileOpts, WithFaultMap(*fm))
		}
		d, err := Compile(ctx, net.Model(), compileOpts...)
		if err != nil {
			return 0, 0, err
		}
		sn, err := d.NewNet(nil)
		if err != nil {
			return 0, 0, err
		}
		ex, err := synth.NewExecutor(sn.prog, synth.RunOptions{Mode: synth.ModeReference, Faults: sn.faults})
		if err != nil {
			return 0, 0, err
		}
		window := sn.Window()
		correct := 0
		for i, x := range test.X {
			out, err := ex.Run(synth.QuantizeInput(x, window))
			if err != nil {
				return 0, 0, err
			}
			if synth.Argmax(out) == test.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(test.X)), ex.FaultedCells(), nil
	}

	if res.BaselineAcc, _, err = trial(nil); err != nil {
		return res, err
	}
	for _, rate := range opts.Rates {
		row := FaultBenchRow{Rate: rate}
		for t := 0; t < opts.Trials; t++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			seed := opts.Seed + int64(t)*1009 + 1
			accR, cellsR, err := trial(&FaultMap{Rate: rate, Seed: seed})
			if err != nil {
				return res, err
			}
			accN, cellsN, err := trial(&FaultMap{Rate: rate, Seed: seed, NoRemap: true})
			if err != nil {
				return res, err
			}
			row.AccRemap += accR
			row.AccNoRemap += accN
			row.CellsRemap += float64(cellsR)
			row.CellsNoRemap += float64(cellsN)
		}
		n := float64(opts.Trials)
		row.AccRemap /= n
		row.AccNoRemap /= n
		row.CellsRemap /= n
		row.CellsNoRemap /= n
		row.Recovered = row.AccRemap - row.AccNoRemap
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunFaultsExperiment renders the fault-injection artifact. It backs
// fpsa-bench's "faults" experiment.
func RunFaultsExperiment(ctx context.Context) (string, error) {
	r, err := FaultBench(ctx, FaultBenchOptions{})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
