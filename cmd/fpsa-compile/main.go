// Command fpsa-compile runs the software stack on one benchmark model:
// neural synthesis, PE allocation, netlist generation, performance
// modeling, and (optionally, for small deployments) real placement &
// routing — multi-seed, parallel, and optionally served from the
// content-addressed deployment cache.
//
// Usage:
//
//	fpsa-compile -model LeNet -dup 4
//	fpsa-compile -model MLP-500-100 -pnr
//	fpsa-compile -model LeNet -dup 4 -pnr -seeds 4 -jobs 4
//	fpsa-compile -model LeNet -dup 4 -pnr -cache
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fpsa"
)

func main() {
	model := flag.String("model", "LeNet", "benchmark model name")
	dup := flag.Int("dup", 1, "duplication degree")
	pnr := flag.Bool("pnr", false, "run simulated-annealing placement and PathFinder routing")
	seed := flag.Int64("seed", 1, "placement seed")
	seeds := flag.Int("seeds", 1, "annealing portfolio size (independent placement seeds)")
	jobs := flag.Int("jobs", 0, "worker goroutines for placement and routing (0 = all cores)")
	cache := flag.Bool("cache", false, "deploy through a content-addressed cache and show a second, cached deployment (implies -pnr)")
	flag.Parse()
	if *cache {
		*pnr = true
	}

	m, err := fpsa.LoadBenchmark(*model)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s: %d weights, %d ops/sample, %d graph nodes\n",
		m.Name(), m.Weights(), m.Ops(), m.Layers())

	cfg := fpsa.Config{Duplication: *dup, Seed: *seed, PlacementSeeds: *seeds, Parallelism: *jobs}
	if *cache {
		cfg.Cache = fpsa.NewCompileCache(0)
	}
	d, err := fpsa.Compile(m, cfg)
	if err != nil {
		fail(err)
	}
	groups, coreOps := d.CoreOps()
	pes, smbs, clbs := d.Blocks()
	fmt.Printf("synthesized: %d weight groups, %d core-ops/sample\n", groups, coreOps)
	fmt.Printf("netlist: %d PEs, %d SMBs, %d CLBs; chip area %.2f mm2\n", pes, smbs, clbs, d.AreaMM2())

	p, err := d.Performance()
	if err != nil {
		fail(err)
	}
	fmt.Printf("modeled: %s\n", p)

	if *pnr {
		start := time.Now()
		stats, err := d.PlaceAndRoute()
		if err != nil {
			fail(err)
		}
		fmt.Printf("place&route: %s (%.2fs)\n", stats, time.Since(start).Seconds())
		routed, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
		if err != nil {
			fail(err)
		}
		fmt.Printf("with routed hops: %s\n", routed)

		if *cache {
			// Redeploy the same model and config: the cache must serve
			// the artifacts without annealing or routing again.
			d2, err := fpsa.Compile(m, cfg)
			if err != nil {
				fail(err)
			}
			start = time.Now()
			cached, err := d2.PlaceAndRoute()
			if err != nil {
				fail(err)
			}
			hits, misses := cfg.Cache.Counters()
			fmt.Printf("redeploy:    %s (%.4fs, cache %d hit / %d miss)\n",
				cached, time.Since(start).Seconds(), hits, misses)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsa-compile:", err)
	os.Exit(1)
}
