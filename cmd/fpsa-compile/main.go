// Command fpsa-compile runs the software stack on one benchmark model:
// neural synthesis, PE allocation, netlist generation, performance
// modeling, and (optionally, for small deployments) real placement &
// routing — multi-seed, parallel, and optionally served from the
// content-addressed deployment cache. With -chips ≥ 2 the model is
// sharded across that many chips (each placed and routed independently)
// and the inter-chip links are charged into the performance model.
// Everything runs under one signal-bound context, so Ctrl-C aborts a
// long placement & routing run at its next checkpoint.
//
// Usage:
//
//	fpsa-compile -model LeNet -dup 4
//	fpsa-compile -model MLP-500-100 -pnr
//	fpsa-compile -model LeNet -dup 4 -pnr -seeds 4 -jobs 4
//	fpsa-compile -model LeNet -dup 4 -pnr -cache
//	fpsa-compile -model MLP-500-100 -chips 2 -pnr
//	fpsa-compile -model MLP-500-100 -chipcap 8 -chips 4
//	fpsa-compile -model LeNet -autotune energy -pebudget 480
//	fpsa-compile -model LeNet -autotune latency -pebudget 700 -pnr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fpsa"
)

func main() {
	model := flag.String("model", "LeNet", "benchmark model name")
	dup := flag.Int("dup", 1, "duplication degree")
	pnr := flag.Bool("pnr", false, "run simulated-annealing placement and PathFinder routing")
	seed := flag.Int64("seed", 1, "placement seed")
	seeds := flag.Int("seeds", 1, "annealing portfolio size (independent placement seeds)")
	jobs := flag.Int("jobs", 0, "worker goroutines for placement and routing (0 = all cores)")
	cache := flag.Bool("cache", false, "deploy through a content-addressed cache and show a second, cached deployment (implies -pnr)")
	chips := flag.Int("chips", 1, "maximum chips to shard the deployment across (1 = single chip)")
	chipcap := flag.Int("chipcap", 0, "per-chip PE capacity (0 = unbounded; with -chips, shards onto the fewest chips that fit)")
	policyName := flag.String("policy", "auto", "shard partitioning policy: auto, mincut, or balanced")
	autotune := flag.String("autotune", "", "search per-layer duplication and shard cuts for this objective (latency, energy, or throughput) instead of compiling -dup as given")
	pebudget := flag.Int("pebudget", 0, "PE envelope for -autotune (0 = derive from -chipcap x -chips, else the uniform -dup spend)")
	faultrate := flag.Float64("faultrate", 0, "stuck-cell fault rate per crossbar cell in [0,1] (0 = ideal devices); faults are drawn deterministically from -faultseed and remapped around spare rows/columns")
	faultseed := flag.Int64("faultseed", 1, "fault-map seed for -faultrate")
	flag.Parse()
	if *cache {
		*pnr = true
	}
	policy, err := fpsa.ParseShardPolicy(*policyName)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := fpsa.LoadBenchmark(*model)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s: %d weights, %d ops/sample, %d graph nodes\n",
		m.Name(), m.Weights(), m.Ops(), m.Layers())

	opts := []fpsa.Option{
		fpsa.WithDuplication(*dup), fpsa.WithSeed(*seed),
		fpsa.WithPlacementSeeds(*seeds), fpsa.WithParallelism(*jobs),
		fpsa.WithChips(*chips), fpsa.WithChipCapacity(*chipcap),
		fpsa.WithShardPolicy(policy),
	}
	if *faultrate != 0 {
		opts = append(opts, fpsa.WithFaultModel(*faultrate, *faultseed))
		fmt.Printf("fault model: stuck-cell rate %g, seed %d, spare-row/column remapping on\n", *faultrate, *faultseed)
	}
	var artifacts *fpsa.CompileCache
	if *cache {
		artifacts = fpsa.NewCompileCache(0)
		opts = append(opts, fpsa.WithCache(artifacts))
	}
	var d *fpsa.Deployment
	if *autotune != "" {
		objective, err := fpsa.ParseObjective(*autotune)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		tuned, report, err := fpsa.Autotune(ctx, m, objective,
			append(opts, fpsa.WithPEBudget(*pebudget))...)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s  (search %.2fs)\n", report, time.Since(start).Seconds())
		d = tuned
	} else {
		if *pebudget != 0 {
			fmt.Fprintln(os.Stderr, "fpsa-compile: -pebudget only applies with -autotune")
			os.Exit(1)
		}
		compiled, err := fpsa.Compile(ctx, m, opts...)
		if err != nil {
			fail(err)
		}
		d = compiled
	}
	groups, coreOps := d.CoreOps()
	pes, smbs, clbs := d.Blocks()
	fmt.Printf("synthesized: %d weight groups, %d core-ops/sample\n", groups, coreOps)
	fmt.Printf("netlist: %d PEs, %d SMBs, %d CLBs; chip area %.2f mm2\n", pes, smbs, clbs, d.AreaMM2())
	if shards := d.Shards(); shards != nil {
		fmt.Printf("sharded across %d chips (%v policy):\n", d.Chips(), policy)
		for _, sh := range shards {
			fmt.Printf("  %s\n", sh)
		}
	}

	p, err := d.Performance()
	if err != nil {
		fail(err)
	}
	fmt.Printf("modeled: %s\n", p)

	if *pnr {
		start := time.Now()
		stats, err := d.PlaceAndRoute(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("place&route: %s (%.2fs)\n", stats, time.Since(start).Seconds())
		routed, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
		if err != nil {
			fail(err)
		}
		fmt.Printf("with routed hops: %s\n", routed)

		if *cache && *autotune == "" {
			// Redeploy the same model and options: the cache must serve
			// the artifacts without annealing or routing again. (Under
			// -autotune the search already reports its own cache traffic.)
			d2, err := fpsa.Compile(ctx, m, opts...)
			if err != nil {
				fail(err)
			}
			start = time.Now()
			cached, err := d2.PlaceAndRoute(ctx)
			if err != nil {
				fail(err)
			}
			hits, misses := artifacts.Counters()
			fmt.Printf("redeploy:    %s (%.4fs, cache %d hit / %d miss)\n",
				cached, time.Since(start).Seconds(), hits, misses)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsa-compile:", err)
	os.Exit(1)
}
