// Command fpsa-compile runs the software stack on one benchmark model:
// neural synthesis, PE allocation, netlist generation, performance
// modeling, and (optionally, for small deployments) real placement &
// routing.
//
// Usage:
//
//	fpsa-compile -model LeNet -dup 4
//	fpsa-compile -model MLP-500-100 -pnr
package main

import (
	"flag"
	"fmt"
	"os"

	"fpsa"
)

func main() {
	model := flag.String("model", "LeNet", "benchmark model name")
	dup := flag.Int("dup", 1, "duplication degree")
	pnr := flag.Bool("pnr", false, "run simulated-annealing placement and PathFinder routing")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Parse()

	m, err := fpsa.LoadBenchmark(*model)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s: %d weights, %d ops/sample, %d graph nodes\n",
		m.Name(), m.Weights(), m.Ops(), m.Layers())

	d, err := fpsa.Compile(m, fpsa.Config{Duplication: *dup, Seed: *seed})
	if err != nil {
		fail(err)
	}
	groups, coreOps := d.CoreOps()
	pes, smbs, clbs := d.Blocks()
	fmt.Printf("synthesized: %d weight groups, %d core-ops/sample\n", groups, coreOps)
	fmt.Printf("netlist: %d PEs, %d SMBs, %d CLBs; chip area %.2f mm2\n", pes, smbs, clbs, d.AreaMM2())

	p, err := d.Performance()
	if err != nil {
		fail(err)
	}
	fmt.Printf("modeled: %s\n", p)

	if *pnr {
		stats, err := d.PlaceAndRoute()
		if err != nil {
			fail(err)
		}
		fmt.Printf("place&route: %s\n", stats)
		routed, err := d.PerformanceWithHops(int(stats.MeanHops + 0.5))
		if err != nil {
			fail(err)
		}
		fmt.Printf("with routed hops: %s\n", routed)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsa-compile:", err)
	os.Exit(1)
}
