// Command fpsa-bench regenerates the paper's evaluation artifacts: every
// table and figure, rendered as text with paper-vs-measured annotations,
// plus the measured serving artifacts (single-chip micro-batching, the
// multi-chip sharded pipeline, and the sparse-kernel density sweep).
//
// Usage:
//
//	fpsa-bench                         # run everything
//	fpsa-bench -exp figure8            # one artifact
//	fpsa-bench -exp serving -batch 32  # serving throughput at batch 32
//	fpsa-bench -exp sharding           # 1/2/4-chip pipelined serving
//	fpsa-bench -exp sparsity           # dense vs bit-packed sparse kernel
//	fpsa-bench -exp autotune           # per-layer autotuner vs uniform sweep
//	fpsa-bench -exp faults             # stuck-cell fault injection, remap on/off
//	fpsa-bench -exp fleet              # multi-model fleet load test with hot-swaps
//	fpsa-bench -json -out BENCH.json   # machine-readable serving report
//	fpsa-bench -baseline BENCH.json    # rerun and fail on regression
//	fpsa-bench -list                   # show artifact IDs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"fpsa"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	batch := flag.Int("batch", 0, "micro-batch size for the serving, sharding and sparsity experiments (0 = default 16)")
	samples := flag.Int("samples", 0, "sample count for the -json / -baseline serving experiments (0 = default 512)")
	jsonOut := flag.Bool("json", false, "emit the serving, sharding, sparsity, autotune, faults and fleet results as one JSON report (ignores -exp)")
	baseline := flag.String("baseline", "", "rerun the JSON report and exit nonzero if serving throughput regressed against this BENCH_PR*.json snapshot")
	regress := flag.Float64("regress", 0.10, "regression tolerance for -baseline (fraction below baseline that fails)")
	out := flag.String("out", "", "write output to this file instead of stdout")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(fpsa.ExperimentIDs(), "\n"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	id := strings.ToLower(*exp)
	measured := id == "serving" || id == "sharding" || id == "sparsity"
	if *batch != 0 && !measured && !*jsonOut && *baseline == "" {
		fmt.Fprintln(os.Stderr, "fpsa-bench: -batch only applies to -exp serving/sharding/sparsity, -json, or -baseline")
		os.Exit(1)
	}
	var text string
	var err error
	switch {
	case *baseline != "":
		text, err = runBaseline(ctx, *baseline, *batch, *samples, *regress)
	case *jsonOut:
		var rep fpsa.BenchReport
		rep, err = fpsa.RunBenchReport(ctx, *batch, *samples)
		if err == nil {
			var b []byte
			b, err = rep.JSON()
			text = string(b)
		}
	case id == "serving":
		text, err = fpsa.RunServingExperiment(ctx, *batch)
	case id == "sharding":
		text, err = fpsa.RunShardingExperiment(ctx, *batch)
	case id == "sparsity":
		text, err = fpsa.RunSparsityExperiment(ctx, *batch)
	default:
		text, err = fpsa.RunExperiment(ctx, *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(text)
}

// runBaseline reruns the serving report and compares it against the
// committed snapshot, returning a summary and exiting nonzero on any
// regression beyond tol.
func runBaseline(ctx context.Context, path string, batch, samples int, tol float64) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var base fpsa.BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return "", fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	cur, err := fpsa.RunBenchReport(ctx, batch, samples)
	if err != nil {
		return "", err
	}
	regressions, warnings := fpsa.CompareBenchReports(base, cur, tol)
	var b strings.Builder
	fmt.Fprintf(&b, "baseline %s vs fresh run (batch %d, samples %d, tolerance %.0f%%)\n",
		path, batch, samples, 100*tol)
	fmt.Fprintf(&b, "  serving: serial %.1f/%.1f  batched %.1f/%.1f  engine %.1f/%.1f (baseline/current samples/s)\n",
		base.Serving.SerialSPS, cur.Serving.SerialSPS,
		base.Serving.BatchedSPS, cur.Serving.BatchedSPS,
		base.Serving.EngineSPS, cur.Serving.EngineSPS)
	if base.Fleet.Offered > 0 || cur.Fleet.Offered > 0 {
		fmt.Fprintf(&b, "  fleet: %.1f/%.1f req/s  shed %.2f%%/%.2f%%  p999 %.4g/%.4g us (baseline/current)\n",
			base.Fleet.QPS, cur.Fleet.QPS,
			100*base.Fleet.ShedRate, 100*cur.Fleet.ShedRate,
			base.Fleet.P999LatencyUS, cur.Fleet.P999LatencyUS)
	}
	for _, w := range warnings {
		fmt.Fprintf(&b, "  WARNING: %s\n", w)
	}
	if len(regressions) == 0 {
		b.WriteString("  no regressions\n")
		return b.String(), nil
	}
	for _, r := range regressions {
		fmt.Fprintf(&b, "  REGRESSION: %s\n", r)
	}
	fmt.Print(b.String())
	os.Exit(1)
	return "", nil
}
