// Command fpsa-bench regenerates the paper's evaluation artifacts: every
// table and figure, rendered as text with paper-vs-measured annotations.
//
// Usage:
//
//	fpsa-bench                  # run everything
//	fpsa-bench -exp figure8     # one artifact
//	fpsa-bench -list            # show artifact IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpsa"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(fpsa.ExperimentIDs(), "\n"))
		return
	}
	out, err := fpsa.RunExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
