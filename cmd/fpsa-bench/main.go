// Command fpsa-bench regenerates the paper's evaluation artifacts: every
// table and figure, rendered as text with paper-vs-measured annotations,
// plus the measured serving artifacts (single-chip micro-batching and the
// multi-chip sharded pipeline).
//
// Usage:
//
//	fpsa-bench                         # run everything
//	fpsa-bench -exp figure8            # one artifact
//	fpsa-bench -exp serving -batch 32  # serving throughput at batch 32
//	fpsa-bench -exp sharding           # 1/2/4-chip pipelined serving
//	fpsa-bench -json -out BENCH.json   # machine-readable serving report
//	fpsa-bench -list                   # show artifact IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"fpsa"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	batch := flag.Int("batch", 0, "micro-batch size for the serving and sharding experiments (0 = default 16)")
	jsonOut := flag.Bool("json", false, "emit the serving and sharding results as one JSON report (ignores -exp)")
	out := flag.String("out", "", "write output to this file instead of stdout")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(fpsa.ExperimentIDs(), "\n"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	id := strings.ToLower(*exp)
	serving := id == "serving"
	sharding := id == "sharding"
	if *batch != 0 && !serving && !sharding && !*jsonOut {
		fmt.Fprintln(os.Stderr, "fpsa-bench: -batch only applies to -exp serving, -exp sharding, or -json")
		os.Exit(1)
	}
	var text string
	var err error
	switch {
	case *jsonOut:
		var rep fpsa.BenchReport
		rep, err = fpsa.RunBenchReport(ctx, *batch)
		if err == nil {
			var b []byte
			b, err = rep.JSON()
			text = string(b)
		}
	case serving:
		text, err = fpsa.RunServingExperiment(ctx, *batch)
	case sharding:
		text, err = fpsa.RunShardingExperiment(ctx, *batch)
	default:
		text, err = fpsa.RunExperiment(ctx, *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(text)
}
