// Command fpsa-bench regenerates the paper's evaluation artifacts: every
// table and figure, rendered as text with paper-vs-measured annotations,
// plus the measured serving artifacts (single-chip micro-batching and the
// multi-chip sharded pipeline).
//
// Usage:
//
//	fpsa-bench                         # run everything
//	fpsa-bench -exp figure8            # one artifact
//	fpsa-bench -exp serving -batch 32  # serving throughput at batch 32
//	fpsa-bench -exp sharding           # 1/2/4-chip pipelined serving
//	fpsa-bench -list                   # show artifact IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpsa"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	batch := flag.Int("batch", 0, "micro-batch size for the serving and sharding experiments (0 = default 16)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(fpsa.ExperimentIDs(), "\n"))
		return
	}
	id := strings.ToLower(*exp)
	serving := id == "serving"
	sharding := id == "sharding"
	if *batch != 0 && !serving && !sharding {
		fmt.Fprintln(os.Stderr, "fpsa-bench: -batch only applies to -exp serving or -exp sharding")
		os.Exit(1)
	}
	var out string
	var err error
	switch {
	case serving:
		out, err = fpsa.RunServingExperiment(*batch)
	case sharding:
		out, err = fpsa.RunShardingExperiment(*batch)
	default:
		out, err = fpsa.RunExperiment(*exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
