// Command fpsa-bench regenerates the paper's evaluation artifacts: every
// table and figure, rendered as text with paper-vs-measured annotations.
//
// Usage:
//
//	fpsa-bench                        # run everything
//	fpsa-bench -exp figure8           # one artifact
//	fpsa-bench -exp serving -batch 32 # serving throughput at batch 32
//	fpsa-bench -list                  # show artifact IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpsa"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	batch := flag.Int("batch", 0, "micro-batch size for the serving experiment (0 = default 16)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(fpsa.ExperimentIDs(), "\n"))
		return
	}
	serving := strings.ToLower(*exp) == "serving"
	if *batch != 0 && !serving {
		fmt.Fprintln(os.Stderr, "fpsa-bench: -batch only applies to -exp serving")
		os.Exit(1)
	}
	var out string
	var err error
	if serving {
		out, err = fpsa.RunServingExperiment(*batch)
	} else {
		out, err = fpsa.RunExperiment(*exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsa-bench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
