// Command fpsa-sim trains a small network, deploys it onto simulated FPSA
// processing elements, and compares the float model against the three
// hardware execution modes — integer reference, cycle-level spiking, and
// spiking with ReRAM programming variation.
//
// Usage:
//
//	fpsa-sim -samples 40 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fpsa"
)

func main() {
	seed := flag.Int64("seed", 7, "data/train/programming seed")
	samples := flag.Int("samples", 40, "test samples to classify")
	flag.Parse()

	ds := fpsa.SyntheticDataset(*seed, 900, 16, 4, 0.08)
	train, test := ds.Split(2.0 / 3)
	net, err := fpsa.TrainMLP(*seed, []int{16, 24, 4}, train, 40)
	if err != nil {
		fail(err)
	}
	fmt.Printf("trained MLP 16-24-4: float accuracy %.3f\n", net.Accuracy(test))

	// One compile carries the weights and the variation seed; the
	// runnable net derives from the deployment.
	d, err := fpsa.Compile(context.Background(), net.Model(),
		fpsa.WithWeightSource(net.WeightSource()), fpsa.WithSeed(*seed))
	if err != nil {
		fail(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("deployed: %d core-op stages, sampling window %d\n", sn.Stages(), sn.Window())

	modes := []struct {
		name string
		mode fpsa.ExecMode
	}{
		{"reference", fpsa.ModeReference},
		{"spiking", fpsa.ModeSpiking},
		{"spiking+variation", fpsa.ModeSpikingNoisy},
	}
	n := *samples
	if n > len(test.X) {
		n = len(test.X)
	}
	for _, m := range modes {
		agree, correct := 0, 0
		for i := 0; i < n; i++ {
			label, err := sn.Classify(test.X[i], m.mode)
			if err != nil {
				fail(err)
			}
			if label == net.Predict(test.X[i]) {
				agree++
			}
			if label == test.Y[i] {
				correct++
			}
		}
		fmt.Printf("%-18s accuracy %.3f, agreement with float model %.3f\n",
			m.name, float64(correct)/float64(n), float64(agree)/float64(n))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsa-sim:", err)
	os.Exit(1)
}
