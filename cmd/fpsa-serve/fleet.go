package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"fpsa"
)

// fleetConfig is the -fleet JSON file: the chip pool, the tenant table,
// and one entry per served model. Zero fields fall back to the fleet
// library's defaults.
type fleetConfig struct {
	// Chips is the simulated chip pool shared by every model (0 = 64).
	Chips int `json:"chips"`
	// Tenants declares the known tenants; requests from any other tenant
	// run at batch class with no quota.
	Tenants []fleetTenantConfig `json:"tenants"`
	// Models is the fleet's initial model set.
	Models []fleetModelConfig `json:"models"`
}

type fleetTenantConfig struct {
	Name string `json:"name"`
	// Class is "gold", "silver" or "batch" (empty = batch).
	Class string `json:"class"`
	// Quota caps the tenant's in-flight requests (0 = unlimited).
	Quota int `json:"quota"`
}

type fleetModelConfig struct {
	Name string `json:"name"`
	// Seed drives the synthetic dataset and training; Layers is the MLP
	// shape (first entry = input dim, last = classes); Epochs the
	// training length (0 = 40).
	Seed   int64 `json:"seed"`
	Layers []int `json:"layers"`
	Epochs int   `json:"epochs"`
	// Replicas / MinReplicas / MaxReplicas bound the autoscaled engine
	// pool; QueueDepth is the per-replica queue; Mode is the exec mode
	// (empty = spiking).
	Replicas    int    `json:"replicas"`
	MinReplicas int    `json:"min_replicas"`
	MaxReplicas int    `json:"max_replicas"`
	QueueDepth  int    `json:"queue_depth"`
	Mode        string `json:"mode"`
}

// fleetModel is one served model's swap state: everything needed to
// retrain and recompile the same structure on demand.
type fleetModel struct {
	layers []int
	epochs int
	train  fpsa.Dataset
	mode   fpsa.ExecMode
}

// runFleet serves a multi-model fleet described by the -fleet config
// file: per-model autoscaled replica pools, tenant-aware admission, a
// /fleetz stats endpoint, and a /v1/swap endpoint that retrains and
// hot-swaps a model with zero downtime. On SIGINT/SIGTERM it stops
// admitting, drains in-flight work within the drain deadline, and
// returns nil so the process exits 0.
func runFleet(ctx context.Context, addr, cfgPath string, drain time.Duration) error {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg fleetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parsing fleet config %s: %w", cfgPath, err)
	}
	if len(cfg.Models) == 0 {
		return fmt.Errorf("fleet config %s declares no models", cfgPath)
	}

	opts := []fpsa.FleetOption{fpsa.WithFleetCache(fpsa.NewCompileCache(0))}
	if cfg.Chips > 0 {
		opts = append(opts, fpsa.WithFleetChips(cfg.Chips))
	}
	for _, t := range cfg.Tenants {
		class, err := fpsa.ParseQoSClass(t.Class)
		if err != nil {
			return err
		}
		opts = append(opts, fpsa.WithTenant(t.Name, class, t.Quota))
	}
	f, err := fpsa.NewFleet(opts...)
	if err != nil {
		return err
	}
	defer f.Close()

	// models guards the swap state; swaps retrain with a caller-supplied
	// seed and recompile through the fleet's cache.
	var mu sync.Mutex
	models := make(map[string]*fleetModel, len(cfg.Models))
	for _, mc := range cfg.Models {
		if len(mc.Layers) < 2 {
			return fmt.Errorf("model %q: layers must name at least input and output dims", mc.Name)
		}
		mode := fpsa.ModeSpiking
		if mc.Mode != "" {
			if mode, err = parseMode(mc.Mode); err != nil {
				return fmt.Errorf("model %q: %w", mc.Name, err)
			}
		}
		if mc.Epochs <= 0 {
			mc.Epochs = 40
		}
		in, classes := mc.Layers[0], mc.Layers[len(mc.Layers)-1]
		train, test := fpsa.SyntheticDataset(mc.Seed, 900, in, classes, 0.08).Split(2.0 / 3)
		net, err := fpsa.TrainMLP(mc.Seed, mc.Layers, train, mc.Epochs)
		if err != nil {
			return fmt.Errorf("model %q: %w", mc.Name, err)
		}
		log.Printf("model %q: trained MLP %v, float accuracy %.3f", mc.Name, mc.Layers, net.Accuracy(test))
		d, err := fpsa.Compile(ctx, net.Model(),
			fpsa.WithWeightSource(net.WeightSource()), fpsa.WithSeed(mc.Seed), fpsa.WithCache(f.Cache()))
		if err != nil {
			return fmt.Errorf("model %q: %w", mc.Name, err)
		}
		var modelOpts []fpsa.FleetModelOption
		if mc.Replicas > 0 {
			modelOpts = append(modelOpts, fpsa.WithModelReplicas(mc.Replicas))
		}
		if mc.MinReplicas > 0 || mc.MaxReplicas > 0 {
			modelOpts = append(modelOpts, fpsa.WithModelReplicaRange(mc.MinReplicas, mc.MaxReplicas))
		}
		if mc.QueueDepth > 0 {
			modelOpts = append(modelOpts, fpsa.WithModelQueueDepth(mc.QueueDepth))
		}
		modelOpts = append(modelOpts, fpsa.WithModelEngine(fpsa.WithMode(mode)))
		if err := f.AddModel(ctx, mc.Name, d, modelOpts...); err != nil {
			return fmt.Errorf("model %q: %w", mc.Name, err)
		}
		models[mc.Name] = &fleetModel{layers: mc.Layers, epochs: mc.Epochs, train: train, mode: mode}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /fleetz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.Stats())
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model    string    `json:"model"`
			Tenant   string    `json:"tenant"`
			Features []float64 `json:"features"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Features == nil {
			http.Error(w, `want "features"`, http.StatusBadRequest)
			return
		}
		class, version, err := f.Classify(r.Context(), req.Model, req.Tenant, req.Features)
		if err != nil {
			http.Error(w, err.Error(), fleetStatus(err))
			return
		}
		writeJSON(w, map[string]any{"class": class, "version": version})
	})
	mux.HandleFunc("POST /v1/swap", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model string `json:"model"`
			Seed  int64  `json:"seed"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		m := models[req.Model]
		mu.Unlock()
		if m == nil {
			http.Error(w, fmt.Sprintf("unknown model %q", req.Model), http.StatusNotFound)
			return
		}
		net, err := fpsa.TrainMLP(req.Seed, m.layers, m.train, m.epochs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, ev, err := f.CompileAndSwap(r.Context(), req.Model, net.Model(),
			fpsa.WithWeightSource(net.WeightSource()), fpsa.WithSeed(req.Seed))
		if err != nil {
			http.Error(w, err.Error(), fleetStatus(err))
			return
		}
		log.Printf("swapped %q v%d -> v%d in %.1f ms", ev.Model, ev.FromVersion, ev.ToVersion, ev.DurationMS)
		writeJSON(w, ev)
	})

	srv := &http.Server{Addr: addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Stop admitting first, then drain in-flight work to the deadline.
		log.Printf("shutting down fleet (drain deadline %v)", drain)
		sctx, cancel := context.WithTimeout(ctx, drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Printf("fleet close: %v", err)
		}
	}()
	log.Printf("fleet serving %d models on %s", len(models), addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	<-done
	return nil
}

// fleetStatus maps fleet errors onto HTTP: sheds are 429 (retryable),
// draining is 503, unknown models and bad input are the client's fault.
func fleetStatus(err error) int {
	switch {
	case errors.Is(err, fpsa.ErrOverloaded), errors.Is(err, fpsa.ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, fpsa.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, fpsa.ErrCapacity):
		return http.StatusInsufficientStorage
	default:
		return http.StatusBadRequest
	}
}
