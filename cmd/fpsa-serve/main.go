// Command fpsa-serve trains a small network, deploys it onto simulated
// FPSA processing elements, and serves classifications over HTTP through
// the concurrent batched inference engine.
//
// Usage:
//
//	fpsa-serve -addr :8080 -workers 4 -batch 8 -mode spiking
//	fpsa-serve -chips 2                # sharded: pipelined across 2 chips
//	fpsa-serve -fleet fleet.json       # multi-model, multi-tenant fleet
//
// Endpoints:
//
//	GET  /healthz     liveness probe
//	GET  /v1/model    deployed-model metadata
//	GET  /v1/stats    engine serving statistics (JSON)
//	POST /v1/classify {"features":[...]} or {"batch":[[...],...]}
//
// In fleet mode (-fleet) the server instead exposes:
//
//	GET  /healthz     liveness probe
//	GET  /fleetz      fleet statistics: per-model QPS, queue depth,
//	                  replica count, shed counts, swap history (JSON)
//	POST /v1/classify {"model":"...","tenant":"...","features":[...]}
//	POST /v1/swap     {"model":"...","seed":N} — retrain and hot-swap
//	                  the model with zero downtime
//
// On SIGINT/SIGTERM the server stops admitting requests, drains
// in-flight work within the -drain deadline, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpsa"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 7, "data/train/programming seed")
	workers := flag.Int("workers", 4, "engine worker replicas")
	batch := flag.Int("batch", 8, "micro-batch flush size")
	flush := flag.Duration("flush", 500*time.Microsecond, "micro-batch flush deadline")
	queue := flag.Int("queue", 1024, "request queue depth")
	modeName := flag.String("mode", "spiking", "exec mode: reference, spiking, or noisy")
	epochs := flag.Int("epochs", 40, "training epochs")
	chips := flag.Int("chips", 1, "serve as a sharded deployment pipelined across this many chips (1 = single chip)")
	spikePathName := flag.String("spikepath", "auto", "spiking kernel: auto, dense, or sparse (bit-identical; perf only)")
	sparseThresh := flag.Float64("sparsethresh", 0, "auto-path spike-density cutoff in (0,1] for the sparse kernel (0 = built-in default)")
	fleetCfg := flag.String("fleet", "", "serve a multi-model fleet from this JSON config file instead of a single engine")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	if *fleetCfg != "" {
		if err := runFleet(context.Background(), *addr, *fleetCfg, *drain); err != nil {
			fail(err)
		}
		return
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		fail(err)
	}
	spikePath, err := fpsa.ParseSpikePath(*spikePathName)
	if err != nil {
		fail(err)
	}

	ctx := context.Background()
	ds := fpsa.SyntheticDataset(*seed, 900, 16, 4, 0.08)
	train, test := ds.Split(2.0 / 3)
	net, err := fpsa.TrainMLP(*seed, []int{16, 24, 4}, train, *epochs)
	if err != nil {
		fail(err)
	}
	log.Printf("trained MLP 16-24-4: float accuracy %.3f", net.Accuracy(test))

	// One compile is the single source of truth for the whole serving
	// stack: the chip partition, seed and artifact cache declared here
	// flow into every net and engine derived from the deployment.
	d, err := fpsa.Compile(ctx, net.Model(),
		fpsa.WithWeightSource(net.WeightSource()),
		fpsa.WithSeed(*seed),
		fpsa.WithChips(*chips),
		fpsa.WithCache(fpsa.NewCompileCache(0)),
	)
	if err != nil {
		fail(err)
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		fail(err)
	}
	log.Printf("deployed: %d core-op stages, sampling window %d, %d chips",
		sn.Stages(), sn.Window(), d.Chips())

	eng, err := d.NewEngine(ctx,
		fpsa.WithWorkers(*workers),
		fpsa.WithMaxBatch(*batch),
		fpsa.WithFlushInterval(*flush),
		fpsa.WithQueueDepth(*queue),
		fpsa.WithMode(mode),
		fpsa.WithSpikePath(spikePath),
		fpsa.WithSparseThreshold(*sparseThresh),
	)
	if err != nil {
		fail(err)
	}
	if eng.Chips() > 1 {
		log.Printf("sharded deployment: pipelined across %d chips", eng.Chips())
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/model", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"model":   "mlp-16-24-4",
			"classes": 4,
			"inputs":  16,
			"window":  sn.Window(),
			"stages":  sn.Stages(),
			"mode":    *modeName,
			"chips":   eng.Chips(),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Features []float64   `json:"features"`
			Batch    [][]float64 `json:"batch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch {
		case req.Batch != nil:
			labels, err := eng.ClassifyBatch(r.Context(), req.Batch)
			if err != nil {
				http.Error(w, err.Error(), classifyStatus(err))
				return
			}
			writeJSON(w, map[string]any{"classes": labels})
		case req.Features != nil:
			label, err := eng.Classify(r.Context(), req.Features)
			if err != nil {
				http.Error(w, err.Error(), classifyStatus(err))
				return
			}
			writeJSON(w, map[string]any{"class": label})
		default:
			http.Error(w, `want "features" or "batch"`, http.StatusBadRequest)
		}
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: %s", eng.Stats())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := eng.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()
	log.Printf("serving on %s (%d workers, batch %d, flush %v)", *addr, *workers, *batch, *flush)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	<-done
}

// classifyStatus maps classification errors: a draining engine is the
// server's fault, everything else (wrong length, bad values) the
// client's.
func classifyStatus(err error) int {
	if errors.Is(err, fpsa.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func parseMode(name string) (fpsa.ExecMode, error) {
	switch name {
	case "reference":
		return fpsa.ModeReference, nil
	case "spiking":
		return fpsa.ModeSpiking, nil
	case "noisy":
		return fpsa.ModeSpikingNoisy, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want reference, spiking, or noisy)", name)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsa-serve:", err)
	os.Exit(1)
}
