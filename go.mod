module fpsa

go 1.24
