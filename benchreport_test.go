package fpsa

import (
	"strings"
	"testing"
)

// compareFixture builds a baseline report with every throughput metric
// the comparator looks at populated.
func compareFixture() BenchReport {
	return BenchReport{
		Serving: ServingBenchResult{SerialSPS: 1000, BatchedSPS: 2000, EngineSPS: 1800},
		Sharding: ShardingBenchResult{Rows: []ShardingBenchRow{
			{RealChips: 1, ThroughputSPS: 1500},
			{RealChips: 2, ThroughputSPS: 2600},
		}},
		Sparsity: SparsityBenchResult{Rows: []SparsityBenchRow{
			{TargetDensity: 0.05, SparseSPS: 5000},
			{TargetDensity: 1.0, SparseSPS: 1200},
		}},
		Autotune: AutotuneBenchResult{Rows: []AutotuneBenchRow{
			{Objective: "min-energy", Budget: 480, ImprovementPct: 42.0},
			{Objective: "min-latency", Budget: 700, ImprovementPct: 28.0},
		}},
		Faults: FaultBenchResult{BaselineAcc: 0.96, Rows: []FaultBenchRow{
			{Rate: 0.01, AccRemap: 0.95, AccNoRemap: 0.80},
			{Rate: 0.05, AccRemap: 0.90, AccNoRemap: 0.60},
		}},
		Fleet: FleetBenchResult{Offered: 200000, Completed: 190000, Shed: 10000, QPS: 30000},
	}
}

// TestCompareBenchReportsClean: a fresh run at or above baseline — and
// within tolerance below it — produces no regressions.
func TestCompareBenchReportsClean(t *testing.T) {
	base := compareFixture()
	cur := compareFixture()
	if regs, warns := CompareBenchReports(base, cur, 0.10); len(regs) != 0 || len(warns) != 0 {
		t.Fatalf("identical reports regressed: %v (warnings %v)", regs, warns)
	}
	// 5% below baseline is inside a 10% tolerance.
	cur.Serving.EngineSPS = base.Serving.EngineSPS * 0.95
	cur.Sparsity.Rows[0].SparseSPS = base.Sparsity.Rows[0].SparseSPS * 0.95
	cur.Autotune.Rows[0].ImprovementPct = base.Autotune.Rows[0].ImprovementPct * 0.95
	cur.Faults.Rows[1].AccRemap = base.Faults.Rows[1].AccRemap * 0.95
	if regs, _ := CompareBenchReports(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("within-tolerance drift regressed: %v", regs)
	}
}

// TestCompareBenchReportsFlagsRegressions: every metric family — serving,
// sharding rows matched by chip count, sparsity rows matched by target
// density — fails when it drops beyond tolerance, with a message naming
// the metric.
func TestCompareBenchReportsFlagsRegressions(t *testing.T) {
	base := compareFixture()
	cur := compareFixture()
	cur.Serving.SerialSPS = 500             // -50%
	cur.Sharding.Rows[1].ThroughputSPS = 1  // 2-chip row collapses
	cur.Sparsity.Rows[0].SparseSPS = 100    // d=0.05 row collapses
	cur.Autotune.Rows[0].ImprovementPct = 2 // tuned gain collapses
	cur.Faults.Rows[1].AccRemap = 0.5       // remap stops recovering accuracy
	cur.Fleet.QPS = 100                     // fleet throughput collapses
	regs, warns := CompareBenchReports(base, cur, 0.10)
	if len(warns) != 0 {
		t.Fatalf("complete baseline warned: %v", warns)
	}
	if len(regs) != 6 {
		t.Fatalf("got %d regressions, want 6: %v", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"serving serial", "sharding 2-chip", "sparsity d=0.05", "autotune min-energy/480", "faults rate=0.05 remapped", "fleet qps"} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}
}

// TestCompareBenchReportsSkipsAbsentBaselines: zero or missing baseline
// metrics — an older snapshot predating a newer experiment — never
// regress, so reports stay comparable across schema growth.
func TestCompareBenchReportsSkipsAbsentBaselines(t *testing.T) {
	base := compareFixture()
	base.Sparsity = SparsityBenchResult{} // pre-sparsity snapshot
	base.Serving.EngineSPS = 0            // absent metric
	cur := compareFixture()
	cur.Serving.EngineSPS = 1 // would fail against any real baseline
	cur.Sparsity.Rows[0].SparseSPS = 1
	regs, warns := CompareBenchReports(base, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("absent baseline metrics regressed: %v", regs)
	}
	// A whole section the baseline predates degrades to a warning — the
	// graceful path for comparing an old snapshot against a newer report.
	joined := strings.Join(warns, "\n")
	if !strings.Contains(joined, "baseline has no sparsity section") {
		t.Errorf("missing sparsity-section warning: %v", warns)
	}
	// Rows present in the baseline but missing from the fresh run are
	// simply unmatched — the comparator only checks matched rows.
	cur2 := compareFixture()
	cur2.Sharding.Rows = cur2.Sharding.Rows[:1]
	if regs, warns := CompareBenchReports(compareFixture(), cur2, 0.10); len(regs) != 0 || len(warns) != 0 {
		t.Fatalf("unmatched rows regressed: %v (warnings %v)", regs, warns)
	}
}

// TestCompareBenchReportsFaultsSectionGrowth pins the CI-gate scenario
// for this schema addition: a baseline snapshot that predates the fault
// sweep warns — never fails — against a fresh report that carries one,
// and once both sides have the section, only matched-rate remapped
// accuracies are compared.
func TestCompareBenchReportsFaultsSectionGrowth(t *testing.T) {
	base := compareFixture()
	base.Faults = FaultBenchResult{} // pre-faults snapshot (e.g. BENCH_PR8)
	cur := compareFixture()
	cur.Faults.Rows[0].AccRemap = 0.01 // would fail against a real baseline
	regs, warns := CompareBenchReports(base, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("pre-faults baseline regressed: %v", regs)
	}
	if joined := strings.Join(warns, "\n"); !strings.Contains(joined, "baseline has no faults section") {
		t.Fatalf("missing faults-section warning: %v", warns)
	}
	// With both sections present, an unmatched rate in the fresh run is
	// ignored and a matched-rate drop in the no-remap arm is informational
	// (only the remapped accuracy gates).
	cur2 := compareFixture()
	cur2.Faults.Rows[0].Rate = 0.02 // rate not in baseline
	cur2.Faults.Rows[1].AccNoRemap = 0.1
	if regs, warns := CompareBenchReports(compareFixture(), cur2, 0.10); len(regs) != 0 || len(warns) != 0 {
		t.Fatalf("faults section over-gated: %v (warnings %v)", regs, warns)
	}
}

// TestCompareBenchReportsFleetSectionGrowth pins the CI-gate scenario
// for this schema addition: a BENCH_PR9-era baseline that predates the
// fleet load test warns — never fails — against a fresh report carrying
// one, and once both sides have the section only fleet QPS gates; shed
// rate and tail latency are informational.
func TestCompareBenchReportsFleetSectionGrowth(t *testing.T) {
	base := compareFixture()
	base.Fleet = FleetBenchResult{} // pre-fleet snapshot (e.g. BENCH_PR9)
	cur := compareFixture()
	cur.Fleet.QPS = 1 // would fail against a real baseline
	regs, warns := CompareBenchReports(base, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("pre-fleet baseline regressed: %v", regs)
	}
	if joined := strings.Join(warns, "\n"); !strings.Contains(joined, "baseline has no fleet section") {
		t.Fatalf("missing fleet-section warning: %v", warns)
	}
	cur2 := compareFixture()
	cur2.Fleet.ShedRate = 0.9 // shed rate shifts with load; never gates
	cur2.Fleet.P999LatencyUS = 1e6
	if regs, warns := CompareBenchReports(compareFixture(), cur2, 0.10); len(regs) != 0 || len(warns) != 0 {
		t.Fatalf("fleet section over-gated: %v (warnings %v)", regs, warns)
	}
}
