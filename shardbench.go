package fpsa

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpsa/internal/shard"
	"fpsa/internal/synth"
)

// ShardingBenchOptions shapes the multi-chip serving experiment: the same
// deployed MLP served at several chip counts, single-chip streaming
// versus the pipelined multi-chip executor.
type ShardingBenchOptions struct {
	// Batch is the micro-batch size every configuration streams. 0
	// means 16.
	Batch int
	// Samples is how many classifications each configuration performs.
	// 0 means 512.
	Samples int
	// ChipCounts lists the chip counts to sweep. nil means 1, 2, 4.
	ChipCounts []int
	// Mode selects the execution semantics. The zero value is
	// ModeReference; the rendered fpsa-bench artifact uses ModeSpiking,
	// the serving default.
	Mode ExecMode
	// Seed fixes the dataset/training seed. 0 means 7.
	Seed int64
}

func (o ShardingBenchOptions) withDefaults() ShardingBenchOptions {
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Samples <= 0 {
		o.Samples = 512
	}
	if len(o.ChipCounts) == 0 {
		o.ChipCounts = []int{1, 2, 4}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// ShardingBenchRow is one chip count's measured serving numbers.
type ShardingBenchRow struct {
	// Chips is the requested chip count; RealChips what the partitioner
	// realized (legal cuts can clamp it).
	Chips     int
	RealChips int
	// StageSplit is the number of program stages per chip.
	StageSplit []int
	// CutSignals is the signal traffic over each inter-chip link.
	CutSignals []int
	// ThroughputSPS is end-to-end samples/s streaming micro-batches
	// through the configuration; Speedup is relative to the sweep's
	// single-chip row (0 when the sweep has no 1-chip configuration to
	// compare against).
	ThroughputSPS float64
	Speedup       float64
	// BatchLatencyUS is the mean wall-clock of one micro-batch through
	// the whole pipeline under load (queueing included).
	BatchLatencyUS float64
}

// ShardingBenchResult reports the sweep.
type ShardingBenchResult struct {
	Options ShardingBenchOptions
	Stages  int
	// GoMaxProcs and NumCPU record the host parallelism the sweep ran
	// under. The pipeline overlaps micro-batches chip by chip, one
	// goroutine per chip, so a host with GOMAXPROCS < chips time-slices
	// the stages instead of overlapping them and the multi-chip rows
	// measure ~1.0x — a host artifact, not a pipeline regression.
	GoMaxProcs int
	NumCPU     int
	Rows       []ShardingBenchRow
}

// String renders the result as a fpsa-bench artifact.
func (r ShardingBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded serving (MLP 16-48-48-48-4, %d stages, %d samples, mode %v, batch %d)\n",
		r.Stages, r.Options.Samples, r.Options.Mode, r.Options.Batch)
	fmt.Fprintf(&b, "  %-6s %-8s %-14s %-14s %-10s %s\n",
		"chips", "stages", "samples/s", "batch lat us", "speedup", "link signals")
	for _, row := range r.Rows {
		stages := make([]string, len(row.StageSplit))
		for i, s := range row.StageSplit {
			stages[i] = fmt.Sprint(s)
		}
		cuts := "-"
		if len(row.CutSignals) > 0 {
			parts := make([]string, len(row.CutSignals))
			for i, c := range row.CutSignals {
				parts[i] = fmt.Sprint(c)
			}
			cuts = strings.Join(parts, ",")
		}
		speedup := "-"
		if row.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
		}
		fmt.Fprintf(&b, "  %-6d %-8s %-14.1f %-14.1f %-10s %s\n",
			row.RealChips, strings.Join(stages, "+"), row.ThroughputSPS,
			row.BatchLatencyUS, speedup, cuts)
	}
	maxChips := 0
	for _, row := range r.Rows {
		if row.RealChips > maxChips {
			maxChips = row.RealChips
		}
	}
	if r.GoMaxProcs > 0 && r.GoMaxProcs < maxChips {
		fmt.Fprintf(&b, "  (GOMAXPROCS=%d, NumCPU=%d: fewer cores than chips, so the per-chip goroutines"+
			" time-slice instead of overlapping — expect ~1.0x multi-chip speedup on this host)\n",
			r.GoMaxProcs, r.NumCPU)
	} else {
		b.WriteString("  (pipeline speedup needs GOMAXPROCS ≥ chips: each simulated chip runs on its own goroutine)\n")
	}
	return b.String()
}

// ShardingBench trains the benchmark MLP (16-48-48-48-4, four executable
// stages), deploys it once, and serves the same sample stream at every
// requested chip count: chip count 1 streams micro-batches through a
// single executor — the classic whole-model deployment — and counts ≥ 2
// cut the stage list across pipelined chips (balanced partition) with
// concurrent feeders keeping every chip busy. Outputs are bit-identical
// across rows (property-tested in internal/synth); what changes is where
// the wall-clock goes, which is the experiment. ctx bounds the compile.
func ShardingBench(ctx context.Context, opts ShardingBenchOptions) (ShardingBenchResult, error) {
	opts = opts.withDefaults()
	res := ShardingBenchResult{Options: opts, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	ds := SyntheticDataset(opts.Seed, 900, 16, 4, 0.08)
	train, _ := ds.Split(2.0 / 3)
	net, err := TrainMLP(opts.Seed, []int{16, 48, 48, 48, 4}, train, 20)
	if err != nil {
		return res, err
	}
	d, err := Compile(ctx, net.Model(), WithWeightSource(net.WeightSource()))
	if err != nil {
		return res, err
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		return res, err
	}
	res.Stages = sn.Stages()
	mode, err := opts.Mode.synthMode()
	if err != nil {
		return res, err
	}
	window := sn.Window()
	batches := make([][][]int, (opts.Samples+opts.Batch-1)/opts.Batch)
	idx := 0
	for i := range batches {
		n := opts.Batch
		if rem := opts.Samples - idx; n > rem {
			n = rem
		}
		batch := make([][]int, n)
		for j := range batch {
			batch[j] = synth.QuantizeInput(train.X[(idx+j)%len(train.X)], window)
		}
		batches[i] = batch
		idx += n
	}

	for _, chips := range opts.ChipCounts {
		row := ShardingBenchRow{Chips: chips}
		if chips <= 1 {
			ex, err := synth.NewExecutor(sn.prog, synth.RunOptions{Mode: mode})
			if err != nil {
				return res, err
			}
			row.RealChips = 1
			row.StageSplit = []int{res.Stages}
			var latNS int64
			start := time.Now()
			for _, batch := range batches {
				t0 := time.Now()
				if _, err := ex.RunBatch(batch); err != nil {
					return res, err
				}
				latNS += time.Since(t0).Nanoseconds()
			}
			row.ThroughputSPS = rate(opts.Samples, time.Since(start))
			row.BatchLatencyUS = float64(latNS) / float64(len(batches)) / 1e3
		} else {
			plan, err := sn.prog.PartitionStages(chips, shard.PolicyBalanced)
			if err != nil {
				return res, err
			}
			pe, err := synth.NewPipelineExecutor(sn.prog, plan, synth.RunOptions{Mode: mode})
			if err != nil {
				return res, err
			}
			row.RealChips = pe.Chips()
			for k := 0; k < plan.Chips(); k++ {
				row.StageSplit = append(row.StageSplit, plan.Bounds[k+1]-plan.Bounds[k])
			}
			row.CutSignals = append([]int(nil), plan.CutTraffic...)
			feeders := pe.Chips() + 1
			var next atomic.Int64
			var latNS atomic.Int64
			var wg sync.WaitGroup
			errs := make([]error, feeders)
			start := time.Now()
			for f := 0; f < feeders; f++ {
				wg.Add(1)
				go func(f int) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(batches) {
							return
						}
						t0 := time.Now()
						if _, err := pe.RunBatch(batches[i]); err != nil {
							errs[f] = err
							return
						}
						latNS.Add(time.Since(t0).Nanoseconds())
					}
				}(f)
			}
			wg.Wait()
			row.ThroughputSPS = rate(opts.Samples, time.Since(start))
			pe.Close()
			for _, err := range errs {
				if err != nil {
					return res, err
				}
			}
			row.BatchLatencyUS = float64(latNS.Load()) / float64(len(batches)) / 1e3
		}
		res.Rows = append(res.Rows, row)
	}
	// Speedups are relative to the sweep's single-chip measurement; a
	// sweep without one reports no speedup rather than a wrong baseline.
	var baseline float64
	for _, row := range res.Rows {
		if row.RealChips == 1 {
			baseline = row.ThroughputSPS
			break
		}
	}
	if baseline > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = res.Rows[i].ThroughputSPS / baseline
		}
	}
	return res, nil
}

// RunShardingExperiment renders the multi-chip serving artifact; batch
// ≤ 0 uses the default micro-batch size. It backs fpsa-bench's
// "sharding" experiment and its -batch flag.
func RunShardingExperiment(ctx context.Context, batch int) (string, error) {
	r, err := ShardingBench(ctx, ShardingBenchOptions{Batch: batch, Mode: ModeSpiking})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
