package fpsa

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fpsa/internal/synth"
)

// ServingBenchOptions shapes the serving-throughput experiment: the MLP
// serving workload evaluated three ways — per-item executor runs, whole
// micro-batches through the batched kernel, and the concurrent engine.
type ServingBenchOptions struct {
	// Batch is the micro-batch size for the batched paths. 0 means 16.
	Batch int
	// Workers sizes the engine's worker pool. 0 means 4.
	Workers int
	// Samples is how many classifications each path performs. 0 means
	// 512.
	Samples int
	// Mode selects the execution semantics. The zero value is
	// ModeReference; the rendered fpsa-bench artifact uses ModeSpiking,
	// the serving default.
	Mode ExecMode
	// Seed fixes the dataset/training seed. 0 means 7.
	Seed int64
}

func (o ServingBenchOptions) withDefaults() ServingBenchOptions {
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Samples <= 0 {
		o.Samples = 512
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// ServingBenchResult reports the measured serving throughput of the
// three execution paths over the same deployed network and sample set.
type ServingBenchResult struct {
	Options ServingBenchOptions
	// SerialSPS is samples/s of a single executor looping Run per item.
	SerialSPS float64
	// BatchedSPS is samples/s of the same executor consuming the sample
	// set in RunBatch micro-batches of Options.Batch.
	BatchedSPS float64
	// EngineSPS is samples/s of the concurrent engine (Options.Workers
	// workers, MaxBatch = Options.Batch) under saturating batch load.
	EngineSPS float64
	// BatchSpeedup is BatchedSPS / SerialSPS: the kernel-level win of
	// batched execution on one replica, independent of concurrency.
	BatchSpeedup float64
	// EngineStats snapshots the engine run's serving counters.
	EngineStats EngineStats
}

// String renders the result as a fpsa-bench artifact.
func (r ServingBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving throughput (MLP 16-24-4, %d samples, mode %v, batch %d, %d workers)\n",
		r.Options.Samples, r.Options.Mode, r.Options.Batch, r.Options.Workers)
	fmt.Fprintf(&b, "  serial  (Run per item):        %10.1f samples/s\n", r.SerialSPS)
	fmt.Fprintf(&b, "  batched (RunBatch, 1 replica): %10.1f samples/s   %.2fx serial\n", r.BatchedSPS, r.BatchSpeedup)
	engineSpeedup := 0.0
	if r.SerialSPS > 0 {
		engineSpeedup = r.EngineSPS / r.SerialSPS
	}
	fmt.Fprintf(&b, "  engine  (%d workers):           %10.1f samples/s   %.2fx serial\n", r.Options.Workers, r.EngineSPS, engineSpeedup)
	fmt.Fprintf(&b, "  engine stats: %s\n", r.EngineStats)
	return b.String()
}

// ServingBench trains and deploys the standard MLP serving workload and
// measures the three serving paths. It is the measured counterpart of the
// paper's throughput story (§6): batching is where crossbar throughput
// comes from, and the engine stacks worker parallelism on top. ctx
// bounds the compile and the engine's serving run.
func ServingBench(ctx context.Context, opts ServingBenchOptions) (ServingBenchResult, error) {
	opts = opts.withDefaults()
	res := ServingBenchResult{Options: opts}
	ds := SyntheticDataset(opts.Seed, 900, 16, 4, 0.08)
	train, _ := ds.Split(2.0 / 3)
	net, err := TrainMLP(opts.Seed, []int{16, 24, 4}, train, 30)
	if err != nil {
		return res, err
	}
	d, err := Compile(ctx, net.Model(), WithWeightSource(net.WeightSource()))
	if err != nil {
		return res, err
	}
	sn, err := d.NewNet(nil)
	if err != nil {
		return res, err
	}
	mode, err := opts.Mode.synthMode()
	if err != nil {
		return res, err
	}
	window := sn.Window()
	inputs := make([][]int, opts.Samples)
	for i := range inputs {
		inputs[i] = synth.QuantizeInput(train.X[i%len(train.X)], window)
	}

	ex, err := synth.NewExecutor(sn.prog, synth.RunOptions{Mode: mode})
	if err != nil {
		return res, err
	}
	start := time.Now()
	for _, in := range inputs {
		if _, err := ex.Run(in); err != nil {
			return res, err
		}
	}
	res.SerialSPS = rate(opts.Samples, time.Since(start))

	start = time.Now()
	for i := 0; i < len(inputs); i += opts.Batch {
		end := i + opts.Batch
		if end > len(inputs) {
			end = len(inputs)
		}
		if _, err := ex.RunBatch(inputs[i:end]); err != nil {
			return res, err
		}
	}
	res.BatchedSPS = rate(opts.Samples, time.Since(start))
	if res.SerialSPS > 0 {
		res.BatchSpeedup = res.BatchedSPS / res.SerialSPS
	}

	eng, err := d.NewEngine(ctx, WithWorkers(opts.Workers), WithMaxBatch(opts.Batch), WithMode(opts.Mode))
	if err != nil {
		return res, err
	}
	defer eng.Close()
	features := make([][]float64, opts.Samples)
	for i := range features {
		features[i] = train.X[i%len(train.X)]
	}
	start = time.Now()
	if _, err := eng.ClassifyBatch(ctx, features); err != nil {
		return res, err
	}
	res.EngineSPS = rate(opts.Samples, time.Since(start))
	res.EngineStats = eng.Stats()
	return res, nil
}

// rate converts a count over a duration into events/second.
func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// RunServingExperiment renders the serving-throughput artifact; batch ≤ 0
// uses the default micro-batch size. It backs fpsa-bench's "serving"
// experiment and its -batch flag.
func RunServingExperiment(ctx context.Context, batch int) (string, error) {
	r, err := ServingBench(ctx, ServingBenchOptions{Batch: batch, Mode: ModeSpiking})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
